module buffopt

go 1.22
