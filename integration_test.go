package buffopt_test

import (
	"os"
	"strings"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/elmore"
	"buffopt/internal/netfmt"
	"buffopt/internal/noise"
	"buffopt/internal/noisesim"
	"buffopt/internal/report"
	"buffopt/internal/segment"
)

// TestSampleNetEndToEnd exercises the full user-facing pipeline on the
// checked-in fixture: parse → segment → BuffOpt → analyze → simulate →
// report, asserting every stage's contract.
func TestSampleNetEndToEnd(t *testing.T) {
	f, err := os.Open("testdata/sample.net")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := netfmt.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	params := noise.SectionV()

	// The fixture is deliberately noisy.
	before := noise.Analyze(tr, nil, params)
	if before.Clean() {
		t.Fatalf("fixture has no violations; it no longer demonstrates anything")
	}

	work := tr.Clone()
	if _, err := segment.ByLength(work, 0.5e-3); err != nil {
		t.Fatal(err)
	}
	if _, err := work.InsertBelow(work.Root()); err != nil {
		t.Fatal(err)
	}
	lib := buffers.DefaultLibrary(0.8)
	res, err := core.BuffOptMinBuffers(work, lib, params, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Contracts: metric-clean, slack consistent, timing met, simulation
	// (both engines) clean.
	if !noise.Analyze(res.Tree, res.Buffers, params).Clean() {
		t.Errorf("metric violations remain")
	}
	an := elmore.Analyze(res.Tree, res.Buffers)
	if d := an.WorstSlack - res.Slack; d > 1e-15 || d < -1e-15 {
		t.Errorf("DP slack %g vs analyzer %g", res.Slack, an.WorstSlack)
	}
	if res.Slack < 0 {
		t.Errorf("timing not met: slack %g", res.Slack)
	}
	for _, sim := range []func() (*noisesim.Result, error){
		func() (*noisesim.Result, error) {
			return noisesim.Simulate(res.Tree, res.Buffers, noisesim.Options{Params: params})
		},
		func() (*noisesim.Result, error) {
			return noisesim.SimulateAWE(res.Tree, res.Buffers, noisesim.Options{Params: params})
		},
	} {
		r, err := sim()
		if err != nil {
			t.Fatal(err)
		}
		if !r.Clean() {
			t.Errorf("simulation found violations: %+v", r.Violations)
		}
	}

	var sb strings.Builder
	if err := report.Write(&sb, res.Tree, res.Buffers, report.Options{Params: params, ShowBuffers: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "noise: clean") {
		t.Errorf("report does not show a clean net:\n%s", sb.String())
	}
}
