# Convenience targets; scripts/check.sh is the tier-1 gate (ROADMAP.md).

.PHONY: build test check bench fuzz

build:
	go build ./...

test:
	go test ./...

check:
	sh scripts/check.sh

bench:
	go test -bench=. -benchmem -run=^$$ .

fuzz:
	go test -fuzz=FuzzRead -fuzztime=30s ./internal/netfmt
