# Convenience targets; scripts/check.sh is the tier-1 gate (ROADMAP.md).

.PHONY: build test check bench fuzz

build:
	go build ./...

test:
	go test ./...

check:
	sh scripts/check.sh

# Benchmark/regression harness: runs the suite, captures an obs metrics
# snapshot from a real solve, and writes BENCH_<date>.json (+ benchstat
# text). Not part of the tier-1 gate. BENCH=/BENCHTIME= override defaults.
bench:
	sh scripts/bench.sh

fuzz:
	go test -fuzz=FuzzRead -fuzztime=30s ./internal/netfmt
