# Convenience targets; scripts/check.sh is the tier-1 gate (ROADMAP.md).

.PHONY: build test check bench cachebench fleetbench ecobench difftest enginetest fuzz enginefuzz soak fleetsoak tracesoak restartsoak ecosoak

build:
	go build ./...

test:
	go test ./...

check:
	sh scripts/check.sh

# Benchmark/regression harness: runs the suite, captures an obs metrics
# snapshot from a real solve, and writes BENCH_<date>.json (+ benchstat
# text). Not part of the tier-1 gate. BENCH=/BENCHTIME= override defaults.
bench:
	sh scripts/bench.sh

# Cache-focused benchmark recording: the hit-vs-solve pair (the tentpole
# acceptance is a ≥10× gap) at publication benchtime, written as a dated
# BENCH_<date>[-n].json alongside the full recordings.
cachebench:
	BENCH='BenchmarkSolveCached|BenchmarkSolveUncached' BENCHTIME=2s sh scripts/bench.sh -suffix

# Differential/determinism gate on the parallel dynamic program and the
# batch endpoint: serial-vs-parallel bit identity over the seeded corpus,
# order/concurrency independence of /solve/batch, pool-leak accounting.
# The tier-1 gate runs the short version; this is the full corpus.
difftest:
	go test -race -count=1 -run 'TestDifferential|TestDeterminism|TestBatch|TestConcurrentParallelSolves' ./internal/core ./internal/server

# Cross-engine equivalence gate: the Li–Shi O(bn²) fast-merge engine
# against the classic O(b²n²) DP — the full 200-net stratified
# differential, the metamorphic properties, the exhaustive oracle, the
# checked-in fuzz corpus replay, and the merge-level frontier property
# tests the fast merge's soundness proof rests on. The tier-1 gate
# (scripts/check.sh) runs the short sample; this is the full corpus.
enginetest:
	GOFLAGS=-count=1 go test -race ./internal/core/enginetest
	GOFLAGS=-count=1 go test -race -run 'TestPrunedListsAreStrictFrontiers|TestMergeDifferentialProperty' ./internal/core

fuzz:
	go test -fuzz=FuzzRead -fuzztime=30s ./internal/netfmt

# Engine-equivalence fuzzing: random trees × random sub-libraries, the
# classic DP vs the Li–Shi engine, bit-identical objectives required.
enginefuzz:
	go test -fuzz=FuzzEngineEquivalence -fuzztime=60s ./internal/core/enginetest

# Fault-injection soak: repeatedly hammers the bufferd server stack —
# admission control, drain lifecycle, seeded chaos injector — under the
# race detector, asserting exact shed/degrade accounting each pass. The
# tier-1 gate (scripts/check.sh) runs a single short pass of the same
# test; this target is the long version for hunting rare interleavings.
soak:
	go test -race -count=5 -run 'TestSoakUnderChaos|TestGracefulDrain|TestForcedDrain' -v ./internal/server

# Fleet chaos soak: a 3-replica in-process fleet behind the router, under
# request-level faults (slow/cancel/panic/malformed) plus replica-level
# partitions and a kill, with exact attempt/outcome/fault ledgers. The
# tier-1 gate runs one short pass; this is the long version.
fleetsoak:
	go test -race -count=5 -run 'TestFleetSoakUnderChaos' -v ./internal/fleet

# Trace soak: the distributed-tracing ledger gate. Cross-process trace
# assembly through the 3-replica lab fleet (/debug/trace/<id> must return
# one fully linked router→replica tree), then a faulted soak in which
# every injected fault, admission shed, and hedge must map to exactly one
# recorded span, with exact collector books (started == finished ==
# resident + dropped, zero flight-recorder evictions). The tier-1 gate
# runs one short pass; this is the long version.
tracesoak:
	go test -race -count=5 -run 'TestTraceAcrossFleet|TestTraceSoak' -v ./internal/fleet

# Restart chaos soak: replicas are kill-restarted under load — snapshots
# saved, corrupted, and torn between boots — with exact snapshot
# (loaded + rejected == restarts) and peer-fill (attempts == hits +
# misses + timeouts) ledgers, and every post-restart response
# byte-identical to a never-restarted control. The tier-1 gate runs one
# short pass; this is the long version.
restartsoak:
	go test -race -count=5 -run 'TestRestartSoakUnderChaos' -v ./internal/fleet

# ECO (incremental re-solve) chaos soak: /solve/delta sessions hammered
# with concurrent edit streams under seeded faults and forced session
# eviction, with exact reuse/request/session-book ledgers, plus the
# core-level edit-stream differential (delta answers bit-identical to
# from-scratch solves across engines, objectives, and serial/parallel).
# The tier-1 gate runs one short pass; this is the long version.
ecosoak:
	go test -race -count=5 -run 'TestEcoSoakUnderChaos' -v ./internal/server
	go test -race -count=2 -run 'TestDelta|TestNewSessionValidation' -v ./internal/core

# Fleet benchmark recording: cmd/loadgen drives hash-vs-random routing
# arms through an in-process fleet and the report (p50/p99, hedge rate,
# cache-hit rates) is merged into a dated BENCH_<date>[-n].json.
fleetbench:
	FLEET=1 sh scripts/bench.sh -suffix

# ECO benchmark recording: the full-vs-delta re-solve pair from
# BenchmarkDeltaResolve (the tentpole acceptance is a ≥10× gap on a
# single-leaf edit) plus the loadgen -eco arm (/solve/delta sessions,
# delta latency quantiles, memo reuse rate), written as a dated
# BENCH_<date>[-n].json with eco_* derived metrics.
ecobench:
	BENCH='BenchmarkDeltaResolve' BENCHTIME=2s ECO=1 sh scripts/bench.sh -suffix
