#!/bin/sh
# The tier-1 verification gate (see ROADMAP.md): vet, build, and the full
# test suite under the race detector. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "check: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "check: OK"
