#!/bin/sh
# The tier-1 verification gate (see ROADMAP.md): vet, build, and the full
# test suite under the race detector. Run from the repository root.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "check: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

# A dedicated short soak pass: the suite above already runs the server
# chaos tests once, but this keeps the soak visible as its own gate line
# (and is what `make soak` runs the long version of).
echo "== soak (short): go test -race -short -run TestSoakUnderChaos ./internal/server"
go test -race -short -count=1 -run TestSoakUnderChaos ./internal/server

# The differential/determinism gate on the parallel DP and the batch
# endpoint (short corpus; `make difftest` runs the full one): the
# parallel walk must stay bit-identical to serial, and batch responses
# must not depend on order or pool width.
echo "== difftest (short): serial/parallel bit identity + batch determinism"
go test -race -short -count=1 -run 'TestDifferential|TestDeterminism|TestBatch' ./internal/core ./internal/server

# The engine gate (short): the Li–Shi fast-merge engine must stay
# bit-identical to the classic DP — a stratified differential sample
# across all four net-size strata, the metamorphic properties, the
# exhaustive oracle, and the pruned-frontier invariants the fast merge's
# soundness proof rests on, plus the engine plumbing through the server
# envelope. `make enginetest` runs the full corpus.
echo "== engine gate (short): Li-Shi/VG bit identity + frontier invariants"
GOFLAGS=-count=1 go test -race -short ./internal/core/enginetest
GOFLAGS=-count=1 go test -race -short -run 'TestPrunedListsAreStrictFrontiers|TestMergeDifferentialProperty|TestEngine' ./internal/core ./internal/server

# The cache-determinism gate (short corpus): cache-on vs cache-off byte
# identity, coalescing accounting, eviction books, budget-class keying —
# across the cache package, the core Solve threading, and the server's
# HTTP surface (including the cache-enabled chaos soak).
echo "== cache gate (short): cache-on/off identity + coalescing + eviction books"
go test -race -short -count=1 ./internal/cache
go test -race -short -count=1 -run 'Cache' ./internal/core ./internal/server

# The fleet chaos gate (short): a 3-replica in-process fleet behind the
# router under seeded request-level faults plus partitions and a replica
# kill, with exact attempt/outcome/fault accounting. `make fleetsoak`
# runs the long version.
echo "== fleet soak (short): router failover/hedging under partition + kill"
go test -race -short -count=1 -run TestFleetSoakUnderChaos ./internal/fleet

# The trace gate (short): traceparent parsing invariants and collector
# books in isolation, then cross-process trace assembly and the exact
# fault/shed/hedge→span ledgers through the lab fleet. `make tracesoak`
# runs the long version.
echo "== trace gate (short): traceparent/collector invariants + fleet trace ledgers"
go test -race -short -count=1 -run 'TestTrace|TestParseTrace|TestCollector|TestFlightRecorder|TestSpanAllocBudget' ./internal/obs
go test -race -short -count=1 -run 'TestTraceAcrossFleet|TestTraceSoak' ./internal/fleet

# The restart gate (short): snapshot codec corruption invariants, then
# kill-restart chaos through the lab fleet — warm starts, rejected
# corrupt/torn snapshots, peer read-through fill — with exact snapshot
# and peer-fill ledgers and byte-identical post-restart responses.
# `make restartsoak` runs the long version.
echo "== restart gate (short): snapshot warm/cold boots + restart chaos ledgers"
go test -race -short -count=1 -run 'TestSnapshot|TestPeerFill|TestCachePeek' ./internal/server
go test -race -short -count=1 -run TestRestartSoakUnderChaos ./internal/fleet

# The ECO gate (short): the incremental re-solve engine. Core-level: the
# edit-stream differential (delta answers bit-identical to from-scratch
# solves across engines, objectives, serial/parallel) plus memo eviction
# and edit atomicity. Server-level: /solve/delta session lifecycle (TTL
# expiry, LRU and byte-budget eviction, 404-never-silent-full-solve) and
# the chaos soak with exact reuse/request/session-book ledgers.
# `make ecosoak` runs the long version.
echo "== eco gate (short): delta bit identity + session ledgers + eco chaos soak"
go test -race -short -count=1 -run 'TestDelta|TestNewSessionValidation' ./internal/core
go test -race -short -count=1 -run 'TestDelta|TestEcoSoakUnderChaos' ./internal/server

echo "check: OK"
