#!/bin/sh
# bench.sh — the benchmark/regression harness behind `make bench`.
#
# Runs the root benchmark suite, collects an obs metrics snapshot from a
# real buffopt solve of testdata/sample.net, and writes both into a dated
# BENCH_<date>.json via cmd/benchjson. The raw `go test -bench` text is
# kept next to it (BENCH_<date>.txt) in benchstat-compatible form, so two
# recordings diff with plain benchstat.
#
# Environment overrides:
#   BENCH      benchmark regex (default: .)
#   BENCHTIME  -benchtime value (default: 1x — one timed iteration per
#              benchmark; raise to e.g. 2s for publication-grade numbers)
#
# Refuses to overwrite a same-day recording: move or delete the existing
# BENCH_<date>.json to re-record.
set -eu
cd "$(dirname "$0")/.."

date="$(date +%Y-%m-%d)"
out="BENCH_${date}.json"
txt="BENCH_${date}.txt"
if [ -e "$out" ]; then
    echo "bench: $out already exists; move it aside to re-record today" >&2
    exit 1
fi

bench="${BENCH:-.}"
benchtime="${BENCHTIME:-1x}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== go test -bench=$bench -benchtime=$benchtime"
go test -bench="$bench" -benchmem -benchtime="$benchtime" -run='^$' . | tee "$tmpdir/bench.txt"

echo "== obs counters: buffopt -alg solve on testdata/sample.net"
go run ./cmd/buffopt -net testdata/sample.net -alg solve -metrics "$tmpdir/metrics.json" >/dev/null

go run ./cmd/benchjson -in "$tmpdir/bench.txt" -metrics "$tmpdir/metrics.json" -out "$out"
cp "$tmpdir/bench.txt" "$txt"
echo "bench: wrote $out (and benchstat text $txt)"
