#!/bin/sh
# bench.sh — the benchmark/regression harness behind `make bench`.
#
# Runs the root benchmark suite, collects an obs metrics snapshot from a
# real buffopt solve of testdata/sample.net, and writes both into a dated
# BENCH_<date>.json via cmd/benchjson. The raw `go test -bench` text is
# kept next to it (BENCH_<date>.txt) in benchstat-compatible form, so two
# recordings diff with plain benchstat.
#
# Usage: scripts/bench.sh [-suffix] [-force]
#   -suffix  on a same-day collision, write BENCH_<date>-<n>.json instead
#            of refusing (n = first free counter)
#   -force   overwrite the existing same-day recording in place
#
# Environment overrides:
#   BENCH      benchmark regex (default: .)
#   BENCHTIME  -benchtime value (default: 1x — one timed iteration per
#              benchmark; raise to e.g. 2s for publication-grade numbers)
#   FLEET      set to 1 to also run cmd/loadgen (hash-vs-random routing
#              arms through an in-process fleet) and merge its report —
#              router p50/p99, hedge rate, cache-hit rates — into the
#              record under "fleet" (see `make fleetbench`)
#   ECO        set to 1 to add loadgen's -eco arm (/solve/delta sessions
#              with incremental edit streams on one replica); its delta
#              latency and memo reuse numbers are lifted into "derived"
#              as eco_* (see `make ecobench`). Implies the loadgen run.
#
# Without a flag, refuses to overwrite a same-day recording: move it
# aside, or re-run with -suffix or -force.
set -eu
cd "$(dirname "$0")/.."

suffix=0
force=0
for arg in "$@"; do
    case "$arg" in
        -suffix|--suffix) suffix=1 ;;
        -force|--force) force=1 ;;
        *)
            echo "bench: unknown argument $arg (want -suffix or -force)" >&2
            exit 2
            ;;
    esac
done

date="$(date +%Y-%m-%d)"
out="BENCH_${date}.json"
txt="BENCH_${date}.txt"
if [ -e "$out" ] && [ "$force" -eq 0 ]; then
    if [ "$suffix" -eq 1 ]; then
        n=1
        while [ -e "BENCH_${date}-${n}.json" ]; do
            n=$((n + 1))
        done
        out="BENCH_${date}-${n}.json"
        txt="BENCH_${date}-${n}.txt"
    else
        echo "bench: $out already exists; move it aside, or re-run with -suffix or -force" >&2
        exit 1
    fi
fi

bench="${BENCH:-.}"
benchtime="${BENCHTIME:-1x}"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== go test -bench=$bench -benchtime=$benchtime"
go test -bench="$bench" -benchmem -benchtime="$benchtime" -run='^$' . | tee "$tmpdir/bench.txt"

# Span-overhead benchmarks: the enabled/disabled/traced triple from
# internal/obs, appended to the same text so benchjson derives
# span_ns_{enabled,disabled,traced} and span_overhead_ns into the record.
echo "== go test -bench=BenchmarkSpan ./internal/obs"
go test -bench='^BenchmarkSpan' -benchmem -benchtime="$benchtime" -run='^$' ./internal/obs | tee -a "$tmpdir/bench.txt"

echo "== obs counters: buffopt -alg solve on testdata/sample.net"
go run ./cmd/buffopt -net testdata/sample.net -alg solve -metrics "$tmpdir/metrics.json" >/dev/null

fleetargs=""
if [ "${FLEET:-0}" = "1" ] || [ "${ECO:-0}" = "1" ]; then
    ecoflag=""
    if [ "${ECO:-0}" = "1" ]; then
        ecoflag="-eco"
    fi
    echo "== fleet: loadgen hash-vs-random arms over an in-process fleet${ecoflag:+ (+ eco arm)}"
    go run ./cmd/loadgen $ecoflag -out "$tmpdir/fleet.json"
    fleetargs="-fleet $tmpdir/fleet.json"
fi

go run ./cmd/benchjson -in "$tmpdir/bench.txt" -metrics "$tmpdir/metrics.json" $fleetargs -out "$out"
cp "$tmpdir/bench.txt" "$txt"
echo "bench: wrote $out (and benchstat text $txt)"
