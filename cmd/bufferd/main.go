// Command bufferd serves the buffer-insertion solver as a long-running
// HTTP/JSON daemon: POST a net to /solve (or a list of nets to
// /solve/batch) and get back the buffered solution, the degradation tier
// that produced it, and why any stronger tier failed.
//
// Usage:
//
//	bufferd [-addr :8080] [-workers N] [-queue N] [-max-batch N]
//	        [-timeout 30s] [-max-timeout 2m] [-max-cands N]
//	        [-max-bytes 8388608] [-max-nodes N]
//	        [-cache-entries 4096] [-cache-bytes 268435456]
//	        [-session-ttl 5m] [-max-sessions 64] [-session-memo-bytes N]
//	        [-snapshot cache.snap] [-snapshot-interval 30s]
//	        [-self host:port] [-peers host:port,...] [-peer-timeout 150ms]
//	        [-trace-spans 4096] [-trace-latency 1s]
//	        [-drain-timeout 15s] [-retry-after 1s]
//	        [-faults slow=0.1,cancel=0.05] [-fault-seed 1] [-fault-delay 25ms]
//	        [-metrics out.json] [-v] [-pprof addr]
//
// Endpoints:
//
//	POST /solve        application/json envelope {"net": "...netfmt...", ...}
//	                   or raw netfmt text (?timeout_ms=, ?max_cands=)
//	POST /solve/batch  {"nets": [{...}, ...]} — up to -max-batch nets fanned
//	                   across the worker pool; per-net results and errors
//	                   (partial failures stay 200)
//	POST /solve/delta  incremental (ECO) re-solves over a v2 envelope:
//	                   {"v": 2, "net": ...} creates a session,
//	                   {"v": 2, "session": {"id": ...}, "edits": [...]}
//	                   edits and re-solves it, reusing every memoized
//	                   subtree the edits did not touch — bit-identical to
//	                   a from-scratch solve. Sessions idle out after
//	                   -session-ttl, at most -max-sessions live (LRU),
//	                   each memo bounded by -session-memo-bytes.
//	GET  /healthz      liveness: 200 while the process serves
//	GET  /readyz       readiness: 503 while draining or overloaded
//	GET  /metrics      telemetry snapshot as JSON
//	GET  /metrics/prom the same telemetry in the OpenMetrics text format,
//	                   with trace-ID exemplars on the latency histograms
//	GET  /debug/vars   the same counters via expvar
//	GET  /debug/trace/<id>      retained spans of one trace (every response
//	                   carries its trace ID in X-Trace-Id)
//	GET  /debug/flightrecorder  complete traces of recent anomalous
//	                   requests: sheds, injected faults, slow solves
//
// At most -workers solves run concurrently and at most -queue more wait;
// beyond that, requests — and individual batch items — are shed with 429
// and a Retry-After header. SIGTERM (or Ctrl-C) drains: readiness flips,
// in-flight requests finish (bounded by -drain-timeout), and the process
// exits 0.
//
// Results are memoized in a content-addressed LRU cache bounded by
// -cache-entries and -cache-bytes (set both to 0 to disable). Repeated
// requests for the same net and knobs are answered from the cache
// (responses carry "cached": true) and concurrent identical requests
// coalesce onto one solve; "server.cache.*" counters on /metrics track
// lookups, hits, misses, coalesced waits, stores, and evictions.
//
// With -snapshot set, the cache survives restarts: the LRU is written to
// the file periodically (-snapshot-interval) and on drain as a
// checksummed, atomically-replaced snapshot, and the next boot warm-starts
// from it. A corrupt, torn, or version-skewed file is rejected whole —
// logged, counted, cold start — never a crash. With -self and -peers set,
// a local cache miss first peeks the key's sibling replica
// (GET /cache/peek/<key>, bounded by -peer-timeout) before solving; see
// DESIGN.md §15.
//
// The -faults family enables the deterministic fault injector (see
// internal/faultinject) for soak and chaos testing; leave it unset in
// production.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"buffopt/internal/faultinject"
	"buffopt/internal/guard"
	"buffopt/internal/obs"
	"buffopt/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is main, factored for tests: parse flags, start telemetry, serve
// until the signal context cancels, map the outcome to an exit code.
func run(args []string, stderr *os.File) int {
	fs := flag.NewFlagSet("bufferd", flag.ContinueOnError)
	fs.SetOutput(stderr)

	var cfg server.Config
	fs.StringVar(&cfg.Addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.Workers, "workers", 0, "max concurrent solves (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.QueueDepth, "queue", 64, "max requests waiting for a worker before shedding")
	fs.IntVar(&cfg.MaxBatch, "max-batch", 64, "max nets in one /solve/batch request")
	fs.DurationVar(&cfg.DefaultTimeout, "timeout", 30*time.Second, "per-request deadline when the client sets none")
	fs.DurationVar(&cfg.MaxTimeout, "max-timeout", 2*time.Minute, "hard cap on any per-request deadline")
	fs.IntVar(&cfg.MaxCands, "max-cands", 0, "cap on DP candidate-list size (0 disables)")
	fs.Int64Var(&cfg.MaxBytes, "max-bytes", 8<<20, "cap on request body size, bytes")
	fs.IntVar(&cfg.Limits.MaxNodes, "max-nodes", 0, "cap on nodes per net (0 = netfmt default)")
	fs.DurationVar(&cfg.DrainTimeout, "drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
	fs.DurationVar(&cfg.RetryAfter, "retry-after", time.Second, "Retry-After hint on shed responses")
	fs.IntVar(&cfg.CacheEntries, "cache-entries", 4096, "max results resident in the solve cache (0 = unlimited when -cache-bytes set; both 0 disables)")
	fs.Int64Var(&cfg.CacheBytes, "cache-bytes", 256<<20, "max estimated bytes resident in the solve cache (0 = unlimited when -cache-entries set; both 0 disables)")
	fs.DurationVar(&cfg.SessionTTL, "session-ttl", 0, "idle expiry for /solve/delta sessions (0 = default 5m)")
	fs.IntVar(&cfg.MaxSessions, "max-sessions", 0, "max live /solve/delta sessions; beyond that the least recently used is evicted (0 = default 64)")
	fs.Int64Var(&cfg.SessionMemoBytes, "session-memo-bytes", 0, "per-session subtree-memo byte budget; eviction recomputes, never changes answers (0 = default 16 MiB)")
	fs.IntVar(&cfg.TraceSpans, "trace-spans", 0, "span-collector ring size: recent spans visible at /debug/trace (0 = default 4096)")
	fs.DurationVar(&cfg.TraceLatency, "trace-latency", 0, "latency past which a request's trace is pinned in the flight recorder (0 = default 1s)")
	fs.StringVar(&cfg.SnapshotPath, "snapshot", "", "cache snapshot file: warm-start from it on boot, rewrite it periodically and on drain (empty disables)")
	fs.DurationVar(&cfg.SnapshotInterval, "snapshot-interval", 0, "how often to rewrite the cache snapshot while serving (0 = default 30s)")
	fs.StringVar(&cfg.Self, "self", "", "this replica's host:port as the fleet knows it (rendezvous identity; required for -peers)")
	var peers peerList
	fs.Var(&peers, "peers", "comma-separated sibling host:ports to consult on cache misses (peer read-through fill)")
	fs.DurationVar(&cfg.PeerTimeout, "peer-timeout", 0, "budget for one peer cache peek on a local miss (0 = default 150ms)")

	faults := fs.String("faults", "", "fault-injection rates, e.g. slow=0.1,cancel=0.05,panic=0.01,malformed=0.05 (chaos testing only)")
	faultSeed := fs.Int64("fault-seed", 1, "fault injector PRNG seed")
	faultDelay := fs.Duration("fault-delay", 25*time.Millisecond, "duration of an injected slow solve")

	verbose := fs.Bool("v", false, "trace solver spans to stderr")
	metrics := fs.String("metrics", "", "write a JSON metrics snapshot to this file on exit")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar on this address")
	if err := fs.Parse(args); err != nil {
		return guard.ExitUsage
	}

	if *faults != "" {
		rates, err := faultinject.ParseRates(*faults)
		if err != nil {
			fmt.Fprintln(stderr, "bufferd:", err)
			return guard.ExitUsage
		}
		inj, err := faultinject.New(faultinject.Config{
			Seed:      *faultSeed,
			Rates:     rates,
			SlowDelay: *faultDelay,
		})
		if err != nil {
			fmt.Fprintln(stderr, "bufferd:", err)
			return guard.ExitUsage
		}
		cfg.Injector = inj
		fmt.Fprintf(stderr, "bufferd: FAULT INJECTION ACTIVE: %s (seed %d)\n", *faults, *faultSeed)
	}
	if cfg.Limits.MaxNodes < 0 || cfg.MaxBytes < 0 || cfg.CacheEntries < 0 || cfg.CacheBytes < 0 {
		fmt.Fprintln(stderr, "bufferd: limits must be non-negative")
		return guard.ExitUsage
	}
	cfg.Peers = peers
	if len(cfg.Peers) > 0 && cfg.Self == "" {
		fmt.Fprintln(stderr, "bufferd: -peers requires -self (this replica's name in the rendezvous ring)")
		return guard.ExitUsage
	}

	stopObs, err := obs.Start(obs.StartOptions{
		Verbose:     *verbose,
		MetricsPath: *metrics,
		PprofAddr:   *pprofAddr,
	})
	if err != nil {
		fmt.Fprintln(stderr, "bufferd:", err)
		return guard.ExitFailure
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := server.New(cfg)
	go func() {
		<-s.Ready()
		fmt.Fprintf(stderr, "bufferd: serving on %s (workers %d, queue %d)\n",
			s.Addr(), cfg.Workers, cfg.QueueDepth)
	}()
	runErr := s.Run(ctx)
	if err := stopObs(); err != nil {
		fmt.Fprintln(stderr, "bufferd: telemetry:", err)
	}
	if runErr != nil {
		fmt.Fprintln(stderr, "bufferd:", runErr)
		return guard.ExitCode(runErr)
	}
	fmt.Fprintln(stderr, "bufferd: drained cleanly")
	return guard.ExitOK
}

// peerList parses -peers: comma-separated host:ports, empties dropped.
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(s string) error {
	*p = nil
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			*p = append(*p, part)
		}
	}
	return nil
}
