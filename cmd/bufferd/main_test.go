package main

import (
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"buffopt/internal/guard"
)

// TestUsageErrors: flag misuse exits 2 without starting a listener.
func TestUsageErrors(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	cases := [][]string{
		{"-bogus-flag"},
		{"-faults", "notafault=1"},
		{"-faults", "slow=2"},
		{"-max-bytes", "-1"},
	}
	for _, args := range cases {
		if code := run(args, null); code != guard.ExitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, guard.ExitUsage)
		}
	}
}

// TestListenFailureExitsNonzero: an unbindable address is a startup
// failure, not a hang.
func TestListenFailureExitsNonzero(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if code := run([]string{"-addr", "256.256.256.256:0"}, null); code == 0 {
		t.Fatal("run with an unbindable address returned 0")
	}
}

// TestServeAndSigtermDrain boots the real daemon on an ephemeral port,
// solves one net over HTTP, sends the process SIGTERM, and checks the
// daemon drains and run returns exit code 0.
func TestServeAndSigtermDrain(t *testing.T) {
	logf, err := os.CreateTemp(t.TempDir(), "bufferd-stderr")
	if err != nil {
		t.Fatal(err)
	}
	defer logf.Close()

	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain-timeout", "5s"}, logf)
	}()

	// The daemon logs its bound address; poll the log for it.
	addrRe := regexp.MustCompile(`serving on (\S+)`)
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			b, _ := os.ReadFile(logf.Name())
			t.Fatalf("daemon never logged its address; log:\n%s", b)
		}
		b, _ := os.ReadFile(logf.Name())
		if m := addrRe.FindSubmatch(b); m != nil {
			addr = string(m[1])
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr

	hr, err := http.Get(base + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hr, err)
	}
	hr.Body.Close()

	net, err := os.ReadFile("../../testdata/sample.net")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/solve", "text/plain", strings.NewReader(string(net)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"tier"`) {
		t.Fatalf("response missing tier: %s", body)
	}

	// SIGTERM the whole process: run's NotifyContext catches it and the
	// daemon drains.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != guard.ExitOK {
			b, _ := os.ReadFile(logf.Name())
			t.Fatalf("exit code %d, want 0; log:\n%s", code, b)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never exited after SIGTERM")
	}
	b, _ := os.ReadFile(logf.Name())
	if !strings.Contains(string(b), "drained cleanly") {
		t.Fatalf("log missing clean-drain line:\n%s", b)
	}
}
