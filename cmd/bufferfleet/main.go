// Command bufferfleet fronts a fleet of bufferd replicas with a
// stateless, cache-affine router: each request's net is hashed to a
// content-addressed affinity key and rendezvous-hashed over the replica
// set, so repeated solves of the same problem land on the same replica's
// cache while distinct problems spread evenly. Replica health is tracked
// by /readyz probes plus passive signals; connection failures fail over
// down the key's preference order with bounded backoff, and slow
// attempts are hedged to the next replica past a latency quantile.
//
// Usage:
//
//	bufferfleet -replicas host1:8080,host2:8080,host3:8080
//	            [-addr :8081] [-probe-interval 1s] [-probe-timeout 500ms]
//	            [-health-dwell 500ms]
//	            [-attempt-timeout 30s] [-max-attempts 3]
//	            [-hedge-quantile 0.9] [-hedge-min 20ms]
//	            [-fail-threshold 3] [-retry-backoff 25ms]
//	            [-retry-after 1s] [-max-bytes 8388608]
//	            [-drain-timeout 15s] [-routing hash]
//	            [-trace-spans 4096] [-trace-latency 1s]
//	            [-timeout 30s] [-max-timeout 2m] [-max-cands N] [-max-nodes N]
//	            [-metrics out.json] [-v] [-pprof addr]
//
// Endpoints:
//
//	POST /solve         routed to the net's replica; retried/hedged on
//	                    connection failure, never on a solver verdict
//	POST /solve/batch   split per net, sub-batches routed per shard, the
//	                    merged response preserves client order
//	GET  /healthz       router liveness
//	GET  /readyz        503 once no replica is routable (or draining)
//	GET  /fleet/status  per-replica health, failures, backoff, p90
//	GET  /metrics       router telemetry snapshot as JSON
//	GET  /metrics/prom  the same telemetry in the OpenMetrics text format,
//	                    with trace-ID exemplars on the latency histograms
//	GET  /debug/trace/<id>      the trace's router spans merged with each
//	                    replica's retained spans: the cross-process view
//	GET  /debug/flightrecorder  complete router-side traces of recent
//	                    anomalous requests (sheds, hedges, slow solves)
//
// The -timeout/-max-timeout/-max-cands/-max-nodes flags mirror the
// replicas' decode knobs so the router derives the same cache key the
// replicas do; a mismatch weakens cache affinity but never correctness.
//
// -routing random disables affinity (uniform shuffle per request). It is
// the control arm for measuring what affinity buys; see cmd/loadgen.
//
// SIGTERM (or Ctrl-C) drains: in-flight requests and their upstream
// attempts finish (bounded by -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"buffopt/internal/fleet"
	"buffopt/internal/guard"
	"buffopt/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

// run is main, factored for tests: parse flags, start telemetry, route
// until the signal context cancels, map the outcome to an exit code.
func run(args []string, stderr *os.File) int {
	fs := flag.NewFlagSet("bufferfleet", flag.ContinueOnError)
	fs.SetOutput(stderr)

	var cfg fleet.Config
	replicas := fs.String("replicas", "", "comma-separated bufferd replicas as host:port (required)")
	fs.StringVar(&cfg.Addr, "addr", ":8081", "listen address")
	fs.DurationVar(&cfg.ProbeInterval, "probe-interval", time.Second, "spacing of per-replica /readyz probes")
	fs.DurationVar(&cfg.ProbeTimeout, "probe-timeout", 500*time.Millisecond, "deadline for one probe round-trip")
	fs.DurationVar(&cfg.HealthDwell, "health-dwell", 0, "minimum hold time before a replica flips healthy<->suspect (flap damping; 0 = default 500ms)")
	fs.DurationVar(&cfg.AttemptTimeout, "attempt-timeout", 30*time.Second, "deadline for one forwarded attempt (must exceed the replicas' solve timeout)")
	fs.IntVar(&cfg.MaxAttempts, "max-attempts", 3, "max distinct replicas tried per request (clamped to the fleet size)")
	fs.Float64Var(&cfg.HedgeQuantile, "hedge-quantile", 0.9, "primary-latency quantile past which a hedge launches")
	fs.DurationVar(&cfg.HedgeMin, "hedge-min", 20*time.Millisecond, "floor (and cold-start value) of the hedge delay")
	fs.IntVar(&cfg.FailThreshold, "fail-threshold", 3, "consecutive connection failures that mark a replica down")
	fs.DurationVar(&cfg.RetryBackoff, "retry-backoff", 25*time.Millisecond, "base delay before the second failover (doubles, capped at 1s)")
	fs.DurationVar(&cfg.RetryAfter, "retry-after", time.Second, "Retry-After hint when no replica is reachable")
	fs.Int64Var(&cfg.MaxBytes, "max-bytes", 8<<20, "cap on request body size, bytes")
	fs.DurationVar(&cfg.DrainTimeout, "drain-timeout", 15*time.Second, "grace period for in-flight requests on shutdown")
	fs.StringVar(&cfg.Routing, "routing", fleet.RoutingHash, "routing policy: hash (cache-affine) or random (control)")
	fs.Int64Var(&cfg.Seed, "seed", 1, "PRNG seed for -routing random")
	fs.IntVar(&cfg.TraceSpans, "trace-spans", 0, "span-collector ring size: recent spans visible at /debug/trace (0 = default 4096)")
	fs.DurationVar(&cfg.TraceLatency, "trace-latency", 0, "latency past which a request's trace is pinned in the flight recorder (0 = default 1s)")

	// Decode knobs, mirroring the replicas' so affinity keys agree.
	fs.DurationVar(&cfg.Decode.DefaultTimeout, "timeout", 30*time.Second, "replicas' default per-request deadline (affinity-key input)")
	fs.DurationVar(&cfg.Decode.MaxTimeout, "max-timeout", 2*time.Minute, "replicas' cap on per-request deadlines (affinity-key input)")
	fs.IntVar(&cfg.Decode.MaxCands, "max-cands", 0, "replicas' DP candidate cap (affinity-key input)")
	fs.IntVar(&cfg.Decode.Limits.MaxNodes, "max-nodes", 0, "replicas' cap on nodes per net (affinity-key input)")

	verbose := fs.Bool("v", false, "trace router spans to stderr")
	metrics := fs.String("metrics", "", "write a JSON metrics snapshot to this file on exit")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof and expvar on this address")
	if err := fs.Parse(args); err != nil {
		return guard.ExitUsage
	}

	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			cfg.Replicas = append(cfg.Replicas, r)
		}
	}
	rt, err := fleet.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "bufferfleet:", err)
		return guard.ExitUsage
	}

	stopObs, err := obs.Start(obs.StartOptions{
		Verbose:     *verbose,
		MetricsPath: *metrics,
		PprofAddr:   *pprofAddr,
	})
	if err != nil {
		fmt.Fprintln(stderr, "bufferfleet:", err)
		return guard.ExitFailure
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go func() {
		<-rt.Ready()
		fmt.Fprintf(stderr, "bufferfleet: routing %s over %d replicas on %s\n",
			cfg.Routing, len(cfg.Replicas), rt.Addr())
	}()
	runErr := rt.Run(ctx)
	if err := stopObs(); err != nil {
		fmt.Fprintln(stderr, "bufferfleet: telemetry:", err)
	}
	if runErr != nil {
		fmt.Fprintln(stderr, "bufferfleet:", runErr)
		return guard.ExitCode(runErr)
	}
	fmt.Fprintln(stderr, "bufferfleet: drained cleanly")
	return guard.ExitOK
}
