package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"buffopt/internal/guard"
	"buffopt/internal/server"
)

// TestUsageErrors: flag misuse — and a missing or malformed replica
// list — exits 2 without starting a listener.
func TestUsageErrors(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	cases := [][]string{
		{"-bogus-flag"},
		{},                       // no replicas
		{"-replicas", " , ,"},    // empty after trimming
		{"-replicas", "a:1,a:1"}, // duplicate
		{"-replicas", "a:1", "-routing", "roundrobin"}, // unknown policy
	}
	for _, args := range cases {
		if code := run(args, null); code != guard.ExitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, guard.ExitUsage)
		}
	}
}

// TestServeRouteAndSigtermDrain boots one real bufferd replica, fronts
// it with the real router process loop, solves a net through the router,
// then SIGTERMs and checks the router drains to exit code 0.
func TestServeRouteAndSigtermDrain(t *testing.T) {
	rep := httptest.NewServer(server.New(server.Config{Workers: 2, QueueDepth: 4}).Handler())
	defer rep.Close()
	repAddr := strings.TrimPrefix(rep.URL, "http://")

	logf, err := os.CreateTemp(t.TempDir(), "bufferfleet-stderr")
	if err != nil {
		t.Fatal(err)
	}
	defer logf.Close()

	done := make(chan int, 1)
	go func() {
		done <- run([]string{
			"-addr", "127.0.0.1:0",
			"-replicas", repAddr,
			"-probe-interval", "50ms",
			"-drain-timeout", "5s",
		}, logf)
	}()

	// The router logs its bound address; poll the log for it.
	addrRe := regexp.MustCompile(`replicas on (\S+)`)
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			b, _ := os.ReadFile(logf.Name())
			t.Fatalf("router never logged its address; log:\n%s", b)
		}
		b, _ := os.ReadFile(logf.Name())
		if m := addrRe.FindSubmatch(b); m != nil {
			addr = string(m[1])
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr

	hr, err := http.Get(base + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", hr, err)
	}
	hr.Body.Close()

	net, err := os.ReadFile("../../testdata/sample.net")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/solve", "text/plain", strings.NewReader(string(net)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed solve = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"tier"`) {
		t.Fatalf("response missing tier: %s", body)
	}

	sr, err := http.Get(base + "/fleet/status")
	if err != nil || sr.StatusCode != http.StatusOK {
		t.Fatalf("fleet/status: %v %v", sr, err)
	}
	sbody, _ := io.ReadAll(sr.Body)
	sr.Body.Close()
	if !strings.Contains(string(sbody), repAddr) {
		t.Fatalf("fleet/status missing replica %s: %s", repAddr, sbody)
	}

	// SIGTERM the whole process: run's NotifyContext catches it and the
	// router drains its attempt ledger.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != guard.ExitOK {
			b, _ := os.ReadFile(logf.Name())
			t.Fatalf("exit code %d, want 0; log:\n%s", code, b)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("router never exited after SIGTERM")
	}
	b, _ := os.ReadFile(logf.Name())
	if !strings.Contains(string(b), "drained cleanly") {
		t.Fatalf("log missing clean-drain line:\n%s", b)
	}
}
