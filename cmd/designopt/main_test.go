package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"buffopt/internal/netfmt"
	"buffopt/internal/netgen"
	"buffopt/internal/noise"
)

func writeSuite(t *testing.T, n int) string {
	t.Helper()
	s, err := netgen.Generate(netgen.Config{Seed: 4, NumNets: n})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for i, tr := range s.Nets {
		f, err := os.Create(filepath.Join(dir, tr.Node(0).Name+".net"))
		if err != nil {
			t.Fatal(err)
		}
		if err := netfmt.Write(f, tr); err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
		f.Close()
	}
	return dir
}

func TestDesignOptFlow(t *testing.T) {
	in := writeSuite(t, 12)
	out := t.TempDir()
	if err := run(context.Background(), config{in: in, out: out, segLen: 0.5e-3, lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8, workers: 4}); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(out, "*.net"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 12 {
		t.Fatalf("wrote %d nets, want 12", len(files))
	}
	// Every written net must parse and validate.
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := netfmt.Read(f)
		f.Close()
		if err != nil {
			t.Errorf("%s unreadable: %v", filepath.Base(path), err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s invalid: %v", filepath.Base(path), err)
		}
	}
	_ = noise.SectionV()
}

func TestDesignOptSizing(t *testing.T) {
	in := writeSuite(t, 6)
	if err := run(context.Background(), config{in: in, segLen: 0.5e-3, lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8, workers: 2, sizing: true, verbose: true}); err != nil {
		t.Fatal(err)
	}
}

func TestDesignOptErrors(t *testing.T) {
	if err := run(context.Background(), config{in: t.TempDir(), segLen: 0.5e-3, lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8, workers: 1}); err == nil {
		t.Errorf("empty input directory accepted")
	}
}

func TestDesignOptPerNetBudget(t *testing.T) {
	in := writeSuite(t, 6)
	// A 1-candidate cap forces every net down the ladder; the batch must
	// still complete with zero failures.
	if err := run(context.Background(), config{in: in, segLen: 0.5e-3, lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8, workers: 2, maxCands: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestDesignOptCanceled(t *testing.T) {
	in := writeSuite(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, config{in: in, segLen: 0.5e-3, lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8, workers: 2}); err == nil {
		t.Fatal("canceled run reported success")
	}
}
