package main

import (
	"os"
	"path/filepath"
	"testing"

	"buffopt/internal/netfmt"
	"buffopt/internal/netgen"
	"buffopt/internal/noise"
)

func writeSuite(t *testing.T, n int) string {
	t.Helper()
	s, err := netgen.Generate(netgen.Config{Seed: 4, NumNets: n})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for i, tr := range s.Nets {
		f, err := os.Create(filepath.Join(dir, tr.Node(0).Name+".net"))
		if err != nil {
			t.Fatal(err)
		}
		if err := netfmt.Write(f, tr); err != nil {
			t.Fatalf("net %d: %v", i, err)
		}
		f.Close()
	}
	return dir
}

func TestDesignOptFlow(t *testing.T) {
	in := writeSuite(t, 12)
	out := t.TempDir()
	if err := run(in, out, 0.5e-3, 0.7, 0.25e-9, 1.8, 0.8, 4, false, false); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(out, "*.net"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 12 {
		t.Fatalf("wrote %d nets, want 12", len(files))
	}
	// Every written net must parse and validate.
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := netfmt.Read(f)
		f.Close()
		if err != nil {
			t.Errorf("%s unreadable: %v", filepath.Base(path), err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s invalid: %v", filepath.Base(path), err)
		}
	}
	_ = noise.SectionV()
}

func TestDesignOptSizing(t *testing.T) {
	in := writeSuite(t, 6)
	if err := run(in, "", 0.5e-3, 0.7, 0.25e-9, 1.8, 0.8, 2, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestDesignOptErrors(t *testing.T) {
	if err := run(t.TempDir(), "", 0.5e-3, 0.7, 0.25e-9, 1.8, 0.8, 1, false, false); err == nil {
		t.Errorf("empty input directory accepted")
	}
}
