// Command designopt runs the whole-design flow of Section V: read every
// net of a design, repair noise and timing with the BuffOpt tool in
// parallel, write the buffered nets, and print a design-level summary —
// the batch counterpart of cmd/buffopt.
//
// Usage:
//
//	designopt -in nets/ [-out buffered/] [-seglen 0.5e-3] [-lambda 0.7]
//	          [-rise 0.25e-9] [-vdd 1.8] [-bufnm 0.8] [-workers N] [-sizing]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/netfmt"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/report"
	"buffopt/internal/segment"
)

func main() {
	var (
		in      = flag.String("in", "", "input directory of .net files (required)")
		out     = flag.String("out", "", "output directory for buffered nets (optional)")
		segLen  = flag.Float64("seglen", 0.5e-3, "wire segmenting length, m")
		lambda  = flag.Float64("lambda", 0.7, "coupling ratio λ")
		rise    = flag.Float64("rise", 0.25e-9, "aggressor rise time, s")
		vdd     = flag.Float64("vdd", 1.8, "supply voltage, V")
		margin  = flag.Float64("bufnm", 0.8, "buffer noise margin, V")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		sizing  = flag.Bool("sizing", false, "enable simultaneous wire sizing (widths 1, 2, 4)")
		verbose = flag.Bool("v", false, "print one summary line per net")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *out, *segLen, *lambda, *rise, *vdd, *margin, *workers, *sizing, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "designopt:", err)
		os.Exit(1)
	}
}

type result struct {
	name    string
	buffers int
	fixed   bool
	wasBad  bool
	err     error
	summary string
}

func run(in, out string, segLen, lambda, rise, vdd, margin float64, workers int, sizing, verbose bool) error {
	paths, err := filepath.Glob(filepath.Join(in, "*.net"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no .net files in %s", in)
	}
	sort.Strings(paths)
	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
	}

	params := noise.Params{CouplingRatio: lambda, Slope: vdd / rise}
	lib := buffers.DefaultLibrary(margin)
	opts := core.Options{}
	if sizing {
		opts.Sizing = &core.Sizing{Widths: []float64{1, 2, 4}}
	}

	start := time.Now()
	results := make([]result, len(paths))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, workers))
	for i, path := range paths {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, path string) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = optimizeOne(path, out, segLen, params, lib, opts)
		}(i, path)
	}
	wg.Wait()
	elapsed := time.Since(start)

	totalBuffers, bad, fixed, failed := 0, 0, 0, 0
	for _, r := range results {
		if verbose && r.err == nil {
			fmt.Println(r.summary)
		}
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "  %s: %v\n", r.name, r.err)
			continue
		}
		totalBuffers += r.buffers
		if r.wasBad {
			bad++
			if r.fixed {
				fixed++
			}
		}
	}
	fmt.Printf("design: %d nets, %d with noise violations, %d fixed, %d buffers inserted, %d failures, %.2fs\n",
		len(paths), bad, fixed, totalBuffers, failed, elapsed.Seconds())
	if fixed < bad {
		return fmt.Errorf("%d nets could not be fixed", bad-fixed)
	}
	return nil
}

func optimizeOne(path, out string, segLen float64, params noise.Params, lib *buffers.Library, opts core.Options) result {
	name := filepath.Base(path)
	f, err := os.Open(path)
	if err != nil {
		return result{name: name, err: err}
	}
	tr, err := netfmt.Read(f)
	f.Close()
	if err != nil {
		return result{name: name, err: err}
	}

	wasBad := !noise.Analyze(tr, nil, params).Clean()

	work := tr.Clone()
	if segLen > 0 {
		if _, err := segment.ByLength(work, segLen); err != nil {
			return result{name: name, err: err}
		}
		if _, err := work.InsertBelow(work.Root()); err != nil {
			return result{name: name, err: err}
		}
	}
	res, err := core.BuffOptMinBuffers(work, lib, params, opts)
	if err != nil {
		return result{name: name, err: err, wasBad: wasBad}
	}
	clean := noise.Analyze(res.Tree, res.Buffers, params).Clean()

	if out != "" {
		path := filepath.Join(out, name)
		of, err := os.Create(path)
		if err != nil {
			return result{name: name, err: err}
		}
		werr := writeBuffered(of, res.Solution)
		if cerr := of.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return result{name: name, err: werr}
		}
	}
	return result{
		name:    name,
		buffers: res.NumBuffers(),
		fixed:   clean,
		wasBad:  wasBad,
		summary: report.Summary(res.Tree, res.Buffers, params),
	}
}

func writeBuffered(f *os.File, sol *core.Solution) error {
	ids := make([]rctree.NodeID, 0, len(sol.Buffers))
	for v := range sol.Buffers {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintf(f, "# designopt: %d buffers\n", len(ids))
	for _, v := range ids {
		fmt.Fprintf(f, "# buffer %s at node %d\n", sol.Buffers[v].Name, v)
	}
	return netfmt.Write(f, sol.Tree)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
