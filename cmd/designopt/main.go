// Command designopt runs the whole-design flow of Section V: read every
// net of a design, repair noise and timing with the BuffOpt tool in
// parallel, write the buffered nets, and print a design-level summary —
// the batch counterpart of cmd/buffopt.
//
// Usage:
//
//	designopt -in nets/ [-out buffered/] [-seglen 0.5e-3] [-lambda 0.7]
//	          [-rise 0.25e-9] [-vdd 1.8] [-bufnm 0.8] [-workers N] [-sizing]
//	          [-engine vg|lishi|auto] [-timeout 5s] [-max-cands N]
//
// Each net is solved through core.Solve's degradation ladder: -timeout
// bounds each individual net (not the whole design), -max-cands caps the
// DP candidate lists, and a net that exhausts its budget degrades to a
// cheaper tier instead of failing the batch. Workers are panic-isolated:
// a crash on one net is reported as that net's failure, not a process
// abort. Ctrl-C cancels the remaining nets cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/guard"
	"buffopt/internal/netfmt"
	"buffopt/internal/noise"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
	"buffopt/internal/report"
	"buffopt/internal/segment"
)

// config carries the parsed command line.
type config struct {
	in, out           string
	segLen            float64
	lambda, rise, vdd float64
	margin            float64
	workers           int
	engine            string
	sizing, verbose   bool
	timeout           time.Duration // per net; 0 disables
	maxCands          int

	metrics    string // write an obs snapshot here on exit
	pprofAddr  string // serve net/http/pprof on this address
	cpuprofile string
	memprofile string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.in, "in", "", "input directory of .net files (required)")
	flag.StringVar(&cfg.out, "out", "", "output directory for buffered nets (optional)")
	flag.Float64Var(&cfg.segLen, "seglen", 0.5e-3, "wire segmenting length, m")
	flag.Float64Var(&cfg.lambda, "lambda", 0.7, "coupling ratio λ")
	flag.Float64Var(&cfg.rise, "rise", 0.25e-9, "aggressor rise time, s")
	flag.Float64Var(&cfg.vdd, "vdd", 1.8, "supply voltage, V")
	flag.Float64Var(&cfg.margin, "bufnm", 0.8, "buffer noise margin, V")
	flag.IntVar(&cfg.workers, "workers", runtime.GOMAXPROCS(0), "parallel workers")
	flag.BoolVar(&cfg.sizing, "sizing", false, "enable simultaneous wire sizing (widths 1, 2, 4)")
	flag.StringVar(&cfg.engine, "engine", "", "DP merge engine: vg, lishi, or auto (default vg; answers are bit-identical)")
	flag.BoolVar(&cfg.verbose, "v", false, "print one summary line per net")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "wall-clock budget per net (0 disables)")
	flag.IntVar(&cfg.maxCands, "max-cands", 0, "cap on DP candidate-list size per net (0 disables)")
	flag.StringVar(&cfg.metrics, "metrics", "", "write a JSON metrics snapshot to this file on exit")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if cfg.in == "" {
		flag.Usage()
		os.Exit(2)
	}
	stopObs, err := obs.Start(obs.StartOptions{
		Verbose:        cfg.verbose,
		MetricsPath:    cfg.metrics,
		PprofAddr:      cfg.pprofAddr,
		CPUProfilePath: cfg.cpuprofile,
		MemProfilePath: cfg.memprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "designopt:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	runErr := run(ctx, cfg)
	if err := stopObs(); err != nil {
		fmt.Fprintln(os.Stderr, "designopt: telemetry:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "designopt:", runErr)
		os.Exit(guard.ExitCode(runErr))
	}
}

type result struct {
	name     string
	buffers  int
	fixed    bool
	wasBad   bool
	tier     core.Tier
	degraded bool
	tierErrs []*core.TierError
	err      error
	summary  string
}

func run(ctx context.Context, cfg config) error {
	paths, err := filepath.Glob(filepath.Join(cfg.in, "*.net"))
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no .net files in %s", cfg.in)
	}
	sort.Strings(paths)
	if cfg.out != "" {
		if err := os.MkdirAll(cfg.out, 0o755); err != nil {
			return err
		}
	}

	params := noise.Params{CouplingRatio: cfg.lambda, Slope: cfg.vdd / cfg.rise}
	lib := buffers.DefaultLibrary(cfg.margin)
	engine, err := core.ParseEngine(cfg.engine)
	if err != nil {
		return err
	}
	opts := core.Options{Engine: engine}
	if cfg.sizing {
		opts.Sizing = &core.Sizing{Widths: []float64{1, 2, 4}}
	}

	start := time.Now()
	results := make([]result, len(paths))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, cfg.workers))
	for i, path := range paths {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, path string) {
			defer wg.Done()
			defer func() { <-sem }()
			name := filepath.Base(path)
			if ctx.Err() != nil {
				results[i] = result{name: name, err: fmt.Errorf("%w: %w", guard.ErrCanceled, ctx.Err())}
				return
			}
			// Panic isolation: one crashing net becomes that net's
			// failure line, not a batch abort.
			var r result
			if perr := guard.Safe("designopt "+name, func() error {
				r = optimizeOne(ctx, path, cfg, params, lib, opts)
				return nil
			}); perr != nil {
				r = result{name: name, err: perr}
			}
			results[i] = r
		}(i, path)
	}
	wg.Wait()
	elapsed := time.Since(start)

	totalBuffers, bad, fixed, failed := 0, 0, 0, 0
	tierCount := map[core.Tier]int{}
	causes := map[string]int{}
	for _, r := range results {
		if cfg.verbose && r.err == nil {
			fmt.Println(r.summary)
			for _, te := range r.tierErrs {
				fmt.Printf("  %s: %v\n", r.name, te)
			}
		}
		if r.err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "  %s: %v\n", r.name, r.err)
			continue
		}
		tierCount[r.tier]++
		for _, te := range r.tierErrs {
			causes[guard.Class(te.Err)]++
		}
		totalBuffers += r.buffers
		if r.wasBad {
			bad++
			if r.fixed {
				fixed++
			}
		}
	}
	fmt.Printf("design: %d nets, %d with noise violations, %d fixed, %d buffers inserted, %d failures, %.2fs\n",
		len(paths), bad, fixed, totalBuffers, failed, elapsed.Seconds())
	printTiers(tierCount, causes)
	if cerr := ctx.Err(); cerr != nil && !errors.Is(cerr, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", guard.ErrCanceled, cerr)
	}
	if fixed < bad {
		return fmt.Errorf("%d nets could not be fixed", bad-fixed)
	}
	return nil
}

// printTiers summarizes which degradation tier answered each net and why
// the stronger tiers gave up (guard error classes), so a budget set too
// tight — and whether it was the clock or a resource cap — is visible at a
// glance.
func printTiers(tierCount map[core.Tier]int, causes map[string]int) {
	if len(tierCount) == 0 {
		return
	}
	tiers := make([]core.Tier, 0, len(tierCount))
	for t := range tierCount {
		tiers = append(tiers, t)
	}
	sort.Slice(tiers, func(i, j int) bool { return tiers[i] < tiers[j] })
	fmt.Printf("tiers:")
	for _, t := range tiers {
		fmt.Printf(" %s=%d", t, tierCount[t])
	}
	fmt.Println()
	if len(causes) == 0 {
		return
	}
	classes := make([]string, 0, len(causes))
	for c := range causes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	fmt.Printf("degradation causes:")
	for _, c := range classes {
		fmt.Printf(" %s=%d", c, causes[c])
	}
	fmt.Println()
}

func optimizeOne(ctx context.Context, path string, cfg config, params noise.Params, lib *buffers.Library, opts core.Options) result {
	name := filepath.Base(path)
	f, err := os.Open(path)
	if err != nil {
		return result{name: name, err: err}
	}
	tr, err := netfmt.Read(f)
	f.Close()
	if err != nil {
		return result{name: name, err: err}
	}
	if err := tr.Validate(); err != nil {
		return result{name: name, err: err}
	}

	wasBad := !noise.Analyze(tr, nil, params).Clean()

	work := tr.Clone()
	if cfg.segLen > 0 {
		if _, err := segment.ByLength(work, cfg.segLen); err != nil {
			return result{name: name, err: err}
		}
		if _, err := work.InsertBelow(work.Root()); err != nil {
			return result{name: name, err: err}
		}
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	if cfg.maxCands > 0 {
		b := guard.New(ctx)
		b.MaxCandidates = cfg.maxCands
		opts.Budget = b
	}
	res, err := core.Solve(ctx, work, lib, params, opts)
	if err != nil {
		return result{name: name, err: err, wasBad: wasBad}
	}
	clean := noise.Analyze(res.Tree, res.Buffers, params).Clean()

	if cfg.out != "" {
		path := filepath.Join(cfg.out, name)
		of, err := os.Create(path)
		if err != nil {
			return result{name: name, err: err}
		}
		werr := writeBuffered(of, res.Solution)
		if cerr := of.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return result{name: name, err: werr}
		}
	}
	return result{
		name:     name,
		buffers:  res.NumBuffers(),
		fixed:    clean,
		wasBad:   wasBad,
		tier:     res.Tier,
		degraded: res.Degraded,
		tierErrs: res.TierErrors,
		summary:  report.Summary(res.Tree, res.Buffers, params),
	}
}

func writeBuffered(f *os.File, sol *core.Solution) error {
	ids := make([]rctree.NodeID, 0, len(sol.Buffers))
	for v := range sol.Buffers {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	fmt.Fprintf(f, "# designopt: %d buffers\n", len(ids))
	for _, v := range ids {
		fmt.Fprintf(f, "# buffer %s at node %d\n", sol.Buffers[v].Name, v)
	}
	return netfmt.Write(f, sol.Tree)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
