// Command benchjson converts `go test -bench` text output into a JSON
// regression record, optionally merged with an obs metrics snapshot so one
// file carries both machine performance (ns/op, allocs/op) and solver
// work counters (candidates generated, prune ratio).
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' . | benchjson -out BENCH_2026-08-05.json
//	benchjson -in bench.txt -metrics metrics.json -out BENCH_2026-08-05.json
//	benchjson -in bench.txt -fleet fleet.json -out BENCH_2026-08-05.json
//
// -fleet merges a cmd/loadgen fleet report (router p50/p99, hedge rate,
// per-arm cache-hit rates) into the record under "fleet"; if the report
// carries a restart arm (loadgen -restart) or an eco arm (loadgen -eco),
// their numbers are also lifted into "derived" as restart_<field> /
// eco_<field> so they trend with the solver metrics.
//
// The input text stays benchstat-compatible (benchjson only reads it);
// scripts/bench.sh tees it alongside the JSON for direct benchstat diffs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BPerOp     float64 `json:"b_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. "reuse_rate") keyed
	// by unit name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Record is the file written to BENCH_<date>.json.
type Record struct {
	Date       string             `json:"date"`
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	Package    string             `json:"pkg,omitempty"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Counters   map[string]int64   `json:"counters,omitempty"`
	Gauges     map[string]int64   `json:"gauges,omitempty"`
	Derived    map[string]float64 `json:"derived,omitempty"`
	// Fleet carries a cmd/loadgen report (router latency quantiles,
	// hedge rate, cache-hit rates per routing arm) verbatim, so one
	// dated file records solver and fleet regressions together.
	Fleet json.RawMessage `json:"fleet,omitempty"`
}

func main() {
	var (
		in      = flag.String("in", "", "bench text input (default stdin)")
		metrics = flag.String("metrics", "", "obs metrics snapshot JSON to merge (optional)")
		fleetIn = flag.String("fleet", "", "cmd/loadgen fleet report JSON to merge (optional)")
		out     = flag.String("out", "", "output JSON path (default stdout)")
	)
	flag.Parse()
	if err := run(*in, *metrics, *fleetIn, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(inPath, metricsPath, fleetPath, outPath string) error {
	var r io.Reader = os.Stdin
	if inPath != "" {
		f, err := os.Open(inPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rec, err := parse(r)
	if err != nil {
		return err
	}
	rec.Date = time.Now().Format("2006-01-02")

	if metricsPath != "" {
		data, err := os.ReadFile(metricsPath)
		if err != nil {
			return err
		}
		var snap struct {
			Counters map[string]int64 `json:"counters"`
			Gauges   map[string]int64 `json:"gauges"`
		}
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("metrics snapshot %s: %w", metricsPath, err)
		}
		rec.Counters = snap.Counters
		rec.Gauges = snap.Gauges
		rec.Derived = derive(snap.Counters)
	}

	// Span-overhead and engine-sweep figures come from the benchmark lines
	// themselves, so they merge with or without a -metrics snapshot.
	for _, dm := range []map[string]float64{
		deriveSpanOverhead(rec.Benchmarks),
		deriveEngineSweep(rec.Benchmarks),
		deriveEco(rec.Benchmarks),
	} {
		if len(dm) == 0 {
			continue
		}
		if rec.Derived == nil {
			rec.Derived = map[string]float64{}
		}
		for k, v := range dm {
			rec.Derived[k] = v
		}
	}

	if fleetPath != "" {
		data, err := os.ReadFile(fleetPath)
		if err != nil {
			return err
		}
		if !json.Valid(data) {
			return fmt.Errorf("fleet report %s: not valid JSON", fleetPath)
		}
		rec.Fleet = json.RawMessage(data)
		// Lift the restart arm's numeric fields (loadgen -restart) into the
		// derived metrics so restart regressions trend alongside the solver
		// numbers: restart_warm_p99_ms, restart_cold_p99_ms, ...
		var fr struct {
			Restart map[string]float64 `json:"restart"`
			Eco     map[string]float64 `json:"eco"`
		}
		if err := json.Unmarshal(data, &fr); err == nil {
			lift := func(prefix string, m map[string]float64) {
				if len(m) == 0 {
					return
				}
				if rec.Derived == nil {
					rec.Derived = map[string]float64{}
				}
				for k, v := range m {
					rec.Derived[prefix+k] = v
				}
			}
			lift("restart_", fr.Restart)
			// The eco arm (loadgen -eco): eco_delta_p99_ms,
			// eco_session_reuse_rate, ... — distinct from the bench-derived
			// eco_speedup / eco_reuse_rate (BenchmarkDeltaResolve).
			lift("eco_", fr.Eco)
		}
	}

	if len(rec.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}
	enc, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(outPath, enc, 0o644)
}

// parse reads `go test -bench` text: header lines (goos/goarch/cpu/pkg)
// and result lines of the form
//
//	BenchmarkName-8    100    11059143 ns/op    4727492 B/op    78610 allocs/op
func parse(r io.Reader) (*Record, error) {
	rec := &Record{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rec.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rec.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rec.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rec.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseLine(line)
			if ok {
				rec.Benchmarks = append(rec.Benchmarks, b)
			}
		}
	}
	return rec, sc.Err()
}

func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BPerOp = v
		case "allocs/op":
			b.AllocsOp = v
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[fields[i+1]] = v
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// derive computes the ratios the regression harness tracks: how hard the
// DP pruned, how often AWE fell back to the Devgan bound.
func derive(counters map[string]int64) map[string]float64 {
	d := map[string]float64{}
	if gen := counters["vg.candidates.generated"]; gen > 0 {
		d["vg_prune_ratio"] = float64(counters["vg.candidates.pruned"]) / float64(gen)
	}
	if runs := counters["sim.awe.rails"]; runs > 0 {
		d["awe_fallback_ratio"] = float64(counters["sim.awe.rejected"]) / float64(runs)
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

// deriveEngineSweep reduces the BenchmarkLibrarySweep rows into the
// engine-comparison figures the regression harness tracks: the classic
// cross-product merge's time over the Li–Shi frontier walk's at each
// library size b (engine_sweep_speedup_b<N>, > 1 means Li–Shi wins), and
// engine_crossover_b, the smallest b where Li–Shi is faster (0 if never).
func deriveEngineSweep(benches []Benchmark) map[string]float64 {
	type pair struct{ vg, lishi float64 }
	sizes := map[int]*pair{}
	for _, b := range benches {
		rest, ok := strings.CutPrefix(b.Name, "BenchmarkLibrarySweep/types-")
		if !ok {
			continue
		}
		nStr, engine, ok := strings.Cut(rest, "/")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(nStr)
		if err != nil {
			continue
		}
		p := sizes[n]
		if p == nil {
			p = &pair{}
			sizes[n] = p
		}
		switch {
		case strings.HasPrefix(engine, "vg"):
			p.vg = b.NsPerOp
		case strings.HasPrefix(engine, "lishi"):
			p.lishi = b.NsPerOp
		}
	}
	d := map[string]float64{}
	crossover := 0
	ns := make([]int, 0, len(sizes))
	for n := range sizes {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	for _, n := range ns {
		p := sizes[n]
		if p.vg <= 0 || p.lishi <= 0 {
			continue
		}
		d[fmt.Sprintf("engine_sweep_speedup_b%d", n)] = p.vg / p.lishi
		if crossover == 0 && p.lishi < p.vg {
			crossover = n
		}
	}
	if len(d) == 0 {
		return nil
	}
	d["engine_crossover_b"] = float64(crossover)
	return d
}

// deriveSpanOverhead reduces the obs span benchmarks (enabled = metrics
// only, disabled = telemetry off, traced = collector attached) into the
// per-span costs the regression harness tracks, plus the headline
// "what does instrumenting cost" delta. Bench names carry a -N GOMAXPROCS
// suffix, so match on prefix.
func deriveSpanOverhead(benches []Benchmark) map[string]float64 {
	pick := func(prefix string) float64 {
		for _, b := range benches {
			if b.Name == prefix || strings.HasPrefix(b.Name, prefix+"-") {
				return b.NsPerOp
			}
		}
		return 0
	}
	d := map[string]float64{}
	enabled := pick("BenchmarkSpanEnabled")
	disabled := pick("BenchmarkSpanDisabled")
	traced := pick("BenchmarkSpanTraced")
	if enabled > 0 {
		d["span_ns_enabled"] = enabled
	}
	if disabled > 0 {
		d["span_ns_disabled"] = disabled
	}
	if traced > 0 {
		d["span_ns_traced"] = traced
	}
	if enabled > 0 && disabled > 0 {
		d["span_overhead_ns"] = enabled - disabled
	}
	if len(d) == 0 {
		return nil
	}
	return d
}

// deriveEco reduces the BenchmarkDeltaResolve rows into the incremental
// re-solve figures the regression harness tracks: eco_speedup, the full
// dynamic program's time over the session delta's for a single-leaf edit
// (the ISSUE's acceptance floor is 10), and eco_reuse_rate, the fraction
// of subtree lookups answered from the session memo.
func deriveEco(benches []Benchmark) map[string]float64 {
	var full, delta float64
	var reuse float64
	for _, b := range benches {
		switch {
		case strings.HasPrefix(b.Name, "BenchmarkDeltaResolve/full"):
			full = b.NsPerOp
		case strings.HasPrefix(b.Name, "BenchmarkDeltaResolve/delta"):
			delta = b.NsPerOp
			reuse = b.Extra["reuse_rate"]
		}
	}
	if full <= 0 || delta <= 0 {
		return nil
	}
	d := map[string]float64{"eco_speedup": full / delta}
	if reuse > 0 {
		d["eco_reuse_rate"] = reuse
	}
	return d
}
