package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: buffopt
cpu: AMD EPYC 7B13
BenchmarkBuffOpt-8   	     100	  11059143 ns/op	 4727492 B/op	   78610 allocs/op
BenchmarkElmoreAnalyze-8  	  500000	      2301 ns/op
BenchmarkTableII-8       	       1	1892273550 ns/op	919023888 B/op	11696899 allocs/op
PASS
ok  	buffopt	12.3s
`

func TestParse(t *testing.T) {
	rec, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Goos != "linux" || rec.Goarch != "amd64" || rec.Package != "buffopt" {
		t.Errorf("header = %q/%q/%q", rec.Goos, rec.Goarch, rec.Package)
	}
	if rec.CPU != "AMD EPYC 7B13" {
		t.Errorf("cpu = %q", rec.CPU)
	}
	if len(rec.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rec.Benchmarks))
	}
	b := rec.Benchmarks[0]
	if b.Name != "BenchmarkBuffOpt-8" || b.Iterations != 100 ||
		b.NsPerOp != 11059143 || b.BPerOp != 4727492 || b.AllocsOp != 78610 {
		t.Errorf("first benchmark = %+v", b)
	}
	// ns/op-only line (no -benchmem columns) still parses.
	if rec.Benchmarks[1].NsPerOp != 2301 || rec.Benchmarks[1].BPerOp != 0 {
		t.Errorf("second benchmark = %+v", rec.Benchmarks[1])
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo-8",
		"BenchmarkFoo-8 abc 123 ns/op",
		"BenchmarkFoo-8 100 xx ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parseLine(%q) accepted", line)
		}
	}
}

func TestDerive(t *testing.T) {
	d := derive(map[string]int64{
		"vg.candidates.generated": 1000,
		"vg.candidates.pruned":    850,
		"sim.awe.rails":           20,
		"sim.awe.rejected":        3,
	})
	if math.Abs(d["vg_prune_ratio"]-0.85) > 1e-12 {
		t.Errorf("vg_prune_ratio = %v", d["vg_prune_ratio"])
	}
	if math.Abs(d["awe_fallback_ratio"]-0.15) > 1e-12 {
		t.Errorf("awe_fallback_ratio = %v", d["awe_fallback_ratio"])
	}
	if derive(map[string]int64{}) != nil {
		t.Error("empty counters should derive nil")
	}
}

// TestDeriveEngineSweep: the library-sweep rows reduce to per-size
// vg/lishi speedups and the smallest library size where Li–Shi wins.
func TestDeriveEngineSweep(t *testing.T) {
	d := deriveEngineSweep([]Benchmark{
		{Name: "BenchmarkLibrarySweep/types-2/vg-8", NsPerOp: 100},
		{Name: "BenchmarkLibrarySweep/types-2/lishi-8", NsPerOp: 125},
		{Name: "BenchmarkLibrarySweep/types-11/vg-8", NsPerOp: 900},
		{Name: "BenchmarkLibrarySweep/types-11/lishi-8", NsPerOp: 300},
		{Name: "BenchmarkLibrarySweep/types-32/lishi-8", NsPerOp: 500}, // vg row missing: skipped
		{Name: "BenchmarkBuffOpt-8", NsPerOp: 42},
	})
	if math.Abs(d["engine_sweep_speedup_b2"]-0.8) > 1e-12 {
		t.Errorf("speedup_b2 = %v", d["engine_sweep_speedup_b2"])
	}
	if math.Abs(d["engine_sweep_speedup_b11"]-3) > 1e-12 {
		t.Errorf("speedup_b11 = %v", d["engine_sweep_speedup_b11"])
	}
	if _, ok := d["engine_sweep_speedup_b32"]; ok {
		t.Error("half-present size 32 should be skipped")
	}
	if d["engine_crossover_b"] != 11 {
		t.Errorf("crossover = %v, want 11", d["engine_crossover_b"])
	}
	if deriveEngineSweep([]Benchmark{{Name: "BenchmarkBuffOpt-8", NsPerOp: 1}}) != nil {
		t.Error("no sweep rows should derive nil")
	}
}

// TestDeriveEco: the full/delta pair from BenchmarkDeltaResolve reduces
// to eco_speedup, and the delta row's custom reuse_rate unit rides along
// as eco_reuse_rate.
func TestDeriveEco(t *testing.T) {
	d := deriveEco([]Benchmark{
		{Name: "BenchmarkDeltaResolve/full-8", NsPerOp: 7_000_000},
		{Name: "BenchmarkDeltaResolve/delta-8", NsPerOp: 250_000,
			Extra: map[string]float64{"reuse_rate": 0.99}},
	})
	if math.Abs(d["eco_speedup"]-28) > 1e-9 {
		t.Errorf("eco_speedup = %v, want 28", d["eco_speedup"])
	}
	if math.Abs(d["eco_reuse_rate"]-0.99) > 1e-12 {
		t.Errorf("eco_reuse_rate = %v", d["eco_reuse_rate"])
	}
	if deriveEco([]Benchmark{{Name: "BenchmarkDeltaResolve/full-8", NsPerOp: 1}}) != nil {
		t.Error("a lone full row should derive nil")
	}
}

// TestParseLineExtraUnits: custom b.ReportMetric units land in Extra.
func TestParseLineExtraUnits(t *testing.T) {
	b, ok := parseLine("BenchmarkDeltaResolve/delta-8   	    5000	    238833 ns/op	         0.9899 reuse_rate")
	if !ok {
		t.Fatal("line did not parse")
	}
	if b.NsPerOp != 238833 || math.Abs(b.Extra["reuse_rate"]-0.9899) > 1e-12 {
		t.Errorf("parsed %+v", b)
	}
}

// TestFleetMerge: a loadgen report rides into the record verbatim under
// "fleet", and a non-JSON report file is a hard error, not silent junk.
func TestFleetMerge(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	fleet := filepath.Join(dir, "fleet.json")
	report := `{"replicas": 3, "arms": [{"routing": "hash", "p99_ms": 4.2}],
		"restart": {"warm_p99_ms": 3.5, "cold_p99_ms": 9.25, "refill_ms": 120.5},
		"eco": {"delta_p99_ms": 1.75, "session_reuse_rate": 0.82, "sessions": 12}}`
	if err := os.WriteFile(fleet, []byte(report), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "out.json")
	if err := run(in, "", fleet, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("output does not parse: %v\n%s", err, data)
	}
	var got struct {
		Replicas int `json:"replicas"`
		Arms     []struct {
			Routing string  `json:"routing"`
			P99MS   float64 `json:"p99_ms"`
		} `json:"arms"`
	}
	if err := json.Unmarshal(rec.Fleet, &got); err != nil {
		t.Fatalf("fleet field does not parse: %v", err)
	}
	if got.Replicas != 3 || len(got.Arms) != 1 || got.Arms[0].Routing != "hash" || got.Arms[0].P99MS != 4.2 {
		t.Errorf("fleet round-trip = %+v", got)
	}
	// The restart arm's numbers are lifted into derived as restart_* so
	// they trend with the rest of the record.
	for k, want := range map[string]float64{
		"restart_warm_p99_ms": 3.5,
		"restart_cold_p99_ms": 9.25,
		"restart_refill_ms":   120.5,
	} {
		if got := rec.Derived[k]; got != want {
			t.Errorf("derived[%q] = %v, want %v", k, got, want)
		}
	}
	// Likewise the eco arm's numbers as eco_*.
	for k, want := range map[string]float64{
		"eco_delta_p99_ms":       1.75,
		"eco_session_reuse_rate": 0.82,
		"eco_sessions":           12,
	} {
		if got := rec.Derived[k]; got != want {
			t.Errorf("derived[%q] = %v, want %v", k, got, want)
		}
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(in, "", bad, out); err == nil {
		t.Error("invalid fleet report accepted")
	}
}
