package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"buffopt/internal/guard"
	"buffopt/internal/netfmt"
)

const pinsFile = `# demo pins
driver 0 0 250 40
sink a 3.0 0.5 25 1.2 0.8
sink b 1.5 1.5 18 1.2 0.8
sink c 0.5 3.0 22 1.2 0.8
`

func writePins(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pins.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAlgorithms(t *testing.T) {
	pins := writePins(t, pinsFile)
	for _, alg := range []string{"mst", "steiner", "pd"} {
		out := filepath.Join(t.TempDir(), alg+".net")
		if err := run(context.Background(), pins, out, alg, 0.5, 80, 200, "demo"); err != nil {
			t.Fatalf("alg %s: %v", alg, err)
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := netfmt.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("alg %s: output unreadable: %v", alg, err)
		}
		if tr.NumSinks() != 3 {
			t.Errorf("alg %s: %d sinks", alg, tr.NumSinks())
		}
		if tr.Node(tr.Root()).Name != "demo" {
			t.Errorf("alg %s: name %q", alg, tr.Node(tr.Root()).Name)
		}
	}
}

func TestReadPinsErrors(t *testing.T) {
	cases := map[string]string{
		"no driver":    "sink a 1 1 10 1 0.8\n",
		"no sinks":     "driver 0 0 100 10\n",
		"short driver": "driver 0 0\nsink a 1 1 10 1 0.8\n",
		"short sink":   "driver 0 0 100 10\nsink a 1 1\n",
		"bad number":   "driver 0 zero 100 10\nsink a 1 1 10 1 0.8\n",
		"unknown kind": "driver 0 0 100 10\nwidget a 1 1 10 1 0.8\n",
	}
	for name, content := range cases {
		t.Run(strings.ReplaceAll(name, " ", "_"), func(t *testing.T) {
			if _, err := readPins(writePins(t, content), "x"); err == nil {
				t.Errorf("%s accepted", name)
			}
		})
	}
	if _, err := readPins("/nonexistent", "x"); err == nil {
		t.Errorf("missing file accepted")
	}
	if err := run(context.Background(), writePins(t, pinsFile), filepath.Join(t.TempDir(), "o.net"), "bogus", 0.5, 80, 200, "x"); err == nil {
		t.Errorf("unknown algorithm accepted")
	}
}

func TestReadPinsRejectsNonFinite(t *testing.T) {
	cases := map[string]string{
		"inf driver R": "driver 0 0 +Inf 10\nsink a 1 1 10 1 0.8\n",
		"nan sink cap": "driver 0 0 100 10\nsink a 1 1 NaN 1 0.8\n",
		"-inf rat":     "driver 0 0 100 10\nsink a 1 1 10 -Inf 0.8\n",
	}
	for name, content := range cases {
		t.Run(strings.ReplaceAll(name, " ", "_"), func(t *testing.T) {
			_, err := readPins(writePins(t, content), "x")
			if !errors.Is(err, guard.ErrInvalidInput) {
				t.Errorf("%s: got %v, want ErrInvalidInput", name, err)
			}
		})
	}
}

func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, writePins(t, pinsFile), filepath.Join(t.TempDir(), "o.net"), "steiner", 0.5, 80, 200, "x")
	if !errors.Is(err, guard.ErrCanceled) {
		t.Errorf("canceled run: got %v, want ErrCanceled", err)
	}
}
