// Command route builds a routing-tree estimate from pin placements and
// writes it in the netfmt format, ready for cmd/buffopt.
//
// Input (one pin per line; '#' comments allowed):
//
//	driver <x_mm> <y_mm> <R_ohm> <T_ps>
//	sink <name> <x_mm> <y_mm> <cap_fF> <rat_ns> <nm_V>
//
// Usage:
//
//	route -pins pins.txt -out net.net [-alg mst|steiner|pd] [-c 0.5]
//	      [-rpermm 80] [-cpermm 200]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"buffopt/internal/guard"
	"buffopt/internal/netfmt"
	"buffopt/internal/rctree"
	"buffopt/internal/steiner"
)

func main() {
	var (
		pins    = flag.String("pins", "", "pin placement file (required)")
		out     = flag.String("out", "", "output net file (required)")
		alg     = flag.String("alg", "steiner", "topology: mst, steiner (iterated 1-Steiner), pd (Prim–Dijkstra)")
		c       = flag.Float64("c", 0.5, "Prim–Dijkstra blend parameter (pd only)")
		rPerMM  = flag.Float64("rpermm", 80, "wire resistance, Ω/mm")
		cPerMM  = flag.Float64("cpermm", 200, "wire capacitance, fF/mm")
		name    = flag.String("name", "net", "net name")
		timeout = flag.Duration("timeout", 0*time.Second, "wall-clock budget for routing (0 disables)")
	)
	flag.Parse()
	if *pins == "" || *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *pins, *out, *alg, *c, *rPerMM, *cPerMM, *name); err != nil {
		fmt.Fprintln(os.Stderr, "route:", err)
		os.Exit(guard.ExitCode(err))
	}
}

func run(ctx context.Context, pinsPath, outPath, alg string, c, rPerMM, cPerMM float64, name string) error {
	net, err := readPins(pinsPath, name)
	if err != nil {
		return err
	}
	tech := steiner.Tech{RPerLen: rPerMM * 1e3, CPerLen: cPerMM * 1e-15 / 1e-3}
	b := guard.New(ctx)

	var tr *rctree.Tree
	switch alg {
	case "mst":
		tr, err = steiner.RouteBudget(net, tech, steiner.RectilinearMST, b)
	case "steiner":
		tr, err = steiner.RouteBudget(net, tech, steiner.OneSteiner, b)
	case "pd":
		tr, err = steiner.RoutePrimDijkstra(net, tech, c)
	default:
		err = fmt.Errorf("unknown algorithm %q", alg)
	}
	if err != nil {
		return err
	}

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := netfmt.Write(f, tr); err != nil {
		return err
	}
	fmt.Printf("routed %q: %d sinks, %.3f mm, %d nodes → %s\n",
		name, tr.NumSinks(), tr.TotalWireLength()*1e3, tr.Len(), outPath)
	return nil
}

func readPins(path, name string) (steiner.Net, error) {
	f, err := os.Open(path)
	if err != nil {
		return steiner.Net{}, err
	}
	defer f.Close()

	net := steiner.Net{Name: name}
	haveDriver := false
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "driver":
			if len(fields) != 5 {
				return net, fmt.Errorf("line %d: driver wants x y R T", lineNo)
			}
			vals, err := floats(fields[1:], lineNo)
			if err != nil {
				return net, err
			}
			net.Driver = steiner.Point{X: vals[0] * 1e-3, Y: vals[1] * 1e-3}
			net.DriverR = vals[2]
			net.DriverT = vals[3] * 1e-12
			haveDriver = true
		case "sink":
			if len(fields) != 7 {
				return net, fmt.Errorf("line %d: sink wants name x y cap rat nm", lineNo)
			}
			vals, err := floats(fields[2:], lineNo)
			if err != nil {
				return net, err
			}
			net.Sinks = append(net.Sinks, steiner.Sink{
				Name:        fields[1],
				At:          steiner.Point{X: vals[0] * 1e-3, Y: vals[1] * 1e-3},
				Cap:         vals[2] * 1e-15,
				RAT:         vals[3] * 1e-9,
				NoiseMargin: vals[4],
			})
		default:
			return net, fmt.Errorf("line %d: unknown pin kind %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return net, err
	}
	if !haveDriver {
		return net, fmt.Errorf("no driver line in %s", path)
	}
	if len(net.Sinks) == 0 {
		return net, fmt.Errorf("no sinks in %s", path)
	}
	return net, nil
}

func floats(fields []string, lineNo int) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad number %q", lineNo, f)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("line %d: non-finite value %q: %w", lineNo, f, guard.ErrInvalidInput)
		}
		out[i] = v
	}
	return out, nil
}
