// Command buffopt runs the paper's buffer insertion algorithms on a net in
// the netfmt text format and reports timing and noise before and after.
//
// Usage:
//
//	buffopt -net path/to/net.txt [-alg buffopt|minbuf|delayopt|delayoptk|alg1|alg2]
//	        [-k N] [-seglen meters] [-lambda 0.7] [-rise 0.25e-9] [-vdd 1.8]
//	        [-safe] [-verify] [-report] [-write out.txt]
//
// The default algorithm is minbuf, the BuffOpt tool configuration of
// Section V (fewest buffers meeting both noise and timing). -verify
// additionally runs the detailed coupled-RC simulation (the 3dnoise
// stand-in) on the result.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/elmore"
	"buffopt/internal/netfmt"
	"buffopt/internal/noise"
	"buffopt/internal/noisesim"
	"buffopt/internal/rctree"
	"buffopt/internal/report"
	"buffopt/internal/segment"
)

func main() {
	var (
		netPath  = flag.String("net", "", "net file in netfmt format (required)")
		alg      = flag.String("alg", "minbuf", "algorithm: buffopt, minbuf, delayopt, delayoptk, alg1, alg2")
		k        = flag.Int("k", 4, "buffer bound for delayoptk")
		segLen   = flag.Float64("seglen", 0.5e-3, "wire segmenting length in meters (0 disables)")
		lambda   = flag.Float64("lambda", 0.7, "coupling-to-total-capacitance ratio λ")
		rise     = flag.Float64("rise", 0.25e-9, "aggressor rise time, s")
		vdd      = flag.Float64("vdd", 1.8, "supply voltage, V")
		margin   = flag.Float64("bufnm", 0.8, "buffer library noise margin, V")
		safe     = flag.Bool("safe", false, "use exact multi-buffer pruning")
		verify   = flag.Bool("verify", false, "verify the result with the detailed RC simulator")
		rep      = flag.Bool("report", false, "print a full per-sink timing/noise report")
		outPath  = flag.String("write", "", "write the buffered tree to this file (buffers noted as comments)")
		spefPath = flag.String("spef", "", "also write the buffered tree's parasitics as a SPEF fragment")
	)
	flag.Parse()
	if *netPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*netPath, *alg, *k, *segLen, *lambda, *rise, *vdd, *margin, *safe, *verify, *rep, *outPath, *spefPath); err != nil {
		fmt.Fprintln(os.Stderr, "buffopt:", err)
		os.Exit(1)
	}
}

func run(netPath, alg string, k int, segLen, lambda, rise, vdd, margin float64, safe, verify, rep bool, outPath, spefPath string) error {
	f, err := os.Open(netPath)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := netfmt.Read(f)
	if err != nil {
		return err
	}
	params := noise.Params{CouplingRatio: lambda, Slope: vdd / rise}
	lib := buffers.DefaultLibrary(margin)
	opts := core.Options{SafePruning: safe}

	work := tr.Clone()
	if segLen > 0 {
		if _, err := segment.ByLength(work, segLen); err != nil {
			return err
		}
		if _, err := work.InsertBelow(work.Root()); err != nil {
			return err
		}
	}

	before := noise.Analyze(tr, nil, params)
	beforeTiming := elmore.Analyze(tr, nil)
	fmt.Printf("net %s: %d sinks, %.3f mm, %.1f fF total\n",
		tr.Node(tr.Root()).Name, tr.NumSinks(), tr.TotalWireLength()*1e3, tr.TotalCap()*1e15)
	fmt.Printf("before: max delay %.1f ps, worst slack %.1f ps, noise violations %d (max %.3f V)\n",
		beforeTiming.MaxDelay*1e12, beforeTiming.WorstSlack*1e12, len(before.Violations), before.MaxNoise)

	var sol *core.Solution
	var slack float64
	haveSlack := false
	switch alg {
	case "buffopt":
		r, err := core.BuffOpt(work, lib, params, opts)
		if err != nil {
			return err
		}
		sol, slack, haveSlack = r.Solution, r.Slack, true
	case "minbuf":
		r, err := core.BuffOptMinBuffers(work, lib, params, opts)
		if err != nil {
			return err
		}
		sol, slack, haveSlack = r.Solution, r.Slack, true
	case "delayopt":
		r, err := core.DelayOpt(work, lib, opts)
		if err != nil {
			return err
		}
		sol, slack, haveSlack = r.Solution, r.Slack, true
	case "delayoptk":
		r, err := core.DelayOptK(work, lib, k, opts)
		if err != nil {
			return err
		}
		sol, slack, haveSlack = r.Solution, r.Slack, true
	case "alg1":
		sol, err = core.Algorithm1(tr, lib, params)
		if err != nil {
			return err
		}
	case "alg2":
		bin := tr.Clone()
		bin.Binarize()
		sol, err = core.Algorithm2(bin, lib, params)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	after := noise.Analyze(sol.Tree, sol.Buffers, params)
	afterTiming := elmore.Analyze(sol.Tree, sol.Buffers)
	fmt.Printf("after %s: %d buffers, max delay %.1f ps, worst slack %.1f ps, noise violations %d (max %.3f V)\n",
		alg, sol.NumBuffers(), afterTiming.MaxDelay*1e12, afterTiming.WorstSlack*1e12,
		len(after.Violations), after.MaxNoise)
	if haveSlack {
		fmt.Printf("optimizer slack: %.1f ps\n", slack*1e12)
	}

	ids := make([]rctree.NodeID, 0, len(sol.Buffers))
	for v := range sol.Buffers {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, v := range ids {
		n := sol.Tree.Node(v)
		fmt.Printf("  %s at node %d (%.3f, %.3f) mm\n", sol.Buffers[v].Name, v, n.X*1e3, n.Y*1e3)
	}

	if rep {
		fmt.Println()
		if err := report.Write(os.Stdout, sol.Tree, sol.Buffers, report.Options{
			Params: params, ShowBuffers: true,
		}); err != nil {
			return err
		}
	}

	if verify {
		sim, err := noisesim.Simulate(sol.Tree, sol.Buffers, noisesim.Options{Vdd: vdd, Params: params})
		if err != nil {
			return fmt.Errorf("verification: %w", err)
		}
		fmt.Printf("simulator: peak noise %.3f V, violations %d\n", sim.MaxNoise, len(sim.Violations))
	}

	if outPath != "" {
		out, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer out.Close()
		fmt.Fprintf(out, "# buffered by %s; %d buffers\n", alg, sol.NumBuffers())
		for _, v := range ids {
			fmt.Fprintf(out, "# buffer %s at node %d\n", sol.Buffers[v].Name, v)
		}
		if err := netfmt.Write(out, sol.Tree); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if spefPath != "" {
		out, err := os.Create(spefPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := netfmt.WriteSPEF(out, sol.Tree); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", spefPath)
	}
	return nil
}
