// Command buffopt runs the paper's buffer insertion algorithms on a net in
// the netfmt text format and reports timing and noise before and after.
//
// Usage:
//
//	buffopt -net path/to/net.txt [-alg solve|buffopt|minbuf|delayopt|delayoptk|alg1|alg2]
//	        [-engine vg|lishi|auto]
//	        [-k N] [-seglen meters] [-lambda 0.7] [-rise 0.25e-9] [-vdd 1.8]
//	        [-safe] [-verify] [-report] [-write out.txt]
//	        [-timeout 30s] [-max-cands N]
//	        [-metrics out.json] [-v] [-pprof addr] [-cpuprofile f] [-memprofile f]
//
// The default algorithm is solve: the degradation ladder whose exact tier
// is minbuf, the BuffOpt tool configuration of Section V (fewest buffers
// meeting both noise and timing). -verify additionally runs the detailed
// coupled-RC simulation (the 3dnoise stand-in) on the result.
//
// -timeout bounds the wall-clock time and -max-cands the DP candidate
// lists; Ctrl-C cancels cleanly. Under "-alg solve", hitting a bound
// degrades to a cheaper method instead of failing (the tier used is
// printed); every other algorithm reports the budget error.
//
// -metrics writes the telemetry snapshot (candidate counts, prune ratios,
// per-tier durations) as JSON on exit; -v traces solver spans to stderr;
// -pprof serves net/http/pprof and expvar for live inspection.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/elmore"
	"buffopt/internal/guard"
	"buffopt/internal/netfmt"
	"buffopt/internal/noise"
	"buffopt/internal/noisesim"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
	"buffopt/internal/report"
	"buffopt/internal/segment"
)

// config carries the parsed command line.
type config struct {
	netPath, alg      string
	engine            string
	k                 int
	segLen            float64
	lambda, rise, vdd float64
	margin            float64
	safe, verify, rep bool
	outPath, spefPath string
	timeout           time.Duration
	maxCands          int

	verbose    bool
	metrics    string
	pprofAddr  string
	cpuprofile string
	memprofile string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.netPath, "net", "", "net file in netfmt format (required)")
	flag.StringVar(&cfg.alg, "alg", "solve", "algorithm: solve, buffopt, minbuf, delayopt, delayoptk, alg1, alg2")
	flag.StringVar(&cfg.engine, "engine", "", "DP merge engine: vg, lishi, or auto (default vg; answers are bit-identical)")
	flag.IntVar(&cfg.k, "k", 4, "buffer bound for delayoptk")
	flag.Float64Var(&cfg.segLen, "seglen", 0.5e-3, "wire segmenting length in meters (0 disables)")
	flag.Float64Var(&cfg.lambda, "lambda", 0.7, "coupling-to-total-capacitance ratio λ")
	flag.Float64Var(&cfg.rise, "rise", 0.25e-9, "aggressor rise time, s")
	flag.Float64Var(&cfg.vdd, "vdd", 1.8, "supply voltage, V")
	flag.Float64Var(&cfg.margin, "bufnm", 0.8, "buffer library noise margin, V")
	flag.BoolVar(&cfg.safe, "safe", false, "use exact multi-buffer pruning")
	flag.BoolVar(&cfg.verify, "verify", false, "verify the result with the detailed RC simulator")
	flag.BoolVar(&cfg.rep, "report", false, "print a full per-sink timing/noise report")
	flag.StringVar(&cfg.outPath, "write", "", "write the buffered tree to this file (buffers noted as comments)")
	flag.StringVar(&cfg.spefPath, "spef", "", "also write the buffered tree's parasitics as a SPEF fragment")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "wall-clock budget for the solve (0 disables)")
	flag.IntVar(&cfg.maxCands, "max-cands", 0, "cap on DP candidate-list size (0 disables)")
	flag.BoolVar(&cfg.verbose, "v", false, "trace solver spans to stderr")
	flag.StringVar(&cfg.metrics, "metrics", "", "write a JSON metrics snapshot to this file on exit")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	flag.StringVar(&cfg.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	if cfg.netPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	stopObs, err := obs.Start(obs.StartOptions{
		Verbose:        cfg.verbose,
		MetricsPath:    cfg.metrics,
		PprofAddr:      cfg.pprofAddr,
		CPUProfilePath: cfg.cpuprofile,
		MemProfilePath: cfg.memprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "buffopt:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	runErr := run(ctx, cfg)
	if err := stopObs(); err != nil {
		fmt.Fprintln(os.Stderr, "buffopt: telemetry:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "buffopt:", runErr)
		os.Exit(guard.ExitCode(runErr))
	}
}

// budget assembles the run's resource budget from the context and flags.
func (cfg config) budget(ctx context.Context) *guard.Budget {
	b := guard.New(ctx)
	b.MaxCandidates = cfg.maxCands
	return b
}

func run(ctx context.Context, cfg config) error {
	f, err := os.Open(cfg.netPath)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := netfmt.Read(f)
	if err != nil {
		return err
	}
	// netfmt validates structurally; re-validate explicitly so a future
	// reader bug still cannot push a malformed tree into the solvers.
	if err := tr.Validate(); err != nil {
		return fmt.Errorf("net %s failed validation: %w", cfg.netPath, err)
	}
	alg, k, segLen, vdd, rep := cfg.alg, cfg.k, cfg.segLen, cfg.vdd, cfg.rep
	outPath, spefPath := cfg.outPath, cfg.spefPath
	params := noise.Params{CouplingRatio: cfg.lambda, Slope: cfg.vdd / cfg.rise}
	lib := buffers.DefaultLibrary(cfg.margin)
	engine, err := core.ParseEngine(cfg.engine)
	if err != nil {
		return err
	}
	opts := core.Options{SafePruning: cfg.safe, Budget: cfg.budget(ctx), Engine: engine}

	work := tr.Clone()
	if segLen > 0 {
		if _, err := segment.ByLength(work, segLen); err != nil {
			return err
		}
		if _, err := work.InsertBelow(work.Root()); err != nil {
			return err
		}
	}

	before := noise.Analyze(tr, nil, params)
	beforeTiming := elmore.Analyze(tr, nil)
	fmt.Printf("net %s: %d sinks, %.3f mm, %.1f fF total\n",
		tr.Node(tr.Root()).Name, tr.NumSinks(), tr.TotalWireLength()*1e3, tr.TotalCap()*1e15)
	fmt.Printf("before: max delay %.1f ps, worst slack %.1f ps, noise violations %d (max %.3f V)\n",
		beforeTiming.MaxDelay*1e12, beforeTiming.WorstSlack*1e12, len(before.Violations), before.MaxNoise)

	var sol *core.Solution
	var slack float64
	haveSlack := false
	switch alg {
	case "solve":
		r, err := core.Solve(ctx, work, lib, params, opts)
		if err != nil {
			return err
		}
		if r.Degraded {
			fmt.Printf("degraded to tier %s after %d stronger tier(s) hit the budget\n",
				r.Tier, len(r.TierErrors))
			for _, te := range r.TierErrors {
				fmt.Printf("  %v\n", te)
			}
		} else {
			fmt.Printf("solved at tier %s\n", r.Tier)
		}
		sol, slack, haveSlack = r.Solution, r.Slack, true
	case "buffopt":
		r, err := core.BuffOpt(work, lib, params, opts)
		if err != nil {
			return err
		}
		sol, slack, haveSlack = r.Solution, r.Slack, true
	case "minbuf":
		r, err := core.BuffOptMinBuffers(work, lib, params, opts)
		if err != nil {
			return err
		}
		sol, slack, haveSlack = r.Solution, r.Slack, true
	case "delayopt":
		r, err := core.DelayOpt(work, lib, opts)
		if err != nil {
			return err
		}
		sol, slack, haveSlack = r.Solution, r.Slack, true
	case "delayoptk":
		r, err := core.DelayOptK(work, lib, k, opts)
		if err != nil {
			return err
		}
		sol, slack, haveSlack = r.Solution, r.Slack, true
	case "alg1":
		sol, err = core.Algorithm1Budget(tr, lib, params, opts.Budget)
		if err != nil {
			return err
		}
	case "alg2":
		bin := tr.Clone()
		bin.Binarize()
		sol, err = core.Algorithm2Budget(bin, lib, params, opts.Budget)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown algorithm %q", alg)
	}

	after := noise.Analyze(sol.Tree, sol.Buffers, params)
	afterTiming := elmore.Analyze(sol.Tree, sol.Buffers)
	fmt.Printf("after %s: %d buffers, max delay %.1f ps, worst slack %.1f ps, noise violations %d (max %.3f V)\n",
		alg, sol.NumBuffers(), afterTiming.MaxDelay*1e12, afterTiming.WorstSlack*1e12,
		len(after.Violations), after.MaxNoise)
	if haveSlack {
		fmt.Printf("optimizer slack: %.1f ps\n", slack*1e12)
	}

	ids := make([]rctree.NodeID, 0, len(sol.Buffers))
	for v := range sol.Buffers {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, v := range ids {
		n := sol.Tree.Node(v)
		fmt.Printf("  %s at node %d (%.3f, %.3f) mm\n", sol.Buffers[v].Name, v, n.X*1e3, n.Y*1e3)
	}

	if rep {
		fmt.Println()
		if err := report.Write(os.Stdout, sol.Tree, sol.Buffers, report.Options{
			Params: params, ShowBuffers: true,
		}); err != nil {
			return err
		}
	}

	if cfg.verify {
		sim, err := noisesim.Simulate(sol.Tree, sol.Buffers, noisesim.Options{Vdd: vdd, Params: params, Budget: opts.Budget})
		if err != nil {
			return fmt.Errorf("verification: %w", err)
		}
		fmt.Printf("simulator: peak noise %.3f V, violations %d\n", sim.MaxNoise, len(sim.Violations))
	}

	if outPath != "" {
		out, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer out.Close()
		fmt.Fprintf(out, "# buffered by %s; %d buffers\n", alg, sol.NumBuffers())
		for _, v := range ids {
			fmt.Fprintf(out, "# buffer %s at node %d\n", sol.Buffers[v].Name, v)
		}
		if err := netfmt.Write(out, sol.Tree); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", outPath)
	}
	if spefPath != "" {
		out, err := os.Create(spefPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := netfmt.WriteSPEF(out, sol.Tree); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", spefPath)
	}
	return nil
}
