package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"buffopt/internal/guard"
	"buffopt/internal/netfmt"
	"buffopt/internal/netgen"
	"buffopt/internal/noise"
)

// writeTestNet materializes one generated net to disk.
func writeTestNet(t *testing.T) string {
	t.Helper()
	s, err := netgen.Generate(netgen.Config{Seed: 9, NumNets: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.net")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := netfmt.Write(f, s.Nets[0]); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAlgorithms(t *testing.T) {
	path := writeTestNet(t)
	for _, alg := range []string{"minbuf", "buffopt", "delayopt", "delayoptk", "alg1", "alg2"} {
		if alg == "alg1" {
			continue // the generated net is multi-sink; alg1 covered below
		}
		err := run(context.Background(), config{netPath: path, alg: alg, k: 4, segLen: 0.5e-3, lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8})
		if err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
}

func TestRunAlg1OnTwoPin(t *testing.T) {
	// Find a single-sink net in the suite for alg1.
	s, err := netgen.Generate(netgen.Config{Seed: 9, NumNets: 30})
	if err != nil {
		t.Fatal(err)
	}
	path := ""
	for _, tr := range s.Nets {
		if tr.NumSinks() == 1 {
			p := filepath.Join(t.TempDir(), "p2p.net")
			f, err := os.Create(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := netfmt.Write(f, tr); err != nil {
				t.Fatal(err)
			}
			f.Close()
			path = p
			break
		}
	}
	if path == "" {
		t.Skip("no two-pin net in the sample")
	}
	if err := run(context.Background(), config{netPath: path, alg: "alg1", segLen: 0.5e-3, lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8, verify: true, rep: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesOutput(t *testing.T) {
	path := writeTestNet(t)
	out := filepath.Join(t.TempDir(), "buffered.net")
	if err := run(context.Background(), config{netPath: path, alg: "minbuf", segLen: 0.5e-3, lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8, outPath: out, spefPath: filepath.Join(t.TempDir(), "o.spef")}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := netfmt.Read(f)
	if err != nil {
		t.Fatalf("written net unreadable: %v", err)
	}
	if !noise.Analyze(tr, nil, noise.SectionV()).Clean() {
		// The written tree does not carry the buffer assignment (buffers
		// are comments), so it may still 'violate' — only structural
		// validity is required here.
		t.Log("written tree is the segmented topology; buffers are comments")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), config{netPath: "/nonexistent.net", alg: "minbuf", lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8}); err == nil {
		t.Errorf("missing file accepted")
	}
	path := writeTestNet(t)
	if err := run(context.Background(), config{netPath: path, alg: "frobnicate", lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8}); err == nil {
		t.Errorf("unknown algorithm accepted")
	}
}

func TestRunSolveAlg(t *testing.T) {
	path := writeTestNet(t)
	if err := run(context.Background(), config{netPath: path, alg: "solve", segLen: 0.5e-3, lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCanceled(t *testing.T) {
	path := writeTestNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, config{netPath: path, alg: "minbuf", segLen: 0.5e-3, lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8})
	if err == nil {
		t.Fatal("canceled context accepted")
	}
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestRunCandidateCap(t *testing.T) {
	path := writeTestNet(t)
	err := run(context.Background(), config{netPath: path, alg: "minbuf", segLen: 0.1e-3, lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8, maxCands: 1})
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded with a 1-candidate cap", err)
	}
	// The solve algorithm degrades instead of failing under the same cap.
	if err := run(context.Background(), config{netPath: path, alg: "solve", segLen: 0.1e-3, lambda: 0.7, rise: 0.25e-9, vdd: 1.8, margin: 0.8, maxCands: 1}); err != nil {
		t.Fatalf("solve did not degrade: %v", err)
	}
}
