package main

import (
	"os"
	"path/filepath"
	"testing"

	"buffopt/internal/netfmt"
	"buffopt/internal/netgen"
	"buffopt/internal/noise"
)

// writeTestNet materializes one generated net to disk.
func writeTestNet(t *testing.T) string {
	t.Helper()
	s, err := netgen.Generate(netgen.Config{Seed: 9, NumNets: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.net")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := netfmt.Write(f, s.Nets[0]); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAlgorithms(t *testing.T) {
	path := writeTestNet(t)
	for _, alg := range []string{"minbuf", "buffopt", "delayopt", "delayoptk", "alg1", "alg2"} {
		if alg == "alg1" {
			continue // the generated net is multi-sink; alg1 covered below
		}
		err := run(path, alg, 4, 0.5e-3, 0.7, 0.25e-9, 1.8, 0.8, false, false, false, "", "")
		if err != nil {
			t.Errorf("alg %s: %v", alg, err)
		}
	}
}

func TestRunAlg1OnTwoPin(t *testing.T) {
	// Find a single-sink net in the suite for alg1.
	s, err := netgen.Generate(netgen.Config{Seed: 9, NumNets: 30})
	if err != nil {
		t.Fatal(err)
	}
	path := ""
	for _, tr := range s.Nets {
		if tr.NumSinks() == 1 {
			p := filepath.Join(t.TempDir(), "p2p.net")
			f, err := os.Create(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := netfmt.Write(f, tr); err != nil {
				t.Fatal(err)
			}
			f.Close()
			path = p
			break
		}
	}
	if path == "" {
		t.Skip("no two-pin net in the sample")
	}
	if err := run(path, "alg1", 0, 0.5e-3, 0.7, 0.25e-9, 1.8, 0.8, false, true, true, "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesOutput(t *testing.T) {
	path := writeTestNet(t)
	out := filepath.Join(t.TempDir(), "buffered.net")
	if err := run(path, "minbuf", 0, 0.5e-3, 0.7, 0.25e-9, 1.8, 0.8, false, false, false, out, filepath.Join(t.TempDir(), "o.spef")); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := netfmt.Read(f)
	if err != nil {
		t.Fatalf("written net unreadable: %v", err)
	}
	if !noise.Analyze(tr, nil, noise.SectionV()).Clean() {
		// The written tree does not carry the buffer assignment (buffers
		// are comments), so it may still 'violate' — only structural
		// validity is required here.
		t.Log("written tree is the segmented topology; buffers are comments")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent.net", "minbuf", 0, 0, 0.7, 0.25e-9, 1.8, 0.8, false, false, false, "", ""); err == nil {
		t.Errorf("missing file accepted")
	}
	path := writeTestNet(t)
	if err := run(path, "frobnicate", 0, 0, 0.7, 0.25e-9, 1.8, 0.8, false, false, false, "", ""); err == nil {
		t.Errorf("unknown algorithm accepted")
	}
}
