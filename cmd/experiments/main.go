// Command experiments regenerates the paper's evaluation: every table
// (I–IV) and the figure-shaped sweeps, printed in the same row structure
// the paper reports.
//
// Usage:
//
//	experiments                 # everything, 500 nets (a few minutes)
//	experiments -nets 100       # faster, smaller suite
//	experiments -table 3        # only Table III
//	experiments -fig 1          # only the Fig. 1 demo
//
// Absolute values differ from the paper (synthetic nets, host CPU); the
// shapes are the reproduction target: who wins, by roughly what factor,
// where the crossovers fall. See EXPERIMENTS.md for the recorded
// comparison.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"buffopt/internal/experiments"
	"buffopt/internal/guard"
	"buffopt/internal/obs"
)

func main() {
	var (
		nets       = flag.Int("nets", 500, "suite size")
		seed       = flag.Int64("seed", 1, "suite seed")
		segLen     = flag.Float64("seglen", 0.5e-3, "wire segmenting length, m")
		table      = flag.Int("table", 0, "run only this table (1-4)")
		fig        = flag.Int("fig", 0, "run only this figure (1, 2, 3, 6, 7, 17)")
		abl        = flag.Bool("ablations", false, "run the wire-sizing and Problem 3 ablations")
		safe       = flag.Bool("safe", false, "exact multi-buffer pruning")
		timeout    = flag.Duration("timeout", 0*time.Second, "wall-clock budget for the whole run (0 disables)")
		verbose    = flag.Bool("v", false, "trace stage spans to stderr")
		metrics    = flag.String("metrics", "", "write a JSON metrics snapshot to this file on exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof and expvar on this address")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopObs, err := obs.Start(obs.StartOptions{
		Verbose:        *verbose,
		MetricsPath:    *metrics,
		PprofAddr:      *pprofAddr,
		CPUProfilePath: *cpuprofile,
		MemProfilePath: *memprofile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	runErr := run(ctx, *nets, *seed, *segLen, *table, *fig, *abl, *safe)
	if err := stopObs(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: telemetry:", err)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "experiments:", runErr)
		os.Exit(guard.ExitCode(runErr))
	}
}

// check is the between-stages cancellation point: tables and sweeps each
// take seconds to minutes, so Ctrl-C or -timeout takes effect at the next
// stage boundary.
func check(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", guard.ErrCanceled, err)
	}
	return nil
}

// stage runs one table/figure under a span, so every stage's wall time
// lands in the metrics snapshot (experiments.<stage>.duration_ns) with the
// same value the -v trace prints — one measurement, not two bookkeepings.
func stage(ctx context.Context, name string, fn func() error) error {
	if err := check(ctx); err != nil {
		return err
	}
	_, sp := obs.Span(ctx, "experiments."+name)
	if err := fn(); err != nil {
		return sp.Fail(err)
	}
	sp.End()
	return nil
}

func run(ctx context.Context, nets int, seed int64, segLen float64, table, fig int, abl, safe bool) error {
	if fig != 0 && !abl {
		return runFig(ctx, fig)
	}

	if table != 0 || fig == 0 {
		s, err := experiments.NewSuite(experiments.Config{
			Seed: seed, NumNets: nets, SegmentLength: segLen, SafePruning: safe,
		})
		if err != nil {
			return err
		}
		all := table == 0 && !abl
		if all || table == 1 {
			if err := stage(ctx, "table1", func() error {
				fmt.Println(s.RunTableI().Format())
				return nil
			}); err != nil {
				return err
			}
		}
		if all || table == 2 {
			if err := stage(ctx, "table2", func() error {
				fmt.Println(s.RunTableII().Format())
				return nil
			}); err != nil {
				return err
			}
		}
		if all || table == 3 {
			if err := stage(ctx, "table3", func() error {
				fmt.Println(s.RunTableIII().Format())
				return nil
			}); err != nil {
				return err
			}
		}
		if all || table == 4 {
			if err := stage(ctx, "table4", func() error {
				fmt.Println(s.RunTableIV().Format())
				return nil
			}); err != nil {
				return err
			}
		}
		if abl {
			if err := stage(ctx, "ablation.sizing", func() error {
				fmt.Println(s.RunSizingAblation().Format())
				tr, err := experiments.RunProblem3Tradeoff()
				if err != nil {
					return err
				}
				fmt.Println(tr.Format())
				return nil
			}); err != nil {
				return err
			}
			if err := stage(ctx, "ablation.routing", func() error {
				ra, err := experiments.RunRoutingAblation(30)
				if err != nil {
					return err
				}
				fmt.Println(ra.Format())
				return nil
			}); err != nil {
				return err
			}
			return stage(ctx, "ablation.greedy", func() error {
				fmt.Println(s.RunGreedyAblation().Format())
				fmt.Println(s.RunExplicitModeAblation().Format())
				curve, err := experiments.RunBufferCountCurve()
				if err != nil {
					return err
				}
				fmt.Println(curve.Format())
				return nil
			})
		}
		if all {
			return runFig(ctx, 0)
		}
		return nil
	}
	return nil
}

func runFig(ctx context.Context, which int) error {
	all := which == 0
	if all || which == 1 {
		if err := stage(ctx, "fig1", func() error {
			f, err := experiments.RunFig1()
			if err != nil {
				return err
			}
			fmt.Println(f.Format())
			return nil
		}); err != nil {
			return err
		}
	}
	if all || which == 2 {
		if err := stage(ctx, "fig2", func() error {
			f, err := experiments.RunFig2()
			if err != nil {
				return err
			}
			fmt.Println(f.Format())
			return nil
		}); err != nil {
			return err
		}
	}
	if all || which == 3 {
		if err := stage(ctx, "fig3", func() error {
			fmt.Println(experiments.RunFig3().Format())
			return nil
		}); err != nil {
			return err
		}
	}
	if all || which == 6 {
		if err := stage(ctx, "fig6", func() error {
			fmt.Println(experiments.RunTheorem1Sweep().Format())
			return nil
		}); err != nil {
			return err
		}
	}
	if all || which == 7 {
		if err := stage(ctx, "fig7", func() error {
			f, err := experiments.RunFig7()
			if err != nil {
				return err
			}
			fmt.Println(f.Format())
			return nil
		}); err != nil {
			return err
		}
	}
	if all || which == 17 {
		if err := stage(ctx, "fig17", func() error {
			fmt.Println(experiments.RunSeparationSweep().Format())
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
