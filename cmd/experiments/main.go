// Command experiments regenerates the paper's evaluation: every table
// (I–IV) and the figure-shaped sweeps, printed in the same row structure
// the paper reports.
//
// Usage:
//
//	experiments                 # everything, 500 nets (a few minutes)
//	experiments -nets 100       # faster, smaller suite
//	experiments -table 3        # only Table III
//	experiments -fig 1          # only the Fig. 1 demo
//
// Absolute values differ from the paper (synthetic nets, host CPU); the
// shapes are the reproduction target: who wins, by roughly what factor,
// where the crossovers fall. See EXPERIMENTS.md for the recorded
// comparison.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"buffopt/internal/experiments"
	"buffopt/internal/guard"
)

func main() {
	var (
		nets    = flag.Int("nets", 500, "suite size")
		seed    = flag.Int64("seed", 1, "suite seed")
		segLen  = flag.Float64("seglen", 0.5e-3, "wire segmenting length, m")
		table   = flag.Int("table", 0, "run only this table (1-4)")
		fig     = flag.Int("fig", 0, "run only this figure (1, 2, 3, 6, 7, 17)")
		abl     = flag.Bool("ablations", false, "run the wire-sizing and Problem 3 ablations")
		safe    = flag.Bool("safe", false, "exact multi-buffer pruning")
		timeout = flag.Duration("timeout", 0*time.Second, "wall-clock budget for the whole run (0 disables)")
	)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *nets, *seed, *segLen, *table, *fig, *abl, *safe); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// check is the between-stages cancellation point: tables and sweeps each
// take seconds to minutes, so Ctrl-C or -timeout takes effect at the next
// stage boundary.
func check(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", guard.ErrCanceled, err)
	}
	return nil
}

func run(ctx context.Context, nets int, seed int64, segLen float64, table, fig int, abl, safe bool) error {
	if fig != 0 && !abl {
		return runFig(ctx, fig)
	}

	if table != 0 || fig == 0 {
		s, err := experiments.NewSuite(experiments.Config{
			Seed: seed, NumNets: nets, SegmentLength: segLen, SafePruning: safe,
		})
		if err != nil {
			return err
		}
		all := table == 0 && !abl
		if all || table == 1 {
			if err := check(ctx); err != nil {
				return err
			}
			fmt.Println(s.RunTableI().Format())
		}
		if all || table == 2 {
			if err := check(ctx); err != nil {
				return err
			}
			fmt.Println(s.RunTableII().Format())
		}
		if all || table == 3 {
			if err := check(ctx); err != nil {
				return err
			}
			fmt.Println(s.RunTableIII().Format())
		}
		if all || table == 4 {
			if err := check(ctx); err != nil {
				return err
			}
			fmt.Println(s.RunTableIV().Format())
		}
		if abl {
			if err := check(ctx); err != nil {
				return err
			}
			fmt.Println(s.RunSizingAblation().Format())
			tr, err := experiments.RunProblem3Tradeoff()
			if err != nil {
				return err
			}
			fmt.Println(tr.Format())
			if err := check(ctx); err != nil {
				return err
			}
			ra, err := experiments.RunRoutingAblation(30)
			if err != nil {
				return err
			}
			fmt.Println(ra.Format())
			if err := check(ctx); err != nil {
				return err
			}
			fmt.Println(s.RunGreedyAblation().Format())
			fmt.Println(s.RunExplicitModeAblation().Format())
			curve, err := experiments.RunBufferCountCurve()
			if err != nil {
				return err
			}
			fmt.Println(curve.Format())
			return nil
		}
		if all {
			return runFig(ctx, 0)
		}
		return nil
	}
	return nil
}

func runFig(ctx context.Context, which int) error {
	all := which == 0
	if all || which == 1 {
		if err := check(ctx); err != nil {
			return err
		}
		f, err := experiments.RunFig1()
		if err != nil {
			return err
		}
		fmt.Println(f.Format())
	}
	if all || which == 2 {
		if err := check(ctx); err != nil {
			return err
		}
		f, err := experiments.RunFig2()
		if err != nil {
			return err
		}
		fmt.Println(f.Format())
	}
	if all || which == 3 {
		fmt.Println(experiments.RunFig3().Format())
	}
	if all || which == 6 {
		fmt.Println(experiments.RunTheorem1Sweep().Format())
	}
	if all || which == 7 {
		if err := check(ctx); err != nil {
			return err
		}
		f, err := experiments.RunFig7()
		if err != nil {
			return err
		}
		fmt.Println(f.Format())
	}
	if all || which == 17 {
		fmt.Println(experiments.RunSeparationSweep().Format())
	}
	return nil
}