package main

import (
	"context"
	"testing"
)

// TestRunSmallSuite drives the CLI entry points on a tiny suite: every
// table, every figure, and the ablations must produce output without
// error. (The printed rows themselves are asserted in
// internal/experiments; this covers the flag plumbing.)
func TestRunSmallSuite(t *testing.T) {
	for table := 1; table <= 4; table++ {
		if err := run(context.Background(), 15, 1, 0.5e-3, table, 0, false, false); err != nil {
			t.Errorf("table %d: %v", table, err)
		}
	}
	for _, fig := range []int{1, 2, 3, 6, 7, 17} {
		if err := run(context.Background(), 15, 1, 0.5e-3, 0, fig, false, false); err != nil {
			t.Errorf("fig %d: %v", fig, err)
		}
	}
	if err := run(context.Background(), 10, 1, 0.5e-3, 0, 0, true, false); err != nil {
		t.Errorf("ablations: %v", err)
	}
}
