package main

import (
	"os"
	"path/filepath"
	"testing"

	"buffopt/internal/netfmt"
)

func TestNetgenRun(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 15, 7); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.net"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 15 {
		t.Fatalf("wrote %d files, want 15", len(files))
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := netfmt.Read(f)
		f.Close()
		if err != nil {
			t.Errorf("%s unreadable: %v", filepath.Base(path), err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s invalid: %v", filepath.Base(path), err)
		}
	}
}

func TestNetgenRunErrors(t *testing.T) {
	if err := run(t.TempDir(), 0, 1); err == nil {
		t.Errorf("zero net count accepted")
	}
	if err := run("/proc/definitely/not/writable", 2, 1); err == nil {
		t.Errorf("unwritable directory accepted")
	}
}
