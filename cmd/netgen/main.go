// Command netgen emits the synthetic benchmark suite — the stand-in for
// the paper's 500 PowerPC nets — as netfmt files, one per net, plus a
// summary of the Table I sink distribution.
//
// Usage:
//
//	netgen -out nets/ [-n 500] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"buffopt/internal/netfmt"
	"buffopt/internal/netgen"
)

func main() {
	var (
		out  = flag.String("out", "", "output directory (required)")
		n    = flag.Int("n", 500, "number of nets")
		seed = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*out, *n, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "netgen:", err)
		os.Exit(1)
	}
}

func run(out string, n int, seed int64) error {
	s, err := netgen.Generate(netgen.Config{Seed: seed, NumNets: n})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	for i, tr := range s.Nets {
		path := filepath.Join(out, fmt.Sprintf("%s.net", tr.Node(tr.Root()).Name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := netfmt.Write(f, tr); err != nil {
			f.Close()
			return fmt.Errorf("net %d: %w", i, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d nets to %s (seed %d)\n", len(s.Nets), out, seed)
	hist := s.SinkHistogram()
	for i, bin := range netgen.Bins() {
		if bin[0] == bin[1] {
			fmt.Printf("  %d sinks: %d nets\n", bin[0], hist[i])
		} else {
			fmt.Printf("  %d-%d sinks: %d nets\n", bin[0], bin[1], hist[i])
		}
	}
	return nil
}
