package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"buffopt/internal/guard"
)

// TestUsageErrors: flag misuse exits 2 without standing a fleet up.
func TestUsageErrors(t *testing.T) {
	var null bytes.Buffer
	cases := [][]string{
		{"-bogus-flag"},
		{"-routing", "roundrobin"},
		{"-requests", "0"},
		{"-nets", "-1"},
	}
	for _, args := range cases {
		null.Reset()
		if code := run(args, &null, &null); code != guard.ExitUsage {
			t.Errorf("run(%v) = %d, want %d", args, code, guard.ExitUsage)
		}
	}
}

// TestCompareRun drives a small both-arms run through a real in-process
// fleet and checks the report: both arms answered everything, and the
// hash arm's cache-hit rate beats the random control — the measured
// value of affinity routing, and an acceptance gate for this subsystem.
func TestCompareRun(t *testing.T) {
	if testing.Short() {
		t.Skip("stands up two fleets")
	}
	out := filepath.Join(t.TempDir(), "report.json")
	var errBuf bytes.Buffer
	code := run([]string{
		"-replicas", "3",
		"-nets", "8",
		"-requests", "80",
		"-clients", "4",
		"-batch-every", "5",
		"-batch-width", "2",
		"-out", out,
	}, &bytes.Buffer{}, &errBuf)
	if code != guard.ExitOK {
		t.Fatalf("run = %d; stderr:\n%s", code, errBuf.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, data)
	}
	if len(rep.Arms) != 2 {
		t.Fatalf("got %d arms, want 2", len(rep.Arms))
	}
	for _, arm := range rep.Arms {
		if arm.Errors != 0 {
			t.Errorf("%s arm saw %d errors", arm.Routing, arm.Errors)
		}
		if arm.OK != arm.Requests {
			t.Errorf("%s arm: %d ok of %d solves", arm.Routing, arm.OK, arm.Requests)
		}
		if arm.BatchItemsOK != arm.BatchNets {
			t.Errorf("%s arm: %d batch items ok of %d", arm.Routing, arm.BatchItemsOK, arm.BatchNets)
		}
		if arm.P99MS < arm.P50MS {
			t.Errorf("%s arm: p99 %.3f < p50 %.3f", arm.Routing, arm.P99MS, arm.P50MS)
		}
		if arm.CacheLookups == 0 {
			t.Errorf("%s arm recorded no cache lookups", arm.Routing)
		}
	}
	hash, random := rep.Arms[0], rep.Arms[1]
	if hash.Routing != "hash" || random.Routing != "random" {
		t.Fatalf("arm order = %s, %s; want hash, random", hash.Routing, random.Routing)
	}
	// 8 distinct nets over 80 slots: hash routing misses each net once
	// fleet-wide, random routing misses it up to once per replica. The
	// gap is the point of the subsystem; assert it survived measurement.
	if hash.CacheHitRate <= random.CacheHitRate {
		t.Errorf("hash hit rate %.3f not above random %.3f (gain %.3f)",
			hash.CacheHitRate, random.CacheHitRate, rep.AffinityGain)
	}
	if rep.AffinityGain != hash.CacheHitRate-random.CacheHitRate {
		t.Errorf("affinity gain %.3f inconsistent with arms", rep.AffinityGain)
	}
}

// TestRestartArm drives the -restart arm: a snapshotted fleet serves
// half the schedule, one replica kill-restarts (warm), the corpus is
// re-swept, and the report carries warm/cold p99s, the refill time, and
// the snapshot ledger of the restart.
func TestRestartArm(t *testing.T) {
	if testing.Short() {
		t.Skip("stands up a fleet")
	}
	out := filepath.Join(t.TempDir(), "report.json")
	var errBuf bytes.Buffer
	code := run([]string{
		"-replicas", "3",
		"-nets", "6",
		"-requests", "60",
		"-clients", "4",
		"-routing", "hash",
		"-restart",
		"-out", out,
	}, &bytes.Buffer{}, &errBuf)
	if code != guard.ExitOK {
		t.Fatalf("run = %d; stderr:\n%s", code, errBuf.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, data)
	}
	if rep.Restart == nil {
		t.Fatal("report has no restart arm")
	}
	rs := rep.Restart
	if rs.WarmP99MS <= 0 || rs.ColdP99MS <= 0 || rs.RefillMS <= 0 {
		t.Errorf("restart stats not measured: %+v", rs)
	}
	// One clean restart with the snapshot saved first: exactly one load,
	// zero rejections.
	if rs.Loaded != 1 || rs.Rejected != 0 {
		t.Errorf("snapshot ledger loaded=%v rejected=%v, want 1/0", rs.Loaded, rs.Rejected)
	}
}
