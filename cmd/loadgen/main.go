// Command loadgen measures the fleet: it stands up a self-contained
// in-process fleet (N real bufferd replicas behind the bufferfleet
// router, over real loopback TCP), drives mixed solve/batch traffic at
// it, and reports fleet-wide latency quantiles, hedge rate, and cache
// hit rate as JSON. In -routing both mode (the default) it runs the same
// traffic twice — once under hash-affinity routing, once under the
// random-routing control — so the report quantifies what affinity buys:
// with K distinct nets and replica caches larger than K, hash routing
// misses each net once fleet-wide while random routing misses it once
// per replica.
//
// Usage:
//
//	loadgen [-replicas 3] [-nets 12] [-requests 240] [-clients 8]
//	        [-batch-every 5] [-batch-width 3] [-max-sinks 6]
//	        [-workers 2] [-queue 32] [-cache-entries 256]
//	        [-hedge-min 20ms] [-routing both] [-restart] [-eco] [-seed 1]
//	        [-out report.json]
//
// The traffic is deterministic in -seed (net generation and the request
// schedule; goroutine interleaving still varies). Every -batch-every'th
// scheduled request posts a /solve/batch of -batch-width nets instead of
// a single /solve. With -restart, an extra arm runs the same solve
// schedule on a snapshotted, peer-filling fleet, kill-restarts replica 0
// halfway through (snapshot saved first, so it warm-starts), and reports
// the p99 before and after plus the time to re-sweep the corpus. With
// -eco, an extra arm opens one /solve/delta session per net on a single
// replica (sessions are replica-affine by design; the router does not
// proxy them) and drives incremental edit streams at it, reporting delta
// latency quantiles and the session memo's reuse rate. The JSON report
// (stdout, or -out) is merged into BENCH_<date>.json by scripts/bench.sh
// via benchjson -fleet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"buffopt/internal/fleet"
	"buffopt/internal/guard"
	"buffopt/internal/netfmt"
	"buffopt/internal/netgen"
	"buffopt/internal/obs"
	"buffopt/internal/server"
)

// Arm is the measured result of one routing policy over the traffic.
type Arm struct {
	Routing      string  `json:"routing"`
	Requests     int     `json:"requests"`       // solve posts
	BatchPosts   int     `json:"batch_posts"`    // batch posts
	BatchNets    int     `json:"batch_nets"`     // nets inside batches
	OK           int     `json:"ok"`             // 200 solve responses
	BatchItemsOK int     `json:"batch_items_ok"` // per-item successes
	Errors       int     `json:"errors"`         // anything else
	P50MS        float64 `json:"p50_ms"`
	P99MS        float64 `json:"p99_ms"`
	HedgeRate    float64 `json:"hedge_rate"`     // hedges / upstream attempts
	CacheHitRate float64 `json:"cache_hit_rate"` // replica cache hits / lookups
	CacheHits    int64   `json:"cache_hits"`
	CacheLookups int64   `json:"cache_lookups"`
	// SlowestTraces are the arm's slowest solve requests, worst first,
	// each with the trace ID the router minted for it — paste it into
	// GET /debug/trace/<id> to see where the time went.
	SlowestTraces []SlowRequest `json:"slowest_traces,omitempty"`
}

// SlowRequest is one slow solve: its latency and its trace ID.
type SlowRequest struct {
	MS      float64 `json:"ms"`
	TraceID string  `json:"trace_id"`
}

// Report is loadgen's JSON output.
type Report struct {
	Replicas     int           `json:"replicas"`
	Nets         int           `json:"nets"`
	Clients      int           `json:"clients"`
	Seed         int64         `json:"seed"`
	Arms         []Arm         `json:"arms"`
	AffinityGain float64       `json:"affinity_gain,omitempty"` // hash hit rate − random hit rate
	Restart      *RestartStats `json:"restart,omitempty"`
	Eco          *EcoStats     `json:"eco,omitempty"`
}

// RestartStats measures the -restart arm: the same traffic before and
// after one replica is kill-restarted mid-run (snapshot saved first, so
// the comeback is a warm start), plus the cost of re-sweeping the whole
// corpus through the restarted fleet. benchjson lifts these fields into
// the BENCH record's derived metrics as restart_*.
type RestartStats struct {
	WarmP99MS float64 `json:"warm_p99_ms"` // p99 before the restart
	ColdP99MS float64 `json:"cold_p99_ms"` // p99 after the restart
	RefillMS  float64 `json:"refill_ms"`   // wall time of the full-corpus sweep right after the restart
	Loaded    float64 `json:"snapshot_loaded"`
	Rejected  float64 `json:"snapshot_rejected"`
}

// EcoStats measures the -eco arm: one incremental (ECO) session per
// corpus net on a single replica, hammered with edit streams. benchjson
// lifts the numeric fields into the BENCH record's derived metrics as
// eco_* (eco_delta_p99_ms, eco_session_reuse_rate, ...), so delta-path
// regressions trend alongside the solver numbers.
type EcoStats struct {
	Sessions   int     `json:"sessions"`
	Deltas     int     `json:"deltas"`
	OK         int     `json:"ok"`
	Errors     int     `json:"errors"`
	DeltaP50MS float64 `json:"delta_p50_ms"`
	DeltaP99MS float64 `json:"delta_p99_ms"`
	// ReuseRate is memo lookups answered without recomputation, summed
	// over every delta response (reused / lookups).
	ReuseRate float64 `json:"session_reuse_rate"`
	Reused    float64 `json:"reused"`
	Lookups   float64 `json:"lookups"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		replicas     = fs.Int("replicas", 3, "fleet size")
		nets         = fs.Int("nets", 12, "distinct nets in the traffic mix")
		requests     = fs.Int("requests", 240, "scheduled requests (each is one solve, or one batch every -batch-every)")
		clients      = fs.Int("clients", 8, "concurrent client goroutines")
		batchEvery   = fs.Int("batch-every", 5, "every Nth scheduled request is a batch (0 disables batches)")
		batchWidth   = fs.Int("batch-width", 3, "nets per batch post")
		maxSinks     = fs.Int("max-sinks", 6, "sink-count cap for generated nets (small keeps solves fast)")
		workers      = fs.Int("workers", 2, "per-replica worker pool")
		queue        = fs.Int("queue", 32, "per-replica admission queue depth")
		cacheEntries = fs.Int("cache-entries", 256, "per-replica solve-cache entries")
		hedgeMin     = fs.Duration("hedge-min", 20*time.Millisecond, "router hedge-delay floor")
		routing      = fs.String("routing", "both", "hash, random, or both (hash + random control)")
		restart      = fs.Bool("restart", false, "also run the restart arm: kill+restart one replica mid-run (snapshotted, warm start) and report warm/cold p99 and refill time")
		eco          = fs.Bool("eco", false, "also run the eco arm: per-net /solve/delta sessions on one replica, incremental edit streams, delta latency and memo reuse")
		seed         = fs.Int64("seed", 1, "net-generation and schedule seed")
		out          = fs.String("out", "", "write the JSON report here (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return guard.ExitUsage
	}
	var modes []string
	switch *routing {
	case "both":
		modes = []string{fleet.RoutingHash, fleet.RoutingRandom}
	case fleet.RoutingHash, fleet.RoutingRandom:
		modes = []string{*routing}
	default:
		fmt.Fprintf(stderr, "loadgen: unknown -routing %q (want hash, random, or both)\n", *routing)
		return guard.ExitUsage
	}
	if *replicas < 1 || *nets < 1 || *requests < 1 || *clients < 1 || *batchWidth < 1 || *batchEvery < 0 {
		fmt.Fprintln(stderr, "loadgen: counts must be positive (-batch-every 0 disables batches)")
		return guard.ExitUsage
	}

	suite, err := netgen.Generate(netgen.Config{Seed: *seed, NumNets: *nets, MaxSinks: *maxSinks})
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return guard.ExitFailure
	}
	corpus := make([]string, 0, len(suite.Nets))
	for _, tr := range suite.Nets {
		var sb strings.Builder
		if err := netfmt.Write(&sb, tr); err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return guard.ExitFailure
		}
		corpus = append(corpus, sb.String())
	}

	rep := Report{Replicas: *replicas, Nets: *nets, Clients: *clients, Seed: *seed}
	for _, mode := range modes {
		arm, err := runArm(armConfig{
			mode:         mode,
			replicas:     *replicas,
			requests:     *requests,
			clients:      *clients,
			batchEvery:   *batchEvery,
			batchWidth:   *batchWidth,
			workers:      *workers,
			queue:        *queue,
			cacheEntries: *cacheEntries,
			hedgeMin:     *hedgeMin,
			seed:         *seed,
			corpus:       corpus,
		})
		if err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return guard.ExitFailure
		}
		fmt.Fprintf(stderr, "loadgen: %-6s p50 %.2fms p99 %.2fms hedge %.3f cache-hit %.3f (%d/%d)\n",
			mode, arm.P50MS, arm.P99MS, arm.HedgeRate, arm.CacheHitRate, arm.CacheHits, arm.CacheLookups)
		for _, sr := range arm.SlowestTraces {
			fmt.Fprintf(stderr, "loadgen: %-6s slow %8.2fms trace %s (GET /debug/trace/%s on a live fleet)\n",
				mode, sr.MS, sr.TraceID, sr.TraceID)
		}
		rep.Arms = append(rep.Arms, arm)
	}
	if len(rep.Arms) == 2 {
		rep.AffinityGain = rep.Arms[0].CacheHitRate - rep.Arms[1].CacheHitRate
		fmt.Fprintf(stderr, "loadgen: affinity gain %+.3f (hash − random cache-hit rate)\n", rep.AffinityGain)
	}
	if *restart {
		rs, err := runRestartArm(armConfig{
			mode:         fleet.RoutingHash,
			replicas:     *replicas,
			requests:     *requests,
			clients:      *clients,
			workers:      *workers,
			queue:        *queue,
			cacheEntries: *cacheEntries,
			hedgeMin:     *hedgeMin,
			seed:         *seed,
			corpus:       corpus,
		})
		if err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return guard.ExitFailure
		}
		rep.Restart = &rs
		fmt.Fprintf(stderr, "loadgen: restart warm-p99 %.2fms cold-p99 %.2fms refill %.2fms (loaded %d, rejected %d)\n",
			rs.WarmP99MS, rs.ColdP99MS, rs.RefillMS, int64(rs.Loaded), int64(rs.Rejected))
	}
	if *eco {
		es, err := runEcoArm(armConfig{
			requests:     *requests,
			clients:      *clients,
			workers:      *workers,
			queue:        *queue,
			cacheEntries: *cacheEntries,
			seed:         *seed,
			corpus:       corpus,
		})
		if err != nil {
			fmt.Fprintln(stderr, "loadgen:", err)
			return guard.ExitFailure
		}
		rep.Eco = &es
		fmt.Fprintf(stderr, "loadgen: eco sessions %d deltas %d (ok %d, errors %d) p50 %.2fms p99 %.2fms reuse %.3f\n",
			es.Sessions, es.Deltas, es.OK, es.Errors, es.DeltaP50MS, es.DeltaP99MS, es.ReuseRate)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return guard.ExitFailure
	}
	enc = append(enc, '\n')
	if *out == "" {
		stdout.Write(enc)
		return guard.ExitOK
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return guard.ExitFailure
	}
	return guard.ExitOK
}

type armConfig struct {
	mode                   string
	replicas               int
	requests, clients      int
	batchEvery, batchWidth int
	workers, queue         int
	cacheEntries           int
	hedgeMin               time.Duration
	seed                   int64
	corpus                 []string
}

// runArm stands up a fresh fleet (fresh telemetry registry, cold
// caches), drives the schedule through it, and reduces the counters.
// Fresh state per arm is what makes the two arms comparable: the random
// arm must not warm the hash arm's caches or inherit its counters.
func runArm(cfg armConfig) (Arm, error) {
	prev := obs.Default()
	obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(prev)

	lab, err := fleet.StartLab(fleet.LabConfig{
		Replicas: cfg.replicas,
		Server: server.Config{
			Workers:      cfg.workers,
			QueueDepth:   cfg.queue,
			CacheEntries: cfg.cacheEntries,
		},
		Router: fleet.Config{
			Routing:       cfg.mode,
			Seed:          cfg.seed,
			ProbeInterval: 100 * time.Millisecond,
			HedgeMin:      cfg.hedgeMin,
		},
	})
	if err != nil {
		return Arm{}, err
	}
	base := "http://" + lab.Router.Addr()
	arm := Arm{Routing: cfg.mode}

	// The schedule: request i solves corpus[i % nets], except every
	// batch-every'th, which posts a width-sized batch starting there.
	// Clients pull schedule slots round-robin, so the mix and the key
	// sequence are seed-deterministic even though timing is not.
	var (
		mu        sync.Mutex
		latencies []time.Duration
		timed     []SlowRequest
		wg        sync.WaitGroup
	)
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < cfg.requests; i += cfg.clients {
				if cfg.batchEvery > 0 && i%cfg.batchEvery == cfg.batchEvery-1 {
					ok, n := postBatch(base, cfg.corpus, i, cfg.batchWidth)
					mu.Lock()
					arm.BatchPosts++
					arm.BatchNets += cfg.batchWidth
					arm.BatchItemsOK += ok
					arm.Errors += n
					mu.Unlock()
					continue
				}
				start := time.Now()
				ok, trace := postSolve(base, cfg.corpus[i%len(cfg.corpus)])
				d := time.Since(start)
				mu.Lock()
				arm.Requests++
				if ok {
					arm.OK++
					latencies = append(latencies, d)
					timed = append(timed, SlowRequest{
						MS:      float64(d) / float64(time.Millisecond),
						TraceID: trace,
					})
				} else {
					arm.Errors++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if err := lab.Close(); err != nil {
		return Arm{}, err
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	arm.P50MS = quantileMS(latencies, 0.50)
	arm.P99MS = quantileMS(latencies, 0.99)

	// The slowest few requests, worst first, keyed by trace ID. The lab is
	// gone by the time this prints, but against a live fleet these IDs are
	// exactly what /debug/trace/<id> and the flight recorder answer for.
	sort.Slice(timed, func(i, j int) bool { return timed[i].MS > timed[j].MS })
	if len(timed) > 5 {
		timed = timed[:5]
	}
	arm.SlowestTraces = timed

	ctr := obs.Default().Snapshot().Counters
	if attempts := ctr["fleet.attempt.launched"]; attempts > 0 {
		arm.HedgeRate = float64(ctr["fleet.hedge.launched"]) / float64(attempts)
	}
	arm.CacheHits = ctr["server.cache.hits"]
	arm.CacheLookups = ctr["server.cache.lookups"]
	if arm.CacheLookups > 0 {
		arm.CacheHitRate = float64(arm.CacheHits) / float64(arm.CacheLookups)
	}
	return arm, nil
}

// runRestartArm measures crash/restart resilience: a snapshotted,
// peer-filling fleet serves the first half of the schedule (warm), then
// replica 0 is kill-restarted — snapshot saved first, so the comeback
// warm-starts — the whole corpus is swept once (the refill cost), and the
// second half runs against the restarted fleet (cold). All through the
// router: the latencies include whatever failover and peer-fill work the
// restart window causes.
func runRestartArm(cfg armConfig) (RestartStats, error) {
	prev := obs.Default()
	obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(prev)

	snapDir, err := os.MkdirTemp("", "loadgen-snap-")
	if err != nil {
		return RestartStats{}, err
	}
	defer os.RemoveAll(snapDir)

	lab, err := fleet.StartLab(fleet.LabConfig{
		Replicas: cfg.replicas,
		Server: server.Config{
			Workers:      cfg.workers,
			QueueDepth:   cfg.queue,
			CacheEntries: cfg.cacheEntries,
		},
		Router: fleet.Config{
			Routing:       cfg.mode,
			Seed:          cfg.seed,
			ProbeInterval: 100 * time.Millisecond,
			HedgeMin:      cfg.hedgeMin,
		},
		SnapshotDir: snapDir,
		PeerFill:    cfg.replicas > 1,
	})
	if err != nil {
		return RestartStats{}, err
	}
	base := "http://" + lab.Router.Addr()

	half := func(lo, hi int) []time.Duration {
		var (
			mu        sync.Mutex
			latencies []time.Duration
			wg        sync.WaitGroup
		)
		for c := 0; c < cfg.clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := lo + c; i < hi; i += cfg.clients {
					start := time.Now()
					ok, _ := postSolve(base, cfg.corpus[i%len(cfg.corpus)])
					if ok {
						d := time.Since(start)
						mu.Lock()
						latencies = append(latencies, d)
						mu.Unlock()
					}
				}
			}(c)
		}
		wg.Wait()
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		return latencies
	}

	var rs RestartStats
	warm := half(0, cfg.requests/2)
	rs.WarmP99MS = quantileMS(warm, 0.99)

	if err := lab.Replicas[0].Server.SaveSnapshot(); err != nil {
		return RestartStats{}, err
	}
	if err := lab.Replicas[0].Restart(nil); err != nil {
		return RestartStats{}, err
	}
	refillStart := time.Now()
	for _, net := range cfg.corpus {
		postSolve(base, net)
	}
	rs.RefillMS = float64(time.Since(refillStart)) / float64(time.Millisecond)

	cold := half(cfg.requests/2, cfg.requests)
	rs.ColdP99MS = quantileMS(cold, 0.99)

	if err := lab.Close(); err != nil {
		return RestartStats{}, err
	}
	ctr := obs.Default().Snapshot().Counters
	rs.Loaded = float64(ctr["server.cache.snapshot.loaded"])
	rs.Rejected = float64(ctr["server.cache.snapshot.rejected"])
	return rs, nil
}

// runEcoArm measures the incremental (ECO) path: one /solve/delta
// session per corpus net on a single replica — sessions are
// replica-affine by design, so the router is not involved — then an
// edit stream of small sink-cap perturbations spread across the client
// goroutines. Every 200 carries the session memo's per-response reuse
// ledger; the arm sums it into a fleet-level reuse rate.
func runEcoArm(cfg armConfig) (EcoStats, error) {
	prev := obs.Default()
	obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(prev)

	lab, err := fleet.StartLab(fleet.LabConfig{
		Replicas: 1,
		Server: server.Config{
			Workers:      cfg.workers,
			QueueDepth:   cfg.queue,
			CacheEntries: cfg.cacheEntries,
		},
	})
	if err != nil {
		return EcoStats{}, err
	}
	base := "http://" + lab.Replicas[0].Name

	// One session per corpus net. Sink IDs and baseline caps come from
	// re-reading the corpus text: segmentation appends its new nodes
	// after the originals, so file node IDs survive on the server side.
	type ecoSession struct {
		id    string
		sinks []int
		caps  []float64
	}
	var es EcoStats
	var sessions []ecoSession
	for _, net := range cfg.corpus {
		tr, err := netfmt.Read(strings.NewReader(net))
		if err != nil {
			lab.Close()
			return EcoStats{}, err
		}
		n, _ := json.Marshal(net)
		status, raw := postDelta(base, fmt.Sprintf(`{"v": 2, "net": %s}`, n))
		if status != http.StatusOK {
			es.Errors++
			continue
		}
		var dr server.DeltaResponse
		if err := json.Unmarshal(raw, &dr); err != nil || dr.SessionID == "" {
			es.Errors++
			continue
		}
		s := ecoSession{id: dr.SessionID}
		for _, id := range tr.Sinks() {
			s.sinks = append(s.sinks, int(id))
			s.caps = append(s.caps, tr.Node(id).Cap)
		}
		sessions = append(sessions, s)
	}
	es.Sessions = len(sessions)
	if es.Sessions == 0 {
		lab.Close()
		return EcoStats{}, fmt.Errorf("eco arm: no sessions could be created")
	}

	var (
		mu              sync.Mutex
		latencies       []time.Duration
		reused, lookups float64
		wg              sync.WaitGroup
	)
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < cfg.requests; i += cfg.clients {
				s := sessions[i%len(sessions)]
				j := i % len(s.sinks)
				// Small deterministic perturbation of the sink's own cap:
				// every edit changes the answer without risking a noise
				// infeasibility that a wild cap value could cause.
				v := s.caps[j] * (1 + 0.02*float64(i%7))
				body := fmt.Sprintf(`{"v": 2, "session": {"id": %q}, "edits": [{"op": "set-cap", "node": %d, "value": %g}]}`,
					s.id, s.sinks[j], v)
				start := time.Now()
				status, raw := postDelta(base, body)
				d := time.Since(start)
				mu.Lock()
				es.Deltas++
				if status == http.StatusOK {
					var dr server.DeltaResponse
					if json.Unmarshal(raw, &dr) == nil {
						reused += float64(dr.Reused)
						lookups += float64(dr.Lookups)
					}
					es.OK++
					latencies = append(latencies, d)
				} else {
					es.Errors++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if err := lab.Close(); err != nil {
		return EcoStats{}, err
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	es.DeltaP50MS = quantileMS(latencies, 0.50)
	es.DeltaP99MS = quantileMS(latencies, 0.99)
	es.Reused = reused
	es.Lookups = lookups
	if lookups > 0 {
		es.ReuseRate = reused / lookups
	}
	return es, nil
}

// postDelta posts a v2 delta envelope directly at one replica and
// returns the status code and body.
func postDelta(base, body string) (int, []byte) {
	resp, err := http.Post(base+"/solve/delta", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// postSolve posts one net and returns whether it succeeded plus the
// trace ID the router stamped on the response (X-Trace-Id).
func postSolve(base, net string) (bool, string) {
	resp, err := http.Post(base+"/solve", "text/plain", strings.NewReader(net))
	if err != nil {
		return false, ""
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK, resp.Header.Get("X-Trace-Id")
}

// postBatch posts a width-wide batch starting at schedule slot i and
// returns (items succeeded, items failed).
func postBatch(base string, corpus []string, i, width int) (ok, failed int) {
	items := make([]string, 0, width)
	for j := 0; j < width; j++ {
		n, _ := json.Marshal(corpus[(i+j)%len(corpus)])
		items = append(items, fmt.Sprintf(`{"net": %s}`, n))
	}
	body := fmt.Sprintf(`{"nets": [%s]}`, strings.Join(items, ","))
	resp, err := http.Post(base+"/solve/batch", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, width
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return 0, width
	}
	var br server.BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil || len(br.Results) != width {
		return 0, width
	}
	for _, item := range br.Results {
		if item.Error == nil {
			ok++
		} else {
			failed++
		}
	}
	return ok, failed
}

// quantileMS reads quantile q from sorted latency samples, in ms.
func quantileMS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
