// Critical bus: a long two-pin wire — the classic global interconnect the
// paper's introduction motivates. This example:
//
//  1. plans the wire with Theorem 1 (how long can an unbuffered run be?),
//
//  2. repairs it with Algorithm 1 (optimal, linear-time noise avoidance
//     for single-sink nets, buffers at maximal Theorem 1 spacing),
//
//  3. compares against DelayOpt and BuffOpt on a segmented copy, showing
//     the delay cost of noise avoidance on this net, and
//
//  4. shows Theorem 2 in action: the delay-optimal buffering of a noisy
//     net can still violate noise.
//
//     go run ./examples/criticalbus
package main

import (
	"fmt"
	"log"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

const (
	busMM   = 10.0  // bus length, mm
	rPerMM  = 80.0  // Ω/mm
	cPerMM  = 200.0 // fF/mm
	driverR = 300.0 // Ω
)

func main() {
	params := noise.SectionV()
	lib := buffers.DefaultLibrary(0.8)
	strongest, err := lib.MinResistance()
	check(err)

	// 1. Planning with Theorem 1: the maximal noise-safe unbuffered run.
	iu := params.PerCap() * cPerMM * 1e-15 * 1e3 // A/m
	lmax, err := core.MaxSafeLength(strongest.R, rPerMM*1e3, iu, 0, 0.8)
	check(err)
	fmt.Printf("Theorem 1: a %s-driven run is noise-safe up to %.2f mm; the bus is %.0f mm\n",
		strongest.Name, lmax*1e3, busMM)

	tr := rctree.New("bus", driverR, 50e-12)
	_, err = tr.AddSink(tr.Root(),
		rctree.Wire{R: rPerMM * busMM, C: cPerMM * busMM * 1e-15, Length: busMM * 1e-3},
		"receiver", 30e-15, 2e-9, 0.8)
	check(err)

	// 2. Algorithm 1.
	sol, err := core.Algorithm1(tr, lib, params)
	check(err)
	fmt.Printf("\nAlgorithm 1: %d buffers at maximal spacing\n", sol.NumBuffers())
	printState("  after Algorithm 1", sol.Tree, sol.Buffers, params)

	// 3. DelayOpt vs BuffOpt on the segmented bus.
	seg := tr.Clone()
	if _, err := segment.ByLength(seg, 0.5e-3); err != nil {
		log.Fatal(err)
	}
	if _, err := seg.InsertBelow(seg.Root()); err != nil {
		log.Fatal(err)
	}
	printState("\nunbuffered bus", tr, nil, params)

	d, err := core.DelayOpt(seg, lib, core.Options{})
	check(err)
	fmt.Printf("\nDelayOpt: %d buffers (pure delay optimum)\n", d.NumBuffers())
	printState("  after DelayOpt", d.Tree, d.Buffers, params)

	b, err := core.BuffOpt(seg, lib, params, core.Options{})
	check(err)
	fmt.Printf("\nBuffOpt: %d buffers (delay optimum subject to noise)\n", b.NumBuffers())
	printState("  after BuffOpt", b.Tree, b.Buffers, params)

	dDelay := elmore.Analyze(d.Tree, d.Buffers).MaxDelay
	bDelay := elmore.Analyze(b.Tree, b.Buffers).MaxDelay
	fmt.Printf("\nnoise-avoidance delay penalty on this bus: %.2f%%\n",
		100*(bDelay-dDelay)/dDelay)

	// 4. Theorem 2: is the delay optimum noise-clean here?
	if !noise.Analyze(d.Tree, d.Buffers, params).Clean() {
		fmt.Println("Theorem 2 in action: the delay-optimal solution still violates noise.")
	} else {
		fmt.Println("On this bus the delay optimum happens to be noise-clean.")
	}
}

func printState(label string, tr *rctree.Tree, assign map[rctree.NodeID]buffers.Buffer, p noise.Params) {
	n := noise.Analyze(tr, assign, p)
	e := elmore.Analyze(tr, assign)
	fmt.Printf("%s: delay %.1f ps, noise bound %.3f V, violations %d\n",
		label, e.MaxDelay*1e12, n.MaxNoise, len(n.Violations))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
