// Noise planning: the pre-route uses of the theory — Theorem 1's maximal
// noise-safe run lengths as a buffer-spacing table per driver strength,
// and eq. (17)'s required victim-aggressor separation as a spacing rule
// for the router. These are the "estimation mode" applications Section
// II-B describes, usable before any routing exists.
//
//	go run ./examples/noiseplanning
package main

import (
	"fmt"
	"log"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/noise"
)

const (
	rPerM = 80e3    // Ω/m
	cPerM = 200e-12 // F/m
	nm    = 0.8     // V
)

func main() {
	params := noise.SectionV()
	lib := buffers.DefaultLibrary(nm)
	iu := params.PerCap() * cPerM

	fmt.Println("Buffer spacing table (Theorem 1): maximal noise-safe run per driver")
	fmt.Printf("%-10s %-10s %s\n", "driver", "R (Ω)", "max run (mm)")
	for _, b := range lib.Sorted() {
		l, err := core.MaxSafeLength(b.R, rPerM, iu, 0, nm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-10.0f %.3f\n", b.Name, b.R, l*1e3)
	}

	fmt.Println("\nEffect of downstream current (a 200 Ω driver):")
	fmt.Printf("%-22s %s\n", "downstream I (mA)", "max run (mm)")
	for _, ma := range []float64{0, 0.2, 0.5, 1.0, 2.0} {
		l, err := core.MaxSafeLength(200, rPerM, iu, ma*1e-3, nm)
		if err != nil {
			fmt.Printf("%-22.1f too late: a buffer is already required\n", ma)
			continue
		}
		fmt.Printf("%-22.1f %.3f\n", ma, l*1e3)
	}

	// Router spacing rule, eq. (17): λ(d) = β/d with β calibrated so that
	// λ = 0.7 at 0.5 µm spacing.
	const beta = 0.7 * 0.5e-6
	fmt.Println("\nRouter spacing rule (eq. 17): required separation from one aggressor")
	fmt.Printf("%-14s %-14s %s\n", "run (mm)", "driver (Ω)", "separation (µm)")
	for _, mm := range []float64{0.5, 1, 2, 3} {
		for _, rb := range []float64{150.0, 400.0} {
			d, err := core.RequiredSeparation(rb, rPerM, cPerM, params.Slope, beta, 0, nm, mm*1e-3)
			if err != nil {
				fmt.Printf("%-14.1f %-14.0f no spacing suffices — insert a buffer\n", mm, rb)
				continue
			}
			fmt.Printf("%-14.1f %-14.0f %.3f\n", mm, rb, d*1e6)
		}
	}

	// Sanity: a wire planned at exactly the table's length is clean, and
	// 10% longer is not — demonstrating the bound is tight.
	b, err := lib.MinResistance()
	if err != nil {
		log.Fatal(err)
	}
	l, err := core.MaxSafeLength(b.R, rPerM, iu, 0, nm)
	if err != nil {
		log.Fatal(err)
	}
	at := core.WireTopNoise(b.R, rPerM*l, iu*l, 0)
	over := core.WireTopNoise(b.R, rPerM*l*1.1, iu*l*1.1, 0)
	fmt.Printf("\ntightness: noise at l_max = %.4f V (margin %.1f), at 1.1·l_max = %.4f V\n", at, nm, over)
}
