// Quickstart: build a small routed net, check its noise and timing, run
// BuffOpt (Algorithm 3 with the Lillis buffer-count extension, the tool
// configuration of the paper's Section V), and verify the result with the
// detailed coupled-RC simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/noisesim"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

func main() {
	// Technology: Section V of the paper. λ = 0.7 of every wire's
	// capacitance couples to an aggressor slewing at 1.8 V / 0.25 ns;
	// every gate tolerates 0.8 V of noise.
	params := noise.SectionV()
	lib := buffers.DefaultLibrary(0.8)

	// A 2-sink net: 3 mm to a far latch, 1.5 mm to a near one, driven by
	// a mid-strength gate (250 Ω). Wires: 80 Ω/mm, 200 fF/mm.
	tr := rctree.New("demo", 250, 40e-12)
	branch, err := tr.AddInternal(tr.Root(), wire(1.5), true)
	check(err)
	_, err = tr.AddSink(branch, wire(3.0), "far_latch", 25e-15, 1.2e-9, 0.8)
	check(err)
	_, err = tr.AddSink(branch, wire(1.5), "near_latch", 18e-15, 1.2e-9, 0.8)
	check(err)

	report("before", tr, nil, params)

	// Preprocess: segment long wires into candidate buffer sites
	// (Alpert–Devgan wire segmenting) and add a site at the driver output.
	work := tr.Clone()
	if _, err := segment.ByLength(work, 0.5e-3); err != nil {
		log.Fatal(err)
	}
	if _, err := work.InsertBelow(work.Root()); err != nil {
		log.Fatal(err)
	}

	// BuffOpt: fewest buffers such that noise and timing are both met.
	res, err := core.BuffOptMinBuffers(work, lib, params, core.Options{})
	check(err)
	fmt.Printf("\nBuffOpt inserted %d buffer(s); optimizer slack %.1f ps\n",
		res.NumBuffers(), res.Slack*1e12)
	for v, b := range res.Buffers {
		n := res.Tree.Node(v)
		fmt.Printf("  %s at node %d (%.2f, %.2f) mm\n", b.Name, v, n.X*1e3, n.Y*1e3)
	}
	report("after", res.Tree, res.Buffers, params)

	// Independent verification, as the paper did with 3dnoise.
	sim, err := noisesim.Simulate(res.Tree, res.Buffers, noisesim.Options{Params: params})
	check(err)
	fmt.Printf("\nsimulator peak noise: %.3f V, violations: %d\n", sim.MaxNoise, len(sim.Violations))
}

func wire(mm float64) rctree.Wire {
	return rctree.Wire{R: 80 * mm, C: 200e-15 * mm, Length: mm * 1e-3}
}

func report(label string, tr *rctree.Tree, assign map[rctree.NodeID]buffers.Buffer, p noise.Params) {
	n := noise.Analyze(tr, assign, p)
	e := elmore.Analyze(tr, assign)
	fmt.Printf("%s: max delay %.1f ps, worst slack %.1f ps, peak noise bound %.3f V, violations %d\n",
		label, e.MaxDelay*1e12, e.WorstSlack*1e12, n.MaxNoise, len(n.Violations))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
