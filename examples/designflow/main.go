// Design flow: the whole Section V experiment as a user of the public
// API would run it — generate (or load) a design's nets, repair every
// noise violation with the BuffOpt tool, verify the worst nets with both
// independent analyzers (transient simulation and RICE-style moment
// matching), and print a design-level report.
//
//	go run ./examples/designflow
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"buffopt/internal/core"
	"buffopt/internal/netgen"
	"buffopt/internal/noise"
	"buffopt/internal/noisesim"
	"buffopt/internal/report"
	"buffopt/internal/segment"
)

func main() {
	// A small design: the 40 largest-capacitance nets, Section V
	// technology (λ = 0.7, 1.8 V / 0.25 ns aggressors, 0.8 V margins).
	suite, err := netgen.Generate(netgen.Config{Seed: 42, NumNets: 40})
	check(err)
	params := suite.Tech.Noise

	type outcome struct {
		res    *core.Result
		wasBad bool
	}
	outcomes := make([]outcome, len(suite.Nets))
	bad := 0
	totalBuffers := 0
	for i, tr := range suite.Nets {
		wasBad := !noise.CleanUnbuffered(tr, params)
		if wasBad {
			bad++
		}
		// Preprocess: Alpert–Devgan segmenting plus a driver-output site.
		work := tr.Clone()
		if _, err := segment.ByLength(work, 0.5e-3); err != nil {
			log.Fatal(err)
		}
		if _, err := work.InsertBelow(work.Root()); err != nil {
			log.Fatal(err)
		}
		res, err := core.BuffOptMinBuffers(work, suite.Library, params, core.Options{})
		check(err)
		outcomes[i] = outcome{res: res, wasBad: wasBad}
		totalBuffers += res.NumBuffers()
	}
	fmt.Printf("design: %d nets, %d with noise violations, %d buffers inserted\n",
		len(suite.Nets), bad, totalBuffers)

	// Confirm every net is clean by the metric.
	for i, o := range outcomes {
		if !noise.Analyze(o.res.Tree, o.res.Buffers, params).Clean() {
			log.Fatalf("net %d still violates", i)
		}
	}
	fmt.Println("metric: all nets clean after BuffOpt")

	// Signoff the three noisiest nets with both independent verifiers.
	idx := make([]int, len(outcomes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return suite.Nets[idx[a]].TotalCap() > suite.Nets[idx[b]].TotalCap()
	})
	simOpts := noisesim.Options{Vdd: suite.Tech.Vdd, Params: params}
	for _, i := range idx[:3] {
		o := outcomes[i]
		tran, err := noisesim.Simulate(o.res.Tree, o.res.Buffers, simOpts)
		check(err)
		awe, err := noisesim.SimulateAWE(o.res.Tree, o.res.Buffers, simOpts)
		check(err)
		fmt.Printf("signoff %s: transient peak %.3f V, AWE peak %.3f V, clean %v/%v\n",
			suite.Nets[i].Node(0).Name, tran.MaxNoise, awe.MaxNoise, tran.Clean(), awe.Clean())
	}

	// Full report for the single worst net.
	worst := outcomes[idx[0]]
	fmt.Println()
	check(report.Write(os.Stdout, worst.res.Tree, worst.res.Buffers, report.Options{
		Params: params, Sinks: 5, ShowBuffers: true,
	}))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
