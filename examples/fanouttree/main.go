// Fanout tree: route a multi-sink net from pin placements with the
// iterated 1-Steiner heuristic, then repair its noise with Algorithm 2
// (optimal noise avoidance for multi-sink trees) and independently verify
// with the detailed simulator. This is the end-to-end flow a router would
// run per net: placement → Steiner estimate → buffer insertion → signoff.
//
//	go run ./examples/fanouttree
package main

import (
	"fmt"
	"log"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/noise"
	"buffopt/internal/noisesim"
	"buffopt/internal/steiner"
)

func main() {
	params := noise.SectionV()
	lib := buffers.DefaultLibrary(0.8)

	// A control signal fanning out to six latch banks across a 4×4 mm
	// region, driven from the lower-left corner by a weak gate.
	net := steiner.Net{
		Name:    "ctl_fanout",
		Driver:  steiner.Point{X: 0, Y: 0},
		DriverR: 450,
		DriverT: 60e-12,
		Sinks: []steiner.Sink{
			sink("bank0", 3.8, 0.4),
			sink("bank1", 3.5, 2.0),
			sink("bank2", 4.0, 3.6),
			sink("bank3", 1.8, 3.2),
			sink("bank4", 0.4, 3.9),
			sink("bank5", 2.2, 1.4),
		},
	}
	tech := steiner.Tech{RPerLen: 80e3, CPerLen: 200e-12}

	mst, err := steiner.Route(net, tech, steiner.RectilinearMST)
	check(err)
	rsmt, err := steiner.Route(net, tech, steiner.OneSteiner)
	check(err)
	fmt.Printf("routing: MST %.2f mm, iterated 1-Steiner %.2f mm (%.1f%% shorter)\n",
		mst.TotalWireLength()*1e3, rsmt.TotalWireLength()*1e3,
		100*(1-rsmt.TotalWireLength()/mst.TotalWireLength()))

	before := noise.Analyze(rsmt, nil, params)
	fmt.Printf("unbuffered: %d noise violations, worst bound %.3f V against 0.8 V margins\n",
		len(before.Violations), before.MaxNoise)

	// Algorithm 2: minimum buffers, placed anywhere along wires at their
	// Theorem 1 maximal positions.
	sol, err := core.Algorithm2(rsmt, lib, params)
	check(err)
	after := noise.Analyze(sol.Tree, sol.Buffers, params)
	fmt.Printf("Algorithm 2: %d buffer(s), %d metric violations remain\n",
		sol.NumBuffers(), len(after.Violations))
	for v, b := range sol.Buffers {
		n := sol.Tree.Node(v)
		fmt.Printf("  %s at (%.2f, %.2f) mm\n", b.Name, n.X*1e3, n.Y*1e3)
	}

	// Signoff with the full coupled-RC simulation.
	sim, err := noisesim.Simulate(sol.Tree, sol.Buffers, noisesim.Options{Params: params})
	check(err)
	fmt.Printf("simulator signoff: peak %.3f V, violations %d\n", sim.MaxNoise, len(sim.Violations))
	if sim.Clean() {
		fmt.Println("net is noise-clean.")
	}
}

func sink(name string, xmm, ymm float64) steiner.Sink {
	return steiner.Sink{
		Name:        name,
		At:          steiner.Point{X: xmm * 1e-3, Y: ymm * 1e-3},
		Cap:         22e-15,
		RAT:         2e-9,
		NoiseMargin: 0.8,
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
