// Bidirectional bus: a net with three terminals that can each drive — the
// multi-source extension the paper attributes to Lillis [17]. One
// bidirectional repeater placement must satisfy the noise and timing
// constraints of every drive mode simultaneously.
//
//	go run ./examples/bidirbus
package main

import (
	"fmt"
	"log"

	"buffopt/internal/buffers"
	"buffopt/internal/multisource"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

func main() {
	params := noise.SectionV()

	// A 3-terminal bus in Section V technology: T0 —4mm— tap —3mm— T1,
	// with T2 hanging 2 mm below the tap. Every terminal has a 300 Ω
	// driver and a 25 fF receiver with a 0.8 V margin.
	base := rctree.New("bus", 300, 50e-12)
	tap, err := base.AddInternal(base.Root(), wire(4), true)
	check(err)
	t1, err := base.AddSink(tap, wire(3), "T1", 25e-15, 2e-9, 0.8)
	check(err)
	t2, err := base.AddSink(tap, wire(2), "T2", 25e-15, 2e-9, 0.8)
	check(err)
	_, err = segment.ByLength(base, 0.5e-3)
	check(err)

	term := func(node rctree.NodeID) multisource.Terminal {
		return multisource.Terminal{
			Node: node, DriverR: 300, DriverT: 50e-12,
			Cap: 25e-15, RAT: 2e-9, NoiseMargin: 0.8,
		}
	}
	net := &multisource.Net{
		Base:      base,
		Terminals: []multisource.Terminal{term(base.Root()), term(t1), term(t2)},
	}

	fmt.Println("unbuffered bus, per drive mode:")
	printModes(net, nil, params)

	lib := buffers.DefaultLibrary(0.8)
	assign, reports, err := net.Optimize(lib, params, 0)
	check(err)
	fmt.Printf("\ninserted %d bidirectional repeater(s):\n", len(assign))
	for v, b := range assign {
		n := base.Node(v)
		fmt.Printf("  %s at (%.2f, %.2f) mm\n", b.Name, n.X*1e3, n.Y*1e3)
	}
	fmt.Println("\nafter optimization, per drive mode:")
	for _, r := range reports {
		fmt.Printf("  mode %d: worst slack %.1f ps, max delay %.1f ps, violations %d\n",
			r.Mode, r.Slack*1e12, r.MaxDelay*1e12, r.Violations)
	}
}

func printModes(net *multisource.Net, assign multisource.Placement, p noise.Params) {
	reports, err := net.Evaluate(assign, p)
	check(err)
	for _, r := range reports {
		fmt.Printf("  mode %d: worst slack %.1f ps, max delay %.1f ps, violations %d\n",
			r.Mode, r.Slack*1e12, r.MaxDelay*1e12, r.Violations)
	}
}

func wire(mm float64) rctree.Wire {
	return rctree.Wire{R: 80 * mm, C: 200e-15 * mm, Length: mm * 1e-3}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
