// Benchmarks regenerating the paper's evaluation. One benchmark per table
// and figure (BenchmarkTableI … BenchmarkFig7), plus micro-benchmarks for
// every major subsystem and the ablations DESIGN.md calls out (pruning
// policy, segmentation granularity, routing heuristic).
//
// Run everything:
//
//	go test -bench=. -benchmem
package buffopt_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/circuit"
	"buffopt/internal/core"
	"buffopt/internal/elmore"
	"buffopt/internal/experiments"
	"buffopt/internal/moments"
	"buffopt/internal/noise"
	"buffopt/internal/noisesim"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
	"buffopt/internal/steiner"
)

// benchNets is the suite size for table benchmarks: large enough to be
// representative, small enough for -bench iterations.
const benchNets = 40

func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	s, err := experiments.NewSuite(experiments.Config{Seed: 1, NumNets: benchNets})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTableI regenerates the sink-distribution histogram.
func BenchmarkTableI(b *testing.B) {
	s := benchSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if t := s.RunTableI(); t.Total != benchNets {
			b.Fatalf("bad table: %+v", t)
		}
	}
}

// BenchmarkTableII regenerates the before/after verification, including
// the detailed simulation of every net. A fresh suite per iteration keeps
// the cached BuffOpt results from hiding the real cost.
func BenchmarkTableII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := benchSuite(b)
		b.StartTimer()
		if t := s.RunTableII(); t.MetricAfter != 0 {
			b.Fatalf("violations remain: %+v", t)
		}
	}
}

// BenchmarkTableIII regenerates the BuffOpt vs DelayOpt(k) comparison.
func BenchmarkTableIII(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := benchSuite(b)
		b.StartTimer()
		if t := s.RunTableIII(); t.Rows[0].ViolationsRemaining != 0 {
			b.Fatalf("BuffOpt left violations: %+v", t.Rows[0])
		}
	}
}

// BenchmarkTableIV regenerates the delay-penalty comparison.
func BenchmarkTableIV(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := benchSuite(b)
		b.StartTimer()
		if t := s.RunTableIV(); len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1 regenerates the with/without-buffer simulation demo.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig1()
		if err != nil || !f.FixedByBuffer {
			b.Fatalf("fig1 failed: %+v, %v", f, err)
		}
	}
}

// BenchmarkFig3 regenerates the worked noise computation.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if f := experiments.RunFig3(); !f.Violation {
			b.Fatal("fig3 drifted")
		}
	}
}

// BenchmarkTheorem1 regenerates the l_max sweep (the Fig. 6 shape).
func BenchmarkTheorem1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if sw := experiments.RunTheorem1Sweep(); len(sw.Points) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkFig7 regenerates the iterative Algorithm 1 walk.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig7()
		if err != nil || !f.Clean {
			b.Fatalf("fig7 failed: %+v, %v", f, err)
		}
	}
}

// BenchmarkEq17 regenerates the separation sweep.
func BenchmarkEq17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if sw := experiments.RunSeparationSweep(); len(sw.Points) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// -------------------------------------------------- subsystem benchmarks

// benchNet returns one representative segmented multi-sink net.
func benchNet(b *testing.B) (*rctree.Tree, *buffers.Library, noise.Params) {
	b.Helper()
	s := benchSuite(b)
	// Pick the largest net for a meaty workload.
	return s.Segmented[0], s.Library, s.Tech.Noise
}

// BenchmarkBuffOptMinBuffers is the Section V tool on one large net.
func BenchmarkBuffOptMinBuffers(b *testing.B) {
	tr, lib, p := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuffOptMinBuffers(tr, lib, p, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuffOpt is plain Algorithm 3 (Problem 2) on one large net.
func BenchmarkBuffOpt(b *testing.B) {
	tr, lib, p := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuffOpt(tr, lib, p, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelayOpt is the unconstrained baseline on the same net.
func BenchmarkDelayOpt(b *testing.B) {
	tr, lib, _ := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DelayOpt(tr, lib, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDelayOptK4 is DelayOpt(4), the Table III workhorse.
func BenchmarkDelayOptK4(b *testing.B) {
	tr, lib, _ := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DelayOptK(tr, lib, 4, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveUncached is the whole degradation ladder on one large
// net — the baseline BenchmarkSolveCached's hits are measured against
// (the tentpole acceptance: a hit is ≥10× cheaper than a solve).
func BenchmarkSolveUncached(b *testing.B) {
	tr, lib, p := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(context.Background(), tr, lib, p, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveCached measures a cache hit: the canonical hash of the
// problem plus one deep copy of the stored result, no DP at all.
func BenchmarkSolveCached(b *testing.B) {
	tr, lib, p := benchNet(b)
	c := core.NewSolveCache(64, 0, "bench")
	if _, err := core.Solve(context.Background(), tr, lib, p, core.Options{Cache: c}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(context.Background(), tr, lib, p, core.Options{Cache: c})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Cached {
			b.Fatal("prewarmed solve missed the cache")
		}
	}
}

// BenchmarkBuffOptWorkers sweeps the DP's worker-pool width on one large
// net: workers-1 is the serial walk, the others force the branch-merge
// pool (bit-identical answers; see the differential suite). On multicore
// hosts the wide rows show the speedup; on one CPU they price the
// scheduling overhead.
func BenchmarkBuffOptWorkers(b *testing.B) {
	tr, lib, p := benchNet(b)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuffOptMinBuffers(tr, lib, p, core.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableIIWorkers prices the whole Table II pipeline at each
// worker width — the end-to-end number the batching speedup note in
// EXPERIMENTS.md quotes.
func BenchmarkTableIIWorkers(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := benchSuite(b)
				s.Config.DPWorkers = w
				b.StartTimer()
				if t := s.RunTableII(); t.MetricAfter != 0 {
					b.Fatalf("violations remain: %+v", t)
				}
			}
		})
	}
}

// sweepLibrary builds a b-type non-inverting library spanning the default
// library's drive range geometrically: stronger types trade lower output
// resistance for higher input capacitance, so no type dominates another
// and the DP genuinely carries candidates from every type — the merge
// work scales with b instead of collapsing to one survivor.
func sweepLibrary(n int, noiseMargin float64) *buffers.Library {
	l := &buffers.Library{}
	for i := 0; i < n; i++ {
		f := 1.0
		if n > 1 {
			f = float64(i) / float64(n-1)
		}
		// Drive ratio 1..15, the span of the default library (100 Ω to
		// 1.5 kΩ); stronger buffers pay more Cin and intrinsic delay.
		w := math.Pow(15, f)
		l.Buffers = append(l.Buffers, buffers.Buffer{
			Name:        fmt.Sprintf("SWP_X%d", i),
			R:           1500 / w,
			Cin:         8e-15 * w,
			T:           40e-12 * (1 + 0.5*f),
			NoiseMargin: noiseMargin,
		})
	}
	return l
}

// BenchmarkLibrarySweep prices the classic O(b²n²) cross-product merge
// against the Li–Shi O(bn²) frontier walk as the library grows: the
// Table II workload net under the delay objective (the fast merge's home
// turf), with b buffer types from 1 to 32. The b=11 row uses the Section V
// library itself. The classic engine's per-merge work grows quadratically
// in the per-type candidate population while Li–Shi's grows linearly, so
// the rows bracket the crossover BENCH and EXPERIMENTS.md quote.
func BenchmarkLibrarySweep(b *testing.B) {
	tr, def, _ := benchNet(b)
	for _, n := range []int{1, 2, 4, 8, 11, 16, 32} {
		lib := sweepLibrary(n, 0.8)
		if n == len(def.Buffers) {
			lib = def // the Section V library, inverters included
		}
		for _, engine := range []string{core.EngineVG, core.EngineLiShi} {
			b.Run(fmt.Sprintf("types-%d/%s", n, engine), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.DelayOpt(tr, lib, core.Options{Engine: engine}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAlgorithm1 repairs a 12 mm two-pin line.
func BenchmarkAlgorithm1(b *testing.B) {
	p := noise.SectionV()
	lib := buffers.DefaultLibrary(0.8)
	tr := rctree.New("line", 300, 0)
	if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 960, C: 2.4e-12, Length: 12e-3}, "s", 30e-15, 0, 0.8); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Algorithm1(tr, lib, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithm2 repairs the largest multi-sink net (continuous
// placements, no segmentation needed).
func BenchmarkAlgorithm2(b *testing.B) {
	s := benchSuite(b)
	tr := s.Nets[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Algorithm2(tr, s.Library, s.Tech.Noise); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoiseAnalyze measures the Devgan metric on a segmented net.
func BenchmarkNoiseAnalyze(b *testing.B) {
	tr, _, p := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := noise.Analyze(tr, nil, p); r.MaxNoise <= 0 {
			b.Fatal("no noise")
		}
	}
}

// BenchmarkElmoreAnalyze measures the timing analyzer on the same net.
func BenchmarkElmoreAnalyze(b *testing.B) {
	tr, _, _ := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := elmore.Analyze(tr, nil); r.MaxDelay <= 0 {
			b.Fatal("no delay")
		}
	}
}

// BenchmarkNoiseSim measures one full coupled-RC transient verification.
func BenchmarkNoiseSim(b *testing.B) {
	s := benchSuite(b)
	tr := s.Nets[len(s.Nets)/2]
	opts := noisesim.Options{Params: s.Tech.Noise}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := noisesim.Simulate(tr, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoiseSimAWE measures the moment-matching verifier on the same
// net as BenchmarkNoiseSim — the RICE-style speedup over full transient.
func BenchmarkNoiseSimAWE(b *testing.B) {
	s := benchSuite(b)
	tr := s.Nets[len(s.Nets)/2]
	opts := noisesim.Options{Params: s.Tech.Noise}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := noisesim.SimulateAWE(tr, nil, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCircuitTransient measures the raw MNA engine on an RC ladder.
func BenchmarkCircuitTransient(b *testing.B) {
	build := func() *circuit.Netlist {
		n := circuit.New()
		prev := n.Node("in")
		if err := n.AddV(prev, circuit.Ground, circuit.Ramp{V1: 1, Rise: 1e-10}); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			next := n.Node("")
			if err := n.AddR(prev, next, 100); err != nil {
				b.Fatal(err)
			}
			if err := n.AddC(next, circuit.Ground, 10e-15); err != nil {
				b.Fatal(err)
			}
			prev = next
		}
		return n
	}
	nl := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := circuit.Transient(nl, circuit.TranOptions{Step: 1e-12, Duration: 2e-9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSteinerMST and BenchmarkSteinerOneSteiner compare the routing
// heuristics on a 10-sink net (the routing ablation).
func BenchmarkSteinerMST(b *testing.B)        { benchSteiner(b, steiner.RectilinearMST) }
func BenchmarkSteinerOneSteiner(b *testing.B) { benchSteiner(b, steiner.OneSteiner) }

func benchSteiner(b *testing.B, alg steiner.Algorithm) {
	b.Helper()
	net := steiner.Net{Name: "bench", Driver: steiner.Point{}, DriverR: 200}
	coords := []struct{ x, y float64 }{
		{1, 0.5}, {2, 3}, {0.5, 2.5}, {3, 1}, {3.5, 3.5},
		{1.5, 1.5}, {2.5, 0.2}, {0.2, 3.8}, {3.9, 2.2}, {2.2, 2.8},
	}
	for i, c := range coords {
		net.Sinks = append(net.Sinks, steiner.Sink{
			Name: "s", At: steiner.Point{X: c.x * 1e-3, Y: c.y * 1e-3},
			Cap: 20e-15, NoiseMargin: 0.8,
		})
		_ = i
	}
	tech := steiner.Tech{RPerLen: 80e3, CPerLen: 200e-12}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := steiner.Route(net, tech, alg); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------------------------- ablations

// BenchmarkAblationPruning compares the paper's 2-D pruning against the
// exact 4-D variant on the same net (DESIGN.md ablation: pruning policy).
func BenchmarkAblationPruning(b *testing.B) {
	tr, lib, p := benchNet(b)
	for _, mode := range []struct {
		name string
		safe bool
	}{{"paper", false}, {"safe", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuffOpt(tr, lib, p, core.Options{SafePruning: mode.safe}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSizing compares BuffOpt with and without simultaneous
// wire sizing (the Lillis [18] extension) on one large net.
func BenchmarkAblationSizing(b *testing.B) {
	tr, lib, p := benchNet(b)
	for _, mode := range []struct {
		name string
		opts core.Options
	}{
		{"buffers-only", core.Options{}},
		{"with-sizing", core.Options{Sizing: &core.Sizing{Widths: []float64{1, 2, 4}}}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuffOptMinBuffers(tr, lib, p, mode.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyIterative measures the related-work baseline ([14],
// [20]) on one large net, for comparison against BenchmarkBuffOpt.
func BenchmarkGreedyIterative(b *testing.B) {
	tr, lib, p := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyIterative(tr, lib, core.GreedyOptions{Noise: true, Params: p}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationRouting runs the routing-substrate comparison.
func BenchmarkAblationRouting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := experiments.RunRoutingAblation(10)
		if err != nil || len(a.Rows) != 3 {
			b.Fatalf("routing ablation failed: %v", err)
		}
	}
}

// BenchmarkProblem3Tradeoff regenerates the buffers/slack trade-off curve.
func BenchmarkProblem3Tradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr, err := experiments.RunProblem3Tradeoff()
		if err != nil || len(tr.Points) == 0 {
			b.Fatalf("tradeoff failed: %v", err)
		}
	}
}

// BenchmarkMoments measures moment computation and two-pole reduction on
// a segmented net.
func BenchmarkMoments(b *testing.B) {
	tr, _, _ := benchNet(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := moments.Delay50(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2 regenerates the multi-aggressor segmentation demo.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := experiments.RunFig2()
		if err != nil || !f.ExplicitClean {
			b.Fatalf("fig2 failed: %v", err)
		}
	}
}

// BenchmarkAblationSegmentation sweeps the wire-segmenting granularity:
// the Alpert–Devgan quality/run-time trade-off.
func BenchmarkAblationSegmentation(b *testing.B) {
	s := benchSuite(b)
	base := s.Nets[0]
	for _, seglen := range []struct {
		name string
		l    float64
	}{{"1mm", 1e-3}, {"0.5mm", 0.5e-3}, {"0.25mm", 0.25e-3}} {
		seg := base.Clone()
		if _, err := segment.ByLength(seg, seglen.l); err != nil {
			b.Fatal(err)
		}
		if _, err := seg.InsertBelow(seg.Root()); err != nil {
			b.Fatal(err)
		}
		b.Run(seglen.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.BuffOptMinBuffers(seg, s.Library, s.Tech.Noise, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// deltaBenchNet builds the ECO benchmark workload: a deterministic
// complete binary tree of ~500 nodes (the ISSUE's acceptance scale) with
// every internal node a legal buffer site.
func deltaBenchNet(b *testing.B) *rctree.Tree {
	b.Helper()
	tr := rctree.New("eco-bench", 120, 30e-12)
	wire := func(i int) rctree.Wire {
		return rctree.Wire{
			R:      60 + float64(i%7)*12,
			C:      15e-15 + float64(i%5)*6e-15,
			Length: 0.25e-3,
		}
	}
	// 8 internal levels (255 internal nodes) + 256 sinks = 511 nodes.
	frontier := []rctree.NodeID{tr.Root()}
	id := 0
	for level := 0; level < 7; level++ {
		var next []rctree.NodeID
		for _, p := range frontier {
			for c := 0; c < 2; c++ {
				id++
				v, err := tr.AddInternal(p, wire(id), true)
				if err != nil {
					b.Fatal(err)
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	for _, p := range frontier {
		for c := 0; c < 2; c++ {
			id++
			if _, err := tr.AddSink(p, wire(id), fmt.Sprintf("s%d", id),
				8e-15+float64(id%9)*2e-15, (300+float64(id%11)*40)*1e-12, 0.8); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := tr.Validate(); err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkDeltaResolve prices the incremental (ECO) re-solve engine
// against the full dynamic program it replaces: "full" re-runs Optimize
// from scratch after a single-leaf cap change; "delta" pushes the same
// change through a Session, re-solving only the edited sink's ancestor
// path and replaying every untouched subtree from the memo. The delta
// row also reports reuse_rate (reused lookups / total lookups), which
// benchjson lifts into eco_reuse_rate; the full/delta ns ratio becomes
// eco_speedup. The acceptance floor is 10×.
func BenchmarkDeltaResolve(b *testing.B) {
	tr := deltaBenchNet(b)
	lib := buffers.DefaultLibrary(0.8)
	prob := core.Problem{Tree: tr, Library: lib, Objective: core.MaxSlack}
	sink := tr.Sinks()[0]
	capAt := func(i int) float64 { return 8e-15 + float64(i%7)*1.5e-15 }

	b.Run("full", func(b *testing.B) {
		work := tr.Clone()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			work.Node(sink).Cap = capAt(i)
			p := prob
			p.Tree = work
			b.StartTimer()
			if _, err := core.Optimize(context.Background(), p, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("delta", func(b *testing.B) {
		s, err := core.NewSession(prob, core.SessionConfig{})
		if err != nil {
			b.Fatal(err)
		}
		// Warm the memo: the first solve resolves every subtree.
		if _, err := core.Delta(context.Background(), s, nil, core.Options{}); err != nil {
			b.Fatal(err)
		}
		var reused, lookups int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := core.Delta(context.Background(), s,
				[]core.Edit{{Op: core.EditSetCap, Node: sink, Value: capAt(i)}}, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			reused += res.Reused
			lookups += res.Lookups
		}
		b.StopTimer()
		if lookups > 0 {
			b.ReportMetric(float64(reused)/float64(lookups), "reuse_rate")
		}
	})
}
