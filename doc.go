// Package buffopt reproduces "Buffer Insertion for Noise and Delay
// Optimization" (Alpert, Devgan, Quay; DAC 1998 / IEEE TCAD 18(11), 1999):
// optimal buffer insertion under the Devgan coupled-noise metric, the
// noise-constrained Van Ginneken dynamic program (BuffOpt), the DelayOpt
// baseline, and every substrate the evaluation needs — Elmore timing,
// Steiner-tree construction, wire segmenting, a synthetic benchmark
// generator, and a coupled-RC transient simulator for independent
// verification.
//
// The implementation lives under internal/; see README.md for the layout,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-versus-measured record. The root package exists to anchor
// module-level documentation and the benchmark suite in bench_test.go.
package buffopt
