// Package segment implements the wire-segmenting preprocessing of Alpert
// and Devgan (DAC 1997, reference [1] of the paper).
//
// Van Ginneken-style dynamic programs insert at most one buffer per wire,
// so long wires must first be divided into shorter segments to create
// enough candidate buffer sites. Segmenting trades solution quality for
// run time: more segments, better solutions, longer candidate lists. The
// paper's Algorithms 1 and 2 do not strictly need segmenting (they place
// buffers at continuous positions via Theorem 1), but Algorithm 3 and the
// DelayOpt baseline do.
//
// The package also provides the Fig. 2 transformation: splitting a wire at
// aggressor-overlap boundaries so each resulting segment couples to a
// fixed set of aggressors.
package segment

import (
	"fmt"
	"math"
	"sort"

	"buffopt/internal/rctree"
)

// ByLength splits, in place, every wire of t longer than maxLen into equal
// pieces no longer than maxLen. New internal nodes are legal buffer sites.
// It returns the number of nodes added.
func ByLength(t *rctree.Tree, maxLen float64) (int, error) {
	if maxLen <= 0 || math.IsNaN(maxLen) {
		return 0, fmt.Errorf("segment: max length %g must be positive", maxLen)
	}
	added := 0
	// Only iterate the original nodes: splitting v's wire produces pieces
	// already at or under maxLen, and new nodes are appended after the
	// originals.
	orig := t.Len()
	for id := 0; id < orig; id++ {
		v := rctree.NodeID(id)
		if v == t.Root() {
			continue
		}
		l := t.Node(v).Wire.Length
		if l <= maxLen {
			continue
		}
		k := int(math.Ceil(l / maxLen))
		n, err := chain(t, v, k)
		if err != nil {
			return added, err
		}
		added += n
	}
	return added, nil
}

// ByCap splits, in place, every wire whose capacitance exceeds maxCap
// into equal pieces at or under that capacitance. Because the noise
// injected by a wire is proportional to its capacitance (eq. 6), a
// capacitance bound places candidate sites densely exactly where the
// noise budget is spent fastest — the kind of problem-specific segmenting
// footnote 3 of the paper anticipates. It returns the number of nodes
// added.
func ByCap(t *rctree.Tree, maxCap float64) (int, error) {
	if maxCap <= 0 || math.IsNaN(maxCap) {
		return 0, fmt.Errorf("segment: max capacitance %g must be positive", maxCap)
	}
	added := 0
	orig := t.Len()
	for id := 0; id < orig; id++ {
		v := rctree.NodeID(id)
		if v == t.Root() {
			continue
		}
		c := t.Node(v).Wire.C
		if c <= maxCap || t.Node(v).Wire.Length == 0 {
			continue
		}
		n, err := chain(t, v, int(math.Ceil(c/maxCap)))
		if err != nil {
			return added, err
		}
		added += n
	}
	return added, nil
}

// ByCount splits, in place, every nonzero-length wire of t into exactly k
// equal pieces. It returns the number of nodes added.
func ByCount(t *rctree.Tree, k int) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("segment: piece count %d must be at least 1", k)
	}
	added := 0
	orig := t.Len()
	for id := 0; id < orig; id++ {
		v := rctree.NodeID(id)
		if v == t.Root() || t.Node(v).Wire.Length == 0 {
			continue
		}
		n, err := chain(t, v, k)
		if err != nil {
			return added, err
		}
		added += n
	}
	return added, nil
}

// chain splits v's parent wire into k equal pieces, adding k-1 nodes.
func chain(t *rctree.Tree, v rctree.NodeID, k int) (int, error) {
	added := 0
	cur := v
	remaining := k
	for remaining > 1 {
		// Cut the current bottom piece (1/remaining of what is left) off;
		// the new node carries the rest upward.
		n, err := t.SplitWire(cur, 1/float64(remaining))
		if err != nil {
			return added, err
		}
		added++
		cur = n
		remaining--
	}
	return added, nil
}

// Span describes one aggressor running alongside part of a wire, for the
// Fig. 2 transformation. From and To are distances along the wire measured
// from the upstream (parent) end, with 0 ≤ From < To ≤ wire length.
type Span struct {
	From, To float64 // coupled interval, m, from the upstream end
	Ratio    float64 // coupling-to-wire-capacitance ratio over the interval
	Slope    float64 // aggressor slope μ, V/s
}

// ApplyAggressors splits v's parent wire at every span boundary and
// attaches explicit aggressor couplings to each resulting piece, so that
// each piece is coupled to either zero, one, or more aggressors uniformly
// along its length — the wire-segmenting scheme of Fig. 2. Pieces outside
// every span receive an explicit empty aggressor list (zero coupling
// current). It returns the IDs of the resulting chain from the upstream
// end down to v.
func ApplyAggressors(t *rctree.Tree, v rctree.NodeID, spans []Span) ([]rctree.NodeID, error) {
	if v == t.Root() {
		return nil, fmt.Errorf("segment: the source has no parent wire")
	}
	length := t.Node(v).Wire.Length
	if length <= 0 {
		return nil, fmt.Errorf("segment: wire above node %d has zero length", v)
	}
	for _, s := range spans {
		if s.From < 0 || s.To > length+1e-12 || s.From >= s.To {
			return nil, fmt.Errorf("segment: span [%g, %g] outside wire of length %g", s.From, s.To, length)
		}
	}

	// Collect unique interior breakpoints, measured from the upstream end.
	cuts := map[float64]bool{}
	for _, s := range spans {
		if s.From > 0 && s.From < length {
			cuts[s.From] = true
		}
		if s.To > 0 && s.To < length {
			cuts[s.To] = true
		}
	}
	points := make([]float64, 0, len(cuts))
	for p := range cuts {
		points = append(points, p)
	}
	sort.Float64s(points)

	// Split bottom-up: a breakpoint at distance p from the upstream end is
	// length−p above the child; each split is taken relative to the
	// remaining (not yet split) upper portion.
	chainIDs := []rctree.NodeID{v}
	cur := v
	curLen := length // length of cur's parent wire (the unsplit remainder)
	consumed := 0.0  // distance from the original child already realized
	for i := len(points) - 1; i >= 0; i-- {
		fromChild := length - points[i]
		rel := fromChild - consumed
		n, err := t.SplitWire(cur, rel/curLen)
		if err != nil {
			return nil, err
		}
		chainIDs = append(chainIDs, n)
		consumed = fromChild
		curLen -= rel
		cur = n
	}

	// Reverse so the chain runs upstream → downstream: every split created
	// its new node above the previous one, so chainIDs is child → parent.
	for i, j := 0, len(chainIDs)-1; i < j; i, j = i+1, j-1 {
		chainIDs[i], chainIDs[j] = chainIDs[j], chainIDs[i]
	}

	// Walk top-down, accumulating each piece's interval from the upstream
	// end, and attach the aggressors whose span covers it (tested at the
	// piece midpoint; pieces never straddle a span boundary by
	// construction).
	pos := 0.0
	for _, id := range chainIDs {
		w := t.Node(id).Wire
		mid := pos + w.Length/2
		ag := []rctree.Coupling{}
		for _, s := range spans {
			if s.From <= mid && mid <= s.To {
				ag = append(ag, rctree.Coupling{Ratio: s.Ratio, Slope: s.Slope})
			}
		}
		w.Aggressors = ag
		t.Node(id).Wire = w
		pos += w.Length
	}
	return chainIDs, nil
}
