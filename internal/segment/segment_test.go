package segment

import (
	"math"
	"testing"
	"testing/quick"

	"buffopt/internal/noise"
	"buffopt/internal/rctree"
)

func line(t *testing.T, length float64) *rctree.Tree {
	t.Helper()
	tr := rctree.New("line", 100, 0)
	if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 10 * length, C: 2 * length, Length: length}, "s", 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	return tr
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestByLength(t *testing.T) {
	tr := line(t, 10)
	added, err := ByLength(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	// ceil(10/3) = 4 pieces → 3 new nodes.
	if added != 3 {
		t.Errorf("added = %d, want 3", added)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.Preorder() {
		if v == tr.Root() {
			continue
		}
		w := tr.Node(v).Wire
		if w.Length > 3+1e-12 {
			t.Errorf("piece longer than max: %g", w.Length)
		}
		if !approx(w.Length, 2.5) {
			t.Errorf("pieces should be equal (2.5): %g", w.Length)
		}
	}
	if got := tr.TotalWireLength(); !approx(got, 10) {
		t.Errorf("length changed: %g", got)
	}
	if got := tr.TotalWireCap(); !approx(got, 20) {
		t.Errorf("capacitance changed: %g", got)
	}
	// Short wires untouched.
	tr2 := line(t, 2)
	added, err = ByLength(tr2, 3)
	if err != nil || added != 0 {
		t.Errorf("short wire split: added=%d err=%v", added, err)
	}
	if _, err := ByLength(tr2, 0); err == nil {
		t.Errorf("zero max length accepted")
	}
	if _, err := ByLength(tr2, math.NaN()); err == nil {
		t.Errorf("NaN max length accepted")
	}
}

func TestByCap(t *testing.T) {
	// 10-unit line with C = 2/unit → 20 total; maxCap 6 → 4 pieces.
	tr := line(t, 10)
	added, err := ByCap(tr, 6)
	if err != nil || added != 3 {
		t.Fatalf("added=%d err=%v, want 3", added, err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.Preorder() {
		if v == tr.Root() {
			continue
		}
		if c := tr.Node(v).Wire.C; c > 6+1e-12 {
			t.Errorf("piece capacitance %g over bound", c)
		}
	}
	if got := tr.TotalWireCap(); !approx(got, 20) {
		t.Errorf("capacitance changed: %g", got)
	}
	// Under-bound wires untouched; bad bounds rejected.
	tr2 := line(t, 1)
	if added, err := ByCap(tr2, 6); err != nil || added != 0 {
		t.Errorf("small wire split: %d, %v", added, err)
	}
	if _, err := ByCap(tr2, 0); err == nil {
		t.Errorf("zero bound accepted")
	}
	if _, err := ByCap(tr2, math.NaN()); err == nil {
		t.Errorf("NaN bound accepted")
	}
	// A zero-length but capacitive wire cannot be subdivided; it is left
	// alone rather than erroring.
	lumped := rctree.New("l", 1, 0)
	if _, err := lumped.AddSink(lumped.Root(), rctree.Wire{R: 1, C: 100}, "s", 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if added, err := ByCap(lumped, 6); err != nil || added != 0 {
		t.Errorf("lumped wire: %d, %v", added, err)
	}
}

func TestByCount(t *testing.T) {
	tr := line(t, 6)
	added, err := ByCount(tr, 4)
	if err != nil || added != 3 {
		t.Fatalf("added=%d err=%v", added, err)
	}
	n := 0
	for _, v := range tr.Preorder() {
		if v == tr.Root() {
			continue
		}
		n++
		if !approx(tr.Node(v).Wire.Length, 1.5) {
			t.Errorf("piece length %g, want 1.5", tr.Node(v).Wire.Length)
		}
	}
	if n != 4 {
		t.Errorf("pieces = %d, want 4", n)
	}
	if _, err := ByCount(tr, 0); err == nil {
		t.Errorf("zero count accepted")
	}
}

func TestByCountPreservesTotals(t *testing.T) {
	f := func(lenRaw, kRaw uint8) bool {
		length := 1 + float64(lenRaw%50)
		k := 1 + int(kRaw%9)
		tr := rctree.New("x", 1, 0)
		if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 3 * length, C: 7 * length, Length: length}, "s", 1, 0, 1); err != nil {
			return false
		}
		if _, err := ByCount(tr, k); err != nil {
			return false
		}
		if tr.Validate() != nil {
			return false
		}
		return approx(tr.TotalWireLength(), length) &&
			approx(tr.TotalWireCap(), 7*length) &&
			tr.Len() == 2+k-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestApplyAggressorsFig2(t *testing.T) {
	// A 9 mm wire with two aggressors: A over [1, 5] mm, B over [3, 7] mm
	// (distances from the driver end). Expected pieces: [0,1] none,
	// [1,3] A, [3,5] A+B, [5,7] B, [7,9] none — five pieces, like the
	// overlapping pattern of Fig. 2.
	tr := line(t, 9)
	sink := tr.Sinks()[0]
	chain, err := ApplyAggressors(tr, sink, []Span{
		{From: 1, To: 5, Ratio: 0.5, Slope: 2},
		{From: 3, To: 7, Ratio: 0.25, Slope: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(chain) != 5 {
		t.Fatalf("pieces = %d, want 5", len(chain))
	}
	wantLens := []float64{1, 2, 2, 2, 2}
	wantAggr := [][]rctree.Coupling{
		{},
		{{Ratio: 0.5, Slope: 2}},
		{{Ratio: 0.5, Slope: 2}, {Ratio: 0.25, Slope: 4}},
		{{Ratio: 0.25, Slope: 4}},
		{},
	}
	pos := 0.0
	for i, id := range chain {
		w := tr.Node(id).Wire
		if !approx(w.Length, wantLens[i]) {
			t.Errorf("piece %d length %g, want %g", i, w.Length, wantLens[i])
		}
		if len(w.Aggressors) != len(wantAggr[i]) {
			t.Errorf("piece %d has %d aggressors, want %d", i, len(w.Aggressors), len(wantAggr[i]))
			continue
		}
		for j := range wantAggr[i] {
			if w.Aggressors[j] != wantAggr[i][j] {
				t.Errorf("piece %d aggressor %d = %+v, want %+v", i, j, w.Aggressors[j], wantAggr[i][j])
			}
		}
		pos += w.Length
	}
	if !approx(pos, 9) {
		t.Errorf("total length %g", pos)
	}

	// The noise package must see exactly the explicit currents: piece 2
	// injects (0.5·2 + 0.25·4)·C = 2·C with C = 2 mm × 2 F/len-unit.
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	iw := p.WireCurrent(tr.Node(chain[2]).Wire)
	if !approx(iw, 2*4.0) {
		t.Errorf("piece 2 current %g, want 8", iw)
	}
	// Uncovered pieces inject nothing even in estimation mode.
	if got := p.WireCurrent(tr.Node(chain[0]).Wire); got != 0 {
		t.Errorf("uncovered piece current %g, want 0", got)
	}
}

func TestApplyAggressorsWholeWire(t *testing.T) {
	tr := line(t, 4)
	sink := tr.Sinks()[0]
	chain, err := ApplyAggressors(tr, sink, []Span{{From: 0, To: 4, Ratio: 0.7, Slope: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0] != sink {
		t.Errorf("whole-wire span should not split: %v", chain)
	}
	if got := tr.Node(sink).Wire.Aggressors; len(got) != 1 {
		t.Errorf("aggressors = %v", got)
	}
}

func TestApplyAggressorsErrors(t *testing.T) {
	tr := line(t, 4)
	sink := tr.Sinks()[0]
	if _, err := ApplyAggressors(tr, tr.Root(), nil); err == nil {
		t.Errorf("root accepted")
	}
	if _, err := ApplyAggressors(tr, sink, []Span{{From: 2, To: 1, Ratio: 0.5, Slope: 1}}); err == nil {
		t.Errorf("inverted span accepted")
	}
	if _, err := ApplyAggressors(tr, sink, []Span{{From: 0, To: 9, Ratio: 0.5, Slope: 1}}); err == nil {
		t.Errorf("overlong span accepted")
	}
	zero := rctree.New("z", 1, 0)
	zsink, _ := zero.AddSink(zero.Root(), rctree.Wire{}, "s", 1, 0, 1)
	if _, err := ApplyAggressors(zero, zsink, []Span{{From: 0, To: 0.5, Ratio: 0.5, Slope: 1}}); err == nil {
		t.Errorf("zero-length wire accepted")
	}
}

func TestSegmentTreeWide(t *testing.T) {
	// Segmenting must handle every wire of a branched tree.
	tr := rctree.New("y", 1, 0)
	v, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 4, C: 4, Length: 4}, true)
	_, _ = tr.AddSink(v, rctree.Wire{R: 6, C: 6, Length: 6}, "a", 1, 0, 1)
	_, _ = tr.AddSink(v, rctree.Wire{R: 2, C: 2, Length: 2}, "b", 1, 0, 1)
	added, err := ByLength(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	// 4 → 2 pieces (+1), 6 → 3 pieces (+2), 2 → 1 piece (+0).
	if added != 3 {
		t.Errorf("added = %d, want 3", added)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.TotalWireLength(); !approx(got, 12) {
		t.Errorf("total length %g", got)
	}
}
