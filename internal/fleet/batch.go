package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"buffopt/internal/obs"
	"buffopt/internal/server"
)

// handleBatch is POST /solve/batch on the router. The batch is split
// into items, each item keyed exactly as its standalone /solve
// equivalent would be, and the items are regrouped into one sub-batch
// per owning replica — so a batch of N nets costs the fleet one upstream
// request per distinct shard, not N, while every item still lands on the
// shard that caches it. Sub-batches dispatch concurrently with the same
// hedging/failover machinery as /solve, and the per-item results merge
// back in request order under the replicas' partial-failure semantics: a
// shard that sheds or dies fails its items individually, never the
// batch.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeRouterError(w, http.StatusMethodNotAllowed, "invalid", "POST a batch of nets to /solve/batch", 0)
		return
	}
	obs.Inc("fleet.batch.requests")
	// One root span for the batch; each shard group dispatches under its
	// own child span (see dispatch), which is where hedge attrs live.
	ctx, span := rt.tracer.StartTrace(r.Context(), "fleet.batch", obs.TraceParentFrom(r.Header))
	defer span.End()
	w.Header().Set("X-Trace-Id", span.TraceID().String())
	body, err := rt.readBody(r)
	if err != nil {
		writeRouterError(w, http.StatusRequestEntityTooLarge, "invalid", err.Error(), 0)
		return
	}
	ct := r.Header.Get("Content-Type")

	items, err := rt.keyer.SplitBatch(body)
	if err != nil {
		// Unsplittable (malformed JSON, no nets, unknown fields): one
		// replica — chosen by raw-content key so repeats route stably —
		// produces the authoritative rejection. The router never owns
		// validation policy.
		obs.Inc("fleet.batch.unsplittable")
		key := rt.keyer.SolveKey(ct, nil, body)
		res := rt.dispatch(ctx, key, "/solve/batch", r.URL.RawQuery, ct, body)
		rt.forward(ctx, w, res, "fleet.batch")
		return
	}
	obs.Add("fleet.batch.nets", int64(len(items)))

	// Group items by their primary replica. The group dispatches under
	// its first item's key: all items in the group share that primary by
	// construction, and on failover the whole sub-batch moves together —
	// any replica can solve any item; affinity only prices the cache.
	type group struct {
		key     string
		indices []int
		raw     []json.RawMessage
	}
	groups := map[string]*group{}
	var groupOrder []string
	for _, it := range items {
		primary := rt.rank(it.Key)[0].name
		g := groups[primary]
		if g == nil {
			g = &group{key: it.Key}
			groups[primary] = g
			groupOrder = append(groupOrder, primary)
		}
		g.indices = append(g.indices, it.Index)
		g.raw = append(g.raw, it.Raw)
	}

	start := time.Now()
	merged := server.BatchResponse{Count: len(items), Results: make([]server.BatchItem, len(items))}
	var wg sync.WaitGroup
	for _, name := range groupOrder {
		g := groups[name]
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			rt.dispatchGroup(ctx, g.key, g.indices, g.raw, merged.Results)
		}(g)
	}
	wg.Wait()

	for i := range merged.Results {
		if merged.Results[i].Error == nil {
			merged.Succeeded++
		} else {
			merged.Failed++
		}
	}
	merged.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6
	obs.Inc("fleet.batch.outcome.ok")
	writeRouterJSON(w, http.StatusOK, merged)
}

// dispatchGroup forwards one per-replica sub-batch and scatters its
// per-item results back into the merged response at their original
// indices. Every item gets exactly one terminal outcome: the replica's
// own result or error when the sub-batch round-trips, a synthesized
// per-item error when it does not.
func (rt *Router) dispatchGroup(ctx context.Context, key string, indices []int, raw []json.RawMessage, out []server.BatchItem) {
	sub, err := json.Marshal(struct {
		Nets []json.RawMessage `json:"nets"`
	}{Nets: raw})
	if err != nil {
		rt.failGroup(out, indices, http.StatusInternalServerError, "internal", err.Error(), 0)
		return
	}
	res := rt.dispatch(ctx, key, "/solve/batch", "", "application/json", sub)
	switch {
	case res != nil && res.canceled:
		rt.failGroup(out, indices, http.StatusServiceUnavailable, "canceled", "client went away before a replica answered", 0)
		return
	case res == nil:
		ra := int64(rt.cfg.RetryAfter / time.Second)
		if ra < 1 {
			ra = 1
		}
		obs.Add("fleet.batch.item.unroutable", int64(len(indices)))
		rt.failGroup(out, indices, http.StatusServiceUnavailable, "unroutable", "no replica reachable for this sub-batch", ra)
		return
	case res.shed:
		// Every replica in the sub-batch's order was shedding: relay the
		// first shed verbatim per item, Retry-After included.
		var e server.ErrorResponse
		if err := json.Unmarshal(res.body, &e); err != nil {
			e = server.ErrorResponse{Error: "replica shed the sub-batch", Class: "shed", Status: res.status}
		}
		obs.Add("fleet.batch.item.shed", int64(len(indices)))
		for _, idx := range indices {
			ec := e
			out[idx] = server.BatchItem{Index: idx, Error: &ec}
		}
		return
	case res.status != http.StatusOK:
		// The replica rejected the sub-batch as a whole (e.g. it exceeds
		// the replica's MaxBatch): that verdict becomes each item's error.
		var e server.ErrorResponse
		if err := json.Unmarshal(res.body, &e); err != nil {
			e = server.ErrorResponse{Error: string(bytes.TrimSpace(res.body)), Class: "upstream", Status: res.status}
		}
		for _, idx := range indices {
			ec := e
			out[idx] = server.BatchItem{Index: idx, Error: &ec}
		}
		return
	}

	var br server.BatchResponse
	if err := json.Unmarshal(res.body, &br); err != nil || len(br.Results) != len(indices) {
		rt.failGroup(out, indices, http.StatusBadGateway, "upstream", "replica returned an unreadable batch response", 0)
		return
	}
	for j, idx := range indices {
		item := br.Results[j]
		item.Index = idx // restore the client's numbering
		out[idx] = item
	}
}

// failGroup writes one synthesized error to every item of a group.
func (rt *Router) failGroup(out []server.BatchItem, indices []int, status int, class, msg string, retryAfterS int64) {
	for _, idx := range indices {
		out[idx] = server.BatchItem{Index: idx, Error: &server.ErrorResponse{
			Error:       msg,
			Class:       class,
			Status:      status,
			RetryAfterS: retryAfterS,
		}}
	}
}
