package fleet

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"buffopt/internal/obs"
)

// health is a replica's routability state as the router believes it.
type health int32

const (
	// healthy: probes and attempts are succeeding; full routing weight.
	healthy health = iota
	// suspect: at least one recent connection failure, below the down
	// threshold. Still routable — a single RST or timeout must not
	// evacuate a shard — but the next failures are watched.
	suspect
	// draining: the replica's /readyz says it is shutting down. It still
	// answers (in-flight work completes), but new work routes to its
	// keyspace's next-preferred replicas.
	draining
	// down: FailThreshold consecutive connection failures. Routed to
	// only when every better replica is also unavailable; a successful
	// probe resurrects it.
	down
)

func (h health) String() string {
	switch h {
	case healthy:
		return "healthy"
	case suspect:
		return "suspect"
	case draining:
		return "draining"
	case down:
		return "down"
	}
	return "unknown"
}

// replica is the router's view of one bufferd instance: its stable
// identity (the configured address, which is also its rendezvous-hash
// name), its health as inferred from active probes and passive
// request-path signals, its shed-backpressure deadline, and a window of
// recent attempt latencies that prices the hedge timer.
type replica struct {
	name string // host:port; the rendezvous identity — never changes
	base string // "http://" + name

	state        atomic.Int32 // health
	fails        atomic.Int32 // consecutive connection failures
	backoffUntil atomic.Int64 // unix nanos; shed Retry-After backpressure
	stateSince   atomic.Int64 // unix nanos of the last state transition

	// dwell is the minimum time the healthy/suspect states must be held
	// before flipping to the other (Config.HealthDwell): flap damping, so
	// a replica oscillating ready/unready under intermittent probe
	// failures does not thrash healthy↔suspect on every probe. Only that
	// pair is damped — crossing the failure threshold to down, a down or
	// draining replica's resurrection, and entering draining are all
	// undamped, because those transitions carry information a dwell
	// would only delay (and the soaks rely on them being prompt).
	dwell time.Duration

	lat latencyWindow
}

func newReplica(name string, dwell time.Duration) *replica {
	r := &replica{name: name, base: "http://" + name, dwell: dwell}
	r.publish(healthy)
	return r
}

func (r *replica) health() health { return health(r.state.Load()) }

func (r *replica) publish(h health) {
	r.state.Store(int32(h))
	r.stateSince.Store(time.Now().UnixNano())
	obs.Set("fleet.replica.state."+r.name, int64(h))
}

// dwelled reports whether the current state has been held for at least
// the minimum dwell. Racing observers may each see "dwelled" and publish
// concurrently; the states they publish are the same, so the race is
// benign (the state machine is advisory, not transactional).
func (r *replica) dwelled() bool {
	return r.dwell <= 0 || time.Now().UnixNano()-r.stateSince.Load() >= int64(r.dwell)
}

// noteSuccess records a completed round-trip (any HTTP response is a
// live replica, even a 4xx/5xx). Passive success does not clear
// draining: a draining replica keeps finishing work right up to its
// drain deadline, and only its own /readyz flipping back to 200 (see
// noteReady) may resurrect it.
func (r *replica) noteSuccess(d time.Duration) {
	r.fails.Store(0)
	r.lat.observe(d.Nanoseconds())
	switch r.health() {
	case down:
		r.publish(healthy)
	case suspect:
		// Damped: a lone success amid intermittent failures must not
		// bounce the state back just for the next failure to re-demote
		// it. Suspect routes like healthy, so holding it costs nothing.
		if r.dwelled() {
			r.publish(healthy)
		}
	}
}

// noteReady records a 200 /readyz probe: the replica's own word that it
// accepts work, which overrides every inferred state including draining.
func (r *replica) noteReady() {
	r.fails.Store(0)
	switch r.health() {
	case suspect:
		if r.dwelled() {
			r.publish(healthy)
		}
	case draining, down:
		r.publish(healthy)
	}
}

// noteDraining records a /readyz "draining" answer.
func (r *replica) noteDraining() {
	r.fails.Store(0) // it answered; the connection path is fine
	if r.health() != draining {
		r.publish(draining)
	}
}

// noteConnError records a connection-level failure (dial refused, reset,
// attempt timeout — the signatures of a killed or partitioned replica).
// threshold consecutive failures demote to down; fewer leave the replica
// routable but suspect. Draining is not overwritten below the threshold:
// a draining replica that also stops connecting is down either way.
func (r *replica) noteConnError(threshold int) {
	f := r.fails.Add(1)
	switch {
	case int(f) >= threshold:
		if r.health() != down {
			r.publish(down)
		}
	case r.health() == healthy:
		// Damped (see dwell): the failure still counts toward the down
		// threshold either way, so damping never delays detection of a
		// genuinely dead replica — only the cosmetic healthy↔suspect
		// churn of an intermittently failing one.
		if r.dwelled() {
			r.publish(suspect)
		}
	}
}

// noteShed records admission-control backpressure (a 429/503 shed with
// Retry-After): the replica is alive but full, so its keyspace fails
// over until the deadline passes rather than hammering its queue.
func (r *replica) noteShed(retryAfter time.Duration, now time.Time) {
	r.fails.Store(0)
	until := now.Add(retryAfter).UnixNano()
	for {
		cur := r.backoffUntil.Load()
		if until <= cur || r.backoffUntil.CompareAndSwap(cur, until) {
			return
		}
	}
}

func (r *replica) inBackoff(now time.Time) bool {
	return now.UnixNano() < r.backoffUntil.Load()
}

// latencyWindow is a small mutex-guarded ring of recent attempt
// latencies (nanoseconds). It prices the hedge: a request hedges after
// its primary's recent latency quantile, so hedges chase genuinely
// stuck attempts (a partition's blackholed connection) instead of
// doubling every slightly slow solve.
type latencyWindow struct {
	mu  sync.Mutex
	buf [64]int64
	n   int // filled entries
	at  int // next write position
}

func (w *latencyWindow) observe(ns int64) {
	w.mu.Lock()
	w.buf[w.at] = ns
	w.at = (w.at + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
	w.mu.Unlock()
}

// quantile returns the q-quantile (0 < q <= 1) of the window, or 0 when
// fewer than 8 samples exist — too little history to price a hedge, so
// the caller falls back to its configured floor.
func (w *latencyWindow) quantile(q float64) int64 {
	w.mu.Lock()
	n := w.n
	var tmp [64]int64
	copy(tmp[:n], w.buf[:n])
	w.mu.Unlock()
	if n < 8 {
		return 0
	}
	s := tmp[:n]
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q*float64(n)) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return s[i]
}
