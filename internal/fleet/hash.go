package fleet

import "buffopt/internal/server"

// Rendezvous hashing moved to package server so replicas can rank the
// same preference order for peer read-through fill that the router uses
// for routing, hedging, and failover (see server.RendezvousRank). These
// wrappers keep the router's call sites and property tests in the
// package that depends on the order.

func rendezvousScore(replica, key string) uint64 {
	return server.RendezvousScore(replica, key)
}

func rendezvousRank(key string, names []string) []int {
	return server.RendezvousRank(key, names)
}
