package fleet

import (
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"buffopt/internal/faultinject"
	"buffopt/internal/obs"
	"buffopt/internal/server"
)

// normalizeResp strips the per-request fields so responses from different
// replicas, cache states, and restart generations compare for solver-
// output identity.
func normalizeResp(t *testing.T, body []byte) string {
	t.Helper()
	var sr server.SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	sr.ElapsedMS = 0
	sr.Cached = false
	sr.Coalesced = false
	for i := range sr.TierErrors {
		sr.TierErrors[i].ElapsedMS = 0
	}
	b, err := json.Marshal(sr)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// corruptFile flips one byte mid-file; tornFile truncates to half. Both
// leave a snapshot the checksum (or the length check) must reject.
func corruptFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	b[len(b)/2] ^= 0x20
	return os.WriteFile(path, b, 0o644)
}

func tornFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b[:len(b)/2], 0o644)
}

// TestRestartSoakUnderChaos is the crash/restart resilience soak: clients
// hammer the router while a chaos driver kill-restarts replicas (saving a
// snapshot first, so each comeback is a warm start), then every replica is
// restarted once more with a deliberately corrupted or torn snapshot, and
// the full net corpus is swept again. The claims are proved by accounting:
//
//   - exact snapshot ledger: every restart boots by either loading its
//     snapshot or rejecting it — loaded + rejected == restarts, each
//     injected corrupt/torn file observed as exactly one rejection, and a
//     rejected boot never panics and never serves a stale entry (the
//     byte-identity sweep below would catch it);
//   - exact peer-fill ledger: every peer peek settles as exactly one of
//     hit, miss, or timeout — attempts == hits + misses + timeouts;
//   - byte-identical results: every response during and after the restart
//     chaos — solved fresh, served from a reloaded snapshot, or filled
//     from a peer — normalizes to the control recorded before any chaos;
//   - no invented failures: clients see only 200s; zero router-generated
//     unroutable/client-gone errors across every restart window, and the
//     attempt ledger (launched == settled) stays exact.
//
// Run under -race by scripts/check.sh (short mode) and `make restartsoak`
// (full).
func TestRestartSoakUnderChaos(t *testing.T) {
	solveClients, perClient := 6, 12
	chaosTicks := 40
	if testing.Short() {
		solveClients, perClient = 4, 8
		chaosTicks = 24
	}
	const (
		replicas     = 3
		workers      = 2
		queueDepth   = 64
		distinctNets = 10
		tickEvery    = 20 * time.Millisecond
	)

	old := obs.Default()
	obs.SetDefault(obs.NewRegistry())
	t.Cleanup(func() { obs.SetDefault(old) })
	baseline := runtime.NumGoroutine()

	// Replica-level restart plans are drawn by the driver from its own
	// injector, so the chaos schedule is seeded and replayable.
	fleetInj, err := faultinject.New(faultinject.Config{
		Seed:  23,
		Rates: map[faultinject.Fault]float64{faultinject.FaultRestart: 0.35},
	})
	if err != nil {
		t.Fatal(err)
	}

	lab, err := StartLab(LabConfig{
		Replicas: replicas,
		Server: server.Config{
			Workers:        workers,
			QueueDepth:     queueDepth,
			DefaultTimeout: 30 * time.Second,
			RetryAfter:     time.Second,
			CacheEntries:   64,
			PeerTimeout:    200 * time.Millisecond,
		},
		Router: Config{
			ProbeInterval:  25 * time.Millisecond,
			ProbeTimeout:   150 * time.Millisecond,
			FailThreshold:  3,
			AttemptTimeout: 3 * time.Second,
			HedgeMin:       30 * time.Millisecond,
			RetryBackoff:   5 * time.Millisecond,
			MaxAttempts:    3,
			HealthDwell:    100 * time.Millisecond,
		},
		SnapshotDir: t.TempDir(),
		PeerFill:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + lab.Router.Addr()

	post := func(i int) (int, []byte) {
		resp, err := http.Post(base+"/solve", "text/plain", strings.NewReader(labNet(i)))
		if err != nil {
			t.Fatalf("transport error to the router (it must absorb restarts): %v", err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, body
	}

	// ------------------------------------------------------- control
	// The never-restarted fleet's answers, recorded before any chaos:
	// everything served later must normalize to these bytes.
	control := make([]string, distinctNets)
	for i := 0; i < distinctNets; i++ {
		status, body := post(i)
		if status != http.StatusOK {
			t.Fatalf("control solve %d: status %d: %s", i, status, body)
		}
		control[i] = normalizeResp(t, body)
	}

	// ---------------------------------------------------------- load
	var (
		mu       sync.Mutex
		oks      int
		mismatch int
	)
	var wg sync.WaitGroup
	for c := 0; c < solveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				n := (c*perClient + i) % distinctNets
				status, body := post(n)
				if status != http.StatusOK {
					t.Errorf("client %d request %d: status %d: %s", c, i, status, body)
					continue
				}
				got := normalizeResp(t, body)
				mu.Lock()
				oks++
				if got != control[n] {
					mismatch++
				}
				mu.Unlock()
			}
		}(c)
	}

	// --------------------------------------------------------- chaos
	// Clean restarts under load: save a snapshot, kill, rebind the same
	// address, warm-start. The driver is single-threaded, takes each drawn
	// plan exactly once, and never tampers here — every one of these boots
	// must count as a snapshot load.
	var chaosRestarts int64
	chaosRng := rand.New(rand.NewPCG(5, 3))
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		for tick := 0; tick < chaosTicks; tick++ {
			time.Sleep(tickEvery)
			if !fleetInj.Assign().Take(faultinject.FaultRestart) {
				continue
			}
			rep := lab.Replicas[chaosRng.IntN(replicas)]
			if err := rep.Server.SaveSnapshot(); err != nil {
				t.Errorf("save before restart: %v", err)
			}
			if err := rep.Restart(nil); err != nil {
				t.Errorf("restart: %v", err)
			}
			chaosRestarts++
		}
	}()

	wg.Wait()
	<-chaosDone

	// ------------------------------------------- forced restart matrix
	// Deterministic coverage of every boot path, independent of the chaos
	// draws: one clean restart (loaded), then every replica restarted with
	// a tampered snapshot — corrupt, torn, corrupt — so the whole fleet
	// comes back cold and each tampered file is observed as exactly one
	// rejection.
	if err := lab.Replicas[2].Server.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := lab.Replicas[2].Restart(nil); err != nil {
		t.Fatal(err)
	}
	tampers := []func(string) error{corruptFile, tornFile, corruptFile}
	for i, rep := range lab.Replicas {
		if err := rep.Server.SaveSnapshot(); err != nil {
			t.Fatal(err)
		}
		if err := rep.Restart(tampers[i]); err != nil {
			t.Fatal(err)
		}
	}
	cleanRestarts := chaosRestarts + 1
	tamperedRestarts := int64(len(tampers))
	totalRestarts := cleanRestarts + tamperedRestarts

	// ----------------------------------------------------------- sweep
	// Every replica is cold now, so the first request for each net misses
	// locally wherever it lands — guaranteeing peer-fill attempts — and
	// every answer must still match the control byte-for-byte: a rejected
	// snapshot or a peer fill can cost a solve, never an answer.
	for i := 0; i < distinctNets; i++ {
		status, body := post(i)
		if status != http.StatusOK {
			t.Fatalf("sweep solve %d: status %d: %s", i, status, body)
		}
		oks++
		if got := normalizeResp(t, body); got != control[i] {
			t.Errorf("sweep net %d: post-restart response differs from control:\nwant %s\nhave %s",
				i, control[i], got)
		}
	}

	// Close drains the router: every in-flight attempt settles before the
	// snapshot below.
	if err := lab.Close(); err != nil {
		t.Fatalf("lab close: %v", err)
	}

	snap := obs.Default().Snapshot()
	ctr := snap.Counters
	t.Logf("restarts: chaos(clean)=%d forced(clean)=1 tampered=%d", chaosRestarts, tamperedRestarts)
	t.Logf("snapshots: loaded=%d rejected=%d absent=%d saves=%d",
		ctr["server.cache.snapshot.loaded"], ctr["server.cache.snapshot.rejected"],
		ctr["server.cache.snapshot.absent"], ctr["server.cache.snapshot.saves"])
	t.Logf("peerfill: attempts=%d hits=%d misses=%d timeouts=%d",
		ctr["fleet.peerfill.attempts"], ctr["fleet.peerfill.hits"],
		ctr["fleet.peerfill.misses"], ctr["fleet.peerfill.timeouts"])

	// ---- byte-identity held everywhere.
	if mismatch != 0 {
		t.Errorf("%d responses under restart chaos differed from control", mismatch)
	}
	// oks counts the load and sweep phases; the control posts are verified
	// inline but feed the router's books, so total covers all three.
	total := distinctNets + solveClients*perClient + distinctNets
	if want := solveClients*perClient + distinctNets; oks != want {
		t.Errorf("answered %d of %d load+sweep requests with 200", oks, want)
	}

	// ---- exact snapshot ledger: every restart either loaded or rejected,
	// nothing in between; the three initial boots found no file.
	if got := ctr["server.cache.snapshot.loaded"]; got != cleanRestarts {
		t.Errorf("snapshot.loaded = %d, want %d (one per clean restart)", got, cleanRestarts)
	}
	if got := ctr["server.cache.snapshot.rejected"]; got != tamperedRestarts {
		t.Errorf("snapshot.rejected = %d, want %d (exactly one per tampered file)", got, tamperedRestarts)
	}
	if got := ctr["server.cache.snapshot.loaded"] + ctr["server.cache.snapshot.rejected"]; got != totalRestarts {
		t.Errorf("loaded+rejected = %d, want %d restarts", got, totalRestarts)
	}
	if got := ctr["server.cache.snapshot.absent"]; got != replicas {
		t.Errorf("snapshot.absent = %d, want %d (initial boots only)", got, replicas)
	}
	if got := ctr["server.cache.snapshot.save_errors"]; got != 0 {
		t.Errorf("snapshot.save_errors = %d, want 0", got)
	}
	if got := ctr["server.cache.snapshot.saves"]; got != totalRestarts {
		t.Errorf("snapshot.saves = %d, want %d (one save per restart)", got, totalRestarts)
	}

	// ---- exact restart chaos books: the driver took every drawn plan.
	if a, c := fleetInj.Assigned(faultinject.FaultRestart), fleetInj.Consumed(faultinject.FaultRestart); a != c {
		t.Errorf("restart plans assigned %d != consumed %d", a, c)
	}
	if got := fleetInj.Consumed(faultinject.FaultRestart); got != chaosRestarts {
		t.Errorf("chaos applied %d restarts, injector consumed %d", chaosRestarts, got)
	}

	// ---- exact peer-fill ledger, with guaranteed coverage: the all-cold
	// sweep cannot avoid at least one local miss.
	attempts := ctr["fleet.peerfill.attempts"]
	if attempts == 0 {
		t.Error("no peer-fill attempts despite an all-cold sweep")
	}
	if settled := ctr["fleet.peerfill.hits"] + ctr["fleet.peerfill.misses"] + ctr["fleet.peerfill.timeouts"]; settled != attempts {
		t.Errorf("peerfill ledger: attempts %d != hits+misses+timeouts %d", attempts, settled)
	}
	// A requester-side hit implies a server-side peek hit; the reverse can
	// be severed mid-body by a restart.
	if ctr["server.peek.hits"] < ctr["fleet.peerfill.hits"] {
		t.Errorf("peek.hits %d < peerfill.hits %d", ctr["server.peek.hits"], ctr["fleet.peerfill.hits"])
	}

	// ---- no invented failures across every restart window.
	for _, name := range []string{
		"fleet.request.outcome.unroutable",
		"fleet.request.outcome.client_gone",
		"fleet.request.outcome.invalid",
	} {
		if ctr[name] != 0 {
			t.Errorf("%s = %d, want 0: the router invented a failure", name, ctr[name])
		}
	}
	if got, want := ctr["fleet.request.outcome.ok"], int64(total); got != want {
		t.Errorf("outcome.ok = %d, want %d", got, want)
	}

	// ---- exact attempt ledger across the restart windows.
	if ctr["fleet.attempt.launched"] != ctr["fleet.attempt.settled"] {
		t.Errorf("attempt ledger: launched %d != settled %d",
			ctr["fleet.attempt.launched"], ctr["fleet.attempt.settled"])
	}

	// ---- no goroutine pile-up once the fleet is down.
	http.DefaultClient.CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+5 {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines %d vs baseline %d after soak", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
