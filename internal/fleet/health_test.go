package fleet

import (
	"math/rand/v2"
	"testing"
	"time"

	"buffopt/internal/server"
)

// TestProbeJitterBounds: every drawn interval stays within ±20% of the
// base, and the draws actually vary — the desynchronization the jitter
// exists for.
func TestProbeJitterBounds(t *testing.T) {
	base := 250 * time.Millisecond
	lo := time.Duration(float64(base) * 0.8)
	hi := time.Duration(float64(base) * 1.2)
	rng := rand.New(rand.NewPCG(server.RendezvousScore("replica:1", "probe-jitter"), 0x9e3779b97f4a7c15))
	seen := map[time.Duration]bool{}
	for i := 0; i < 10_000; i++ {
		d := jitterInterval(base, rng)
		if d < lo || d > hi {
			t.Fatalf("draw %d: %v outside [%v, %v]", i, d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 100 {
		t.Fatalf("only %d distinct intervals in 10k draws; jitter is not jittering", len(seen))
	}
}

// TestProbeJitterPerReplicaPhase: two replicas' jitter streams differ, so
// a fleet booted at one instant does not probe in lockstep.
func TestProbeJitterPerReplicaPhase(t *testing.T) {
	base := time.Second
	a := rand.New(rand.NewPCG(server.RendezvousScore("replica:1", "probe-jitter"), 0x9e3779b97f4a7c15))
	b := rand.New(rand.NewPCG(server.RendezvousScore("replica:2", "probe-jitter"), 0x9e3779b97f4a7c15))
	same := 0
	for i := 0; i < 64; i++ {
		if jitterInterval(base, a) == jitterInterval(base, b) {
			same++
		}
	}
	if same == 64 {
		t.Fatal("both replicas drew identical jitter streams")
	}
}

// TestHealthDwellDampsFlapping: within the dwell window a healthy replica
// shrugs off a lone connection failure and a suspect one shrugs off a
// lone success — the healthy↔suspect pair must not thrash per probe.
func TestHealthDwellDampsFlapping(t *testing.T) {
	r := newReplica("replica:1", time.Hour)

	// Freshly healthy: one failure inside the dwell stays healthy (still
	// counted toward the threshold), and must not flip state.
	r.noteConnError(3)
	if got := r.health(); got != healthy {
		t.Fatalf("one failure inside dwell: state %v, want healthy", got)
	}
	if got := r.fails.Load(); got != 1 {
		t.Fatalf("failure inside dwell not counted: fails = %d", got)
	}

	// Age the state past the dwell: now the same failure demotes.
	r.stateSince.Store(time.Now().Add(-2 * time.Hour).UnixNano())
	r.noteConnError(3)
	if got := r.health(); got != suspect {
		t.Fatalf("failure after dwell: state %v, want suspect", got)
	}

	// Freshly suspect: a success inside the dwell must not bounce back.
	r.noteSuccess(time.Millisecond)
	if got := r.health(); got != suspect {
		t.Fatalf("success inside dwell: state %v, want suspect (damped)", got)
	}
	r.noteReady()
	if got := r.health(); got != suspect {
		t.Fatalf("ready probe inside dwell: state %v, want suspect (damped)", got)
	}

	// Aged suspect: success promotes.
	r.stateSince.Store(time.Now().Add(-2 * time.Hour).UnixNano())
	r.noteSuccess(time.Millisecond)
	if got := r.health(); got != healthy {
		t.Fatalf("success after dwell: state %v, want healthy", got)
	}
}

// TestHealthDwellNeverDelaysHardTransitions: the threshold crossing to
// down and resurrection from down/draining carry real information and
// bypass the dwell entirely.
func TestHealthDwellNeverDelaysHardTransitions(t *testing.T) {
	r := newReplica("replica:1", time.Hour)

	// Threshold trip straight out of a fresh healthy state: down at once,
	// despite the dwell — damping suspects must never mask a dead replica.
	r.noteConnError(2)
	r.noteConnError(2)
	if got := r.health(); got != down {
		t.Fatalf("threshold crossed inside dwell: state %v, want down", got)
	}

	// Resurrection from down is immediate too (fresh down state).
	r.noteSuccess(time.Millisecond)
	if got := r.health(); got != healthy {
		t.Fatalf("success on a down replica: state %v, want healthy", got)
	}

	// Draining is entered and exited without dwell.
	r.noteDraining()
	if got := r.health(); got != draining {
		t.Fatalf("draining probe: state %v, want draining", got)
	}
	r.noteReady()
	if got := r.health(); got != healthy {
		t.Fatalf("ready after draining: state %v, want healthy", got)
	}
}

// TestHealthDwellZeroDisables: dwell 0 restores the undamped behavior.
func TestHealthDwellZeroDisables(t *testing.T) {
	r := newReplica("replica:1", 0)
	r.noteConnError(3)
	if got := r.health(); got != suspect {
		t.Fatalf("dwell 0, one failure: state %v, want suspect", got)
	}
	r.noteSuccess(time.Millisecond)
	if got := r.health(); got != healthy {
		t.Fatalf("dwell 0, success: state %v, want healthy", got)
	}
}
