package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"buffopt/internal/faultinject"
	"buffopt/internal/obs"
	"buffopt/internal/server"
)

// TestFleetSoakUnderChaos is the fleet-level chaos soak: clients hammer
// the router while every replica's injector deals request-level faults
// (slow, cancel, panic, malformed) and a separate fleet-level injector
// deals replica-level faults — partitions that blackhole a replica for a
// while, and one abrupt kill. The resilience claims are proved by
// accounting, not vibes:
//
//   - exactly-once responses: every client request gets exactly one
//     terminal outcome, and the router's outcome counters partition its
//     request counters exactly;
//   - exact attempt ledger: every launched upstream attempt settles —
//     abandoned hedges and blackholed connections included — and the
//     settle classes partition the launches;
//   - exact chaos books: the fleet injector's replica-level plans are
//     each taken exactly once by the chaos driver (applied or skipped,
//     the two summing to consumed); request-level fault books stay exact
//     except where the kill severed in-flight solves, and that slack is
//     bounded by the killed replica's worker count;
//   - no invented failures: clients see only 200s, injected panics, and
//     admission sheds — zero router-generated 5xx (no "unroutable", no
//     "client gone"), because one dead replica out of three must be
//     absorbed by failover, not surfaced.
//
// Run under -race by scripts/check.sh (short mode) and `make fleetsoak`
// (full).
func TestFleetSoakUnderChaos(t *testing.T) {
	solveClients, perClient := 8, 16
	batchClients, perBatchClient := 3, 5
	chaosTicks := 60
	if testing.Short() {
		solveClients, perClient = 5, 8
		batchClients, perBatchClient = 2, 3
		chaosTicks = 35
	}
	const (
		replicas     = 3
		workers      = 2
		queueDepth   = 6
		batchWidth   = 3
		distinctNets = 12
		tickEvery    = 20 * time.Millisecond
		partitionFor = 5 // ticks
		ladderDepth  = 4 // tiers a single killed solve can fail "canceled"
	)

	old := obs.Default()
	obs.SetDefault(obs.NewRegistry())
	t.Cleanup(func() { obs.SetDefault(old) })
	baseline := runtime.NumGoroutine()

	// Request-level chaos lives on the replicas...
	var injectors []*faultinject.Injector
	for i := 0; i < replicas; i++ {
		inj, err := faultinject.New(faultinject.Config{
			Seed: int64(101 + i),
			Rates: map[faultinject.Fault]float64{
				faultinject.FaultSlow:      0.08,
				faultinject.FaultCancel:    0.08,
				faultinject.FaultPanic:     0.06,
				faultinject.FaultMalformed: 0.08,
			},
			SlowDelay: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		injectors = append(injectors, inj)
	}
	// ...replica-level chaos is drawn by this driver-side injector: the
	// driver takes each plan exactly once and applies it to the lab.
	fleetInj, err := faultinject.New(faultinject.Config{
		Seed: 11,
		Rates: map[faultinject.Fault]float64{
			faultinject.FaultPartition: 0.30,
			faultinject.FaultKill:      0.10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	lab, err := StartLab(LabConfig{
		Replicas: replicas,
		Server: server.Config{
			Workers:    workers,
			QueueDepth: queueDepth,
			// Generous deadline: every "canceled" below is either injected
			// or severed by the kill, never a genuine timeout.
			DefaultTimeout: 30 * time.Second,
			RetryAfter:     time.Second,
			CacheEntries:   64,
		},
		Injectors: injectors,
		Router: Config{
			ProbeInterval:  25 * time.Millisecond,
			ProbeTimeout:   150 * time.Millisecond,
			FailThreshold:  3,
			AttemptTimeout: 3 * time.Second,
			HedgeMin:       30 * time.Millisecond,
			RetryBackoff:   5 * time.Millisecond,
			MaxAttempts:    3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + lab.Router.Addr()

	// ---------------------------------------------------------- load
	var (
		mu         sync.Mutex
		classes    = map[string]int{} // solve terminal classes
		badBodies  int
		solveTotal = solveClients * perClient
	)
	tally := func(class string) {
		mu.Lock()
		classes[class]++
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for c := 0; c < solveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				net := labNet((c*perClient + i) % distinctNets)
				resp, err := http.Post(base+"/solve", "text/plain", strings.NewReader(net))
				if err != nil {
					t.Errorf("transport error to the router (it must absorb replica chaos): %v", err)
					tally("transport")
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var sr server.SolveResponse
					if err := json.Unmarshal(body, &sr); err != nil {
						mu.Lock()
						badBodies++
						mu.Unlock()
					}
					tally("ok")
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("%d response missing Retry-After", resp.StatusCode)
					}
					var er server.ErrorResponse
					json.Unmarshal(body, &er)
					tally(er.Class)
				case http.StatusInternalServerError:
					var er server.ErrorResponse
					json.Unmarshal(body, &er)
					tally(er.Class)
					if er.Class != "panic" {
						t.Errorf("unexpected 500 class %q: %s", er.Class, er.Error)
					}
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
					tally(fmt.Sprintf("status%d", resp.StatusCode))
				}
			}
		}(c)
	}

	var (
		batchItemClasses = map[string]int{}
		batchPosts       = batchClients * perBatchClient
		batchNets        = batchPosts * batchWidth
	)
	for c := 0; c < batchClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perBatchClient; i++ {
				var items []string
				for j := 0; j < batchWidth; j++ {
					n, _ := json.Marshal(labNet((c*31 + i*batchWidth + j) % distinctNets))
					items = append(items, fmt.Sprintf(`{"net": %s}`, n))
				}
				body := fmt.Sprintf(`{"nets": [%s]}`, strings.Join(items, ","))
				resp, err := http.Post(base+"/solve/batch", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("batch transport error: %v", err)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("batch status %d: %s", resp.StatusCode, raw)
					continue
				}
				var br server.BatchResponse
				if err := json.Unmarshal(raw, &br); err != nil || br.Count != batchWidth || len(br.Results) != batchWidth {
					t.Errorf("malformed batch response (err %v): %s", err, raw)
					continue
				}
				for idx, item := range br.Results {
					if item.Index != idx {
						t.Errorf("batch result %d carries index %d", idx, item.Index)
					}
					class := "ok"
					if item.Error != nil {
						class = item.Error.Class
					}
					mu.Lock()
					batchItemClasses[class]++
					mu.Unlock()
				}
			}
		}(c)
	}

	// --------------------------------------------------------- chaos
	// The driver ticks concurrently with the load: each tick draws at
	// most one replica-level plan and takes it exactly once. At most one
	// partition is active at a time and exactly one kill ever applies;
	// draws that cannot apply are counted as skipped, so applied +
	// skipped == consumed stays exact.
	var (
		partitionsApplied, partitionsSkipped int64
		killsApplied, killsSkipped           int64
		killInflight                         int64 // the kill's accounting window
		killedWorkers                        int64
	)
	chaosRng := rand.New(rand.NewPCG(99, 77))
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		partitioned := -1 // index of the currently partitioned replica
		healAt := 0
		for tick := 0; tick < chaosTicks; tick++ {
			time.Sleep(tickEvery)
			if partitioned >= 0 && tick >= healAt {
				lab.Replicas[partitioned].Heal()
				partitioned = -1
			}
			plan := fleetInj.Assign()
			if plan.Take(faultinject.FaultPartition) {
				target := chaosRng.IntN(replicas)
				if partitioned >= 0 || lab.Replicas[target].Killed() {
					partitionsSkipped++
					continue
				}
				lab.Replicas[target].Partition()
				partitioned = target
				healAt = tick + partitionFor
				partitionsApplied++
			}
			if plan.Take(faultinject.FaultKill) {
				target := chaosRng.IntN(replicas)
				if killsApplied > 0 || target == partitioned || lab.Replicas[target].Killed() {
					killsSkipped++
					continue
				}
				// Sample the in-flight count at the kill instant: those
				// solves die with their connections, and they are the
				// entire tolerance the kill buys in the books below.
				killInflight = lab.Replicas[target].Server.Inflight()
				killedWorkers = workers
				lab.Replicas[target].Kill()
				killsApplied++
			}
		}
		if partitioned >= 0 {
			lab.Replicas[partitioned].Heal()
		}
	}()

	wg.Wait()
	<-chaosDone

	// The router survived and still answers health checks.
	hr, err := http.Get(base + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("router healthz after soak: %v %v", hr, err)
	}
	hr.Body.Close()

	// Close drains the router: every in-flight attempt — abandoned
	// hedges included — settles before the snapshot below.
	if err := lab.Close(); err != nil {
		t.Fatalf("lab close: %v", err)
	}

	snap := obs.Default().Snapshot()
	ctr := snap.Counters
	t.Logf("solve classes=%v batch item classes=%v", classes, batchItemClasses)
	t.Logf("chaos: partitions applied=%d skipped=%d, kills applied=%d skipped=%d, inflight@kill=%d",
		partitionsApplied, partitionsSkipped, killsApplied, killsSkipped, killInflight)
	t.Logf("attempts launched=%d settled=%d ok=%d err=%d shed=%d connerr=%d hedges=%d won=%d",
		ctr["fleet.attempt.launched"], ctr["fleet.attempt.settled"], ctr["fleet.attempt.ok"],
		ctr["fleet.attempt.error"], ctr["fleet.attempt.shed"], ctr["fleet.attempt.connerr"],
		ctr["fleet.hedge.launched"], ctr["fleet.hedge.won"])

	// ---- exactly-once responses, client side and router side agreeing.
	var answered int
	for _, n := range classes {
		answered += n
	}
	if answered != solveTotal {
		t.Fatalf("answered %d of %d solve requests", answered, solveTotal)
	}
	if badBodies != 0 {
		t.Errorf("%d 200 responses had undecodable bodies", badBodies)
	}
	if ctr["fleet.requests"] != int64(solveTotal) {
		t.Errorf("fleet.requests = %d, want %d", ctr["fleet.requests"], solveTotal)
	}
	var outcomes int64
	for name, v := range ctr {
		if strings.HasPrefix(name, "fleet.request.outcome.") {
			outcomes += v
		}
	}
	if outcomes != int64(solveTotal) {
		t.Errorf("request outcomes %d != %d requests", outcomes, solveTotal)
	}
	if got := ctr["fleet.request.outcome.ok"]; got != int64(classes["ok"]) {
		t.Errorf("outcome.ok = %d, clients saw %d", got, classes["ok"])
	}
	if got := ctr["fleet.request.outcome.error"]; got != int64(classes["panic"]) {
		t.Errorf("outcome.error = %d, clients saw %d injected panics", got, classes["panic"])
	}
	if got := ctr["fleet.request.outcome.shed"]; got != int64(classes["shed"]) {
		t.Errorf("outcome.shed = %d, clients saw %d sheds", got, classes["shed"])
	}

	// ---- no invented failures: one dead replica of three is absorbed.
	for _, name := range []string{
		"fleet.request.outcome.unroutable",
		"fleet.request.outcome.client_gone",
		"fleet.request.outcome.invalid",
		"fleet.batch.item.unroutable",
	} {
		if ctr[name] != 0 {
			t.Errorf("%s = %d, want 0: the router invented a failure", name, ctr[name])
		}
	}
	for class := range classes {
		if class != "ok" && class != "panic" && class != "shed" {
			t.Errorf("clients saw %d responses of unexpected class %q", classes[class], class)
		}
	}

	// ---- batch books: every posted batch and net counted, every item
	// exactly one outcome, no router-invented item failures.
	if ctr["fleet.batch.requests"] != int64(batchPosts) {
		t.Errorf("fleet.batch.requests = %d, want %d", ctr["fleet.batch.requests"], batchPosts)
	}
	if ctr["fleet.batch.nets"] != int64(batchNets) {
		t.Errorf("fleet.batch.nets = %d, want %d", ctr["fleet.batch.nets"], batchNets)
	}
	var batchAnswered int
	for class, n := range batchItemClasses {
		batchAnswered += n
		if class != "ok" && class != "panic" && class != "shed" {
			t.Errorf("batch items saw %d of unexpected class %q", n, class)
		}
	}
	if batchAnswered != batchNets {
		t.Errorf("batch items answered %d of %d", batchAnswered, batchNets)
	}

	// ---- exact attempt ledger.
	if ctr["fleet.attempt.launched"] != ctr["fleet.attempt.settled"] {
		t.Errorf("attempt ledger: launched %d != settled %d",
			ctr["fleet.attempt.launched"], ctr["fleet.attempt.settled"])
	}
	settleClasses := ctr["fleet.attempt.ok"] + ctr["fleet.attempt.error"] +
		ctr["fleet.attempt.shed"] + ctr["fleet.attempt.connerr"]
	if settleClasses != ctr["fleet.attempt.settled"] {
		t.Errorf("attempt settle classes %d != settled %d", settleClasses, ctr["fleet.attempt.settled"])
	}
	if ctr["fleet.hedge.won"] > ctr["fleet.hedge.launched"] {
		t.Errorf("hedge won %d > launched %d", ctr["fleet.hedge.won"], ctr["fleet.hedge.launched"])
	}

	// ---- exact replica-level chaos books.
	for _, f := range []faultinject.Fault{faultinject.FaultPartition, faultinject.FaultKill} {
		if a, c := fleetInj.Assigned(f), fleetInj.Consumed(f); a != c {
			t.Errorf("%v: assigned %d != consumed %d (driver must take every plan)", f, a, c)
		}
	}
	if got := partitionsApplied + partitionsSkipped; got != fleetInj.Consumed(faultinject.FaultPartition) {
		t.Errorf("partitions applied %d + skipped %d != consumed %d",
			partitionsApplied, partitionsSkipped, fleetInj.Consumed(faultinject.FaultPartition))
	}
	if got := killsApplied + killsSkipped; got != fleetInj.Consumed(faultinject.FaultKill) {
		t.Errorf("kills applied %d + skipped %d != consumed %d",
			killsApplied, killsSkipped, fleetInj.Consumed(faultinject.FaultKill))
	}
	if killsApplied > 1 {
		t.Errorf("driver applied %d kills, at most 1 allowed", killsApplied)
	}
	if killInflight > killedWorkers {
		t.Errorf("sampled %d in-flight at kill, replica has only %d workers", killInflight, killedWorkers)
	}

	// ---- request-level fault books, summed across replicas. Slow and
	// panic hooks fire unconditionally before any context check, so they
	// are exact even across the kill. Cancel and malformed hooks sit
	// mid-solve; the solves severed by the kill may die before reaching
	// them, so the slack is bounded by the killed replica's worker count.
	sum := func(get func(*faultinject.Injector) int64) int64 {
		var s int64
		for _, inj := range injectors {
			s += get(inj)
		}
		return s
	}
	killTol := killsApplied * killedWorkers
	for _, f := range []faultinject.Fault{faultinject.FaultSlow, faultinject.FaultPanic} {
		a := sum(func(i *faultinject.Injector) int64 { return i.Assigned(f) })
		c := sum(func(i *faultinject.Injector) int64 { return i.Consumed(f) })
		if a != c {
			t.Errorf("%v: assigned %d != consumed %d", f, a, c)
		}
	}
	for _, f := range []faultinject.Fault{faultinject.FaultCancel, faultinject.FaultMalformed} {
		a := sum(func(i *faultinject.Injector) int64 { return i.Assigned(f) })
		c := sum(func(i *faultinject.Injector) int64 { return i.Consumed(f) })
		if gap := a - c; gap < 0 || gap > killTol {
			t.Errorf("%v: assigned %d - consumed %d = %d outside the kill window [0, %d]",
				f, a, c, gap, killTol)
		}
	}

	// Replica-side degradation telemetry agrees with the injectors,
	// within the kill window: a severed solve may record extra genuine
	// cancels (one per remaining ladder tier) or drop the tier-error
	// bookkeeping its fault would have earned.
	panics := sum(func(i *faultinject.Injector) int64 { return i.Consumed(faultinject.FaultPanic) })
	if got := ctr["server.request.outcome.panic"] + ctr["server.batch.item.outcome.panic"]; got != panics {
		t.Errorf("replica outcome.panic = %d, injected %d", got, panics)
	}
	cancels := sum(func(i *faultinject.Injector) int64 { return i.Consumed(faultinject.FaultCancel) })
	gotCancels := ctr["server.request.tiererr.canceled"] + ctr["server.batch.item.tiererr.canceled"]
	if lo, hi := cancels-killTol, cancels+killTol*ladderDepth; gotCancels < lo || gotCancels > hi {
		t.Errorf("replica tiererr.canceled = %d outside [%d, %d] around %d injected cancels",
			gotCancels, lo, hi, cancels)
	}
	malformed := sum(func(i *faultinject.Injector) int64 { return i.Consumed(faultinject.FaultMalformed) })
	gotInternal := ctr["server.request.tiererr.internal"] + ctr["server.batch.item.tiererr.internal"]
	if lo, hi := malformed-killTol, malformed; gotInternal < lo || gotInternal > hi {
		t.Errorf("replica tiererr.internal = %d outside [%d, %d] around %d injected corruptions",
			gotInternal, lo, hi, malformed)
	}

	// ---- hash affinity held under chaos: with 12 distinct nets posted
	// repeatedly, the per-shard caches must have been hit.
	if ctr["server.cache.hits"] == 0 {
		t.Error("no cache hits: hash affinity did not compose the shard caches")
	}

	// ---- bounded pools: the shared gauges cover all replicas, so the
	// bound is per-fleet.
	if peak := snap.Gauges["server.inflight.peak"]; peak > replicas*workers {
		t.Errorf("replica inflight peak %d blew past %d workers fleet-wide", peak, replicas*workers)
	}

	// ---- no goroutine pile-up once the fleet is down.
	http.DefaultClient.CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+5 {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines %d vs baseline %d after soak", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
