package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"buffopt/internal/faultinject"
	"buffopt/internal/obs"
	"buffopt/internal/server"
)

// getTrace fetches /debug/trace/<id> from base and decodes it.
func getTrace(base, id string) (obs.TraceJSON, int, error) {
	resp, err := http.Get(base + "/debug/trace/" + id)
	if err != nil {
		return obs.TraceJSON{}, 0, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return obs.TraceJSON{}, resp.StatusCode, nil
	}
	var tj obs.TraceJSON
	if err := json.Unmarshal(body, &tj); err != nil {
		return obs.TraceJSON{}, resp.StatusCode, fmt.Errorf("undecodable trace body: %v: %s", err, body)
	}
	return tj, resp.StatusCode, nil
}

// jsonAttr reads one attribute off a wire-shaped span ("" when absent).
func jsonAttr(s obs.SpanJSON, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// recAttr reads one attribute off a collector record ("" when absent).
func recAttr(r obs.SpanRecord, key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// pollTrace polls the router's /debug/trace/<id> until check passes or
// the deadline expires. Polling is required, not paranoia: a replica's
// request span Ends in a handler defer that can run after the client
// already holds the response, so the spans trickle into the collectors
// shortly after the request returns.
func pollTrace(t *testing.T, base, id string, check func(obs.TraceJSON) error) obs.TraceJSON {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		tj, status, err := getTrace(base, id)
		if err != nil {
			t.Fatalf("fetching trace %s: %v", id, err)
		}
		if status == http.StatusOK {
			if lastErr = check(tj); lastErr == nil {
				return tj
			}
		} else {
			lastErr = fmt.Errorf("status %d", status)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("trace %s never assembled: %v", id, lastErr)
	return obs.TraceJSON{}
}

// TestTraceAcrossFleet proves the cross-process assembly claim on a live
// 3-replica lab fleet over real loopback TCP: one POST /solve through
// the router yields a trace whose /debug/trace/<id> view is a single
// fully-linked tree — the router's fleet.request span is the ancestor of
// its dispatch and attempt spans, the winning replica's server.request
// span hangs under the attempt that carried the traceparent header, and
// the replica's solver tiers hang under that. It also pins the W3C edge
// cases end to end: a client-minted traceparent is adopted (same trace
// ID, router root linked under the client's span), a malformed one
// starts a fresh trace, and the debug endpoint 400s/404s cleanly.
func TestTraceAcrossFleet(t *testing.T) {
	freshObs(t)
	lab, err := StartLab(LabConfig{
		Replicas: 3,
		Server: server.Config{
			Workers:        2,
			QueueDepth:     8,
			DefaultTimeout: 10 * time.Second,
			CacheEntries:   16,
		},
		Router: Config{
			ProbeInterval:  25 * time.Millisecond,
			ProbeTimeout:   150 * time.Millisecond,
			FailThreshold:  3,
			AttemptTimeout: 3 * time.Second,
			// No hedging noise in the structural test: the tree must be
			// deterministic (exactly one attempt per dispatch).
			HedgeMin:     2 * time.Second,
			RetryBackoff: 5 * time.Millisecond,
			MaxAttempts:  3,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lab.Close()
	base := "http://" + lab.Router.Addr()
	replicaNames := map[string]bool{}
	for _, rep := range lab.Replicas {
		replicaNames[rep.Name] = true
	}

	solve := func(traceparent string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/solve", strings.NewReader(labNet(0)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "text/plain")
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("solve through router: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve status %d", resp.StatusCode)
		}
		return resp
	}

	// ---- fresh trace: router-minted ID, fully linked cross-process tree.
	resp := solve("")
	id := resp.Header.Get("X-Trace-Id")
	if _, err := obs.ParseTraceID(id); err != nil {
		t.Fatalf("X-Trace-Id %q: %v", id, err)
	}
	assembled := pollTrace(t, base, id, func(tj obs.TraceJSON) error {
		if tj.TraceID != id {
			return fmt.Errorf("trace body names %s, want %s", tj.TraceID, id)
		}
		byID := map[string]obs.SpanJSON{}
		var root obs.SpanJSON
		roots := 0
		for _, s := range tj.Spans {
			if s.TraceID != id {
				return fmt.Errorf("span %s carries trace %s", s.SpanID, s.TraceID)
			}
			byID[s.SpanID] = s
			if s.Name == "fleet.request" {
				root = s
				roots++
			}
		}
		if roots != 1 {
			return fmt.Errorf("%d fleet.request spans, want 1", roots)
		}
		if root.Origin != "router" || root.ParentID != "" {
			return fmt.Errorf("root span origin=%q parent=%q, want router root", root.Origin, root.ParentID)
		}
		// Every other span must link to a parent inside the trace: the
		// tree is fully connected across the process boundary.
		for _, s := range tj.Spans {
			if s.SpanID == root.SpanID {
				continue
			}
			if s.ParentID == "" {
				return fmt.Errorf("span %s (%s) is an orphan root", s.SpanID, s.Name)
			}
			if _, ok := byID[s.ParentID]; !ok {
				return fmt.Errorf("span %s (%s) parent %s not in trace", s.SpanID, s.Name, s.ParentID)
			}
		}
		// Router side: request -> dispatch -> attempt.
		var attemptID string
		for _, s := range tj.Spans {
			if s.Name == "fleet.dispatch" && s.ParentID == root.SpanID && s.Origin == "router" {
				for _, a := range tj.Spans {
					if a.Name == "fleet.attempt" && a.ParentID == s.SpanID && jsonAttr(a, "replica") != "" {
						attemptID = a.SpanID
					}
				}
			}
		}
		if attemptID == "" {
			return fmt.Errorf("no fleet.request -> fleet.dispatch -> fleet.attempt chain yet")
		}
		// Replica side: server.request under the attempt that carried the
		// traceparent header, solver tiers under the replica.
		var serverID string
		for _, s := range tj.Spans {
			if s.Name == "server.request" && replicaNames[s.Origin] && s.ParentID == attemptID {
				serverID = s.SpanID
			}
		}
		if serverID == "" {
			return fmt.Errorf("no server.request span under attempt %s yet", attemptID)
		}
		for _, s := range tj.Spans {
			if strings.HasPrefix(s.Name, "solve.tier.") && replicaNames[s.Origin] {
				return nil
			}
		}
		return fmt.Errorf("no solve.tier.* span from a replica yet")
	})
	t.Logf("trace %s assembled with %d spans across router + replicas", id, len(assembled.Spans))

	// ---- client-minted traceparent: adopted, root linked under it.
	client := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID()}
	resp = solve(obs.FormatTraceparent(client))
	if got := resp.Header.Get("X-Trace-Id"); got != client.TraceID.String() {
		t.Fatalf("X-Trace-Id = %s, want adopted client trace %s", got, client.TraceID)
	}
	pollTrace(t, base, client.TraceID.String(), func(tj obs.TraceJSON) error {
		for _, s := range tj.Spans {
			if s.Name == "fleet.request" {
				if s.ParentID != client.SpanID.String() {
					return fmt.Errorf("adopted root parent %q, want client span %s", s.ParentID, client.SpanID)
				}
				return nil
			}
		}
		return fmt.Errorf("no fleet.request span yet")
	})

	// ---- malformed traceparent: total parsing rejects it, fresh trace.
	resp = solve("00-xyz-no-01")
	fresh := resp.Header.Get("X-Trace-Id")
	if _, err := obs.ParseTraceID(fresh); err != nil {
		t.Fatalf("malformed traceparent yielded X-Trace-Id %q: %v", fresh, err)
	}
	if fresh == id || fresh == client.TraceID.String() {
		t.Fatalf("malformed traceparent reused trace %s", fresh)
	}

	// ---- debug endpoint guards.
	if _, status, _ := getTrace(base, "not-a-trace-id"); status != http.StatusBadRequest {
		t.Errorf("bad trace id: status %d, want 400", status)
	}
	if _, status, _ := getTrace(base, obs.NewTraceID().String()); status != http.StatusNotFound {
		t.Errorf("unknown trace id: status %d, want 404", status)
	}

	// ---- OpenMetrics exposition with exemplars, router and replica alike.
	for _, ep := range []struct{ who, base string }{
		{"router", base},
		{"replica", "http://" + lab.Replicas[0].Name},
	} {
		pr, err := http.Get(ep.base + "/metrics/prom")
		if err != nil {
			t.Fatalf("%s /metrics/prom: %v", ep.who, err)
		}
		body, _ := io.ReadAll(pr.Body)
		pr.Body.Close()
		text := string(body)
		for _, want := range []string{"buffopt_", "_bucket{le=", `trace_id="`, "# EOF\n"} {
			if !strings.Contains(text, want) {
				t.Errorf("%s /metrics/prom missing %q", ep.who, want)
			}
		}
	}

	// ---- flight recorder endpoint answers with its books.
	fr, err := http.Get(base + "/debug/flightrecorder")
	if err != nil || fr.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flightrecorder: %v %v", fr, err)
	}
	var flight obs.FlightJSON
	if err := json.NewDecoder(fr.Body).Decode(&flight); err != nil {
		t.Fatalf("flight recorder body: %v", err)
	}
	fr.Body.Close()
}

// TestTraceSoak is the trace-ledger chaos soak: clients hammer the lab
// fleet while every replica's injector deals request-level faults, and
// afterwards the span collectors must account for the chaos exactly —
// not approximately, not "at least once":
//
//   - exact books on all four collectors (router + 3 replicas): spans
//     started == finished, finished == ring-resident + dropped, zero
//     flight-recorder evictions or truncations;
//   - every injected fault maps to exactly one recorded span carrying
//     fault=<name>, counted against Injector.Consumed per fault kind
//     (anomalous spans pin their traces at record time, so ring churn —
//     deliberately provoked with a small ring — cannot lose one);
//   - every admission shed maps to exactly one shed-annotated replica
//     span, counted against the server.shed.* / server.batch.shed.*
//     counters;
//   - every hedge maps to exactly one fleet.dispatch span with a hedge
//     attribute (hedge=won for the winners), counted against the
//     fleet.hedge.* counters, and every replica-shed attempt to one
//     fleet.attempt span with shed=replica.
//
// No partitions or kills here: severed connections would (by design)
// leave bounded slack in the fault books, and this test exists to prove
// the zero-slack case. Run under -race by scripts/check.sh (short mode)
// and `make tracesoak` (full).
func TestTraceSoak(t *testing.T) {
	solveClients, perClient := 10, 12
	batchClients, perBatchClient := 3, 4
	if testing.Short() {
		solveClients, perClient = 6, 8
		batchClients, perBatchClient = 2, 3
	}
	const (
		replicas     = 3
		workers      = 2
		queueDepth   = 2
		batchWidth   = 3
		distinctNets = 12
	)

	freshObs(t)
	baseline := runtime.NumGoroutine()

	var injectors []*faultinject.Injector
	for i := 0; i < replicas; i++ {
		inj, err := faultinject.New(faultinject.Config{
			Seed: int64(101 + i),
			Rates: map[faultinject.Fault]float64{
				faultinject.FaultSlow:      0.10,
				faultinject.FaultCancel:    0.08,
				faultinject.FaultPanic:     0.06,
				faultinject.FaultMalformed: 0.08,
			},
			SlowDelay: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		injectors = append(injectors, inj)
	}

	lab, err := StartLab(LabConfig{
		Replicas: replicas,
		Server: server.Config{
			Workers:        workers,
			QueueDepth:     queueDepth,
			DefaultTimeout: 30 * time.Second,
			RetryAfter:     time.Second,
			// No result cache: chaos plans are drawn inside cache fills
			// (hits and coalesced waiters consume none, keeping the
			// injector books exact), so a warm cache would starve the
			// fault ledger this soak exists to exercise. Every request
			// must run a real solve and draw a real plan.
			CacheEntries: 0,
			// Small ring: the soak must overflow it, proving dropped spans
			// are counted and anomalous ones survive in the flight recorder.
			TraceSpans: 256,
			// Generous flight recorder: the exact ledgers below require
			// zero evictions, and the assertion on Books enforces that.
			TraceFlightTraces: 4096,
			// High threshold: only faults/sheds/hedges/errors pin, so the
			// pinned set is exactly the anomaly set the ledgers count.
			TraceLatency: 30 * time.Second,
		},
		Injectors: injectors,
		Router: Config{
			ProbeInterval:     25 * time.Millisecond,
			ProbeTimeout:      150 * time.Millisecond,
			FailThreshold:     3,
			AttemptTimeout:    3 * time.Second,
			HedgeMin:          20 * time.Millisecond,
			RetryBackoff:      5 * time.Millisecond,
			MaxAttempts:       3,
			TraceSpans:        512,
			TraceFlightTraces: 4096,
			TraceLatency:      30 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + lab.Router.Addr()

	// ---------------------------------------------------------- load
	var (
		mu         sync.Mutex
		classes    = map[string]int{}
		solveTotal = solveClients * perClient
	)
	var wg sync.WaitGroup
	for c := 0; c < solveClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				net := labNet((c*perClient + i) % distinctNets)
				resp, err := http.Post(base+"/solve", "text/plain", strings.NewReader(net))
				if err != nil {
					t.Errorf("transport error to the router: %v", err)
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				class := "ok"
				if resp.StatusCode != http.StatusOK {
					var er server.ErrorResponse
					json.Unmarshal(body, &er)
					class = er.Class
				}
				mu.Lock()
				classes[class]++
				mu.Unlock()
			}
		}(c)
	}
	batchPosts := batchClients * perBatchClient
	batchNets := batchPosts * batchWidth
	var batchAnswered int
	for c := 0; c < batchClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perBatchClient; i++ {
				var items []string
				for j := 0; j < batchWidth; j++ {
					n, _ := json.Marshal(labNet((c*31 + i*batchWidth + j) % distinctNets))
					items = append(items, fmt.Sprintf(`{"net": %s}`, n))
				}
				body := fmt.Sprintf(`{"nets": [%s]}`, strings.Join(items, ","))
				resp, err := http.Post(base+"/solve/batch", "application/json", strings.NewReader(body))
				if err != nil {
					t.Errorf("batch transport error: %v", err)
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				var br server.BatchResponse
				if resp.StatusCode != http.StatusOK || json.Unmarshal(raw, &br) != nil {
					t.Errorf("batch status %d: %s", resp.StatusCode, raw)
					continue
				}
				mu.Lock()
				batchAnswered += len(br.Results)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	// Close drains the router's attempt ledger (abandoned hedges settle)
	// and then each replica waits out its handlers: every span started
	// anywhere in the fleet is recorded before the books are read.
	if err := lab.Close(); err != nil {
		t.Fatalf("lab close: %v", err)
	}

	snap := obs.Default().Snapshot()
	ctr := snap.Counters

	var answered int
	for class, n := range classes {
		answered += n
		if class != "ok" && class != "panic" && class != "shed" {
			t.Errorf("clients saw %d responses of unexpected class %q", n, class)
		}
	}
	if answered != solveTotal {
		t.Fatalf("answered %d of %d solve requests", answered, solveTotal)
	}
	if batchAnswered != batchNets {
		t.Fatalf("batch items answered %d of %d", batchAnswered, batchNets)
	}

	// ---- exact books on every collector in the fleet.
	collectors := []struct {
		who string
		col *obs.Collector
	}{{"router", lab.Router.Tracer()}}
	for i, rep := range lab.Replicas {
		collectors = append(collectors, struct {
			who string
			col *obs.Collector
		}{fmt.Sprintf("replica%d", i), rep.Server.Tracer()})
	}
	for _, c := range collectors {
		b := c.col.Books()
		t.Logf("%s books: started=%d finished=%d resident=%d dropped=%d pinned=%d evicted=%d truncated=%d",
			c.who, b.Started, b.Finished, b.Resident, b.Dropped, b.Pinned, b.Evicted, b.Truncated)
		if b.Started != b.Finished {
			t.Errorf("%s: started %d != finished %d (a span leaked or double-counted)", c.who, b.Started, b.Finished)
		}
		if b.Finished != b.Resident+b.Dropped {
			t.Errorf("%s: finished %d != resident %d + dropped %d", c.who, b.Finished, b.Resident, b.Dropped)
		}
		// The exact ledgers below count spans over pinned traces; an
		// eviction or truncation would silently lose ledger entries, so
		// both must be zero under the sizes configured above.
		if b.Evicted != 0 {
			t.Errorf("%s: %d pinned traces evicted; ledgers below would undercount", c.who, b.Evicted)
		}
		if b.Truncated != 0 {
			t.Errorf("%s: %d spans truncated from pinned traces", c.who, b.Truncated)
		}
	}

	// countSpans tallies retained spans matching pred across a collector's
	// pinned traces. Every span the ledgers care about carries a
	// fault/shed/hedge attribute, is therefore anomalous, and pins its
	// trace at record time — so with zero evictions/truncations asserted
	// above, pinned traces retain each such span exactly once.
	countSpans := func(col *obs.Collector, pred func(obs.SpanRecord) bool) int64 {
		var n int64
		for _, id := range col.PinnedTraces() {
			for _, r := range col.Trace(id) {
				if pred(r) {
					n++
				}
			}
		}
		return n
	}

	// ---- fault ledger: every consumed injection is exactly one span.
	for _, f := range []faultinject.Fault{
		faultinject.FaultSlow, faultinject.FaultCancel,
		faultinject.FaultPanic, faultinject.FaultMalformed,
	} {
		var consumed int64
		for _, inj := range injectors {
			consumed += inj.Consumed(f)
		}
		var spans int64
		for _, rep := range lab.Replicas {
			spans += countSpans(rep.Server.Tracer(), func(r obs.SpanRecord) bool {
				return recAttr(r, "fault") == f.String()
			})
		}
		if spans != consumed {
			t.Errorf("fault=%v: %d annotated spans retained, injectors consumed %d", f, spans, consumed)
		}
		if consumed == 0 {
			t.Errorf("fault=%v: soak consumed none; sizes too small to exercise the ledger", f)
		}
	}

	// ---- shed ledger: every admission shed is exactly one replica span.
	var shedCtr int64
	for name, v := range ctr {
		if strings.HasPrefix(name, "server.shed.") || strings.HasPrefix(name, "server.batch.shed.") {
			shedCtr += v
		}
	}
	var shedSpans int64
	for _, rep := range lab.Replicas {
		shedSpans += countSpans(rep.Server.Tracer(), func(r obs.SpanRecord) bool {
			return recAttr(r, "shed") != ""
		})
	}
	if shedSpans != shedCtr {
		t.Errorf("shed ledger: %d annotated replica spans, counters say %d", shedSpans, shedCtr)
	}

	// ---- hedge ledger: every hedge is exactly one dispatch span; wins
	// flip that span's attribute rather than adding a second one.
	router := lab.Router.Tracer()
	hedged := countSpans(router, func(r obs.SpanRecord) bool {
		return r.Name == "fleet.dispatch" && recAttr(r, "hedge") != ""
	})
	if hedged != ctr["fleet.hedge.launched"] {
		t.Errorf("hedge ledger: %d hedge-annotated dispatch spans, launched counter %d", hedged, ctr["fleet.hedge.launched"])
	}
	won := countSpans(router, func(r obs.SpanRecord) bool {
		return r.Name == "fleet.dispatch" && recAttr(r, "hedge") == "won"
	})
	if won != ctr["fleet.hedge.won"] {
		t.Errorf("hedge ledger: %d hedge=won dispatch spans, won counter %d", won, ctr["fleet.hedge.won"])
	}

	// ---- attempt-shed ledger on the router.
	attemptShed := countSpans(router, func(r obs.SpanRecord) bool {
		return r.Name == "fleet.attempt" && recAttr(r, "shed") == "replica"
	})
	if attemptShed != ctr["fleet.attempt.shed"] {
		t.Errorf("attempt ledger: %d shed-annotated attempt spans, counter %d", attemptShed, ctr["fleet.attempt.shed"])
	}

	t.Logf("ledgers: sheds=%d hedges=%d (won %d) attempt-sheds=%d classes=%v",
		shedCtr, hedged, won, attemptShed, classes)

	// ---- no goroutine pile-up once the fleet is down.
	http.DefaultClient.CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+5 {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines %d vs baseline %d after soak", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
