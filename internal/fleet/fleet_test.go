package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"buffopt/internal/obs"
	"buffopt/internal/server"
)

// labNet renders the i-th distinct test net. The nets differ in sink
// capacitance — an electrical property — because the affinity key hashes
// the canonical problem, which deliberately ignores names and
// coordinates; renaming a net would NOT make it a new key.
func labNet(i int) string {
	c := 1.0 + float64(i)*0.07
	return fmt.Sprintf(`net fleet%d
driver r=300 t=5e-11
node 0 source x=0 y=0
node 1 internal parent=0 wire=240,6e-13,0.003 x=0.003 y=0 bufok=1
node 2 sink parent=1 wire=160,4e-13,0.002 x=0.005 y=0 cap=%.6g rat=1.5e-9 nm=0.8 name=dff_a
node 3 internal parent=1 wire=80,2e-13,0.001 x=0.003 y=0.001 bufok=1
node 4 sink parent=3 wire=120,3e-13,0.0015 x=0.0045 y=0.001 cap=%.6g rat=1.5e-9 nm=0.8 name=dff_c
node 5 sink parent=3 wire=80,2e-13,0.001 x=0.003 y=0.002 cap=%.6g rat=1.5e-9 nm=0.8 name=dff_b aggr=0.5:7.2e9
end
`, i, 2.5e-14*c, 1.8e-14*c, 2.2e-14*c)
}

// freshObs swaps in a fresh metrics registry for one test.
func freshObs(t *testing.T) {
	t.Helper()
	old := obs.Default()
	obs.SetDefault(obs.NewRegistry())
	t.Cleanup(func() { obs.SetDefault(old) })
}

// startTestLab stands up a lab fleet and tears it down on cleanup.
func startTestLab(t *testing.T, cfg LabConfig) *Lab {
	t.Helper()
	lab, err := StartLab(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := lab.Close(); err != nil {
			t.Errorf("lab close: %v", err)
		}
	})
	return lab
}

func routerURL(lab *Lab) string { return "http://" + lab.Router.Addr() }

func postSolve(t *testing.T, base, net string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/solve", "text/plain", strings.NewReader(net))
	if err != nil {
		t.Fatalf("post /solve: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, body
}

func TestRendezvousRankProperties(t *testing.T) {
	names := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080", "10.0.0.4:8080"}
	keys := make([]string, 300)
	for i := range keys {
		keys[i] = fmt.Sprintf("solve/v1/key-%d", i)
	}

	// Deterministic, and a permutation of the replica set: same rank on
	// every call, every replica appears exactly once.
	for _, k := range keys[:10] {
		a, b := rendezvousRank(k, names), rendezvousRank(k, names)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("rank not deterministic for %q: %v vs %v", k, a, b)
		}
		seen := map[int]bool{}
		for _, i := range a {
			seen[i] = true
		}
		if len(seen) != len(names) {
			t.Fatalf("rank %v is not a permutation of %d replicas", a, len(names))
		}
	}

	// The assignment depends on the set, not the listing order.
	shuffled := []string{names[2], names[0], names[3], names[1]}
	for _, k := range keys {
		a := names[rendezvousRank(k, names)[0]]
		b := shuffled[rendezvousRank(k, shuffled)[0]]
		if a != b {
			t.Fatalf("primary for %q depends on replica order: %s vs %s", k, a, b)
		}
	}

	// Every replica owns a non-trivial share of the keyspace.
	owned := map[string]int{}
	for _, k := range keys {
		owned[names[rendezvousRank(k, names)[0]]]++
	}
	for _, n := range names {
		if owned[n] < len(keys)/len(names)/3 {
			t.Errorf("replica %s owns only %d of %d keys; hash is badly skewed", n, owned[n], len(keys))
		}
	}

	// The HRW property: removing one replica moves only its keys, each
	// to its key's previous second choice; everyone else's keys stay.
	removed := names[1]
	survivors := []string{names[0], names[2], names[3]}
	for _, k := range keys {
		before := rendezvousRank(k, names)
		after := survivors[rendezvousRank(k, survivors)[0]]
		if names[before[0]] == removed {
			if want := names[before[1]]; after != want {
				t.Fatalf("key %q should fail over to its second choice %s, went to %s", k, want, after)
			}
		} else if after != names[before[0]] {
			t.Fatalf("key %q moved from %s to %s though its primary survived", k, names[before[0]], after)
		}
	}
}

// TestRouterAffinityAndForwarding: the healthy path — responses forward
// verbatim, and repeats of a problem land on the shard that cached it.
func TestRouterAffinityAndForwarding(t *testing.T) {
	freshObs(t)
	lab := startTestLab(t, LabConfig{
		Replicas: 3,
		Server:   server.Config{Workers: 2, QueueDepth: 8, CacheEntries: 64},
		Router:   Config{ProbeInterval: 50 * time.Millisecond},
	})
	base := routerURL(lab)

	// First post solves fresh; the repeat must hit the owning shard's
	// cache — that is the whole point of hash affinity.
	for round, wantCached := range []bool{false, true} {
		status, body := postSolve(t, base, labNet(0))
		if status != http.StatusOK {
			t.Fatalf("round %d: status %d: %s", round, status, body)
		}
		var sr server.SolveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("round %d: undecodable body: %v", round, err)
		}
		if sr.Cached != wantCached {
			t.Fatalf("round %d: cached=%v, want %v", round, sr.Cached, wantCached)
		}
	}

	// A solver-side rejection forwards verbatim: 400 with the replica's
	// own error class, not a router-invented one.
	status, body := postSolve(t, base, "this is not a net\n")
	if status != http.StatusBadRequest {
		t.Fatalf("garbage net: status %d: %s", status, body)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Class != "invalid" {
		t.Fatalf("garbage net: class %q (err %v), want invalid", er.Class, err)
	}

	// Wrong method is rejected by the router itself.
	resp, err := http.Get(base + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve: status %d", resp.StatusCode)
	}

	// Router health surfaces.
	for _, path := range []string{"/healthz", "/readyz", "/fleet/status", "/metrics"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	snap := obs.Default().Snapshot()
	if got := snap.Counters["fleet.request.outcome.ok"]; got != 2 {
		t.Errorf("outcome.ok = %d, want 2", got)
	}
	if got := snap.Counters["fleet.request.outcome.error"]; got != 1 {
		t.Errorf("outcome.error = %d, want 1 (the forwarded 400)", got)
	}
}

// TestRouterFailoverOnKill: killing a replica mid-fleet loses no
// requests — connection errors fail over to each key's next replica,
// and the probes mark the corpse down.
func TestRouterFailoverOnKill(t *testing.T) {
	freshObs(t)
	lab := startTestLab(t, LabConfig{
		Replicas: 3,
		Server:   server.Config{Workers: 2, QueueDepth: 8},
		Router: Config{
			ProbeInterval:  25 * time.Millisecond,
			ProbeTimeout:   100 * time.Millisecond,
			FailThreshold:  2,
			AttemptTimeout: 5 * time.Second,
			HedgeMin:       50 * time.Millisecond,
		},
	})
	base := routerURL(lab)

	victim := lab.Replicas[0]
	victim.Kill()

	// Every key routes successfully, including the dead shard's.
	for i := 0; i < 12; i++ {
		if status, body := postSolve(t, base, labNet(i)); status != http.StatusOK {
			t.Fatalf("net %d after kill: status %d: %s", i, status, body)
		}
	}

	// The probes converge on the truth.
	deadline := time.Now().Add(3 * time.Second)
	for {
		resp, err := http.Get(base + "/fleet/status")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Replicas []ReplicaStatus `json:"replicas"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		state := ""
		for _, r := range st.Replicas {
			if r.Name == victim.Name {
				state = r.State
			}
		}
		if state == "down" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed replica never marked down (state %q)", state)
		}
		time.Sleep(20 * time.Millisecond)
	}

	snap := obs.Default().Snapshot()
	if snap.Counters["fleet.request.outcome.ok"] != 12 {
		t.Errorf("outcome.ok = %d, want 12", snap.Counters["fleet.request.outcome.ok"])
	}
	if snap.Counters["fleet.request.outcome.unroutable"] != 0 {
		t.Errorf("unroutable = %d, want 0", snap.Counters["fleet.request.outcome.unroutable"])
	}
}

// TestRouterHedgesPastPartition: a partition blackholes connections —
// they hang, not fail — so only the hedge timer saves the latency of
// requests whose primary is inside the partition.
func TestRouterHedgesPastPartition(t *testing.T) {
	freshObs(t)
	lab := startTestLab(t, LabConfig{
		Replicas: 3,
		Server:   server.Config{Workers: 2, QueueDepth: 8},
		Router: Config{
			// Probes effectively off: this test isolates the hedge path
			// (the probe path is TestRouterFailoverOnKill's job).
			ProbeInterval:  time.Hour,
			FailThreshold:  100,
			AttemptTimeout: 2 * time.Second,
			HedgeMin:       25 * time.Millisecond,
		},
	})
	base := routerURL(lab)

	// Find the net whose primary we are about to partition.
	rt := lab.Router
	victim := lab.Replicas[1]
	netIdx := -1
	for i := 0; i < 32 && netIdx < 0; i++ {
		key := rt.keyer.SolveKey("text/plain", url.Values{}, []byte(labNet(i)))
		if rt.names[rendezvousRank(key, rt.names)[0]] == victim.Name {
			netIdx = i
		}
	}
	if netIdx < 0 {
		t.Fatal("no test net hashes to the victim replica")
	}

	victim.Partition()
	start := time.Now()
	status, body := postSolve(t, base, labNet(netIdx))
	elapsed := time.Since(start)
	victim.Heal()
	if status != http.StatusOK {
		t.Fatalf("partitioned primary: status %d: %s", status, body)
	}
	// The answer must have come via the hedge, not the 2 s attempt
	// timeout on the blackholed connection.
	if elapsed > time.Second {
		t.Errorf("request took %v; hedge did not rescue it", elapsed)
	}
	snap := obs.Default().Snapshot()
	if snap.Counters["fleet.hedge.launched"] == 0 {
		t.Error("no hedge launched against a partitioned primary")
	}
	if snap.Counters["fleet.hedge.won"] == 0 {
		t.Error("hedge launched but never won against a blackholed primary")
	}
}

// TestRouterDrainMovesKeyspace: a draining replica keeps answering but
// its keyspace routes to each key's next replica.
func TestRouterDrainMovesKeyspace(t *testing.T) {
	freshObs(t)
	lab := startTestLab(t, LabConfig{
		Replicas: 2,
		Server:   server.Config{Workers: 2, QueueDepth: 8},
		Router:   Config{ProbeInterval: 20 * time.Millisecond, ProbeTimeout: 200 * time.Millisecond},
	})
	rt := lab.Router

	victim := lab.Replicas[0]
	victim.Drain()

	// The probe notices the drain...
	deadline := time.Now().Add(3 * time.Second)
	for {
		var rep *replica
		for _, r := range rt.replicas {
			if r.name == victim.Name {
				rep = r
			}
		}
		if rep.health() == draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drained replica never marked draining (state %v)", rep.health())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// ...and every key now prefers the surviving replica, while requests
	// still succeed end to end.
	for i := 0; i < 8; i++ {
		key := rt.keyer.SolveKey("text/plain", url.Values{}, []byte(labNet(i)))
		if got := rt.rank(key)[0].name; got == victim.Name {
			t.Errorf("net %d still routes first to the draining replica", i)
		}
		if status, body := postSolve(t, routerURL(lab), labNet(i)); status != http.StatusOK {
			t.Fatalf("net %d during drain: status %d: %s", i, status, body)
		}
	}

	// The router itself stays ready: one replica is plenty.
	resp, err := http.Get(routerURL(lab) + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("router readyz %d with one healthy replica", resp.StatusCode)
	}
}

// TestBatchThroughRouter: a batch splits per shard and merges back in
// client order with per-item partial-failure semantics intact.
func TestBatchThroughRouter(t *testing.T) {
	freshObs(t)
	lab := startTestLab(t, LabConfig{
		Replicas: 3,
		Server:   server.Config{Workers: 2, QueueDepth: 8, CacheEntries: 64},
		Router:   Config{ProbeInterval: 50 * time.Millisecond},
	})
	base := routerURL(lab)

	// Three good nets and one whose net text is garbage: the garbage one
	// fails alone, exactly as it would against a single replica.
	nets := []string{labNet(0), labNet(1), "garbage", labNet(2)}
	var items []string
	for _, n := range nets {
		j, _ := json.Marshal(n)
		items = append(items, fmt.Sprintf(`{"net": %s}`, j))
	}
	body := fmt.Sprintf(`{"nets": [%s]}`, strings.Join(items, ", "))

	resp, err := http.Post(base+"/solve/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var br server.BatchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("undecodable batch response: %v", err)
	}
	if br.Count != 4 || br.Succeeded != 3 || br.Failed != 1 {
		t.Fatalf("batch count=%d ok=%d failed=%d, want 4/3/1: %s", br.Count, br.Succeeded, br.Failed, raw)
	}
	for i, item := range br.Results {
		if item.Index != i {
			t.Errorf("result %d carries index %d; merge lost client ordering", i, item.Index)
		}
		if i == 2 {
			if item.Error == nil || item.Error.Class != "invalid" {
				t.Errorf("garbage item: error %+v, want class invalid", item.Error)
			}
		} else if item.Error != nil {
			t.Errorf("item %d failed: %+v", i, item.Error)
		}
	}

	// Re-post: every good item must now be a cache hit on its own shard,
	// proving a batch item and a standalone solve share one cache entry.
	resp2, err := http.Post(base+"/solve/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var br2 server.BatchResponse
	if err := json.Unmarshal(raw2, &br2); err != nil {
		t.Fatal(err)
	}
	for i, item := range br2.Results {
		if item.Result != nil && !item.Result.Cached {
			t.Errorf("repeat batch item %d missed the cache", i)
		}
	}

	// An unsplittable body is one replica's authoritative 400.
	resp3, err := http.Post(base+"/solve/batch", "application/json", strings.NewReader(`[1, 2]`))
	if err != nil {
		t.Fatal(err)
	}
	raw3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("unsplittable batch: status %d: %s", resp3.StatusCode, raw3)
	}
}

// TestRouterUnroutable: when every permitted replica refuses
// connections, the router's synthesized 503 carries Retry-After and the
// "unroutable" class — the one 5xx the router is allowed to own.
func TestRouterUnroutable(t *testing.T) {
	freshObs(t)
	// Two listeners grabbed and immediately closed: real addresses,
	// nothing listening.
	var deadAddrs []string
	for i := 0; i < 2; i++ {
		ts := httptest.NewServer(http.NotFoundHandler())
		deadAddrs = append(deadAddrs, strings.TrimPrefix(ts.URL, "http://"))
		ts.Close()
	}
	rt, err := New(Config{
		Replicas:      deadAddrs,
		FailThreshold: 2,
		RetryBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/solve", "text/plain", strings.NewReader(labNet(0)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("unroutable 503 missing Retry-After")
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil || er.Class != "unroutable" {
		t.Fatalf("class %q (err %v), want unroutable", er.Class, err)
	}
	rt.attemptWG.Wait()
	snap := obs.Default().Snapshot()
	if got := snap.Counters["fleet.attempt.connerr"]; got != 2 {
		t.Errorf("attempt.connerr = %d, want 2 (both replicas tried)", got)
	}
	if snap.Counters["fleet.attempt.launched"] != snap.Counters["fleet.attempt.settled"] {
		t.Errorf("attempt ledger off: launched %d, settled %d",
			snap.Counters["fleet.attempt.launched"], snap.Counters["fleet.attempt.settled"])
	}
}

// TestNewRejectsBadConfig covers the router's config validation.
func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted an empty replica list")
	}
	if _, err := New(Config{Replicas: []string{"a:1", "a:1"}}); err == nil {
		t.Error("New accepted a duplicate replica")
	}
	if _, err := New(Config{Replicas: []string{"a:1"}, Routing: "bogus"}); err == nil {
		t.Error("New accepted unknown routing mode")
	}
}
