package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"buffopt/internal/faultinject"
	"buffopt/internal/server"
)

// Lab is an in-process fleet: N real bufferd replicas on loopback
// listeners behind one Router, each replica wrapped in a chaos valve
// that can partition (blackhole) or kill (abruptly close) it. The soak
// test and cmd/loadgen's self-contained mode both stand their fleets up
// with it. Everything runs over real TCP — partitions hang real
// connections and kills reset them — so the router is exercised against
// the same failure signatures production would show it, not mocks.
type Lab struct {
	Router   *Router
	Replicas []*LabReplica

	cancel     context.CancelFunc
	routerDone chan error
}

// LabConfig configures StartLab.
type LabConfig struct {
	// Replicas is the fleet size. Default 3.
	Replicas int
	// Server is the per-replica config template (Addr and Injector are
	// ignored; every replica listens on its own loopback port).
	Server server.Config
	// Injectors optionally assigns each replica its own request-level
	// fault injector; shorter-than-fleet slices leave the tail clean.
	// Replica-level faults (partition, kill) do not belong here — they
	// are drawn by the chaos driver and applied through the LabReplica
	// methods.
	Injectors []*faultinject.Injector
	// Router is the router config template; Replicas and Addr are filled
	// in (the router listens on a loopback port).
	Router Config
	// SnapshotDir, when non-empty, gives each replica a cache snapshot
	// file ("replica<i>.snap" inside it), so a Restart warm-starts from
	// disk — and the restart chaos driver can corrupt or truncate the
	// file in between to exercise the rejection path.
	SnapshotDir string
	// PeerFill wires each replica's Self/Peers to the lab's replica set,
	// enabling peer read-through fill on local cache misses.
	PeerFill bool
}

// StartLab stands the fleet up: replicas first, then the router probing
// them. It returns once the router's listener is accepting. Shut the
// fleet down with Close.
func StartLab(cfg LabConfig) (*Lab, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	lab := &Lab{routerDone: make(chan error, 1)}
	ok := false
	defer func() {
		if !ok {
			lab.Close()
		}
	}()

	// Open every listener before building any server: peer read-through
	// fill needs each replica's Self/Peers names, and a name here is the
	// bound address.
	lns := make([]net.Listener, 0, cfg.Replicas)
	names := make([]string, 0, cfg.Replicas)
	defer func() {
		if !ok {
			for i := len(lab.Replicas); i < len(lns); i++ {
				lns[i].Close()
			}
		}
	}()
	for i := 0; i < cfg.Replicas; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("fleet: lab replica listen: %w", err)
		}
		lns = append(lns, ln)
		names = append(names, ln.Addr().String())
	}

	for i := 0; i < cfg.Replicas; i++ {
		scfg := cfg.Server
		scfg.Addr = "" // unused: the lab owns the listener
		if i < len(cfg.Injectors) {
			scfg.Injector = cfg.Injectors[i]
		} else {
			scfg.Injector = nil
		}
		if cfg.SnapshotDir != "" {
			scfg.SnapshotPath = filepath.Join(cfg.SnapshotDir, fmt.Sprintf("replica%d.snap", i))
		}
		if cfg.PeerFill {
			scfg.Self = names[i]
			scfg.Peers = append(append([]string(nil), names[:i]...), names[i+1:]...)
		}
		lab.Replicas = append(lab.Replicas, startLabReplica(lns[i], scfg))
	}

	rcfg := cfg.Router
	rcfg.Addr = "127.0.0.1:0"
	rcfg.Replicas = nil
	for _, rep := range lab.Replicas {
		rcfg.Replicas = append(rcfg.Replicas, rep.Name)
	}
	router, err := New(rcfg)
	if err != nil {
		return nil, err
	}
	lab.Router = router
	ctx, cancel := context.WithCancel(context.Background())
	lab.cancel = cancel
	go func() { lab.routerDone <- router.Run(ctx) }()
	select {
	case <-router.Ready():
	case err := <-lab.routerDone:
		lab.routerDone <- err
		return nil, fmt.Errorf("fleet: lab router failed to start: %w", err)
	}
	ok = true
	return lab, nil
}

// Close tears the lab down: the router drains (waiting out its attempt
// ledger), then every replica's listener closes. Healed and un-killed
// replicas shut down gracefully; partitioned valves are opened first so
// no handler goroutine stays parked. Returns the router's Run error.
func (lab *Lab) Close() error {
	var err error
	if lab.cancel != nil {
		lab.cancel()
		err = <-lab.routerDone
	}
	for _, rep := range lab.Replicas {
		rep.shutdown()
	}
	return err
}

// LabReplica is one bufferd instance under the lab's control.
type LabReplica struct {
	// Name is the replica's host:port — its rendezvous identity.
	Name string
	// Server is the underlying bufferd instance (Inflight, BeginDrain).
	Server *server.Server

	cfg    server.Config // retained so Restart rebuilds an identical server
	valve  *valve
	hs     *http.Server
	done   chan error
	killed atomic.Bool
}

func startLabReplica(ln net.Listener, cfg server.Config) *LabReplica {
	rep := &LabReplica{
		Name: ln.Addr().String(),
		cfg:  cfg,
	}
	rep.boot(ln)
	return rep
}

// boot builds a fresh server (warm-starting from the snapshot path, if
// configured) and starts serving it through a fresh valve on ln.
func (r *LabReplica) boot(ln net.Listener) {
	r.Server = server.New(r.cfg)
	r.valve = &valve{}
	r.done = make(chan error, 1)
	r.hs = &http.Server{Handler: r.valve.wrap(r.Server.Handler())}
	hs, done := r.hs, r.done
	go func() { done <- hs.Serve(ln) }()
}

// Partition blackholes the replica: every connection that reaches it —
// probes and solves alike — hangs until the caller's deadline, the
// signature of a network partition (as opposed to a dead process, which
// refuses connections instantly). Idempotent.
func (r *LabReplica) Partition() { r.valve.close() }

// Heal lifts a partition; requests parked at the valve proceed (the
// connection was slow, not lost). Idempotent.
func (r *LabReplica) Heal() { r.valve.open() }

// Partitioned reports whether the valve is currently closed.
func (r *LabReplica) Partitioned() bool { return r.valve.closed() }

// Kill abruptly terminates the replica: the listener and every active
// connection close immediately, mid-response — the process-exit
// signature. The in-flight solves whose connections die are exactly the
// accounting tolerance a kill introduces; sample Server.Inflight()
// immediately before calling. Idempotent; a killed replica never
// returns.
func (r *LabReplica) Kill() {
	if r.killed.Swap(true) {
		return
	}
	r.valve.open() // nothing stays parked behind a dead listener
	r.hs.Close()
	<-r.done
}

// Killed reports whether Kill has run.
func (r *LabReplica) Killed() bool { return r.killed.Load() }

// SnapshotPath returns the replica's cache snapshot file ("" when
// LabConfig.SnapshotDir was unset) — the file a restart chaos driver
// tampers with between Kill and re-listen.
func (r *LabReplica) SnapshotPath() string { return r.cfg.SnapshotPath }

// Restart applies the restart fault: Kill, then optionally tamper with
// the on-disk snapshot (tamper receives SnapshotPath; nil leaves the file
// alone), then bind a fresh server to the same address — same rendezvous
// identity, state only as durable as the snapshot survived. The rebind
// retries briefly: the dead listener's port frees as its close completes.
// Not safe for concurrent use with the other chaos methods; the chaos
// driver is single-threaded.
func (r *LabReplica) Restart(tamper func(snapshotPath string) error) error {
	r.Kill()
	if tamper != nil {
		if err := tamper(r.cfg.SnapshotPath); err != nil {
			return fmt.Errorf("fleet: lab replica %s snapshot tamper: %w", r.Name, err)
		}
	}
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", r.Name); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("fleet: lab replica re-listen %s: %w", r.Name, err)
	}
	r.boot(ln)
	r.killed.Store(false)
	return nil
}

// Drain flips the replica to draining: /readyz answers 503 "draining",
// queued work is shed, in-flight work completes. The connection path
// stays up, which is precisely what distinguishes a drain from a kill
// to the router.
func (r *LabReplica) Drain() { r.Server.BeginDrain() }

// shutdown closes the replica at lab teardown.
func (r *LabReplica) shutdown() {
	if r.killed.Load() {
		return
	}
	r.valve.open()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := r.hs.Shutdown(ctx); err != nil {
		r.hs.Close()
	}
	cancel()
	err := <-r.done
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		// Teardown best-effort; the listener is gone either way.
		_ = err
	}
}

// valve is the partition switch: closed, it parks every request before
// the replica's handler until the client gives up or the valve opens.
// Parking — rather than refusing — is what makes the fault a partition:
// the router's dial succeeds, bytes go nowhere, and only its probe
// timeout and hedge timer can save the request.
type valve struct {
	mu      sync.Mutex
	blocked chan struct{} // non-nil while partitioned
}

func (v *valve) close() {
	v.mu.Lock()
	if v.blocked == nil {
		v.blocked = make(chan struct{})
	}
	v.mu.Unlock()
}

func (v *valve) open() {
	v.mu.Lock()
	if v.blocked != nil {
		close(v.blocked)
		v.blocked = nil
	}
	v.mu.Unlock()
}

func (v *valve) closed() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.blocked != nil
}

func (v *valve) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		v.mu.Lock()
		ch := v.blocked
		v.mu.Unlock()
		if ch != nil {
			select {
			case <-ch:
				// Healed: the request was delayed, not lost.
			case <-r.Context().Done():
				return
			}
		}
		h.ServeHTTP(w, r)
	})
}
