// Package fleet is the sharded front end over a set of bufferd
// replicas: a stateless router (cmd/bufferfleet) that rendezvous-hashes
// each request's content-addressed affinity key over the replica set and
// forwards the versioned solve envelope to the owning shard.
//
// The affinity key is the replicas' own cache key (server.Keyer reuses
// the exact decode + cacheKey path), so hash routing makes the
// per-replica LRU caches compose into a fleet-wide cache with no
// coordination: every repeat of a problem lands on the shard that
// already holds its answer. Everything else in the package exists to
// keep that property from becoming a single point of failure per shard:
//
//   - Health: each replica is probed on /readyz and watched passively on
//     the request path; consecutive connection failures demote it to
//     down, a "draining" readyz moves its keyspace to the next replica
//     in each key's rendezvous order while in-flight work completes.
//   - Hedging: a request stuck past its primary's recent latency
//     quantile launches a second attempt on the key's next replica; the
//     first response wins. This is what bounds the latency cost of a
//     partition that blackholes connections rather than refusing them.
//   - Retry and failover: connection errors retry on the key's next
//     replica with bounded backoff; admission sheds (429/503 with
//     Retry-After) back off the replica's keyspace instead of hammering
//     its queue. Solver responses — including 4xx/5xx — are forwarded
//     verbatim and never retried: a deterministic solver failure would
//     fail identically everywhere, and retrying injected faults would
//     break the chaos harness's exactly-once accounting.
//
// Attempts run under context.WithoutCancel plus a per-attempt timeout:
// once work is handed to a replica it completes there even if the router
// abandons the attempt (a losing hedge), so replica-side admission and
// fault accounting stay exact — an attempt is never half-observed.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"buffopt/internal/obs"
	"buffopt/internal/server"
)

// Routing selects how the router picks a replica order per request.
const (
	// RoutingHash is production routing: rendezvous hash order over the
	// affinity key, cache-affine by construction.
	RoutingHash = "hash"
	// RoutingRandom ignores the key and shuffles the replicas per
	// request. It exists as the control arm: cmd/loadgen runs both modes
	// and reports the cache-hit-rate gap, which is the measured value of
	// affinity routing.
	RoutingRandom = "random"
)

// Config tunes the router. The zero value (plus a replica list) serves
// on :8081 with sensible bounds; see withDefaults.
type Config struct {
	// Addr is the listen address. Default ":8081".
	Addr string
	// Replicas lists the bufferd instances as host:port. Required, and
	// order-insensitive: the rendezvous hash depends only on the set.
	Replicas []string
	// Decode carries the decode-relevant server config (Limits,
	// DefaultTimeout, MaxTimeout, MaxCands) for the affinity Keyer. It
	// should match the replicas' config; a mismatch only weakens cache
	// affinity, never correctness.
	Decode server.Config
	// ProbeInterval spaces the per-replica /readyz probes. Default 1 s.
	// Each wait is independently jittered ±20% so a mass restart cannot
	// synchronize the fleet's probe bursts against recovering replicas.
	ProbeInterval time.Duration
	// HealthDwell is the minimum time a replica's healthy/suspect state
	// must be held before flipping to the other: flap damping for a
	// replica oscillating ready/unready under intermittent probe
	// failures. Demotion to down (the failure threshold), resurrection
	// from down or draining, and entering draining are never damped.
	// Default 500 ms.
	HealthDwell time.Duration
	// ProbeTimeout bounds one probe round-trip. Default 500 ms.
	ProbeTimeout time.Duration
	// AttemptTimeout bounds one forwarded attempt end to end. It must
	// comfortably exceed the replicas' solve timeout; it exists so a
	// blackholed connection (partition) cannot pin an attempt goroutine
	// forever. Default 30 s.
	AttemptTimeout time.Duration
	// MaxAttempts caps how many distinct replicas one request may try
	// (first attempt + retries/hedges). Default 3, clamped to the
	// replica count.
	MaxAttempts int
	// HedgeQuantile is the latency quantile of the primary's recent
	// window past which a hedge launches. Default 0.9.
	HedgeQuantile float64
	// HedgeMin floors the hedge delay and is the cold-start delay while
	// a replica has too little latency history. Default 20 ms.
	HedgeMin time.Duration
	// FailThreshold is the consecutive-connection-failure count that
	// marks a replica down. Default 3.
	FailThreshold int
	// RetryBackoff is the base delay before the second failover after
	// connection errors (the first failover is immediate; later ones
	// double, capped at 1 s). Default 25 ms.
	RetryBackoff time.Duration
	// RetryAfter is the hint on router-synthesized 503s (no replica
	// reachable). Default 1 s.
	RetryAfter time.Duration
	// MaxBytes caps request bodies. Default 8 MiB, matching bufferd.
	MaxBytes int64
	// DrainTimeout bounds the router's own shutdown drain. Default 15 s.
	DrainTimeout time.Duration
	// Routing is RoutingHash (default) or RoutingRandom.
	Routing string
	// Seed seeds the RoutingRandom shuffle, so load experiments are
	// reproducible. Ignored under RoutingHash.
	Seed int64
	// Transport overrides the upstream HTTP transport (tests). Nil uses
	// a pooled http.Transport.
	Transport http.RoundTripper
	// TraceSpans bounds the router's span-collector ring. Default 4096.
	TraceSpans int
	// TraceFlightTraces bounds how many anomalous traces the router's
	// flight recorder pins at once. Default 256.
	TraceFlightTraces int
	// TraceLatency is the request latency past which a trace is pinned
	// in the flight recorder. Default 1 s.
	TraceLatency time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8081"
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 500 * time.Millisecond
	}
	if c.HealthDwell <= 0 {
		c.HealthDwell = 500 * time.Millisecond
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.MaxAttempts > len(c.Replicas) {
		c.MaxAttempts = len(c.Replicas)
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile > 1 {
		c.HedgeQuantile = 0.9
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 20 * time.Millisecond
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 8 << 20
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 15 * time.Second
	}
	if c.Routing == "" {
		c.Routing = RoutingHash
	}
	return c
}

// Router is one fleet front end. Create with New, run with Run (or
// embed Handler under an existing server). A Router holds no per-key
// state — health and latency are per-replica — so any number of routers
// can front the same fleet and agree on every key's placement.
type Router struct {
	cfg      Config
	keyer    *server.Keyer
	replicas []*replica
	names    []string
	client   *http.Client

	rngMu sync.Mutex
	rng   *rand.Rand // RoutingRandom shuffle

	attemptWG sync.WaitGroup // in-flight attempt goroutines, incl. abandoned hedges
	draining  atomic.Bool

	// tracer collects the router's own spans; /debug/trace assembles the
	// cross-process view by merging it with the replicas' collectors.
	tracer *obs.Collector

	ready chan struct{}
	addr  atomic.Value // string

	handler http.Handler
}

// New validates cfg and builds a Router.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("fleet: no replicas configured")
	}
	seen := map[string]bool{}
	for _, r := range cfg.Replicas {
		if r == "" {
			return nil, errors.New("fleet: empty replica address")
		}
		if seen[r] {
			return nil, fmt.Errorf("fleet: replica %s listed twice", r)
		}
		seen[r] = true
	}
	cfg = cfg.withDefaults()
	if cfg.Routing != RoutingHash && cfg.Routing != RoutingRandom {
		return nil, fmt.Errorf("fleet: unknown routing %q (want %s or %s)", cfg.Routing, RoutingHash, RoutingRandom)
	}
	rt := &Router{
		cfg:   cfg,
		keyer: server.NewKeyer(cfg.Decode),
		rng:   rand.New(rand.NewPCG(uint64(cfg.Seed), uint64(cfg.Seed)^0x9e3779b97f4a7c15)),
		ready: make(chan struct{}),
		tracer: obs.NewCollector(obs.CollectorConfig{
			RingSpans:        cfg.TraceSpans,
			FlightTraces:     cfg.TraceFlightTraces,
			LatencyThreshold: cfg.TraceLatency,
		}),
	}
	for _, name := range cfg.Replicas {
		rt.replicas = append(rt.replicas, newReplica(name, cfg.HealthDwell))
		rt.names = append(rt.names, name)
	}
	transport := cfg.Transport
	if transport == nil {
		transport = &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     30 * time.Second,
		}
	}
	// No client-level timeout: each attempt and probe carries its own
	// context deadline, which is the bound that matters.
	rt.client = &http.Client{Transport: transport}

	mux := http.NewServeMux()
	mux.HandleFunc("/solve", rt.handleSolve)
	mux.HandleFunc("/solve/batch", rt.handleBatch)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/readyz", rt.handleReadyz)
	mux.HandleFunc("/fleet/status", rt.handleStatus)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/metrics/prom", rt.handleMetricsProm)
	mux.HandleFunc("/debug/trace/", rt.handleTrace)
	mux.HandleFunc("/debug/flightrecorder", rt.tracer.ServeFlightRecorder)
	rt.handler = mux
	return rt, nil
}

// Handler returns the router's HTTP handler (tests and embedding).
func (rt *Router) Handler() http.Handler { return rt.handler }

// Tracer returns the router's span collector (tests).
func (rt *Router) Tracer() *obs.Collector { return rt.tracer }

// Addr returns the bound listen address once Run has the listener up.
func (rt *Router) Addr() string {
	a, _ := rt.addr.Load().(string)
	return a
}

// Ready is closed once the listener is accepting connections.
func (rt *Router) Ready() <-chan struct{} { return rt.ready }

// Run listens on cfg.Addr, starts the health-probe loops, and serves
// until ctx is canceled; then it drains its own listener, stops the
// probes, and waits for every in-flight attempt — including abandoned
// hedges, which are bounded by AttemptTimeout — so that when Run
// returns, the attempt ledger (launched == settled) has settled and no
// goroutine still references the upstream client.
func (rt *Router) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", rt.cfg.Addr)
	if err != nil {
		return fmt.Errorf("fleet: listen %s: %w", rt.cfg.Addr, err)
	}
	rt.addr.Store(ln.Addr().String())
	close(rt.ready)

	pctx, pcancel := context.WithCancel(context.Background())
	var probeWG sync.WaitGroup
	for _, rep := range rt.replicas {
		probeWG.Add(1)
		go func(rep *replica) {
			defer probeWG.Done()
			rt.probeLoop(pctx, rep)
		}(rep)
	}

	srv := &http.Server{Handler: rt.handler, ReadHeaderTimeout: 10 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	var runErr error
	select {
	case err := <-serveErr:
		runErr = fmt.Errorf("fleet: serve: %w", err)
	case <-ctx.Done():
		rt.draining.Store(true)
		obs.Inc("fleet.drain.begun")
		dctx, cancel := context.WithTimeout(context.Background(), rt.cfg.DrainTimeout)
		if err := srv.Shutdown(dctx); err != nil {
			srv.Close()
			<-serveErr
			runErr = fmt.Errorf("fleet: drain timed out after %v: %w", rt.cfg.DrainTimeout, err)
		} else {
			<-serveErr
		}
		cancel()
	}
	pcancel()
	probeWG.Wait()
	rt.attemptWG.Wait()
	if runErr == nil {
		obs.Inc("fleet.drain.completed")
	}
	return runErr
}

// ----------------------------------------------------------------- probes

func (rt *Router) probeLoop(ctx context.Context, rep *replica) {
	// Each wait is drawn fresh from [0.8, 1.2]×ProbeInterval, seeded per
	// replica: after a fleet-wide restart every router's probe loops
	// desynchronize within a few periods instead of hammering recovering
	// replicas in lockstep. Deterministic seeding keeps soak timing
	// reproducible.
	rng := rand.New(rand.NewPCG(server.RendezvousScore(rep.name, "probe-jitter"), 0x9e3779b97f4a7c15))
	rt.probeOnce(ctx, rep)
	t := time.NewTimer(jitterInterval(rt.cfg.ProbeInterval, rng))
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.probeOnce(ctx, rep)
			t.Reset(jitterInterval(rt.cfg.ProbeInterval, rng))
		}
	}
}

// jitterInterval returns base scaled by a uniform factor in [0.8, 1.2].
func jitterInterval(base time.Duration, rng *rand.Rand) time.Duration {
	return time.Duration(float64(base) * (0.8 + 0.4*rng.Float64()))
}

// probeOnce asks one replica's /readyz and folds the answer into its
// health: 200 → healthy (the replica's own word outrides everything),
// 503 "draining" → draining, 503 otherwise (overloaded) → alive but
// backed off per its Retry-After, no answer → one more strike toward
// down. A partitioned replica's probe hangs until ProbeTimeout and
// counts as a strike — the blackhole and the dead process converge to
// the same state at the same rate.
func (rt *Router) probeOnce(ctx context.Context, rep *replica) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, rep.base+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return // shutdown, not evidence about the replica
		}
		rep.noteConnError(rt.cfg.FailThreshold)
		obs.Inc("fleet.probe.fail")
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	obs.Inc("fleet.probe.ok")
	switch {
	case resp.StatusCode == http.StatusOK:
		rep.noteReady()
	case resp.StatusCode == http.StatusServiceUnavailable && readyzReason(body) == "draining":
		rep.noteDraining()
	default:
		// Alive but not ready (overloaded queue): honor its Retry-After
		// as keyspace backpressure, same as a request-path shed.
		rep.fails.Store(0)
		rep.noteShed(retryAfterDuration(resp.Header, rt.cfg.RetryAfter), time.Now())
	}
}

func readyzReason(body []byte) string {
	var r struct {
		Reason string `json:"reason"`
	}
	json.Unmarshal(body, &r)
	return r.Reason
}

func retryAfterDuration(h http.Header, fallback time.Duration) time.Duration {
	if s, err := strconv.ParseInt(h.Get("Retry-After"), 10, 64); err == nil && s > 0 {
		return time.Duration(s) * time.Second
	}
	return fallback
}

// ------------------------------------------------------------------ rank

// rank returns the replicas this request may try, in preference order:
// the key's rendezvous order (or a seeded shuffle under RoutingRandom),
// stably partitioned into tiers — routable now first, then backed-off
// or draining (alive, answering, just not preferred), then down as the
// last resort. Within each tier the hash order is preserved, so the
// failover target for a key is deterministic given the fleet's health.
func (rt *Router) rank(key string) []*replica {
	idx := rendezvousRank(key, rt.names)
	if rt.cfg.Routing == RoutingRandom {
		rt.rngMu.Lock()
		rt.rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		rt.rngMu.Unlock()
	}
	now := time.Now()
	ordered := make([]*replica, 0, len(idx))
	var deferred, last []*replica
	for _, i := range idx {
		rep := rt.replicas[i]
		switch {
		case rep.health() == down:
			last = append(last, rep)
		case rep.health() == draining || rep.inBackoff(now):
			deferred = append(deferred, rep)
		default:
			ordered = append(ordered, rep)
		}
	}
	ordered = append(ordered, deferred...)
	return append(ordered, last...)
}

// ---------------------------------------------------------------- dispatch

// attemptResult is one upstream round-trip's outcome.
type attemptResult struct {
	replica     *replica
	hedged      bool
	err         error // connection-level failure; everything else nil
	status      int
	contentType string
	retryAfter  string
	body        []byte
	shed        bool // admission-control rejection (retryable elsewhere)
	canceled    bool // synthesized: the client gave up first
}

// dispatch forwards one request body to the key's replicas: primary
// first, hedging to the next in rank past the primary's latency
// quantile, failing over on connection errors (with bounded backoff)
// and on admission sheds. The first genuine response — success or
// solver error alike — wins and is forwarded verbatim. Returns nil only
// when every permitted attempt failed at the connection level.
func (rt *Router) dispatch(ctx context.Context, key, path, rawQuery, contentType string, body []byte) *attemptResult {
	// One dispatch span per routed unit (a /solve request, or one shard
	// group of a batch). Hedge attributes live here — not on the request
	// span — so a batch whose groups hedge independently still maps each
	// hedge to exactly one span, matching the fleet.hedge.* counters.
	ctx, span := obs.Span(ctx, "fleet.dispatch")
	defer span.End()
	order := rt.rank(key)
	max := rt.cfg.MaxAttempts
	if max > len(order) {
		max = len(order)
	}

	// Buffered to the launch cap: an abandoned attempt's send never
	// blocks, so its goroutine always runs to completion and settles its
	// ledger entry.
	results := make(chan *attemptResult, max)
	next, outstanding := 0, 0
	launch := func(hedged bool) bool {
		if next >= max {
			return false
		}
		rep := order[next]
		next++
		outstanding++
		rt.attemptWG.Add(1)
		go func() {
			defer rt.attemptWG.Done()
			results <- rt.attempt(ctx, rep, path, rawQuery, contentType, body, hedged)
		}()
		return true
	}
	launch(false)

	hedge := time.NewTimer(rt.hedgeDelay(order[0]))
	defer hedge.Stop()
	hedgeArmed := true

	var relaunch *time.Timer
	defer func() {
		if relaunch != nil {
			relaunch.Stop()
		}
	}()
	relaunchC := func() <-chan time.Time {
		if relaunch == nil {
			return nil
		}
		return relaunch.C
	}

	connFails := 0
	var shedRes *attemptResult
	exhausted := func() *attemptResult {
		if shedRes != nil {
			return shedRes
		}
		return nil
	}

	for {
		select {
		case res := <-results:
			outstanding--
			switch {
			case res.err != nil:
				connFails++
				if next < max && relaunch == nil {
					// First failover is immediate; later ones back off
					// (doubling, capped) so a flapping fleet is not
					// carpet-bombed with retries.
					if d := rt.backoffDelay(connFails); d > 0 {
						relaunch = time.NewTimer(d)
					} else {
						launch(false)
					}
				}
			case res.shed:
				if shedRes == nil {
					shedRes = res
				}
				launch(false)
			default:
				if res.hedged {
					obs.Inc("fleet.hedge.won")
					span.SetAttr("hedge", "won")
				}
				return res
			}
			if outstanding == 0 && relaunch == nil && next >= max {
				return exhausted()
			}
		case <-hedge.C:
			if hedgeArmed {
				hedgeArmed = false
				if launch(true) {
					obs.Inc("fleet.hedge.launched")
					span.SetAttr("hedge", "launched")
				}
			}
		case <-relaunchC():
			relaunch.Stop()
			relaunch = nil
			launch(false)
			if outstanding == 0 && next >= max {
				return exhausted()
			}
		case <-ctx.Done():
			// The client hung up; in-flight attempts still settle on
			// their own timeouts (attemptWG tracks them).
			return &attemptResult{canceled: true}
		}
	}
}

// backoffDelay prices the nth consecutive connection-failure failover:
// 0 for the first (fail fast to the next replica), then RetryBackoff
// doubling per failure, capped at 1 s.
func (rt *Router) backoffDelay(connFails int) time.Duration {
	if connFails <= 1 {
		return 0
	}
	d := rt.cfg.RetryBackoff << (connFails - 2)
	if d > time.Second {
		d = time.Second
	}
	return d
}

// hedgeDelay prices the hedge timer from the primary's recent latency
// window: its HedgeQuantile latency, floored at HedgeMin (also the
// cold-start value) and capped at half the attempt timeout so a hedge
// still has time to finish.
func (rt *Router) hedgeDelay(primary *replica) time.Duration {
	d := time.Duration(primary.lat.quantile(rt.cfg.HedgeQuantile))
	if d < rt.cfg.HedgeMin {
		d = rt.cfg.HedgeMin
	}
	if cap := rt.cfg.AttemptTimeout / 2; d > cap {
		d = cap
	}
	return d
}

// attempt performs one upstream round-trip. The context is detached
// from the client (WithoutCancel) and bounded by AttemptTimeout: a
// replica that admitted the work completes it even if this attempt
// loses a hedge race, so replica-side accounting stays exact; a replica
// that blackholes the connection (partition) costs at most the timeout.
func (rt *Router) attempt(ctx context.Context, rep *replica, path, rawQuery, contentType string, body []byte, hedged bool) *attemptResult {
	obs.Inc("fleet.attempt.launched")
	defer obs.Inc("fleet.attempt.settled")

	// WithoutCancel keeps the context's values — including the dispatch
	// span — so the attempt span links into the request's trace and the
	// outgoing traceparent header names it as the replica's parent.
	actx, cancel := context.WithTimeout(context.WithoutCancel(ctx), rt.cfg.AttemptTimeout)
	defer cancel()
	actx, span := obs.Span(actx, "fleet.attempt")
	span.SetAttr("replica", rep.name)
	if hedged {
		span.SetAttr("hedged", "true")
	}
	res := rt.attemptOnce(actx, rep, path, rawQuery, contentType, body, hedged)
	switch {
	case res.err != nil:
		span.Fail(res.err)
	default:
		span.SetAttr("status", strconv.Itoa(res.status))
		if res.shed {
			span.SetAttr("shed", "replica")
		}
		span.End()
	}
	return res
}

// attemptOnce is the attempt's round-trip body, run under the attempt
// span's detached context.
func (rt *Router) attemptOnce(actx context.Context, rep *replica, path, rawQuery, contentType string, body []byte, hedged bool) *attemptResult {
	url := rep.base + path
	if rawQuery != "" {
		url += "?" + rawQuery
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return &attemptResult{replica: rep, hedged: hedged, err: err}
	}
	req.Header.Set("Content-Type", contentType)
	if tc := obs.TraceContextFrom(actx); !tc.TraceID.IsZero() {
		req.Header.Set("traceparent", obs.FormatTraceparent(tc))
	}

	start := time.Now()
	resp, err := rt.client.Do(req)
	if err != nil {
		rep.noteConnError(rt.cfg.FailThreshold)
		obs.Inc("fleet.attempt.connerr")
		return &attemptResult{replica: rep, hedged: hedged, err: err}
	}
	respBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if err != nil {
		// The connection died mid-body: same failure class as a dial
		// error, just later.
		rep.noteConnError(rt.cfg.FailThreshold)
		obs.Inc("fleet.attempt.connerr")
		return &attemptResult{replica: rep, hedged: hedged, err: err}
	}

	res := &attemptResult{
		replica:     rep,
		hedged:      hedged,
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        respBody,
	}
	if isShed(resp.StatusCode, respBody) {
		res.shed = true
		rep.noteShed(retryAfterDuration(resp.Header, rt.cfg.RetryAfter), time.Now())
		obs.Inc("fleet.attempt.shed")
		return res
	}
	rep.noteSuccess(elapsed)
	if resp.StatusCode == http.StatusOK {
		obs.Inc("fleet.attempt.ok")
	} else {
		obs.Inc("fleet.attempt.error")
	}
	return res
}

// isShed recognizes a replica's admission-control rejection: 429
// always, 503 only when the body's error class says "shed" (a 503 can
// also be a solver-level verdict, which must be forwarded, not
// retried). Sheds are the one response class that is safe to retry
// elsewhere by construction — the replica did no work.
func isShed(status int, body []byte) bool {
	if status == http.StatusTooManyRequests {
		return true
	}
	if status != http.StatusServiceUnavailable {
		return false
	}
	var e struct {
		Class string `json:"class"`
	}
	json.Unmarshal(body, &e)
	return e.Class == "shed"
}

// ---------------------------------------------------------------- handlers

// handleSolve is POST /solve on the router: key the body, dispatch it
// along the key's replica order, forward the winning response verbatim.
func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeRouterError(w, http.StatusMethodNotAllowed, "invalid", "POST a net to /solve", 0)
		return
	}
	obs.Inc("fleet.requests")
	// The fleet edge is where a trace is born (or adopted, when the
	// client sent its own traceparent); every replica attempt inherits it.
	ctx, span := rt.tracer.StartTrace(r.Context(), "fleet.request", obs.TraceParentFrom(r.Header))
	defer span.End()
	w.Header().Set("X-Trace-Id", span.TraceID().String())
	body, err := rt.readBody(r)
	if err != nil {
		obs.Inc("fleet.request.outcome.invalid")
		span.SetAttr("outcome", "invalid")
		writeRouterError(w, http.StatusRequestEntityTooLarge, "invalid", err.Error(), 0)
		return
	}
	ct := r.Header.Get("Content-Type")
	key := rt.keyer.SolveKey(ct, r.URL.Query(), body)
	start := time.Now()
	res := rt.dispatch(ctx, key, "/solve", r.URL.RawQuery, ct, body)
	obs.ObserveDurationExemplar("fleet.request.duration", time.Since(start).Nanoseconds(), span.TraceID())
	rt.forward(ctx, w, res, "fleet.request")
}

// forward writes an attemptResult to the client, synthesizing the
// router's own 503 when no replica could be reached, and counts the
// request's terminal outcome under ns exactly once (mirrored as an
// outcome/shed attribute on ctx's span).
func (rt *Router) forward(ctx context.Context, w http.ResponseWriter, res *attemptResult, ns string) {
	switch {
	case res != nil && res.canceled:
		obs.Inc(ns + ".outcome.client_gone")
		obs.Annotate(ctx, "outcome", "client_gone")
		writeRouterError(w, http.StatusServiceUnavailable, "canceled", "client went away before a replica answered", 0)
	case res == nil:
		obs.Inc(ns + ".outcome.unroutable")
		obs.Annotate(ctx, "outcome", "unroutable")
		ra := int64(rt.cfg.RetryAfter / time.Second)
		if ra < 1 {
			ra = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(ra, 10))
		writeRouterError(w, http.StatusServiceUnavailable, "unroutable", "no replica reachable for this request", ra)
	default:
		switch {
		case res.shed:
			obs.Inc(ns + ".outcome.shed")
			obs.Annotate(ctx, "outcome", "shed")
			obs.Annotate(ctx, "shed", "replica")
		case res.status == http.StatusOK:
			obs.Inc(ns + ".outcome.ok")
			obs.Annotate(ctx, "outcome", "ok")
		default:
			obs.Inc(ns + ".outcome.error")
			obs.Annotate(ctx, "outcome", "error")
		}
		if res.contentType != "" {
			w.Header().Set("Content-Type", res.contentType)
		}
		if res.retryAfter != "" {
			w.Header().Set("Retry-After", res.retryAfter)
		}
		w.WriteHeader(res.status)
		w.Write(res.body)
	}
}

func (rt *Router) readBody(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, rt.cfg.MaxBytes))
	if err != nil {
		return nil, fmt.Errorf("fleet: request body exceeds %d bytes", rt.cfg.MaxBytes)
	}
	return body, nil
}

// handleHealthz is router liveness.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write([]byte("ok\n"))
}

// handleReadyz is router readiness: ready while at least one replica is
// believed routable and the router itself is not draining.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type readyz struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason,omitempty"`
	}
	routable := 0
	for _, rep := range rt.replicas {
		if rep.health() != down {
			routable++
		}
	}
	switch {
	case rt.draining.Load():
		w.Header().Set("Retry-After", "1")
		writeRouterJSON(w, http.StatusServiceUnavailable, readyz{Ready: false, Reason: "draining"})
	case routable == 0:
		w.Header().Set("Retry-After", "1")
		writeRouterJSON(w, http.StatusServiceUnavailable, readyz{Ready: false, Reason: "no routable replicas"})
	default:
		writeRouterJSON(w, http.StatusOK, readyz{Ready: true})
	}
}

// ReplicaStatus is one replica's state in the /fleet/status report.
type ReplicaStatus struct {
	Name    string  `json:"name"`
	State   string  `json:"state"`
	Fails   int32   `json:"consecutive_fails,omitempty"`
	Backoff string  `json:"backoff_remaining,omitempty"`
	P90MS   float64 `json:"p90_ms,omitempty"`
}

// handleStatus is GET /fleet/status: the router's live view of its
// replicas, for operators and the loadgen harness.
func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	out := struct {
		Routing  string          `json:"routing"`
		Replicas []ReplicaStatus `json:"replicas"`
	}{Routing: rt.cfg.Routing}
	for _, rep := range rt.replicas {
		st := ReplicaStatus{Name: rep.name, State: rep.health().String(), Fails: rep.fails.Load()}
		if until := rep.backoffUntil.Load(); until > now.UnixNano() {
			st.Backoff = time.Duration(until - now.UnixNano()).Round(time.Millisecond).String()
		}
		if q := rep.lat.quantile(0.9); q > 0 {
			st.P90MS = float64(q) / 1e6
		}
		out.Replicas = append(out.Replicas, st)
	}
	writeRouterJSON(w, http.StatusOK, out)
}

// handleMetrics dumps the obs registry snapshot, same as bufferd's.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	obs.Default().WriteJSON(w)
}

// handleMetricsProm serves the registry in the OpenMetrics text format
// with trace-ID exemplars, same as bufferd's /metrics/prom.
func (rt *Router) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	obs.Default().WritePrometheus(w)
}

// handleTrace is GET /debug/trace/<id> on the router: the assembled
// cross-process view of one trace. The router contributes its own spans
// and then asks every replica for the same trace ID, merging the answers
// (deduplicated by span ID, each span tagged with the process it came
// from) into one tree — the replica root spans carry the router attempt
// span as their parent, which is what links the pieces.
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Path
	if i := strings.LastIndexByte(raw, '/'); i >= 0 {
		raw = raw[i+1:]
	}
	id, err := obs.ParseTraceID(raw)
	if err != nil {
		writeRouterError(w, http.StatusBadRequest, "invalid", "bad trace id: want 32 lowercase hex digits", 0)
		return
	}
	out := obs.TraceJSON{TraceID: id.String()}
	seen := map[string]bool{}
	add := func(spans []obs.SpanJSON, origin string) {
		for _, sp := range spans {
			if seen[sp.SpanID] {
				continue
			}
			seen[sp.SpanID] = true
			sp.Origin = origin
			out.Spans = append(out.Spans, sp)
		}
	}
	add(obs.SpansJSON(rt.tracer.Trace(id)), "router")
	for _, rep := range rt.replicas {
		add(rt.fetchReplicaTrace(r.Context(), rep, id), rep.name)
	}
	if len(out.Spans) == 0 {
		writeRouterError(w, http.StatusNotFound, "invalid", "trace not retained anywhere in the fleet", 0)
		return
	}
	sort.Slice(out.Spans, func(i, j int) bool { return out.Spans[i].StartNS < out.Spans[j].StartNS })
	writeRouterJSON(w, http.StatusOK, out)
}

// fetchReplicaTrace asks one replica for its retained spans of a trace.
// Failures (replica down, trace unknown there) contribute nothing — the
// assembled view is best-effort across whatever is reachable.
func (rt *Router) fetchReplicaTrace(ctx context.Context, rep *replica, id obs.TraceID) []obs.SpanJSON {
	tctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(tctx, http.MethodGet, rep.base+"/debug/trace/"+id.String(), nil)
	if err != nil {
		return nil
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var tj obs.TraceJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, rt.cfg.MaxBytes)).Decode(&tj); err != nil {
		return nil
	}
	return tj.Spans
}

func writeRouterJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func writeRouterError(w http.ResponseWriter, status int, class, msg string, retryAfterS int64) {
	writeRouterJSON(w, status, server.ErrorResponse{
		Error:       msg,
		Class:       class,
		Status:      status,
		RetryAfterS: retryAfterS,
	})
}
