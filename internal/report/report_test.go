package report

import (
	"strings"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

var p = noise.SectionV()

func buildNet(t *testing.T) *rctree.Tree {
	t.Helper()
	tr := rctree.New("demo", 250, 40e-12)
	v1, err := tr.AddInternal(tr.Root(), rctree.Wire{R: 160, C: 400e-15, Length: 2e-3}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AddSink(v1, rctree.Wire{R: 240, C: 600e-15, Length: 3e-3}, "far", 25e-15, 0.6e-9, 0.8); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AddSink(v1, rctree.Wire{R: 80, C: 200e-15, Length: 1e-3}, "near", 15e-15, 1.2e-9, 0.8); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestWriteUnbuffered(t *testing.T) {
	tr := buildNet(t)
	var sb strings.Builder
	if err := Write(&sb, tr, nil, Options{Params: p}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"net demo", "2 sinks", "0 buffers", "6.000 mm",
		"VIOLATIONS", "far", "near", "NOISY",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Worst sink first.
	if strings.Index(out, "far") > strings.Index(out, "near") {
		t.Errorf("sinks not sorted by slack:\n%s", out)
	}
}

func TestWriteBufferedWithBufferTable(t *testing.T) {
	tr := buildNet(t)
	work := tr.Clone()
	if _, err := segment.ByLength(work, 0.5e-3); err != nil {
		t.Fatal(err)
	}
	if _, err := work.InsertBelow(work.Root()); err != nil {
		t.Fatal(err)
	}
	res, err := core.BuffOptMinBuffers(work, buffers.DefaultLibrary(0.8), p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Write(&sb, res.Tree, res.Buffers, Options{Params: p, ShowBuffers: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "noise: clean") {
		t.Errorf("buffered report not clean:\n%s", out)
	}
	if !strings.Contains(out, "input noise (V)") {
		t.Errorf("buffer table missing:\n%s", out)
	}
	// Sinks limit.
	var limited strings.Builder
	if err := Write(&limited, res.Tree, res.Buffers, Options{Params: p, Sinks: 1}); err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(limited.String(), "ok"); c > 2 {
		t.Errorf("sink limit ignored:\n%s", limited.String())
	}
}

func TestSummaryAndCompare(t *testing.T) {
	tr := buildNet(t)
	s := Summary(tr, nil, p)
	if !strings.Contains(s, "demo:") || !strings.Contains(s, "violations") {
		t.Errorf("summary = %q", s)
	}

	work := tr.Clone()
	if _, err := segment.ByLength(work, 0.5e-3); err != nil {
		t.Fatal(err)
	}
	res, err := core.BuffOptMinBuffers(work, buffers.DefaultLibrary(0.8), p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Compare(&sb, tr, res.Tree, res.Buffers, p); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"before", "after", "max delay", "violations", "buffers"} {
		if !strings.Contains(out, want) {
			t.Errorf("compare missing %q:\n%s", want, out)
		}
	}
}

func TestWriteRejectsInvalid(t *testing.T) {
	tr := rctree.New("bad", 1, 0) // no sinks
	var sb strings.Builder
	if err := Write(&sb, tr, nil, Options{Params: p}); err == nil {
		t.Errorf("invalid tree accepted")
	}
}

func TestTopology(t *testing.T) {
	tr := buildNet(t)
	work := tr.Clone()
	if _, err := segment.ByLength(work, 1e-3); err != nil {
		t.Fatal(err)
	}
	res, err := core.BuffOptMinBuffers(work, buffers.DefaultLibrary(0.8), p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Topology(&sb, res.Tree, res.Buffers); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"source demo", "sink far", "sink near", "["} {
		if !strings.Contains(out, want) {
			t.Errorf("topology missing %q:\n%s", want, out)
		}
	}
	// One line per node.
	if got := strings.Count(out, "\n"); got != res.Tree.Len() {
		t.Errorf("topology has %d lines for %d nodes", got, res.Tree.Len())
	}
	if err := Topology(&sb, rctree.New("bad", 1, 0), nil); err == nil {
		t.Errorf("invalid tree accepted")
	}
}
