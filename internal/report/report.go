// Package report renders human-readable timing and noise reports for
// (possibly buffered) nets — the signoff-style output a designer reads
// after optimization. It layers on the elmore and noise analyzers and is
// shared by cmd/buffopt and the examples.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"text/tabwriter"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
)

// Options controls report contents.
type Options struct {
	// Params are the estimation-mode noise parameters.
	Params noise.Params
	// Sinks limits the per-sink table to the N worst-slack sinks
	// (0 = all).
	Sinks int
	// ShowBuffers lists every inserted buffer with its location.
	ShowBuffers bool
}

// Write renders a full report for the net under the given assignment.
func Write(w io.Writer, t *rctree.Tree, assign map[rctree.NodeID]buffers.Buffer, opts Options) error {
	if err := t.Validate(); err != nil {
		return err
	}
	timing := elmore.Analyze(t, assign)
	nz := noise.Analyze(t, assign, opts.Params)

	fmt.Fprintf(w, "net %s: %d sinks, %d buffers, %.3f mm, %.1f fF\n",
		t.Node(t.Root()).Name, t.NumSinks(), len(assign),
		t.TotalWireLength()*1e3, t.TotalCap()*1e15)
	fmt.Fprintf(w, "driver: R=%.0f Ω, T=%.1f ps\n", t.DriverResistance, t.DriverDelay*1e12)
	fmt.Fprintf(w, "worst slack %.1f ps (sink %s), max delay %.1f ps\n",
		timing.WorstSlack*1e12, sinkName(t, timing.WorstSink), timing.MaxDelay*1e12)
	if nz.Clean() {
		fmt.Fprintf(w, "noise: clean, worst bound %.3f V\n", nz.MaxNoise)
	} else {
		fmt.Fprintf(w, "noise: %d VIOLATIONS, worst bound %.3f V\n", len(nz.Violations), nz.MaxNoise)
	}

	// Per-sink table, worst slack first.
	sinks := append([]rctree.NodeID(nil), t.Sinks()...)
	sort.Slice(sinks, func(i, j int) bool {
		return timing.SinkSlack[sinks[i]] < timing.SinkSlack[sinks[j]]
	})
	if opts.Sinks > 0 && len(sinks) > opts.Sinks {
		sinks = sinks[:opts.Sinks]
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "sink\tarrival (ps)\tRAT (ps)\tslack (ps)\tnoise (V)\tmargin (V)\tstatus")
	for _, s := range sinks {
		node := t.Node(s)
		status := "ok"
		if timing.SinkSlack[s] < 0 {
			status = "LATE"
		}
		if nz.Noise[s] > node.NoiseMargin {
			if status == "ok" {
				status = "NOISY"
			} else {
				status = "LATE+NOISY"
			}
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%.3f\t%.3f\t%s\n",
			sinkName(t, s), timing.Arrival[s]*1e12, node.RAT*1e12,
			timing.SinkSlack[s]*1e12, nz.Noise[s], node.NoiseMargin, status)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if opts.ShowBuffers && len(assign) > 0 {
		ids := make([]rctree.NodeID, 0, len(assign))
		for v := range assign {
			ids = append(ids, v)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		bw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(bw, "buffer\tnode\tx (mm)\ty (mm)\tinput noise (V)\tmargin (V)")
		for _, v := range ids {
			b := assign[v]
			n := t.Node(v)
			fmt.Fprintf(bw, "%s\t%d\t%.3f\t%.3f\t%.3f\t%.3f\n",
				b.Name, v, n.X*1e3, n.Y*1e3, nz.Noise[v], b.NoiseMargin)
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Summary is a compact one-line description of an analysis, for batch
// flows.
func Summary(t *rctree.Tree, assign map[rctree.NodeID]buffers.Buffer, p noise.Params) string {
	timing := elmore.Analyze(t, assign)
	nz := noise.Analyze(t, assign, p)
	return fmt.Sprintf("%s: slack %.1f ps, delay %.1f ps, buffers %d, noise %.3f V, violations %d",
		t.Node(t.Root()).Name, timing.WorstSlack*1e12, timing.MaxDelay*1e12,
		len(assign), nz.MaxNoise, len(nz.Violations))
}

func sinkName(t *rctree.Tree, s rctree.NodeID) string {
	if s == rctree.None {
		return "-"
	}
	if n := t.Node(s).Name; n != "" {
		return n
	}
	return fmt.Sprintf("node%d", s)
}

// Topology renders the tree structure as an indented outline: one node
// per line with its wire parasitics, any inserted buffer, and sink
// electricals — the quick visual a designer wants when a report row looks
// suspicious.
func Topology(w io.Writer, t *rctree.Tree, assign map[rctree.NodeID]buffers.Buffer) error {
	if err := t.Validate(); err != nil {
		return err
	}
	var walk func(v rctree.NodeID, depth int) error
	walk = func(v rctree.NodeID, depth int) error {
		n := t.Node(v)
		indent := ""
		for i := 0; i < depth; i++ {
			indent += "  "
		}
		var line string
		switch n.Kind {
		case rctree.Source:
			line = fmt.Sprintf("%ssource %s (driver R=%.0f Ω)", indent, n.Name, t.DriverResistance)
		case rctree.Sink:
			line = fmt.Sprintf("%s└ sink %s  wire R=%.0f C=%.1ffF L=%.3fmm  cap=%.1ffF nm=%.2fV",
				indent, sinkName(t, v), n.Wire.R, n.Wire.C*1e15, n.Wire.Length*1e3,
				n.Cap*1e15, n.NoiseMargin)
		default:
			line = fmt.Sprintf("%s├ node %d  wire R=%.0f C=%.1ffF L=%.3fmm",
				indent, v, n.Wire.R, n.Wire.C*1e15, n.Wire.Length*1e3)
		}
		if b, ok := assign[v]; ok {
			line += fmt.Sprintf("  [%s]", b.Name)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(t.Root(), 0)
}

// Compare renders a before/after pair for one net, the shape used by
// cmd/buffopt.
func Compare(w io.Writer, before, after *rctree.Tree,
	assign map[rctree.NodeID]buffers.Buffer, p noise.Params) error {
	bt := elmore.Analyze(before, nil)
	bn := noise.Analyze(before, nil, p)
	at := elmore.Analyze(after, assign)
	an := noise.Analyze(after, assign, p)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tbefore\tafter\tchange")
	fmt.Fprintf(tw, "max delay (ps)\t%.1f\t%.1f\t%+.1f%%\n",
		bt.MaxDelay*1e12, at.MaxDelay*1e12, pct(at.MaxDelay, bt.MaxDelay))
	fmt.Fprintf(tw, "worst slack (ps)\t%.1f\t%.1f\t\n", bt.WorstSlack*1e12, at.WorstSlack*1e12)
	fmt.Fprintf(tw, "peak noise bound (V)\t%.3f\t%.3f\t%+.1f%%\n", bn.MaxNoise, an.MaxNoise, pct(an.MaxNoise, bn.MaxNoise))
	fmt.Fprintf(tw, "violations\t%d\t%d\t\n", len(bn.Violations), len(an.Violations))
	fmt.Fprintf(tw, "buffers\t0\t%d\t\n", len(assign))
	return tw.Flush()
}

func pct(after, before float64) float64 {
	if before == 0 || math.IsNaN(before) {
		return 0
	}
	return 100 * (after - before) / before
}
