package noise

import (
	"math"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/rctree"
)

// unitParams makes I_w numerically equal to C_w (λ = 1, μ = 1), so the
// hand calculations below stay simple.
var unitParams = Params{CouplingRatio: 1, Slope: 1}

// buildY builds the worked-example tree in the spirit of Fig. 3:
//
//	so --(R=2, C=3 → I=3)--> v1 --(R=1, C=2 → I=2)--> s1 (NM 25)
//	                          \---(R=4, C=1 → I=1)--> s2 (NM 22)
//
// driver resistance 2.
//
// Downstream currents (eq. 7): I(s1)=I(s2)=0, I(v1)=3, I(so)=6.
// Edge noise (eq. 8): N(so,v1)=2·(3+1.5)=9, N(v1,s1)=1·(0+1)=1,
// N(v1,s2)=4·(0+0.5)=2.
// Sink noise (eq. 9): N(s1)=2·6+9+1=22, N(s2)=2·6+9+2=23.
func buildY(t *testing.T) (*rctree.Tree, rctree.NodeID, rctree.NodeID, rctree.NodeID) {
	t.Helper()
	tr := rctree.New("net0", 2, 1)
	v1, err := tr.AddInternal(tr.Root(), rctree.Wire{R: 2, C: 3, Length: 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := tr.AddSink(v1, rctree.Wire{R: 1, C: 2, Length: 2}, "s1", 1, 100, 25)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tr.AddSink(v1, rctree.Wire{R: 4, C: 1, Length: 1}, "s2", 2, 100, 22)
	if err != nil {
		t.Fatal(err)
	}
	return tr, v1, s1, s2
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestWorkedExampleUnbuffered(t *testing.T) {
	tr, v1, s1, s2 := buildY(t)
	r := Analyze(tr, nil, unitParams)

	if got := r.WireCurrent[v1]; !approx(got, 3) {
		t.Errorf("I_w(so→v1) = %g, want 3", got)
	}
	if got := r.Downstream[v1]; !approx(got, 3) {
		t.Errorf("I(v1) = %g, want 3", got)
	}
	if got := r.Downstream[tr.Root()]; !approx(got, 6) {
		t.Errorf("I(so) = %g, want 6", got)
	}
	if got := r.Noise[s1]; !approx(got, 22) {
		t.Errorf("Noise(s1) = %g, want 22", got)
	}
	if got := r.Noise[s2]; !approx(got, 23) {
		t.Errorf("Noise(s2) = %g, want 23", got)
	}
	// s1's margin is 25 (clean); s2's margin is 22 (violated by 1).
	if len(r.Violations) != 1 || r.Violations[0].Node != s2 {
		t.Fatalf("Violations = %+v, want exactly s2", r.Violations)
	}
	if r.Clean() {
		t.Errorf("Clean() = true with a violation present")
	}
	if !approx(r.MaxNoise, 23) {
		t.Errorf("MaxNoise = %g, want 23", r.MaxNoise)
	}
}

func TestWorkedExampleSlacks(t *testing.T) {
	tr, v1, _, _ := buildY(t)
	ns := Slacks(tr, unitParams)
	// NS(s1)=25, NS(s2)=22, NS(v1)=min(25−1, 22−2)=20, NS(so)=20−9=11.
	if got := ns[v1]; !approx(got, 20) {
		t.Errorf("NS(v1) = %g, want 20", got)
	}
	if got := ns[tr.Root()]; !approx(got, 11) {
		t.Errorf("NS(so) = %g, want 11", got)
	}
	// R_so·I(so) = 12 > 11, consistent with the violation found above.
	if CleanUnbuffered(tr, unitParams) {
		t.Errorf("CleanUnbuffered = true, want false")
	}
	down := DownstreamCurrents(tr, unitParams)
	if got := down[tr.Root()]; !approx(got, 6) {
		t.Errorf("I(so) = %g, want 6", got)
	}
}

func TestWorkedExampleBuffered(t *testing.T) {
	tr, v1, s1, s2 := buildY(t)
	b := buffers.Buffer{Name: "b", Cin: 0.5, R: 1, T: 2, NoiseMargin: 10}
	r := Analyze(tr, Assignment{v1: b}, unitParams)
	// Upstream of the buffer only the (so,v1) wire injects: I = 3.
	// Noise at the buffer input: 2·3 + 2·(3/2) = 9 ≤ 10 → clean.
	// Buffer output: 1·3 = 3. Noise(s1) = 3 + 1 = 4; Noise(s2) = 3 + 2 = 5.
	if got := r.Noise[v1]; !approx(got, 9) {
		t.Errorf("Noise(buffer input) = %g, want 9", got)
	}
	if got := r.Noise[s1]; !approx(got, 4) {
		t.Errorf("Noise(s1) = %g, want 4", got)
	}
	if got := r.Noise[s2]; !approx(got, 5) {
		t.Errorf("Noise(s2) = %g, want 5", got)
	}
	if !r.Clean() {
		t.Errorf("buffered tree not clean: %+v", r.Violations)
	}
}

func TestBufferInputViolation(t *testing.T) {
	tr, v1, _, _ := buildY(t)
	weak := buffers.Buffer{Name: "weak", Cin: 0.5, R: 1, T: 2, NoiseMargin: 8}
	r := Analyze(tr, Assignment{v1: weak}, unitParams)
	// Noise at the buffer input is 9 > 8 → the buffer itself is violated.
	if r.Clean() {
		t.Fatalf("expected a buffer-input violation")
	}
	if r.Violations[0].Node != v1 || !approx(r.Violations[0].Noise, 9) || !approx(r.Violations[0].Margin, 8) {
		t.Errorf("violation = %+v", r.Violations[0])
	}
}

func TestExplicitAggressorsOverrideEstimate(t *testing.T) {
	tr := rctree.New("n", 1, 0)
	// Wire with explicit aggressors: I_w = (0.5·3 + 0.25·2)·C = 2·C.
	w := rctree.Wire{R: 1, C: 4, Length: 1, Aggressors: []rctree.Coupling{
		{Ratio: 0.5, Slope: 3},
		{Ratio: 0.25, Slope: 2},
	}}
	if _, err := tr.AddSink(tr.Root(), w, "s", 0, 0, 100); err != nil {
		t.Fatal(err)
	}
	if got := unitParams.WireCurrent(w); !approx(got, 8) {
		t.Errorf("WireCurrent = %g, want 8", got)
	}
	// Explicit empty list: zero current regardless of params.
	w0 := rctree.Wire{R: 1, C: 4, Aggressors: []rctree.Coupling{}}
	if got := unitParams.WireCurrent(w0); got != 0 {
		t.Errorf("WireCurrent(empty explicit) = %g, want 0", got)
	}
	// nil list: estimation mode.
	wEst := rctree.Wire{R: 1, C: 4}
	p := Params{CouplingRatio: 0.5, Slope: 3}
	if got := p.WireCurrent(wEst); !approx(got, 6) {
		t.Errorf("WireCurrent(estimation) = %g, want 6", got)
	}
}

func TestSectionVParams(t *testing.T) {
	p := SectionV()
	if !approx(p.CouplingRatio, 0.7) {
		t.Errorf("λ = %g, want 0.7", p.CouplingRatio)
	}
	if !approx(p.Slope, 7.2e9) {
		t.Errorf("μ = %g, want 7.2e9", p.Slope)
	}
	if !approx(p.PerCap(), 0.7*7.2e9) {
		t.Errorf("PerCap = %g", p.PerCap())
	}
}

// TestReferenceSharedResistance cross-checks Analyze against an
// independent O(n²) implementation of the Devgan metric: noise at sink s
// equals Σ_w R_shared(w, s)·I_w, where R_shared is the resistance of the
// common path from the driving stage, counting half of a wire's own
// resistance for its own current.
func TestReferenceSharedResistance(t *testing.T) {
	tr, _, s1, s2 := buildY(t)
	r := Analyze(tr, nil, unitParams)
	for _, s := range []rctree.NodeID{s1, s2} {
		want := referenceNoise(tr, unitParams, s)
		if got := r.Noise[s]; !approx(got, want) {
			t.Errorf("Noise(%d) = %g, reference %g", s, got, want)
		}
	}
}

// referenceNoise computes the Devgan bound at sink s of the unbuffered
// tree directly from the shared-path-resistance definition.
func referenceNoise(t *rctree.Tree, p Params, s rctree.NodeID) float64 {
	onPath := map[rctree.NodeID]bool{}
	for _, v := range t.PathToRoot(s) {
		onPath[v] = true
	}
	total := 0.0
	for _, w := range t.Preorder() {
		if w == t.Root() {
			continue
		}
		iw := p.WireCurrent(t.Node(w).Wire)
		if iw == 0 {
			continue
		}
		// Shared resistance: driver resistance plus the resistance of
		// every wire that lies on both paths (root→w and root→s); the
		// wire w itself counts half when it lies on the sink path, and
		// nothing when only its upstream nodes are shared.
		shared := t.DriverResistance
		for _, u := range t.PathToRoot(w) {
			if u == t.Root() || u == w {
				continue
			}
			if onPath[u] {
				shared += t.Node(u).Wire.R
			}
		}
		if onPath[w] {
			shared += t.Node(w).Wire.R / 2
		}
		total += shared * iw
	}
	return total
}
