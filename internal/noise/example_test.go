package noise_test

import (
	"fmt"

	"buffopt/internal/noise"
	"buffopt/internal/rctree"
)

// ExampleAnalyze reproduces the paper's worked computation (Fig. 3 shape):
// currents accumulate bottom-up (eq. 7), each wire adds R·(I + I_w/2) of
// noise (eq. 8), and the driver adds R_so·I(root) (eq. 9).
func ExampleAnalyze() {
	p := noise.Params{CouplingRatio: 1, Slope: 1} // I_w = C_w
	tr := rctree.New("fig3", 2, 0)
	v1, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 2, C: 3, Length: 3}, true)
	s1, _ := tr.AddSink(v1, rctree.Wire{R: 1, C: 2, Length: 2}, "s1", 1, 0, 25)
	s2, _ := tr.AddSink(v1, rctree.Wire{R: 4, C: 1, Length: 1}, "s2", 2, 0, 22)

	r := noise.Analyze(tr, nil, p)
	fmt.Printf("I(so) = %.0f\n", r.Downstream[tr.Root()])
	fmt.Printf("Noise(s1) = %.0f, Noise(s2) = %.0f\n", r.Noise[s1], r.Noise[s2])
	fmt.Printf("violations: %d\n", len(r.Violations))
	// Output:
	// I(so) = 6
	// Noise(s1) = 22, Noise(s2) = 23
	// violations: 1
}

// ExampleSlacks shows the backward recurrence (eq. 12) used by the
// insertion algorithms: the net is clean iff R_so·I(root) ≤ NS(root).
func ExampleSlacks() {
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	tr := rctree.New("fig3", 2, 0)
	v1, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 2, C: 3, Length: 3}, true)
	tr.AddSink(v1, rctree.Wire{R: 1, C: 2, Length: 2}, "s1", 1, 0, 25)
	tr.AddSink(v1, rctree.Wire{R: 4, C: 1, Length: 1}, "s2", 2, 0, 22)

	ns := noise.Slacks(tr, p)
	down := noise.DownstreamCurrents(tr, p)
	fmt.Printf("NS(so) = %.0f, R_so·I = %.0f, clean = %v\n",
		ns[tr.Root()], tr.DriverResistance*down[tr.Root()], noise.CleanUnbuffered(tr, p))
	// Output: NS(so) = 11, R_so·I = 12, clean = false
}
