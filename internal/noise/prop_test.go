package noise

// Property tests in-package so they can reuse referenceNoise from
// noise_test.go against generator-built trees.

import (
	"math/rand"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/rctree"
	"buffopt/internal/testutil"
)

// TestAnalyzeMatchesSharedResistanceRandom: the bottom-up metric equals
// the O(n²) shared-resistance definition on random unbuffered trees, for
// both estimation mode and explicit aggressor lists.
func TestAnalyzeMatchesSharedResistanceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{MaxInternal: 9, MaxSinks: 6})
		p := Params{CouplingRatio: 0.3 + 0.7*rng.Float64(), Slope: 0.5 + 2*rng.Float64()}
		// Give a third of the wires explicit aggressor lists.
		for _, v := range tr.Preorder() {
			if v != tr.Root() && rng.Intn(3) == 0 {
				tr.Node(v).Wire.Aggressors = []rctree.Coupling{
					{Ratio: rng.Float64(), Slope: rng.Float64() * 2},
				}
			}
		}
		r := Analyze(tr, nil, p)
		for _, s := range tr.Sinks() {
			want := referenceNoise(tr, p, s)
			if !approx(r.Noise[s], want) {
				t.Fatalf("trial %d sink %d: Analyze %g, reference %g", trial, s, r.Noise[s], want)
			}
		}
	}
}

// TestSlacksConsistentWithAnalyze: for random trees, the slack recurrence
// (eq. 12) and the forward analysis (eq. 9) agree on cleanliness:
// R_so·I(root) ≤ NS(root) ⟺ no violations.
func TestSlacksConsistentWithAnalyze(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	agree := 0
	for trial := 0; trial < 400; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 7, MaxSinks: 5, MarginLo: 1, MarginHi: 30,
		})
		p := Params{CouplingRatio: 1, Slope: 1}
		fwd := Analyze(tr, nil, p).Clean()
		bwd := CleanUnbuffered(tr, p)
		if fwd != bwd {
			t.Fatalf("trial %d: forward clean=%v, slack clean=%v", trial, fwd, bwd)
		}
		if fwd {
			agree++
		}
	}
	if agree == 0 || agree == 400 {
		t.Logf("warning: degenerate mix of clean/dirty trees (%d/400 clean)", agree)
	}
}

// TestBufferIsolatesDownstreamCurrent: inserting a buffer can only reduce
// (never increase) the noise at every node outside its subtree, because it
// removes that subtree's current from the upstream net.
func TestBufferIsolatesDownstreamCurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := buffers.Buffer{Name: "b", Cin: 0.1, R: 1, NoiseMargin: 100}
	for trial := 0; trial < 300; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{MaxInternal: 8, MaxSinks: 5, BufferSites: true})
		p := Params{CouplingRatio: 1, Slope: 1}
		var site rctree.NodeID = rctree.None
		for _, v := range tr.Preorder() {
			if v != tr.Root() && tr.Node(v).Kind == rctree.Internal {
				site = v
				break
			}
		}
		if site == rctree.None {
			continue
		}
		base := Analyze(tr, nil, p)
		buffered := Analyze(tr, Assignment{site: b}, p)
		inSubtree := map[rctree.NodeID]bool{}
		for _, v := range tr.Subtree(site) {
			inSubtree[v] = true
		}
		for _, s := range tr.Sinks() {
			if inSubtree[s] {
				continue
			}
			if buffered.Noise[s] > base.Noise[s]+1e-12 {
				t.Fatalf("trial %d: buffering raised outside noise at %d: %g → %g",
					trial, s, base.Noise[s], buffered.Noise[s])
			}
		}
		// The buffer input itself sees no more noise than the unbuffered
		// node did (its subtree current no longer flows upstream).
		if buffered.Noise[site] > base.Noise[site]+1e-12 {
			t.Fatalf("trial %d: buffer input noise rose: %g → %g",
				trial, base.Noise[site], buffered.Noise[site])
		}
	}
}

// TestCurrentAdditivity: the downstream current at the root equals the
// sum of all wire currents (eq. 7 telescopes).
func TestCurrentAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 200; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{})
		p := Params{CouplingRatio: 0.7, Slope: 3}
		down := DownstreamCurrents(tr, p)
		sum := 0.0
		for _, v := range tr.Preorder() {
			if v != tr.Root() {
				sum += p.WireCurrent(tr.Node(v).Wire)
			}
		}
		if !approx(down[tr.Root()], sum) {
			t.Fatalf("trial %d: I(root) %g, Σ wires %g", trial, down[tr.Root()], sum)
		}
	}
}

// TestSplitInvariance: splitting a wire at any fraction leaves every
// sink's noise unchanged (the metric treats the wire as distributed, so
// lumping it in two halves is exact for downstream observers).
func TestSplitInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 200; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{MaxInternal: 6, MaxSinks: 4})
		p := Params{CouplingRatio: 1, Slope: 1}
		base := Analyze(tr, nil, p)
		baseNoise := map[string][]float64{}
		for _, s := range tr.Sinks() {
			baseNoise["k"] = append(baseNoise["k"], base.Noise[s])
		}
		split := tr.Clone()
		sinks := split.Sinks()
		v := sinks[rng.Intn(len(sinks))]
		if _, err := split.SplitWire(v, 0.1+0.8*rng.Float64()); err != nil {
			t.Fatal(err)
		}
		after := Analyze(split, nil, p)
		for i, s := range split.Sinks() {
			if !approx(after.Noise[s], baseNoise["k"][i]) {
				t.Fatalf("trial %d: split changed noise at sink %d: %g → %g",
					trial, s, baseNoise["k"][i], after.Noise[s])
			}
		}
	}
}
