// Package noise implements the Devgan coupled-noise metric (ICCAD 1997) on
// RC routing trees, as used throughout Section II-B of the paper.
//
// The metric has the same additive, bottom-up structure as the Elmore delay
// metric and is a provable upper bound on the coupled noise of RC (and
// overdamped RLC) circuits:
//
//	I_w    = Σ_k λ_k · μ_k · C_w                       (eq. 6)  current a
//	         wire's aggressors inject, A
//	I(v)   = Σ_{w ∈ subtree(v)} I_w                    (eq. 7)  downstream
//	         current
//	N(w)   = R_w · (I(v) + I_w/2)                      (eq. 8)  noise a wire
//	         adds on the way to v (π-model: half the wire's own current
//	         traverses its full resistance)
//	N(si)  = R_gate · I(root) + Σ_{w ∈ path} N(w)      (eq. 9)  noise at a
//	         sink, accumulated from the nearest upstream restoring stage
//
// Buffers are restoring stages: currents injected below a buffer do not
// propagate noise above it, and the noise accumulation restarts at each
// buffer output. The noise constraint (eq. 11) is N(si) ≤ NM(si) at every
// sink and N(input) ≤ NM(buffer) at every buffer input.
//
// In estimation mode (buffer insertion before routing, Section II-B), every
// wire is assumed coupled to a single aggressor with slope μ over a fixed
// fraction λ of its capacitance, so I_w = λ·μ·C_w. Wires that carry
// explicit aggressor lists (post-routing mode, Fig. 2) override the
// estimate.
package noise

import (
	"fmt"
	"math"

	"buffopt/internal/buffers"
	"buffopt/internal/guard"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
)

// Params configures estimation mode.
type Params struct {
	// CouplingRatio λ: fraction of each wire's capacitance assumed to be
	// coupling capacitance (0.7 in Section V).
	CouplingRatio float64
	// Slope μ = Vdd / t_rise of the assumed aggressor, V/s
	// (1.8 V / 0.25 ns = 7.2e9 V/s in Section V).
	Slope float64
}

// Validate reports whether the parameters are usable for noise-aware
// optimization. Errors wrap guard.ErrInvalidInput.
func (p Params) Validate() error {
	if math.IsNaN(p.CouplingRatio) || p.CouplingRatio < 0 || p.CouplingRatio > 1 {
		return fmt.Errorf("noise: coupling ratio λ = %g must lie in [0, 1]: %w",
			p.CouplingRatio, guard.ErrInvalidInput)
	}
	if math.IsNaN(p.Slope) || math.IsInf(p.Slope, 0) || p.Slope <= 0 {
		return fmt.Errorf("noise: aggressor slope μ = %g V/s must be positive and finite: %w",
			p.Slope, guard.ErrInvalidInput)
	}
	return nil
}

// SectionV returns the experimental parameters of the paper: λ = 0.7,
// μ = 1.8 V / 0.25 ns.
func SectionV() Params {
	return Params{CouplingRatio: 0.7, Slope: 1.8 / 0.25e-9}
}

// PerCap returns the injected current per farad of wire capacitance, λ·μ.
func (p Params) PerCap() float64 { return p.CouplingRatio * p.Slope }

// WireCurrent returns the total current I_w the wire's aggressors inject
// (eq. 6): the explicit aggressor list if present, the single-aggressor
// estimate otherwise.
func (p Params) WireCurrent(w rctree.Wire) float64 {
	if w.Aggressors != nil {
		i := 0.0
		for _, a := range w.Aggressors {
			i += a.Ratio * a.Slope * w.C
		}
		return i
	}
	return p.PerCap() * w.C
}

// Assignment maps tree nodes to inserted buffers; nil means unbuffered.
type Assignment = map[rctree.NodeID]buffers.Buffer

// Violation records one node whose accumulated noise exceeds its margin.
type Violation struct {
	Node   rctree.NodeID
	Noise  float64 // accumulated peak noise bound at the node's input, V
	Margin float64 // the node's tolerable noise margin, V
}

// Result holds a full noise analysis of one buffered tree.
type Result struct {
	// WireCurrent[v] is I_w of v's parent wire (eq. 6); zero at the root.
	WireCurrent []float64
	// Downstream[v] is the coupling current that flows through v's parent
	// wire from strictly below v, with restoring cuts applied: currents
	// below a buffered node stop at the buffer.
	Downstream []float64
	// Noise[v] is the Devgan bound on peak noise at v's input, accumulated
	// from the nearest upstream restoring stage (eq. 9).
	Noise []float64
	// Violations lists every sink or buffer input over its margin, in
	// preorder.
	Violations []Violation
	// MaxNoise is the largest sink or buffer-input noise in the tree.
	MaxNoise float64
}

// Clean reports whether the tree satisfies all noise constraints.
func (r *Result) Clean() bool { return len(r.Violations) == 0 }

// Analyze runs a full noise analysis of tree t with the given buffer
// assignment (nil for the unbuffered tree) under estimation parameters p.
func Analyze(t *rctree.Tree, assign Assignment, p Params) *Result {
	defer obs.Timer("noise.analyze")()
	n := t.Len()
	r := &Result{
		WireCurrent: make([]float64, n),
		Downstream:  make([]float64, n),
		Noise:       make([]float64, n),
	}

	for _, v := range t.Postorder() {
		node := t.Node(v)
		if v != t.Root() {
			r.WireCurrent[v] = p.WireCurrent(node.Wire)
		}
		sum := 0.0
		for _, c := range node.Children {
			if _, buffered := assign[c]; buffered {
				// The child's parent wire still injects upstream of the
				// buffer input, but the buffer stops everything below it.
				sum += r.WireCurrent[c]
			} else {
				sum += r.WireCurrent[c] + r.Downstream[c]
			}
		}
		r.Downstream[v] = sum
	}

	// Top-down accumulation. out[v] is the noise at v's output side: zero
	// right after any restoring stage, pass-through otherwise.
	out := make([]float64, n)
	for _, v := range t.Preorder() {
		node := t.Node(v)
		if v == t.Root() {
			r.Noise[v] = 0
			out[v] = t.DriverResistance * r.Downstream[v]
		} else {
			w := node.Wire
			through := r.WireCurrent[v] / 2
			if _, buffered := assign[v]; !buffered {
				through += r.Downstream[v]
			}
			r.Noise[v] = out[node.Parent] + w.R*through
			if b, buffered := assign[v]; buffered {
				if r.Noise[v] > b.NoiseMargin {
					r.Violations = append(r.Violations, Violation{Node: v, Noise: r.Noise[v], Margin: b.NoiseMargin})
				}
				out[v] = b.R * r.Downstream[v]
			} else {
				out[v] = r.Noise[v]
			}
		}
		if node.Kind == rctree.Sink {
			if r.Noise[v] > node.NoiseMargin {
				r.Violations = append(r.Violations, Violation{Node: v, Noise: r.Noise[v], Margin: node.NoiseMargin})
			}
		}
		isInput := node.Kind == rctree.Sink
		if _, buffered := assign[v]; buffered {
			isInput = true
		}
		if isInput && r.Noise[v] > r.MaxNoise {
			r.MaxNoise = r.Noise[v]
		}
	}
	return r
}

// Slacks returns the noise slack NS(v) of every node of the *unbuffered*
// tree (eq. 12): the largest driver-side noise budget available at v such
// that every downstream sink still meets its margin.
//
//	NS(si) = NM(si)
//	NS(u)  = min over children v of NS(v) − R_w·(I(v) + I_w/2)
//
// The tree, driven by a gate with output resistance R at node v, is
// noise-clean below v iff R·I(v) ≤ NS(v).
func Slacks(t *rctree.Tree, p Params) []float64 {
	n := t.Len()
	ns := make([]float64, n)
	down := make([]float64, n)
	for _, v := range t.Postorder() {
		node := t.Node(v)
		if node.Kind == rctree.Sink {
			ns[v] = node.NoiseMargin
			down[v] = 0
			continue
		}
		ns[v] = math.Inf(1)
		sum := 0.0
		for _, c := range node.Children {
			w := t.Node(c).Wire
			iw := p.WireCurrent(w)
			s := ns[c] - w.R*(down[c]+iw/2)
			if s < ns[v] {
				ns[v] = s
			}
			sum += down[c] + iw
		}
		down[v] = sum
	}
	return ns
}

// DownstreamCurrents returns I(v) (eq. 7) for every node of the unbuffered
// tree: the total aggressor current injected strictly below v.
func DownstreamCurrents(t *rctree.Tree, p Params) []float64 {
	down := make([]float64, t.Len())
	for _, v := range t.Postorder() {
		node := t.Node(v)
		sum := 0.0
		for _, c := range node.Children {
			sum += p.WireCurrent(t.Node(c).Wire) + down[c]
		}
		down[v] = sum
	}
	return down
}

// CleanUnbuffered reports whether the unbuffered tree, driven by its
// source gate, meets all noise constraints: DriverResistance·I(root) ≤
// NS(root) (eq. 11 via eq. 12).
func CleanUnbuffered(t *rctree.Tree, p Params) bool {
	ns := Slacks(t, p)
	down := DownstreamCurrents(t, p)
	return t.DriverResistance*down[t.Root()] <= ns[t.Root()]
}
