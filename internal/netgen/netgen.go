// Package netgen generates the synthetic stand-in for the paper's
// proprietary experimental data: "a set of 500 nets from a modern PowerPC
// microprocessor design", selected as the 500 nets with the largest total
// capacitance (Section V).
//
// The generator reproduces the published statistics rather than the
// (unavailable) raw data:
//
//   - sink counts are drawn from a Table I-shaped distribution dominated
//     by two- and few-pin nets with a long tail to ~30 sinks;
//   - pin placements are spread over spans of a few millimeters and routed
//     into Steiner estimates by package steiner;
//   - electrical constants follow Section V: coupling ratio λ = 0.7,
//     aggressor slope 1.8 V / 0.25 ns, noise margin 0.8 V for every gate;
//   - drivers and sinks take their R/C values from a synthetic
//     precharacterized cell library spanning realistic power levels;
//   - a candidate pool is generated and the highest-total-capacitance nets
//     are kept, mimicking the paper's selection rule (which deliberately
//     biases the suite toward noise-prone nets).
//
// Everything is deterministic in Config.Seed.
package netgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"buffopt/internal/buffers"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/steiner"
)

// Tech bundles the technology assumptions of the experiment.
type Tech struct {
	Wire        steiner.Tech // per-unit-length wire parasitics
	Vdd         float64      // supply, V
	Noise       noise.Params // estimation-mode coupling parameters
	NoiseMargin float64      // tolerable noise at every gate input, V
}

// SectionVTech returns the Section V technology: 0.25 µm-class upper-metal
// wires (80 Ω/mm, 200 fF/mm), Vdd = 1.8 V, λ = 0.7, rise 0.25 ns,
// NM = 0.8 V.
func SectionVTech() Tech {
	return Tech{
		Wire:        steiner.Tech{RPerLen: 80e3, CPerLen: 200e-12},
		Vdd:         1.8,
		Noise:       noise.SectionV(),
		NoiseMargin: 0.8,
	}
}

// Config controls suite generation.
type Config struct {
	Seed int64
	// NumNets is the suite size after selection (500 in the paper).
	NumNets int
	// PoolFactor generates PoolFactor×NumNets candidates before keeping
	// the largest-capacitance NumNets. Default 2.
	PoolFactor int
	// Tech defaults to SectionVTech().
	Tech *Tech
	// MaxSinks caps the sink-count distribution's tail. Default 30.
	MaxSinks int
}

// Suite is a generated benchmark set.
type Suite struct {
	Nets []*rctree.Tree
	Tech Tech
	// Library is the 11-buffer (5 inverting + 6 non-inverting) insertion
	// library of Section V.
	Library *buffers.Library
}

// sinkBin is one row of the Table I-shaped sink-count distribution.
type sinkBin struct {
	lo, hi int
	weight float64
}

// tableIBins reconstructs the shape of Table I (the published scan's
// numerals are illegible; the bins and the dominance of few-pin nets are
// from the table's structure). See DESIGN.md, "Known deviations".
var tableIBins = []sinkBin{
	{1, 1, 0.45}, // two-pin nets dominate the large global wires
	{2, 4, 0.30},
	{5, 9, 0.15},
	{10, 18, 0.07},
	{19, 30, 0.03},
}

// Generate builds a deterministic benchmark suite.
func Generate(cfg Config) (*Suite, error) {
	if cfg.NumNets <= 0 {
		return nil, fmt.Errorf("netgen: NumNets %d must be positive", cfg.NumNets)
	}
	if cfg.PoolFactor == 0 {
		cfg.PoolFactor = 2
	}
	if cfg.PoolFactor < 1 {
		return nil, fmt.Errorf("netgen: PoolFactor %d must be at least 1", cfg.PoolFactor)
	}
	if cfg.MaxSinks == 0 {
		cfg.MaxSinks = 30
	}
	tech := SectionVTech()
	if cfg.Tech != nil {
		tech = *cfg.Tech
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	pool := make([]*rctree.Tree, 0, cfg.NumNets*cfg.PoolFactor)
	for i := 0; i < cfg.NumNets*cfg.PoolFactor; i++ {
		tr, err := generateNet(rng, i, tech, cfg.MaxSinks)
		if err != nil {
			return nil, err
		}
		pool = append(pool, tr)
	}
	// Keep the largest-total-capacitance nets, as in Section V.
	sort.SliceStable(pool, func(i, j int) bool { return pool[i].TotalCap() > pool[j].TotalCap() })
	nets := pool[:cfg.NumNets]

	return &Suite{
		Nets:    nets,
		Tech:    tech,
		Library: buffers.DefaultLibrary(tech.NoiseMargin),
	}, nil
}

// sampleSinkCount draws a sink count from the Table I-shaped bins.
func sampleSinkCount(rng *rand.Rand, maxSinks int) int {
	r := rng.Float64()
	acc := 0.0
	for _, b := range tableIBins {
		acc += b.weight
		if r <= acc {
			n := b.lo + rng.Intn(b.hi-b.lo+1)
			if n > maxSinks {
				n = maxSinks
			}
			return n
		}
	}
	return 1
}

// generateNet builds one routed net.
func generateNet(rng *rand.Rand, index int, tech Tech, maxSinks int) (*rctree.Tree, error) {
	sinks := sampleSinkCount(rng, maxSinks)

	// Two populations, as on a real die: long "global" wires (noise-prone)
	// and short "local" nets that rank high in total capacitance only
	// because they drive heavy pin loads (latch banks, macros) — these are
	// the noise-clean minority that Table II's 500−423 = 77 nets represent.
	local := rng.Float64() < 0.34
	pinCapLo, pinCapHi := 10e-15, 50e-15
	var span float64
	switch {
	case local:
		span = (0.4 + 1.8*rng.Float64()) * 1e-3
		pinCapLo, pinCapHi = 80e-15, 400e-15
		if sinks < 2 {
			sinks = 2 + rng.Intn(4)
		}
	case sinks == 1:
		span = (1 + 7*rng.Float64()) * 1e-3
	default:
		// Shrink the bounding box as fanout grows so total wirelength
		// (which scales like span·√sinks) stays in the few-buffer regime
		// the paper reports (at most four buffers per net, Table III).
		span = (2 + 6*rng.Float64()) * 1e-3 / math.Sqrt(math.Max(1, float64(sinks)/3))
	}

	// Per-net wire-layer variation: ±30% around the nominal parasitics.
	layer := 0.7 + 0.7*rng.Float64()
	wire := steiner.Tech{
		RPerLen: tech.Wire.RPerLen * layer,
		CPerLen: tech.Wire.CPerLen * (0.85 + 0.3*rng.Float64()),
	}

	// Driver from the synthetic cell library: power levels from strong
	// (120 Ω) to weak (900 Ω).
	driverR := 120 + 780*rng.Float64()
	driverT := (30 + 50*rng.Float64()) * 1e-12

	net := steiner.Net{
		Name:    fmt.Sprintf("net%04d", index),
		Driver:  steiner.Point{X: 0, Y: 0},
		DriverR: driverR,
		DriverT: driverT,
	}
	// One required arrival time per net, around 2 ns, identical at every
	// sink: with equal RATs, maximizing the slack at the source is exactly
	// minimizing the maximum source-to-sink delay (footnote 6 of the
	// paper), which keeps the Table IV delay comparison apples-to-apples.
	// The budget is loose enough that noise, not timing, dominates buffer
	// counts, matching the Section V observation that BuffOpt never needed
	// more than four buffers per net.
	rat := (1.8 + 0.8*rng.Float64()) * 1e-9
	for s := 0; s < sinks; s++ {
		net.Sinks = append(net.Sinks, steiner.Sink{
			Name:        fmt.Sprintf("s%d", s),
			At:          steiner.Point{X: (rng.Float64() - 0.5) * span, Y: (rng.Float64() - 0.5) * span},
			Cap:         pinCapLo + (pinCapHi-pinCapLo)*rng.Float64(),
			RAT:         rat,
			NoiseMargin: tech.NoiseMargin,
		})
	}
	// For two-pin nets, stretch the single sink to the full span so the
	// "span" is the actual routed length.
	if sinks == 1 {
		angle := rng.Float64()
		net.Sinks[0].At = steiner.Point{X: span * angle, Y: span * (1 - angle)}
	}

	alg := steiner.OneSteiner
	if sinks > 10 {
		alg = steiner.RectilinearMST // keep many-pin routing cheap
	}
	return steiner.Route(net, wire, alg)
}

// SinkHistogram bins the suite's sink counts like Table I. The returned
// slice is indexed like tableIBins.
func (s *Suite) SinkHistogram() []int {
	counts := make([]int, len(tableIBins))
	for _, tr := range s.Nets {
		n := tr.NumSinks()
		for i, b := range tableIBins {
			if n >= b.lo && n <= b.hi {
				counts[i]++
				break
			}
		}
	}
	return counts
}

// Bins exposes the Table I bin boundaries for reporting.
func Bins() [][2]int {
	out := make([][2]int, len(tableIBins))
	for i, b := range tableIBins {
		out[i] = [2]int{b.lo, b.hi}
	}
	return out
}
