package netgen

import (
	"testing"

	"buffopt/internal/noise"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 1, NumNets: 40})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 1, NumNets: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nets) != 40 || len(b.Nets) != 40 {
		t.Fatalf("sizes %d, %d", len(a.Nets), len(b.Nets))
	}
	for i := range a.Nets {
		if a.Nets[i].Len() != b.Nets[i].Len() ||
			a.Nets[i].TotalCap() != b.Nets[i].TotalCap() ||
			a.Nets[i].Node(0).Name != b.Nets[i].Node(0).Name {
			t.Fatalf("net %d differs between equal-seed runs", i)
		}
	}
	c, err := Generate(Config{Seed: 2, NumNets: 40})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Nets {
		if a.Nets[i].TotalCap() != c.Nets[i].TotalCap() {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical suites")
	}
}

func TestGeneratedNetsAreValid(t *testing.T) {
	s, err := Generate(Config{Seed: 7, NumNets: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Library.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Library.Buffers); got != 11 {
		t.Errorf("library size = %d, want 11 (5 inverting + 6 non-inverting)", got)
	}
	inv := 0
	for _, b := range s.Library.Buffers {
		if b.Inverting {
			inv++
		}
	}
	if inv != 5 {
		t.Errorf("inverting buffers = %d, want 5", inv)
	}
	for i, tr := range s.Nets {
		if err := tr.Validate(); err != nil {
			t.Fatalf("net %d invalid: %v", i, err)
		}
		if !tr.IsBinary() {
			t.Errorf("net %d not binary", i)
		}
		if tr.NumSinks() < 1 || tr.NumSinks() > 30 {
			t.Errorf("net %d has %d sinks", i, tr.NumSinks())
		}
		if tr.TotalWireLength() <= 0 {
			t.Errorf("net %d has zero wirelength", i)
		}
	}
}

func TestSelectionKeepsLargestCapacitance(t *testing.T) {
	s, err := Generate(Config{Seed: 3, NumNets: 30, PoolFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Nets); i++ {
		if s.Nets[i].TotalCap() > s.Nets[i-1].TotalCap()+1e-21 {
			t.Errorf("suite not sorted by total capacitance at %d", i)
		}
	}
}

func TestSinkHistogramShape(t *testing.T) {
	s, err := Generate(Config{Seed: 11, NumNets: 300})
	if err != nil {
		t.Fatal(err)
	}
	h := s.SinkHistogram()
	if len(h) != len(Bins()) {
		t.Fatalf("histogram size %d", len(h))
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 300 {
		t.Errorf("histogram total %d, want 300", total)
	}
	// Few-pin nets dominate; the tail is small but present across a
	// 300-net suite.
	if h[0] < h[len(h)-1] {
		t.Errorf("two-pin bin (%d) smaller than the tail bin (%d)", h[0], h[len(h)-1])
	}
}

func TestSuiteHasNoiseViolations(t *testing.T) {
	// The selection rule must bias toward noise-prone nets: a solid
	// majority of the suite should violate the Devgan constraint
	// unbuffered (the paper found 423 of 500).
	s, err := Generate(Config{Seed: 1, NumNets: 100})
	if err != nil {
		t.Fatal(err)
	}
	viol := 0
	for _, tr := range s.Nets {
		if !noise.CleanUnbuffered(tr, s.Tech.Noise) {
			viol++
		}
	}
	if viol < 60 {
		t.Errorf("only %d/100 nets have unbuffered noise violations; the suite is too tame", viol)
	}
	if viol == 100 {
		t.Errorf("every net violates; the suite has no clean nets at all")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Seed: 1, NumNets: 0}); err == nil {
		t.Errorf("zero NumNets accepted")
	}
	if _, err := Generate(Config{Seed: 1, NumNets: 10, PoolFactor: -1}); err == nil {
		t.Errorf("negative PoolFactor accepted")
	}
}
