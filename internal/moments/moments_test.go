package moments

import (
	"math"
	"math/rand"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/circuit"
	"buffopt/internal/elmore"
	"buffopt/internal/rctree"
	"buffopt/internal/testutil"
)

func near(a, b, rel float64) bool {
	return math.Abs(a-b) <= rel*(1e-30+math.Max(math.Abs(a), math.Abs(b)))
}

// TestFirstMomentIsElmore: m1 = −T_Elmore exactly, on random trees,
// cross-checked against the independent elmore package (whose arrival
// times include the driver's intrinsic delay, subtracted here).
func TestFirstMomentIsElmore(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 200; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{MaxInternal: 8, MaxSinks: 5})
		m, err := Compute(tr, 1)
		if err != nil {
			t.Fatal(err)
		}
		d := m.ElmoreDelay()
		an := elmore.Analyze(tr, nil)
		for _, s := range tr.Sinks() {
			want := an.Arrival[s] - tr.DriverDelay
			if !near(d[s], want, 1e-9) {
				t.Fatalf("trial %d sink %d: moment delay %g, elmore %g", trial, s, d[s], want)
			}
		}
	}
}

// TestMomentSigns: for RC trees the moments alternate in sign:
// m1 < 0, m2 > 0, m3 < 0 at every node with upstream resistance.
func TestMomentSigns(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 100; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{MaxInternal: 6, MaxSinks: 4})
		m, err := Compute(tr, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range tr.Sinks() {
			if !(m.M[1][s] < 0 && m.M[2][s] > 0 && m.M[3][s] < 0) {
				t.Fatalf("trial %d sink %d: moments %g, %g, %g do not alternate",
					trial, s, m.M[1][s], m.M[2][s], m.M[3][s])
			}
		}
	}
}

// TestTwoPoleStepShape: the reduced response starts at ~0, ends at 1, and
// is monotone for stable real-pole models.
func TestTwoPoleStepShape(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	stable := 0
	for trial := 0; trial < 100; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{MaxInternal: 6, MaxSinks: 4})
		m, err := Compute(tr, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range tr.Sinks() {
			tp, err := m.Reduce(s)
			if err != nil || !tp.Stable {
				continue
			}
			stable++
			if v := tp.Step(0); math.Abs(v) > 1e-9 {
				t.Fatalf("trial %d: Step(0) = %g", trial, v)
			}
			tau := math.Max(-1/tp.P1, -1/tp.P2)
			if v := tp.Step(50 * tau); math.Abs(v-1) > 1e-6 {
				t.Fatalf("trial %d: Step(∞) = %g", trial, v)
			}
			// The exact RC response is monotone; the Padé approximant may
			// wiggle slightly because of its zero, but must stay within a
			// small band and never leave [−1%, 101%].
			prev := 0.0
			for i := 1; i <= 100; i++ {
				v := tp.Step(float64(i) * tau / 10)
				if v < prev-1e-2 {
					t.Fatalf("trial %d: step response dropped %g → %g", trial, prev, v)
				}
				if v < -0.01 || v > 1.01 {
					t.Fatalf("trial %d: step response out of band: %g", trial, v)
				}
				prev = v
			}
		}
	}
	if stable < 50 {
		t.Fatalf("only %d stable reductions; generator too degenerate", stable)
	}
}

// simDelay50 measures the 50% crossing of the real circuit: step source
// behind the driver resistance into the tree's RC.
func simDelay50(t *testing.T, tr *rctree.Tree, sink rctree.NodeID, tau float64) float64 {
	t.Helper()
	nl := circuit.New()
	nodes := make([]int, tr.Len())
	src := nl.Node("vsrc")
	if err := nl.AddV(src, circuit.Ground, circuit.Ramp{V1: 1, Rise: tau / 1e4}); err != nil {
		t.Fatal(err)
	}
	for _, v := range tr.Preorder() {
		nodes[v] = nl.Node("")
		node := tr.Node(v)
		if v == tr.Root() {
			r := tr.DriverResistance
			if r <= 0 {
				r = 1e-3
			}
			if err := nl.AddR(src, nodes[v], r); err != nil {
				t.Fatal(err)
			}
		} else {
			r := node.Wire.R
			if r <= 0 {
				r = 1e-6
			}
			if err := nl.AddR(nodes[node.Parent], nodes[v], r); err != nil {
				t.Fatal(err)
			}
			if err := nl.AddC(nodes[node.Parent], circuit.Ground, node.Wire.C/2); err != nil {
				t.Fatal(err)
			}
			if err := nl.AddC(nodes[v], circuit.Ground, node.Wire.C/2); err != nil {
				t.Fatal(err)
			}
		}
		if node.Kind == rctree.Sink {
			if err := nl.AddC(nodes[v], circuit.Ground, node.Cap); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := circuit.Transient(nl, circuit.TranOptions{
		Step: tau / 2000, Duration: 10 * tau, Probes: []int{nodes[sink]},
	})
	if err != nil {
		t.Fatal(err)
	}
	wave := res.Waves[nodes[sink]]
	for i, v := range wave {
		if v >= 0.5 {
			return res.Times[i]
		}
	}
	t.Fatalf("sink never crossed 50%%")
	return 0
}

// TestTwoPoleBeatsElmoreAgainstSimulation: the reduced-order 50% delay
// tracks the transient simulator more closely than the Elmore bound, and
// Elmore stays an upper bound on the simulated 50% delay (its classic
// property for RC trees).
func TestTwoPoleBeatsElmoreAgainstSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	wins, trials := 0, 0
	for trial := 0; trial < 12; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{MaxInternal: 5, MaxSinks: 3})
		m, err := Compute(tr, 3)
		if err != nil {
			t.Fatal(err)
		}
		elm := m.ElmoreDelay()
		sinks := tr.Sinks()
		s := sinks[rng.Intn(len(sinks))]
		if elm[s] <= 0 {
			continue
		}
		tp, err := m.Reduce(s)
		if err != nil || !tp.Stable {
			continue
		}
		d2, err := tp.Delay(0.5)
		if err != nil {
			continue
		}
		sim := simDelay50(t, tr, s, elm[s])
		if sim > elm[s]*(1+0.02) {
			t.Errorf("trial %d: simulated 50%% delay %g exceeds Elmore %g", trial, sim, elm[s])
		}
		trials++
		if math.Abs(d2-sim) <= math.Abs(elm[s]-sim) {
			wins++
		}
	}
	if trials < 5 {
		t.Fatalf("only %d usable trials", trials)
	}
	if wins*2 < trials {
		t.Errorf("two-pole beat Elmore only %d/%d times", wins, trials)
	}
}

// TestDelay50Wrapper covers the convenience API and its Elmore fallback.
func TestDelay50Wrapper(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	tr := testutil.RandomTree(rng, testutil.TreeOptions{MaxInternal: 5, MaxSinks: 4})
	d, err := Delay50(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != tr.NumSinks() {
		t.Fatalf("got %d delays for %d sinks", len(d), tr.NumSinks())
	}
	m, _ := Compute(tr, 3)
	elm := m.ElmoreDelay()
	for s, v := range d {
		if v <= 0 || v > elm[s]+1e-12 {
			t.Errorf("sink %d: 50%% delay %g outside (0, Elmore=%g]", s, v, elm[s])
		}
	}
}

func TestComputeErrors(t *testing.T) {
	tr := rctree.New("x", 1, 0)
	if _, err := Compute(tr, 3); err == nil {
		t.Errorf("invalid (sink-less) tree accepted")
	}
	if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 1, C: 1, Length: 1}, "s", 1, 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(tr, 0); err == nil {
		t.Errorf("order 0 accepted")
	}
	m, err := Compute(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Reduce(1); err == nil {
		t.Errorf("Reduce with too few moments accepted")
	}
	m3, _ := Compute(tr, 3)
	tp, err := m3.Reduce(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tp.Delay(0); err == nil {
		t.Errorf("threshold 0 accepted")
	}
	if _, err := tp.Delay(1.5); err == nil {
		t.Errorf("threshold > 1 accepted")
	}
}

// TestDelay50Buffered: the stage-wise reduced-order delay of a buffered
// line lands between zero and the Elmore arrival, and tracks the
// analyzer's structure (more buffers on a long line → smaller 50% delay,
// same ordering as Elmore).
func TestDelay50Buffered(t *testing.T) {
	tr := rctree.New("line", 2, 0.3)
	sink, err := tr.AddSink(tr.Root(), rctree.Wire{R: 8, C: 8, Length: 8}, "s", 0.3, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Insert two buffers by hand at thirds.
	n1, err := tr.SplitWire(sink, 1.0/3)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := tr.SplitWire(n1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	buf := buffers.Buffer{Name: "B", Cin: 0.2, R: 1, T: 0.4, NoiseMargin: 5}
	assign := map[rctree.NodeID]buffers.Buffer{n1: buf, n2: buf}

	d, err := Delay50Buffered(tr, assign)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := d[sink]
	if !ok || got <= 0 {
		t.Fatalf("no sink delay: %v", d)
	}
	elm := elmore.Analyze(tr, assign)
	if got > elm.Arrival[sink] {
		t.Errorf("50%% delay %g above Elmore arrival %g", got, elm.Arrival[sink])
	}
	if got < 0.3*elm.Arrival[sink] {
		t.Errorf("50%% delay %g implausibly far below Elmore %g", got, elm.Arrival[sink])
	}

	// Unbuffered comparison: Delay50Buffered(nil) ≡ Delay50 + driver T.
	plain, err := Delay50Buffered(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Delay50(tr)
	if err != nil {
		t.Fatal(err)
	}
	if diff := plain[sink] - (base[sink] + tr.DriverDelay); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("unbuffered composition off by %g", diff)
	}
}
