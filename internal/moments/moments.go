// Package moments implements moment computation and reduced-order (AWE /
// RICE-style) delay estimation on RC trees — the model-order-reduction
// machinery the paper's introduction discusses as the engine behind
// detailed analysis tools like 3dnoise ("accurate moment-matching based
// techniques that are similar to RICE", Section V).
//
// For a step applied behind the driver resistance, the voltage transfer
// to node v has the Taylor expansion H_v(s) = Σ_k m_k(v)·s^k. Moments
// follow the classic O(n)-per-order tree recursion: the k-th moment
// "current" injected at node u is C_u·m_{k−1}(u), and m_k drops along
// each resistance by the downstream moment current.
//
// The first moment recovers the Elmore delay exactly (m1 = −T_Elmore),
// which the test suite exploits as a cross-check against package elmore;
// a two-pole Padé approximation of H(s) then gives threshold-crossing
// delays that track the transient simulator far more closely than the
// Elmore bound.
package moments

import (
	"fmt"
	"math"

	"buffopt/internal/buffers"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
)

// Moments holds m_0..m_K for every node of an unbuffered tree.
type Moments struct {
	// M[k][v] is the k-th moment of node v's transfer function.
	M [][]float64
}

// Compute returns the first maxOrder+1 moments (orders 0..maxOrder) of
// every node of the unbuffered tree, driven through the tree's driver
// resistance. Wire capacitances are lumped half at each end (the π-model
// used everywhere in this repository), so m1 equals the negative Elmore
// delay exactly.
func Compute(t *rctree.Tree, maxOrder int) (*Moments, error) {
	defer obs.Timer("moments.compute")()
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if maxOrder < 1 {
		return nil, fmt.Errorf("moments: order %d must be at least 1", maxOrder)
	}
	n := t.Len()

	// Nodal capacitance: half of every incident wire plus pin caps.
	cap := make([]float64, n)
	for _, v := range t.Preorder() {
		node := t.Node(v)
		if v != t.Root() {
			cap[v] += node.Wire.C / 2
			cap[node.Parent] += node.Wire.C / 2
		}
		if node.Kind == rctree.Sink {
			cap[v] += node.Cap
		}
	}

	post := t.Postorder()
	pre := t.Preorder()

	m := make([][]float64, maxOrder+1)
	m[0] = make([]float64, n)
	for i := range m[0] {
		m[0][i] = 1 // DC gain
	}
	for k := 1; k <= maxOrder; k++ {
		prev := m[k-1]
		// Downstream moment current: S[v] = Σ_{u ∈ subtree(v)} C_u·m_{k−1}(u).
		s := make([]float64, n)
		for _, v := range post {
			s[v] = cap[v] * prev[v]
			for _, c := range t.Node(v).Children {
				s[v] += s[c]
			}
		}
		cur := make([]float64, n)
		for _, v := range pre {
			if v == t.Root() {
				cur[v] = -t.DriverResistance * s[v]
				continue
			}
			cur[v] = cur[t.Node(v).Parent] - t.Node(v).Wire.R*s[v]
		}
		m[k] = cur
	}
	return &Moments{M: m}, nil
}

// ElmoreDelay returns −m1 for every node: exactly the Elmore delay from
// the driver input (excluding the driver's intrinsic delay).
func (m *Moments) ElmoreDelay() []float64 {
	out := make([]float64, len(m.M[1]))
	for i, v := range m.M[1] {
		out[i] = -v
	}
	return out
}

// TwoPole is a reduced-order model of one node's transfer function:
// H(s) ≈ (1 + a·s) / (1 + b1·s + b2·s²), matched to m1..m3 (an AWE [1/2]
// Padé approximant).
type TwoPole struct {
	A, B1, B2 float64
	// P1, P2 are the (negative, real) poles; Stable is false when the
	// approximant's poles are complex or non-negative, in which case
	// callers should fall back to the Elmore estimate.
	P1, P2 float64
	Stable bool
}

// Reduce builds the two-pole model for node v.
func (m *Moments) Reduce(v rctree.NodeID) (TwoPole, error) {
	if len(m.M) < 4 {
		return TwoPole{}, fmt.Errorf("moments: need orders up to 3, have %d", len(m.M)-1)
	}
	m1, m2, m3 := m.M[1][v], m.M[2][v], m.M[3][v]
	den := m2 - m1*m1
	if den == 0 {
		return TwoPole{}, fmt.Errorf("moments: degenerate moments at node %d", v)
	}
	b1 := (m1*m2 - m3) / den
	b2 := -m2 - b1*m1
	tp := TwoPole{A: b1 + m1, B1: b1, B2: b2}
	if b2 != 0 {
		disc := b1*b1 - 4*b2
		if disc >= 0 {
			r := math.Sqrt(disc)
			tp.P1 = (-b1 + r) / (2 * b2)
			tp.P2 = (-b1 - r) / (2 * b2)
			tp.Stable = tp.P1 < 0 && tp.P2 < 0
		}
	} else if b1 > 0 {
		// Single-pole degenerate case.
		tp.P1 = -1 / b1
		tp.P2 = tp.P1
		tp.Stable = true
	}
	return tp, nil
}

// Step evaluates the reduced model's unit step response at time t ≥ 0.
func (tp TwoPole) Step(t float64) float64 {
	if !tp.Stable {
		return math.NaN()
	}
	if tp.P1 == tp.P2 {
		// Repeated pole: v(t) = 1 − (1 + (p·a−1)·p·t)·e^{p·t} with the
		// residue worked out from H(s)/s; use the limit form.
		p := tp.P1
		k := (1 + tp.A*p)
		return 1 - math.Exp(p*t)*(1-k*p*t)
	}
	// Partial fractions of H(s)/s: residues at 0, p1, p2 (using
	// p1·p2 = 1/b2). k1 + k2 = −1, so Step(0) = 0 and Step(∞) = 1.
	k1 := (1 + tp.A*tp.P1) * tp.P2 / (tp.P1 - tp.P2)
	k2 := -(1 + tp.A*tp.P2) * tp.P1 / (tp.P1 - tp.P2)
	return 1 + k1*math.Exp(tp.P1*t) + k2*math.Exp(tp.P2*t)
}

// Delay returns the time at which the reduced step response first crosses
// the given threshold (0 < threshold < 1), by bisection. An error is
// returned for unstable approximants.
func (tp TwoPole) Delay(threshold float64) (float64, error) {
	if !tp.Stable {
		return 0, fmt.Errorf("moments: unstable two-pole model")
	}
	if threshold <= 0 || threshold >= 1 {
		return 0, fmt.Errorf("moments: threshold %g outside (0, 1)", threshold)
	}
	// Bracket: the slowest time constant bounds the settling.
	tau := math.Max(-1/tp.P1, -1/tp.P2)
	hi := tau
	for i := 0; i < 200 && tp.Step(hi) < threshold; i++ {
		hi *= 2
	}
	if tp.Step(hi) < threshold {
		return 0, fmt.Errorf("moments: response never reaches %g", threshold)
	}
	lo := 0.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if tp.Step(mid) < threshold {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Delay50 returns the 50% threshold delay for every sink, falling back to
// the Elmore value when the reduced model is unstable (rare, and always
// conservative).
func Delay50(t *rctree.Tree) (map[rctree.NodeID]float64, error) {
	m, err := Compute(t, 3)
	if err != nil {
		return nil, err
	}
	elmore := m.ElmoreDelay()
	out := make(map[rctree.NodeID]float64)
	for _, s := range t.Sinks() {
		tp, err := m.Reduce(s)
		if err == nil && tp.Stable {
			if d, err := tp.Delay(0.5); err == nil {
				out[s] = d
				continue
			}
		}
		out[s] = elmore[s]
	}
	return out, nil
}

// Delay50Buffered returns the 50% threshold delay of every sink of a
// buffered tree. A buffer restores the signal edge, so a buffered path
// decomposes into stages: each restoring gate drives one subnet, the
// subnet's 50% delay comes from its own reduced-order model, and the gate
// delays (driver and buffers, eq. 3) add — the standard stage-wise
// composition for repeated interconnect.
//
// Buffer intrinsic delays are taken from the assignment; the driver's
// from the tree. Unstable reductions fall back to the stage's Elmore
// delay, keeping the total an upper-bound-leaning estimate.
func Delay50Buffered(t *rctree.Tree, assign map[rctree.NodeID]buffers.Buffer) (map[rctree.NodeID]float64, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	// Split the tree into subnets at the buffers, exactly as the elmore
	// analyzer does, but materialize each subnet as a standalone tree so
	// the unbuffered machinery above applies.
	type stage struct {
		tree *rctree.Tree
		// fromBase maps base node → subnet node for sinks and buffer
		// inputs of this stage.
		fromBase map[rctree.NodeID]rctree.NodeID
	}
	buildStage := func(root rctree.NodeID, driverR, driverT float64) (*stage, error) {
		st := &stage{fromBase: map[rctree.NodeID]rctree.NodeID{}}
		sub := rctree.New("stage", driverR, driverT)
		st.tree = sub
		var walk func(baseParent rctree.NodeID, subParent rctree.NodeID) error
		walk = func(baseParent, subParent rctree.NodeID) error {
			for _, c := range t.Node(baseParent).Children {
				node := t.Node(c)
				if b, ok := assign[c]; ok {
					// The buffer input terminates this stage as a sink
					// with the buffer's input capacitance.
					id, err := sub.AddSink(subParent, node.Wire, "buf", b.Cin, 0, b.NoiseMargin)
					if err != nil {
						return err
					}
					st.fromBase[c] = id
					continue
				}
				if node.Kind == rctree.Sink {
					id, err := sub.AddSink(subParent, node.Wire, node.Name, node.Cap, node.RAT, node.NoiseMargin)
					if err != nil {
						return err
					}
					st.fromBase[c] = id
					continue
				}
				id, err := sub.AddInternal(subParent, node.Wire, node.BufferOK)
				if err != nil {
					return err
				}
				if err := walk(c, id); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(root, sub.Root()); err != nil {
			return nil, err
		}
		return st, nil
	}

	// arrival[v] is the 50% arrival at each restoring-stage output root
	// (the source, or a buffer's output).
	out := make(map[rctree.NodeID]float64)
	type item struct {
		root    rctree.NodeID
		atInput float64 // accumulated delay at the stage driver's input
		r, tint float64 // stage driver model
	}
	queue := []item{{root: t.Root(), atInput: 0, r: t.DriverResistance, tint: t.DriverDelay}}
	for len(queue) > 0 {
		it := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		st, err := buildStage(it.root, it.r, it.tint)
		if err != nil {
			return nil, err
		}
		if st.tree.NumSinks() == 0 {
			continue
		}
		d, err := Delay50(st.tree)
		if err != nil {
			return nil, err
		}
		// The stage's reduced model already includes the driving
		// resistance (Compute folds it into the moments); only the gate's
		// intrinsic delay is added on top.
		for base, subNode := range st.fromBase {
			stageDelay, ok := d[subNode]
			if !ok {
				continue
			}
			arr := it.atInput + it.tint + stageDelay
			if b, buffered := assign[base]; buffered {
				queue = append(queue, item{root: base, atInput: arr, r: b.R, tint: b.T})
				continue
			}
			out[base] = arr
		}
	}
	return out, nil
}
