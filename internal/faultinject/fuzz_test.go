package faultinject

import (
	"strconv"
	"strings"
	"testing"
)

// FuzzParseRates hammers the CLI fault-spec parser: whatever the input,
// it must not panic, and on success the returned map must be internally
// consistent — only injectable faults as keys, and a spec re-rendered
// from the map must parse back to the same rates (the round trip the
// bufferd/bufferfleet -faults flags and the soak harnesses rely on).
func FuzzParseRates(f *testing.F) {
	// The corners the satellite checklist calls out: empty, duplicate
	// keys, and out-of-range probabilities, plus the happy path and the
	// new replica-level spellings.
	f.Add("")
	f.Add("   ")
	f.Add("slow=0.1,cancel=0.05,panic=0.02,malformed=0.15")
	f.Add("partition=0.02,kill=0.005")
	f.Add("slow=0.5,slow=0")
	f.Add("kill=1.5")
	f.Add("cancel=-0.25")
	f.Add("slow=NaN,cancel=Inf")
	f.Add("=0.5,slow=")
	f.Add("slow 0.1;cancel 0.2")

	f.Fuzz(func(t *testing.T, spec string) {
		rates, err := ParseRates(spec)
		if err != nil {
			return
		}
		parts := make([]string, 0, len(rates))
		for fault, p := range rates {
			if fault <= FaultNone || fault >= numFaults {
				t.Fatalf("ParseRates(%q) returned invalid fault %d", spec, int(fault))
			}
			if rt, err := ParseFault(fault.String()); err != nil || rt != fault {
				t.Fatalf("fault %v does not round-trip its own name %q", fault, fault.String())
			}
			parts = append(parts, fault.String()+"="+strconv.FormatFloat(p, 'g', -1, 64))
		}
		again, err := ParseRates(strings.Join(parts, ","))
		if err != nil {
			t.Fatalf("re-rendered spec from %q failed to parse: %v", spec, err)
		}
		if len(again) != len(rates) {
			t.Fatalf("round trip dropped entries: %v vs %v", again, rates)
		}
		for fault, p := range rates {
			if got := again[fault]; got != p && !(p != p && got != got) { // NaN == NaN for this check
				t.Fatalf("round trip changed rate[%v]: %g vs %g", fault, got, p)
			}
		}
	})
}
