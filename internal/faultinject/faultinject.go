// Package faultinject is the deterministic chaos layer behind the soak
// harness: it decides, per request, whether to inject one of a small set
// of faults — a slow solve, a spurious cancellation, a worker panic, a
// malformed solver result, or (at fleet level) a replica partition or
// kill — so the service stack's failure handling can be exercised on
// demand instead of waiting for production to do it.
//
// Design constraints, in order:
//
//   - Deterministic. An Injector draws from a seeded PRNG; two runs with
//     the same seed and the same request arrival order make the same
//     decisions. No wall-clock randomness anywhere, so soak tests are
//     reproducible and the injected totals are exact.
//   - Exactly-once accounting. Each admitted request gets a Plan carrying
//     at most one fault; the fault fires at most once (Plan.Take is
//     take-once), and every consumption increments an obs counter
//     ("fault.injected.<fault>"), so a test can assert that observed
//     failures equal injected totals.
//   - Build-tag free and off by default. The hooks in guard, core, and
//     server consult the request context for a Plan; without one the cost
//     is a context value lookup at budget construction, not per loop
//     iteration, and no behavior changes.
//
// The layer deliberately injects faults at trust boundaries the stack
// already defends (budget checks, panic isolation, result validation)
// rather than corrupting arbitrary memory: the point is to prove the
// defenses work, not to crash the process in ways no defense could catch.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"buffopt/internal/obs"
)

// Fault enumerates the injectable faults. FaultNone means "this request
// runs clean".
type Fault int

const (
	FaultNone Fault = iota
	// FaultSlow delays the solve by the injector's configured delay
	// before any real work starts — the "stuck worker" scenario that
	// admission control and per-request deadlines must absorb.
	FaultSlow
	// FaultCancel makes one budget check report a spurious cancellation
	// mid-solve (guard.ErrCanceled without the caller's context actually
	// being done), which the degradation ladder must absorb by falling to
	// the next tier.
	FaultCancel
	// FaultPanic panics inside the serving worker, which the panic
	// isolation boundary must convert into a per-request failure instead
	// of a process death.
	FaultPanic
	// FaultMalformed corrupts a solver tier's result (the malformed
	// candidate-list scenario of Section IV-C gone undetected), which
	// core.Solve's post-condition validation must catch and degrade past.
	FaultMalformed
	// FaultPartition is a replica-level fault: the target replica stops
	// answering health probes and blackholes requests (connections hang
	// instead of erroring), which the fleet router's hedging and health
	// probing must detect and route around. Unlike the per-request faults
	// above, no in-process hook consumes it — the fleet soak harness draws
	// it and applies the partition itself, so it must not be configured on
	// a bufferd replica's injector (the plan would never fire and the
	// assigned/consumed books would not balance).
	FaultPartition
	// FaultKill is a replica-level fault: the target replica's process
	// exits mid-flight, abruptly closing its listener and every active
	// connection. Like FaultPartition it is consumed by the fleet chaos
	// harness, not by the request-path hooks.
	FaultKill
	// FaultRestart is a replica-level fault: the target replica's process
	// is killed and then restarted on the same address — the rolling
	// deploy / crash-loop scenario. The restarted replica warm-starts
	// from its cache snapshot, which the chaos harness may have corrupted
	// or torn in between, so the boot-time snapshot validation and the
	// peer read-through fill are what keep the fleet's answers identical
	// across the window. Like FaultPartition and FaultKill it is consumed
	// by the fleet chaos harness, not by the request-path hooks.
	FaultRestart

	numFaults
)

// ReplicaLevel reports whether f is a replica-level fault (partition,
// kill, restart): one consumed by the fleet chaos harness rather than by
// the per-request hook points in guard, core, and server.
func ReplicaLevel(f Fault) bool {
	return f == FaultPartition || f == FaultKill || f == FaultRestart
}

// String returns the fault's stable lowercase name, used in flag specs,
// metric keys ("fault.injected.<name>") and test assertions.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultSlow:
		return "slow"
	case FaultCancel:
		return "cancel"
	case FaultPanic:
		return "panic"
	case FaultMalformed:
		return "malformed"
	case FaultPartition:
		return "partition"
	case FaultKill:
		return "kill"
	case FaultRestart:
		return "restart"
	}
	return fmt.Sprintf("fault(%d)", int(f))
}

// ParseFault is the inverse of Fault.String for the injectable faults
// (everything but "none").
func ParseFault(s string) (Fault, error) {
	for f := FaultSlow; f < numFaults; f++ {
		if f.String() == s {
			return f, nil
		}
	}
	return FaultNone, fmt.Errorf("faultinject: unknown fault %q (want slow, cancel, panic, malformed, partition, kill, or restart)", s)
}

// ErrInjected marks an error as deliberately injected, so logs and tests
// can tell chaos from genuine failures with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Config configures an Injector.
type Config struct {
	// Seed seeds the decision PRNG. Two injectors with equal seeds and
	// equal Assign call sequences make identical decisions.
	Seed int64
	// Rates maps each fault to the probability that a request draws it.
	// The probabilities must be in [0, 1] and sum to at most 1; the
	// remainder is the probability of a clean request.
	Rates map[Fault]float64
	// SlowDelay is the delay FaultSlow injects. Zero disables the delay
	// even when the fault is drawn.
	SlowDelay time.Duration
}

// ParseRates parses a CLI fault spec like "slow=0.1,cancel=0.05,panic=0.02"
// into a rate map. An empty spec yields an empty map (no faults). A fault
// named twice is rejected rather than silently last-writer-wins: a spec
// like "slow=0.5,slow=0" almost certainly means an operator edited the
// wrong half, and the soak's exact accounting depends on the configured
// mix being the intended one. Rates outside [0, 1] parse here and are
// rejected by New, so the two error surfaces stay distinct (spec syntax
// vs. distribution validity).
func ParseRates(spec string) (map[Fault]float64, error) {
	rates := map[Fault]float64{}
	if strings.TrimSpace(spec) == "" {
		return rates, nil
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("faultinject: malformed rate %q (want fault=probability)", part)
		}
		f, err := ParseFault(name)
		if err != nil {
			return nil, err
		}
		if _, dup := rates[f]; dup {
			return nil, fmt.Errorf("faultinject: fault %s specified twice", name)
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: rate for %s: %w", name, err)
		}
		rates[f] = p
	}
	return rates, nil
}

// Injector draws per-request fault plans from a seeded PRNG and counts
// what it assigned and what was consumed. Safe for concurrent use.
type Injector struct {
	mu        sync.Mutex
	rng       *rand.Rand
	cum       []cumRate // cumulative distribution in fixed fault order
	slowDelay time.Duration

	assigned [numFaults]atomic.Int64
	consumed [numFaults]atomic.Int64
}

type cumRate struct {
	fault Fault
	upto  float64
}

// New validates cfg and returns an Injector.
func New(cfg Config) (*Injector, error) {
	inj := &Injector{
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		slowDelay: cfg.SlowDelay,
	}
	// Fixed iteration order keeps the cumulative distribution — and with
	// it the decision sequence — independent of map iteration order.
	total := 0.0
	for f := FaultSlow; f < numFaults; f++ {
		p, ok := cfg.Rates[f]
		if !ok {
			continue
		}
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("faultinject: rate for %s = %g outside [0, 1]", f, p)
		}
		total += p
		inj.cum = append(inj.cum, cumRate{fault: f, upto: total})
	}
	if total > 1 {
		return nil, fmt.Errorf("faultinject: fault rates sum to %g > 1", total)
	}
	for f := range cfg.Rates {
		if f <= FaultNone || f >= numFaults {
			return nil, fmt.Errorf("faultinject: rate for invalid fault %d", int(f))
		}
	}
	return inj, nil
}

// Assign draws one request's plan: at most one fault, each with its
// configured probability. A nil injector (chaos disabled) returns nil,
// as does a clean draw — so a nil *Plan always means "run clean".
func (i *Injector) Assign() *Plan {
	if i == nil {
		return nil
	}
	i.mu.Lock()
	u := i.rng.Float64()
	i.mu.Unlock()
	fault := FaultNone
	for _, c := range i.cum {
		if u < c.upto {
			fault = c.fault
			break
		}
	}
	if fault == FaultNone {
		return nil
	}
	i.assigned[fault].Add(1)
	return &Plan{inj: i, fault: fault, delay: i.slowDelay}
}

// Assigned returns how many requests were assigned the fault so far.
func (i *Injector) Assigned(f Fault) int64 {
	if i == nil || f <= FaultNone || f >= numFaults {
		return 0
	}
	return i.assigned[f].Load()
}

// Consumed returns how many assigned faults actually fired (Plan.Take
// returned true) so far. For requests that run to completion, Consumed
// equals Assigned; a request shed before its fault's hook point leaves
// the gap between the two.
func (i *Injector) Consumed(f Fault) int64 {
	if i == nil || f <= FaultNone || f >= numFaults {
		return 0
	}
	return i.consumed[f].Load()
}

// Counts renders the assigned/consumed tallies for logs.
func (i *Injector) Counts() string {
	if i == nil {
		return "faultinject: disabled"
	}
	var parts []string
	for f := FaultSlow; f < numFaults; f++ {
		if a := i.assigned[f].Load(); a > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d/%d", f, i.consumed[f].Load(), a))
		}
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "faultinject: no faults assigned"
	}
	return "faultinject: consumed/assigned " + strings.Join(parts, " ")
}

// Plan is one request's fault assignment. All methods are nil-safe; a nil
// plan never fires anything.
type Plan struct {
	inj   *Injector
	fault Fault
	delay time.Duration
	taken atomic.Bool
}

// Take reports whether this plan carries fault f and, the first time it
// does, consumes it: exactly one Take(f) across all hook points returns
// true per plan. Consumption is counted on the injector and in the obs
// registry ("fault.injected.<fault>").
func (p *Plan) Take(f Fault) bool {
	if p == nil || p.fault != f || p.taken.Swap(true) {
		return false
	}
	if p.inj != nil {
		p.inj.consumed[f].Add(1)
	}
	obs.Inc("fault.injected." + f.String())
	return true
}

// Delay returns the slow-fault delay this plan would inject.
func (p *Plan) Delay() time.Duration {
	if p == nil {
		return 0
	}
	return p.delay
}

// ------------------------------------------------------- context plumbing

type planKey struct{}

// WithPlan attaches a request's fault plan to its context; the guard,
// core, and server hook points find it with PlanFrom/Take. A nil plan
// returns ctx unchanged.
func WithPlan(ctx context.Context, p *Plan) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, planKey{}, p)
}

// PlanFrom returns the plan attached to ctx, or nil.
func PlanFrom(ctx context.Context) *Plan {
	if ctx == nil {
		return nil
	}
	p, _ := ctx.Value(planKey{}).(*Plan)
	return p
}

// Take is the one-line hook-point helper: it fires fault f if ctx carries
// a plan assigning it and the plan has not fired yet. A fired fault also
// stamps fault=<name> onto the enclosing span (when ctx carries one), so
// every injected fault maps to exactly one recorded trace — the equality
// the trace soak asserts against Injector.Consumed.
func Take(ctx context.Context, f Fault) bool {
	if PlanFrom(ctx).Take(f) {
		obs.Annotate(ctx, "fault", f.String())
		return true
	}
	return false
}
