package faultinject

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"buffopt/internal/obs"
)

func TestAssignIsDeterministic(t *testing.T) {
	cfg := Config{
		Seed:      42,
		Rates:     map[Fault]float64{FaultSlow: 0.2, FaultCancel: 0.2, FaultPanic: 0.1, FaultMalformed: 0.2},
		SlowDelay: time.Millisecond,
	}
	draw := func() []Fault {
		inj, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq := make([]Fault, 200)
		for i := range seq {
			if p := inj.Assign(); p != nil {
				seq[i] = p.fault
			}
		}
		return seq
	}
	a, b := draw(), draw()
	sawFault := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs between equal-seed injectors: %v vs %v", i, a[i], b[i])
		}
		if a[i] != FaultNone {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatal("200 draws at 70% total rate produced no faults")
	}
}

func TestPlanTakeOnce(t *testing.T) {
	inj, err := New(Config{Seed: 1, Rates: map[Fault]float64{FaultCancel: 1}})
	if err != nil {
		t.Fatal(err)
	}
	p := inj.Assign()
	if p == nil {
		t.Fatal("rate-1 fault not assigned")
	}
	if p.Take(FaultSlow) {
		t.Fatal("Take fired the wrong fault")
	}
	// Concurrent hook points may race to consume the same plan; exactly
	// one must win.
	var wg sync.WaitGroup
	fired := make(chan bool, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fired <- p.Take(FaultCancel)
		}()
	}
	wg.Wait()
	close(fired)
	n := 0
	for f := range fired {
		if f {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("Take fired %d times, want exactly 1", n)
	}
	if got := inj.Consumed(FaultCancel); got != 1 {
		t.Fatalf("Consumed(cancel) = %d, want 1", got)
	}
	if got := inj.Assigned(FaultCancel); got != 1 {
		t.Fatalf("Assigned(cancel) = %d, want 1", got)
	}
}

func TestConsumedCountsMatchObsCounters(t *testing.T) {
	old := obs.Default()
	obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(old)

	inj, err := New(Config{Seed: 7, Rates: map[Fault]float64{FaultPanic: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ctx := WithPlan(context.Background(), inj.Assign())
		Take(ctx, FaultPanic)
	}
	snap := obs.Default().Snapshot()
	if got, want := snap.Counters["fault.injected.panic"], inj.Consumed(FaultPanic); got != want {
		t.Fatalf("obs counter %d != injector consumed %d", got, want)
	}
	if inj.Consumed(FaultPanic) != inj.Assigned(FaultPanic) {
		t.Fatalf("consumed %d != assigned %d despite every plan being taken",
			inj.Consumed(FaultPanic), inj.Assigned(FaultPanic))
	}
	if inj.Consumed(FaultPanic) == 0 {
		t.Fatal("rate-0.5 fault never fired in 100 draws")
	}
}

func TestNilSafety(t *testing.T) {
	var inj *Injector
	if p := inj.Assign(); p != nil {
		t.Fatal("nil injector assigned a plan")
	}
	if Take(context.Background(), FaultSlow) {
		t.Fatal("plan-free context fired a fault")
	}
	if Take(nil, FaultSlow) { //nolint:staticcheck // nil ctx is the point
		t.Fatal("nil context fired a fault")
	}
	var p *Plan
	if p.Take(FaultSlow) || p.Delay() != 0 {
		t.Fatal("nil plan is not inert")
	}
	if inj.Counts() == "" || inj.Assigned(FaultSlow) != 0 || inj.Consumed(FaultSlow) != 0 {
		t.Fatal("nil injector accounting not inert")
	}
}

func TestParseRates(t *testing.T) {
	rates, err := ParseRates("slow=0.1, cancel=0.05,panic=0.02,malformed=0.3")
	if err != nil {
		t.Fatal(err)
	}
	want := map[Fault]float64{FaultSlow: 0.1, FaultCancel: 0.05, FaultPanic: 0.02, FaultMalformed: 0.3}
	if len(rates) != len(want) {
		t.Fatalf("got %d rates, want %d", len(rates), len(want))
	}
	for f, p := range want {
		if rates[f] != p {
			t.Fatalf("rate[%s] = %g, want %g", f, rates[f], p)
		}
	}
	if _, err := ParseRates("bogus=0.1"); err == nil {
		t.Fatal("unknown fault accepted")
	}
	if _, err := ParseRates("slow"); err == nil {
		t.Fatal("missing probability accepted")
	}
	if _, err := ParseRates("slow=x"); err == nil {
		t.Fatal("non-numeric probability accepted")
	}
	if _, err := ParseRates("slow=0.5,slow=0"); err == nil {
		t.Fatal("duplicate fault accepted")
	}
	if empty, err := ParseRates("  "); err != nil || len(empty) != 0 {
		t.Fatalf("empty spec: %v, %v", empty, err)
	}
	// The replica-level spellings parse like any other fault.
	rates, err = ParseRates("partition=0.02,kill=0.005")
	if err != nil {
		t.Fatal(err)
	}
	if rates[FaultPartition] != 0.02 || rates[FaultKill] != 0.005 {
		t.Fatalf("replica-level rates = %v", rates)
	}
}

func TestNewRejectsBadRates(t *testing.T) {
	if _, err := New(Config{Rates: map[Fault]float64{FaultSlow: -0.1}}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := New(Config{Rates: map[Fault]float64{FaultSlow: 0.8, FaultPanic: 0.5}}); err == nil {
		t.Fatal("rates summing past 1 accepted")
	}
	if _, err := New(Config{Rates: map[Fault]float64{FaultNone: 0.5}}); err == nil {
		t.Fatal("rate for FaultNone accepted")
	}
}

func TestParseFaultRoundTrip(t *testing.T) {
	for f := FaultSlow; f < numFaults; f++ {
		got, err := ParseFault(f.String())
		if err != nil || got != f {
			t.Fatalf("ParseFault(%q) = %v, %v", f.String(), got, err)
		}
	}
	// The new replica-level spellings are in the round-trip set.
	for _, want := range []struct {
		name string
		f    Fault
	}{{"partition", FaultPartition}, {"kill", FaultKill}, {"restart", FaultRestart}} {
		got, err := ParseFault(want.name)
		if err != nil || got != want.f {
			t.Fatalf("ParseFault(%q) = %v, %v; want %v", want.name, got, err, want.f)
		}
		if !ReplicaLevel(got) {
			t.Fatalf("ReplicaLevel(%v) = false", got)
		}
	}
	for f := FaultSlow; f <= FaultMalformed; f++ {
		if ReplicaLevel(f) {
			t.Fatalf("ReplicaLevel(%v) = true for a request-level fault", f)
		}
	}
	if _, err := ParseFault("none"); err == nil {
		t.Fatal(`ParseFault("none") should be rejected: it is not injectable`)
	}
	// The unknown-fault error names the full current vocabulary, so a typo
	// in an operator's -faults spec points at every valid spelling.
	_, err := ParseFault("bogus")
	if err == nil {
		t.Fatal("unknown fault accepted")
	}
	for _, word := range []string{"slow", "cancel", "panic", "malformed", "partition", "kill", "restart"} {
		if !strings.Contains(err.Error(), word) {
			t.Fatalf("unknown-fault error %q does not name %q", err, word)
		}
	}
}
