package steiner

import (
	"math"
	"testing"
	"testing/quick"

	"buffopt/internal/elmore"
	"buffopt/internal/rctree"
)

func TestDist(t *testing.T) {
	if got := Dist(Point{1, 2}, Point{4, -2}); got != 7 {
		t.Errorf("Dist = %g, want 7", got)
	}
	if got := Dist(Point{1, 1}, Point{1, 1}); got != 0 {
		t.Errorf("Dist same point = %g", got)
	}
}

func TestMSTSimple(t *testing.T) {
	// Three collinear points: MST length = 4.
	pts := []Point{{0, 0}, {2, 0}, {4, 0}}
	if got := MSTLength(pts); got != 4 {
		t.Errorf("MSTLength = %g, want 4", got)
	}
	parents := mstParents(pts)
	if parents[0] != -1 {
		t.Errorf("root parent = %d", parents[0])
	}
	// All nodes reachable.
	for i := 1; i < len(parents); i++ {
		if parents[i] < 0 {
			t.Errorf("node %d unreached", i)
		}
	}
}

func TestOneSteinerCross(t *testing.T) {
	// The classic cross: 4 terminals around (1,1). MST = 6, RSMT = 4 via
	// the center Steiner point.
	terms := []Point{{1, 0}, {0, 1}, {2, 1}, {1, 2}}
	if got := MSTLength(terms); got != 6 {
		t.Fatalf("MST = %g, want 6", got)
	}
	pts := IteratedOneSteiner(terms)
	if got := MSTLength(pts); got != 4 {
		t.Errorf("1-Steiner length = %g, want 4", got)
	}
	if len(pts) != 5 {
		t.Errorf("point count = %d, want 5 (one Steiner point)", len(pts))
	}
	if len(pts) == 5 && (pts[4] != Point{1, 1}) {
		t.Errorf("Steiner point at %+v, want (1,1)", pts[4])
	}
}

func TestOneSteinerNeverWorseThanMST(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 6 {
			return true
		}
		if len(raw) > 20 {
			raw = raw[:20]
		}
		var terms []Point
		for i := 0; i+1 < len(raw); i += 2 {
			terms = append(terms, Point{float64(raw[i] % 64), float64(raw[i+1] % 64)})
		}
		mst := MSTLength(terms)
		st := MSTLength(IteratedOneSteiner(terms))
		// RSMT heuristic never exceeds the MST, and the Hwang bound says
		// the MST is at most 1.5× the RSMT, so st ≥ mst/1.5 − ε.
		return st <= mst+1e-9 && st >= mst/1.5-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRouteBuildsValidTree(t *testing.T) {
	tech := Tech{RPerLen: 80e3, CPerLen: 200e-12} // 80 Ω/mm, 200 fF/mm
	net := Net{
		Name:    "n1",
		Driver:  Point{0, 0},
		DriverR: 150,
		DriverT: 50e-12,
		Sinks: []Sink{
			{Name: "a", At: Point{1e-3, 0.5e-3}, Cap: 20e-15, RAT: 1e-9, NoiseMargin: 0.8},
			{Name: "b", At: Point{0.5e-3, 1e-3}, Cap: 15e-15, RAT: 1e-9, NoiseMargin: 0.8},
			{Name: "c", At: Point{-0.4e-3, 0.8e-3}, Cap: 25e-15, RAT: 1e-9, NoiseMargin: 0.8},
		},
	}
	for _, alg := range []Algorithm{RectilinearMST, OneSteiner} {
		tr, err := Route(net, tech, alg)
		if err != nil {
			t.Fatalf("alg %v: %v", alg, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("alg %v: invalid tree: %v", alg, err)
		}
		if !tr.IsBinary() {
			t.Errorf("alg %v: tree not binary", alg)
		}
		if got := tr.NumSinks(); got != 3 {
			t.Errorf("alg %v: %d sinks, want 3", alg, got)
		}
		// Wirelength is at least the farthest sink's distance and at most
		// the sum of all direct driver-sink distances.
		minWL := 0.0
		sumWL := 0.0
		for _, s := range net.Sinks {
			d := Dist(net.Driver, s.At)
			sumWL += d
			if d > minWL {
				minWL = d
			}
		}
		wl := tr.TotalWireLength()
		if wl < minWL-1e-12 || wl > sumWL+1e-12 {
			t.Errorf("alg %v: wirelength %g outside [%g, %g]", alg, wl, minWL, sumWL)
		}
		// Electrical totals consistent with geometry.
		if got, want := tr.TotalWireCap(), wl*tech.CPerLen; math.Abs(got-want) > 1e-18 {
			t.Errorf("alg %v: wire cap %g, want %g", alg, got, want)
		}
		// The tree must be analyzable.
		an := elmore.Analyze(tr, nil)
		for _, s := range tr.Sinks() {
			if an.Arrival[s] <= 0 {
				t.Errorf("alg %v: sink %d has arrival %g", alg, s, an.Arrival[s])
			}
		}
	}
}

func TestRouteOneSteinerNoLongerThanMST(t *testing.T) {
	net := Net{
		Name: "cross", Driver: Point{1e-3, 0}, DriverR: 100,
		Sinks: []Sink{
			{Name: "a", At: Point{0, 1e-3}, Cap: 1e-15, NoiseMargin: 1},
			{Name: "b", At: Point{2e-3, 1e-3}, Cap: 1e-15, NoiseMargin: 1},
			{Name: "c", At: Point{1e-3, 2e-3}, Cap: 1e-15, NoiseMargin: 1},
		},
	}
	tech := Tech{RPerLen: 80e3, CPerLen: 200e-12}
	mstTree, err := Route(net, tech, RectilinearMST)
	if err != nil {
		t.Fatal(err)
	}
	stTree, err := Route(net, tech, OneSteiner)
	if err != nil {
		t.Fatal(err)
	}
	if stTree.TotalWireLength() > mstTree.TotalWireLength()+1e-12 {
		t.Errorf("1-Steiner wirelength %g exceeds MST %g",
			stTree.TotalWireLength(), mstTree.TotalWireLength())
	}
	// The cross RSMT is 4 mm.
	if got := stTree.TotalWireLength(); math.Abs(got-4e-3) > 1e-9 {
		t.Errorf("cross RSMT length = %g, want 4e-3", got)
	}
}

func TestRouteTwoPin(t *testing.T) {
	net := Net{
		Name: "p2p", Driver: Point{0, 0}, DriverR: 100,
		Sinks: []Sink{{Name: "s", At: Point{3e-3, 4e-3}, Cap: 10e-15, NoiseMargin: 0.8}},
	}
	tr, err := Route(net, Tech{RPerLen: 80e3, CPerLen: 200e-12}, OneSteiner)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.TotalWireLength(); math.Abs(got-7e-3) > 1e-12 {
		t.Errorf("two-pin length = %g, want 7e-3", got)
	}
	if got := tr.NumSinks(); got != 1 {
		t.Errorf("sinks = %d", got)
	}
}

func TestRouteErrors(t *testing.T) {
	if _, err := Route(Net{Name: "x"}, Tech{}, RectilinearMST); err == nil {
		t.Errorf("sink-less net accepted")
	}
	bad := Net{Name: "x", Sinks: []Sink{{Name: "s", Cap: 1e-15, NoiseMargin: 1}}}
	if _, err := Route(bad, Tech{RPerLen: -1}, RectilinearMST); err == nil {
		t.Errorf("negative tech accepted")
	}
}

func TestRouteCoincidentPins(t *testing.T) {
	// Sinks on top of each other and on top of the driver must not break
	// tree construction.
	net := Net{
		Name: "coin", Driver: Point{0, 0}, DriverR: 100,
		Sinks: []Sink{
			{Name: "a", At: Point{0, 0}, Cap: 1e-15, NoiseMargin: 1},
			{Name: "b", At: Point{1e-3, 0}, Cap: 1e-15, NoiseMargin: 1},
			{Name: "c", At: Point{1e-3, 0}, Cap: 1e-15, NoiseMargin: 1},
		},
	}
	tr, err := Route(net, Tech{RPerLen: 80e3, CPerLen: 200e-12}, RectilinearMST)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.TotalWireLength(); math.Abs(got-1e-3) > 1e-12 {
		t.Errorf("wirelength = %g, want 1e-3", got)
	}
	_ = rctree.None
}
