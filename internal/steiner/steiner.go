// Package steiner constructs rectilinear routing-tree estimates for nets
// given only pin placements. The paper assumes "the input routing tree
// topology is fixed or a Steiner estimation has been computed" (Section
// II); since Go has no EDA/Steiner libraries, this package provides that
// substrate from scratch:
//
//   - a rectilinear minimum spanning tree (Prim, O(n²)), and
//   - the iterated 1-Steiner heuristic of Kahng and Robins, which
//     repeatedly adds the Hanan-grid point that most reduces the spanning
//     cost — a standard RSMT approximation,
//
// plus L-shaped edge embedding and conversion into an rctree.Tree with
// per-unit-length RC parasitics.
package steiner

import (
	"math"
	"sort"

	"buffopt/internal/guard"
	"buffopt/internal/obs"
)

// Point is a pin or Steiner-point location, in meters.
type Point struct {
	X, Y float64
}

// Dist returns the rectilinear (Manhattan) distance between two points.
func Dist(a, b Point) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// mstParents computes a minimum spanning tree over pts under rectilinear
// distance with Prim's algorithm, rooted at pts[0]. parents[0] = -1.
func mstParents(pts []Point) []int {
	n := len(pts)
	parents := make([]int, n)
	if n == 0 {
		return parents
	}
	const unseen = -2
	for i := range parents {
		parents[i] = unseen
	}
	parents[0] = -1
	dist := make([]float64, n)
	from := make([]int, n)
	inTree := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[0] = 0
	for iter := 0; iter < n; iter++ {
		best, bd := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bd {
				best, bd = i, dist[i]
			}
		}
		if best < 0 {
			break
		}
		inTree[best] = true
		if best != 0 {
			parents[best] = from[best]
		}
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			if d := Dist(pts[best], pts[i]); d < dist[i] {
				dist[i] = d
				from[i] = best
			}
		}
	}
	return parents
}

// treeLength sums the rectilinear edge lengths of a parent-array tree.
func treeLength(pts []Point, parents []int) float64 {
	total := 0.0
	for i, p := range parents {
		if p >= 0 {
			total += Dist(pts[i], pts[p])
		}
	}
	return total
}

// MSTLength returns the rectilinear MST cost of the point set.
func MSTLength(pts []Point) float64 {
	return treeLength(pts, mstParents(pts))
}

// hananGrid returns the Hanan grid of the terminals: every (x, y) with x
// and y drawn from terminal coordinates. Hanan's theorem guarantees an
// optimal RSMT using only these points.
func hananGrid(terms []Point) []Point {
	xsSet := map[float64]bool{}
	ysSet := map[float64]bool{}
	for _, p := range terms {
		xsSet[p.X] = true
		ysSet[p.Y] = true
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	ys := make([]float64, 0, len(ysSet))
	for y := range ysSet {
		ys = append(ys, y)
	}
	// Sorted order keeps candidate tie-breaking — and therefore the whole
	// routing result — deterministic.
	sort.Float64s(xs)
	sort.Float64s(ys)
	out := make([]Point, 0, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			out = append(out, Point{x, y})
		}
	}
	return out
}

// IteratedOneSteiner runs the iterated 1-Steiner heuristic: starting from
// the terminals, repeatedly add the Hanan-grid candidate that maximally
// reduces the MST cost, until no candidate helps. It returns the terminal
// set extended with the chosen Steiner points (terminals first, in their
// original order).
func IteratedOneSteiner(terms []Point) []Point {
	pts, _ := IteratedOneSteinerBudget(terms, nil)
	return pts
}

// IteratedOneSteinerBudget is IteratedOneSteiner under a resource budget.
// Every Hanan candidate evaluation costs an O(n²) MST build, so the budget
// is polled once per candidate; on cancellation the points accumulated so
// far are returned alongside the error — still a valid (if longer) topology,
// so callers can degrade to it.
func IteratedOneSteinerBudget(terms []Point, b *guard.Budget) ([]Point, error) {
	pts := append([]Point(nil), terms...)
	if len(terms) < 3 {
		return pts, nil
	}
	cands := hananGrid(terms)
	pacer := b.Pacer(8)
	var iters, removals int64
	defer func() {
		obs.Add("steiner.onesteiner.iterations", iters)
		obs.Add("steiner.points.removed", removals)
	}()
	// A Steiner point is useful at most n−2 times.
	for iter := 0; iter < len(terms)-2; iter++ {
		iters++
		base := MSTLength(pts)
		bestGain := 1e-12 * base
		bestIdx := -1
		for ci, c := range cands {
			if err := pacer.Tick(); err != nil {
				return pts, err
			}
			trial := append(pts, c)
			if gain := base - MSTLength(trial); gain > bestGain {
				bestGain = gain
				bestIdx = ci
			}
		}
		if bestIdx < 0 {
			break
		}
		pts = append(pts, cands[bestIdx])
	}
	// Drop Steiner points that ended up with degree ≤ 2 in the final MST
	// (they no longer shorten anything; a degree-2 point is a bend, which
	// edge embedding recreates anyway).
	for {
		parents := mstParents(pts)
		deg := make([]int, len(pts))
		for i, p := range parents {
			if p >= 0 {
				deg[i]++
				deg[p]++
			}
		}
		removed := false
		for i := len(pts) - 1; i >= len(terms); i-- {
			if deg[i] <= 2 {
				pts = append(pts[:i], pts[i+1:]...)
				removed = true
				removals++
				break
			}
		}
		if !removed {
			break
		}
	}
	return pts, nil
}
