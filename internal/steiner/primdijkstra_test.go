package steiner

import (
	"math"
	"math/rand"
	"testing"

	"buffopt/internal/elmore"
	"buffopt/internal/rctree"
)

// randomNet builds a random multi-sink net for the PD tests.
func randomNet(rng *rand.Rand, sinks int) Net {
	net := Net{Name: "pd", Driver: Point{}, DriverR: 200}
	for i := 0; i < sinks; i++ {
		net.Sinks = append(net.Sinks, Sink{
			Name: "s",
			At:   Point{X: rng.Float64() * 4e-3, Y: rng.Float64() * 4e-3},
			Cap:  20e-15, NoiseMargin: 0.8, RAT: 1e-9,
		})
	}
	return net
}

var pdTech = Tech{RPerLen: 80e3, CPerLen: 200e-12}

// radius returns the longest driver-to-sink routed path length.
func radius(tr *rctree.Tree) float64 {
	dist := make([]float64, tr.Len())
	max := 0.0
	for _, v := range tr.Preorder() {
		if v != tr.Root() {
			dist[v] = dist[tr.Node(v).Parent] + tr.Node(v).Wire.Length
		}
		if tr.Node(v).Kind == rctree.Sink && dist[v] > max {
			max = dist[v]
		}
	}
	return max
}

func TestPrimDijkstraEndpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		net := randomNet(rng, 2+rng.Intn(8))
		mst, err := Route(net, pdTech, RectilinearMST)
		if err != nil {
			t.Fatal(err)
		}
		pd0, err := RoutePrimDijkstra(net, pdTech, 0)
		if err != nil {
			t.Fatal(err)
		}
		// c = 0 is Prim: identical wirelength.
		if math.Abs(pd0.TotalWireLength()-mst.TotalWireLength()) > 1e-12 {
			t.Fatalf("trial %d: PD(0) length %g, MST %g", trial,
				pd0.TotalWireLength(), mst.TotalWireLength())
		}
		// c = 1 is the shortest-path tree: every sink at its direct
		// rectilinear distance.
		pd1, err := RoutePrimDijkstra(net, pdTech, 1)
		if err != nil {
			t.Fatal(err)
		}
		var far float64
		for _, s := range net.Sinks {
			if d := Dist(net.Driver, s.At); d > far {
				far = d
			}
		}
		if math.Abs(radius(pd1)-far) > 1e-12 {
			t.Fatalf("trial %d: PD(1) radius %g, direct max %g", trial, radius(pd1), far)
		}
	}
}

func TestPrimDijkstraTradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 40; trial++ {
		net := randomNet(rng, 3+rng.Intn(7))
		l0, err := RoutePrimDijkstra(net, pdTech, 0)
		if err != nil {
			t.Fatal(err)
		}
		l1, err := RoutePrimDijkstra(net, pdTech, 1)
		if err != nil {
			t.Fatal(err)
		}
		// The endpoints bracket every blend: wirelength minimal at c=0,
		// radius minimal at c=1.
		for _, c := range []float64{0.25, 0.5, 0.75} {
			tr, err := RoutePrimDijkstra(net, pdTech, c)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("trial %d c=%g: %v", trial, c, err)
			}
			if tr.TotalWireLength() < l0.TotalWireLength()-1e-12 {
				t.Errorf("trial %d: PD(%g) beat the MST wirelength", trial, c)
			}
			if radius(tr) < radius(l1)-1e-12 {
				t.Errorf("trial %d: PD(%g) beat the shortest-path radius", trial, c)
			}
		}
	}
}

func TestPrimDijkstraDelaySweep(t *testing.T) {
	// The PD trade-off on Elmore delay is genuinely two-sided: the SPT
	// minimizes path resistance but carries more capacitance, so with a
	// resistive driver neither extreme dominates. Sweep c on random nets
	// and check that the sweep is well-formed and that the best blend is
	// never worse than both extremes (it is one of them in the worst
	// case).
	rng := rand.New(rand.NewSource(73))
	intermediateWins := 0
	for trial := 0; trial < 60; trial++ {
		net := randomNet(rng, 4+rng.Intn(6))
		best := math.Inf(1)
		bestC := -1.0
		var d0, d1 float64
		for _, c := range []float64{0, 0.25, 0.5, 0.75, 1} {
			tr, err := RoutePrimDijkstra(net, pdTech, c)
			if err != nil {
				t.Fatal(err)
			}
			d := elmore.Analyze(tr, nil).MaxDelay
			if d <= 0 {
				t.Fatalf("trial %d c=%g: non-positive delay %g", trial, c, d)
			}
			switch c {
			case 0:
				d0 = d
			case 1:
				d1 = d
			}
			if d < best {
				best, bestC = d, c
			}
		}
		if best > math.Min(d0, d1)+1e-18 {
			t.Fatalf("trial %d: sweep minimum %g worse than endpoints %g/%g", trial, best, d0, d1)
		}
		if bestC != 0 && bestC != 1 {
			intermediateWins++
		}
	}
	// The blend must actually matter on a reasonable fraction of nets —
	// that is the Prim–Dijkstra result.
	if intermediateWins == 0 {
		t.Errorf("no net preferred an intermediate blend; the trade-off is degenerate")
	}
}

func TestPrimDijkstraErrors(t *testing.T) {
	net := randomNet(rand.New(rand.NewSource(1)), 3)
	if _, err := RoutePrimDijkstra(net, pdTech, -0.1); err == nil {
		t.Errorf("c < 0 accepted")
	}
	if _, err := RoutePrimDijkstra(net, pdTech, 1.1); err == nil {
		t.Errorf("c > 1 accepted")
	}
	if _, err := RoutePrimDijkstra(net, pdTech, math.NaN()); err == nil {
		t.Errorf("NaN accepted")
	}
	if _, err := RoutePrimDijkstra(Net{Name: "empty"}, pdTech, 0.5); err == nil {
		t.Errorf("sink-less net accepted")
	}
}
