package steiner_test

import (
	"fmt"

	"buffopt/internal/steiner"
)

// ExampleIteratedOneSteiner solves the classic cross: four terminals
// around a missing center whose RSMT needs one Steiner point.
func ExampleIteratedOneSteiner() {
	terms := []steiner.Point{{X: 1, Y: 0}, {X: 0, Y: 1}, {X: 2, Y: 1}, {X: 1, Y: 2}}
	fmt.Printf("MST: %.0f\n", steiner.MSTLength(terms))
	pts := steiner.IteratedOneSteiner(terms)
	fmt.Printf("RSMT: %.0f via Steiner point (%.0f, %.0f)\n",
		steiner.MSTLength(pts), pts[4].X, pts[4].Y)
	// Output:
	// MST: 6
	// RSMT: 4 via Steiner point (1, 1)
}

// ExampleRoute turns pin placements into an analyzable RC tree.
func ExampleRoute() {
	net := steiner.Net{
		Name:    "demo",
		Driver:  steiner.Point{},
		DriverR: 200,
		Sinks: []steiner.Sink{
			{Name: "a", At: steiner.Point{X: 2e-3, Y: 1e-3}, Cap: 20e-15, NoiseMargin: 0.8},
			{Name: "b", At: steiner.Point{X: 1e-3, Y: 2e-3}, Cap: 20e-15, NoiseMargin: 0.8},
		},
	}
	tr, err := steiner.Route(net, steiner.Tech{RPerLen: 80e3, CPerLen: 200e-12}, steiner.OneSteiner)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d sinks, %.1f mm routed\n", tr.NumSinks(), tr.TotalWireLength()*1e3)
	// Output: 2 sinks, 4.0 mm routed
}
