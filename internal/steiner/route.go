package steiner

import (
	"fmt"

	"buffopt/internal/guard"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
)

// Tech holds the per-unit-length interconnect parasitics used to convert
// geometric wire lengths into RC values.
type Tech struct {
	RPerLen float64 // Ω/m
	CPerLen float64 // F/m
}

// Wire converts a length into an rctree.Wire under this technology.
func (t Tech) Wire(length float64) rctree.Wire {
	return rctree.Wire{R: t.RPerLen * length, C: t.CPerLen * length, Length: length}
}

// Sink is one net terminal to route to.
type Sink struct {
	Name        string
	At          Point
	Cap         float64 // pin capacitance, F
	RAT         float64 // required arrival time, s
	NoiseMargin float64 // V
}

// Net describes an unrouted net: driver placement and model plus sinks.
type Net struct {
	Name    string
	Driver  Point
	DriverR float64 // driver output resistance, Ω
	DriverT float64 // driver intrinsic delay, s
	Sinks   []Sink
}

// Algorithm selects the topology generator.
type Algorithm int

const (
	// RectilinearMST embeds a Prim rectilinear MST with L-shaped edges.
	RectilinearMST Algorithm = iota
	// OneSteiner embeds the iterated 1-Steiner tree (shorter, slower).
	OneSteiner
)

// Route builds an rctree.Tree estimate for the net: topology from the
// selected heuristic, L-shaped edge embedding (a corner Steiner node per
// bent edge), and RC parasitics from tech. Corner and Steiner nodes are
// legal buffer sites. The resulting tree is binarized.
func Route(net Net, tech Tech, alg Algorithm) (*rctree.Tree, error) {
	return RouteBudget(net, tech, alg, nil)
}

// RouteBudget is Route under a resource budget: the tree-node cap is
// checked against the terminal count up front, and the 1-Steiner search is
// polled for cancellation. A nil budget imposes no limits.
func RouteBudget(net Net, tech Tech, alg Algorithm, b *guard.Budget) (*rctree.Tree, error) {
	defer obs.Timer("steiner.route")()
	if len(net.Sinks) == 0 {
		return nil, fmt.Errorf("steiner: net %q has no sinks: %w", net.Name, guard.ErrInvalidInput)
	}
	if tech.RPerLen < 0 || tech.CPerLen < 0 {
		return nil, fmt.Errorf("steiner: negative technology parasitics %+v: %w", tech, guard.ErrInvalidInput)
	}
	if err := b.CheckTreeNodes(len(net.Sinks) + 1); err != nil {
		return nil, err
	}

	// Terminal 0 is the driver; terminals 1..len(Sinks) are sinks.
	terms := make([]Point, 0, len(net.Sinks)+1)
	terms = append(terms, net.Driver)
	for _, s := range net.Sinks {
		terms = append(terms, s.At)
	}
	pts := terms
	if alg == OneSteiner {
		var err error
		if pts, err = IteratedOneSteinerBudget(terms, b); err != nil {
			return nil, err
		}
	}
	return buildTree(net, tech, pts, mstParents(pts))
}

// buildTree orients a spanning tree (parent array over pts, rooted at
// index 0 = the driver) from the driver and converts it into a binarized,
// validated rctree with L-shaped edge embedding.
func buildTree(net Net, tech Tech, pts []Point, parents []int) (*rctree.Tree, error) {
	children := make([][]int, len(pts))
	for i, p := range parents {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}

	tr := rctree.New(net.Name, net.DriverR, net.DriverT)
	tr.Node(tr.Root()).X = net.Driver.X
	tr.Node(tr.Root()).Y = net.Driver.Y

	ids := make([]rctree.NodeID, len(pts))
	ids[0] = tr.Root()
	stack := []int{0}
	for len(stack) > 0 {
		pi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ci := range children[pi] {
			id, err := attach(tr, ids[pi], pts[pi], pts[ci], net, ci, len(children[ci]) > 0, tech)
			if err != nil {
				return nil, err
			}
			ids[ci] = id
			stack = append(stack, ci)
		}
	}
	tr.Binarize()
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("steiner: built an invalid tree for %q: %w", net.Name, err)
	}
	return tr, nil
}

// attach adds the tree node for point index ci (with an L-shaped corner
// node when the edge bends). Point indices above the terminal count are
// Steiner points and become internal nodes. A sink that the spanning tree
// routes through (hasChildren) becomes an internal tap node with the sink
// pin hanging off it on a zero-length wire, since sinks must be leaves.
// The returned ID is the node downstream wires should attach to.
func attach(tr *rctree.Tree, parent rctree.NodeID, from, to Point, net Net, ci int, hasChildren bool, tech Tech) (rctree.NodeID, error) {
	at := parent
	// L-shape: horizontal first, then vertical, via corner (to.X, from.Y).
	if to.X != from.X && to.Y != from.Y {
		corner := Point{to.X, from.Y}
		id, err := tr.AddInternal(at, tech.Wire(Dist(from, corner)), true)
		if err != nil {
			return rctree.None, err
		}
		tr.Node(id).X, tr.Node(id).Y = corner.X, corner.Y
		at = id
		from = corner
	}
	w := tech.Wire(Dist(from, to))
	isSink := ci >= 1 && ci <= len(net.Sinks)
	if isSink && !hasChildren {
		s := net.Sinks[ci-1]
		id, err := tr.AddSink(at, w, s.Name, s.Cap, s.RAT, s.NoiseMargin)
		if err != nil {
			return rctree.None, err
		}
		tr.Node(id).X, tr.Node(id).Y = to.X, to.Y
		return id, nil
	}
	id, err := tr.AddInternal(at, w, true)
	if err != nil {
		return rctree.None, err
	}
	tr.Node(id).X, tr.Node(id).Y = to.X, to.Y
	if isSink {
		s := net.Sinks[ci-1]
		pin, err := tr.AddSink(id, rctree.Wire{}, s.Name, s.Cap, s.RAT, s.NoiseMargin)
		if err != nil {
			return rctree.None, err
		}
		tr.Node(pin).X, tr.Node(pin).Y = to.X, to.Y
	}
	return id, nil
}
