package steiner

import (
	"fmt"
	"math"

	"buffopt/internal/rctree"
)

// primDijkstraParents computes the Prim–Dijkstra blend tree over pts,
// rooted at pts[0]: node u joins the tree through the neighbor v
// minimizing c·pathlen(v) + dist(v, u), where pathlen is the tree path
// length from the root. c = 0 is exactly Prim's MST (minimum wirelength);
// c = 1 is Dijkstra's shortest-path tree (minimum source-sink radius);
// intermediate c trades wirelength for radius — the classic
// Alpert–Hu–Huang–Kahng construction for timing-driven routing trees.
func primDijkstraParents(pts []Point, c float64) []int {
	n := len(pts)
	parents := make([]int, n)
	if n == 0 {
		return parents
	}
	parents[0] = -1
	inTree := make([]bool, n)
	pathLen := make([]float64, n)
	key := make([]float64, n)
	from := make([]int, n)
	for i := range key {
		key[i] = math.Inf(1)
	}
	key[0] = 0
	for iter := 0; iter < n; iter++ {
		best, bk := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && key[i] < bk {
				best, bk = i, key[i]
			}
		}
		if best < 0 {
			break
		}
		inTree[best] = true
		if best != 0 {
			parents[best] = from[best]
			pathLen[best] = pathLen[from[best]] + Dist(pts[from[best]], pts[best])
		}
		for i := 0; i < n; i++ {
			if inTree[i] {
				continue
			}
			if k := c*pathLen[best] + Dist(pts[best], pts[i]); k < key[i] {
				key[i] = k
				from[i] = best
			}
		}
	}
	return parents
}

// RoutePrimDijkstra builds a routing tree with the Prim–Dijkstra blend:
// c = 0 minimizes wirelength (identical topology to RectilinearMST),
// c = 1 minimizes every source-sink path (a shortest-path star under
// rectilinear distance), and intermediate values interpolate — useful
// when a distant sink is timing-critical and the MST's detours cost too
// much delay. Edges are embedded with L-shapes as in Route.
func RoutePrimDijkstra(net Net, tech Tech, c float64) (*rctree.Tree, error) {
	if c < 0 || c > 1 || math.IsNaN(c) {
		return nil, fmt.Errorf("steiner: blend parameter %g outside [0, 1]", c)
	}
	if len(net.Sinks) == 0 {
		return nil, fmt.Errorf("steiner: net %q has no sinks", net.Name)
	}
	terms := make([]Point, 0, len(net.Sinks)+1)
	terms = append(terms, net.Driver)
	for _, s := range net.Sinks {
		terms = append(terms, s.At)
	}
	parents := primDijkstraParents(terms, c)
	return buildTree(net, tech, terms, parents)
}
