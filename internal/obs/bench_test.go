package obs

import (
	"context"
	"testing"
)

// The enabled/disabled pairs below quantify the cost of leaving telemetry
// compiled into the hot paths: the disabled variants are the no-op
// registry baseline the acceptance criteria compare against.

func BenchmarkCounterAddEnabled(b *testing.B) {
	old := Default()
	SetDefault(NewRegistry())
	defer SetDefault(old)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add("bench.counter", 1)
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	old := Default()
	SetDefault(nil)
	defer SetDefault(old)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add("bench.counter", 1)
	}
}

func BenchmarkCounterHandleAdd(b *testing.B) {
	// The amortized pattern hot loops use: resolve the handle once, add
	// locally-accumulated totals.
	r := NewRegistry()
	c := r.Counter("bench.counter")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DurationBuckets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) % 1_000_000)
	}
}

// spanAllocsEnabled/Disabled are the pinned per-span allocation budgets:
// the metrics-only fast path pays exactly the handle plus the three
// metric-name concatenations in finish (no dotted path, no context
// value), and the disabled path pays nothing at all. A regression here
// is a regression on every instrumented call site in the hot path, so
// both the benchmarks and TestSpanAllocBudget assert them.
const (
	spanAllocsEnabled  = 4
	spanAllocsDisabled = 0
)

func assertSpanAllocs(tb testing.TB, want float64) {
	tb.Helper()
	ctx := context.Background()
	got := testing.AllocsPerRun(200, func() {
		_, sp := Span(ctx, "bench.span")
		sp.End()
	})
	if got != want {
		tb.Fatalf("Span+End allocates %v per op, budget is %v", got, want)
	}
}

func TestSpanAllocBudget(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	Verbose(nil, false)
	SetDefault(NewRegistry())
	assertSpanAllocs(t, spanAllocsEnabled)
	SetDefault(nil)
	assertSpanAllocs(t, spanAllocsDisabled)
}

func BenchmarkSpanEnabled(b *testing.B) {
	old := Default()
	SetDefault(NewRegistry())
	defer SetDefault(old)
	assertSpanAllocs(b, spanAllocsEnabled)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Span(ctx, "bench.span")
		sp.End()
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	old := Default()
	SetDefault(nil)
	defer SetDefault(old)
	Verbose(nil, false)
	assertSpanAllocs(b, spanAllocsDisabled)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Span(ctx, "bench.span")
		sp.End()
	}
}

// BenchmarkSpanTraced is the full-cost path: a collector is attached, so
// every span builds its path, links IDs, and records into the ring.
// benchjson derives span_ns_traced from it next to the enabled/disabled
// baselines.
func BenchmarkSpanTraced(b *testing.B) {
	old := Default()
	SetDefault(NewRegistry())
	defer SetDefault(old)
	c := NewCollector(CollectorConfig{LatencyThreshold: -1})
	ctx, root := c.StartTrace(context.Background(), "bench.root", TraceContext{})
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Span(ctx, "bench.span")
		sp.End()
	}
}
