package obs

import (
	"context"
	"testing"
)

// The enabled/disabled pairs below quantify the cost of leaving telemetry
// compiled into the hot paths: the disabled variants are the no-op
// registry baseline the acceptance criteria compare against.

func BenchmarkCounterAddEnabled(b *testing.B) {
	old := Default()
	SetDefault(NewRegistry())
	defer SetDefault(old)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add("bench.counter", 1)
	}
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	old := Default()
	SetDefault(nil)
	defer SetDefault(old)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Add("bench.counter", 1)
	}
}

func BenchmarkCounterHandleAdd(b *testing.B) {
	// The amortized pattern hot loops use: resolve the handle once, add
	// locally-accumulated totals.
	r := NewRegistry()
	c := r.Counter("bench.counter")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DurationBuckets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) % 1_000_000)
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	old := Default()
	SetDefault(NewRegistry())
	defer SetDefault(old)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Span(ctx, "bench.span")
		sp.End()
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	old := Default()
	SetDefault(nil)
	defer SetDefault(old)
	Verbose(nil, false)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := Span(ctx, "bench.span")
		sp.End()
	}
}
