package obs

import (
	"net/http"
	"strings"
	"testing"
)

// TestTraceparentRoundTrip: Format then Parse recovers the identity.
func TestTraceparentRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		tc := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
		h := FormatTraceparent(tc)
		got, err := ParseTraceparent(h)
		if err != nil {
			t.Fatalf("ParseTraceparent(%q) = %v", h, err)
		}
		if got != tc {
			t.Fatalf("round trip %q: got %+v, want %+v", h, got, tc)
		}
	}
}

// TestParseTraceparentAccepts: the spec's forward-compatibility rule —
// a future version with extra fields parses its first four.
func TestParseTraceparentAccepts(t *testing.T) {
	for _, h := range []string{
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", // unsampled still parses
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extrafield",
		"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	} {
		tc, err := ParseTraceparent(h)
		if err != nil {
			t.Errorf("ParseTraceparent(%q) = %v, want accept", h, err)
			continue
		}
		if tc.TraceID.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
			t.Errorf("ParseTraceparent(%q) trace = %s", h, tc.TraceID)
		}
		if tc.SpanID.String() != "00f067aa0ba902b7" {
			t.Errorf("ParseTraceparent(%q) span = %s", h, tc.SpanID)
		}
	}
}

// TestParseTraceparentRejects: every malformed shape errors (and the
// receiver starts a fresh trace) — nothing half-parses.
func TestParseTraceparentRejects(t *testing.T) {
	cases := []struct{ name, header string }{
		{"empty", ""},
		{"garbage", "not a traceparent"},
		{"three fields", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7"},
		{"version 00 with five fields", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"},
		{"reserved version ff", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"one-digit version", "0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"uppercase version", "0A-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"},
		{"short trace id", "00-4bf92f3577b34da6a3ce929d0e0e473-00f067aa0ba902b7-01"},
		{"long trace id", "00-4bf92f3577b34da6a3ce929d0e0e47366-00f067aa0ba902b7-01"},
		{"uppercase trace id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01"},
		{"non-hex trace id", "00-4bf92f3577b34da6a3ce929d0e0e473g-00f067aa0ba902b7-01"},
		{"all-zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"},
		{"short span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b-01"},
		{"uppercase span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01"},
		{"all-zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"},
		{"one-digit flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1"},
		{"non-hex flags", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz"},
	}
	for _, c := range cases {
		if tc, err := ParseTraceparent(c.header); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) = %+v, want error", c.name, c.header, tc)
		}
	}
}

// TestTraceParentFrom: the header extractor never errors — missing or
// malformed yields the zero context, a good header its identity.
func TestTraceParentFrom(t *testing.T) {
	h := http.Header{}
	if tc := TraceParentFrom(h); !tc.TraceID.IsZero() {
		t.Fatalf("missing header: got %+v, want zero", tc)
	}
	h.Set("traceparent", "junk")
	if tc := TraceParentFrom(h); !tc.TraceID.IsZero() {
		t.Fatalf("malformed header: got %+v, want zero", tc)
	}
	want := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	h.Set("traceparent", FormatTraceparent(want))
	if tc := TraceParentFrom(h); tc != want {
		t.Fatalf("good header: got %+v, want %+v", tc, want)
	}
}

// TestParseTraceID: the /debug/trace/<id> path parser.
func TestParseTraceID(t *testing.T) {
	id := NewTraceID()
	got, err := ParseTraceID(id.String())
	if err != nil || got != id {
		t.Fatalf("ParseTraceID round trip: %v, %v", got, err)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 32), strings.Repeat("A", 32), strings.Repeat("f", 31), strings.Repeat("f", 33)} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

// TestNewIDsNonZero: generated IDs are never the reserved zero value and
// do not repeat over a small sample.
func TestNewIDsNonZero(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 128; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("NewTraceID returned zero")
		}
		if seen[id] {
			t.Fatal("NewTraceID repeated within 128 draws")
		}
		seen[id] = true
		if NewSpanID().IsZero() {
			t.Fatal("NewSpanID returned zero")
		}
	}
}

// FuzzParseTraceparent pins the total-parsing guarantee: no input
// panics, anything accepted is fully well-formed (round-trips through
// Format modulo the version/flags normalization), and anything rejected
// leaves the zero TraceContext.
func FuzzParseTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what-ever")
	f.Add("")
	f.Add("----")
	f.Add("00-ZZ-ZZ-ZZ")
	f.Add(strings.Repeat("-", 256))
	f.Fuzz(func(t *testing.T, h string) {
		tc, err := ParseTraceparent(h)
		if err != nil {
			if !tc.TraceID.IsZero() || !tc.SpanID.IsZero() {
				t.Fatalf("rejected %q but returned non-zero context %+v", h, tc)
			}
			return
		}
		if tc.TraceID.IsZero() || tc.SpanID.IsZero() {
			t.Fatalf("accepted %q with a zero ID: %+v", h, tc)
		}
		// Whatever parsed must re-format into a header that parses to the
		// same identity (version and flags normalize to 00/01).
		again, err := ParseTraceparent(FormatTraceparent(tc))
		if err != nil || again != tc {
			t.Fatalf("accepted %q does not round-trip: %+v, %v", h, again, err)
		}
	})
}
