package obs

import (
	"fmt"
	"net/http"
	_ "net/http/pprof" // register /debug/pprof on the default mux
	"os"
	"runtime"
	"runtime/pprof"
)

// StartOptions configures Start, the one-call telemetry setup the CLIs
// share. Zero-value fields are disabled.
type StartOptions struct {
	// Verbose enables slog span tracing to stderr at Debug level.
	Verbose bool
	// MetricsPath, when non-empty, makes Stop write the default registry's
	// JSON snapshot there.
	MetricsPath string
	// PprofAddr, when non-empty, serves net/http/pprof (and /debug/vars
	// with the registry published through expvar) on this address.
	PprofAddr string
	// CPUProfilePath, when non-empty, runs a CPU profile until Stop.
	CPUProfilePath string
	// MemProfilePath, when non-empty, makes Stop write a heap profile.
	MemProfilePath string
}

// Start wires up tracing, profiling, and the pprof server per o and
// returns the stop function that flushes everything (CPU profile, heap
// profile, metrics snapshot). The returned stop is never nil and is safe
// to call exactly once, typically via defer. The pprof HTTP server is a
// daemon: it is not shut down by stop (profiling a process that is about
// to exit needs no teardown, and the CLIs exit right after).
func Start(o StartOptions) (stop func() error, err error) {
	Verbose(os.Stderr, o.Verbose)

	var cpuFile *os.File
	if o.CPUProfilePath != "" {
		cpuFile, err = os.Create(o.CPUProfilePath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: start CPU profile: %w", err)
		}
	}

	if o.PprofAddr != "" {
		PublishExpvar()
		srv := &http.Server{Addr: o.PprofAddr}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "obs: pprof server: %v\n", err)
			}
		}()
	}

	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = err
			}
		}
		if o.MemProfilePath != "" {
			f, err := os.Create(o.MemProfilePath)
			if err != nil {
				if first == nil {
					first = err
				}
			} else {
				runtime.GC() // materialize up-to-date allocation stats
				if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
					first = err
				}
				if err := f.Close(); err != nil && first == nil {
					first = err
				}
			}
		}
		if o.MetricsPath != "" {
			if err := WriteSnapshotFile(o.MetricsPath); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
