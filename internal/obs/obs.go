// Package obs is the solver stack's telemetry layer: atomic counters,
// gauges, and bucketed histograms collected in a Registry, exported as a
// deterministic JSON snapshot or through expvar, plus a lightweight span
// API (see span.go) that records per-phase wall time and emits structured
// log/slog events when tracing is enabled.
//
// The package is stdlib-only and designed so that instrumentation can stay
// compiled into the hot paths permanently:
//
//   - The package-level helpers (Add, Inc, SetMax, Observe…) consult the
//     default registry through one atomic pointer load; with the registry
//     disabled (SetDefault(nil)) every helper is a nil test and a return.
//   - With the registry enabled, a counter update is one read-locked map
//     lookup plus one atomic add. Hot loops amortize further by
//     accumulating locally and flushing once per run (see core's vgStats).
//
// Metric naming follows a dotted lowercase hierarchy, unit-suffixed where
// not obvious: "vg.candidates.generated", "solve.tier.exact.duration_ns",
// "circuit.transient.steps". DESIGN.md §9 catalogs the names.
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value with a high-water-mark helper.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// SetMax raises the gauge to v if v is larger (an atomic high-water mark).
// Nil-safe.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets with inclusive upper
// bounds, plus a catch-all overflow bucket, and tracks count and sum.
type Histogram struct {
	bounds []int64 // sorted inclusive upper bounds
	counts []atomic.Int64
	over   atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	// ex holds the latest exemplar per bucket (slot len(bounds) is the
	// overflow bucket's); see ObserveExemplar in prom.go.
	ex []atomic.Pointer[Exemplar]
}

// NewHistogram builds a histogram over the given inclusive upper bounds,
// which must be sorted ascending.
func NewHistogram(bounds []int64) *Histogram {
	h := &Histogram{bounds: append([]int64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds))
	h.ex = make([]atomic.Pointer[Exemplar], len(h.bounds)+1)
	return h
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistBucket is one histogram bucket in a snapshot.
type HistBucket struct {
	// Le is the inclusive upper bound; the overflow bucket uses the
	// string "inf".
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// HistSnapshot is a histogram's state at snapshot time.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets"`
}

// Default bucket sets. DurationBuckets cover 1 µs to ~100 s in decade
// steps with 1-2-5 subdivisions; SizeBuckets cover 1 to 2^20 in powers of
// four. Both are small enough that Observe's binary search is a few
// comparisons.
var (
	DurationBuckets = []int64{
		1_000, 2_000, 5_000, // 1-5 µs
		10_000, 20_000, 50_000,
		100_000, 200_000, 500_000,
		1_000_000, 2_000_000, 5_000_000, // 1-5 ms
		10_000_000, 20_000_000, 50_000_000,
		100_000_000, 200_000_000, 500_000_000,
		1_000_000_000, 2_000_000_000, 5_000_000_000, // 1-5 s
		10_000_000_000, 100_000_000_000,
	}
	SizeBuckets = []int64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
)

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use, and nil-safe: a
// nil *Registry silently drops every update, which is how telemetry is
// disabled globally (SetDefault(nil)).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty live registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Nil
// registries return nil (whose methods no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// buckets on first use (later calls ignore the bucket argument).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry, shaped for JSON export.
// Map keys marshal in sorted order (encoding/json guarantees this), so two
// snapshots of the same state produce byte-identical JSON.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot captures the registry's current state. A nil registry yields an
// empty (but non-nil-mapped) snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
		for i, b := range h.bounds {
			hs.Buckets = append(hs.Buckets, HistBucket{Le: fmt.Sprintf("%d", b), Count: h.counts[i].Load()})
		}
		hs.Buckets = append(hs.Buckets, HistBucket{Le: "inf", Count: h.over.Load()})
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ---------------------------------------------------------------- default

// def is the process-wide default registry. It starts live: telemetry is
// always collected unless explicitly disabled with SetDefault(nil). The
// cost of leaving it on is one atomic add per (amortized) event; the
// no-op-registry benchmarks in bench_test.go quantify the difference.
var def atomic.Pointer[Registry]

func init() {
	def.Store(NewRegistry())
}

// Default returns the process-wide registry, or nil when disabled.
func Default() *Registry { return def.Load() }

// SetDefault replaces the process-wide registry. Pass nil to disable all
// package-level telemetry; pass NewRegistry() for a fresh slate (tests).
func SetDefault(r *Registry) { def.Store(r) }

// Enabled reports whether the default registry is live.
func Enabled() bool { return def.Load() != nil }

// Add adds n to the named default-registry counter.
func Add(name string, n int64) { def.Load().Counter(name).Add(n) }

// Inc increments the named default-registry counter.
func Inc(name string) { def.Load().Counter(name).Add(1) }

// Set stores v in the named default-registry gauge.
func Set(name string, v int64) { def.Load().Gauge(name).Set(v) }

// SetMax raises the named default-registry gauge to v if larger.
func SetMax(name string, v int64) { def.Load().Gauge(name).SetMax(v) }

// ObserveDuration records a nanosecond duration into the named histogram
// with the standard duration buckets.
func ObserveDuration(name string, ns int64) {
	def.Load().Histogram(name, DurationBuckets).Observe(ns)
}

// ObserveSize records a size/count observation into the named histogram
// with the standard size buckets.
func ObserveSize(name string, n int64) {
	def.Load().Histogram(name, SizeBuckets).Observe(n)
}

// WriteSnapshotFile dumps the default registry's snapshot to path as
// indented JSON (the CLIs' -metrics flag).
func WriteSnapshotFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := Default().WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// ----------------------------------------------------------------- expvar

var publishOnce sync.Once

// PublishExpvar publishes the default registry under the expvar key
// "buffopt", so the snapshot is visible at /debug/vars whenever an HTTP
// server (e.g. the -pprof one) is running. Safe to call more than once.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("buffopt", expvar.Func(func() any {
			return Default().Snapshot()
		}))
	})
}
