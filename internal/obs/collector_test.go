package obs

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// quietCollector returns a collector whose latency pinning never fires,
// so tests control anomaly via attrs/errors alone.
func quietCollector(cfg CollectorConfig) *Collector {
	if cfg.LatencyThreshold == 0 {
		cfg.LatencyThreshold = -1
	}
	return NewCollector(cfg)
}

// TestCollectorBooksAndWraparound: the ring keeps exact books through
// overwrite — Started == Finished, Finished == Resident + Dropped, and
// Snapshot returns the newest ringSize spans oldest-first.
func TestCollectorBooksAndWraparound(t *testing.T) {
	fresh(t)
	c := quietCollector(CollectorConfig{RingSpans: 8})
	for i := 0; i < 20; i++ {
		_, sp := c.StartTrace(context.Background(), fmt.Sprintf("req.%d", i), TraceContext{})
		sp.End()
	}
	b := c.Books()
	if b.Started != 20 || b.Finished != 20 {
		t.Fatalf("started/finished = %d/%d, want 20/20", b.Started, b.Finished)
	}
	if b.Resident != 8 || b.Dropped != 12 {
		t.Fatalf("resident/dropped = %d/%d, want 8/12", b.Resident, b.Dropped)
	}
	if b.Finished != b.Resident+b.Dropped {
		t.Fatalf("books do not close: finished %d != resident %d + dropped %d", b.Finished, b.Resident, b.Dropped)
	}
	snap := c.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot has %d spans, want 8", len(snap))
	}
	for i, r := range snap {
		if want := fmt.Sprintf("req.%d", 12+i); r.Name != want {
			t.Fatalf("snapshot[%d] = %s, want %s (newest 8, oldest first)", i, r.Name, want)
		}
	}
}

// TestCollectorInFlight: Started counts opens, Finished counts closes, so
// the difference is spans still in flight; double-End records once.
func TestCollectorInFlight(t *testing.T) {
	fresh(t)
	c := quietCollector(CollectorConfig{})
	ctx, root := c.StartTrace(context.Background(), "req", TraceContext{})
	_, child := Span(ctx, "tier")
	if b := c.Books(); b.Started != 2 || b.Finished != 0 {
		t.Fatalf("in flight: started/finished = %d/%d, want 2/0", b.Started, b.Finished)
	}
	child.End()
	child.End() // second End must not double-count
	root.End()
	if b := c.Books(); b.Started != 2 || b.Finished != 2 {
		t.Fatalf("quiesced: started/finished = %d/%d, want 2/2", b.Started, b.Finished)
	}
}

// TestCollectorTraceTree: children started via obs.Span under a traced
// context link parent→child across the tree, and Trace reassembles them.
func TestCollectorTraceTree(t *testing.T) {
	fresh(t)
	c := quietCollector(CollectorConfig{})
	ctx, root := c.StartTrace(context.Background(), "req", TraceContext{})
	tctx, tier := Span(ctx, "tier")
	_, dp := Span(tctx, "dp")
	dp.End()
	tier.End()
	root.End()

	spans := c.Trace(root.TraceID())
	if len(spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(spans))
	}
	byName := map[string]SpanRecord{}
	for _, r := range spans {
		byName[r.Name] = r
	}
	if byName["req"].Parent != (SpanID{}) {
		t.Fatal("root has a parent")
	}
	if byName["tier"].Parent != byName["req"].ID {
		t.Fatal("tier is not linked under req")
	}
	if byName["dp"].Parent != byName["tier"].ID {
		t.Fatal("dp is not linked under tier")
	}
	if byName["dp"].Path != "req/tier/dp" {
		t.Fatalf("dp path = %q", byName["dp"].Path)
	}
}

// TestStartTraceAdoptsParent: a non-zero parent (an incoming traceparent)
// keeps its trace ID and links the new root under the remote span — the
// cross-process stitch.
func TestStartTraceAdoptsParent(t *testing.T) {
	fresh(t)
	c := quietCollector(CollectorConfig{})
	parent := TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	_, sp := c.StartTrace(context.Background(), "server.request", parent)
	if sp.TraceID() != parent.TraceID {
		t.Fatalf("trace = %s, want adopted %s", sp.TraceID(), parent.TraceID)
	}
	sp.End()
	spans := c.Trace(parent.TraceID)
	if len(spans) != 1 || spans[0].Parent != parent.SpanID {
		t.Fatalf("adopted root not linked under remote span: %+v", spans)
	}
}

// TestFlightRecorderPinsAnomalies: an anomalous span pins its whole
// trace — including earlier spans swept out of the ring — and the pinned
// copy survives arbitrary ring churn afterward.
func TestFlightRecorderPinsAnomalies(t *testing.T) {
	fresh(t)
	c := quietCollector(CollectorConfig{RingSpans: 4})

	// A trace whose child finishes clean, then its root sheds.
	ctx, root := c.StartTrace(context.Background(), "req", TraceContext{})
	_, child := Span(ctx, "tier")
	child.End()
	root.SetAttr("shed", "queue_full")
	root.End()
	id := root.TraceID()
	if !c.Pinned(id) {
		t.Fatal("anomalous trace not pinned")
	}

	// Churn the tiny ring far past wraparound: the pinned copy must keep
	// both spans even though the ring lost them long ago.
	for i := 0; i < 50; i++ {
		_, sp := c.StartTrace(context.Background(), "noise", TraceContext{})
		sp.End()
	}
	spans := c.Trace(id)
	if len(spans) != 2 {
		t.Fatalf("pinned trace has %d spans after churn, want 2", len(spans))
	}
	if spans[0].Name != "req" || spans[1].Name != "tier" {
		// sorted by start: root starts before child
		t.Fatalf("pinned spans = %s, %s", spans[0].Name, spans[1].Name)
	}
	if spans[0].attr("shed") != "queue_full" {
		t.Fatalf("shed attr lost: %+v", spans[0].Attrs)
	}
	if b := c.Books(); b.Pinned != 1 || b.Evicted != 0 || b.Truncated != 0 {
		t.Fatalf("flight books = %+v", b)
	}
}

// TestFlightRecorderAnomalyKinds: each anomaly class — error, fault attr,
// hedge attr, latency over threshold — pins; a clean fast span does not.
func TestFlightRecorderAnomalyKinds(t *testing.T) {
	fresh(t)
	c := NewCollector(CollectorConfig{LatencyThreshold: time.Nanosecond})
	_, slow := c.StartTrace(context.Background(), "slow", TraceContext{})
	time.Sleep(time.Millisecond)
	slow.End()
	if !c.Pinned(slow.TraceID()) {
		t.Fatal("slow trace not pinned by latency threshold")
	}

	c2 := quietCollector(CollectorConfig{})
	_, failed := c2.StartTrace(context.Background(), "failed", TraceContext{})
	failed.Fail(fmt.Errorf("boom"))
	if !c2.Pinned(failed.TraceID()) {
		t.Fatal("failed trace not pinned")
	}
	for _, key := range []string{"fault", "shed", "hedge"} {
		_, sp := c2.StartTrace(context.Background(), "attr."+key, TraceContext{})
		sp.SetAttr(key, "x")
		sp.End()
		if !c2.Pinned(sp.TraceID()) {
			t.Fatalf("%s trace not pinned", key)
		}
	}
	_, clean := c2.StartTrace(context.Background(), "clean", TraceContext{})
	clean.SetAttr("cache", "hit")
	clean.End()
	if c2.Pinned(clean.TraceID()) {
		t.Fatal("clean trace pinned")
	}
}

// TestFlightRecorderBounds: FIFO eviction past FlightTraces and span
// truncation past FlightSpansPerTrace are counted, never silent.
func TestFlightRecorderBounds(t *testing.T) {
	fresh(t)
	c := quietCollector(CollectorConfig{FlightTraces: 2, FlightSpansPerTrace: 3})
	var ids []TraceID
	for i := 0; i < 3; i++ {
		_, sp := c.StartTrace(context.Background(), "req", TraceContext{})
		sp.SetAttr("shed", "queue_full")
		sp.End()
		ids = append(ids, sp.TraceID())
	}
	if c.Pinned(ids[0]) {
		t.Fatal("oldest pinned trace not FIFO-evicted")
	}
	if !c.Pinned(ids[1]) || !c.Pinned(ids[2]) {
		t.Fatal("newest pinned traces evicted")
	}
	if b := c.Books(); b.Pinned != 3 || b.Evicted != 1 {
		t.Fatalf("pinned/evicted = %d/%d, want 3/1", b.Pinned, b.Evicted)
	}

	// One trace with more spans than the per-trace flight bound.
	ctx, root := c.StartTrace(context.Background(), "big", TraceContext{})
	root.SetAttr("shed", "draining")
	for i := 0; i < 5; i++ {
		_, sp := Span(ctx, "child")
		sp.End()
	}
	root.End()
	if got := len(c.Trace(root.TraceID())); got < 3 {
		t.Fatalf("big trace retains %d spans, want >= 3 (ring still holds the rest)", got)
	}
	if b := c.Books(); b.Truncated == 0 {
		t.Fatal("span truncation not counted")
	}
}

// TestSetAttrReplaces: same-key SetAttr replaces (hedge launched→won), so
// attr-counting ledgers see each span once; Annotate reaches the nearest
// enclosing span through the context.
func TestSetAttrReplaces(t *testing.T) {
	fresh(t)
	c := quietCollector(CollectorConfig{})
	ctx, sp := c.StartTrace(context.Background(), "req", TraceContext{})
	sp.SetAttr("hedge", "launched")
	sp.SetAttr("hedge", "won")
	Annotate(ctx, "cache", "miss")
	Annotate(ctx, "cache", "hit")
	sp.End()
	spans := c.Trace(sp.TraceID())
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	if got := spans[0].attr("hedge"); got != "won" {
		t.Fatalf("hedge = %q, want won", got)
	}
	if got := spans[0].attr("cache"); got != "hit" {
		t.Fatalf("cache = %q, want hit", got)
	}
	if len(spans[0].Attrs) != 2 {
		t.Fatalf("attrs = %+v, want exactly 2", spans[0].Attrs)
	}
}

// TestServeTrace: the debug endpoint round-trips one trace as JSON and
// distinguishes bad IDs (400) from unretained ones (404).
func TestServeTrace(t *testing.T) {
	fresh(t)
	c := quietCollector(CollectorConfig{})
	ctx, root := c.StartTrace(context.Background(), "req", TraceContext{})
	_, child := Span(ctx, "tier")
	child.End()
	root.End()
	id := root.TraceID().String()

	rec := httptest.NewRecorder()
	c.ServeTrace(rec, httptest.NewRequest("GET", "/debug/trace/"+id, nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	body := rec.Body.String()
	if !strings.Contains(body, id) || !strings.Contains(body, `"name":"tier"`) {
		t.Fatalf("trace body missing spans: %s", body)
	}

	rec = httptest.NewRecorder()
	c.ServeTrace(rec, httptest.NewRequest("GET", "/debug/trace/zzz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad id: status %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	c.ServeTrace(rec, httptest.NewRequest("GET", "/debug/trace/"+NewTraceID().String(), nil))
	if rec.Code != 404 {
		t.Fatalf("unknown id: status %d, want 404", rec.Code)
	}
}

// TestCollectorConcurrentSnapshotRace: hammer record (through the ring's
// wraparound/drop path and the flight recorder) while Snapshot, Trace,
// Books, and PinnedTraces read concurrently. Run under -race this pins
// the locking discipline; the final books must still close exactly.
func TestCollectorConcurrentSnapshotRace(t *testing.T) {
	fresh(t)
	c := NewCollector(CollectorConfig{RingSpans: 16, FlightTraces: 8, LatencyThreshold: -1})
	const writers, perWriter = 8, 200

	var writersWG, readersWG sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range c.Snapshot() {
					_ = c.Trace(rec.Trace)
					_ = rec.attr("shed")
				}
				_ = c.Books()
				_ = c.PinnedTraces()
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < perWriter; i++ {
				ctx, root := c.StartTrace(context.Background(), "req", TraceContext{})
				_, child := Span(ctx, "tier")
				if i%17 == 0 {
					child.SetAttr("shed", "queue_full") // exercise pin + sweep under load
				}
				child.End()
				root.End()
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readersWG.Wait()

	b := c.Books()
	const total = writers * perWriter * 2
	if b.Started != total || b.Finished != total {
		t.Fatalf("started/finished = %d/%d, want %d", b.Started, b.Finished, total)
	}
	if b.Finished != b.Resident+b.Dropped {
		t.Fatalf("books do not close: finished %d != resident %d + dropped %d", b.Finished, b.Resident, b.Dropped)
	}
	if b.Resident != 16 {
		t.Fatalf("resident = %d, want full ring 16", b.Resident)
	}
}

// TestNilCollector: every Collector method is nil-safe, and StartTrace on
// a nil collector degrades to a plain metrics span.
func TestNilCollector(t *testing.T) {
	r := fresh(t)
	var c *Collector
	_ = c.Books()
	_ = c.Snapshot()
	_ = c.Trace(TraceID{})
	_ = c.Pinned(TraceID{})
	_ = c.PinnedTraces()
	_, sp := c.StartTrace(context.Background(), "plain", TraceContext{})
	sp.End()
	if got := r.Counter("plain.count").Value(); got != 1 {
		t.Fatalf("nil-collector StartTrace did not record metrics: %d", got)
	}
}
