package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// fresh swaps in a clean default registry for one test and restores the
// previous one afterward.
func fresh(t *testing.T) *Registry {
	t.Helper()
	old := Default()
	r := NewRegistry()
	SetDefault(r)
	t.Cleanup(func() { SetDefault(old) })
	return r
}

// TestCounterConcurrent hammers one counter from many goroutines; under
// -race this also proves the update path is data-race free.
func TestCounterConcurrent(t *testing.T) {
	r := fresh(t)
	const workers, each = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				Add("test.counter", 1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("test.counter").Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
}

// TestGaugeSetMaxConcurrent proves the CAS high-water mark keeps the true
// maximum under contention.
func TestGaugeSetMaxConcurrent(t *testing.T) {
	r := fresh(t)
	const workers = 8
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i <= 1000; i++ {
				SetMax("test.hwm", int64(w*1000+i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Gauge("test.hwm").Value(); got != workers*1000+1000 {
		t.Fatalf("high-water mark = %d, want %d", got, workers*1000+1000)
	}
}

// TestHistogramBuckets checks the boundary convention: bounds are
// inclusive upper limits, values above the last bound land in "inf".
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{0, 10, 11, 100, 101, 1000, 1001, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2} // {0,10}, {11,100}, {101,1000}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket le=%d count = %d, want %d", h.bounds[i], got, w)
		}
	}
	if got := h.over.Load(); got != 2 {
		t.Errorf("overflow count = %d, want 2", got)
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if h.Sum() != 0+10+11+100+101+1000+1001+5000 {
		t.Errorf("sum = %d", h.Sum())
	}
}

// TestSnapshotDeterministic: two marshals of the same state are
// byte-identical, and keys appear sorted (encoding/json sorts map keys).
func TestSnapshotDeterministic(t *testing.T) {
	r := fresh(t)
	// Register in non-sorted order.
	Add("zz.last", 3)
	Add("aa.first", 1)
	Add("mm.middle", 2)
	Set("gauge.b", 20)
	Set("gauge.a", 10)
	ObserveDuration("hist.x", 5_000)
	ObserveSize("hist.a", 3)

	a, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
	if aa, zz := bytes.Index(a, []byte("aa.first")), bytes.Index(a, []byte("zz.last")); aa < 0 || zz < 0 || aa > zz {
		t.Fatalf("counter keys not sorted in %s", a)
	}
}

// TestDisabledRegistryNoops: with the default registry nil, every helper
// silently drops data and nothing panics.
func TestDisabledRegistryNoops(t *testing.T) {
	old := Default()
	SetDefault(nil)
	defer SetDefault(old)

	Add("x", 1)
	Inc("x")
	Set("y", 2)
	SetMax("y", 3)
	ObserveDuration("z", 4)
	ObserveSize("z", 5)
	if Enabled() {
		t.Fatal("Enabled() with nil registry")
	}
	var r *Registry
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil registry counter = %d", got)
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", s)
	}
}

// TestWriteSnapshotFile round-trips the -metrics dump.
func TestWriteSnapshotFile(t *testing.T) {
	fresh(t)
	Add("file.counter", 7)
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatalf("snapshot file unparsable: %v\n%s", err, data)
	}
	if s.Counters["file.counter"] != 7 {
		t.Fatalf("counter in file = %d, want 7", s.Counters["file.counter"])
	}
}

// TestStartStopProfiles exercises the CLI profiling bundle end to end.
func TestStartStopProfiles(t *testing.T) {
	fresh(t)
	dir := t.TempDir()
	stop, err := Start(StartOptions{
		MetricsPath:    filepath.Join(dir, "m.json"),
		CPUProfilePath: filepath.Join(dir, "cpu.prof"),
		MemProfilePath: filepath.Join(dir, "mem.prof"),
	})
	if err != nil {
		t.Fatal(err)
	}
	Add("profiled.work", 1)
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"m.json", "cpu.prof", "mem.prof"} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if st.Size() == 0 && f != "cpu.prof" { // an idle CPU profile may be tiny but not empty
			t.Errorf("%s is empty", f)
		}
	}
}
