package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
)

// Distributed-tracing identity: every request entering the stack gets a
// 16-byte trace ID shared by all work done on its behalf — across
// goroutines, the cache fill, and replica hops — and every span within
// it gets an 8-byte span ID plus its parent's span ID, so a trace
// reassembles into a tree. The wire format is the W3C Trace Context
// `traceparent` header,
//
//	00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	^^ ^^^^^^^^^^^ trace id ^^^^^^^^^^^ ^^ span id ^^^^^^ ^^ flags
//
// which the fleet router injects into upstream attempts and bufferd
// extracts on arrival. Parsing is strict and total: any malformed header
// yields an error and the receiver starts a fresh trace — a hostile or
// truncated header can never panic or corrupt ID state (the fuzz target
// FuzzParseTraceparent pins this).

// TraceID identifies one request's whole trace. The zero value means "no
// trace".
type TraceID [16]byte

// SpanID identifies one span within a trace. The zero value means "no
// span" (a root span's parent).
type SpanID [8]byte

// IsZero reports whether the ID is the all-zero (invalid) ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the all-zero (invalid) ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a fresh random (non-zero) trace ID.
func NewTraceID() TraceID {
	var t TraceID
	for t.IsZero() {
		rand.Read(t[:])
	}
	return t
}

// NewSpanID returns a fresh random (non-zero) span ID.
func NewSpanID() SpanID {
	var s SpanID
	for s.IsZero() {
		rand.Read(s[:])
	}
	return s
}

// ParseTraceID parses 32 lowercase hex digits into a TraceID.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 || !isLowerHex(s) {
		return t, fmt.Errorf("obs: malformed trace id %q", s)
	}
	hex.Decode(t[:], []byte(s))
	if t.IsZero() {
		return TraceID{}, fmt.Errorf("obs: all-zero trace id")
	}
	return t, nil
}

// TraceContext is the propagated half of a span: which trace the work
// belongs to and which span is its parent. The zero value means "no
// incoming trace — start a fresh one".
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// ParseTraceparent parses a W3C `traceparent` header value. It accepts
// exactly the version-00 shape (any other known-length version parses if
// its first four fields match, per the spec's forward-compatibility
// rule) and rejects everything else: wrong field count or length, the
// reserved version "ff", non-lowercase-hex digits, and all-zero trace or
// span IDs. A rejected header is not an operational error — the caller
// starts a fresh trace — but it is never silently half-parsed.
func ParseTraceparent(h string) (TraceContext, error) {
	var tc TraceContext
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return tc, fmt.Errorf("obs: traceparent has %d fields, want at least 4", len(parts))
	}
	version, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isLowerHex(version) {
		return tc, fmt.Errorf("obs: malformed traceparent version %q", version)
	}
	if version == "ff" {
		return tc, fmt.Errorf("obs: reserved traceparent version ff")
	}
	if version == "00" && len(parts) != 4 {
		return tc, fmt.Errorf("obs: version-00 traceparent has %d fields, want 4", len(parts))
	}
	t, err := ParseTraceID(traceID)
	if err != nil {
		return tc, err
	}
	if len(spanID) != 16 || !isLowerHex(spanID) {
		return tc, fmt.Errorf("obs: malformed traceparent span id %q", spanID)
	}
	var s SpanID
	hex.Decode(s[:], []byte(spanID))
	if s.IsZero() {
		return tc, fmt.Errorf("obs: all-zero traceparent span id")
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return tc, fmt.Errorf("obs: malformed traceparent flags %q", flags)
	}
	tc.TraceID, tc.SpanID = t, s
	return tc, nil
}

// FormatTraceparent renders tc as a version-00 traceparent value with
// the sampled flag set (this stack records every span it starts).
func FormatTraceparent(tc TraceContext) string {
	return "00-" + tc.TraceID.String() + "-" + tc.SpanID.String() + "-01"
}

// TraceParentFrom extracts the trace context from an HTTP request's
// traceparent header. A missing or malformed header yields the zero
// TraceContext: the receiver starts a fresh trace.
func TraceParentFrom(h http.Header) TraceContext {
	tc, err := ParseTraceparent(h.Get("traceparent"))
	if err != nil {
		return TraceContext{}
	}
	return tc
}

// isLowerHex reports whether s consists only of [0-9a-f]. The W3C spec
// requires lowercase; uppercase headers are rejected, not normalized.
func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
