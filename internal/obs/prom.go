package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"time"
)

// Prometheus / OpenMetrics text exposition for the registry, served at
// /metrics/prom alongside the existing JSON snapshot. Metric names get a
// `buffopt_` prefix with the dotted hierarchy flattened to underscores
// ("solve.answered.exact" → buffopt_solve_answered_exact_total), counters
// emit `_total` samples, and histograms emit the usual cumulative
// `_bucket{le="..."}` / `_sum` / `_count` series. Latency histograms
// additionally carry OpenMetrics exemplars — the trace ID of the most
// recent observation that landed in each bucket — so a p99 spike on a
// dashboard links straight to /debug/trace/<id> for that bucket's last
// offender.

// Exemplar links one histogram observation to the trace that produced it.
type Exemplar struct {
	TraceID string
	Value   int64
	Time    time.Time
}

// ObserveExemplar records one value like Observe and, when traceID is
// non-empty, stores it as the bucket's exemplar. Nil-safe.
func (h *Histogram) ObserveExemplar(v int64, traceID string) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	if traceID != "" {
		h.ex[i].Store(&Exemplar{TraceID: traceID, Value: v, Time: time.Now()})
	}
}

// ObserveDurationExemplar records a nanosecond duration into the named
// default-registry histogram with the standard duration buckets, tagging
// the landing bucket with the request's trace ID as an exemplar. A zero
// trace degrades to a plain Observe.
func ObserveDurationExemplar(name string, ns int64, trace TraceID) {
	h := def.Load().Histogram(name, DurationBuckets)
	if trace.IsZero() {
		h.Observe(ns)
		return
	}
	h.ObserveExemplar(ns, trace.String())
}

// promName flattens a dotted metric name into the Prometheus namespace:
// "server.shed.queue_full" → "buffopt_server_shed_queue_full". Any byte
// outside [a-zA-Z0-9_] becomes '_'.
func promName(name string) string {
	b := make([]byte, 0, len(name)+8)
	b = append(b, "buffopt_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	return string(b)
}

// WritePrometheus writes the registry in the OpenMetrics text format,
// deterministically ordered (sorted names), terminated by `# EOF`. A nil
// registry writes only the terminator.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r != nil {
		r.mu.RLock()
		names := make([]string, 0, len(r.counters))
		for name := range r.counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			n := promName(name)
			bw.WriteString("# TYPE " + n + " counter\n")
			bw.WriteString(n + "_total " + strconv.FormatInt(r.counters[name].Value(), 10) + "\n")
		}
		names = names[:0]
		for name := range r.gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			n := promName(name)
			bw.WriteString("# TYPE " + n + " gauge\n")
			bw.WriteString(n + " " + strconv.FormatInt(r.gauges[name].Value(), 10) + "\n")
		}
		names = names[:0]
		for name := range r.hists {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			writePromHistogram(bw, promName(name), r.hists[name])
		}
		r.mu.RUnlock()
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// writePromHistogram emits one histogram's cumulative bucket series with
// per-bucket exemplars where recorded.
func writePromHistogram(bw *bufio.Writer, n string, h *Histogram) {
	bw.WriteString("# TYPE " + n + " histogram\n")
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		bw.WriteString(n + `_bucket{le="` + strconv.FormatInt(bound, 10) + `"} ` + strconv.FormatInt(cum, 10))
		writeExemplar(bw, h.ex[i].Load())
		bw.WriteByte('\n')
	}
	cum += h.over.Load()
	bw.WriteString(n + `_bucket{le="+Inf"} ` + strconv.FormatInt(cum, 10))
	writeExemplar(bw, h.ex[len(h.bounds)].Load())
	bw.WriteByte('\n')
	bw.WriteString(n + "_sum " + strconv.FormatInt(h.sum.Load(), 10) + "\n")
	bw.WriteString(n + "_count " + strconv.FormatInt(h.count.Load(), 10) + "\n")
}

// writeExemplar appends an OpenMetrics exemplar clause
// (` # {trace_id="..."} <value> <unix-seconds>`) when e is non-nil.
func writeExemplar(bw *bufio.Writer, e *Exemplar) {
	if e == nil {
		return
	}
	bw.WriteString(` # {trace_id="` + e.TraceID + `"} `)
	bw.WriteString(strconv.FormatInt(e.Value, 10))
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatFloat(float64(e.Time.UnixNano())/1e9, 'f', 3, 64))
}
