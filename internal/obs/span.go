package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Span instruments one named phase of work. On End (or Fail) it records
//
//	<name>.duration_ns  counter: total nanoseconds across all runs
//	<name>.count        counter: number of runs
//	span.<name>         histogram: per-run duration distribution
//
// into the default registry, and — when tracing is enabled (SetTraceLogger
// / Verbose, the CLIs' -v flag) — emits a Debug slog event carrying the
// span's full dotted path, so nested spans ("solve.tier.exact" containing
// "vg.run") are readable as a hierarchy.
//
// When the context carries a trace (it descends from Collector.StartTrace),
// the span additionally gets a span ID linked under its parent's and is
// recorded into that collector on End, with whatever attributes were set
// via SetAttr/Annotate. The returned context carries the span, so children
// started from it nest under it in both the dotted path and the trace tree.
//
// When both the registry and tracing are disabled, Span returns a nil
// handle whose methods are no-ops, so instrumented call sites cost two
// atomic loads. When only metrics are enabled (the common production
// fast path), neither the dotted path nor a context value is built —
// the input context is returned unchanged.
func Span(ctx context.Context, name string) (context.Context, *SpanHandle) {
	if ctx == nil {
		ctx = context.Background()
	}
	sc, _ := ctx.Value(spanKey{}).(*spanContext)
	if tracer.Load() == nil && (sc == nil || sc.col == nil) {
		// No trace logger and no collector upstream: spans exist only to
		// feed registry metrics, which need the bare name, not the path
		// or a context chain. Skip both allocations.
		if Default() == nil {
			return ctx, nil
		}
		return ctx, &SpanHandle{name: name, start: time.Now()}
	}
	path := name
	if sc != nil && sc.path != "" {
		path = sc.path + "/" + name
	}
	s := &SpanHandle{name: name, path: path, start: time.Now()}
	child := &spanContext{path: path, handle: s}
	if sc != nil && sc.col != nil {
		s.col = sc.col
		s.trace = sc.trace
		s.parent = sc.span
		s.id = NewSpanID()
		sc.col.started.Add(1)
		child.col = sc.col
		child.trace = sc.trace
		child.span = s.id
	}
	return context.WithValue(ctx, spanKey{}, child), s
}

type spanKey struct{}

// spanContext is the per-context span state: the enclosing span's dotted
// path for nesting, its trace/span identity for child linking, the
// collector spans record into, and the handle itself so Annotate can
// attach attributes to the nearest enclosing span.
type spanContext struct {
	col    *Collector
	path   string
	trace  TraceID
	span   SpanID
	handle *SpanHandle
}

// Attr is one span attribute (cache=hit, tier=greedy, fault=panic, ...).
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanHandle is one in-flight span. All methods are nil-safe.
type SpanHandle struct {
	name  string
	path  string
	start time.Time

	// Trace identity; zero when the span is metrics-only.
	col    *Collector
	trace  TraceID
	id     SpanID
	parent SpanID

	done  atomic.Bool
	mu    sync.Mutex
	attrs []Attr
}

// TraceID returns the span's trace ID (zero when untraced).
func (s *SpanHandle) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// SpanID returns the span's ID (zero when untraced).
func (s *SpanHandle) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// SetAttr sets a key=value attribute on the span, replacing any earlier
// value for the same key (so "hedge"="launched" can later become
// "hedge"="won", and a ledger counting spans-with-attr sees each span
// once). Safe from concurrent goroutines and on a nil handle.
func (s *SpanHandle) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// Annotate sets a key=value attribute on the nearest enclosing span in
// ctx; it is a no-op when ctx carries none. It is how layers that don't
// own a span — the cache, the fault injector, the admission queue —
// stamp their verdict (cache=hit, fault=cancel, shed=queue_full) onto
// the request's trace.
func Annotate(ctx context.Context, key, value string) {
	if ctx == nil {
		return
	}
	if sc, _ := ctx.Value(spanKey{}).(*spanContext); sc != nil {
		sc.handle.SetAttr(key, value)
	}
}

// TraceIDFrom returns the trace ID carried by ctx (zero when untraced).
func TraceIDFrom(ctx context.Context) TraceID {
	if ctx == nil {
		return TraceID{}
	}
	if sc, _ := ctx.Value(spanKey{}).(*spanContext); sc != nil {
		return sc.trace
	}
	return TraceID{}
}

// TraceContextFrom returns the current trace/span identity carried by
// ctx — what an outgoing traceparent header should name as the parent.
// Zero when ctx is untraced.
func TraceContextFrom(ctx context.Context) TraceContext {
	if ctx == nil {
		return TraceContext{}
	}
	if sc, _ := ctx.Value(spanKey{}).(*spanContext); sc != nil {
		return TraceContext{TraceID: sc.trace, SpanID: sc.span}
	}
	return TraceContext{}
}

// End records the span's duration. Safe to call on a nil handle; a
// second End/Fail on the same handle is a no-op (the books count each
// span exactly once).
func (s *SpanHandle) End() { s.finish(nil) }

// Fail records the span's duration and, when err is non-nil, returns err
// wrapped with the span name ("vg.run: <err>") while preserving the
// errors.Is/As chain. Typical use:
//
//	ctx, sp := obs.Span(ctx, "solve.tier.exact")
//	res, err := run(ctx)
//	return res, sp.Fail(err)
func (s *SpanHandle) Fail(err error) error {
	s.finish(err)
	if err == nil || s == nil {
		return err
	}
	return fmt.Errorf("%s: %w", s.name, err)
}

func (s *SpanHandle) finish(err error) {
	if s == nil || s.done.Swap(true) {
		return
	}
	d := time.Since(s.start)
	if r := Default(); r != nil {
		r.Counter(s.name + ".duration_ns").Add(d.Nanoseconds())
		r.Counter(s.name + ".count").Add(1)
		r.Histogram("span."+s.name, DurationBuckets).Observe(d.Nanoseconds())
	}
	if s.col != nil {
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		s.mu.Lock()
		attrs := append([]Attr(nil), s.attrs...)
		s.mu.Unlock()
		s.col.record(SpanRecord{
			Trace:    s.trace,
			ID:       s.id,
			Parent:   s.parent,
			Name:     s.name,
			Path:     s.path,
			Start:    s.start,
			Duration: d,
			Err:      errStr,
			Attrs:    attrs,
		})
	}
	if l := tracer.Load(); l != nil {
		p := s.path
		if p == "" {
			// Metrics-only fast-path handle; tracing flipped on mid-span.
			p = s.name
		}
		args := []any{"span", p, "dur", d}
		if !s.trace.IsZero() {
			args = append(args, "trace", s.trace.String())
		}
		if err != nil {
			args = append(args, "err", err)
		}
		l.Debug("span", args...)
	}
}

// ---------------------------------------------------------------- tracing

var tracer atomic.Pointer[slog.Logger]

// SetTraceLogger installs the logger span events are emitted through; nil
// disables tracing (the default).
func SetTraceLogger(l *slog.Logger) { tracer.Store(l) }

// TraceLogger returns the installed trace logger, or nil.
func TraceLogger() *slog.Logger { return tracer.Load() }

// Verbose switches span tracing on (to w, typically os.Stderr, at Debug
// level in slog's text format) or off. It is what the CLIs' -v flag calls.
func Verbose(w io.Writer, on bool) {
	if !on {
		SetTraceLogger(nil)
		return
	}
	SetTraceLogger(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug})))
}

// Timer is the span shorthand for call sites without a context: it starts
// timing name and returns the function that records it. Timer spans carry
// no trace identity (no context, no collector).
//
//	defer obs.Timer("elmore.analyze")()
func Timer(name string) func() {
	if Default() == nil && tracer.Load() == nil {
		return func() {}
	}
	s := &SpanHandle{name: name, path: name, start: time.Now()}
	return s.End
}
