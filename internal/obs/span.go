package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// Span instruments one named phase of work. On End (or Fail) it records
//
//	<name>.duration_ns  counter: total nanoseconds across all runs
//	<name>.count        counter: number of runs
//	span.<name>         histogram: per-run duration distribution
//
// into the default registry, and — when tracing is enabled (SetTraceLogger
// / Verbose, the CLIs' -v flag) — emits a Debug slog event carrying the
// span's full dotted path, so nested spans ("solve.tier.exact" containing
// "vg.run") are readable as a hierarchy.
//
// The context returned by Span carries the span's path; child spans
// started from it nest under it. When both the registry and tracing are
// disabled, Span returns a nil handle whose End/Fail are no-ops, so
// instrumented call sites cost two atomic loads.
func Span(ctx context.Context, name string) (context.Context, *SpanHandle) {
	if ctx == nil {
		ctx = context.Background()
	}
	if Default() == nil && tracer.Load() == nil {
		return ctx, nil
	}
	path := name
	if parent, ok := ctx.Value(spanKey{}).(string); ok && parent != "" {
		path = parent + "/" + name
	}
	s := &SpanHandle{name: name, path: path, start: time.Now()}
	return context.WithValue(ctx, spanKey{}, path), s
}

type spanKey struct{}

// SpanHandle is one in-flight span. All methods are nil-safe.
type SpanHandle struct {
	name  string
	path  string
	start time.Time
}

// End records the span's duration. Safe to call on a nil handle.
func (s *SpanHandle) End() { s.finish(nil) }

// Fail records the span's duration and, when err is non-nil, returns err
// wrapped with the span name ("vg.run: <err>") while preserving the
// errors.Is/As chain. Typical use:
//
//	ctx, sp := obs.Span(ctx, "solve.tier.exact")
//	res, err := run(ctx)
//	return res, sp.Fail(err)
func (s *SpanHandle) Fail(err error) error {
	s.finish(err)
	if err == nil || s == nil {
		return err
	}
	return fmt.Errorf("%s: %w", s.name, err)
}

func (s *SpanHandle) finish(err error) {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	if r := Default(); r != nil {
		r.Counter(s.name + ".duration_ns").Add(d.Nanoseconds())
		r.Counter(s.name + ".count").Add(1)
		r.Histogram("span."+s.name, DurationBuckets).Observe(d.Nanoseconds())
	}
	if l := tracer.Load(); l != nil {
		if err != nil {
			l.Debug("span", "span", s.path, "dur", d, "err", err)
		} else {
			l.Debug("span", "span", s.path, "dur", d)
		}
	}
}

// ---------------------------------------------------------------- tracing

var tracer atomic.Pointer[slog.Logger]

// SetTraceLogger installs the logger span events are emitted through; nil
// disables tracing (the default).
func SetTraceLogger(l *slog.Logger) { tracer.Store(l) }

// TraceLogger returns the installed trace logger, or nil.
func TraceLogger() *slog.Logger { return tracer.Load() }

// Verbose switches span tracing on (to w, typically os.Stderr, at Debug
// level in slog's text format) or off. It is what the CLIs' -v flag calls.
func Verbose(w io.Writer, on bool) {
	if !on {
		SetTraceLogger(nil)
		return
	}
	SetTraceLogger(slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug})))
}

// Timer is the span shorthand for call sites without a context: it starts
// timing name and returns the function that records it.
//
//	defer obs.Timer("elmore.analyze")()
func Timer(name string) func() {
	if Default() == nil && tracer.Load() == nil {
		return func() {}
	}
	s := &SpanHandle{name: name, path: name, start: time.Now()}
	return s.End
}
