package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Collector is an in-process span sink: a bounded overwrite-oldest ring
// of recently finished spans plus an always-on flight recorder that pins
// complete traces for anomalous requests (sheds, injected faults, hedged
// requests, errors, latency above a threshold) so they survive ring
// churn. It keeps exact books — spans started == finished + in flight,
// finished == resident + dropped, drops only under ring pressure — which
// the chaos soaks assert to the last span.
//
// A Collector is per-process state (one per bufferd Server, one per
// fleet Router), not package-global: the in-process lab fleet runs
// several "processes" in one test binary and each must see only its own
// spans for the cross-process trace assembly to mean anything.
type Collector struct {
	ringSize   int
	flightMax  int // max pinned traces
	flightSpan int // max spans retained per pinned trace
	latency    time.Duration

	started  atomic.Int64
	finished atomic.Int64
	dropped  atomic.Int64

	mu          sync.Mutex
	ring        []SpanRecord // filled up to ringSize, then overwritten oldest-first
	next        int          // ring slot the next record lands in
	wrapped     bool         // ring has filled at least once
	flights     map[TraceID]*flightTrace
	flightOrder []TraceID // pin order, for FIFO eviction
	pinned      int64     // traces ever pinned
	evicted     int64     // pinned traces FIFO-evicted
	truncated   int64     // spans refused by a full per-trace flight buffer
}

// flightTrace is one pinned trace's retained spans.
type flightTrace struct {
	spans []SpanRecord
}

// CollectorConfig sizes a Collector. Zero fields take defaults.
type CollectorConfig struct {
	// RingSpans bounds the recent-span ring (default 4096). The ring is
	// the window /debug/trace/<id> can see for ordinary traces; older
	// spans are dropped (and counted) as new ones arrive.
	RingSpans int
	// FlightTraces bounds how many anomalous traces the flight recorder
	// keeps pinned at once (default 256, FIFO eviction).
	FlightTraces int
	// FlightSpansPerTrace bounds the spans retained per pinned trace
	// (default 512); overflow is counted, never silently lost.
	FlightSpansPerTrace int
	// LatencyThreshold pins any trace containing a span at least this
	// slow (default 1s; negative disables latency pinning).
	LatencyThreshold time.Duration
}

// NewCollector builds a Collector with cfg's bounds.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.RingSpans <= 0 {
		cfg.RingSpans = 4096
	}
	if cfg.FlightTraces <= 0 {
		cfg.FlightTraces = 256
	}
	if cfg.FlightSpansPerTrace <= 0 {
		cfg.FlightSpansPerTrace = 512
	}
	if cfg.LatencyThreshold == 0 {
		cfg.LatencyThreshold = time.Second
	}
	return &Collector{
		ringSize:   cfg.RingSpans,
		flightMax:  cfg.FlightTraces,
		flightSpan: cfg.FlightSpansPerTrace,
		latency:    cfg.LatencyThreshold,
		ring:       make([]SpanRecord, 0, cfg.RingSpans),
		flights:    make(map[TraceID]*flightTrace),
	}
}

// SpanRecord is one finished span as stored by the collector.
type SpanRecord struct {
	Trace    TraceID
	ID       SpanID
	Parent   SpanID // zero for a local root
	Name     string
	Path     string // dotted path within this process
	Start    time.Time
	Duration time.Duration
	Err      string // non-empty when the span failed
	Attrs    []Attr
}

// attr returns the value of the named attribute ("" when absent).
func (r *SpanRecord) attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// anomalous reports whether the span should pin its trace in the flight
// recorder: it failed, it carries a shed/fault/hedge attribute, or it
// ran past the latency threshold.
func (c *Collector) anomalous(r *SpanRecord) bool {
	if r.Err != "" {
		return true
	}
	for _, a := range r.Attrs {
		switch a.Key {
		case "fault", "shed", "hedge":
			return true
		}
	}
	return c.latency > 0 && r.Duration >= c.latency
}

// StartTrace opens a root span for one request. A zero parent starts a
// fresh trace; a non-zero parent (from an incoming traceparent header)
// adopts its trace ID and links under its span ID, which is what stitches
// router and replica spans into one cross-process tree. The returned
// context carries the span for obs.Span children and obs.Annotate.
func (c *Collector) StartTrace(ctx context.Context, name string, parent TraceContext) (context.Context, *SpanHandle) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c == nil {
		return Span(ctx, name)
	}
	trace := parent.TraceID
	if trace.IsZero() {
		trace = NewTraceID()
	}
	s := &SpanHandle{
		name:   name,
		path:   name,
		start:  time.Now(),
		col:    c,
		trace:  trace,
		id:     NewSpanID(),
		parent: parent.SpanID,
	}
	c.started.Add(1)
	sc := &spanContext{col: c, path: name, trace: trace, span: s.id, handle: s}
	return context.WithValue(ctx, spanKey{}, sc), s
}

// record stores one finished span. Called from SpanHandle.finish.
func (c *Collector) record(r SpanRecord) {
	c.finished.Add(1)
	c.mu.Lock()
	// Flight recorder first: if the trace is pinned (or this span pins
	// it), the span is retained on the side before the ring can ever
	// evict it — an anomalous span is never lost to ring churn.
	ft := c.flights[r.Trace]
	if ft == nil && c.anomalous(&r) {
		ft = &flightTrace{}
		// Sweep the ring for spans of this trace recorded before the
		// anomaly surfaced (children finish before parents, so the
		// tiers of a slow request are already in the ring).
		for i := range c.ring {
			if c.ring[i].Trace == r.Trace {
				ft.spans = append(ft.spans, c.ring[i])
			}
		}
		c.flights[r.Trace] = ft
		c.flightOrder = append(c.flightOrder, r.Trace)
		c.pinned++
		if len(c.flightOrder) > c.flightMax {
			oldest := c.flightOrder[0]
			c.flightOrder = c.flightOrder[1:]
			delete(c.flights, oldest)
			c.evicted++
		}
	}
	if ft != nil {
		if len(ft.spans) < c.flightSpan {
			ft.spans = append(ft.spans, r)
		} else {
			c.truncated++
		}
	}
	// Then the ring: append until full, then overwrite oldest-first.
	if len(c.ring) < c.ringSize {
		c.ring = append(c.ring, r)
	} else {
		c.ring[c.next] = r
		c.next = (c.next + 1) % c.ringSize
		c.wrapped = true
		c.dropped.Add(1)
	}
	c.mu.Unlock()
}

// Books is the collector's exact span accounting.
type Books struct {
	Started   int64 `json:"started"`  // spans opened against this collector
	Finished  int64 `json:"finished"` // spans recorded (== Started once quiesced)
	Resident  int64 `json:"resident"` // spans currently in the ring
	Dropped   int64 `json:"dropped"`  // spans overwritten by ring pressure
	Pinned    int64 `json:"pinned_traces"`
	Evicted   int64 `json:"evicted_traces"`
	Truncated int64 `json:"truncated_spans"`
}

// Books returns a snapshot of the collector's accounting. Once the
// process is quiescent, Started == Finished and Finished == Resident +
// Dropped hold exactly (flight-recorder copies are copies, not moves,
// so they never perturb the ring books).
func (c *Collector) Books() Books {
	if c == nil {
		return Books{}
	}
	c.mu.Lock()
	b := Books{
		Resident:  int64(len(c.ring)),
		Pinned:    c.pinned,
		Evicted:   c.evicted,
		Truncated: c.truncated,
	}
	c.mu.Unlock()
	b.Started = c.started.Load()
	b.Finished = c.finished.Load()
	b.Dropped = c.dropped.Load()
	return b
}

// Snapshot returns the ring's resident spans, oldest first.
func (c *Collector) Snapshot() []SpanRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SpanRecord, 0, len(c.ring))
	if c.wrapped {
		out = append(out, c.ring[c.next:]...)
		out = append(out, c.ring[:c.next]...)
	} else {
		out = append(out, c.ring...)
	}
	return out
}

// Trace returns every retained span of one trace: the union of the
// flight recorder's pinned copy and whatever is still resident in the
// ring, deduplicated by span ID and sorted by start time.
func (c *Collector) Trace(id TraceID) []SpanRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	var out []SpanRecord
	seen := make(map[SpanID]bool)
	if ft := c.flights[id]; ft != nil {
		for _, r := range ft.spans {
			if !seen[r.ID] {
				seen[r.ID] = true
				out = append(out, r)
			}
		}
	}
	for i := range c.ring {
		if r := &c.ring[i]; r.Trace == id && !seen[r.ID] {
			seen[r.ID] = true
			out = append(out, *r)
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Pinned reports whether the flight recorder currently holds the trace.
func (c *Collector) Pinned(id TraceID) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flights[id] != nil
}

// PinnedTraces returns the IDs of currently pinned traces in pin order.
func (c *Collector) PinnedTraces() []TraceID {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]TraceID(nil), c.flightOrder...)
}

// SpanJSON is the wire shape of one span on the debug endpoints.
type SpanJSON struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`
	Path     string `json:"path"`
	Origin   string `json:"origin,omitempty"` // which process recorded it (router/replica name)
	StartNS  int64  `json:"start_ns"`         // unix nanoseconds
	DurNS    int64  `json:"dur_ns"`
	Err      string `json:"err,omitempty"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// TraceJSON is the wire shape of one assembled trace.
type TraceJSON struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanJSON `json:"spans"`
}

// FlightJSON is the wire shape of /debug/flightrecorder.
type FlightJSON struct {
	Pinned    int64       `json:"pinned_traces"`
	Evicted   int64       `json:"evicted_traces"`
	Truncated int64       `json:"truncated_spans"`
	Traces    []TraceJSON `json:"traces"`
}

// SpansJSON converts collector records to their wire shape.
func SpansJSON(spans []SpanRecord) []SpanJSON {
	out := make([]SpanJSON, 0, len(spans))
	for _, r := range spans {
		j := SpanJSON{
			TraceID: r.Trace.String(),
			SpanID:  r.ID.String(),
			Name:    r.Name,
			Path:    r.Path,
			StartNS: r.Start.UnixNano(),
			DurNS:   r.Duration.Nanoseconds(),
			Err:     r.Err,
			Attrs:   r.Attrs,
		}
		if !r.Parent.IsZero() {
			j.ParentID = r.Parent.String()
		}
		out = append(out, j)
	}
	return out
}

// ServeTrace serves GET /debug/trace/<32-hex-id>: the retained spans of
// one trace as TraceJSON, 404 when nothing is retained for it.
func (c *Collector) ServeTrace(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Path
	if i := strings.LastIndexByte(raw, '/'); i >= 0 {
		raw = raw[i+1:]
	}
	id, err := ParseTraceID(raw)
	if err != nil {
		http.Error(w, "bad trace id: want 32 lowercase hex digits", http.StatusBadRequest)
		return
	}
	spans := c.Trace(id)
	if len(spans) == 0 {
		http.Error(w, "trace not retained", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(TraceJSON{TraceID: id.String(), Spans: SpansJSON(spans)})
}

// ServeFlightRecorder serves GET /debug/flightrecorder: every currently
// pinned trace with its retained spans, plus the recorder's books.
func (c *Collector) ServeFlightRecorder(w http.ResponseWriter, r *http.Request) {
	b := c.Books()
	out := FlightJSON{Pinned: b.Pinned, Evicted: b.Evicted, Truncated: b.Truncated}
	for _, id := range c.PinnedTraces() {
		out.Traces = append(out.Traces, TraceJSON{TraceID: id.String(), Spans: SpansJSON(c.Trace(id))})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
