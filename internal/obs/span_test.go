package obs

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

// TestSpanRecordsMetrics: ending a span populates duration, count, and
// the per-run histogram.
func TestSpanRecordsMetrics(t *testing.T) {
	r := fresh(t)
	_, sp := Span(context.Background(), "test.phase")
	sp.End()
	if got := r.Counter("test.phase.count").Value(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if r.Counter("test.phase.duration_ns").Value() < 0 {
		t.Fatal("negative duration")
	}
	if got := r.Histogram("span.test.phase", DurationBuckets).Count(); got != 1 {
		t.Fatalf("histogram count = %d, want 1", got)
	}
}

// TestSpanNesting: a child span started from the parent's context carries
// the parent path in its trace output.
func TestSpanNesting(t *testing.T) {
	fresh(t)
	var buf bytes.Buffer
	Verbose(&buf, true)
	defer Verbose(nil, false)

	ctx, parent := Span(context.Background(), "solve.tier.exact")
	_, child := Span(ctx, "vg.run")
	child.End()
	parent.End()

	out := buf.String()
	if !strings.Contains(out, "span=solve.tier.exact/vg.run") {
		t.Errorf("child span path missing from trace:\n%s", out)
	}
	if !strings.Contains(out, "span=solve.tier.exact dur=") {
		t.Errorf("parent span missing from trace:\n%s", out)
	}
}

// TestSpanFailPreservesErrorChain: Fail wraps with the span name but
// errors.Is still reaches the original sentinel.
func TestSpanFailPreservesErrorChain(t *testing.T) {
	fresh(t)
	sentinel := errors.New("sentinel")
	_, sp := Span(context.Background(), "failing.phase")
	err := sp.Fail(errors.Join(errors.New("outer"), sentinel))
	if err == nil {
		t.Fatal("Fail(non-nil) returned nil")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is lost the sentinel through Fail: %v", err)
	}
	if !strings.Contains(err.Error(), "failing.phase") {
		t.Fatalf("span name missing from error: %v", err)
	}
	// Fail(nil) is nil and still records the span.
	r := Default()
	_, sp2 := Span(context.Background(), "ok.phase")
	if err := sp2.Fail(nil); err != nil {
		t.Fatalf("Fail(nil) = %v", err)
	}
	if got := r.Counter("ok.phase.count").Value(); got != 1 {
		t.Fatalf("ok.phase.count = %d, want 1", got)
	}
}

// TestSpanDisabledIsNil: with both registry and tracing off, Span returns
// a nil handle whose methods are safe.
func TestSpanDisabledIsNil(t *testing.T) {
	old := Default()
	SetDefault(nil)
	defer SetDefault(old)
	Verbose(nil, false)

	ctx, sp := Span(context.Background(), "nothing")
	if sp != nil {
		t.Fatal("expected nil handle when disabled")
	}
	sp.End() // must not panic
	if err := sp.Fail(errors.New("x")); err == nil || err.Error() != "x" {
		t.Fatalf("nil handle Fail should pass the error through unchanged, got %v", err)
	}
	if ctx == nil {
		t.Fatal("nil ctx returned")
	}
}

// TestTimer: the context-free shorthand records the same metrics.
func TestTimer(t *testing.T) {
	r := fresh(t)
	done := Timer("timed.phase")
	done()
	if got := r.Counter("timed.phase.count").Value(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

// TestSpanNilContext: Span tolerates a nil context.
func TestSpanNilContext(t *testing.T) {
	fresh(t)
	//lint:ignore SA1012 deliberate nil-context robustness test
	ctx, sp := Span(nil, "nilctx") //nolint:staticcheck
	sp.End()
	if ctx == nil {
		t.Fatal("nil ctx returned")
	}
}
