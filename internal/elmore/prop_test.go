package elmore_test

import (
	"math"
	"math/rand"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/rctree"
	"buffopt/internal/testutil"
)

func near(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// TestAnalyzeMatchesPathSum: on random unbuffered trees, the incremental
// analyzer must agree with the independent per-sink path-sum form of
// eq. (4) at every sink.
func TestAnalyzeMatchesPathSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{MaxInternal: 10, MaxSinks: 6})
		r := elmore.Analyze(tr, nil)
		for _, s := range tr.Sinks() {
			want := elmore.SinkDelay(tr, s)
			if !near(r.Arrival[s], want) {
				t.Fatalf("trial %d sink %d: Analyze %g, path sum %g", trial, s, r.Arrival[s], want)
			}
		}
	}
}

// TestBufferedDelayDecomposes: a buffer at node v splits every path
// through v into two independent Elmore problems — upstream of the buffer
// with load Cin, and the subnet the buffer drives. The analyzer must agree
// with that decomposition computed by hand on extracted subtrees.
func TestBufferedDelayDecomposes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	buf := buffers.Buffer{Name: "b", Cin: 0.3, R: 1.2, T: 0.7, NoiseMargin: 1}
	for trial := 0; trial < 200; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{MaxInternal: 8, MaxSinks: 4, BufferSites: true})
		// Pick a random internal non-root node to buffer.
		var site rctree.NodeID = rctree.None
		for _, v := range tr.Preorder() {
			if v != tr.Root() && tr.Node(v).Kind == rctree.Internal && rng.Intn(3) == 0 {
				site = v
				break
			}
		}
		if site == rctree.None {
			continue
		}
		assign := elmore.Assignment{site: buf}
		r := elmore.Analyze(tr, assign)

		// Upstream view: replace the subtree below site with Cin.
		up := tr.Clone()
		up.Node(site).Children = nil
		up.Node(site).Kind = rctree.Sink
		up.Node(site).Cap = buf.Cin
		upR := elmore.Analyze(up, nil)
		if !near(r.Arrival[site], upR.Arrival[site]) {
			t.Fatalf("trial %d: arrival at buffer input %g, upstream-view %g", trial, r.Arrival[site], upR.Arrival[site])
		}

		// Downstream view: a fresh net rooted at the buffer.
		for _, s := range tr.DownstreamSinks(site) {
			if tr.Node(s).Kind != rctree.Sink {
				continue
			}
			// Arrival at s = arrival at buffer input + buffer delay +
			// wire path below, where the wire path below equals the
			// analyzer's own increments; check additivity directly:
			want := r.Arrival[site] + buf.Delay(r.Drive[site]) + pathDelay(tr, r, site, s)
			if !near(r.Arrival[s], want) {
				t.Fatalf("trial %d: sink %d arrival %g, decomposition %g", trial, s, r.Arrival[s], want)
			}
		}
	}
}

// pathDelay sums wire delays from just below `from` down to `to`, using
// the analyzer's computed loads (which already account for the buffer).
func pathDelay(tr *rctree.Tree, r *elmore.Result, from, to rctree.NodeID) float64 {
	d := 0.0
	for v := to; v != from; v = tr.Node(v).Parent {
		w := tr.Node(v).Wire
		d += w.R * (w.C/2 + r.Cap[v])
	}
	return d
}

// TestMoreLoadMoreDelay: increasing any sink capacitance can only slow
// every sink that shares resistance with it, and never speeds anything up.
func TestMoreLoadMoreDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{MaxInternal: 8, MaxSinks: 5})
		base := elmore.Analyze(tr, nil)
		heavier := tr.Clone()
		sinks := heavier.Sinks()
		heavier.Node(sinks[rng.Intn(len(sinks))]).Cap += 1 + rng.Float64()
		after := elmore.Analyze(heavier, nil)
		for _, s := range heavier.Sinks() {
			if after.Arrival[s] < base.Arrival[s]-1e-12 {
				t.Fatalf("trial %d: adding load sped up sink %d: %g → %g",
					trial, s, base.Arrival[s], after.Arrival[s])
			}
		}
		if after.MaxDelay < base.MaxDelay-1e-12 {
			t.Fatalf("trial %d: max delay decreased", trial)
		}
	}
}

// TestLoadsMatchAnalyze: the standalone Loads helper agrees with the
// analyzer's unbuffered capacitances.
func TestLoadsMatchAnalyze(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{})
		caps := elmore.Loads(tr)
		r := elmore.Analyze(tr, nil)
		for i := range caps {
			if !near(caps[i], r.Cap[i]) {
				t.Fatalf("trial %d node %d: Loads %g, Analyze %g", trial, i, caps[i], r.Cap[i])
			}
		}
	}
}
