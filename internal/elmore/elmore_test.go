package elmore

import (
	"math"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/rctree"
)

// buildY builds the hand-computed Y tree:
//
//	so --(R=2,C=3)--> v1 --(R=1,C=2)--> s1 (cap 1, RAT 100)
//	                   \---(R=4,C=1)--> s2 (cap 2, RAT 100)
//
// driven by a gate with R=2, T=1.
func buildY(t *testing.T) (*rctree.Tree, rctree.NodeID, rctree.NodeID, rctree.NodeID) {
	t.Helper()
	tr := rctree.New("net0", 2, 1)
	v1, err := tr.AddInternal(tr.Root(), rctree.Wire{R: 2, C: 3, Length: 3}, true)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := tr.AddSink(v1, rctree.Wire{R: 1, C: 2, Length: 2}, "s1", 1, 100, 25)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tr.AddSink(v1, rctree.Wire{R: 4, C: 1, Length: 1}, "s2", 2, 100, 22)
	if err != nil {
		t.Fatal(err)
	}
	return tr, v1, s1, s2
}

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestLoadsUnbuffered(t *testing.T) {
	tr, v1, s1, s2 := buildY(t)
	caps := Loads(tr)
	// C(s1)=1, C(s2)=2, C(v1)=(2+1)+(1+2)=6, C(so)=3+6=9.
	for _, tc := range []struct {
		node rctree.NodeID
		want float64
	}{{s1, 1}, {s2, 2}, {v1, 6}, {tr.Root(), 9}} {
		if got := caps[tc.node]; !approx(got, tc.want) {
			t.Errorf("C(%d) = %g, want %g", tc.node, got, tc.want)
		}
	}
}

func TestAnalyzeUnbuffered(t *testing.T) {
	tr, v1, s1, s2 := buildY(t)
	r := Analyze(tr, nil)
	// Driver: 1 + 2·9 = 19. Wire (so,v1): 2·(1.5+6) = 15.
	// Wire (v1,s1): 1·(1+1) = 2. Wire (v1,s2): 4·(0.5+2) = 10.
	if got := r.Arrival[v1]; !approx(got, 34) {
		t.Errorf("Arrival(v1) = %g, want 34", got)
	}
	if got := r.Arrival[s1]; !approx(got, 36) {
		t.Errorf("Arrival(s1) = %g, want 36", got)
	}
	if got := r.Arrival[s2]; !approx(got, 44) {
		t.Errorf("Arrival(s2) = %g, want 44", got)
	}
	if got := r.WorstSlack; !approx(got, 100-44) {
		t.Errorf("WorstSlack = %g, want 56", got)
	}
	if r.WorstSink != s2 {
		t.Errorf("WorstSink = %d, want %d", r.WorstSink, s2)
	}
	if got := r.MaxDelay; !approx(got, 44) {
		t.Errorf("MaxDelay = %g, want 44", got)
	}
}

func TestAnalyzeBuffered(t *testing.T) {
	tr, v1, s1, s2 := buildY(t)
	b := buffers.Buffer{Name: "b", Cin: 0.5, R: 1, T: 2, NoiseMargin: 10}
	assign := Assignment{v1: b}
	r := Analyze(tr, assign)
	// C(v1) = Cin = 0.5; C(so) = 3.5; driver = 1 + 2·3.5 = 8.
	// Arrival(v1) = 8 + 2·(1.5+0.5) = 12.
	// Buffer drives 6; delay 2 + 1·6 = 8.
	// Arrival(s1) = 12 + 8 + 2 = 22; Arrival(s2) = 12 + 8 + 10 = 30.
	if got := r.Cap[v1]; !approx(got, 0.5) {
		t.Errorf("Cap(v1) = %g, want 0.5", got)
	}
	if got := r.Drive[v1]; !approx(got, 6) {
		t.Errorf("Drive(v1) = %g, want 6", got)
	}
	if got := r.Arrival[v1]; !approx(got, 12) {
		t.Errorf("Arrival(v1) = %g, want 12", got)
	}
	if got := r.Arrival[s1]; !approx(got, 22) {
		t.Errorf("Arrival(s1) = %g, want 22", got)
	}
	if got := r.Arrival[s2]; !approx(got, 30) {
		t.Errorf("Arrival(s2) = %g, want 30", got)
	}
	if got := r.WorstSlack; !approx(got, 70) {
		t.Errorf("WorstSlack = %g, want 70", got)
	}
}

func TestSinkDelayMatchesAnalyze(t *testing.T) {
	tr, _, s1, s2 := buildY(t)
	r := Analyze(tr, nil)
	for _, s := range []rctree.NodeID{s1, s2} {
		if got, want := SinkDelay(tr, s), r.Arrival[s]; !approx(got, want) {
			t.Errorf("SinkDelay(%d) = %g, Analyze gives %g", s, got, want)
		}
	}
}

func TestWireDelay(t *testing.T) {
	w := rctree.Wire{R: 3, C: 4}
	if got := WireDelay(w, 5); !approx(got, 3*(2+5)) {
		t.Errorf("WireDelay = %g, want 21", got)
	}
}

func TestWorstSlackWrapper(t *testing.T) {
	tr, _, _, _ := buildY(t)
	if got := WorstSlack(tr, nil); !approx(got, 56) {
		t.Errorf("WorstSlack = %g, want 56", got)
	}
}

// TestBufferedChain checks arrival-time accumulation through two buffers
// in series on a segmented two-pin line.
func TestBufferedChain(t *testing.T) {
	tr := rctree.New("line", 1, 0)
	a, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 1, C: 1, Length: 1}, true)
	b, _ := tr.AddInternal(a, rctree.Wire{R: 1, C: 1, Length: 1}, true)
	s, _ := tr.AddSink(b, rctree.Wire{R: 1, C: 1, Length: 1}, "s", 1, 0, 1)
	buf := buffers.Buffer{Name: "x", Cin: 0.5, R: 2, T: 1, NoiseMargin: 1}
	r := Analyze(tr, Assignment{a: buf, b: buf})
	// C(s)=1; C(b)=Cin=0.5; C(a)=Cin=0.5.
	// Driver load = 1+0.5 = 1.5 → driver delay = 0 + 1·1.5 = 1.5.
	// Arrival(a) = 1.5 + 1·(0.5+0.5) = 2.5.
	// Buffer at a drives 1+0.5 = 1.5 → delay 1+2·1.5 = 4; out 6.5.
	// Arrival(b) = 6.5 + 1·(0.5+0.5) = 7.5.
	// Buffer at b drives 1+1 = 2 → delay 1+2·2 = 5; out 12.5.
	// Arrival(s) = 12.5 + 1·(0.5+1) = 14.
	if got := r.Arrival[s]; !approx(got, 14) {
		t.Errorf("Arrival(s) = %g, want 14", got)
	}
	if got := r.SinkSlack[s]; !approx(got, -14) {
		t.Errorf("SinkSlack(s) = %g, want -14", got)
	}
	// Non-sink nodes report +Inf slack.
	if !math.IsInf(r.SinkSlack[a], 1) {
		t.Errorf("SinkSlack(internal) = %g, want +Inf", r.SinkSlack[a])
	}
}
