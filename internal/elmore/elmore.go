// Package elmore computes Elmore delays, loads, arrival times, and timing
// slacks on (possibly buffered) RC routing trees, following Section II-A of
// the paper.
//
// Wires use the π-model: the delay of wire w = (u, v) is
//
//	Delay(w) = R_w · (C_w/2 + C(v))     (eq. 2)
//
// where C(v) is the downstream capacitance seen at v (eq. 1). Gates use the
// linear model Delay = T + R·load (eq. 3). A buffer inserted at a node
// decouples its entire subtree: upstream the node presents only the
// buffer's input capacitance, and the buffer's own gate delay is added on
// every source-to-sink path through it.
package elmore

import (
	"math"

	"buffopt/internal/buffers"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
)

// Assignment maps tree nodes to inserted buffers. A nil map means the
// unbuffered tree.
type Assignment = map[rctree.NodeID]buffers.Buffer

// Result holds the full timing analysis of one buffered tree.
type Result struct {
	// Cap[v] is the capacitance the parent wire of v sees looking into v:
	// the buffer input capacitance if v is buffered, otherwise v's pin
	// capacitance plus all downstream wire and subtree capacitance.
	Cap []float64
	// Drive[v] is the load driven at v's output side: the sum over v's
	// children of (child wire C + Cap[child]), plus v's own pin cap when v
	// is a sink. For a buffered node this is the load the buffer drives.
	Drive []float64
	// Arrival[v] is the signal arrival time at v's input, with the source
	// driver's gate delay included (the input signal arrives at the source
	// at time zero, eq. 4/5).
	Arrival []float64
	// SinkSlack[v] = RAT(v) − Arrival[v] for sinks; +Inf elsewhere.
	SinkSlack []float64
	// WorstSlack is the minimum sink slack (the slack at the source in the
	// paper's formulation, once the driver delay is folded in).
	WorstSlack float64
	// WorstSink is a sink achieving WorstSlack.
	WorstSink rctree.NodeID
	// MaxDelay is the maximum source-to-sink delay.
	MaxDelay float64
}

// Analyze runs a full timing analysis of tree t with the given buffer
// assignment (nil for the unbuffered tree).
func Analyze(t *rctree.Tree, assign Assignment) *Result {
	defer obs.Timer("elmore.analyze")()
	n := t.Len()
	r := &Result{
		Cap:        make([]float64, n),
		Drive:      make([]float64, n),
		Arrival:    make([]float64, n),
		SinkSlack:  make([]float64, n),
		WorstSlack: math.Inf(1),
		WorstSink:  rctree.None,
	}

	post := t.Postorder()
	for _, v := range post {
		node := t.Node(v)
		drive := 0.0
		if node.Kind == rctree.Sink {
			drive = node.Cap
		}
		for _, c := range node.Children {
			drive += t.Node(c).Wire.C + r.Cap[c]
		}
		r.Drive[v] = drive
		if b, ok := assign[v]; ok {
			r.Cap[v] = b.Cin
		} else {
			r.Cap[v] = drive
		}
	}

	for _, v := range t.Preorder() {
		node := t.Node(v)
		if v == t.Root() {
			r.Arrival[v] = 0
		} else {
			w := node.Wire
			u := node.Parent
			// Arrival at v's input: the parent's output-side arrival plus
			// the wire delay. The parent's output-side time is its stored
			// input arrival plus its gate delay (driver at the root,
			// buffer if one is assigned there, nothing otherwise).
			parentOut := r.Arrival[u]
			if b, ok := assign[u]; ok {
				parentOut += b.Delay(r.Drive[u])
			} else if u == t.Root() {
				parentOut += t.DriverDelay + t.DriverResistance*r.Drive[u]
			}
			r.Arrival[v] = parentOut + w.R*(w.C/2+r.Cap[v])
		}

		if node.Kind == rctree.Sink {
			r.SinkSlack[v] = node.RAT - r.Arrival[v]
			if r.SinkSlack[v] < r.WorstSlack {
				r.WorstSlack = r.SinkSlack[v]
				r.WorstSink = v
			}
			if r.Arrival[v] > r.MaxDelay {
				r.MaxDelay = r.Arrival[v]
			}
		} else {
			r.SinkSlack[v] = math.Inf(1)
		}
	}
	return r
}

// WireDelay returns the Elmore delay of a single wire driving load, eq. 2.
func WireDelay(w rctree.Wire, load float64) float64 {
	return w.R * (w.C/2 + load)
}

// Loads returns the unbuffered downstream capacitance C(v) for every node
// (eq. 1).
func Loads(t *rctree.Tree) []float64 {
	caps := make([]float64, t.Len())
	for _, v := range t.Postorder() {
		node := t.Node(v)
		c := 0.0
		if node.Kind == rctree.Sink {
			c = node.Cap
		}
		for _, ch := range node.Children {
			c += t.Node(ch).Wire.C + caps[ch]
		}
		caps[v] = c
	}
	return caps
}

// SinkDelay returns the Elmore delay from the source to one sink of the
// unbuffered tree, computed independently by walking the path (eq. 4).
// This O(n) per-sink form exists as a cross-check for Analyze; production
// code uses Analyze.
func SinkDelay(t *rctree.Tree, sink rctree.NodeID) float64 {
	caps := Loads(t)
	d := t.DriverDelay + t.DriverResistance*caps[t.Root()]
	path := t.PathToRoot(sink)
	for _, v := range path {
		if v == t.Root() {
			continue
		}
		w := t.Node(v).Wire
		d += w.R * (w.C/2 + caps[v])
	}
	return d
}

// WorstSlack is a convenience wrapper returning the minimum sink slack of
// the tree under the given assignment.
func WorstSlack(t *rctree.Tree, assign Assignment) float64 {
	return Analyze(t, assign).WorstSlack
}
