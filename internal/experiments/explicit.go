package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"buffopt/internal/core"
	"buffopt/internal/rctree"
)

// ExplicitModeAblation quantifies the cost of estimation mode's
// pessimism: the single worst-case aggressor assumption (λ = 0.7 of every
// wire, fastest slope) versus the actual post-routing coupling, which is
// usually lighter. This is Fig. 2's point at suite scale — once real
// neighbor information exists, wires carry explicit aggressor lists and
// buffer insertion gets cheaper.
type ExplicitModeAblation struct {
	Nets int
	// EstimationBuffers/ExplicitBuffers are total insertions per mode.
	EstimationBuffers, ExplicitBuffers int
	// NetsCheaper counts nets where explicit mode needed fewer buffers;
	// NetsViolatingExplicit counts nets that still violate under the true
	// (lighter) coupling.
	NetsCheaper, NetsViolatingExplicit int
	Failures                           int
}

// RunExplicitModeAblation re-runs BuffOpt on the suite with synthesized
// "measured" couplings: each wire's explicit aggressor has a ratio drawn
// below the worst-case λ and a slope at or below the worst-case μ
// (deterministic in the suite seed).
func (s *Suite) RunExplicitModeAblation() ExplicitModeAblation {
	out := ExplicitModeAblation{Nets: len(s.Nets)}
	type per struct {
		est, exp          int
		cheaper, violated bool
		failed            bool
	}
	rows := make([]per, len(s.Nets))
	s.forEachNet(func(i int) {
		r := &rows[i]
		est, err := core.BuffOptMinBuffers(s.Segmented[i], s.Library, s.Tech.Noise, core.Options{})
		if err != nil {
			r.failed = true
			return
		}
		// Synthesize measured couplings on a fresh copy. The per-net RNG
		// keeps the whole ablation deterministic and parallel-safe.
		rng := rand.New(rand.NewSource(s.Config.Seed*1000 + int64(i)))
		exp := s.Segmented[i].Clone()
		for _, v := range exp.Preorder() {
			if v == exp.Root() {
				continue
			}
			node := exp.Node(v)
			ratio := s.Tech.Noise.CouplingRatio * (0.3 + 0.7*rng.Float64())
			slope := s.Tech.Noise.Slope * (0.4 + 0.6*rng.Float64())
			node.Wire.Aggressors = []rctree.Coupling{{Ratio: ratio, Slope: slope}}
		}
		expRes, err := core.BuffOptMinBuffers(exp, s.Library, s.Tech.Noise, core.Options{})
		if err != nil {
			r.failed = true
			return
		}
		r.est = est.NumBuffers()
		r.exp = expRes.NumBuffers()
		r.cheaper = r.exp < r.est
	})
	for _, r := range rows {
		if r.failed {
			out.Failures++
			continue
		}
		out.EstimationBuffers += r.est
		out.ExplicitBuffers += r.exp
		if r.cheaper {
			out.NetsCheaper++
		}
		if r.violated {
			out.NetsViolatingExplicit++
		}
	}
	return out
}

// Format renders the ablation.
func (a ExplicitModeAblation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: estimation mode vs explicit post-routing coupling (%d nets)\n", a.Nets)
	fmt.Fprintf(&b, "buffers: %d worst-case estimation → %d with measured couplings\n",
		a.EstimationBuffers, a.ExplicitBuffers)
	fmt.Fprintf(&b, "%d nets needed fewer buffers under the true coupling; %d failures\n",
		a.NetsCheaper, a.Failures)
	return b.String()
}
