package experiments

import (
	"fmt"
	"strings"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/noise"
	"buffopt/internal/noisesim"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

// Fig2 demonstrates the wire-segmenting scheme for multiple aggressor
// nets: a victim wire is cut at every aggressor-overlap boundary so each
// segment couples to a fixed set of aggressors (Fig. 2 of the paper), and
// buffer insertion then runs in explicit post-routing mode instead of the
// uniform estimation mode.
type Fig2 struct {
	LineMM   float64
	Segments int // pieces after boundary segmentation
	// Currents per segment, A — the I_w of eq. (6) per piece.
	SegmentCurrents []float64
	// Buffers placed and the resulting cleanliness in explicit mode.
	ExplicitBuffers int
	ExplicitClean   bool
	SimClean        bool
	// The estimation-mode result on the same geometry for contrast: the
	// uniform single-aggressor assumption is pessimistic, so it may place
	// more buffers.
	EstimationBuffers int
}

// RunFig2 builds an 8 mm line crossed by three aggressors with partial
// overlaps (the Fig. 2 pattern) and repairs it with Algorithm 1 in both
// modes.
func RunFig2() (Fig2, error) {
	tech := noise.SectionV()
	const mm = 8.0
	build := func() (*rctree.Tree, rctree.NodeID, error) {
		tr := rctree.New("fig2", 250, 0)
		sink, err := tr.AddSink(tr.Root(),
			rctree.Wire{R: 80 * mm, C: 200e-15 * mm, Length: mm * 1e-3}, "s", 25e-15, 0, 0.8)
		if err != nil {
			return nil, 0, fmt.Errorf("fig2 victim line: %w", err)
		}
		return tr, sink, nil
	}
	lib := buffers.DefaultLibrary(0.8)
	out := Fig2{LineMM: mm}

	// Explicit mode: three aggressors, each over part of the line.
	explicit, sink, err := build()
	if err != nil {
		return out, err
	}
	spans := []segment.Span{
		{From: 0.5e-3, To: 3.5e-3, Ratio: 0.3, Slope: tech.Slope / 2},
		{From: 2.5e-3, To: 5.5e-3, Ratio: 0.2, Slope: tech.Slope / 4},
		{From: 5.0e-3, To: 7.5e-3, Ratio: 0.35, Slope: tech.Slope / 2},
	}
	chain, err := segment.ApplyAggressors(explicit, sink, spans)
	if err != nil {
		return out, err
	}
	out.Segments = len(chain)
	for _, id := range chain {
		out.SegmentCurrents = append(out.SegmentCurrents, tech.WireCurrent(explicit.Node(id).Wire))
	}
	esol, err := core.Algorithm1(explicit, lib, tech)
	if err != nil {
		return out, err
	}
	out.ExplicitBuffers = esol.NumBuffers()
	out.ExplicitClean = noise.Analyze(esol.Tree, esol.Buffers, tech).Clean()
	sim, err := noisesim.Simulate(esol.Tree, esol.Buffers, noisesim.Options{Params: tech})
	if err != nil {
		return out, err
	}
	out.SimClean = sim.Clean()

	// Estimation mode on the same bare geometry.
	estTree, _, err := build()
	if err != nil {
		return out, err
	}
	ssol, err := core.Algorithm1(estTree, lib, tech)
	if err != nil {
		return out, err
	}
	out.EstimationBuffers = ssol.NumBuffers()
	return out, nil
}

// Format renders the demonstration.
func (f Fig2) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2: wire segmenting for multiple aggressors (%.0f mm line)\n", f.LineMM)
	fmt.Fprintf(&b, "segments after boundary cuts: %d\n", f.Segments)
	for i, c := range f.SegmentCurrents {
		fmt.Fprintf(&b, "  segment %d injects %.3f mA\n", i+1, c*1e3)
	}
	fmt.Fprintf(&b, "explicit mode: %d buffers, metric clean %v, simulation clean %v\n",
		f.ExplicitBuffers, f.ExplicitClean, f.SimClean)
	fmt.Fprintf(&b, "estimation mode (uniform λ=0.7): %d buffers — the pessimistic bound\n",
		f.EstimationBuffers)
	return b.String()
}
