package experiments

import (
	"math"
	"testing"
)

// testSuite builds a small suite once per test binary.
func testSuite(t *testing.T) *Suite {
	t.Helper()
	s, err := NewSuite(Config{Seed: 1, NumNets: 30})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSuiteConstruction(t *testing.T) {
	s := testSuite(t)
	if len(s.Segmented) != len(s.Nets) {
		t.Fatalf("segmented %d, nets %d", len(s.Segmented), len(s.Nets))
	}
	for i := range s.Nets {
		if err := s.Segmented[i].Validate(); err != nil {
			t.Errorf("segmented net %d invalid: %v", i, err)
		}
		if s.Segmented[i].Len() <= s.Nets[i].Len() {
			t.Errorf("net %d gained no segmentation nodes", i)
		}
		// Totals preserved by segmentation.
		if a, b := s.Segmented[i].TotalCap(), s.Nets[i].TotalCap(); math.Abs(a-b) > 1e-12*b {
			t.Errorf("net %d capacitance changed: %g vs %g", i, a, b)
		}
		// Root site present.
		root := s.Segmented[i].Root()
		ch := s.Segmented[i].Node(root).Children
		if len(ch) != 1 || !s.Segmented[i].Node(ch[0]).BufferOK {
			t.Errorf("net %d missing driver-output buffer site", i)
		}
	}
}

func TestTableIShape(t *testing.T) {
	tab := testSuite(t).RunTableI()
	total := 0
	for _, c := range tab.Counts {
		total += c
	}
	if total != tab.Total || total != 30 {
		t.Errorf("histogram total %d, want 30", total)
	}
	if s := tab.Format(); s == "" {
		t.Errorf("empty format")
	}
}

func TestTableIIReproducesShape(t *testing.T) {
	tab := testSuite(t).RunTableII()
	// The metric is an upper bound, so it must flag at least every net
	// the detailed simulator flags.
	if tab.MetricBefore < tab.SimBefore {
		t.Errorf("metric flags %d nets, simulator %d — bound violated", tab.MetricBefore, tab.SimBefore)
	}
	if tab.MetricBefore == 0 {
		t.Errorf("suite has no violations to fix")
	}
	// BuffOpt fixes everything, by all three tools.
	if tab.MetricAfter != 0 || tab.SimAfter != 0 || tab.AWEAfter != 0 {
		t.Errorf("violations remain after BuffOpt: metric %d, sim %d, awe %d",
			tab.MetricAfter, tab.SimAfter, tab.AWEAfter)
	}
	// The AWE verifier approximates the transient one and stays within
	// the metric's envelope.
	if tab.AWEBefore > tab.MetricBefore {
		t.Errorf("AWE flags %d nets, above the metric's %d", tab.AWEBefore, tab.MetricBefore)
	}
	if diff := tab.AWEBefore - tab.SimBefore; diff < -2 || diff > 2 {
		t.Errorf("AWE (%d) and transient (%d) verdicts far apart", tab.AWEBefore, tab.SimBefore)
	}
	if tab.Unfixable != 0 {
		t.Errorf("%d nets unfixable", tab.Unfixable)
	}
	if s := tab.Format(); s == "" {
		t.Errorf("empty format")
	}
}

func TestTableIIIReproducesShape(t *testing.T) {
	tab := testSuite(t).RunTableIII()
	if len(tab.Rows) < 2 {
		t.Fatalf("only %d rows", len(tab.Rows))
	}
	buffOpt := tab.Rows[0]
	if buffOpt.Name != "BuffOpt" || buffOpt.ViolationsRemaining != 0 {
		t.Errorf("BuffOpt row = %+v", buffOpt)
	}
	last := tab.Rows[len(tab.Rows)-1]
	// DelayOpt with the same buffer budget leaves violations (Theorem 2's
	// empirical face) while inserting at least as many buffers.
	if last.ViolationsRemaining == 0 {
		t.Errorf("DelayOpt(max) fixed everything; the Table III contrast is gone")
	}
	if last.TotalBuffers <= buffOpt.TotalBuffers {
		t.Errorf("DelayOpt(max) inserted %d ≤ BuffOpt's %d", last.TotalBuffers, buffOpt.TotalBuffers)
	}
	// Violations shrink as k grows.
	prev := math.MaxInt32
	for _, r := range tab.Rows[1:] {
		if r.ViolationsRemaining > prev {
			t.Errorf("violations increased at %s", r.Name)
		}
		prev = r.ViolationsRemaining
	}
	if s := tab.Format(); s == "" {
		t.Errorf("empty format")
	}
}

func TestTableIVPenaltySmall(t *testing.T) {
	tab := testSuite(t).RunTableIV()
	if len(tab.Rows) == 0 {
		t.Fatalf("no rows")
	}
	// DelayOpt with the same budget can only be at least as good on
	// average (equal per-net RATs make slack ≡ max-delay).
	if tab.AvgDelayOpt < tab.AvgBuffOpt-1e-15 {
		t.Errorf("DelayOpt average %g worse than BuffOpt %g", tab.AvgDelayOpt, tab.AvgBuffOpt)
	}
	// The paper's headline: the noise-avoidance delay penalty is small.
	if tab.PenaltyPercent < 0 || tab.PenaltyPercent > 10 {
		t.Errorf("penalty %.2f%% outside [0, 10]", tab.PenaltyPercent)
	}
	for _, r := range tab.Rows {
		if r.Nets <= 0 || r.BuffOptReduction <= 0 {
			t.Errorf("degenerate row %+v", r)
		}
	}
	if s := tab.Format(); s == "" {
		t.Errorf("empty format")
	}
}

func TestFig1(t *testing.T) {
	f, err := RunFig1()
	if err != nil {
		t.Fatal(err)
	}
	if !f.FixedByBuffer {
		t.Errorf("buffer did not fix the Fig. 1 violation")
	}
	if f.BufferedSinkPeak >= f.BarePeak {
		t.Errorf("buffer did not reduce sink noise: %g → %g", f.BarePeak, f.BufferedSinkPeak)
	}
	if f.BarePeak > f.MetricBare || f.BufferedSinkPeak > f.MetricBufferedSink {
		t.Errorf("simulation exceeds the Devgan bound")
	}
	if s := f.Format(); s == "" {
		t.Errorf("empty format")
	}
}

func TestFig3MatchesHandComputation(t *testing.T) {
	f := RunFig3()
	if f.CurrentV1 != 3 || f.CurrentRoot != 6 || f.NoiseS1 != 22 || f.NoiseS2 != 23 ||
		f.SlackV1 != 20 || f.SlackRoot != 11 || f.DriverTerm != 12 || !f.Violation {
		t.Errorf("worked example drifted: %+v", f)
	}
	if s := f.Format(); s == "" {
		t.Errorf("empty format")
	}
}

func TestTheorem1SweepMonotone(t *testing.T) {
	sw := RunTheorem1Sweep()
	if len(sw.Points) == 0 {
		t.Fatal("empty sweep")
	}
	// Within a downstream-current group, l_max strictly decreases with
	// driver resistance; across groups, more current means shorter wires.
	byDown := map[float64][]Theorem1Point{}
	for _, p := range sw.Points {
		byDown[p.Downstream] = append(byDown[p.Downstream], p)
	}
	for down, pts := range byDown {
		for i := 1; i < len(pts); i++ {
			if pts[i].DriverR > pts[i-1].DriverR && pts[i].MaxLenMM >= pts[i-1].MaxLenMM {
				t.Errorf("down %g: l_max not decreasing in driver R", down)
			}
		}
	}
	if s := sw.Format(); s == "" {
		t.Errorf("empty format")
	}
}

func TestFig7Positions(t *testing.T) {
	f, err := RunFig7()
	if err != nil {
		t.Fatal(err)
	}
	if !f.Clean || len(f.Positions) == 0 {
		t.Fatalf("Fig. 7 walk failed: %+v", f)
	}
	for i := 1; i < len(f.Positions); i++ {
		if f.Positions[i] <= f.Positions[i-1] {
			t.Errorf("positions not ascending: %v", f.Positions)
		}
	}
	if f.Positions[len(f.Positions)-1] >= f.LineMM {
		t.Errorf("buffer beyond the line: %v", f.Positions)
	}
	if s := f.Format(); s == "" {
		t.Errorf("empty format")
	}
}

func TestSeparationSweepMonotone(t *testing.T) {
	sw := RunSeparationSweep()
	if len(sw.Points) < 3 {
		t.Fatalf("sweep too short: %+v", sw)
	}
	for i := 1; i < len(sw.Points); i++ {
		if sw.Points[i].SeparationUM <= sw.Points[i-1].SeparationUM {
			t.Errorf("longer lines must need more separation: %+v", sw.Points)
		}
	}
	if s := sw.Format(); s == "" {
		t.Errorf("empty format")
	}
}
