package experiments

import (
	"fmt"
	"strings"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/noise"
	"buffopt/internal/noisesim"
	"buffopt/internal/rctree"
)

// Fig1 is the motivating demonstration: coupled noise on a victim line
// with and without a buffer, measured by the detailed simulator.
type Fig1 struct {
	LineMM             float64
	BarePeak           float64 // simulated sink peak, no buffer, V
	BufferedSinkPeak   float64 // simulated sink peak with a mid buffer, V
	BufferedInputPeak  float64 // simulated peak at the buffer input, V
	MetricBare         float64 // Devgan bound, no buffer, V
	MetricBufferedSink float64
	NoiseMargin        float64
	FixedByBuffer      bool
}

// RunFig1 builds a Section V-style 4 mm line and inserts one mid buffer.
func RunFig1() (Fig1, error) {
	tech := noise.SectionV()
	const mm = 4.0
	tr := rctree.New("fig1", 180, 40e-12)
	sink, err := tr.AddSink(tr.Root(),
		rctree.Wire{R: 80 * mm, C: 200e-15 * mm, Length: mm * 1e-3}, "sink", 25e-15, 0, 0.8)
	if err != nil {
		return Fig1{}, err
	}
	out := Fig1{LineMM: mm, NoiseMargin: 0.8}

	bare, err := noisesim.Simulate(tr, nil, noisesim.Options{Params: tech})
	if err != nil {
		return Fig1{}, err
	}
	out.BarePeak = bare.Peak[sink]
	out.MetricBare = noise.Analyze(tr, nil, tech).Noise[sink]

	buffered := tr.Clone()
	mid, err := buffered.SplitWire(buffered.Sinks()[0], 0.5)
	if err != nil {
		return Fig1{}, err
	}
	b := buffers.Buffer{Name: "BUF", Cin: 20e-15, R: 150, T: 50e-12, NoiseMargin: 0.8}
	assign := map[rctree.NodeID]buffers.Buffer{mid: b}
	sim, err := noisesim.Simulate(buffered, assign, noisesim.Options{Params: tech})
	if err != nil {
		return Fig1{}, err
	}
	s2 := buffered.Sinks()[0]
	out.BufferedSinkPeak = sim.Peak[s2]
	out.BufferedInputPeak = sim.Peak[mid]
	out.MetricBufferedSink = noise.Analyze(buffered, assign, tech).Noise[s2]
	out.FixedByBuffer = sim.Clean() && !bare.Clean()
	return out, nil
}

// Format renders the demonstration.
func (f Fig1) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1: noise on a %.0f mm victim line (margin %.2f V)\n", f.LineMM, f.NoiseMargin)
	fmt.Fprintf(&b, "%-26s %-14s %s\n", "", "simulated (V)", "Devgan bound (V)")
	fmt.Fprintf(&b, "%-26s %-14.3f %.3f\n", "no buffer, sink", f.BarePeak, f.MetricBare)
	fmt.Fprintf(&b, "%-26s %-14.3f %.3f\n", "mid buffer, sink", f.BufferedSinkPeak, f.MetricBufferedSink)
	fmt.Fprintf(&b, "%-26s %-14.3f\n", "mid buffer, buffer input", f.BufferedInputPeak)
	fmt.Fprintf(&b, "violation fixed by the buffer: %v\n", f.FixedByBuffer)
	return b.String()
}

// Theorem1Point is one sample of the maximal noise-safe length surface.
type Theorem1Point struct {
	DriverR    float64 // Ω
	Downstream float64 // A
	MaxLenMM   float64
}

// Theorem1Sweep samples eq. (13): l_max versus driver resistance for
// several downstream currents, under Section V wire parasitics. This is
// the shape behind Fig. 6's discussion: the safe length shrinks as the
// driver weakens or the subtree already carries current.
type Theorem1Sweep struct {
	Points []Theorem1Point
}

// RunTheorem1Sweep computes the sweep.
func RunTheorem1Sweep() Theorem1Sweep {
	tech := noise.SectionV()
	const (
		r  = 80e3    // Ω/m
		c  = 200e-12 // F/m
		nm = 0.8
	)
	iu := tech.PerCap() * c
	var out Theorem1Sweep
	for _, down := range []float64{0, 0.5e-3, 1e-3} {
		for _, rb := range []float64{50, 100, 200, 400, 800} {
			ns := nm
			l, err := core.MaxSafeLength(rb, r, iu, down, ns)
			if err != nil {
				out.Points = append(out.Points, Theorem1Point{DriverR: rb, Downstream: down, MaxLenMM: 0})
				continue
			}
			out.Points = append(out.Points, Theorem1Point{DriverR: rb, Downstream: down, MaxLenMM: l * 1e3})
		}
	}
	return out
}

// Format renders the sweep as rows.
func (t Theorem1Sweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Theorem 1: maximal noise-safe wire length (mm), Section V wires, NM = 0.8 V\n")
	fmt.Fprintf(&b, "%-12s %-16s %s\n", "driver R", "downstream (mA)", "l_max (mm)")
	for _, p := range t.Points {
		fmt.Fprintf(&b, "%-12.0f %-16.2f %.3f\n", p.DriverR, p.Downstream*1e3, p.MaxLenMM)
	}
	return b.String()
}

// SeparationPoint samples eq. (17).
type SeparationPoint struct {
	LineMM       float64
	SeparationUM float64
}

// SeparationSweep is the required victim-aggressor spacing versus line
// length under the geometric coupling model λ(d) = β/d.
type SeparationSweep struct {
	Beta   float64
	Points []SeparationPoint
}

// RunSeparationSweep computes eq. (17) across line lengths.
func RunSeparationSweep() SeparationSweep {
	tech := noise.SectionV()
	const (
		r    = 80e3
		c    = 200e-12
		rb   = 180.0
		nm   = 0.8
		beta = 0.35e-6 // λ = 0.7 at 0.5 µm spacing
	)
	out := SeparationSweep{Beta: beta}
	for _, mm := range []float64{0.5, 1, 1.5, 2, 2.5, 3} {
		l := mm * 1e-3
		d, err := core.RequiredSeparation(rb, r, c, tech.Slope, beta, 0, nm, l)
		if err != nil {
			continue
		}
		out.Points = append(out.Points, SeparationPoint{LineMM: mm, SeparationUM: d * 1e6})
	}
	return out
}

// Format renders the sweep.
func (s SeparationSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Eq. 17: required aggressor separation (β = %.2g m)\n", s.Beta)
	fmt.Fprintf(&b, "%-12s %s\n", "line (mm)", "separation (µm)")
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%-12.1f %.3f\n", p.LineMM, p.SeparationUM)
	}
	return b.String()
}

// Fig7 walks Algorithm 1 up a long two-pin line and reports the buffer
// positions (distance from the sink, mm) — the iterative application of
// Theorem 1 the figure illustrates.
type Fig7 struct {
	LineMM    float64
	Positions []float64 // mm from the sink
	Clean     bool
}

// RunFig7 runs Algorithm 1 on a 12 mm Section V line.
func RunFig7() (Fig7, error) {
	tech := noise.SectionV()
	const mm = 12.0
	tr := rctree.New("fig7", 250, 0)
	if _, err := tr.AddSink(tr.Root(),
		rctree.Wire{R: 80 * mm, C: 200e-15 * mm, Length: mm * 1e-3}, "s", 30e-15, 0, 0.8); err != nil {
		return Fig7{}, err
	}
	lib := buffers.DefaultLibrary(0.8)
	sol, err := core.Algorithm1(tr, lib, tech)
	if err != nil {
		return Fig7{}, err
	}
	out := Fig7{LineMM: mm}
	// Positions: walk from the sink up, accumulating wire length.
	sink := sol.Tree.Sinks()[0]
	dist := 0.0
	for v := sink; v != sol.Tree.Root(); v = sol.Tree.Node(v).Parent {
		dist += sol.Tree.Node(v).Wire.Length
		if _, ok := sol.Buffers[sol.Tree.Node(v).Parent]; ok {
			out.Positions = append(out.Positions, dist*1e3)
		}
	}
	out.Clean = noise.Analyze(sol.Tree, sol.Buffers, tech).Clean()
	return out, nil
}

// Format renders the walk.
func (f Fig7) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7: Algorithm 1 maximal placements on a %.0f mm line\n", f.LineMM)
	fmt.Fprintf(&b, "buffers: %d, noise clean: %v\n", len(f.Positions), f.Clean)
	for i, p := range f.Positions {
		fmt.Fprintf(&b, "buffer %d at %.3f mm from the sink\n", i+1, p)
	}
	return b.String()
}

// Fig3 prints the worked noise computation of the paper's example tree
// (Section II-B) using this repository's reconstructed instance.
type Fig3 struct {
	CurrentV1, CurrentRoot float64
	NoiseS1, NoiseS2       float64
	SlackV1, SlackRoot     float64
	DriverTerm             float64
	Violation              bool
}

// RunFig3 evaluates the worked example.
func RunFig3() Fig3 {
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	tr := rctree.New("fig3", 2, 0)
	v1, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 2, C: 3, Length: 3}, true)
	s1, _ := tr.AddSink(v1, rctree.Wire{R: 1, C: 2, Length: 2}, "s1", 1, 0, 25)
	s2, _ := tr.AddSink(v1, rctree.Wire{R: 4, C: 1, Length: 1}, "s2", 2, 0, 22)
	r := noise.Analyze(tr, nil, p)
	ns := noise.Slacks(tr, p)
	return Fig3{
		CurrentV1:   r.Downstream[v1],
		CurrentRoot: r.Downstream[tr.Root()],
		NoiseS1:     r.Noise[s1],
		NoiseS2:     r.Noise[s2],
		SlackV1:     ns[v1],
		SlackRoot:   ns[tr.Root()],
		DriverTerm:  tr.DriverResistance * r.Downstream[tr.Root()],
		Violation:   !r.Clean(),
	}
}

// Format renders the example.
func (f Fig3) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3: worked noise computation (unit λμ)\n")
	fmt.Fprintf(&b, "I(v1) = %.1f, I(so) = %.1f\n", f.CurrentV1, f.CurrentRoot)
	fmt.Fprintf(&b, "Noise(s1) = %.1f, Noise(s2) = %.1f\n", f.NoiseS1, f.NoiseS2)
	fmt.Fprintf(&b, "NS(v1) = %.1f, NS(so) = %.1f, driver term R_so·I = %.1f\n", f.SlackV1, f.SlackRoot, f.DriverTerm)
	fmt.Fprintf(&b, "violation: %v (driver term exceeds NS(so))\n", f.Violation)
	return b.String()
}
