package experiments

import "testing"

func TestRoutingAblation(t *testing.T) {
	a, err := RunRoutingAblation(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(a.Rows))
	}
	var mst, pd, st *RoutingRow
	for i := range a.Rows {
		switch a.Rows[i].Name {
		case "rect. MST":
			mst = &a.Rows[i]
		case "Prim-Dijkstra(.5)":
			pd = &a.Rows[i]
		case "1-Steiner":
			st = &a.Rows[i]
		}
	}
	if mst == nil || pd == nil || st == nil {
		t.Fatalf("missing rows: %+v", a.Rows)
	}
	for _, r := range a.Rows {
		if r.Failures != 0 {
			t.Errorf("%s: %d failures", r.Name, r.Failures)
		}
		if r.WirelengthMM <= 0 || r.Buffers <= 0 || r.FixedDelayPS <= 0 {
			t.Errorf("%s: degenerate row %+v", r.Name, r)
		}
		// BuffOpt must actually help the delay on these noisy nets.
		if r.FixedDelayPS >= r.BareDelayPS {
			t.Errorf("%s: buffering did not reduce total delay (%g → %g)",
				r.Name, r.BareDelayPS, r.FixedDelayPS)
		}
	}
	// Structural orderings of the heuristics.
	if st.WirelengthMM > mst.WirelengthMM+1e-9 {
		t.Errorf("1-Steiner wirelength %g exceeds MST %g", st.WirelengthMM, mst.WirelengthMM)
	}
	if pd.WirelengthMM < mst.WirelengthMM-1e-9 {
		t.Errorf("PD(0.5) wirelength %g below MST %g", pd.WirelengthMM, mst.WirelengthMM)
	}
	if s := a.Format(); s == "" {
		t.Errorf("empty format")
	}
}
