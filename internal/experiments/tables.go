package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"buffopt/internal/core"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/noisesim"
	"buffopt/internal/obs"
)

// --------------------------------------------------------------- Table II

// TableII reproduces the before/after verification: the Devgan metric
// (BuffOpt's view) versus the detailed simulator (the 3dnoise stand-in).
type TableII struct {
	Nets int
	// MetricBefore counts nets the metric flags unbuffered (423 in the
	// paper); SimBefore counts nets the transient simulator flags (386);
	// AWEBefore is the RICE-style moment-matching verifier's count.
	MetricBefore, SimBefore, AWEBefore int
	// MetricAfter/SimAfter/AWEAfter count nets still flagged after
	// BuffOpt (all 0 expected).
	MetricAfter, SimAfter, AWEAfter int
	// Unfixable counts nets where BuffOpt failed outright (0 expected).
	Unfixable int
}

// RunTableII runs BuffOpt everywhere and verifies with the simulator.
func (s *Suite) RunTableII() TableII {
	results := s.runBuffOpt()
	t := TableII{Nets: len(s.Nets)}

	type flags struct {
		metricBefore, simBefore, aweBefore bool
		metricAfter, simAfter, aweAfter    bool
		unfixable                          bool
	}
	per := make([]flags, len(s.Nets))
	simOpts := noisesim.Options{Vdd: s.Tech.Vdd, Params: s.Tech.Noise}
	s.forEachNet(func(i int) {
		f := &per[i]
		f.metricBefore = !noise.Analyze(s.Nets[i], nil, s.Tech.Noise).Clean()
		if simB, err := noisesim.Simulate(s.Nets[i], nil, simOpts); err == nil {
			f.simBefore = !simB.Clean()
		}
		if aweB, err := noisesim.SimulateAWE(s.Nets[i], nil, simOpts); err == nil {
			f.aweBefore = !aweB.Clean()
		}
		r := results[i]
		if r.err != nil {
			f.unfixable = true
			f.metricAfter = f.metricBefore
			f.simAfter = f.simBefore
			f.aweAfter = f.aweBefore
			return
		}
		f.metricAfter = !noise.Analyze(r.sol.Tree, r.sol.Buffers, s.Tech.Noise).Clean()
		if simA, err := noisesim.Simulate(r.sol.Tree, r.sol.Buffers, simOpts); err == nil {
			f.simAfter = !simA.Clean()
		}
		if aweA, err := noisesim.SimulateAWE(r.sol.Tree, r.sol.Buffers, simOpts); err == nil {
			f.aweAfter = !aweA.Clean()
		}
	})
	for _, f := range per {
		if f.metricBefore {
			t.MetricBefore++
		}
		if f.simBefore {
			t.SimBefore++
		}
		if f.aweBefore {
			t.AWEBefore++
		}
		if f.metricAfter {
			t.MetricAfter++
		}
		if f.simAfter {
			t.SimAfter++
		}
		if f.aweAfter {
			t.AWEAfter++
		}
		if f.unfixable {
			t.Unfixable++
		}
	}
	return t
}

// Format renders the table.
func (t TableII) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: noise violations before and after BuffOpt (%d nets)\n", t.Nets)
	fmt.Fprintf(&b, "%-28s %-10s %s\n", "", "before", "after")
	fmt.Fprintf(&b, "%-28s %-10d %d\n", "Devgan metric (BuffOpt)", t.MetricBefore, t.MetricAfter)
	fmt.Fprintf(&b, "%-28s %-10d %d\n", "AWE / moment matching", t.AWEBefore, t.AWEAfter)
	fmt.Fprintf(&b, "%-28s %-10d %d\n", "transient simulation", t.SimBefore, t.SimAfter)
	fmt.Fprintf(&b, "metric conservatism: %d extra nets flagged; unfixable nets: %d\n",
		t.MetricBefore-t.SimBefore, t.Unfixable)
	return b.String()
}

// -------------------------------------------------------------- Table III

// TableIIIRow is one optimizer's noise-avoidance summary.
type TableIIIRow struct {
	Name string
	// ViolationsRemaining counts nets the metric still flags after the
	// optimizer ran.
	ViolationsRemaining int
	// NetsByBuffers[k] counts nets on which exactly k buffers were used.
	NetsByBuffers map[int]int
	TotalBuffers  int
	CPU           time.Duration
}

// TableIII compares BuffOpt against DelayOpt(k) for k = 1..K.
type TableIII struct {
	Nets int
	Rows []TableIIIRow
}

// RunTableIII reproduces the Table III comparison.
func (s *Suite) RunTableIII() TableIII {
	t := TableIII{Nets: len(s.Nets)}

	buffOpt := s.runBuffOpt()

	row := TableIIIRow{Name: "BuffOpt", NetsByBuffers: map[int]int{}, CPU: s.buffOptCPU}
	maxK := 0
	for i, r := range buffOpt {
		if r.err != nil {
			row.ViolationsRemaining++
			continue
		}
		row.NetsByBuffers[r.numBuffers]++
		row.TotalBuffers += r.numBuffers
		if r.numBuffers > maxK {
			maxK = r.numBuffers
		}
		if !noise.Analyze(r.sol.Tree, r.sol.Buffers, s.Tech.Noise).Clean() {
			row.ViolationsRemaining++
		}
		_ = i
	}
	t.Rows = append(t.Rows, row)

	limit := s.Config.MaxDelayOptK
	if limit == 0 {
		limit = maxK
	}
	for k := 1; k <= limit; k++ {
		start := time.Now()
		rows := make([]struct {
			nbuf  int
			clean bool
			ok    bool
		}, len(s.Nets))
		s.forEachNet(func(i int) {
			r, err := core.DelayOptK(s.Segmented[i], s.Library, k,
				s.Config.coreOptions())
			if err != nil {
				return
			}
			rows[i].ok = true
			rows[i].nbuf = r.NumBuffers()
			rows[i].clean = noise.Analyze(r.Tree, r.Buffers, s.Tech.Noise).Clean()
		})
		drow := TableIIIRow{Name: fmt.Sprintf("DelayOpt(%d)", k), NetsByBuffers: map[int]int{}, CPU: time.Since(start)}
		obs.Set(fmt.Sprintf("experiments.delayopt.%d.cpu_ns", k), int64(drow.CPU))
		for _, r := range rows {
			if !r.ok {
				drow.ViolationsRemaining++
				continue
			}
			drow.NetsByBuffers[r.nbuf]++
			drow.TotalBuffers += r.nbuf
			if !r.clean {
				drow.ViolationsRemaining++
			}
		}
		t.Rows = append(t.Rows, drow)
	}
	return t
}

// Format renders the table.
func (t TableIII) Format() string {
	maxK := 0
	for _, r := range t.Rows {
		for k := range r.NetsByBuffers {
			if k > maxK {
				maxK = k
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: noise avoidance, BuffOpt vs DelayOpt(k) (%d nets)\n", t.Nets)
	fmt.Fprintf(&b, "%-14s %-8s", "", "viol.")
	for k := 0; k <= maxK; k++ {
		fmt.Fprintf(&b, " %6s", fmt.Sprintf("=%db", k))
	}
	fmt.Fprintf(&b, " %8s %9s\n", "total", "cpu")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %-8d", r.Name, r.ViolationsRemaining)
		for k := 0; k <= maxK; k++ {
			fmt.Fprintf(&b, " %6d", r.NetsByBuffers[k])
		}
		fmt.Fprintf(&b, " %8d %8.2fs\n", r.TotalBuffers, r.CPU.Seconds())
	}
	return b.String()
}

// --------------------------------------------------------------- Table IV

// TableIVRow aggregates delay reduction for nets on which BuffOpt used
// exactly Buffers buffers.
type TableIVRow struct {
	Buffers int
	Nets    int
	// Avg maximum source-sink delay reduction versus the unbuffered net,
	// seconds.
	BuffOptReduction, DelayOptReduction float64
}

// TableIV is the delay-penalty comparison.
type TableIV struct {
	Rows []TableIVRow
	// Weighted averages over all buffered nets, seconds, and the relative
	// penalty of adding noise constraints (paper: < 2%).
	AvgBuffOpt, AvgDelayOpt, PenaltyPercent float64
}

// RunTableIV reproduces Table IV: DelayOpt is re-run per net with the same
// buffer budget BuffOpt used, and delay reductions are averaged per count.
func (s *Suite) RunTableIV() TableIV {
	buffOpt := s.runBuffOpt()

	type per struct {
		k        int
		bRed     float64
		dRed     float64
		buffered bool
	}
	rows := make([]per, len(s.Nets))
	s.forEachNet(func(i int) {
		r := buffOpt[i]
		if r.err != nil || r.numBuffers == 0 {
			return
		}
		base := elmore.Analyze(s.Segmented[i], nil).MaxDelay
		bDelay := elmore.Analyze(r.sol.Tree, r.sol.Buffers).MaxDelay
		d, err := core.DelayOptK(s.Segmented[i], s.Library, r.numBuffers,
			s.Config.coreOptions())
		if err != nil {
			return
		}
		dDelay := elmore.Analyze(d.Tree, d.Buffers).MaxDelay
		rows[i] = per{k: r.numBuffers, bRed: base - bDelay, dRed: base - dDelay, buffered: true}
	})

	byK := map[int]*TableIVRow{}
	totalB, totalD, n := 0.0, 0.0, 0
	maxK := 0
	for _, p := range rows {
		if !p.buffered {
			continue
		}
		row := byK[p.k]
		if row == nil {
			row = &TableIVRow{Buffers: p.k}
			byK[p.k] = row
			if p.k > maxK {
				maxK = p.k
			}
		}
		row.Nets++
		row.BuffOptReduction += p.bRed
		row.DelayOptReduction += p.dRed
		totalB += p.bRed
		totalD += p.dRed
		n++
	}
	t := TableIV{}
	for k := 1; k <= maxK; k++ {
		if row, ok := byK[k]; ok {
			row.BuffOptReduction /= float64(row.Nets)
			row.DelayOptReduction /= float64(row.Nets)
			t.Rows = append(t.Rows, *row)
		}
	}
	if n > 0 {
		t.AvgBuffOpt = totalB / float64(n)
		t.AvgDelayOpt = totalD / float64(n)
		if t.AvgDelayOpt != 0 {
			t.PenaltyPercent = 100 * (t.AvgDelayOpt - t.AvgBuffOpt) / math.Abs(t.AvgDelayOpt)
		}
	}
	return t
}

// Format renders the table with picosecond entries, as in the paper.
func (t TableIV) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: average delay reduction from buffer insertion (ps)\n")
	fmt.Fprintf(&b, "%-10s %-8s %-12s %-12s\n", "#buffers", "nets", "BuffOpt", "DelayOpt")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-10d %-8d %-12.1f %-12.1f\n",
			r.Buffers, r.Nets, r.BuffOptReduction*1e12, r.DelayOptReduction*1e12)
	}
	fmt.Fprintf(&b, "weighted avg: BuffOpt %.1f ps, DelayOpt %.1f ps, penalty %.2f%%\n",
		t.AvgBuffOpt*1e12, t.AvgDelayOpt*1e12, t.PenaltyPercent)
	return b.String()
}
