package experiments

import "testing"

func TestSizingAblation(t *testing.T) {
	s := testSuite(t)
	a := s.RunSizingAblation()
	if a.Failures != 0 {
		t.Errorf("%d failures", a.Failures)
	}
	// Sizing enlarges the search space: never more buffers in total.
	if a.BuffersSized > a.BuffersPlain {
		t.Errorf("sizing increased total buffers %d → %d", a.BuffersPlain, a.BuffersSized)
	}
	if a.WidenedWires == 0 {
		t.Errorf("sizing never widened a wire across the suite")
	}
	if s := a.Format(); s == "" {
		t.Errorf("empty format")
	}
}

func TestProblem3Tradeoff(t *testing.T) {
	tr, err := RunProblem3Tradeoff()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Points) < 5 {
		t.Fatalf("too few points: %d", len(tr.Points))
	}
	// The curve must show the Section IV-C trade: infeasible at low
	// budgets, then monotonically improving slack with diminishing
	// returns.
	sawInfeasible := false
	prev := -1e18
	for _, p := range tr.Points {
		if !p.Clean {
			sawInfeasible = true
			continue
		}
		if p.SlackPS < prev-1e-6 {
			t.Errorf("slack decreased with larger budget: %v", tr.Points)
		}
		prev = p.SlackPS
	}
	if !sawInfeasible {
		t.Errorf("no infeasible low-budget points; the instance is too easy")
	}
	if prev < 0 {
		t.Errorf("final slack negative: %g", prev)
	}
	if s := tr.Format(); s == "" {
		t.Errorf("empty format")
	}
}

func TestGreedyAblation(t *testing.T) {
	a := testSuite(t).RunGreedyAblation()
	// The DP fixes everything the greedy baseline fixes (and possibly
	// more), and greedy can never beat the optimal slack.
	if a.DPFixed < a.GreedyFixed {
		t.Errorf("DP fixed %d nets, greedy %d", a.DPFixed, a.GreedyFixed)
	}
	if a.DPFixed != a.Nets {
		t.Errorf("DP failed to fix %d nets", a.Nets-a.DPFixed)
	}
	if a.SlackGapAvg < -1e-12 {
		t.Errorf("greedy average slack beats the optimal DP by %g", -a.SlackGapAvg)
	}
	if s := a.Format(); s == "" {
		t.Errorf("empty format")
	}
}

func TestExplicitModeAblation(t *testing.T) {
	a := testSuite(t).RunExplicitModeAblation()
	if a.Failures != 0 {
		t.Errorf("%d failures", a.Failures)
	}
	// Measured couplings are drawn at or below the worst-case estimate,
	// so explicit mode can never need more buffers in total.
	if a.ExplicitBuffers > a.EstimationBuffers {
		t.Errorf("explicit mode needed more buffers (%d) than estimation (%d)",
			a.ExplicitBuffers, a.EstimationBuffers)
	}
	if a.NetsCheaper == 0 {
		t.Errorf("lighter couplings never saved a buffer; the ablation is degenerate")
	}
	if s := a.Format(); s == "" {
		t.Errorf("empty format")
	}
}

func TestBufferCountCurve(t *testing.T) {
	c, err := RunBufferCountCurve()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 11 {
		t.Fatalf("points = %d", len(c.Points))
	}
	// Delay is non-increasing in the buffer budget (DelayOpt is optimal
	// per budget) and the first buffers buy the most.
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].DelayPS > c.Points[i-1].DelayPS+1e-6 {
			t.Errorf("delay rose at k=%d: %v", i, c.Points)
		}
	}
	firstGain := c.Points[0].DelayPS - c.Points[1].DelayPS
	lastGain := c.Points[len(c.Points)-2].DelayPS - c.Points[len(c.Points)-1].DelayPS
	if firstGain <= lastGain {
		t.Errorf("no diminishing returns: first gain %.1f, last %.1f", firstGain, lastGain)
	}
	if s := c.Format(); s == "" {
		t.Errorf("empty format")
	}
}
