package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
	"buffopt/internal/steiner"
)

// RoutingRow summarizes one topology generator across the sample.
type RoutingRow struct {
	Name string
	// Totals across the sample: routed wirelength (m), unbuffered worst
	// delay (s), buffers BuffOpt needed, post-BuffOpt worst delay (s).
	WirelengthMM float64
	BareDelayPS  float64
	Buffers      int
	FixedDelayPS float64
	Failures     int
}

// RoutingAblation compares the routing substrates — rectilinear MST,
// Prim–Dijkstra blend, iterated 1-Steiner — by what actually matters to
// this paper: how many buffers the noise fix needs and what delay
// results.
type RoutingAblation struct {
	Nets int
	Rows []RoutingRow
}

// RunRoutingAblation routes the same pin sets with each generator and
// runs the BuffOpt tool on each result.
func RunRoutingAblation(nets int) (RoutingAblation, error) {
	if nets <= 0 {
		nets = 30
	}
	rng := rand.New(rand.NewSource(8))
	tech := steiner.Tech{RPerLen: 80e3, CPerLen: 200e-12}
	params := noise.SectionV()
	lib := buffers.DefaultLibrary(0.8)

	pinSets := make([]steiner.Net, nets)
	for i := range pinSets {
		n := steiner.Net{
			Name:    fmt.Sprintf("abl%02d", i),
			Driver:  steiner.Point{},
			DriverR: 150 + 400*rng.Float64(),
			DriverT: 50e-12,
		}
		span := (2 + 4*rng.Float64()) * 1e-3
		for s := 0; s < 3+rng.Intn(6); s++ {
			n.Sinks = append(n.Sinks, steiner.Sink{
				Name:        fmt.Sprintf("s%d", s),
				At:          steiner.Point{X: rng.Float64() * span, Y: rng.Float64() * span},
				Cap:         (15 + 30*rng.Float64()) * 1e-15,
				RAT:         2e-9,
				NoiseMargin: 0.8,
			})
		}
		pinSets[i] = n
	}

	gens := []struct {
		name  string
		route func(steiner.Net) (*rctree.Tree, error)
	}{
		{"rect. MST", func(n steiner.Net) (*rctree.Tree, error) {
			return steiner.Route(n, tech, steiner.RectilinearMST)
		}},
		{"Prim-Dijkstra(.5)", func(n steiner.Net) (*rctree.Tree, error) {
			return steiner.RoutePrimDijkstra(n, tech, 0.5)
		}},
		{"1-Steiner", func(n steiner.Net) (*rctree.Tree, error) {
			return steiner.Route(n, tech, steiner.OneSteiner)
		}},
	}

	out := RoutingAblation{Nets: nets}
	for _, g := range gens {
		row := RoutingRow{Name: g.name}
		for _, pins := range pinSets {
			tr, err := g.route(pins)
			if err != nil {
				row.Failures++
				continue
			}
			row.WirelengthMM += tr.TotalWireLength() * 1e3
			row.BareDelayPS += elmore.Analyze(tr, nil).MaxDelay * 1e12

			seg := tr.Clone()
			if _, err := segment.ByLength(seg, 0.5e-3); err != nil {
				row.Failures++
				continue
			}
			if _, err := seg.InsertBelow(seg.Root()); err != nil {
				row.Failures++
				continue
			}
			res, err := core.BuffOptMinBuffers(seg, lib, params, core.Options{})
			if err != nil {
				row.Failures++
				continue
			}
			row.Buffers += res.NumBuffers()
			row.FixedDelayPS += elmore.Analyze(res.Tree, res.Buffers).MaxDelay * 1e12
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Format renders the ablation.
func (a RoutingAblation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: routing substrate (%d pin sets, totals)\n", a.Nets)
	fmt.Fprintf(&b, "%-20s %-12s %-14s %-10s %-14s\n",
		"topology", "wire (mm)", "bare dly (ps)", "buffers", "fixed dly (ps)")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-20s %-12.2f %-14.0f %-10d %-14.0f",
			r.Name, r.WirelengthMM, r.BareDelayPS, r.Buffers, r.FixedDelayPS)
		if r.Failures > 0 {
			fmt.Fprintf(&b, " (%d failures)", r.Failures)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}
