package experiments

import "testing"

func TestFig2(t *testing.T) {
	f, err := RunFig2()
	if err != nil {
		t.Fatal(err)
	}
	// Three partially overlapping spans over an 8 mm line yield 7 pieces
	// (2 uncovered ends, 3 single-aggressor, 2 double-aggressor).
	if f.Segments != 7 {
		t.Errorf("segments = %d, want 7", f.Segments)
	}
	if len(f.SegmentCurrents) != f.Segments {
		t.Fatalf("current list mismatch")
	}
	// Uncovered end pieces inject nothing.
	if f.SegmentCurrents[0] != 0 || f.SegmentCurrents[f.Segments-1] != 0 {
		t.Errorf("end segments inject current: %v", f.SegmentCurrents)
	}
	// Covered pieces inject something.
	for i := 1; i < f.Segments-1; i++ {
		if f.SegmentCurrents[i] <= 0 {
			t.Errorf("covered segment %d injects nothing", i)
		}
	}
	if !f.ExplicitClean || !f.SimClean {
		t.Errorf("explicit-mode repair not clean: %+v", f)
	}
	// The estimation mode's uniform worst-case assumption can only demand
	// at least as many buffers as the true explicit coupling.
	if f.EstimationBuffers < f.ExplicitBuffers {
		t.Errorf("estimation mode (%d buffers) cheaper than explicit (%d)",
			f.EstimationBuffers, f.ExplicitBuffers)
	}
	if s := f.Format(); s == "" {
		t.Errorf("empty format")
	}
}
