// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the synthetic benchmark suite:
//
//	Table I   — sink distribution of the 500 test nets
//	Table II  — noise violations reported by the detailed simulator
//	            (noisesim, standing in for 3dnoise) before and after
//	            BuffOpt, plus the metric's conservatism gap
//	Table III — noise avoidance of BuffOpt versus DelayOpt(k)
//	Table IV  — average delay reduction and the BuffOpt delay penalty
//
// plus the figure-shaped parameter sweeps (Theorem 1 maximal lengths,
// eq. 17 separation distances, the Fig. 1 with/without-buffer noise demo,
// and the Fig. 7 iterative placement walk).
//
// Every run is deterministic in Config.Seed. Work is spread across
// goroutines net-by-net; all reported CPU times are wall-clock for the
// whole parallel batch.
package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"buffopt/internal/core"
	"buffopt/internal/netgen"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

// Config parameterizes an experiment run.
type Config struct {
	Seed    int64
	NumNets int // suite size; the paper uses 500
	// SegmentLength is the wire-segmenting granularity fed to the dynamic
	// programs (Alpert–Devgan preprocessing). Default 0.5 mm.
	SegmentLength float64
	// MaxDelayOptK is the largest DelayOpt(k) run in Table III. 0 means
	// "the largest buffer count BuffOpt used", matching the paper's
	// choice of 4.
	MaxDelayOptK int
	// SafePruning switches Algorithm 3 to exact multi-buffer pruning.
	SafePruning bool
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// DPWorkers bounds the worker pool inside each net's dynamic program
	// (core.Options.Workers): 0 lets the DP decide per tree, 1 forces the
	// serial walk, N > 1 forces an N-worker pool. Results are identical
	// either way; only the schedule changes.
	DPWorkers int
}

// coreOptions builds the solver options every table/ablation run shares.
func (c Config) coreOptions() core.Options {
	return core.Options{SafePruning: c.SafePruning, Workers: c.DPWorkers}
}

func (c Config) withDefaults() Config {
	if c.NumNets == 0 {
		c.NumNets = 500
	}
	if c.SegmentLength == 0 {
		c.SegmentLength = 0.5e-3
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Suite bundles the generated nets with their segmented copies (the form
// the dynamic programs consume).
type Suite struct {
	*netgen.Suite
	Segmented []*rctree.Tree
	Config    Config

	buffOptOnce sync.Once
	buffOpt     []netResult
	buffOptCPU  time.Duration
}

// NewSuite generates and segments the benchmark suite.
func NewSuite(cfg Config) (*Suite, error) {
	cfg = cfg.withDefaults()
	base, err := netgen.Generate(netgen.Config{Seed: cfg.Seed, NumNets: cfg.NumNets})
	if err != nil {
		return nil, err
	}
	s := &Suite{Suite: base, Config: cfg}
	s.Segmented = make([]*rctree.Tree, len(base.Nets))
	for i, tr := range base.Nets {
		seg := tr.Clone()
		if _, err := segment.ByLength(seg, cfg.SegmentLength); err != nil {
			return nil, fmt.Errorf("experiments: segmenting net %d: %w", i, err)
		}
		// A candidate site directly at the driver output: weak drivers on
		// multi-branch nets can only be decoupled there (Algorithm 1/2
		// insert this node themselves; the dynamic program needs it to
		// exist).
		if _, err := seg.InsertBelow(seg.Root()); err != nil {
			return nil, fmt.Errorf("experiments: root site for net %d: %w", i, err)
		}
		s.Segmented[i] = seg
	}
	return s, nil
}

// forEachNet runs fn(i) for every net index across Config.Workers
// goroutines and waits.
func (s *Suite) forEachNet(fn func(i int)) {
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.Config.Workers)
	for i := range s.Nets {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// ---------------------------------------------------------------- Table I

// TableI is the sink-count distribution of the suite.
type TableI struct {
	Bins   [][2]int
	Counts []int
	Total  int
}

// RunTableI computes the Table I histogram.
func (s *Suite) RunTableI() TableI {
	return TableI{Bins: netgen.Bins(), Counts: s.SinkHistogram(), Total: len(s.Nets)}
}

// Format renders the table in the paper's row style.
func (t TableI) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: sink distribution of the %d test nets\n", t.Total)
	fmt.Fprintf(&b, "%-12s %s\n", "sinks", "nets")
	for i, bin := range t.Bins {
		label := fmt.Sprintf("%d", bin[0])
		if bin[1] != bin[0] {
			label = fmt.Sprintf("%d-%d", bin[0], bin[1])
		}
		fmt.Fprintf(&b, "%-12s %d\n", label, t.Counts[i])
	}
	return b.String()
}

// --------------------------------------------------------------- BuffOpt

// netResult is the per-net outcome of the BuffOpt tool (Problem 3
// configuration, as shipped in Section V).
type netResult struct {
	sol        *core.Solution
	slack      float64
	numBuffers int
	err        error
}

// runBuffOpt executes the BuffOpt tool on every segmented net (cached on
// the suite after the first call).
func (s *Suite) runBuffOpt() []netResult {
	s.buffOptOnce.Do(func() {
		start := time.Now()
		// The snapshot gauge and the table CPU column come from this one
		// measurement, so experiments output and -metrics always agree.
		defer func() {
			s.buffOptCPU = time.Since(start)
			obs.Set("experiments.buffopt.cpu_ns", int64(s.buffOptCPU))
		}()
		res := make([]netResult, len(s.Nets))
		s.forEachNet(func(i int) {
			r, err := core.BuffOptMinBuffers(s.Segmented[i], s.Library, s.Tech.Noise,
				s.Config.coreOptions())
			if err != nil {
				res[i] = netResult{err: err}
				return
			}
			res[i] = netResult{sol: r.Solution, slack: r.Slack, numBuffers: r.NumBuffers()}
		})
		s.buffOpt = res
	})
	return s.buffOpt
}
