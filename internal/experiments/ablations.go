package experiments

import (
	"fmt"
	"strings"
	"time"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

// SizingAblation compares buffer insertion alone against simultaneous
// buffer insertion and wire sizing (the Lillis [18] extension the paper
// builds on) across the benchmark suite.
type SizingAblation struct {
	Nets int
	// BuffersPlain/BuffersSized are total buffers inserted by
	// BuffOptMinBuffers without and with sizing.
	BuffersPlain, BuffersSized int
	// WidenedWires counts wires assigned a non-minimum width.
	WidenedWires int
	// SlackGainAvg is the mean slack change from sizing, seconds. It can
	// be slightly negative: sizing often satisfies noise with fewer
	// buffers, and the min-buffer primary objective then accepts a
	// smaller (still non-negative) slack.
	SlackGainAvg float64
	// NetsImproved counts nets where sizing improved slack or saved
	// buffers.
	NetsImproved int
	Failures     int
}

// RunSizingAblation runs the comparison over the suite.
func (s *Suite) RunSizingAblation() SizingAblation {
	out := SizingAblation{Nets: len(s.Nets)}
	sizing := &core.Sizing{Widths: []float64{1, 2, 4}}
	type per struct {
		plainB, sizedB, widened int
		gain                    float64
		improved                bool
		failed                  bool
	}
	rows := make([]per, len(s.Nets))
	s.forEachNet(func(i int) {
		plain, err1 := core.BuffOptMinBuffers(s.Segmented[i], s.Library, s.Tech.Noise,
			core.Options{})
		sized, err2 := core.BuffOptMinBuffers(s.Segmented[i], s.Library, s.Tech.Noise,
			core.Options{Sizing: sizing})
		if err1 != nil || err2 != nil {
			rows[i].failed = true
			return
		}
		rows[i] = per{
			plainB:   plain.NumBuffers(),
			sizedB:   sized.NumBuffers(),
			widened:  len(sized.Widths),
			gain:     sized.Slack - plain.Slack,
			improved: sized.Slack > plain.Slack+1e-15 || sized.NumBuffers() < plain.NumBuffers(),
		}
	})
	n := 0
	for _, r := range rows {
		if r.failed {
			out.Failures++
			continue
		}
		out.BuffersPlain += r.plainB
		out.BuffersSized += r.sizedB
		out.WidenedWires += r.widened
		out.SlackGainAvg += r.gain
		if r.improved {
			out.NetsImproved++
		}
		n++
	}
	if n > 0 {
		out.SlackGainAvg /= float64(n)
	}
	return out
}

// Format renders the ablation.
func (a SizingAblation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: buffer insertion alone vs + wire sizing (%d nets)\n", a.Nets)
	fmt.Fprintf(&b, "buffers: %d plain → %d with sizing; %d wires widened\n",
		a.BuffersPlain, a.BuffersSized, a.WidenedWires)
	fmt.Fprintf(&b, "avg slack change %.1f ps; %d nets improved (slack or buffers); %d failures\n",
		a.SlackGainAvg*1e12, a.NetsImproved, a.Failures)
	return b.String()
}

// GreedyAblation compares the iterative single-buffer heuristic of the
// paper's related work ([14], [20]) against the BuffOpt dynamic program.
type GreedyAblation struct {
	Nets int
	// GreedyFixed/DPFixed count nets each method left noise-clean.
	GreedyFixed, DPFixed int
	// GreedyBuffers/DPBuffers are total insertions (over nets both fixed).
	GreedyBuffers, DPBuffers int
	// SlackGapAvg is the mean DP-minus-greedy slack over nets both fixed,
	// seconds (>= 0: the DP is optimal).
	SlackGapAvg float64
	// GreedyCPU and DPCPU are wall-clock totals.
	GreedyCPU, DPCPU time.Duration
}

// RunGreedyAblation runs both methods over the suite. The greedy baseline
// maximizes slack subject to noise like BuffOpt (Problem 2), so the DP
// side uses core.BuffOpt for an apples-to-apples slack comparison.
func (s *Suite) RunGreedyAblation() GreedyAblation {
	out := GreedyAblation{Nets: len(s.Nets)}
	type per struct {
		gFixed, dFixed bool
		gBuf, dBuf     int
		gap            float64
		gCPU, dCPU     time.Duration
	}
	rows := make([]per, len(s.Nets))
	s.forEachNet(func(i int) {
		r := &rows[i]
		start := time.Now()
		g, gerr := core.GreedyIterative(s.Segmented[i], s.Library,
			core.GreedyOptions{Noise: true, Params: s.Tech.Noise})
		r.gCPU = time.Since(start)
		start = time.Now()
		d, derr := core.BuffOpt(s.Segmented[i], s.Library, s.Tech.Noise, core.Options{})
		r.dCPU = time.Since(start)
		if gerr == nil {
			r.gFixed = true
			r.gBuf = g.NumBuffers()
		}
		if derr == nil {
			r.dFixed = true
			r.dBuf = d.NumBuffers()
		}
		if gerr == nil && derr == nil {
			r.gap = d.Slack - g.Slack
		}
	})
	n := 0
	for _, r := range rows {
		if r.gFixed {
			out.GreedyFixed++
		}
		if r.dFixed {
			out.DPFixed++
		}
		out.GreedyCPU += r.gCPU
		out.DPCPU += r.dCPU
		if r.gFixed && r.dFixed {
			out.GreedyBuffers += r.gBuf
			out.DPBuffers += r.dBuf
			out.SlackGapAvg += r.gap
			n++
		}
	}
	if n > 0 {
		out.SlackGapAvg /= float64(n)
	}
	obs.Set("experiments.greedy.cpu_ns", int64(out.GreedyCPU))
	obs.Set("experiments.dp.cpu_ns", int64(out.DPCPU))
	return out
}

// Format renders the ablation.
func (a GreedyAblation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: iterative greedy ([14],[20]) vs BuffOpt DP (%d nets)\n", a.Nets)
	fmt.Fprintf(&b, "nets fixed: greedy %d, DP %d\n", a.GreedyFixed, a.DPFixed)
	fmt.Fprintf(&b, "buffers (both-fixed nets): greedy %d, DP %d\n", a.GreedyBuffers, a.DPBuffers)
	fmt.Fprintf(&b, "avg slack left on the table by greedy: %.1f ps\n", a.SlackGapAvg*1e12)
	fmt.Fprintf(&b, "cpu: greedy %.2fs, DP %.2fs\n", a.GreedyCPU.Seconds(), a.DPCPU.Seconds())
	return b.String()
}

// CurvePoint is one sample of the delay-vs-buffer-count curve.
type CurvePoint struct {
	Buffers int
	DelayPS float64
}

// BufferCountCurve is the classic Van Ginneken picture the paper's
// introduction paints: inserting buffers turns the quadratic interconnect
// delay nearly linear, with diminishing returns — delay falls steeply for
// the first buffers and flattens (eventually buffer delays dominate).
type BufferCountCurve struct {
	LineMM float64
	Points []CurvePoint
}

// RunBufferCountCurve sweeps DelayOpt(k) on a Section V line.
func RunBufferCountCurve() (BufferCountCurve, error) {
	const mm = 10.0
	tr := rctree.New("curve", 300, 50e-12)
	if _, err := tr.AddSink(tr.Root(),
		rctree.Wire{R: 80 * mm, C: 200e-15 * mm, Length: mm * 1e-3}, "s", 30e-15, 0, 0.8); err != nil {
		return BufferCountCurve{}, err
	}
	if _, err := segment.ByLength(tr, 0.25e-3); err != nil {
		return BufferCountCurve{}, err
	}
	lib := buffers.DefaultLibrary(0.8)
	out := BufferCountCurve{LineMM: mm}
	for k := 0; k <= 10; k++ {
		res, err := core.DelayOptK(tr, lib, k, core.Options{})
		if err != nil {
			return out, err
		}
		d := elmore.Analyze(res.Tree, res.Buffers).MaxDelay
		out.Points = append(out.Points, CurvePoint{Buffers: k, DelayPS: d * 1e12})
	}
	return out, nil
}

// Format renders the curve.
func (c BufferCountCurve) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Delay vs buffer count on a %.0f mm line (the intro's quadratic-to-linear picture)\n", c.LineMM)
	fmt.Fprintf(&b, "%-10s %s\n", "buffers", "max delay (ps)")
	for _, p := range c.Points {
		fmt.Fprintf(&b, "%-10d %.1f\n", p.Buffers, p.DelayPS)
	}
	return b.String()
}

// TradeoffPoint is one row of the Problem 3 buffers/slack trade-off.
type TradeoffPoint struct {
	Buffers int
	SlackPS float64
	Clean   bool
}

// Problem3Tradeoff is the "six additional buffers might be inserted to
// squeeze out an extra 25 ps" discussion of Section IV-C made concrete:
// for one net, the best noise-feasible slack at every buffer budget.
type Problem3Tradeoff struct {
	Points []TradeoffPoint
}

// RunProblem3Tradeoff sweeps BuffOpt(k) on a Section V-style 8 mm line.
func RunProblem3Tradeoff() (Problem3Tradeoff, error) {
	tech := noise.SectionV()
	const mm = 8.0
	tr := rctree.New("tradeoff", 300, 50e-12)
	if _, err := tr.AddSink(tr.Root(),
		rctree.Wire{R: 80 * mm, C: 200e-15 * mm, Length: mm * 1e-3}, "s", 30e-15, 2e-9, 0.8); err != nil {
		return Problem3Tradeoff{}, err
	}
	if _, err := segment.ByLength(tr, 0.25e-3); err != nil {
		return Problem3Tradeoff{}, err
	}
	if _, err := tr.InsertBelow(tr.Root()); err != nil {
		return Problem3Tradeoff{}, err
	}
	lib := buffers.DefaultLibrary(0.8)
	var out Problem3Tradeoff
	for k := 0; k <= 8; k++ {
		res, err := core.BuffOptK(tr, lib, tech, k, core.Options{})
		if err != nil {
			out.Points = append(out.Points, TradeoffPoint{Buffers: k, Clean: false})
			continue
		}
		out.Points = append(out.Points, TradeoffPoint{
			Buffers: res.NumBuffers(),
			SlackPS: res.Slack * 1e12,
			Clean:   true,
		})
	}
	return out, nil
}

// Format renders the trade-off curve.
func (p Problem3Tradeoff) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Problem 3 trade-off: best noise-clean slack per buffer budget\n")
	fmt.Fprintf(&b, "%-10s %-12s %s\n", "budget", "slack (ps)", "noise clean")
	for _, pt := range p.Points {
		if !pt.Clean {
			fmt.Fprintf(&b, "%-10d %-12s %v\n", pt.Buffers, "—", false)
			continue
		}
		fmt.Fprintf(&b, "%-10d %-12.1f %v\n", pt.Buffers, pt.SlackPS, true)
	}
	return b.String()
}
