// Package multisource handles nets with more than one driver — buses and
// bidirectional signals — the extension the paper attributes to Lillis
// [17] ("Timing optimization for multi-source nets: characterization and
// optimal repeater insertion").
//
// A multi-source net is an unrooted routing tree with k terminals, each
// of which can either drive the net (one at a time) or receive it. Mode i
// re-roots the tree at terminal i; inserted repeaters are bidirectional
// (an anti-parallel pair at one location, the standard realization), so a
// single placement must satisfy the timing and noise constraints of every
// mode simultaneously.
//
// The package provides the re-rooting transform with a stable node
// mapping, per-mode analysis, and a worst-mode optimizer built on the
// same greedy framework as core.GreedyIterative. The exact multi-mode
// dynamic program of [17] is out of scope (see DESIGN.md); the optimizer
// here is a documented heuristic whose results are verified mode-by-mode
// with the standard analyzers.
package multisource

import (
	"fmt"
	"math"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
)

// Terminal is one endpoint that can both drive and receive.
type Terminal struct {
	// Node is the terminal's node in the base tree: the source for
	// terminal 0, a sink for the others.
	Node rctree.NodeID
	// Driving personality (used when this terminal is the active source).
	DriverR, DriverT float64
	// Receiving personality (used in every other mode).
	Cap, RAT, NoiseMargin float64
}

// Net is a multi-source net: a base tree rooted at terminal 0 plus the
// terminal list.
type Net struct {
	Base      *rctree.Tree
	Terminals []Terminal
}

// Validate checks the net's structure.
func (n *Net) Validate() error {
	if err := n.Base.Validate(); err != nil {
		return err
	}
	if len(n.Terminals) < 2 {
		return fmt.Errorf("multisource: need at least 2 terminals, have %d", len(n.Terminals))
	}
	if n.Terminals[0].Node != n.Base.Root() {
		return fmt.Errorf("multisource: terminal 0 must be the base root")
	}
	for i, term := range n.Terminals {
		if i == 0 {
			continue
		}
		if int(term.Node) >= n.Base.Len() || n.Base.Node(term.Node).Kind != rctree.Sink {
			return fmt.Errorf("multisource: terminal %d node %d is not a sink of the base tree", i, term.Node)
		}
		if term.DriverR <= 0 {
			return fmt.Errorf("multisource: terminal %d has no driving resistance", i)
		}
	}
	return nil
}

// Mode returns the tree rooted at terminal i — terminal i becomes the
// source with its driving personality, every other terminal a sink with
// its receiving personality — plus the mapping from base node IDs to mode
// node IDs (terminals may gain a zero-wire pin node; the map points at
// the node carrying the original node's position in the topology, which
// is where a buffer at that base node lands).
func (n *Net) Mode(i int) (*rctree.Tree, map[rctree.NodeID]rctree.NodeID, error) {
	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	if i < 0 || i >= len(n.Terminals) {
		return nil, nil, fmt.Errorf("multisource: mode %d out of range", i)
	}
	term := n.Terminals[i]

	// Undirected adjacency with the wire attached to each edge.
	type edge struct {
		to   rctree.NodeID
		wire rctree.Wire
	}
	adj := make([][]edge, n.Base.Len())
	for _, v := range n.Base.Preorder() {
		if v == n.Base.Root() {
			continue
		}
		p := n.Base.Node(v).Parent
		w := n.Base.Node(v).Wire
		adj[p] = append(adj[p], edge{to: v, wire: w})
		adj[v] = append(adj[v], edge{to: p, wire: w})
	}
	termIdx := map[rctree.NodeID]int{}
	for ti, t := range n.Terminals {
		termIdx[t.Node] = ti
	}

	out := rctree.New(n.Base.Node(n.Base.Root()).Name, term.DriverR, term.DriverT)
	out.Node(out.Root()).X = n.Base.Node(term.Node).X
	out.Node(out.Root()).Y = n.Base.Node(term.Node).Y

	mapping := map[rctree.NodeID]rctree.NodeID{term.Node: out.Root()}
	visited := make([]bool, n.Base.Len())
	visited[term.Node] = true

	// DFS from the new root; attach every neighbor through its edge wire.
	type frame struct {
		base rctree.NodeID
		mode rctree.NodeID
	}
	stack := []frame{{base: term.Node, mode: out.Root()}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range adj[f.base] {
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			baseNode := n.Base.Node(e.to)
			ti, isTerm := termIdx[e.to]
			degree := len(adj[e.to])

			var id rctree.NodeID
			var err error
			switch {
			case isTerm && degree == 1:
				// A leaf terminal: plain sink with its receiving data.
				t := n.Terminals[ti]
				id, err = out.AddSink(f.mode, e.wire, baseNode.Name, t.Cap, t.RAT, t.NoiseMargin)
			case isTerm:
				// A through terminal (the old root with children, or a
				// tapped sink): internal routing node plus a zero-wire pin.
				id, err = out.AddInternal(f.mode, e.wire, baseNode.BufferOK || baseNode.Kind != rctree.Internal)
				if err == nil {
					t := n.Terminals[ti]
					_, err = out.AddSink(id, rctree.Wire{}, baseNode.Name, t.Cap, t.RAT, t.NoiseMargin)
				}
			case baseNode.Kind == rctree.Sink:
				id, err = out.AddSink(f.mode, e.wire, baseNode.Name, baseNode.Cap, baseNode.RAT, baseNode.NoiseMargin)
			default:
				id, err = out.AddInternal(f.mode, e.wire, baseNode.BufferOK)
			}
			if err != nil {
				return nil, nil, err
			}
			out.Node(id).X, out.Node(id).Y = baseNode.X, baseNode.Y
			mapping[e.to] = id
			stack = append(stack, frame{base: e.to, mode: id})
		}
	}
	out.Binarize()
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("multisource: mode %d tree invalid: %w", i, err)
	}
	return out, mapping, nil
}

// Placement is a bidirectional-repeater assignment on base-tree nodes.
type Placement = map[rctree.NodeID]buffers.Buffer

// ModeReport is one mode's analysis of a placement.
type ModeReport struct {
	Mode       int
	Slack      float64
	MaxDelay   float64
	Violations int
	// Excess is the total noise above margins across the mode's gate
	// inputs, V — the hill-climbing signal between violation counts.
	Excess float64
}

// Evaluate analyzes a placement in every mode.
func (n *Net) Evaluate(assign Placement, p noise.Params) ([]ModeReport, error) {
	reports := make([]ModeReport, len(n.Terminals))
	for i := range n.Terminals {
		tree, mapping, err := n.Mode(i)
		if err != nil {
			return nil, err
		}
		modeAssign := make(map[rctree.NodeID]buffers.Buffer, len(assign))
		for v, b := range assign {
			mv, ok := mapping[v]
			if !ok {
				return nil, fmt.Errorf("multisource: placement node %d missing from mode %d", v, i)
			}
			if mv == tree.Root() {
				return nil, fmt.Errorf("multisource: buffer at terminal %d conflicts with mode %d", v, i)
			}
			modeAssign[mv] = b
		}
		timing := elmore.Analyze(tree, modeAssign)
		nz := noise.Analyze(tree, modeAssign, p)
		excess := 0.0
		for _, v := range nz.Violations {
			excess += v.Noise - v.Margin
		}
		reports[i] = ModeReport{
			Mode:       i,
			Slack:      timing.WorstSlack,
			MaxDelay:   timing.MaxDelay,
			Violations: len(nz.Violations),
			Excess:     excess,
		}
	}
	return reports, nil
}

// worst aggregates mode reports lexicographically: total violations
// first, then total excess noise, then the minimum slack.
func worst(reports []ModeReport) (violations int, excess, slack float64) {
	slack = math.Inf(1)
	for _, r := range reports {
		violations += r.Violations
		excess += r.Excess
		if r.Slack < slack {
			slack = r.Slack
		}
	}
	return violations, excess, slack
}

// betterState compares (violations, excess, slack) lexicographically.
func betterState(v1 int, e1, s1 float64, v2 int, e2, s2 float64) bool {
	if v1 != v2 {
		return v1 < v2
	}
	if e1 < e2-1e-12 {
		return true
	}
	if e1 > e2+1e-12 {
		return false
	}
	return s1 > s2+1e-15
}

// Optimize greedily inserts bidirectional repeaters to first eliminate
// noise violations in every mode and then maximize the worst-mode slack —
// the multi-source counterpart of core.GreedyIterative. maxBuffers bounds
// the insertions (0 = unbounded). The exact [17] dynamic program is out
// of scope; results are certified per mode by Evaluate.
func (n *Net) Optimize(lib *buffers.Library, p noise.Params, maxBuffers int) (Placement, []ModeReport, error) {
	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	lib = lib.NonInverting()
	if err := lib.Validate(); err != nil {
		return nil, nil, fmt.Errorf("multisource: %w", err)
	}

	var sites []rctree.NodeID
	for _, v := range n.Base.Preorder() {
		node := n.Base.Node(v)
		if node.Kind == rctree.Internal && node.BufferOK {
			sites = append(sites, v)
		}
	}
	assign := Placement{}
	reports, err := n.Evaluate(assign, p)
	if err != nil {
		return nil, nil, err
	}
	curV, curE, curS := worst(reports)

	for {
		if maxBuffers > 0 && len(assign) >= maxBuffers {
			break
		}
		bestV, bestE, bestS := curV, curE, curS
		var bestSite rctree.NodeID = rctree.None
		var bestBuf buffers.Buffer
		for _, v := range sites {
			if _, used := assign[v]; used {
				continue
			}
			for _, b := range lib.Buffers {
				assign[v] = b
				r, err := n.Evaluate(assign, p)
				delete(assign, v)
				if err != nil {
					return nil, nil, err
				}
				tv, te, ts := worst(r)
				if betterState(tv, te, ts, bestV, bestE, bestS) {
					bestV, bestE, bestS, bestSite, bestBuf = tv, te, ts, v, b
				}
			}
		}
		if bestSite == rctree.None {
			break
		}
		assign[bestSite] = bestBuf
		curV, curE, curS = bestV, bestE, bestS
	}

	reports, err = n.Evaluate(assign, p)
	if err != nil {
		return nil, nil, err
	}
	if v, _, _ := worst(reports); v > 0 {
		return assign, reports, fmt.Errorf("multisource: %d noise violations remain across modes", v)
	}
	return assign, reports, nil
}
