package multisource

import (
	"math"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

var unitParams = noise.Params{CouplingRatio: 1, Slope: 1}

// busNet builds a 3-terminal bus: T0 (base root) — 4 units — v — 3 units
// — T1, with T2 hanging 2 units below v. All terminals can drive.
func busNet(t *testing.T) *Net {
	t.Helper()
	base := rctree.New("bus", 1.5, 0.1)
	v, err := base.AddInternal(base.Root(), rctree.Wire{R: 4, C: 4, Length: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := base.AddSink(v, rctree.Wire{R: 3, C: 3, Length: 3}, "T1", 0.2, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := base.AddSink(v, rctree.Wire{R: 2, C: 2, Length: 2}, "T2", 0.3, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := segment.ByCount(base, 4); err != nil {
		t.Fatal(err)
	}
	return &Net{
		Base: base,
		Terminals: []Terminal{
			{Node: base.Root(), DriverR: 1.5, DriverT: 0.1, Cap: 0.25, RAT: 50, NoiseMargin: 5},
			{Node: t1, DriverR: 2, DriverT: 0.2, Cap: 0.2, RAT: 50, NoiseMargin: 5},
			{Node: t2, DriverR: 1, DriverT: 0.1, Cap: 0.3, RAT: 50, NoiseMargin: 5},
		},
	}
}

func TestModeZeroIsBase(t *testing.T) {
	n := busNet(t)
	tree, mapping, err := n.Mode(0)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumSinks() != n.Base.NumSinks() {
		t.Errorf("mode 0 sinks %d, base %d", tree.NumSinks(), n.Base.NumSinks())
	}
	if math.Abs(tree.TotalWireCap()-n.Base.TotalWireCap()) > 1e-12 {
		t.Errorf("mode 0 wire cap changed")
	}
	if mapping[n.Base.Root()] != tree.Root() {
		t.Errorf("root not mapped to root")
	}
	if tree.DriverResistance != 1.5 {
		t.Errorf("mode 0 driver = %g", tree.DriverResistance)
	}
}

func TestReRootingPreservesElectricalTotals(t *testing.T) {
	n := busNet(t)
	baseWireCap := n.Base.TotalWireCap()
	baseLen := n.Base.TotalWireLength()
	for i := range n.Terminals {
		tree, mapping, err := n.Mode(i)
		if err != nil {
			t.Fatalf("mode %d: %v", i, err)
		}
		if err := tree.Validate(); err != nil {
			t.Fatalf("mode %d invalid: %v", i, err)
		}
		if math.Abs(tree.TotalWireCap()-baseWireCap) > 1e-12 {
			t.Errorf("mode %d wire cap %g, base %g", i, tree.TotalWireCap(), baseWireCap)
		}
		if math.Abs(tree.TotalWireLength()-baseLen) > 1e-12 {
			t.Errorf("mode %d length %g, base %g", i, tree.TotalWireLength(), baseLen)
		}
		if tree.DriverResistance != n.Terminals[i].DriverR {
			t.Errorf("mode %d driver %g", i, tree.DriverResistance)
		}
		// Every other terminal appears as a sink with its receiving cap.
		for j, term := range n.Terminals {
			if j == i {
				continue
			}
			mv, ok := mapping[term.Node]
			if !ok {
				t.Fatalf("mode %d: terminal %d unmapped", i, j)
			}
			// The terminal's pin is either the mapped node itself (leaf)
			// or a zero-wire child of it (through terminal).
			pin := mv
			if tree.Node(mv).Kind != rctree.Sink {
				found := false
				for _, c := range tree.Node(mv).Children {
					if tree.Node(c).Kind == rctree.Sink && tree.Node(c).Wire.Length == 0 {
						pin, found = c, true
						break
					}
				}
				if !found {
					t.Fatalf("mode %d: terminal %d has no pin below node %d", i, j, mv)
				}
			}
			if got := tree.Node(pin).Cap; got != term.Cap {
				t.Errorf("mode %d terminal %d cap %g, want %g", i, j, got, term.Cap)
			}
		}
	}
}

// TestTwoPinModeSymmetry: on a symmetric two-terminal line with identical
// drivers, the two modes must produce identical delays and noise.
func TestTwoPinModeSymmetry(t *testing.T) {
	base := rctree.New("p2p", 2, 0.3)
	s, err := base.AddSink(base.Root(), rctree.Wire{R: 5, C: 5, Length: 5}, "far", 0.4, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	n := &Net{
		Base: base,
		Terminals: []Terminal{
			{Node: base.Root(), DriverR: 2, DriverT: 0.3, Cap: 0.4, RAT: 50, NoiseMargin: 5},
			{Node: s, DriverR: 2, DriverT: 0.3, Cap: 0.4, RAT: 50, NoiseMargin: 5},
		},
	}
	reports, err := n.Evaluate(nil, unitParams)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reports[0].MaxDelay-reports[1].MaxDelay) > 1e-12 {
		t.Errorf("asymmetric delays: %g vs %g", reports[0].MaxDelay, reports[1].MaxDelay)
	}
	if math.Abs(reports[0].Slack-reports[1].Slack) > 1e-12 {
		t.Errorf("asymmetric slacks: %g vs %g", reports[0].Slack, reports[1].Slack)
	}
	if reports[0].Violations != reports[1].Violations {
		t.Errorf("asymmetric violations")
	}
}

// TestModeDelayMatchesDirectAnalysis: a mode's report equals analyzing
// the re-rooted tree directly.
func TestModeDelayMatchesDirectAnalysis(t *testing.T) {
	n := busNet(t)
	for i := range n.Terminals {
		tree, _, err := n.Mode(i)
		if err != nil {
			t.Fatal(err)
		}
		reports, err := n.Evaluate(nil, unitParams)
		if err != nil {
			t.Fatal(err)
		}
		an := elmore.Analyze(tree, nil)
		if math.Abs(reports[i].MaxDelay-an.MaxDelay) > 1e-12 {
			t.Errorf("mode %d delay %g, direct %g", i, reports[i].MaxDelay, an.MaxDelay)
		}
	}
}

func TestOptimizeFixesAllModes(t *testing.T) {
	n := busNet(t)
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "BD", Cin: 0.05, R: 1, T: 0.2, NoiseMargin: 5},
	}}
	// The bare net must violate in at least one mode for the test to
	// mean anything.
	before, err := n.Evaluate(nil, unitParams)
	if err != nil {
		t.Fatal(err)
	}
	if v, _, _ := worst(before); v == 0 {
		t.Fatalf("bus is clean unbuffered; instance too easy")
	}
	assign, reports, err := n.Optimize(lib, unitParams, 0)
	if err != nil {
		t.Fatalf("optimize: %v (placement %v)", err, assign)
	}
	for _, r := range reports {
		if r.Violations != 0 {
			t.Errorf("mode %d still violates", r.Mode)
		}
	}
	if len(assign) == 0 {
		t.Errorf("no repeaters inserted on a violating bus")
	}
	// The placement must also improve (or at least not destroy) the
	// worst-mode slack relative to doing nothing only when the bare net
	// was noise-clean — here it fixed violations, which dominates.
}

func TestOptimizeRespectsBound(t *testing.T) {
	n := busNet(t)
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "BD", Cin: 0.05, R: 1, T: 0.2, NoiseMargin: 5},
	}}
	assign, _, _ := n.Optimize(lib, unitParams, 1)
	if len(assign) > 1 {
		t.Errorf("bound ignored: %d buffers", len(assign))
	}
}

func TestValidateErrors(t *testing.T) {
	n := busNet(t)
	bad := &Net{Base: n.Base, Terminals: n.Terminals[:1]}
	if err := bad.Validate(); err == nil {
		t.Errorf("single-terminal net accepted")
	}
	swapped := &Net{Base: n.Base, Terminals: []Terminal{n.Terminals[1], n.Terminals[0]}}
	if err := swapped.Validate(); err == nil {
		t.Errorf("terminal 0 not at root accepted")
	}
	nonSink := &Net{Base: n.Base, Terminals: []Terminal{
		n.Terminals[0],
		{Node: 1, DriverR: 1}, // node 1 is internal
	}}
	if err := nonSink.Validate(); err == nil {
		t.Errorf("internal-node terminal accepted")
	}
	if _, _, err := n.Mode(99); err == nil {
		t.Errorf("out-of-range mode accepted")
	}
}
