package enginetest

import (
	"context"
	"math/rand"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
	"buffopt/internal/testutil"
)

// The exhaustive oracle closes the loop the differential suite cannot:
// cross-engine agreement proves the engines compute the same thing, not
// that the thing is the optimum. On nets small enough to enumerate every
// buffer assignment, every exact engine in the table is checked against
// brute force — for the unconstrained, noise-constrained, and min-weight
// objectives, over single- and multi-type libraries (inverters included,
// so polarity bookkeeping faces the oracle too).

// oracleLibs returns the libraries the oracle sweep quantifies over.
func oracleLibs() []*buffers.Library {
	single := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B", Cin: 0.05, R: 1, T: 0.4, NoiseMargin: 6},
	}}
	multi := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B", Cin: 0.05, R: 1, T: 0.4, NoiseMargin: 6},
		{Name: "b", Cin: 0.02, R: 2.2, T: 0.25, NoiseMargin: 5},
		{Name: "I", Cin: 0.03, R: 1.6, T: 0.2, NoiseMargin: 5, Inverting: true},
	}}
	return []*buffers.Library{single, multi}
}

// oracleSites counts the legal insertion sites brute force enumerates
// over; the sweep keeps this at 8 or below so (|lib|+1)^sites stays far
// under core.MaxExhaustiveAssignments.
func oracleSites(tr *rctree.Tree) int {
	n := 0
	for _, v := range tr.Preorder() {
		if v != tr.Root() && tr.Node(v).BufferOK {
			n++
		}
	}
	return n
}

func TestEnginesMatchExhaustiveOracle(t *testing.T) {
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	trials := 40
	if testing.Short() {
		trials = 12
	}
	rng := rand.New(rand.NewSource(424242))
	table := core.EngineTable()
	checked := 0
	for trial := 0; trial < trials; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 4, MaxSinks: 3, MarginLo: 3, MarginHi: 8,
			RATLo: 40, RATHi: 100, BufferSites: true,
		})
		if _, err := segment.ByCount(tr, 2); err != nil {
			t.Fatal(err)
		}
		if oracleSites(tr) > 8 {
			continue
		}
		for li, lib := range oracleLibs() {
			// Unconstrained and noise-constrained max-slack against the
			// brute-force optimum.
			for _, enforceNoise := range []bool{false, true} {
				objective := core.MaxSlack
				if enforceNoise {
					objective = core.MaxSlackNoise
				}
				want, _, feasible, err := core.ExhaustiveMaxSlackNoise(tr, lib, p, enforceNoise)
				if err != nil {
					t.Fatal(err)
				}
				prob := core.Problem{Tree: tr, Library: lib, Params: p, Objective: objective}
				for _, spec := range table {
					if !spec.Exact {
						continue
					}
					res, err := spec.Run(context.Background(), prob, core.Options{})
					if !feasible {
						if err == nil {
							t.Fatalf("trial %d lib %d %v: engine %s solved an infeasible net",
								trial, li, objective, spec.Name)
						}
						continue
					}
					if err != nil {
						t.Fatalf("trial %d lib %d %v: engine %s failed, oracle slack %g: %v",
							trial, li, objective, spec.Name, want, err)
					}
					if !approx(res.Slack, want) {
						t.Fatalf("trial %d lib %d %v: engine %s slack %g, oracle %g",
							trial, li, objective, spec.Name, res.Slack, want)
					}
				}
			}
			// Min-weight: the oracle minimizes the clean count with no
			// timing or polarity constraint, so the comparison runs on a
			// copy whose sinks have unbounded RATs — timing can never
			// force the DP past the oracle's count, and the unit-weight
			// libraries make cost a count.
			slow := tr.Clone()
			for _, v := range slow.Sinks() {
				slow.Node(v).RAT = 1e9
			}
			bestCount, _, clean, err := core.ExhaustiveMinBuffersNoise(slow, lib, p)
			if err != nil {
				t.Fatal(err)
			}
			prob := core.Problem{Tree: slow, Library: lib, Params: p, Objective: core.MinBuffersNoise}
			for _, spec := range table {
				if !spec.Exact {
					continue
				}
				res, err := spec.Run(context.Background(), prob, core.Options{})
				if !clean {
					if err == nil {
						t.Fatalf("trial %d lib %d minbuf: engine %s solved a noise-unfixable net",
							trial, li, spec.Name)
					}
					continue
				}
				if err != nil {
					t.Fatalf("trial %d lib %d minbuf: engine %s failed, oracle count %d: %v",
						trial, li, spec.Name, bestCount, err)
				}
				// The oracle's enumeration ignores polarity (a buffer
				// assignment only fixing noise), while the DP's min-weight
				// mode also requires sink polarity; with inverters in the
				// library the DP may legitimately need more. Compare
				// exactly for non-inverting libraries, lower-bound
				// otherwise.
				inverterFree := true
				for _, b := range lib.Buffers {
					if b.Inverting {
						inverterFree = false
					}
				}
				if res.Slack >= 0 {
					if inverterFree && res.Cost != bestCount {
						t.Fatalf("trial %d lib %d minbuf: engine %s cost %d, oracle %d",
							trial, li, spec.Name, res.Cost, bestCount)
					}
					if res.Cost < bestCount {
						t.Fatalf("trial %d lib %d minbuf: engine %s cost %d beats oracle %d",
							trial, li, spec.Name, res.Cost, bestCount)
					}
				}
			}
		}
		checked++
	}
	if checked < trials/2 {
		t.Fatalf("only %d of %d trials reached the oracle; the generator is degenerate", checked, trials)
	}
}
