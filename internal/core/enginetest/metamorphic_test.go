package enginetest

import (
	"context"
	"math"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
)

// Metamorphic properties: relations between a problem and a transformed
// version of it that the exact engines must respect regardless of the
// input. Each property runs under every exact engine name, and the
// engines are additionally cross-checked against each other on the
// transformed problems — so a transform that tickles only the fast-merge
// path still gets a classic-DP witness.

// metamorphicCorpus is a small mid-size stratum: big enough to have real
// branch structure, small enough that six properties × three engines
// stay fast.
func metamorphicCorpus(t testing.TB) ([]*rctree.Tree, *buffers.Library, noise.Params) {
	n := 24
	if testing.Short() {
		n = 8
	}
	return buildStratum(t, stratum{name: "meta", seed: 301, nets: n, maxSinks: 12}, n)
}

// exactEngines are the engine names the properties quantify over.
var exactEngines = []string{core.EngineVG, core.EngineLiShi, core.EngineAuto}

// optimize runs one delay-objective problem under an engine name.
func optimize(t *testing.T, tr *rctree.Tree, lib *buffers.Library, engine string, k int) *core.Result {
	t.Helper()
	prob := core.Problem{Tree: tr, Library: lib, Objective: core.MaxSlack}
	if k >= 0 {
		prob.MaxBuffers = &k
	}
	res, err := core.Optimize(context.Background(), prob, core.Options{Engine: engine})
	if err != nil {
		t.Fatalf("engine %s: %v", engine, err)
	}
	return res
}

// crossCheck asserts all exact engines agree bit for bit on a problem and
// returns the common result.
func crossCheck(t *testing.T, tr *rctree.Tree, lib *buffers.Library, k int) *core.Result {
	t.Helper()
	base := optimize(t, tr, lib, exactEngines[0], k)
	for _, e := range exactEngines[1:] {
		if err := sameObjective(base, optimize(t, tr, lib, e, k)); err != nil {
			t.Fatalf("engine %s diverges: %v", e, err)
		}
	}
	return base
}

// rebuild reconstructs a tree node for node in breadth-first creation
// order, renumbering every NodeID (netgen builds depth-first, so the
// numbering genuinely changes). When reverse is set, each node's children
// are attached in reverse, flipping every sibling pair. The returned map
// sends old IDs to new ones.
func rebuild(t *testing.T, tr *rctree.Tree, reverse bool) (*rctree.Tree, map[rctree.NodeID]rctree.NodeID) {
	t.Helper()
	nt := rctree.New(tr.Node(tr.Root()).Name, tr.DriverResistance, tr.DriverDelay)
	idmap := map[rctree.NodeID]rctree.NodeID{tr.Root(): nt.Root()}
	order := []rctree.NodeID{tr.Root()}
	for qi := 0; qi < len(order); qi++ {
		v := order[qi]
		kids := tr.Node(v).Children
		for i := range kids {
			c := kids[i]
			if reverse {
				c = kids[len(kids)-1-i]
			}
			n := tr.Node(c)
			var id rctree.NodeID
			var err error
			if n.Kind == rctree.Sink {
				id, err = nt.AddSink(idmap[v], n.Wire, n.Name, n.Cap, n.RAT, n.NoiseMargin)
			} else {
				id, err = nt.AddInternal(idmap[v], n.Wire, n.BufferOK)
			}
			if err != nil {
				t.Fatal(err)
			}
			idmap[c] = id
			order = append(order, c)
		}
	}
	return nt, idmap
}

// TestMetamorphicLibrarySuperset: growing the library can never hurt.
// Every solution available under a sub-library is still available under
// the full one, and the DP computes shared candidates with identical
// arithmetic, so the optimal slack is monotone — exactly, not just
// approximately.
func TestMetamorphicLibrarySuperset(t *testing.T) {
	nets, lib, _ := metamorphicCorpus(t)
	sub := &buffers.Library{Buffers: lib.Buffers[:len(lib.Buffers)/2]}
	for i, tr := range nets {
		small := crossCheck(t, tr, sub, -1)
		full := crossCheck(t, tr, lib, -1)
		if full.Slack < small.Slack {
			t.Fatalf("net %d: full-library slack %g < sub-library slack %g",
				i, full.Slack, small.Slack)
		}
	}
}

// TestMetamorphicSiblingReorder: reversing the children of every branch
// leaves the optimum bit-identical. Merge arithmetic is commutative
// (a+b, min(a,b)), so the candidate value sets are unchanged; only
// witness tie-breaking may shift, so placements are not compared.
func TestMetamorphicSiblingReorder(t *testing.T) {
	nets, lib, _ := metamorphicCorpus(t)
	for i, tr := range nets {
		base := crossCheck(t, tr, lib, -1)
		flipped, _ := rebuild(t, tr, true)
		for _, e := range exactEngines {
			if err := sameObjective(base, optimize(t, flipped, lib, e, -1)); err != nil {
				t.Fatalf("net %d, engine %s: sibling reorder changed the optimum: %v", i, e, err)
			}
		}
	}
}

// TestMetamorphicRenumbering: node IDs are labels, not data. Rebuilding
// the tree in breadth-first order renumbers every node; the optimum must
// be bit-identical and the placement must map node for node through the
// renumbering.
func TestMetamorphicRenumbering(t *testing.T) {
	nets, lib, _ := metamorphicCorpus(t)
	for i, tr := range nets {
		base := crossCheck(t, tr, lib, -1)
		renum, idmap := rebuild(t, tr, false)
		for _, e := range exactEngines {
			res := optimize(t, renum, lib, e, -1)
			if err := sameObjective(base, res); err != nil {
				t.Fatalf("net %d, engine %s: renumbering changed the optimum: %v", i, e, err)
			}
			if len(res.Buffers) != len(base.Buffers) {
				t.Fatalf("net %d, engine %s: placement sizes differ: %d vs %d",
					i, e, len(res.Buffers), len(base.Buffers))
			}
			for v, b := range base.Buffers {
				if got, ok := res.Buffers[idmap[v]]; !ok || got.Name != b.Name {
					t.Fatalf("net %d, engine %s: node %d (now %d) had %q, renumbered run has %q",
						i, e, v, idmap[v], b.Name, got.Name)
				}
			}
		}
	}
}

// TestMetamorphicDominatedType: adding a buffer type that is strictly
// worse than an existing one in every delay-relevant dimension (Cin, R,
// T; same polarity and weight) changes nothing — each of its candidates
// is strictly dominated at the node that would insert it and dies in the
// very next prune.
func TestMetamorphicDominatedType(t *testing.T) {
	nets, lib, _ := metamorphicCorpus(t)
	b0 := lib.Buffers[0]
	dom := b0
	dom.Name = "strictly-dominated"
	dom.Cin *= 1.37
	dom.R *= 1.61
	dom.T = dom.T*1.5 + 1e-13
	padded := &buffers.Library{Buffers: append(append([]buffers.Buffer(nil), lib.Buffers...), dom)}
	for i, tr := range nets {
		base := crossCheck(t, tr, lib, -1)
		got := crossCheck(t, tr, padded, -1)
		if err := sameObjective(base, got); err != nil {
			t.Fatalf("net %d: dominated type changed the optimum: %v", i, err)
		}
	}
}

// TestMetamorphicCountNesting: the k-bounded optima are monotone in k and
// bounded by the unconstrained optimum — the solution spaces nest, and
// candidate values are computed identically across caps, so the chain
// holds exactly.
func TestMetamorphicCountNesting(t *testing.T) {
	nets, lib, _ := metamorphicCorpus(t)
	caps := []int{0, 1, 2, 4, 8}
	for i, tr := range nets {
		prev := math.Inf(-1)
		for _, k := range caps {
			res := crossCheck(t, tr, lib, k)
			if res.Cost > k {
				t.Fatalf("net %d, k=%d: cost %d exceeds cap", i, k, res.Cost)
			}
			if res.Slack < prev {
				t.Fatalf("net %d, k=%d: slack %g below k-1 optimum %g", i, k, res.Slack, prev)
			}
			prev = res.Slack
		}
		if free := crossCheck(t, tr, lib, -1); free.Slack < prev {
			t.Fatalf("net %d: unconstrained slack %g below k=8 optimum %g", i, free.Slack, prev)
		}
	}
}
