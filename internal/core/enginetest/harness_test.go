// Package enginetest gates the engine registry: every engine in
// core.EngineTable is held to its contract class on a shared corpus.
// Exact engines (the classic DP, Li–Shi, their parallel variants, and
// auto) must produce bit-identical objective values — slack compared as
// raw float bits, cost exactly — to serial VG on every problem, plus
// independently re-verified placements; heuristic engines are held to
// validity and never-better-than-exact. The suite is what makes the
// "engines are interchangeable, cache keys exclude Engine" contract in
// core.Options safe to rely on.
//
// The corpus is stratified by net size (sink-count cap per stratum) so
// the fast-merge path sees both the shallow lists of small nets and the
// long frontiers of wide ones, and every net runs the delay objective —
// Li–Shi's home turf — plus one round-robin profile covering the
// count-indexed, noise, safe-pruning, sizing, and min-buffer
// configurations (the fallback paths).
package enginetest

import (
	"context"
	"fmt"
	"math"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/elmore"
	"buffopt/internal/netgen"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

// stratum is one slice of the corpus: nets generated under a distinct
// sink-count cap, so list lengths and tree depths differ systematically
// across strata rather than by luck of one seed.
type stratum struct {
	name     string
	seed     int64
	nets     int
	maxSinks int
}

// strata defines the 200-net corpus: 4 × 50 nets from narrow two-pin-ish
// nets to the fat end of the Table I sink distribution.
func strata() []stratum {
	return []stratum{
		{name: "narrow", seed: 101, nets: 50, maxSinks: 6},
		{name: "mid", seed: 102, nets: 50, maxSinks: 15},
		{name: "tableI", seed: 103, nets: 50, maxSinks: 30},
		{name: "wide", seed: 104, nets: 50, maxSinks: 60},
	}
}

// buildStratum generates and segments one stratum exactly as the
// experiments pipeline does (0.5 mm segmentation, candidate site below
// the driver).
func buildStratum(t testing.TB, s stratum, n int) ([]*rctree.Tree, *buffers.Library, noise.Params) {
	t.Helper()
	suite, err := netgen.Generate(netgen.Config{Seed: s.seed, NumNets: n, MaxSinks: s.maxSinks})
	if err != nil {
		t.Fatal(err)
	}
	nets := make([]*rctree.Tree, len(suite.Nets))
	for i, tr := range suite.Nets {
		seg := tr.Clone()
		if _, err := segment.ByLength(seg, 0.5e-3); err != nil {
			t.Fatal(err)
		}
		if _, err := seg.InsertBelow(seg.Root()); err != nil {
			t.Fatal(err)
		}
		nets[i] = seg
	}
	return nets, suite.Library, suite.Tech.Noise
}

// profile is one problem configuration a net is differenced under.
type profile struct {
	name      string
	objective core.Objective
	k         int // MaxBuffers when ≥ 0
	safe      bool
	sizing    *core.Sizing
}

// problem materializes the profile for one net.
func (pr profile) problem(tr *rctree.Tree, lib *buffers.Library, p noise.Params) core.Problem {
	prob := core.Problem{Tree: tr, Library: lib, Params: p, Objective: pr.objective}
	if pr.k >= 0 {
		k := pr.k
		prob.MaxBuffers = &k
	}
	return prob
}

func (pr profile) options() core.Options {
	return core.Options{SafePruning: pr.safe, Sizing: pr.sizing}
}

// profiles returns the round-robin profile ring. Every net also runs
// "delay" unconditionally (see TestEngineDifferential); the ring adds the
// configurations where the fast merge must fall back, so the fallback
// gating is differenced as hard as the fast path.
func profiles() []profile {
	return []profile{
		{name: "delay", objective: core.MaxSlack, k: -1},
		{name: "delay-k8", objective: core.MaxSlack, k: 8},
		{name: "noise", objective: core.MaxSlackNoise, k: -1},
		{name: "minbuf", objective: core.MinBuffersNoise, k: -1},
		{name: "safe", objective: core.MaxSlackNoise, k: -1, safe: true},
		{name: "sizing", objective: core.MaxSlack, k: -1, sizing: &core.Sizing{Widths: []float64{1, 2}}},
	}
}

// approx compares two slacks computed by different float associations of
// the same real value (the DP's incremental charges vs. the analyzers'
// from-scratch sums).
func approx(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

// checkValid independently re-verifies a result's placement: every buffer
// sits on a legal non-root site, the reported cost is the placement's
// weight sum, sink polarity is even, the analyzers' slack agrees with the
// DP's report, and — for noise-constrained objectives — the placement is
// noise-clean under the standalone noise analyzer.
func checkValid(t *testing.T, res *core.Result, pr profile, p noise.Params) {
	t.Helper()
	tr := res.Solution.Tree
	cost := 0
	for v, b := range res.Buffers {
		node := tr.Node(v)
		if !node.BufferOK || v == tr.Root() {
			t.Fatalf("buffer %q placed on illegal node %d", b.Name, v)
		}
		cost += b.Cost()
	}
	if cost != res.Cost {
		t.Fatalf("reported cost %d, placement weighs %d", res.Cost, cost)
	}
	if pr.k >= 0 && res.Cost > pr.k {
		t.Fatalf("cost %d exceeds bound %d", res.Cost, pr.k)
	}
	if got := elmore.Analyze(tr, res.Buffers).WorstSlack; !approx(got, res.Slack) {
		t.Fatalf("reported slack %g, analyzer computes %g", res.Slack, got)
	}
	if pr.objective != core.MaxSlack {
		if !noise.Analyze(tr, res.Buffers, p).Clean() {
			t.Fatalf("noise-constrained result is not noise-clean under the analyzer")
		}
	}
}

// sameObjective asserts bit-identical objective values between an engine
// and the serial-VG baseline: slack as raw float bits, cost exactly.
func sameObjective(base, got *core.Result) error {
	if bb, gb := math.Float64bits(base.Slack), math.Float64bits(got.Slack); bb != gb {
		return fmt.Errorf("slack bits %016x vs baseline %016x (%g vs %g)",
			gb, bb, got.Slack, base.Slack)
	}
	if base.Cost != got.Cost {
		return fmt.Errorf("cost %d vs baseline %d", got.Cost, base.Cost)
	}
	return nil
}

// runEngines runs one problem under every registered engine and applies
// the per-class assertions against the serial-VG baseline (row 0 of the
// table). Failure classes must agree too: if the baseline cannot solve
// the net (noise unfixable), every exact engine must fail the same way.
func runEngines(t *testing.T, prob core.Problem, pr profile, p noise.Params) {
	t.Helper()
	table := core.EngineTable()
	base, baseErr := table[0].Run(context.Background(), prob, pr.options())
	if baseErr == nil {
		checkValid(t, base, pr, p)
	}
	for _, spec := range table[1:] {
		res, err := spec.Run(context.Background(), prob, pr.options())
		if !spec.Exact {
			// Heuristics: valid when they succeed, never better than the
			// exact optimum. For the min-weight objective that means no
			// cheaper noise-clean placement; for slack objectives no
			// larger slack (beyond reassociation noise).
			if err != nil || baseErr != nil {
				continue
			}
			checkValid(t, res, profile{name: pr.name, objective: pr.objective, k: -1}, p)
			switch prob.Objective {
			case core.MinBuffersNoise:
				if res.Slack >= 0 && base.Slack >= 0 && res.Cost < base.Cost {
					t.Fatalf("engine %s: heuristic cost %d beats exact optimum %d", spec.Name, res.Cost, base.Cost)
				}
			default:
				if res.Slack > base.Slack && !approx(res.Slack, base.Slack) {
					t.Fatalf("engine %s: heuristic slack %g beats exact optimum %g", spec.Name, res.Slack, base.Slack)
				}
			}
			continue
		}
		if (err == nil) != (baseErr == nil) {
			t.Fatalf("engine %s: err = %v, baseline err = %v", spec.Name, err, baseErr)
		}
		if err != nil {
			continue
		}
		if cmpErr := sameObjective(base, res); cmpErr != nil {
			t.Fatalf("engine %s: %v", spec.Name, cmpErr)
		}
		checkValid(t, res, pr, p)
	}
}
