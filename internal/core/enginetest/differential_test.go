package enginetest

import (
	"testing"
)

// TestEngineDifferential is the tentpole gate: over the 200-net
// stratified corpus, every registered engine is run against serial VG.
// Each net runs the delay objective — the Li–Shi fast merge's home turf —
// plus one profile from the round-robin ring, so the count-indexed,
// noise, safe-pruning, sizing, and min-buffer fallback paths are all
// differenced on every stratum. Exact engines must match the baseline's
// objective values bit for bit and carry independently re-verified
// placements; heuristics must be valid and never better.
//
// Short mode trims each stratum and runs the delay + round-robin pair on
// the trimmed prefix — still all four strata, so the quick gate keeps the
// size spread.
func TestEngineDifferential(t *testing.T) {
	perStratum := -1 // full stratum
	if testing.Short() {
		perStratum = 10
	}
	ring := profiles()
	for _, s := range strata() {
		s := s
		t.Run(s.name, func(t *testing.T) {
			t.Parallel()
			n := s.nets
			if perStratum > 0 && perStratum < n {
				n = perStratum
			}
			nets, lib, p := buildStratum(t, s, n)
			for i, tr := range nets {
				delay := ring[0]
				runEngines(t, delay.problem(tr, lib, p), delay, p)
				if pr := ring[i%len(ring)]; pr.name != delay.name {
					runEngines(t, pr.problem(tr, lib, p), pr, p)
				}
			}
		})
	}
}
