package enginetest

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/segment"
	"buffopt/internal/testutil"
)

// FuzzEngineEquivalence drives the cross-engine contract from arbitrary
// coordinates: a seeded random tree, a random sub-library of the
// Section V repertoire (mask-selected, so all-inverter and single-type
// corners appear), and an optional count bound. The classic DP and the
// Li–Shi engine must fail together or succeed together with bit-identical
// objective values. The checked-in corpus under
// testdata/fuzz/FuzzEngineEquivalence seeds the interesting corners;
// `go test -fuzz=FuzzEngineEquivalence ./internal/core/enginetest` digs
// for new ones.
func FuzzEngineEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(0x7ff), int8(-1), uint8(3))    // full library, unbounded
	f.Add(int64(2), uint16(0x001), int8(4), uint8(1))     // single type, k=4, two-pin-ish
	f.Add(int64(3), uint16(0x0aa), int8(-1), uint8(5))    // alternating mask, wide
	f.Add(int64(4), uint16(0x7c0), int8(0), uint8(2))     // inverter-heavy tail, k=0
	f.Add(int64(99), uint16(0x003), int8(7), uint8(4))    // two strong types, k=7
	f.Add(int64(1234), uint16(0x400), int8(-1), uint8(2)) // one inverter only: infeasible parity

	full := buffers.DefaultLibrary(0.8)
	f.Fuzz(func(t *testing.T, seed int64, mask uint16, kRaw int8, sinks uint8) {
		rng := rand.New(rand.NewSource(seed))
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 5, MaxSinks: 1 + int(sinks%6),
			MarginLo: 3, MarginHi: 8, BufferSites: true,
		})
		if _, err := segment.ByCount(tr, 2); err != nil {
			t.Fatal(err)
		}
		var lib buffers.Library
		for i, b := range full.Buffers {
			if mask&(1<<uint(i)) != 0 {
				lib.Buffers = append(lib.Buffers, b)
			}
		}
		if len(lib.Buffers) == 0 {
			lib = *full
		}
		prob := core.Problem{Tree: tr, Library: &lib, Objective: core.MaxSlack}
		if kRaw >= 0 {
			k := int(kRaw) % 10
			prob.MaxBuffers = &k
		}
		run := func(engine string) (*core.Result, error) {
			return core.Optimize(context.Background(), prob, core.Options{Engine: engine, Workers: 1})
		}
		vg, vgErr := run(core.EngineVG)
		ls, lsErr := run(core.EngineLiShi)
		if (vgErr == nil) != (lsErr == nil) {
			t.Fatalf("engines disagree on feasibility: vg err = %v, lishi err = %v", vgErr, lsErr)
		}
		if vgErr != nil {
			return
		}
		if math.Float64bits(vg.Slack) != math.Float64bits(ls.Slack) {
			t.Fatalf("slack diverged: vg %g (%016x), lishi %g (%016x)",
				vg.Slack, math.Float64bits(vg.Slack), ls.Slack, math.Float64bits(ls.Slack))
		}
		if vg.Cost != ls.Cost {
			t.Fatalf("cost diverged: vg %d, lishi %d", vg.Cost, ls.Cost)
		}
	})
}
