package core

import (
	"context"
	"fmt"

	"buffopt/internal/guard"
)

// The dynamic program runs under one of several engines. All engines
// solve the same problems and are bit-identical on objective values by
// construction — the engine changes how candidate lists are organized
// and merged, never which optimum is found. The enginetest suite
// (internal/core/enginetest) is the gate on that contract: every engine
// registered in EngineTable is differenced against serial VG over the
// stratified corpus, checked against the exhaustive oracle on small
// nets, and run through the metamorphic property catalog.
const (
	// EngineVG is the classic Van Ginneken-style dynamic program
	// (Algorithm 3 with the Lillis extensions): full cross-product branch
	// merges followed by dominance pruning. O(b²n²) over a b-type
	// library.
	EngineVG = "vg"
	// EngineLiShi is the Li–Shi fast multi-type organization (PAPERS.md,
	// arXiv:0710.4691): candidate lists kept in the canonical sorted
	// order, branch merges computed directly on the per-group Pareto
	// frontiers by a two-pointer walk — O(L1+L2) instead of the O(L1·L2)
	// cross product — cutting the DP to O(bn²). The sorted-frontier
	// argument is a statement about the delay DP; noise-constrained and
	// safe-pruning runs fall back to the classic merge node by node (see
	// lishi.go), so the engine is bit-identical to VG in every
	// configuration.
	EngineLiShi = "lishi"
	// EngineAuto picks per run: Li–Shi when the configuration can use the
	// fast merge and the library has more than one type (where the b²→b
	// reduction pays), classic VG otherwise.
	EngineAuto = "auto"
)

// ParseEngine validates and normalizes an engine name: the empty string
// selects EngineAuto (the default), which resolves per run to Li–Shi
// where the fast merge applies and classic VG everywhere else — the
// BENCH-backed choice (see DESIGN §16: Li–Shi wins from 2 buffer types
// up, and auto is bit-identical to both by the enginetest gate). Unknown
// names wrap guard.ErrInvalidInput, so CLIs exit with the invalid-input
// code and bufferd answers 400 — never a panic or a silent fallback.
func ParseEngine(s string) (string, error) {
	switch s {
	case "":
		return EngineAuto, nil
	case EngineVG, EngineLiShi, EngineAuto:
		return s, nil
	}
	return "", fmt.Errorf("core: unknown engine %q (want %q, %q, or %q): %w",
		s, EngineVG, EngineLiShi, EngineAuto, guard.ErrInvalidInput)
}

// EngineSpec is one row of the engine registry: a named way of solving a
// Problem, with its contract class. The enginetest suite iterates this
// table, so a new engine is gated the moment it is registered.
type EngineSpec struct {
	// Name identifies the engine in test output and telemetry.
	Name string
	// Exact engines must produce bit-identical objective values (slack
	// bits, cost) to serial VG on every problem, and must match the
	// exhaustive oracle on small nets. Heuristic engines (greedy) are
	// held only to validity and never-better-than-exact.
	Exact bool
	// Noise reports whether the engine supports noise-constrained
	// objectives; delay-only engines are skipped on those problems.
	Noise bool
	// Run solves one problem. Exact engines route through Optimize with
	// the engine selected; heuristics adapt their own entry points.
	Run func(ctx context.Context, p Problem, opts Options) (*Result, error)
}

// EngineTable returns the registered engines. Serial VG is first: it is
// the reference the differential assertions compare everything else to.
func EngineTable() []EngineSpec {
	viaOptimize := func(engine string, workers int) func(context.Context, Problem, Options) (*Result, error) {
		return func(ctx context.Context, p Problem, opts Options) (*Result, error) {
			opts.Engine = engine
			opts.Workers = workers
			return Optimize(ctx, p, opts)
		}
	}
	return []EngineSpec{
		{Name: "vg", Exact: true, Noise: true, Run: viaOptimize(EngineVG, 1)},
		{Name: "vg-parallel", Exact: true, Noise: true, Run: viaOptimize(EngineVG, 4)},
		{Name: "lishi", Exact: true, Noise: true, Run: viaOptimize(EngineLiShi, 1)},
		{Name: "lishi-parallel", Exact: true, Noise: true, Run: viaOptimize(EngineLiShi, 4)},
		{Name: "auto", Exact: true, Noise: true, Run: viaOptimize(EngineAuto, 0)},
		{Name: "greedy", Exact: false, Noise: true, Run: runGreedyEngine},
	}
}

// runGreedyEngine adapts GreedyIterative to the registry signature. The
// greedy heuristic has no count-bound mode; bounded problems reuse the
// bound as its insertion cap.
func runGreedyEngine(ctx context.Context, p Problem, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	maxBuf := greedyMaxBuffers
	if p.MaxBuffers != nil {
		maxBuf = *p.MaxBuffers
	}
	return GreedyIterative(p.Tree, p.Library, GreedyOptions{
		Noise:      p.Objective != MaxSlack,
		Params:     p.Params,
		MaxBuffers: maxBuf,
		Budget:     budgetFor(ctx, opts.Budget),
	})
}
