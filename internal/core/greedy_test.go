package core

import (
	"errors"
	"math/rand"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/testutil"
)

// TestGreedyNeverBeatsDP: on random instances, the optimal dynamic
// program's slack dominates the greedy baseline's — Van Ginneken
// optimality made empirical. Noise-off mode (pure delay).
func TestGreedyNeverBeatsDP(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	improvedSomewhere := false
	for trial := 0; trial < 60; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 7, MaxSinks: 4, BufferSites: true,
		})
		lib := testutil.RandomLibrary(rng, 5)
		g, err := GreedyIterative(tr, lib, GreedyOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d, err := DelayOpt(tr, lib, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !greedySlackUpperBound(d.Slack, g.Slack) {
			t.Fatalf("trial %d: greedy slack %g beats DP %g", trial, g.Slack, d.Slack)
		}
		if d.Slack > g.Slack+1e-12 {
			improvedSomewhere = true
		}
		// Greedy's own bookkeeping must agree with the analyzer.
		if got := elmore.Analyze(g.Tree, g.Buffers).WorstSlack; !approx(got, g.Slack) {
			t.Fatalf("trial %d: greedy slack %g, analyzer %g", trial, g.Slack, got)
		}
	}
	if !improvedSomewhere {
		t.Logf("note: greedy matched the DP on every instance in this sample")
	}
}

// TestGreedyNoiseMode: on the noisy Y instance the greedy baseline must
// also reach a clean solution (it is an easy instance), and its slack
// cannot exceed BuffOpt's optimum.
func TestGreedyNoiseMode(t *testing.T) {
	tr := noisySegmentedY(t, 3)
	lib := lib3()
	g, err := GreedyIterative(tr, lib, GreedyOptions{Noise: true, Params: unitParams})
	if err != nil {
		t.Fatalf("greedy failed on an easy instance: %v", err)
	}
	if !noise.Analyze(g.Tree, g.Buffers, unitParams).Clean() {
		t.Fatalf("greedy result not clean")
	}
	b, err := BuffOpt(tr, lib, unitParams, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !greedySlackUpperBound(b.Slack, g.Slack) {
		t.Errorf("greedy slack %g beats BuffOpt %g", g.Slack, b.Slack)
	}
}

// TestGreedyRespectsMaxBuffers and input validation.
func TestGreedyBoundsAndErrors(t *testing.T) {
	tr := noisySegmentedY(t, 3)
	g, err := GreedyIterative(tr, lib3(), GreedyOptions{MaxBuffers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumBuffers() > 1 {
		t.Errorf("greedy used %d buffers with MaxBuffers=1", g.NumBuffers())
	}
	if _, err := GreedyIterative(tr, &buffers.Library{}, GreedyOptions{}); err == nil {
		t.Errorf("empty library accepted")
	}
	if _, err := GreedyIterative(tr, lib3(), GreedyOptions{Noise: true}); err == nil {
		t.Errorf("noise mode without params accepted")
	}
}

// TestGreedyCanGetStuck: the greedy heuristic has local optima the DP
// does not — on some random noisy instance it leaves violations that
// BuffOpt fixes. (If the sample is too easy the test logs instead of
// failing: the inferiority claim is probabilistic.)
func TestGreedyCanGetStuck(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	stuck, dpFixed := 0, 0
	for trial := 0; trial < 80; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 6, MaxSinks: 4, MarginLo: 2, MarginHi: 6,
			WireScale: 2, BufferSites: true,
		})
		lib := testutil.RandomLibrary(rng, 3)
		_, gerr := GreedyIterative(tr, lib, GreedyOptions{Noise: true, Params: unitParams})
		if gerr == nil {
			continue
		}
		if !errors.Is(gerr, ErrNoiseUnfixable) {
			t.Fatalf("trial %d: unexpected greedy error: %v", trial, gerr)
		}
		stuck++
		if _, berr := BuffOpt(tr, lib, unitParams, Options{SafePruning: true}); berr == nil {
			dpFixed++
		}
	}
	t.Logf("greedy stuck on %d instances; DP fixed %d of those", stuck, dpFixed)
}
