package core

import (
	"sync"
	"sync/atomic"

	"buffopt/internal/buffers"
	"buffopt/internal/guard"
	"buffopt/internal/rctree"
)

// runVGParallel executes the bottom-up dynamic program on a bounded worker
// pool. The tree is a dependency DAG — a node is ready once all of its
// children are computed — and independent subtrees proceed concurrently:
//
//   - Each worker claims a sink (leaf) from a shared cursor and walks
//     upward, computing nodes as they become ready.
//   - At a branch merge, an atomic per-node counter of unfinished children
//     decides who continues: the worker that finishes the *last* child
//     computes the parent and keeps climbing; the other worker abandons
//     the path and claims a fresh leaf. The counter's atomic decrement is
//     also the happens-before edge that publishes the children's finished
//     candidate lists to whichever worker merges them.
//
// Determinism: computeNode is a pure function of the children's lists, so
// the schedule affects only *when* a node is computed, never *what* it
// computes — parallel results are bit-identical to runVGSerial's, which
// the differential suite asserts on every corpus net. Per-worker vgStats
// and the shared arena keep the telemetry and pool accounting exact
// without hot-path contention.
//
// Failure: the first error (budget trip, cancellation, or a panic caught
// by guard.Safe) stops the run; workers notice the flag at node
// boundaries and abandon their paths. The caller releases the lists of
// whatever subtrees had finished.
//
// order is the compute set in postorder: the full tree for a from-scratch
// run, or a memoized run's miss set. The set is always ancestor-closed
// (a memoized run never computes a node whose parent it reuses), so the
// climb's parent is in the set unless the node is the root — the same
// termination logic either way.
func runVGParallel(t *rctree.Tree, lib *buffers.Library, opts vgOptions, lists [][]vgCand, workers int, order []rctree.NodeID) error {
	// Ready bookkeeping: pending[v] counts v's unfinished in-set children;
	// the set's leaves (sinks, or nodes whose whole fan-in was loaded from
	// the memo) seed the climb, in postorder so early workers start on
	// disjoint subtrees.
	inSet := make([]bool, t.Len())
	for _, v := range order {
		inSet[v] = true
	}
	pending := make([]atomic.Int32, t.Len())
	var leaves []rctree.NodeID
	for _, v := range order {
		n := 0
		for _, c := range t.Node(v).Children {
			if inSet[c] {
				n++
			}
		}
		if n > 0 {
			pending[v].Store(int32(n))
		} else {
			leaves = append(leaves, v)
		}
	}
	if workers > len(leaves) {
		workers = len(leaves)
	}

	var (
		cursor  atomic.Int64 // next unclaimed leaf index
		stopped atomic.Bool  // set once any worker fails
		errOnce sync.Once
		runErr  error
		wg      sync.WaitGroup
	)
	fail := func(err error) {
		errOnce.Do(func() {
			runErr = err
			stopped.Store(true)
		})
	}

	root := t.Root()
	work := func(wopts vgOptions) error {
		for !stopped.Load() {
			i := cursor.Add(1) - 1
			if i >= int64(len(leaves)) {
				return nil
			}
			v := leaves[i]
			for {
				if err := computeNode(t, lib, wopts, v, lists); err != nil {
					return err
				}
				if v == root {
					return nil
				}
				// The worker finishing a node's last child owns the
				// parent; everyone else drops the path here. The atomic
				// decrement orders the children's list writes before the
				// owner's merge reads them.
				parent := t.Node(v).Parent
				if pending[parent].Add(-1) != 0 {
					break
				}
				v = parent
				if stopped.Load() {
					return nil
				}
			}
		}
		return nil
	}

	// Per-worker stats keep the hot loops free of atomics; folded into the
	// run's totals after Wait, when no worker touches them anymore.
	workerStats := make([]vgStats, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		wopts := opts
		wopts.stats = &workerStats[w]
		go func() {
			defer wg.Done()
			// Panic isolation: a crash on a pool goroutine would kill the
			// process outright (Solve's own guard.Safe only covers the
			// calling goroutine), so each worker carries its own guard.
			if err := guard.Safe("core.vg.worker", func() error { return work(wopts) }); err != nil {
				fail(err)
			}
		}()
	}
	wg.Wait()

	for w := range workerStats {
		opts.stats.absorb(&workerStats[w])
	}
	return runErr
}
