package core

import (
	"fmt"

	"buffopt/internal/guard"
)

// The error taxonomy. Every failure the solvers report wraps one of the
// guard sentinels, so callers dispatch uniformly with errors.Is:
//
//	guard.ErrCanceled       — the context was canceled or timed out
//	guard.ErrBudgetExceeded — a candidate/node/step cap was hit
//	guard.ErrInvalidInput   — tree, library, or parameter validation failed
//	guard.ErrInfeasible     — no solution exists (ErrNoiseUnfixable)
//
// core.Solve additionally uses the taxonomy to decide between degrading
// (budget and deadline failures) and aborting (cancellation, invalid
// input, infeasibility).

// ErrNoiseUnfixable reports that no buffer placement can satisfy the noise
// constraints (for example, a sink's noise margin is smaller than the
// noise its own maximally-buffered wire would induce). It wraps
// guard.ErrInfeasible, the taxonomy's infeasibility class.
var ErrNoiseUnfixable = fmt.Errorf("core: noise constraints cannot be satisfied by buffer insertion: %w", guard.ErrInfeasible)
