package core

import (
	"fmt"
	"math/rand"
	"testing"

	"buffopt/internal/buffers"
)

// Property tests on the DP's list invariants. The Li–Shi merge is only
// sound because pruneVG's output is, per (parity[, cost]) group, a strict
// 2-D Pareto frontier: loads strictly ascending, slacks strictly
// ascending, no candidate weakly dominated by another. These tests pin
// that invariant — and the fast merge's equivalence to the cross product
// — on 1 000 seeded random subtree lists per configuration, deliberately
// including exact float ties (values drawn from a small grid) so the
// tie-breaking rules are exercised, not just generic positions.

// randCandList builds a raw candidate list as a subtree might hand it to
// a parent: random values on a coarse grid (ties likely), each with a
// distinct solution link so witness mix-ups are visible.
func randCandList(rng *rand.Rand, n int, tag string) []vgCand {
	list := make([]vgCand, n)
	for i := range list {
		list[i] = vgCand{
			load: float64(1+rng.Intn(40)) * 0.25,
			q:    float64(rng.Intn(60)) * 0.5,
			down: float64(rng.Intn(8)) * 0.125,
			ns:   float64(rng.Intn(20)) * 0.5,
			nbuf: rng.Intn(6),
			cost: rng.Intn(6),
			pol:  uint8(rng.Intn(2)),
			sol: &solLink{
				buf: buffers.Buffer{Name: fmt.Sprintf("%s%d", tag, i)},
			},
		}
	}
	return list
}

// pruneProfiles are the dominance configurations under test.
func pruneProfiles() []struct {
	name string
	opts vgOptions
} {
	return []struct {
		name string
		opts vgOptions
	}{
		{"plain", vgOptions{}},
		{"count-indexed", vgOptions{countIndexed: true, maxBuffers: 8}},
		{"safe", vgOptions{safePruning: true}},
		{"safe-count-indexed", vgOptions{safePruning: true, countIndexed: true, maxBuffers: 8}},
	}
}

// checkFrontier asserts the pruned-list invariant for one list: within
// each (parity[, cost]) group, strictly ascending load; without safe
// pruning also strictly ascending slack (the strict 2-D frontier); and in
// every mode, no candidate weakly dominated by another in its group under
// the mode's dominance relation.
func checkFrontier(t *testing.T, list []vgCand, opts vgOptions) {
	t.Helper()
	sameGroup := func(a, b *vgCand) bool {
		return a.pol == b.pol && (!opts.countIndexed || a.cost == b.cost)
	}
	for i := 0; i < len(list); {
		j := i + 1
		for j < len(list) && sameGroup(&list[i], &list[j]) {
			j++
		}
		for k := i + 1; k < j; k++ {
			a, b := &list[k-1], &list[k]
			if b.load < a.load {
				t.Fatalf("group load not ascending at %d: %g after %g", k, b.load, a.load)
			}
			// The 2-D modes leave a strict staircase; safe pruning may
			// keep equal-load candidates that differ in the noise
			// dimensions, so only the weaker ordering holds there.
			if !opts.safePruning && (b.load <= a.load || b.q <= a.q) {
				t.Fatalf("group frontier not strict at %d: (%g, %g) after (%g, %g)",
					k, b.load, b.q, a.load, a.q)
			}
		}
		for x := i; x < j; x++ {
			for y := i; y < j; y++ {
				if x == y {
					continue
				}
				a, b := &list[x], &list[y]
				dom := a.load <= b.load && a.q >= b.q
				if opts.safePruning {
					dom = dom && a.down <= b.down && a.ns >= b.ns
				}
				if dom {
					t.Fatalf("candidate %d weakly dominated by %d: %+v vs %+v", y, x, *b, *a)
				}
			}
		}
		i = j
	}
}

// TestPrunedListsAreStrictFrontiers drives pruneVG over 1 000 seeded
// random lists per profile and asserts the frontier invariant, plus
// idempotence (pruning a pruned list changes nothing) and, for the
// non-safe modes, that lishiGroups sees the whole pruned group as its own
// frontier — the precondition the fast merge's index views rely on.
func TestPrunedListsAreStrictFrontiers(t *testing.T) {
	trials := 1000
	if testing.Short() {
		trials = 250
	}
	for _, prof := range pruneProfiles() {
		prof := prof
		t.Run(prof.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(1234))
			for trial := 0; trial < trials; trial++ {
				opts := prof.opts
				opts.arena = &candArena{}
				raw := randCandList(rng, 1+rng.Intn(120), "c")
				pruned, err := pruneVG(raw, opts)
				if err != nil {
					t.Fatal(err)
				}
				checkFrontier(t, pruned, opts)
				again, err := pruneVG(append([]vgCand(nil), pruned...), opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := candsEqual(pruned, again); err != nil {
					t.Fatalf("trial %d: pruning not idempotent: %v", trial, err)
				}
				if !opts.safePruning {
					groups, _ := lishiGroups(pruned, opts, nil)
					total := 0
					for _, g := range groups {
						total += len(g.frontier)
					}
					if total != len(pruned) {
						t.Fatalf("trial %d: pruned list is not its own frontier: %d of %d indices kept",
							trial, total, len(pruned))
					}
				}
			}
		})
	}
}

// TestMergeDifferentialProperty is the unit-level differential on the
// merge itself: for 1 000 seeded pairs of pruned, wire-charged lists —
// the exact shape computeNode feeds a branch merge — prune(cross product)
// and prune(frontier walk) must agree bit for bit, solutions included.
// The wire charge is applied because it breaks slack monotonicity while
// preserving load order, which is precisely the case the fast merge's
// frontier index views exist for. The walk must also emit no more
// candidates than the cross product, and strictly fewer at least once —
// proof the fast path is engaged, not falling back.
func TestMergeDifferentialProperty(t *testing.T) {
	trials := 1000
	if testing.Short() {
		trials = 250
	}
	for _, prof := range []struct {
		name string
		opts vgOptions
	}{
		{"plain", vgOptions{}},
		{"count-indexed", vgOptions{countIndexed: true, maxBuffers: 8}},
	} {
		prof := prof
		t.Run(prof.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(5678))
			savedEmits := false
			for trial := 0; trial < trials; trial++ {
				opts := prof.opts
				opts.arena = &candArena{}
				mk := func(tag string) []vgCand {
					l, err := pruneVG(randCandList(rng, 1+rng.Intn(80), tag), opts)
					if err != nil {
						t.Fatal(err)
					}
					// Charge a random parent wire: loads shift by a
					// constant, slacks drop by R·load — order kept,
					// monotonicity broken.
					r, c := rng.Float64(), rng.Float64()
					for i := range l {
						l[i].q -= r * (c/2 + l[i].load)
						l[i].load += c
					}
					return l
				}
				left, right := mk("l"), mk("r")
				cross, err := mergeVG(left, right, opts)
				if err != nil {
					t.Fatal(err)
				}
				walk, err := lishiMerge(left, right, opts)
				if err != nil {
					t.Fatal(err)
				}
				if len(walk) > len(cross) {
					t.Fatalf("trial %d: walk emitted %d > cross product %d", trial, len(walk), len(cross))
				}
				if len(walk) < len(cross) {
					savedEmits = true
				}
				pc, err := pruneVG(cross, opts)
				if err != nil {
					t.Fatal(err)
				}
				pw, err := pruneVG(walk, opts)
				if err != nil {
					t.Fatal(err)
				}
				if err := candsEqual(pc, pw); err != nil {
					t.Fatalf("trial %d: merge paths disagree after pruning: %v", trial, err)
				}
			}
			if !savedEmits {
				t.Fatal("the frontier walk never beat the cross product; the fast path is not engaged")
			}
		})
	}
}
