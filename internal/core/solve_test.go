package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"buffopt/internal/buffers"
	"buffopt/internal/guard"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

// eightBufferLib returns a library with eight distinct non-inverting
// buffer types, the size used by the oversized acceptance scenario.
func eightBufferLib() *buffers.Library {
	lib := &buffers.Library{}
	for i := 0; i < 8; i++ {
		lib.Buffers = append(lib.Buffers, buffers.Buffer{
			Name:        string(rune('A' + i)),
			Cin:         0.02 + 0.01*float64(i),
			R:           0.5 + 0.25*float64(i),
			T:           0.1 + 0.05*float64(i),
			NoiseMargin: 5,
		})
	}
	return lib
}

// fanoutTree builds a source driving branches sinks over long noisy
// wires, segmented into roughly segments legal buffer sites.
func fanoutTree(t testing.TB, branches, segments int) *rctree.Tree {
	t.Helper()
	tr := rctree.New("fan", 1.5, 0)
	for i := 0; i < branches; i++ {
		if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 30, C: 30, Length: 30}, "s"+string(rune('a'+i)), 0.1, 1e5, 5); err != nil {
			t.Fatal(err)
		}
	}
	tr.Binarize()
	if _, err := segment.ByCount(tr, segments); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSolveExactTier checks that with no deadline and no caps, Solve
// answers from the exact tier and reports no degradation.
func TestSolveExactTier(t *testing.T) {
	tr := buildNoisyY(t)
	if _, err := segment.ByCount(tr, 40); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(context.Background(), tr, lib2(), unitParams, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != TierExact || res.Degraded {
		t.Fatalf("Tier = %v, Degraded = %v, want exact/undegraded", res.Tier, res.Degraded)
	}
	if len(res.TierErrors) != 0 {
		t.Fatalf("TierErrors = %v, want none", res.TierErrors)
	}
	if !noise.Analyze(res.Tree, res.Buffers, unitParams).Clean() {
		t.Fatal("exact-tier solution not noise clean")
	}
}

// TestSolveOversizedNetDegrades is the acceptance scenario: a 5k-segment
// fanout tree with 8 buffer types and SafePruning under a 100 ms budget
// must return degraded output promptly instead of hanging.
func TestSolveOversizedNetDegrades(t *testing.T) {
	tr := fanoutTree(t, 4, 5000)
	lib := eightBufferLib()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()

	start := time.Now()
	res, err := Solve(ctx, tr, lib, unitParams, Options{SafePruning: true})
	elapsed := time.Since(start)

	if err != nil {
		t.Fatalf("Solve returned no output: %v", err)
	}
	if !res.Degraded {
		t.Fatalf("a 5k-segment SafePruning solve finished exactly in 100 ms? Tier = %v", res.Tier)
	}
	if len(res.TierErrors) == 0 {
		t.Fatal("degraded result carries no tier errors")
	}
	budgetTripped := false
	for _, te := range res.TierErrors {
		if errors.Is(te, guard.ErrBudgetExceeded) || errors.Is(te, guard.ErrCanceled) {
			budgetTripped = true
		}
	}
	if !budgetTripped {
		t.Fatalf("no tier failed on the budget: %v", res.TierErrors)
	}
	// "Promptly": the ladder's shares bound the total well under the
	// test timeout; allow generous slack for race-mode and loaded CI.
	if elapsed > 10*time.Second {
		t.Fatalf("Solve took %v under a 100 ms budget", elapsed)
	}
	if res.Result == nil || res.Tree == nil {
		t.Fatal("degraded result has no solution")
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatalf("degraded solution tree invalid: %v", err)
	}
}

// TestSolveCandidateCapDegrades exhausts the candidate budget (not the
// clock) and checks the ladder lands on a heuristic tier.
func TestSolveCandidateCapDegrades(t *testing.T) {
	tr := buildNoisyY(t)
	if _, err := segment.ByCount(tr, 40); err != nil {
		t.Fatal(err)
	}
	b := guard.New(context.Background())
	b.MaxCandidates = 2
	res, err := Solve(context.Background(), tr, lib2(), unitParams, Options{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("Tier = %v with a 2-candidate cap, want degraded", res.Tier)
	}
	found := false
	for _, te := range res.TierErrors {
		if errors.Is(te, guard.ErrBudgetExceeded) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no ErrBudgetExceeded in %v", res.TierErrors)
	}
}

// TestSolveCanceledContext checks a pre-canceled context aborts the whole
// ladder with ErrCanceled instead of degrading.
func TestSolveCanceledContext(t *testing.T) {
	tr := buildNoisyY(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Solve(ctx, tr, lib2(), unitParams, Options{})
	if res != nil {
		t.Fatalf("got a result from a canceled context: tier %v", res.Tier)
	}
	if !errors.Is(err, guard.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
}

// TestSolveInvalidInput checks bad parameters abort immediately with the
// invalid-input class rather than burning the ladder.
func TestSolveInvalidInput(t *testing.T) {
	tr := buildNoisyY(t)
	bad := noise.Params{CouplingRatio: 1, Slope: -1}
	_, err := Solve(context.Background(), tr, lib2(), bad, Options{})
	if !errors.Is(err, guard.ErrInvalidInput) {
		t.Fatalf("err = %v, want ErrInvalidInput", err)
	}
}

// TestSolveUnfixableAborts checks that a net the exact tier proves
// noise-infeasible aborts with ErrNoiseUnfixable instead of returning a
// heuristic answer that silently violates the constraints.
func TestSolveUnfixableAborts(t *testing.T) {
	// A sink with a tiny noise margin on a long noisy wire: even a buffer
	// at the sink's doorstep violates.
	tr := rctree.New("bad", 1, 0)
	if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 10, C: 10, Length: 10}, "s", 0.1, 0, 1e-6); err != nil {
		t.Fatal(err)
	}
	if _, err := segment.ByCount(tr, 10); err != nil {
		t.Fatal(err)
	}
	_, err := Solve(context.Background(), tr, lib2(), unitParams, Options{})
	if !errors.Is(err, ErrNoiseUnfixable) {
		t.Fatalf("err = %v, want ErrNoiseUnfixable", err)
	}
	if !errors.Is(err, guard.ErrInfeasible) {
		t.Fatalf("err = %v, should also wrap guard.ErrInfeasible", err)
	}
}

// TestCancellationMidRun checks the DP notices deadline expiry mid-run,
// returns promptly with ErrCanceled, and leaves the input tree untouched.
func TestCancellationMidRun(t *testing.T) {
	tr := fanoutTree(t, 4, 3000)
	lib := eightBufferLib()
	before := tr.Len()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	b := guard.New(ctx)

	start := time.Now()
	_, err := BuffOpt(tr, lib, unitParams, Options{SafePruning: true, Budget: b})
	elapsed := time.Since(start)

	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, should expose the deadline cause", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to surface", elapsed)
	}
	// No partial-state corruption: the input tree is never modified.
	if tr.Len() != before {
		t.Fatalf("input tree grew from %d to %d nodes", before, tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("input tree corrupted: %v", err)
	}
}

// TestCancellationAlgorithms checks the Algorithm 1/2 and greedy budget
// variants all honor a canceled context.
func TestCancellationAlgorithms(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := guard.New(ctx)

	line := rctree.New("l", 1, 0)
	if _, err := line.AddSink(line.Root(), rctree.Wire{R: 100, C: 100, Length: 100}, "s", 0.1, 0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := Algorithm1Budget(line, singleBufferLib(), unitParams, b); !errors.Is(err, guard.ErrCanceled) {
		t.Errorf("Algorithm1Budget err = %v, want ErrCanceled", err)
	}

	y := buildNoisyY(t)
	if _, err := Algorithm2Budget(y, lib2(), unitParams, b); !errors.Is(err, guard.ErrCanceled) {
		t.Errorf("Algorithm2Budget err = %v, want ErrCanceled", err)
	}
	if _, err := GreedyIterative(y, lib2(), GreedyOptions{Noise: true, Params: unitParams, Budget: b}); !errors.Is(err, guard.ErrCanceled) {
		t.Errorf("GreedyIterative err = %v, want ErrCanceled", err)
	}
	if _, _, _, err := ExhaustiveMinBuffersNoiseBudget(y, lib2(), unitParams, b); !errors.Is(err, guard.ErrCanceled) {
		t.Errorf("ExhaustiveMinBuffersNoiseBudget err = %v, want ErrCanceled", err)
	}
}

// TestBudgetTreeNodeCap checks the tree-size cap fires before any work.
func TestBudgetTreeNodeCap(t *testing.T) {
	tr := fanoutTree(t, 2, 100)
	b := guard.New(context.Background())
	b.MaxTreeNodes = 10
	if _, err := BuffOpt(tr, singleBufferLib(), unitParams, Options{Budget: b}); !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}
