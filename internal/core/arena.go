package core

import (
	"sync"
	"sync/atomic"

	"buffopt/internal/obs"
)

// candArena recycles the dynamic program's candidate-list backing arrays
// through a process-wide sync.Pool. The bottom-up DP allocates one or two
// fresh lists per tree node (merge outputs, wire-sizing variants), and on
// the Section V workloads those transient slices dominated the allocation
// profile (~746k allocs on BenchmarkTableII before pooling). Each runVG
// invocation owns one arena, so the taken/returned counters form a strict
// per-run invariant — every list taken from the pool is returned exactly
// once before the run ends — that the stress tests assert via the
// "vg.pool.taken" and "vg.pool.returned" counters the arena flushes.
//
// Ownership discipline: each tree node's finished candidate list is owned
// by that node until its parent consumes it (merge or chain adoption); the
// consumer releases it. The root's list is released by runVG itself after
// the driver filter copies the survivors out. Slices handed to callers of
// runVG are therefore never pool-backed.
//
// The arena is safe for concurrent use: the parallel scheduler's workers
// share one arena and the counters are atomic.
type candArena struct {
	taken    atomic.Int64
	returned atomic.Int64
}

// candPool holds recycled candidate-list backing arrays. Entries are fully
// zeroed before Put so pooled arrays cannot retain solLink chains (and the
// trees hanging off them) across runs.
var candPool = sync.Pool{}

// arenaMinCap is the smallest backing array the arena hands out; merges
// and sizing loops grow lists quickly, so tiny initial capacities only buy
// extra growth copies.
const arenaMinCap = 16

// get returns an empty candidate list with capacity at least capHint.
func (a *candArena) get(capHint int) []vgCand {
	if a != nil {
		a.taken.Add(1)
	}
	if capHint < arenaMinCap {
		capHint = arenaMinCap
	}
	if sp, _ := candPool.Get().(*[]vgCand); sp != nil {
		if cap(*sp) >= capHint {
			return (*sp)[:0]
		}
		// Too small for this request: put it back for a smaller one
		// rather than dropping the array on the floor.
		candPool.Put(sp)
	}
	return make([]vgCand, 0, capHint)
}

// put returns a list to the pool. The backing array is zeroed first so no
// solution links survive into the pool; the counter is bumped even for
// zero-capacity slices so the taken/returned invariant is a pure call
// count, immune to append having swapped the backing array.
func (a *candArena) put(s []vgCand) {
	if a != nil {
		a.returned.Add(1)
	}
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	sp := new([]vgCand)
	*sp = s[:0]
	candPool.Put(sp)
}

// flush publishes the arena's accounting to the obs registry. Called once
// per runVG; "vg.pool.taken" == "vg.pool.returned" is the no-leak
// invariant the race-gated stress tests check.
func (a *candArena) flush() {
	obs.Add("vg.pool.taken", a.taken.Load())
	obs.Add("vg.pool.returned", a.returned.Load())
}
