package core

import (
	"errors"
	"math"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

// lib3 is a two-buffer non-inverting library for the DP tests.
func lib3() *buffers.Library {
	return &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B1", Cin: 0.2, R: 1, T: 0.5, NoiseMargin: 4},
		{Name: "B2", Cin: 0.5, R: 0.5, T: 0.7, NoiseMargin: 4},
	}}
}

// noisySegmentedY returns the hand-built noisy Y tree segmented into
// buffer sites.
func noisySegmentedY(t *testing.T, pieces int) *rctree.Tree {
	t.Helper()
	tr := buildNoisyY(t)
	if _, err := segment.ByCount(tr, pieces); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuffOptProducesCleanOptimalTree(t *testing.T) {
	tr := noisySegmentedY(t, 3)
	res, err := BuffOpt(tr, lib3(), unitParams, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The DP's slack must agree with the independent Elmore analyzer.
	an := elmore.Analyze(res.Tree, res.Buffers)
	if !approx(res.Slack, an.WorstSlack) {
		t.Errorf("DP slack %v, analyzer %v", res.Slack, an.WorstSlack)
	}
	if r := noise.Analyze(res.Tree, res.Buffers, unitParams); !r.Clean() {
		t.Errorf("BuffOpt solution not noise clean: %+v", r.Violations)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Errorf("solution tree invalid: %v", err)
	}
}

func TestBuffOptMatchesExhaustiveSingleBuffer(t *testing.T) {
	// Theorem 5 conditions: single buffer type. (Two pieces per wire leave
	// no noise-feasible assignment at all, so use three.)
	tr := noisySegmentedY(t, 3)
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B", Cin: 0.05, R: 1, T: 0.5, NoiseMargin: 4},
	}}
	res, err := BuffOpt(tr, lib, unitParams, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, ok, err := ExhaustiveMaxSlackNoise(tr, lib, unitParams, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("exhaustive found no feasible assignment")
	}
	if !approx(res.Slack, want) {
		t.Errorf("BuffOpt slack %v, exhaustive optimum %v", res.Slack, want)
	}
}

func TestBuffOptSafePruningMatchesExhaustiveMultiBuffer(t *testing.T) {
	tr := noisySegmentedY(t, 2)
	res, err := BuffOpt(tr, lib3(), unitParams, Options{SafePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	want, _, ok, err := ExhaustiveMaxSlackNoise(tr, lib3(), unitParams, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("exhaustive found no feasible assignment")
	}
	if !approx(res.Slack, want) {
		t.Errorf("BuffOpt slack %v, exhaustive optimum %v", res.Slack, want)
	}
	// Paper pruning should be within a hair on this instance too (the
	// paper reports < 2% from optimal); require it not to crash and to
	// stay clean.
	paper, err := BuffOpt(tr, lib3(), unitParams, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if paper.Slack > want+1e-9 {
		t.Errorf("paper-pruned slack %v exceeds exhaustive optimum %v", paper.Slack, want)
	}
}

func TestDelayOptMatchesExhaustive(t *testing.T) {
	tr := noisySegmentedY(t, 2)
	res, err := DelayOpt(tr, lib3(), Options{SafePruning: false})
	if err != nil {
		t.Fatal(err)
	}
	want, _, ok, err := ExhaustiveMaxSlackNoise(tr, lib3(), unitParams, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("exhaustive found nothing")
	}
	if !approx(res.Slack, want) {
		t.Errorf("DelayOpt slack %v, exhaustive optimum %v", res.Slack, want)
	}
	an := elmore.Analyze(res.Tree, res.Buffers)
	if !approx(res.Slack, an.WorstSlack) {
		t.Errorf("DP slack %v, analyzer %v", res.Slack, an.WorstSlack)
	}
}

func TestDelayOptKMonotone(t *testing.T) {
	tr := noisySegmentedY(t, 3)
	prev := math.Inf(-1)
	for k := 0; k <= 5; k++ {
		res, err := DelayOptK(tr, lib3(), k, Options{})
		if err != nil {
			t.Fatalf("DelayOptK(%d): %v", k, err)
		}
		if res.NumBuffers() > k {
			t.Errorf("DelayOptK(%d) used %d buffers", k, res.NumBuffers())
		}
		if res.Slack < prev-1e-9 {
			t.Errorf("slack decreased from %v to %v at k=%d", prev, res.Slack, k)
		}
		prev = res.Slack
	}
	// Unlimited DelayOpt must match a large k.
	unl, err := DelayOpt(tr, lib3(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := DelayOptK(tr, lib3(), 50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(unl.Slack, big.Slack) {
		t.Errorf("DelayOpt %v != DelayOptK(50) %v", unl.Slack, big.Slack)
	}
	// k = 0 must equal the unbuffered tree's slack.
	k0, err := DelayOptK(tr, lib3(), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := elmore.Analyze(tr, nil).WorstSlack; !approx(k0.Slack, got) {
		t.Errorf("DelayOptK(0) slack %v, unbuffered %v", k0.Slack, got)
	}
}

func TestBuffOptMinBuffersPicksFewest(t *testing.T) {
	// Make timing easy (huge RATs) so the fewest noise-clean count wins.
	tr := buildNoisyY(t)
	for _, s := range tr.Sinks() {
		tr.Node(s).RAT = 1e9
	}
	if _, err := segment.ByCount(tr, 3); err != nil {
		t.Fatal(err)
	}
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B", Cin: 0.05, R: 1, T: 0.5, NoiseMargin: 4},
	}}
	res, err := BuffOptMinBuffers(tr, lib, unitParams, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := noise.Analyze(res.Tree, res.Buffers, unitParams); !r.Clean() {
		t.Fatalf("not clean: %+v", r.Violations)
	}
	if res.Slack < 0 {
		t.Fatalf("timing violated with RAT=1e9: slack %v", res.Slack)
	}
	best, _, ok, err := ExhaustiveMinBuffersNoise(tr, lib, unitParams)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("exhaustive found no clean assignment")
	}
	if res.NumBuffers() != best {
		t.Errorf("BuffOptMinBuffers used %d, optimum %d", res.NumBuffers(), best)
	}
}

func TestBuffOptUnfixableNoise(t *testing.T) {
	// A buffer whose margin is zero can never protect a noisy line.
	tr := noisySegmentedY(t, 2)
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "Z", Cin: 0.05, R: 1, T: 0.5, NoiseMargin: 0},
	}}
	_, err := BuffOpt(tr, lib, unitParams, Options{})
	if !errors.Is(err, ErrNoiseUnfixable) {
		t.Errorf("err = %v, want ErrNoiseUnfixable", err)
	}
}

func TestTheorem2DelayOptLeavesViolations(t *testing.T) {
	// Theorem 2: a delay-optimal buffering can still violate noise. A very
	// strong, fast driver on a medium line: adding any buffer only hurts
	// delay (buffer intrinsic delay dominates), so DelayOpt inserts none —
	// but the line has a noise violation that BuffOpt must fix.
	tr := rctree.New("thm2", 0.05, 0)
	if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 3, C: 3, Length: 3}, "s", 0.1, 0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := segment.ByCount(tr, 4); err != nil {
		t.Fatal(err)
	}
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "slow", Cin: 0.2, R: 1, T: 50, NoiseMargin: 4},
	}}

	dres, err := DelayOpt(tr, lib, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if dres.NumBuffers() != 0 {
		t.Fatalf("DelayOpt inserted %d buffers; the construction needs 0", dres.NumBuffers())
	}
	if noise.Analyze(dres.Tree, dres.Buffers, unitParams).Clean() {
		t.Fatalf("construction failed: unbuffered line is noise clean")
	}

	bres, err := BuffOpt(tr, lib, unitParams, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bres.NumBuffers() == 0 {
		t.Errorf("BuffOpt inserted no buffers")
	}
	if r := noise.Analyze(bres.Tree, bres.Buffers, unitParams); !r.Clean() {
		t.Errorf("BuffOpt solution not clean: %+v", r.Violations)
	}
	if bres.Slack > dres.Slack+1e-9 {
		t.Errorf("noise-constrained slack %v exceeds unconstrained %v", bres.Slack, dres.Slack)
	}
}

func TestInvertingBuffersRespectPolarity(t *testing.T) {
	// An inverter-only library must use an even number of stages on every
	// source-to-sink path.
	tr := noisySegmentedY(t, 4)
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "INV", Cin: 0.05, R: 1, T: 0.3, NoiseMargin: 4, Inverting: true},
	}}
	res, err := BuffOpt(tr, lib, unitParams, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r := noise.Analyze(res.Tree, res.Buffers, unitParams); !r.Clean() {
		t.Fatalf("not clean: %+v", r.Violations)
	}
	if !polarityOK(res.Tree, res.Buffers) {
		t.Errorf("solution inverts some sink")
	}
	if res.NumBuffers()%2 != 0 && res.Tree.NumSinks() == 1 {
		t.Errorf("odd inverter count on a two-pin net")
	}
}

func TestBuffOptKRespectsBound(t *testing.T) {
	tr := noisySegmentedY(t, 3)
	lib := lib3()
	full, err := BuffOpt(tr, lib, unitParams, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuffOptK(tr, lib, unitParams, full.NumBuffers(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumBuffers() > full.NumBuffers() {
		t.Errorf("BuffOptK(%d) used %d buffers", full.NumBuffers(), res.NumBuffers())
	}
	if res.Slack < full.Slack-1e-9 {
		t.Errorf("BuffOptK at the optimum's count got slack %v < %v", res.Slack, full.Slack)
	}
	// Too-tight bounds can make noise unfixable.
	if _, err := BuffOptK(tr, lib, unitParams, 0, Options{}); err == nil {
		t.Errorf("BuffOptK(0) succeeded on a net that needs buffers")
	}
}

func TestRunVGRejectsBadInput(t *testing.T) {
	tr := rctree.New("star", 1, 0)
	for i := 0; i < 3; i++ {
		if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 1, C: 1, Length: 1}, "s", 0.1, 0, 4); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := BuffOpt(tr, lib3(), unitParams, Options{}); err == nil {
		t.Errorf("ternary tree accepted")
	}
	if _, err := DelayOptK(noisySegmentedY(t, 2), lib3(), -1, Options{}); err == nil {
		t.Errorf("negative k accepted")
	}
	if _, err := DelayOpt(noisySegmentedY(t, 2), &buffers.Library{}, Options{}); err == nil {
		t.Errorf("empty library accepted")
	}
}
