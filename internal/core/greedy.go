package core

import (
	"fmt"
	"math"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/guard"
	"buffopt/internal/noise"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
)

// GreedyOptions configures GreedyIterative.
type GreedyOptions struct {
	// Noise makes the noise constraints part of the objective: moves that
	// reduce the violation count dominate moves that only improve slack.
	Noise bool
	// Params are the estimation-mode noise parameters (required when
	// Noise is set).
	Params noise.Params
	// MaxBuffers bounds the number of insertions; 0 means no bound.
	MaxBuffers int
	// Budget bounds the run (deadline, tree size). Nil means unlimited.
	// Each candidate evaluation is a full O(n) analysis, so the budget is
	// checked once per evaluated (site, buffer) pair.
	Budget *guard.Budget
}

// GreedyIterative is the iterative single-buffer baseline the paper's
// related work describes (Kannan et al. [14]; Lin and Marek-Sadowska
// [20]): repeatedly evaluate every (feasible node, buffer type) insertion
// with the full analyzers, commit the best one, and stop when nothing
// improves. The objective is lexicographic — fewer noise violations
// first (when Noise is set), then larger worst slack.
//
// It exists as a baseline for the ablation studies: the paper's dynamic
// programs dominate it by construction (Theorem 5 / Van Ginneken
// optimality), and the experiments quantify by how much. Each round costs
// O(sites × |B|) full analyses, so the whole run is O(rounds × sites ×
// |B| × n) — polynomial but far heavier per solution than the DP.
func GreedyIterative(t *rctree.Tree, lib *buffers.Library, opts GreedyOptions) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, invalid(err)
	}
	if err := lib.Validate(); err != nil {
		return nil, invalid(err)
	}
	if opts.Noise {
		if err := opts.Params.Validate(); err != nil {
			return nil, fmt.Errorf("core: greedy noise mode requires noise parameters: %w", err)
		}
	}
	if err := opts.Budget.CheckTreeNodes(t.Len()); err != nil {
		return nil, err
	}
	// The heuristic places one buffer at a time and cannot plan inverter
	// pairs, so it uses the non-inverting sub-library (as the iterative
	// methods it models do).
	lib = lib.NonInverting()
	if len(lib.Buffers) == 0 {
		return nil, fmt.Errorf("core: greedy needs at least one non-inverting buffer")
	}

	work := t.Clone()
	assign := make(map[rctree.NodeID]buffers.Buffer)

	// Rounds and full-analysis evaluations, flushed once per run: each
	// evaluation is an O(n) analyzer pass, so evals/rounds is the per-round
	// search breadth the ablation tables reason about.
	var rounds, evals int64
	defer func() {
		obs.Add("greedy.rounds", rounds)
		obs.Add("greedy.evals", evals)
		obs.Add("greedy.buffers.inserted", int64(len(assign)))
	}()

	type state struct {
		violations int
		excess     float64 // total noise above margins, V
		slack      float64
	}
	eval := func() state {
		s := state{slack: elmore.Analyze(work, assign).WorstSlack}
		if opts.Noise {
			r := noise.Analyze(work, assign, opts.Params)
			s.violations = len(r.Violations)
			for _, v := range r.Violations {
				s.excess += v.Noise - v.Margin
			}
		}
		return s
	}
	// Lexicographic objective: fewer violations, then less total excess
	// noise (so partial progress on a still-violated sink counts), then
	// more slack.
	better := func(a, b state) bool {
		if a.violations != b.violations {
			return a.violations < b.violations
		}
		if a.excess < b.excess-1e-12 {
			return true
		}
		if a.excess > b.excess+1e-12 {
			return false
		}
		return a.slack > b.slack+1e-15
	}

	cur := eval()
	var sites []rctree.NodeID
	for _, v := range work.Preorder() {
		n := work.Node(v)
		if n.BufferOK && n.Kind == rctree.Internal && v != work.Root() {
			sites = append(sites, v)
		}
	}

	for {
		if opts.MaxBuffers > 0 && len(assign) >= opts.MaxBuffers {
			break
		}
		rounds++
		bestState := cur
		var bestSite rctree.NodeID = rctree.None
		var bestBuf buffers.Buffer
		for _, v := range sites {
			if _, used := assign[v]; used {
				continue
			}
			if err := opts.Budget.Check(); err != nil {
				return nil, err
			}
			for _, b := range lib.Buffers {
				assign[v] = b
				evals++
				if s := eval(); better(s, bestState) {
					bestState, bestSite, bestBuf = s, v, b
				}
				delete(assign, v)
			}
		}
		if bestSite == rctree.None {
			break // local optimum
		}
		assign[bestSite] = bestBuf
		cur = bestState
	}

	if opts.Noise && cur.violations > 0 {
		// Local optimum with violations left: report it as unfixable by
		// this heuristic (the DP may still succeed — that is the point of
		// the comparison).
		return &Result{
				Solution: &Solution{Tree: work, Buffers: assign},
				Slack:    cur.slack,
				Cost:     costOf(assign),
			}, fmt.Errorf("core: greedy left %d noise violations: %w",
				cur.violations, ErrNoiseUnfixable)
	}
	return &Result{
		Solution: &Solution{Tree: work, Buffers: assign},
		Slack:    cur.slack,
		Cost:     costOf(assign),
	}, nil
}

func costOf(assign map[rctree.NodeID]buffers.Buffer) int {
	c := 0
	for _, b := range assign {
		c += b.Cost()
	}
	return c
}

// greedySlackUpperBound is a tiny helper for tests: the DP's optimal
// slack can never be below the greedy result's.
func greedySlackUpperBound(dp, greedy float64) bool {
	return dp >= greedy-1e-9*math.Max(1, math.Abs(greedy))
}
