package core

import (
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

// lib2 holds one buffer with R=1, NM=4 used by the hand-derived Y case.
func lib2() *buffers.Library {
	return &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B", Cin: 0.1, R: 1, T: 0, NoiseMargin: 4},
	}}
}

// buildNoisyY builds the hand-derived multi-sink case:
//
//	so --(R=1,C=1,L=1)--> v1 --(R=3,C=3,L=3)--> s1 (NM 4)
//	                       \---(R=3,C=3,L=3)--> s2 (NM 4)
//
// driver R_so = 2; λμ = 1. The continuous optimum uses 3 buffers: one at
// distance 2 above each sink (the Theorem 1 maximum: 0.5·l²+l−4=0 → l=2)
// and one on the stem within 0.4641 of v1 (−3+√12).
func buildNoisyY(t *testing.T) *rctree.Tree {
	t.Helper()
	tr := rctree.New("y", 2, 0)
	v1, err := tr.AddInternal(tr.Root(), rctree.Wire{R: 1, C: 1, Length: 1}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AddSink(v1, rctree.Wire{R: 3, C: 3, Length: 3}, "s1", 0.1, 0, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AddSink(v1, rctree.Wire{R: 3, C: 3, Length: 3}, "s2", 0.1, 0, 4); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAlgorithm2HandCase(t *testing.T) {
	tr := buildNoisyY(t)
	sol, err := Algorithm2(tr, lib2(), unitParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Tree.Validate(); err != nil {
		t.Fatalf("solution tree invalid: %v", err)
	}
	if r := noise.Analyze(sol.Tree, sol.Buffers, unitParams); !r.Clean() {
		t.Fatalf("solution not clean: %+v", r.Violations)
	}
	if got := sol.NumBuffers(); got != 3 {
		t.Errorf("NumBuffers = %d, want 3", got)
	}
}

func TestAlgorithm2MatchesExhaustive(t *testing.T) {
	tr := buildNoisyY(t)
	sol, err := Algorithm2(tr, lib2(), unitParams)
	if err != nil {
		t.Fatal(err)
	}
	seg := tr.Clone()
	if _, err := segment.ByCount(seg, 6); err != nil {
		t.Fatal(err)
	}
	best, _, ok, err := ExhaustiveMinBuffersNoise(seg, lib2(), unitParams)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("exhaustive found no clean assignment")
	}
	if sol.NumBuffers() > best {
		t.Errorf("Algorithm2 used %d buffers, discrete optimum %d", sol.NumBuffers(), best)
	}
	if best < sol.NumBuffers() {
		t.Errorf("discrete optimum %d beats continuous %d", best, sol.NumBuffers())
	}
}

func TestAlgorithm2CleanTreeNoBuffers(t *testing.T) {
	tr := rctree.New("small", 1, 0)
	v1, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 0.2, C: 0.2, Length: 0.2}, true)
	_, _ = tr.AddSink(v1, rctree.Wire{R: 0.2, C: 0.2, Length: 0.2}, "a", 0.1, 0, 4)
	_, _ = tr.AddSink(v1, rctree.Wire{R: 0.2, C: 0.2, Length: 0.2}, "b", 0.1, 0, 4)
	sol, err := Algorithm2(tr, lib2(), unitParams)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.NumBuffers(); got != 0 {
		t.Errorf("NumBuffers = %d, want 0", got)
	}
}

func TestAlgorithm2EqualsAlgorithm1OnPaths(t *testing.T) {
	for _, length := range []float64{2, 5, 10, 17} {
		tr := rctree.New("line", 1, 0)
		if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: length, C: length, Length: length}, "s", 0.1, 0, 5); err != nil {
			t.Fatal(err)
		}
		lib := singleBufferLib()
		s1, err := Algorithm1(tr, lib, unitParams)
		if err != nil {
			t.Fatalf("Algorithm1(%g): %v", length, err)
		}
		s2, err := Algorithm2(tr, lib, unitParams)
		if err != nil {
			t.Fatalf("Algorithm2(%g): %v", length, err)
		}
		if s1.NumBuffers() != s2.NumBuffers() {
			t.Errorf("length %g: Algorithm1 used %d, Algorithm2 used %d", length, s1.NumBuffers(), s2.NumBuffers())
		}
		if r := noise.Analyze(s2.Tree, s2.Buffers, unitParams); !r.Clean() {
			t.Errorf("length %g: Algorithm2 solution not clean", length)
		}
	}
}

func TestAlgorithm2SourceBuffer(t *testing.T) {
	// Branches too weak for the driver alone: driver R_so = 20 forces a
	// buffer right after the source even though each branch is clean.
	tr := rctree.New("y", 20, 0)
	v1, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 0.2, C: 0.2, Length: 0.2}, true)
	_, _ = tr.AddSink(v1, rctree.Wire{R: 0.2, C: 0.2, Length: 0.2}, "a", 0.1, 0, 4)
	_, _ = tr.AddSink(v1, rctree.Wire{R: 0.2, C: 0.2, Length: 0.2}, "b", 0.1, 0, 4)
	sol, err := Algorithm2(tr, lib2(), unitParams)
	if err != nil {
		t.Fatal(err)
	}
	if r := noise.Analyze(sol.Tree, sol.Buffers, unitParams); !r.Clean() {
		t.Fatalf("solution not clean: %+v", r.Violations)
	}
	if got := sol.NumBuffers(); got != 1 {
		t.Errorf("NumBuffers = %d, want 1", got)
	}
}

func TestAlgorithm2RequiresBinary(t *testing.T) {
	tr := rctree.New("star", 1, 0)
	for i := 0; i < 3; i++ {
		if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 1, C: 1, Length: 1}, "s", 0.1, 0, 4); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Algorithm2(tr, lib2(), unitParams); err == nil {
		t.Errorf("ternary tree accepted without Binarize")
	}
	tr.Binarize()
	sol, err := Algorithm2(tr, lib2(), unitParams)
	if err != nil {
		t.Fatal(err)
	}
	if r := noise.Analyze(sol.Tree, sol.Buffers, unitParams); !r.Clean() {
		t.Errorf("solution not clean after Binarize: %+v", r.Violations)
	}
}

func TestAlgorithm2DeepUnbalanced(t *testing.T) {
	// A caterpillar: long spine with short sink stubs, forcing repeated
	// merges with accumulated current.
	tr := rctree.New("cat", 1, 0)
	cur := tr.Root()
	for i := 0; i < 6; i++ {
		v, err := tr.AddInternal(cur, rctree.Wire{R: 1, C: 1, Length: 1}, true)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.AddSink(v, rctree.Wire{R: 0.3, C: 0.3, Length: 0.3}, "s", 0.1, 0, 4); err != nil {
			t.Fatal(err)
		}
		cur = v
	}
	// Terminate the spine with a final sink.
	if _, err := tr.AddSink(cur, rctree.Wire{R: 1, C: 1, Length: 1}, "end", 0.1, 0, 4); err != nil {
		t.Fatal(err)
	}
	sol, err := Algorithm2(tr, lib2(), unitParams)
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.Tree.Validate(); err != nil {
		t.Fatalf("solution tree invalid: %v", err)
	}
	if r := noise.Analyze(sol.Tree, sol.Buffers, unitParams); !r.Clean() {
		t.Fatalf("solution not clean: %+v", r.Violations)
	}
	// Compare against the discrete optimum.
	seg := tr.Clone()
	if _, err := segment.ByCount(seg, 2); err != nil {
		t.Fatal(err)
	}
	best, _, ok, err := ExhaustiveMinBuffersNoise(seg, lib2(), unitParams)
	if err != nil {
		t.Skipf("exhaustive too large: %v", err)
	}
	if ok && sol.NumBuffers() > best {
		t.Errorf("Algorithm2 used %d buffers, discrete optimum %d", sol.NumBuffers(), best)
	}
}
