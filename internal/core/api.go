package core

import (
	"fmt"
	"math"

	"buffopt/internal/buffers"
	"buffopt/internal/guard"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
)

// Options tunes the Algorithm 3 family. The zero value reproduces the
// paper's configuration.
type Options struct {
	// SafePruning keeps noise slack and current in the dominance test,
	// guaranteeing exactness for multi-buffer libraries (Section IV-C
	// explains why the paper's pruning is only exact for a single buffer
	// type). Slower; off by default, as in the paper.
	SafePruning bool
	// Sizing enables simultaneous wire sizing (the Lillis [18] extension
	// the paper builds on): every wire additionally chooses a width from
	// Sizing.Widths. Nil disables sizing (all wires at minimum width).
	Sizing *Sizing
	// Budget bounds the run: wall-clock deadline (via context), candidate
	// list size, and tree size. Nil means unlimited. On violation the
	// solver returns an error wrapping guard.ErrCanceled or
	// guard.ErrBudgetExceeded; the input tree is never modified either
	// way.
	Budget *guard.Budget
	// Workers bounds the goroutines the bottom-up dynamic program may use
	// to solve independent subtrees concurrently at branch-merge points.
	// 0 (the default) picks GOMAXPROCS automatically, staying serial on
	// trees too small to amortize the scheduling; 1 forces the serial
	// walk; N > 1 forces an N-worker pool even on small trees (the
	// differential test suite exercises the parallel path this way).
	// Results are bit-identical across all settings — the parallel
	// schedule changes when nodes are computed, never what they compute.
	Workers int
	// Cache, when non-nil, memoizes whole-net Solve results by canonical
	// problem hash: repeated identical requests return a deep copy of the
	// first answer, and concurrent identical requests coalesce onto one
	// ladder run. Only Solve consults it (the cache key covers Solve's
	// degradation behavior); the single-engine entry points ignore it.
	// Excluded from the cache key itself, like Workers.
	Cache *SolveCache
	// Engine selects the dynamic-program organization: EngineAuto (the
	// default, also chosen by ""), EngineVG, or EngineLiShi. Engines
	// are bit-identical on objective values by construction — the
	// enginetest suite is the gate — so Engine is excluded from every
	// cache key, like Workers: a cached result answers a request from any
	// engine. Unknown names are rejected with guard.ErrInvalidInput by
	// Optimize and Solve.
	Engine string

	// memo, when non-nil, threads a session's subtree memo table into the
	// dynamic program (see Delta). Unexported: only the session layer may
	// install it, because correctness depends on the hashes slice staying
	// synchronized with the tree being solved.
	memo *memoRun
}

// Sizing configures simultaneous wire sizing. Widening a wire divides its
// resistance by the width multiplier and grows the non-fringe part of its
// capacitance proportionally; the sidewall coupling current is unchanged,
// so widening is itself a noise-avoidance move.
type Sizing struct {
	// Widths are the available width multipliers (relative to minimum
	// width), e.g. {1, 2, 4}. Include 1 unless minimum width is banned.
	Widths []float64
	// Fringe is the fraction of a minimum-width wire's capacitance that
	// does not scale with width. Zero means 0.5.
	Fringe float64
}

// Validate checks the wire-sizing configuration. Errors wrap
// guard.ErrInvalidInput. A nil Sizing (sizing disabled) is valid.
func (s *Sizing) Validate() error {
	if s == nil {
		return nil
	}
	if len(s.Widths) == 0 {
		return fmt.Errorf("core: Sizing.Widths is empty; include at least width 1: %w", guard.ErrInvalidInput)
	}
	for i, w := range s.Widths {
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return fmt.Errorf("core: Sizing.Widths[%d] = %g must be positive and finite: %w",
				i, w, guard.ErrInvalidInput)
		}
	}
	if math.IsNaN(s.Fringe) || s.Fringe < 0 || s.Fringe > 1 {
		return fmt.Errorf("core: Sizing.Fringe = %g must lie in [0, 1]: %w", s.Fringe, guard.ErrInvalidInput)
	}
	return nil
}

// vgo builds the engine options shared by every public entry point. The
// engine name is assumed validated (Optimize and Solve call ParseEngine
// first); an unvalidated empty string still resolves to the auto default.
func (o Options) vgo() vgOptions {
	v := vgOptions{safePruning: o.SafePruning, budget: o.Budget, workers: o.Workers, engine: o.Engine, memo: o.memo}
	if v.engine == "" {
		v.engine = EngineAuto
	}
	if o.Sizing != nil {
		v.widths = o.Sizing.Widths
		v.fringe = o.Sizing.Fringe
	}
	return v
}

// invalid tags a validation failure with the taxonomy's invalid-input
// class, preserving the original message for errors.Is dispatch.
func invalid(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", guard.ErrInvalidInput, err)
}

// Result bundles a Solution with the dynamic program's own view of it, so
// callers do not need to re-run analysis to learn what the optimizer
// thought it achieved.
type Result struct {
	*Solution
	// Slack is the timing slack at the source, min over sinks of
	// RAT − delay, as computed by the dynamic program.
	Slack float64
	// Cost is the solution's total buffer weight (the Lillis power
	// function; equal to the buffer count when every weight is 1).
	Cost int
}

// BuffOpt solves Problem 2: maximize the slack at the source subject to
// every noise constraint (Algorithm 3, Section IV; optimal for a single
// buffer type per Theorem 5). It returns ErrNoiseUnfixable (wrapped) when
// no buffer assignment satisfies the noise constraints.
//
// Equivalent to Optimize with Objective MaxSlackNoise.
//
// Deprecated: use Optimize with Objective MaxSlackNoise (or a Session for
// incremental re-solves). Kept for source compatibility; the equivalence
// is pinned by tests and will not drift.
func BuffOpt(t *rctree.Tree, lib *buffers.Library, p noise.Params, opts Options) (*Result, error) {
	return Optimize(opts.Budget.Context(), Problem{Tree: t, Library: lib, Params: p, Objective: MaxSlackNoise}, opts)
}

func buffOpt(t *rctree.Tree, lib *buffers.Library, p noise.Params, opts Options) (*Result, error) {
	vo := opts.vgo()
	vo.noise = true
	vo.params = p
	cands, err := runVG(t, lib, vo)
	if err != nil {
		return nil, err
	}
	best, ok := maxSlack(cands, math.MaxInt)
	if !ok {
		return nil, fmt.Errorf("core: BuffOpt found no noise-feasible solution: %w", ErrNoiseUnfixable)
	}
	return finishVG(t, best, vo)
}

// BuffOptMinBuffers solves Problem 3: insert the minimum total buffer
// weight (the Lillis power function — the buffer count when all weights
// are 1, or area/power with explicit Buffer.Weight values) such that both
// the noise constraints and the timing constraints (slack ≥ 0) hold,
// maximizing slack as a secondary objective. This is the configuration of
// the BuffOpt tool used in the Section V experiments, built on the Lillis
// buffer-count-indexed candidate lists.
//
// Buffer counts are explored by iterative deepening (caps 2, 4, 8, …): a
// feasible solution found under cap m is count-minimal outright, because
// every smaller count was also explored, and most nets resolve at the
// first cap. This keeps BuffOpt's candidate lists shorter than
// DelayOpt(k)'s — the run-time effect Section V reports (noise pruning
// plus small caps mean fewer candidates to analyze).
//
// When no buffer count achieves non-negative slack, the noise-feasible
// solution with maximum slack is returned (best effort): noise constraints
// are hard, timing is maximized.
//
// Equivalent to Optimize with Objective MinBuffersNoise.
//
// Deprecated: use Optimize with Objective MinBuffersNoise (or a Session
// for incremental re-solves). Kept for source compatibility; the
// equivalence is pinned by tests and will not drift.
func BuffOptMinBuffers(t *rctree.Tree, lib *buffers.Library, p noise.Params, opts Options) (*Result, error) {
	return Optimize(opts.Budget.Context(), Problem{Tree: t, Library: lib, Params: p, Objective: MinBuffersNoise}, opts)
}

func buffOptMinBuffers(t *rctree.Tree, lib *buffers.Library, p noise.Params, opts Options) (*Result, error) {
	const hardCap = 64
	var lastErr error
	var fallback *vgCand
	vo := opts.vgo()
	vo.noise = true
	vo.params = p
	vo.countIndexed = true
	for limit := 2; limit <= hardCap; limit *= 2 {
		vo.maxBuffers = limit
		cands, err := runVG(t, lib, vo)
		if err != nil {
			return nil, err
		}
		if len(cands) == 0 {
			lastErr = fmt.Errorf("core: BuffOpt found no noise-feasible solution: %w", ErrNoiseUnfixable)
			continue
		}
		// cands is sorted by ascending cost; the first candidate with
		// non-negative slack is the cost-minimal feasible solution.
		bestPerCount := map[int]vgCand{}
		for _, c := range cands {
			if cur, ok := bestPerCount[c.cost]; !ok || c.q > cur.q {
				bestPerCount[c.cost] = c
			}
		}
		for k := 0; k <= maxKey(bestPerCount); k++ {
			if c, ok := bestPerCount[k]; ok && c.q >= 0 {
				return finishVG(t, c, vo)
			}
		}
		// Noise is satisfiable but timing is not (yet): remember the best
		// slack and allow more buffers in case they close the gap; stop
		// once extra headroom no longer improves anything.
		if c, ok := maxSlack(cands, math.MaxInt); ok {
			if fallback != nil && c.q <= fallback.q {
				lastErr = nil
				break
			}
			cc := c
			fallback = &cc
		}
		lastErr = nil
	}
	if fallback != nil {
		return finishVG(t, *fallback, vo)
	}
	if lastErr != nil {
		return nil, lastErr
	}
	return nil, fmt.Errorf("core: BuffOpt found no noise-feasible solution: %w", ErrNoiseUnfixable)
}

// DelayOpt is the Section V baseline: Van Ginneken's algorithm with the
// Lillis extensions but no noise constraints — Algorithm 3 without the
// boldface modifications. It maximizes the slack at the source.
//
// Equivalent to Optimize with Objective MaxSlack.
//
// Deprecated: use Optimize with Objective MaxSlack (or a Session for
// incremental re-solves). Kept for source compatibility; the equivalence
// is pinned by tests and will not drift.
func DelayOpt(t *rctree.Tree, lib *buffers.Library, opts Options) (*Result, error) {
	return Optimize(opts.Budget.Context(), Problem{Tree: t, Library: lib, Objective: MaxSlack}, opts)
}

func delayOpt(t *rctree.Tree, lib *buffers.Library, opts Options) (*Result, error) {
	vo := opts.vgo()
	cands, err := runVG(t, lib, vo)
	if err != nil {
		return nil, err
	}
	best, ok := maxSlack(cands, math.MaxInt)
	if !ok {
		return nil, fmt.Errorf("core: DelayOpt produced no candidates")
	}
	return finishVG(t, best, vo)
}

// DelayOptK is DelayOpt(k) of Section V: the best slack achievable with at
// most k buffers, via buffer-count-indexed candidate lists.
//
// Equivalent to Optimize with Objective MaxSlack and MaxBuffers k.
//
// Deprecated: use Optimize with Objective MaxSlack and MaxBuffers (or a
// Session for incremental re-solves). Kept for source compatibility; the
// equivalence is pinned by tests and will not drift.
func DelayOptK(t *rctree.Tree, lib *buffers.Library, k int, opts Options) (*Result, error) {
	return Optimize(opts.Budget.Context(), Problem{Tree: t, Library: lib, Objective: MaxSlack, MaxBuffers: &k}, opts)
}

// delayOptK assumes k ≥ 0 (Problem.Validate rejected negatives).
func delayOptK(t *rctree.Tree, lib *buffers.Library, k int, opts Options) (*Result, error) {
	vo := opts.vgo()
	vo.countIndexed = true
	vo.maxBuffers = k
	cands, err := runVG(t, lib, vo)
	if err != nil {
		return nil, err
	}
	best, ok := maxSlack(cands, k)
	if !ok {
		return nil, fmt.Errorf("core: DelayOpt(%d) produced no candidates", k)
	}
	return finishVG(t, best, vo)
}

// BuffOptK returns the noise-feasible solution with the best slack using
// at most k buffers. Used by ablation studies; the Section V tool is
// BuffOptMinBuffers.
//
// Equivalent to Optimize with Objective MaxSlackNoise and MaxBuffers k.
//
// Deprecated: use Optimize with Objective MaxSlackNoise and MaxBuffers
// (or a Session for incremental re-solves). Kept for source
// compatibility; the equivalence is pinned by tests and will not drift.
func BuffOptK(t *rctree.Tree, lib *buffers.Library, p noise.Params, k int, opts Options) (*Result, error) {
	return Optimize(opts.Budget.Context(), Problem{Tree: t, Library: lib, Params: p, Objective: MaxSlackNoise, MaxBuffers: &k}, opts)
}

// buffOptK assumes k ≥ 0 (Problem.Validate rejected negatives).
func buffOptK(t *rctree.Tree, lib *buffers.Library, p noise.Params, k int, opts Options) (*Result, error) {
	vo := opts.vgo()
	vo.noise = true
	vo.params = p
	vo.countIndexed = true
	vo.maxBuffers = k
	cands, err := runVG(t, lib, vo)
	if err != nil {
		return nil, err
	}
	best, ok := maxSlack(cands, k)
	if !ok {
		return nil, fmt.Errorf("core: BuffOpt(%d) found no noise-feasible solution: %w", k, ErrNoiseUnfixable)
	}
	return finishVG(t, best, vo)
}

// maxSlack picks the candidate with the largest slack among those of
// total weight at most k (weight equals count for unit-weight libraries);
// ties break toward smaller weight.
func maxSlack(cands []vgCand, k int) (vgCand, bool) {
	var best vgCand
	found := false
	for _, c := range cands {
		if c.cost > k {
			continue
		}
		if !found || c.q > best.q || (c.q == best.q && c.cost < best.cost) {
			best, found = c, true
		}
	}
	return best, found
}

func maxKey(m map[int]vgCand) int {
	max := 0
	for k := range m {
		if k > max {
			max = k
		}
	}
	return max
}

// finishVG materializes a chosen candidate into a Result with a private
// tree copy, applying any chosen wire widths to the copy's parasitics so
// the standard analyzers see exactly what the dynamic program computed.
func finishVG(t *rctree.Tree, c vgCand, vo vgOptions) (*Result, error) {
	assign, widths := collectSol(c.sol)
	work := t.Clone()
	for v, wd := range widths {
		node := work.Node(v)
		w := node.Wire
		oldC := w.C
		w.R, w.C = vo.wireVariant(w, wd)
		if vo.noise && vo.params.Slope > 0 && w.C > 0 {
			// Freeze the coupling current at its minimum-width (sidewall)
			// value: the metric's estimation mode would otherwise scale it
			// with the grown ground capacitance.
			iw := vo.params.WireCurrent(node.Wire)
			w.Aggressors = []rctree.Coupling{{
				Ratio: iw / (vo.params.Slope * w.C),
				Slope: vo.params.Slope,
			}}
			_ = oldC
		}
		node.Wire = w
	}
	if len(widths) == 0 {
		widths = nil
	}
	sol := &Solution{Tree: work, Buffers: assign, Widths: widths}
	return &Result{Solution: sol, Slack: c.q, Cost: c.cost}, nil
}
