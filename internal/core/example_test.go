package core_test

import (
	"fmt"

	"buffopt/internal/buffers"
	"buffopt/internal/core"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

// ExampleAlgorithm1 repairs a noisy two-pin line: the buffers land at
// their Theorem 1 maximal spacings (here −1+√11 ≈ 2.317 length units).
func ExampleAlgorithm1() {
	params := noise.Params{CouplingRatio: 1, Slope: 1}
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B1", Cin: 0.1, R: 1, NoiseMargin: 5},
	}}
	tr := rctree.New("line", 1, 0)
	tr.AddSink(tr.Root(), rctree.Wire{R: 10, C: 10, Length: 10}, "sink", 0.1, 0, 5)

	sol, err := core.Algorithm1(tr, lib, params)
	if err != nil {
		panic(err)
	}
	clean := noise.Analyze(sol.Tree, sol.Buffers, params).Clean()
	fmt.Printf("%d buffers, clean=%v\n", sol.NumBuffers(), clean)
	// Output: 4 buffers, clean=true
}

// ExampleBuffOptMinBuffers runs the Section V tool configuration: fewest
// buffers meeting both the noise and the timing constraints.
func ExampleBuffOptMinBuffers() {
	params := noise.Params{CouplingRatio: 1, Slope: 1}
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B", Cin: 0.05, R: 1, T: 0.5, NoiseMargin: 4},
	}}
	tr := rctree.New("y", 2, 0)
	v1, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 1, C: 1, Length: 1}, true)
	tr.AddSink(v1, rctree.Wire{R: 3, C: 3, Length: 3}, "a", 0.1, 100, 4)
	tr.AddSink(v1, rctree.Wire{R: 3, C: 3, Length: 3}, "b", 0.1, 100, 4)
	// Preprocess: create candidate buffer sites.
	segment.ByCount(tr, 3)

	res, err := core.BuffOptMinBuffers(tr, lib, params, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d buffers, slack ≥ 0: %v\n", res.NumBuffers(), res.Slack >= 0)
	// Output: 3 buffers, slack ≥ 0: true
}

// ExampleMaxSafeLength evaluates Theorem 1: how long may a buffer-driven
// wire run before its coupled noise exceeds the available slack?
func ExampleMaxSafeLength() {
	l, err := core.MaxSafeLength(
		1, // driver resistance
		1, // wire resistance per unit length
		1, // injected current per unit length
		0, // downstream current
		5, // noise slack at the far end
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("l_max = %.4f\n", l)
	// Output: l_max = 2.3166
}
