package core

import (
	"buffopt/internal/buffers"
)

// This file implements the Li–Shi fast multi-type branch merge
// (PAPERS.md, arXiv:0710.4691): the one super-linear step of the classic
// dynamic program — the O(L1·L2) cross product at every branch node — is
// replaced by an O(L1+L2) two-pointer walk over the branches' Pareto
// frontiers, cutting the whole DP from O(b²n²) to O(bn²) for a b-type
// library. Everything else (sink seeding, buffer insertion, pruning, wire
// charging) is byte-for-byte the code VG runs; the engine changes how
// merge candidates are enumerated, never their arithmetic (mergedCand is
// shared) and never which values survive pruning.
//
// Why the walk loses nothing, exactly:
//
// Each input list arrives grouped by parity (and, count-indexed, cost),
// with strictly ascending load inside every group — pruneVG's output
// invariant, which the parent-wire charge preserves (it adds the same
// constant to every load). Slack need not be monotone by the time the
// list reaches its parent (the wire charge subtracts R·load, more from
// larger loads), so the group's 2-D Pareto frontier is recovered first: a
// prefix-max scan keeps the indices whose slack strictly exceeds every
// earlier slack in the group. A skipped candidate d is dominated by an
// earlier kept candidate f with load(f) < load(d) — strictly, since
// in-group loads are distinct — and q(f) ≥ q(d). Any merge pair (d, b)
// is then beaten by (f, b): same minimum-slack bound or better, strictly
// smaller combined load. So no pair involving a skipped candidate can
// survive the pruneVG that immediately follows the merge, or tie a
// survivor (a strict-load dominator disqualifies a value from the
// frontier outright). Dropping them changes nothing.
//
// Across two frontiers — both strictly ascending in load and in slack —
// the walk starts at the head of each and repeatedly emits the current
// pair, then advances the pointer whose candidate has the smaller slack
// (both on a tie). Combined load strictly increases along the path, and
// any pair (i, j) off the path is again strictly beaten: the path visits
// every index of both lists, so it holds i with some j* < j (or j with
// i* < i); advancing past (i, j*) means qa(i) ≥ qb(j*) ≥ … so the
// emitted pair has the same min-slack as (i, j) at strictly smaller
// load. The emitted pairs therefore contain every pair value that can
// survive — or tie a survivor of — the subsequent prune, and pruneVG's
// value-total-order tiebreaks pick the same winner from either
// enumeration. The buffer-insertion step sees the merged list before
// pruning, but with every buffer's R > 0 (Library.Validate enforces
// this) a strictly load-dominated pair also loses strictly after the
// b.Delay(load) charge, so the per-type maxima match too; exact-slack
// ties among path pairs are settled by insertBuffers' value-canonical
// acceptance rule rather than scan order.
//
// The argument is about the delay DP's 2-D (load, slack) dominance. Two
// configurations step outside it and fall back to the classic merge,
// node by node, via vgOptions.fastMergeOK:
//
//   - noise mode: insertBuffers consults the pre-prune merged list, and a
//     2-D-dominated pair (larger load, smaller slack) can still be the
//     only pair whose noise slack admits some buffer type — the
//     Section IV-C observation that motivates safe pruning.
//   - safe pruning: the frontier is 4-D; a 2-D walk would discard
//     candidates safe pruning promises to keep.
//
// Both fall back inside computeNode, so every engine name is exact in
// every configuration; "lishi" simply stops being faster off its home
// turf. The enginetest differential suite is the gate on all of this.

// resolveEngine maps the public engine name to the concrete engine a run
// uses. EngineAuto chooses Li–Shi whenever the configuration can use the
// fast merge and the library has more than one type — with a single type
// the cross product is already the b = 1 case and the walk's bookkeeping
// buys nothing.
func resolveEngine(opts vgOptions, lib *buffers.Library) string {
	switch opts.engine {
	case EngineLiShi:
		return EngineLiShi
	case EngineAuto:
		if !opts.noise && !opts.safePruning && len(lib.Buffers) > 1 {
			return EngineLiShi
		}
	}
	return EngineVG
}

// candGroup is one (parity[, cost]) run of a canonically ordered
// candidate list, with the indices of its 2-D Pareto frontier in load
// order (load and slack both strictly increasing along frontier).
type candGroup struct {
	pol      uint8
	cost     int
	frontier []int
}

// lishiGroups splits a pruned (and possibly wire-charged) candidate list
// into its (parity[, cost]) groups and computes each group's Pareto
// frontier by a prefix-max slack scan. idx is scratch backing for the
// frontier slices, grown as needed and returned for reuse.
func lishiGroups(list []vgCand, opts vgOptions, idx []int) ([]candGroup, []int) {
	var groups []candGroup
	for i := 0; i < len(list); {
		j := i + 1
		for j < len(list) && list[j].pol == list[i].pol &&
			(!opts.countIndexed || list[j].cost == list[i].cost) {
			j++
		}
		start := len(idx)
		bestQ := list[i].q
		idx = append(idx, i)
		for k := i + 1; k < j; k++ {
			if list[k].q > bestQ {
				bestQ = list[k].q
				idx = append(idx, k)
			}
		}
		groups = append(groups, candGroup{
			pol:      list[i].pol,
			cost:     list[i].cost,
			frontier: idx[start:len(idx):len(idx)],
		})
		i = j
	}
	return groups, idx
}

// lishiMerge combines two sibling candidate lists by walking Pareto
// frontiers pairwise instead of forming the full cross product. Same
// contract as mergeVG: parity-compatible pairs only, count-capped pairs
// skipped, output from the arena (caller releases on error), budget
// consulted as the output grows.
func lishiMerge(left, right []vgCand, opts vgOptions) ([]vgCand, error) {
	out := opts.arena.get(len(left) + len(right))
	lg, lidx := lishiGroups(left, opts, nil)
	rg, _ := lishiGroups(right, opts, lidx[len(lidx):])
	tick := 0
	for _, ga := range lg {
		for _, gb := range rg {
			if ga.pol != gb.pol {
				continue
			}
			if opts.countIndexed && opts.maxBuffers > 0 && ga.cost+gb.cost > opts.maxBuffers {
				continue
			}
			i, j := 0, 0
			for i < len(ga.frontier) && j < len(gb.frontier) {
				if tick++; tick >= 4096 {
					tick = 0
					if err := opts.budget.CheckCandidates(len(out)); err != nil {
						return out, err
					}
				}
				a, b := left[ga.frontier[i]], right[gb.frontier[j]]
				out = append(out, mergedCand(a, b))
				// Advance past the branch that bounds this pair's slack:
				// its later candidates can only raise the bound the other
				// branch's current candidate already meets.
				switch {
				case a.q < b.q:
					i++
				case a.q > b.q:
					j++
				default:
					i++
					j++
				}
			}
		}
	}
	if err := opts.budget.CheckCandidates(len(out)); err != nil {
		return out, err
	}
	if opts.stats != nil {
		opts.stats.merged += int64(len(out))
		opts.stats.generated += int64(len(out))
	}
	return out, nil
}
