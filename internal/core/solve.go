package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/faultinject"
	"buffopt/internal/guard"
	"buffopt/internal/noise"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
)

// Tier identifies which rung of the degradation ladder produced a Solve
// result. Lower values are stronger guarantees.
type Tier int

const (
	// TierExact is the paper's BuffOpt: minimum buffer weight subject to
	// noise and timing, exact (Theorem 5 / Section IV-C caveats apply per
	// Options.SafePruning).
	TierExact Tier = iota
	// TierCappedDP is the count-capped dynamic program: BuffOpt(k) with a
	// small fixed buffer bound, safe pruning off, and a tightened
	// candidate-list cap. Still noise-aware, no longer weight-minimal.
	TierCappedDP
	// TierGreedy is the iterative one-buffer-at-a-time heuristic in noise
	// mode. Polynomial per round; no optimality guarantee.
	TierGreedy
	// TierNoiseRepair runs Algorithm 2 alone: minimum buffers for noise
	// only, ignoring timing. The result is noise-clean if the net is
	// fixable at all, but slack is whatever falls out.
	TierNoiseRepair
	// TierUnbuffered is the last resort: no buffers inserted, just the
	// timing analysis of the bare tree. Always available in O(n).
	TierUnbuffered
)

func (t Tier) String() string {
	switch t {
	case TierExact:
		return "exact"
	case TierCappedDP:
		return "capped-dp"
	case TierGreedy:
		return "greedy"
	case TierNoiseRepair:
		return "noise-repair"
	case TierUnbuffered:
		return "unbuffered"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// MarshalJSON encodes the tier as its String() name, so JSON reports and
// metric snapshots use the same vocabulary as the logs.
func (t Tier) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON decodes a tier name produced by MarshalJSON.
func (t *Tier) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("core: tier must be a JSON string, got %s", data)
	}
	parsed, err := ParseTier(string(data[1 : len(data)-1]))
	if err != nil {
		return err
	}
	*t = parsed
	return nil
}

// ParseTier is the inverse of Tier.String for the named tiers.
func ParseTier(s string) (Tier, error) {
	for t := TierExact; t <= TierUnbuffered; t++ {
		if t.String() == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("core: unknown tier %q", s)
}

// TierError records why one rung of the degradation ladder failed, with
// enough context to act on: how long the tier ran before giving up and the
// budget high-water marks at that moment (how long the candidate lists
// grew, how large the tree was). "exact: candidate list grew to 5211 (cap
// 4096) after 1.2s, peak 5211 candidates" tells the operator whether to
// raise -max-cands or the timeout; the bare error did not.
type TierError struct {
	// Tier is the rung that failed.
	Tier Tier `json:"tier"`
	// Elapsed is how long the tier ran before failing.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Usage holds the budget's high-water marks when the tier failed.
	Usage guard.Usage `json:"usage"`
	// Err is the underlying failure, classified by the guard taxonomy.
	Err error `json:"-"`
}

func (e *TierError) Error() string {
	return fmt.Sprintf("%s: %v (after %v; %s)", e.Tier, e.Err, e.Elapsed.Round(time.Microsecond), e.Usage)
}

// Unwrap exposes the underlying error so errors.Is/As dispatch on the
// guard taxonomy works through TierError.
func (e *TierError) Unwrap() error { return e.Err }

// SolveResult is a Result annotated with how it was obtained.
type SolveResult struct {
	*Result
	// Tier is the rung of the ladder that produced Result.
	Tier Tier
	// Degraded reports that at least one stronger tier was attempted and
	// failed (equivalently, Tier != TierExact).
	Degraded bool
	// TierErrors records, in ladder order, why each stronger tier failed —
	// including elapsed time and budget usage. Empty when Tier ==
	// TierExact.
	TierErrors []*TierError
	// Cached reports that this result was served from Options.Cache
	// without running the ladder. Cached results are bit-identical to
	// what a fresh solve would have produced (the solver is
	// deterministic); the flag exists for telemetry and API responses,
	// not correctness.
	Cached bool
	// Coalesced reports that this request missed the cache but shared a
	// concurrent identical request's solve instead of running its own.
	Coalesced bool
}

// Degradation ladder deadline shares: each tier may spend at most this
// fraction of the time remaining when it starts, so a stalled exact solve
// cannot starve the fallbacks. The last tier (unbuffered analysis) gets
// whatever is left; it is O(n) and effectively instant.
var tierShares = map[Tier]float64{
	TierExact:       0.55,
	TierCappedDP:    0.45,
	TierGreedy:      0.50,
	TierNoiseRepair: 0.50,
}

// Knobs for the degraded tiers. The capped DP keeps the noise constraints
// but bounds both the buffer count and the candidate lists so its runtime
// is predictable; greedy is bounded by its insertion cap.
const (
	cappedDPBuffers    = 8
	cappedDPCandidates = 4096
	greedyMaxBuffers   = 16
)

// Solve is the robust front door to the solver stack: it tries the exact
// optimizer under the given budget and, when the budget trips (deadline or
// resource cap), degrades tier by tier — count-capped DP, then the greedy
// heuristic, then Algorithm 2 noise repair, then a bare analysis — so a
// caller with a deadline always gets an answer instead of a hang.
//
// ctx carries cancellation and the overall deadline. opts.Budget, if set,
// contributes resource caps (candidate list size, tree size); its own
// context is ignored in favor of ctx. Each tier runs under a share of the
// remaining deadline and inside a panic-isolation wrapper, so a crash in
// one tier degrades instead of taking the process down.
//
// Errors: invalid input aborts immediately (errors.Is guard.ErrInvalidInput);
// cancellation of ctx itself aborts (errors.Is guard.ErrCanceled); a
// noise-infeasible net — proven by an exact tier, not guessed by a
// heuristic — aborts with ErrNoiseUnfixable. Budget trips never abort:
// they push the solve down the ladder and are reported in TierErrors.
func Solve(ctx context.Context, t *rctree.Tree, lib *buffers.Library, p noise.Params, opts Options) (*SolveResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Validate once, up front: degrading cannot repair bad input, and the
	// ladder should not burn deadline discovering the same error five
	// times.
	if err := t.Validate(); err != nil {
		return nil, invalid(err)
	}
	if err := lib.Validate(); err != nil {
		return nil, invalid(err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Sizing.Validate(); err != nil {
		return nil, err
	}
	engine, err := ParseEngine(opts.Engine)
	if err != nil {
		return nil, err
	}
	opts.Engine = engine

	if opts.Cache == nil {
		return solveLadder(ctx, t, lib, p, opts)
	}
	// Cached mode: the ladder runs as the fill of a coalescing cache
	// lookup. The key covers everything that steers the output —
	// canonical problem hash, output-affecting options, resource caps
	// (budget classes cache separately) — and excludes deadlines and
	// Workers, which never change the bytes of a stored result: only
	// deterministically-degraded or exact results are stored (see
	// cacheable). Concurrent identical requests share one ladder run.
	key := SolveCacheKey(Problem{Tree: t, Library: lib, Params: p, Objective: MinBuffersNoise}, opts)
	res, out, err := opts.Cache.Do(ctx, key, func() (*SolveResult, bool, error) {
		r, err := solveLadder(ctx, t, lib, p, opts)
		if err != nil {
			return nil, false, err
		}
		return r, Cacheable(r), nil
	})
	if err != nil {
		return nil, err
	}
	res.Cached = out.Hit
	res.Coalesced = out.Coalesced
	return res, nil
}

// solveLadder is Solve's degradation ladder, separated so the cache can
// run it as a fill function. Inputs are pre-validated.
func solveLadder(ctx context.Context, t *rctree.Tree, lib *buffers.Library, p noise.Params, opts Options) (*SolveResult, error) {
	type tierFn func(b *guard.Budget) (*Result, error)

	exactOpts := opts
	cappedOpts := opts
	cappedOpts.SafePruning = false // the 4D dominance scan is the cost center
	cappedOpts.Sizing = nil

	tiers := []struct {
		tier     Tier
		maxCands int // extra candidate cap on top of opts.Budget's
		run      tierFn
	}{
		{TierExact, 0, func(b *guard.Budget) (*Result, error) {
			o := exactOpts
			o.Budget = b
			return BuffOptMinBuffers(t, lib, p, o)
		}},
		{TierCappedDP, cappedDPCandidates, func(b *guard.Budget) (*Result, error) {
			o := cappedOpts
			o.Budget = b
			return BuffOptK(t, lib, p, cappedDPBuffers, o)
		}},
		{TierGreedy, 0, func(b *guard.Budget) (*Result, error) {
			return GreedyIterative(t, lib, GreedyOptions{
				Noise:      true,
				Params:     p,
				MaxBuffers: greedyMaxBuffers,
				Budget:     b,
			})
		}},
		{TierNoiseRepair, 0, func(b *guard.Budget) (*Result, error) {
			work := t.Clone()
			work.Binarize()
			sol, err := Algorithm2Budget(work, lib, p, b)
			if err != nil {
				return nil, err
			}
			an := elmore.Analyze(sol.Tree, sol.Buffers)
			return &Result{Solution: sol, Slack: an.WorstSlack, Cost: costOf(sol.Buffers)}, nil
		}},
		{TierUnbuffered, 0, func(b *guard.Budget) (*Result, error) {
			// Deliberately ignores the budget: once every stronger tier has
			// spent the deadline, the caller still deserves the O(n) bare
			// analysis rather than nothing. Genuine cancellation (ctx
			// canceled, not merely past its deadline) never reaches here —
			// the ladder aborts on it above.
			an := elmore.Analyze(t, nil)
			return &Result{
				Solution: &Solution{Tree: t.Clone(), Buffers: map[rctree.NodeID]buffers.Buffer{}},
				Slack:    an.WorstSlack,
				Cost:     0,
			}, nil
		}},
	}

	solveCtx, solveSpan := obs.Span(ctx, "solve")
	defer solveSpan.End()

	// Injected slow solve (chaos): burn the configured delay before the
	// ladder starts, respecting the caller's deadline — the stuck-worker
	// scenario that admission control and per-request deadlines absorb.
	if faultinject.Take(ctx, faultinject.FaultSlow) {
		if d := faultinject.PlanFrom(ctx).Delay(); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
			}
		}
	}

	var tierErrs []*TierError
	for _, step := range tiers {
		// The tier span's context feeds the tier budget, so DP spans nest
		// under the tier and an injected mid-flight cancel (guard.Check)
		// annotates the tier that absorbed it.
		tctx, span := obs.Span(solveCtx, "solve.tier."+step.tier.String())
		b, cancel := tierBudget(tctx, opts.Budget, tierShares[step.tier], step.maxCands)
		start := time.Now()
		var res *Result
		err := guard.Safe("core.Solve/"+step.tier.String(), func() error {
			var e error
			res, e = step.run(b)
			return e
		})
		span.Fail(err) // record the tier's duration (and trace the error); the wrap is discarded — TierError carries more
		cancel()
		// Injected result corruption (chaos): the Section IV-C scenario of
		// a malformed candidate list surviving the DP, surfaced as a
		// poisoned slack so the post-condition gate below must catch it.
		if err == nil && res != nil && faultinject.Take(ctx, faultinject.FaultMalformed) {
			res.Slack = math.NaN()
		}
		// Post-condition gate: no tier may hand the caller a structurally
		// broken or numerically poisoned result — NaN slack would flow
		// silently into reports and routing decisions. A violation is a
		// bug in the tier (class "internal"), and the ladder treats it
		// like any other tier failure: the next tier recomputes from
		// scratch.
		if err == nil {
			err = validateResult(res)
		}
		if err == nil {
			if step.tier != TierExact {
				obs.Inc("solve.degraded")
				solveSpan.SetAttr("degraded", "true")
			}
			obs.Inc("solve.answered." + step.tier.String())
			solveSpan.SetAttr("tier", step.tier.String())
			return &SolveResult{
				Result:     res,
				Tier:       step.tier,
				Degraded:   step.tier != TierExact,
				TierErrors: tierErrs,
			}, nil
		}
		tierErrs = append(tierErrs, &TierError{
			Tier:    step.tier,
			Elapsed: time.Since(start),
			Usage:   b.Usage(),
			Err:     err,
		})
		// Degradation causes keyed by the guard error taxonomy, so tight
		// budgets ("budget"), deadlines ("canceled"), and crashes ("panic")
		// are distinguishable in the snapshot.
		obs.Inc("solve.degrade." + guard.Class(err))
		// Non-degradable failures: bad input, the caller's own context
		// going away, or an exact tier proving the net unfixable.
		if errors.Is(err, guard.ErrInvalidInput) {
			return nil, err
		}
		if cerr := ctx.Err(); cerr != nil && !errors.Is(cerr, context.DeadlineExceeded) {
			return nil, fmt.Errorf("%w: %w", guard.ErrCanceled, cerr)
		}
		if step.tier == TierExact && errors.Is(err, ErrNoiseUnfixable) {
			return nil, err
		}
	}
	joined := make([]error, len(tierErrs))
	for i, te := range tierErrs {
		joined[i] = te
	}
	return nil, fmt.Errorf("core: every degradation tier failed: %w", errors.Join(joined...))
}

// validateResult enforces the tiers' shared post-conditions: a complete
// solution (tree and buffer assignment present) with finite slack and
// non-negative cost. Violations wrap guard.ErrInternal.
func validateResult(r *Result) error {
	switch {
	case r == nil || r.Solution == nil || r.Solution.Tree == nil || r.Solution.Buffers == nil:
		return fmt.Errorf("core: tier returned an incomplete result: %w", guard.ErrInternal)
	case math.IsNaN(r.Slack) || math.IsInf(r.Slack, 0):
		return fmt.Errorf("core: tier returned non-finite slack %g: %w", r.Slack, guard.ErrInternal)
	case r.Cost < 0:
		return fmt.Errorf("core: tier returned negative cost %d: %w", r.Cost, guard.ErrInternal)
	}
	return nil
}

// tierBudget builds one tier's budget: the caps from the caller's budget
// (optionally tightened by maxCands), under a context that expires after
// share of the time remaining on ctx. Share 0 means "no sub-deadline".
func tierBudget(ctx context.Context, caps *guard.Budget, share float64, maxCands int) (*guard.Budget, context.CancelFunc) {
	cancel := func() {}
	if dl, ok := ctx.Deadline(); ok && share > 0 {
		if remain := time.Until(dl); remain > 0 {
			ctx, cancel = context.WithTimeout(ctx, time.Duration(float64(remain)*share))
		}
	}
	b := guard.New(ctx)
	if caps != nil {
		b.MaxCandidates = caps.MaxCandidates
		b.MaxTreeNodes = caps.MaxTreeNodes
		b.MaxSimSteps = caps.MaxSimSteps
	}
	if maxCands > 0 && (b.MaxCandidates == 0 || b.MaxCandidates > maxCands) {
		b.MaxCandidates = maxCands
	}
	return b, cancel
}
