package core

import (
	"math/rand"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
	"buffopt/internal/testutil"
)

func sizingOpts(widths ...float64) Options {
	return Options{Sizing: &Sizing{Widths: widths}}
}

// TestSizingTrivialWidthMatchesNoSizing: widths {1} must be bit-identical
// to no sizing at all.
func TestSizingTrivialWidthMatchesNoSizing(t *testing.T) {
	tr := noisySegmentedY(t, 3)
	plain, err := DelayOpt(tr, lib3(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	trivial, err := DelayOpt(tr, lib3(), sizingOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if !approx(plain.Slack, trivial.Slack) || plain.NumBuffers() != trivial.NumBuffers() {
		t.Errorf("widths {1} changed the result: slack %v vs %v, buffers %d vs %d",
			plain.Slack, trivial.Slack, plain.NumBuffers(), trivial.NumBuffers())
	}
	if len(trivial.Widths) != 0 {
		t.Errorf("trivial sizing recorded widths: %v", trivial.Widths)
	}
}

// TestSizingNeverHurts: adding width choices can only improve (or match)
// the achievable slack — the search space is a superset.
func TestSizingNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 60; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 6, MaxSinks: 4, BufferSites: true,
		})
		lib := testutil.RandomLibrary(rng, 8)
		plain, err := DelayOpt(tr, lib, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sized, err := DelayOpt(tr, lib, sizingOpts(1, 2, 4))
		if err != nil {
			t.Fatal(err)
		}
		if sized.Slack < plain.Slack-1e-9 {
			t.Fatalf("trial %d: sizing reduced slack %v → %v", trial, plain.Slack, sized.Slack)
		}
	}
}

// TestSizingSlackMatchesAnalyzer is the critical consistency invariant:
// the DP's slack must equal the independent Elmore analysis of the
// returned tree with the widths already applied to its parasitics.
func TestSizingSlackMatchesAnalyzer(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	p := noise.Params{CouplingRatio: 0.7, Slope: 2}
	widened := 0
	for trial := 0; trial < 150; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 7, MaxSinks: 4, MarginLo: 4, MarginHi: 12, BufferSites: true,
		})
		lib := testutil.RandomLibrary(rng, 8)
		for _, run := range []func() (*Result, error){
			func() (*Result, error) { return DelayOpt(tr, lib, sizingOpts(1, 2, 3)) },
			func() (*Result, error) { return BuffOpt(tr, lib, p, sizingOpts(1, 2, 3)) },
			func() (*Result, error) { return BuffOptMinBuffers(tr, lib, p, sizingOpts(1, 2, 3)) },
		} {
			res, err := run()
			if err != nil {
				continue
			}
			an := elmore.Analyze(res.Tree, res.Buffers)
			if !approx(res.Slack, an.WorstSlack) {
				t.Fatalf("trial %d: DP slack %v, analyzer %v (widths %v)",
					trial, res.Slack, an.WorstSlack, res.Widths)
			}
			if len(res.Widths) > 0 {
				widened++
			}
		}
	}
	if widened == 0 {
		t.Fatalf("sizing never chose a non-minimum width across all trials")
	}
}

// TestSizingNoiseConsistency: BuffOpt with sizing returns trees whose
// frozen coupling keeps the independent noise analyzer in agreement —
// clean, with the sidewall current unchanged by widening.
func TestSizingNoiseConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	for trial := 0; trial < 100; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 6, MaxSinks: 4, MarginLo: 2, MarginHi: 8,
			WireScale: 1.5, BufferSites: true,
		})
		lib := testutil.RandomLibrary(rng, 4)
		res, err := BuffOpt(tr, lib, p, sizingOpts(1, 2, 4))
		if err != nil {
			continue
		}
		if r := noise.Analyze(res.Tree, res.Buffers, p); !r.Clean() {
			t.Fatalf("trial %d: sized solution not clean: %+v (widths %v)",
				trial, r.Violations, res.Widths)
		}
		// Frozen coupling: a widened wire's current equals the original.
		for v, wd := range res.Widths {
			got := p.WireCurrent(res.Tree.Node(v).Wire)
			want := p.WireCurrent(tr.Node(v).Wire)
			if !approx(got, want) {
				t.Fatalf("trial %d: width %g changed coupling current %g → %g",
					trial, wd, want, got)
			}
		}
	}
}

// TestSizingReducesBufferNeed: on a resistive noisy line, allowing wide
// wires lets BuffOpt meet the noise constraint with fewer (or equal)
// buffers, since widening divides the wire resistance.
func TestSizingReducesBufferNeed(t *testing.T) {
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B", Cin: 0.05, R: 1, T: 0.3, NoiseMargin: 5},
	}}
	build := func() *rctree.Tree {
		tr := rctree.New("line", 1.5, 0)
		if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 9, C: 9, Length: 9}, "s", 0.1, 1e6, 5); err != nil {
			t.Fatal(err)
		}
		if _, err := segment.ByCount(tr, 9); err != nil {
			t.Fatal(err)
		}
		return tr
	}
	plain, err := BuffOptMinBuffers(build(), lib, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sized, err := BuffOptMinBuffers(build(), lib, p, sizingOpts(1, 3, 6))
	if err != nil {
		t.Fatal(err)
	}
	if sized.Cost > plain.Cost {
		t.Errorf("sizing increased buffer cost %d → %d", plain.Cost, sized.Cost)
	}
	if sized.Cost == plain.Cost && len(sized.Widths) == 0 {
		t.Logf("note: sizing chose minimum width everywhere (plain cost %d)", plain.Cost)
	}
	if !noise.Analyze(sized.Tree, sized.Buffers, p).Clean() {
		t.Errorf("sized solution not clean")
	}
}
