package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"buffopt/internal/buffers"
	"buffopt/internal/guard"
	"buffopt/internal/noise"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
)

// alg2Stats accumulates one Algorithm2Budget run's counters locally (see
// vgStats for the pattern): candidate placements and l_max evaluations are
// search-space measures; buffers inserted is the chosen solution's size.
type alg2Stats struct {
	lmax       int64 // MaxSafeLength evaluations
	placements int64 // tentative buffer placements explored across candidates
	merged     int64 // candidates emitted by branch merges
}

func (s *alg2Stats) flush(inserted int) {
	obs.Add("alg2.lmax.evals", s.lmax)
	obs.Add("alg2.placements.explored", s.placements)
	obs.Add("alg2.candidates.merged", s.merged)
	obs.Add("alg2.buffers.inserted", int64(inserted))
}

// nCand is an Algorithm 2 candidate at some node v: the downstream
// coupling current I(v), the noise slack NS(v), the number of buffers the
// partial solution uses, and the persistent placement history.
type nCand struct {
	down float64
	ns   float64
	nbuf int
	sol  *placement
}

// Algorithm2 solves Problem 1 for an arbitrary (multi-sink) tree: insert
// the minimum number of buffers such that no noise constraint is violated
// (Section III-C of the paper, proved optimal in Theorem 4, O(n²) time).
//
// The algorithm propagates candidate (I, NS) pairs bottom-up. Along wires
// buffers are inserted at their Theorem 1 maximal distances, exactly as in
// Algorithm1. At a branch point the left and right candidate lists are
// merged with Van Ginneken's linear technique; when a merged pair would
// violate noise — each branch is individually clean but the combined
// current overwhelms the combined slack — candidates with a buffer
// inserted immediately below the branch point on the left, on the right,
// and (an engineering addition, see below) on both branches are generated
// and all propagated upward, since the correct choice depends on the
// still-unknown upstream driver (the scenario discussed at the start of
// Section III-C).
//
// Deviations from the paper's pseudocode, both conservative:
//
//   - Buffered branch alternatives are generated at every merge, not only
//     for violating pairs, and are paired with the fewest-buffer candidate
//     of the decoupled branch (its electrical state dies at the buffer, so
//     only its buffer count matters). This is a superset of the paper's
//     candidates at the same O(|L|+|R|) merge cost.
//   - Pruning uses three-dimensional dominance (current, noise slack, and
//     buffer count) rather than the paper's two-dimensional rule, so a
//     candidate that is electrically worse but cheaper in buffers is never
//     discarded. This can only improve the buffer-count optimality the
//     paper proves.
//
// As with Algorithm1, a multi-buffer library reduces to its smallest-
// resistance buffer. The tree must be binary (call Tree.Binarize first).
func Algorithm2(t *rctree.Tree, lib *buffers.Library, p noise.Params) (*Solution, error) {
	return Algorithm2Budget(t, lib, p, nil)
}

// Algorithm2Budget is Algorithm2 under a resource budget: the bottom-up
// walk checks the budget at every node, inside every wire propagation,
// and caps the candidate lists, returning an error wrapping
// guard.ErrCanceled or guard.ErrBudgetExceeded when it trips. A nil
// budget imposes no limits.
func Algorithm2Budget(t *rctree.Tree, lib *buffers.Library, p noise.Params, b *guard.Budget) (*Solution, error) {
	if err := t.Validate(); err != nil {
		return nil, invalid(err)
	}
	if !t.IsBinary() {
		return nil, invalid(fmt.Errorf("core: Algorithm2 requires a binary tree; call Binarize first"))
	}
	if err := lib.Validate(); err != nil {
		return nil, invalid(err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := b.CheckTreeNodes(t.Len()); err != nil {
		return nil, err
	}
	buf, err := lib.MinResistance()
	if err != nil {
		return nil, err
	}

	st := &alg2Stats{}
	inserted := 0
	defer func() { st.flush(inserted) }()

	cands := make([][]nCand, t.Len())
	for _, v := range t.Postorder() {
		if err := b.Check(); err != nil {
			return nil, err
		}
		node := t.Node(v)
		var list []nCand
		switch {
		case node.Kind == rctree.Sink:
			list = []nCand{{down: 0, ns: node.NoiseMargin}}
		case len(node.Children) == 1:
			c := node.Children[0]
			up, err := propagateAll(cands[c], c, t.Node(c).Wire, buf, p, b, st)
			if err != nil {
				return nil, err
			}
			list = up
		case len(node.Children) == 2:
			cl, cr := node.Children[0], node.Children[1]
			left, err := propagateAll(cands[cl], cl, t.Node(cl).Wire, buf, p, b, st)
			if err != nil {
				return nil, err
			}
			right, err := propagateAll(cands[cr], cr, t.Node(cr).Wire, buf, p, b, st)
			if err != nil {
				return nil, err
			}
			list = mergeBranches(left, right, cl, cr, buf, st)
		default:
			return nil, fmt.Errorf("core: internal node %d has no children", v)
		}
		list = pruneNoise(list)
		if len(list) == 0 {
			return nil, fmt.Errorf("core: no viable candidates at node %d: %w", v, ErrNoiseUnfixable)
		}
		if err := b.CheckCandidates(len(list)); err != nil {
			return nil, err
		}
		cands[v] = list
	}

	// Select the cheapest root candidate, adding a buffer right after the
	// source when the driver alone would violate the remaining slack.
	best := -1
	bestCost := math.MaxInt
	bestNeedsSourceBuffer := false
	root := cands[t.Root()]
	for i, c := range root {
		cost := c.nbuf
		needs := t.DriverResistance*c.down > c.ns
		if needs {
			if buf.R*c.down > c.ns {
				continue // not even a source buffer can save this candidate
			}
			cost++
		}
		if cost < bestCost || (cost == bestCost && needs == false && bestNeedsSourceBuffer) {
			best, bestCost, bestNeedsSourceBuffer = i, cost, needs
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("core: no noise-feasible candidate at the source: %w", ErrNoiseUnfixable)
	}

	work := t.Clone()
	assign, err := applyPlacements(work, root[best].sol)
	if err != nil {
		return nil, err
	}
	if bestNeedsSourceBuffer {
		at, err := work.InsertBelow(work.Root())
		if err != nil {
			return nil, err
		}
		assign[at] = buf
	}
	inserted = len(assign)
	return &Solution{Tree: work, Buffers: assign}, nil
}

// propagateAll pushes every candidate through a wire, inserting maximal-
// distance buffers as needed. Candidates that cannot survive the wire are
// dropped; if none survive, the error explains why.
func propagateAll(list []nCand, child rctree.NodeID, w rctree.Wire, buf buffers.Buffer, p noise.Params, b *guard.Budget, st *alg2Stats) ([]nCand, error) {
	out := make([]nCand, 0, len(list))
	var lastErr error
	for _, c := range list {
		up, err := propagateWire(c, child, w, buf, p, b, st)
		if err != nil {
			if errors.Is(err, guard.ErrCanceled) || errors.Is(err, guard.ErrBudgetExceeded) {
				return nil, err
			}
			lastErr = err
			continue
		}
		out = append(out, up)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: wire above node %d kills all candidates: %w", child, lastErr)
	}
	return out, nil
}

// propagateWire advances one candidate from the bottom to the top of a
// wire, inserting buffers at Theorem 1 maximal distances (Steps 2–4 of
// Algorithm 1, reused per candidate here).
func propagateWire(c nCand, child rctree.NodeID, w rctree.Wire, buf buffers.Buffer, p noise.Params, b *guard.Budget, st *alg2Stats) (nCand, error) {
	iwTotal := p.WireCurrent(w)
	length := w.Length
	pos := 0.0
	pacer := b.Pacer(64)
	for {
		// A long wire places one buffer per iteration; the count is only
		// bounded by length over the Theorem 1 spacing, so the loop is
		// budget-gated.
		if err := pacer.Tick(); err != nil {
			return c, err
		}
		remFrac := 1.0
		if length > 0 {
			remFrac = (length - pos) / length
		}
		remR := w.R * remFrac
		remI := iwTotal * remFrac
		if WireTopNoise(buf.R, remR, remI, c.down) <= c.ns {
			c.ns -= remR * (c.down + remI/2)
			c.down += remI
			return c, nil
		}
		if length <= 0 {
			return c, fmt.Errorf("core: zero-length wire above node %d violates noise: %w", child, ErrNoiseUnfixable)
		}
		r := w.R / length
		iu := iwTotal / length
		st.lmax++
		l, err := MaxSafeLength(buf.R, r, iu, c.down, c.ns)
		if err != nil {
			return c, err
		}
		l *= placementBackoff
		if l <= 0 && c.down == 0 {
			return c, fmt.Errorf("core: buffer margin %g V cannot cover wire above node %d: %w",
				buf.NoiseMargin, child, ErrNoiseUnfixable)
		}
		if l >= length-pos {
			// Floating-point guard: the top test said infeasible but the
			// quadratic disagrees by epsilon; accept the wire as-is.
			c.ns -= remR * (c.down + remI/2)
			c.down += remI
			return c, nil
		}
		pos += l
		c.sol = &placement{child: child, dist: pos, buf: buf, prev: [2]*placement{c.sol, nil}}
		c.nbuf++
		st.placements++
		c.down = 0
		c.ns = buf.NoiseMargin
	}
}

// mergeBranches combines the candidate lists of two sibling branches that
// have already been propagated to their common parent. All pairwise
// unbuffered merges are considered (the pruned frontiers are small, so the
// cross product is cheap and avoids the monotonicity assumption the linear
// merge needs), plus the decoupling alternatives with a buffer immediately
// below the branch point on the left, the right, or both branches.
//
// Every emitted candidate satisfies the invariant R_b·I ≤ NS, i.e. a
// buffer placed directly above it would be noise-clean; candidates that
// cannot satisfy it are useless upstream under the footnote-8 assumption
// that the driver is no stronger than the strongest buffer.
func mergeBranches(left, right []nCand, leftChild, rightChild rctree.NodeID, buf buffers.Buffer, st *alg2Stats) []nCand {
	left = pruneNoise(left)
	right = pruneNoise(right)

	var out []nCand
	emit := func(c nCand) {
		if buf.R*c.down <= c.ns {
			out = append(out, c)
		}
	}

	for _, a := range left {
		for _, b := range right {
			emit(nCand{
				down: a.down + b.down,
				ns:   math.Min(a.ns, b.ns),
				nbuf: a.nbuf + b.nbuf,
				sol:  mergeSolutions(a.sol, b.sol),
			})
		}
	}

	// Decoupling alternatives: a buffer immediately below the parent on
	// one branch kills that branch's electrical state, so only its
	// cheapest (fewest-buffer) candidate matters. The buffer itself must
	// be clean driving the decoupled branch: R_b·I ≤ NS, which every
	// surviving candidate satisfies by the invariant above.
	minLeft := cheapest(left)
	minRight := cheapest(right)
	leftBuf := &placement{child: leftChild, atTop: true, buf: buf, prev: [2]*placement{minLeft.sol, nil}}
	rightBuf := &placement{child: rightChild, atTop: true, buf: buf, prev: [2]*placement{minRight.sol, nil}}
	for _, b := range right {
		emit(nCand{
			down: b.down,
			ns:   math.Min(buf.NoiseMargin, b.ns),
			nbuf: minLeft.nbuf + b.nbuf + 1,
			sol:  mergeSolutions(leftBuf, b.sol),
		})
	}
	for _, a := range left {
		emit(nCand{
			down: a.down,
			ns:   math.Min(buf.NoiseMargin, a.ns),
			nbuf: a.nbuf + minRight.nbuf + 1,
			sol:  mergeSolutions(a.sol, rightBuf),
		})
	}
	emit(nCand{
		down: 0,
		ns:   buf.NoiseMargin,
		nbuf: minLeft.nbuf + minRight.nbuf + 2,
		sol:  mergeSolutions(leftBuf, rightBuf),
	})
	st.merged += int64(len(out))
	return out
}

// mergeSolutions joins two placement histories without adding a buffer.
func mergeSolutions(a, b *placement) *placement {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &placement{junction: true, prev: [2]*placement{a, b}}
}

// cheapest returns the candidate with the fewest buffers (ties: smaller
// current).
func cheapest(list []nCand) nCand {
	best := list[0]
	for _, c := range list[1:] {
		if c.nbuf < best.nbuf || (c.nbuf == best.nbuf && c.down < best.down) {
			best = c
		}
	}
	return best
}

// pruneNoise removes dominated candidates: c is dominated when another
// candidate has no more current, no less noise slack, and no more buffers.
// The survivors are returned sorted by ascending current.
func pruneNoise(list []nCand) []nCand {
	if len(list) <= 1 {
		return list
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].down != list[j].down {
			return list[i].down < list[j].down
		}
		if list[i].ns != list[j].ns {
			return list[i].ns > list[j].ns
		}
		return list[i].nbuf < list[j].nbuf
	})
	out := list[:0]
	for _, c := range list {
		dominated := false
		for _, k := range out {
			if k.down <= c.down && k.ns >= c.ns && k.nbuf <= c.nbuf {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, c)
		}
	}
	return out
}
