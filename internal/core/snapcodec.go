package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"buffopt/internal/buffers"
	"buffopt/internal/rctree"
)

// Binary codec for SolveResult, the value format of cache snapshots and
// peer-fill peeks (DESIGN.md §15). Only clean exact results are encoded:
// TierErrors carry arbitrary wrapped error chains that cannot round-trip
// faithfully, and a degraded result is tied to the budget that produced
// it — persisting either would let a restart or a peer hand out a result
// the local solver would not have produced. Exact results are the bulk of
// a warm cache, so the restriction costs little and buys byte-exactness:
// a decoded result re-analyzes (noise.Analyze, elmore.Analyze) to the
// same response bytes the original solve produced.
//
// The cache key is embedded in the encoding and re-checked on decode.
// Keys are content-addressed (Problem.CanonicalHash plus option hashes),
// so a key mismatch means the bytes answer a different problem than the
// slot claims — a stale or transplanted entry — and the decode fails
// rather than poison the cache.

// resultMagic versions the value encoding independently of the snapshot
// envelope.
const resultMagic = "bsr1"

// ErrNotSnapshottable marks results the codec refuses to persist:
// degraded results, results carrying tier errors, and results with no
// solution payload. Callers treat it as "skip this entry", not a fault.
var ErrNotSnapshottable = errors.New("core: result not snapshottable")

// EncodeSolveResult serializes r for storage under the cache key.
func EncodeSolveResult(key string, r *SolveResult) ([]byte, error) {
	if r == nil || r.Result == nil || r.Solution == nil || r.Solution.Tree == nil {
		return nil, fmt.Errorf("%w: missing solution payload", ErrNotSnapshottable)
	}
	if r.Tier != TierExact || r.Degraded || len(r.TierErrors) > 0 {
		return nil, fmt.Errorf("%w: tier %v, degraded=%v, %d tier errors",
			ErrNotSnapshottable, r.Tier, r.Degraded, len(r.TierErrors))
	}
	buf := make([]byte, 0, 256)
	buf = append(buf, resultMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = append(buf, byte(r.Tier))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Slack))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(r.Cost)))

	tree := r.Solution.Tree.AppendBinary(nil)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tree)))
	buf = append(buf, tree...)

	// Map iteration order is random; sort by node ID so identical results
	// encode to identical bytes (snapshots of the same cache state are
	// reproducible).
	bufIDs := sortedIDs(r.Solution.Buffers)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(bufIDs)))
	for _, id := range bufIDs {
		b := r.Solution.Buffers[id]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(id)))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Name)))
		buf = append(buf, b.Name...)
		for _, f := range [...]float64{b.Cin, b.R, b.T, b.NoiseMargin} {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
		inv := byte(0)
		if b.Inverting {
			inv = 1
		}
		buf = append(buf, inv)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(b.Weight)))
	}

	widthIDs := sortedIDs(r.Solution.Widths)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(widthIDs)))
	for _, id := range widthIDs {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(id)))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Solution.Widths[id]))
	}
	return buf, nil
}

// DecodeSolveResult parses data encoded by EncodeSolveResult and verifies
// it against the cache key it is stored under: the embedded key must
// match, the tree must validate, and every buffer/width node ID must name
// a tree node. Any mismatch is an error — a snapshot or peek that fails
// here is dropped whole rather than served. The decoded result carries
// fresh provenance (Cached/Coalesced cleared; the caller sets them).
func DecodeSolveResult(key string, data []byte) (*SolveResult, error) {
	c := rcursor{buf: data}
	if string(c.take(len(resultMagic))) != resultMagic {
		return nil, fmt.Errorf("core: decode result: bad magic")
	}
	gotKey := string(c.field())
	if c.err == nil && gotKey != key {
		return nil, fmt.Errorf("core: decode result: stored under key %q but encodes key %q", key, gotKey)
	}
	tier := Tier(c.byte())
	slack := math.Float64frombits(c.uint64())
	cost := int(int64(c.uint64()))
	treeBytes := c.field()
	if c.err != nil {
		return nil, fmt.Errorf("core: decode result: %w", c.err)
	}
	if tier != TierExact {
		return nil, fmt.Errorf("core: decode result: tier %d, only exact results are persisted", tier)
	}
	tree, err := rctree.DecodeBinary(treeBytes)
	if err != nil {
		return nil, fmt.Errorf("core: decode result: %w", err)
	}

	nbuf := int(c.uint32())
	if c.err == nil && nbuf > len(c.buf)/45 {
		return nil, fmt.Errorf("core: decode result: buffer count %d exceeds input size", nbuf)
	}
	var bufs map[rctree.NodeID]buffers.Buffer
	if nbuf > 0 && c.err == nil {
		bufs = make(map[rctree.NodeID]buffers.Buffer, nbuf)
	}
	for i := 0; i < nbuf && c.err == nil; i++ {
		id := rctree.NodeID(int32(c.uint32()))
		var b buffers.Buffer
		b.Name = string(c.field())
		b.Cin = math.Float64frombits(c.uint64())
		b.R = math.Float64frombits(c.uint64())
		b.T = math.Float64frombits(c.uint64())
		b.NoiseMargin = math.Float64frombits(c.uint64())
		b.Inverting = c.byte() == 1
		b.Weight = int(int64(c.uint64()))
		if c.err != nil {
			break
		}
		if id < 0 || int(id) >= tree.Len() {
			return nil, fmt.Errorf("core: decode result: buffer at node %d, tree has %d nodes", id, tree.Len())
		}
		bufs[id] = b
	}

	nwid := int(c.uint32())
	if c.err == nil && nwid > len(c.buf)/12 {
		return nil, fmt.Errorf("core: decode result: width count %d exceeds input size", nwid)
	}
	var widths map[rctree.NodeID]float64
	if nwid > 0 && c.err == nil {
		widths = make(map[rctree.NodeID]float64, nwid)
	}
	for i := 0; i < nwid && c.err == nil; i++ {
		id := rctree.NodeID(int32(c.uint32()))
		w := math.Float64frombits(c.uint64())
		if c.err != nil {
			break
		}
		if id < 0 || int(id) >= tree.Len() {
			return nil, fmt.Errorf("core: decode result: width at node %d, tree has %d nodes", id, tree.Len())
		}
		widths[id] = w
	}
	if c.err != nil {
		return nil, fmt.Errorf("core: decode result: %w", c.err)
	}
	if len(c.buf) != 0 {
		return nil, fmt.Errorf("core: decode result: %d trailing bytes", len(c.buf))
	}
	return &SolveResult{
		Result: &Result{
			Solution: &Solution{Tree: tree, Buffers: bufs, Widths: widths},
			Slack:    slack,
			Cost:     cost,
		},
		Tier: tier,
	}, nil
}

// sortedIDs returns the map's keys in ascending order.
func sortedIDs[V any](m map[rctree.NodeID]V) []rctree.NodeID {
	ids := make([]rctree.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// rcursor mirrors the rctree decoder: a byte cursor with a sticky error.
type rcursor struct {
	buf []byte
	err error
}

func (c *rcursor) take(n int) []byte {
	if c.err != nil || n < 0 || n > len(c.buf) {
		if c.err == nil {
			c.err = fmt.Errorf("truncated input (want %d bytes, have %d)", n, len(c.buf))
		}
		return nil
	}
	b := c.buf[:n]
	c.buf = c.buf[n:]
	return b
}

func (c *rcursor) byte() byte {
	b := c.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (c *rcursor) uint32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *rcursor) uint64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (c *rcursor) field() []byte {
	n := int(c.uint32())
	if c.err == nil && n > len(c.buf) {
		c.err = fmt.Errorf("field length %d exceeds remaining %d bytes", n, len(c.buf))
		return nil
	}
	return c.take(n)
}
