package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"
	"sync/atomic"

	"buffopt/internal/buffers"
	"buffopt/internal/cache"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
)

// Subtree memoization: the incremental (ECO) re-solve engine's core.
//
// The dynamic program is bottom-up — a node's finished candidate list is
// a pure function of its subtree's content (topology + electricals,
// including the node's own parent wire, which is charged before the
// parent consumes the list) and of the solve options. rctree.SubtreeHash
// captures exactly the first part; memoKeySuffix captures the second.
// Between them, a memo entry keyed by hash+suffix can be replayed at any
// node of any tree whose subtree matches, and the replay is bit-identical
// to recomputation: post-prune lists are canonical (pruneVG's total-order
// sort plus dominance leaves no full ties), so the stored list IS the
// list a fresh compute would produce.
//
// An edit to one node therefore invalidates only the hashes on its
// root-to-node path: a memoized re-solve walks top-down from the root,
// loads every subtree whose entry is current, and recomputes just the
// O(depth) ancestors of the change — the ROADMAP's "Incremental (ECO)
// re-solve engine".

// subtreeMemo is one memoized per-subtree candidate list. Entries are
// immutable once stored (the session cache runs with a nil Clone): the
// cands slice and the solLink DAG behind it are never written after Put,
// and loads copy the slice into the run's arena before the DP may mutate
// it in place. ids records the subtree's preorder node numbering at store
// time, so a load after a renumbering edit (prune) can relocate the
// solution DAG instead of discarding the entry.
type subtreeMemo struct {
	ids   []rctree.NodeID
	cands []vgCand
}

// memoTable is the per-session store of subtree entries, bounded like
// every other cache in the system (LRU entries + bytes, exact books).
type memoTable = cache.Cache[*subtreeMemo]

// subtreeMemoSize approximates an entry's resident footprint: candidate
// structs plus an amortized share of the solution DAG behind them, plus
// the id list. Generous constants — the byte bound is a safety valve.
func subtreeMemoSize(e *subtreeMemo) int64 {
	const (
		base    = 96
		perCand = 160 // vgCand (72 B) + amortized solLink share
		perID   = 8
	)
	if e == nil {
		return base
	}
	return base + int64(len(e.cands))*perCand + int64(len(e.ids))*perID
}

// memoRun is one solve's view of a session memo: the table, the current
// subtree hashes (indexed by NodeID, kept incremental by the session),
// the options-slice key suffix (set by runVG once the engine is
// resolved), and the run's ledger. Counters are atomic because the
// parallel walk stores from worker goroutines; lookups == reused +
// resolved holds exactly on every successful run — the gate visits a
// node (one lookup), and every visited node is either loaded (reused) or
// computed and stored (resolved).
type memoRun struct {
	table  *memoTable
	hashes []rctree.SubtreeHash
	suffix string

	lookups  atomic.Int64
	reused   atomic.Int64
	resolved atomic.Int64
}

// counts returns the run's ledger.
func (m *memoRun) counts() (lookups, reused, resolved int64) {
	return m.lookups.Load(), m.reused.Load(), m.resolved.Load()
}

// flush publishes the run ledger to the obs registry and the DP span.
func (m *memoRun) flush(sp *obs.SpanHandle) {
	lk, ru, rs := m.counts()
	obs.Add("vg.memo.lookups", lk)
	obs.Add("vg.memo.reused", ru)
	obs.Add("vg.memo.resolved", rs)
	sp.SetAttr("memo", "on")
}

// key is the memo key for node v: the subtree's content hash plus the
// options slice. The engine name as such is excluded — only the one
// engine-visible behavior bit (fastMergeOK) enters via the suffix.
func (m *memoRun) key(v rctree.NodeID) string {
	return hex.EncodeToString(m.hashes[v][:]) + "/" + m.suffix
}

// memoKeySuffix hashes the solve-relevant option slice and the buffer
// library: everything besides the subtree content that determines a
// node's candidate list. Budget caps are excluded (they can only abort a
// run, never change a successful list), as are Workers (bit-identical by
// the differential gate). maxBuffers is included because the iterative
// deepening ladder genuinely changes list contents per cap.
func memoKeySuffix(o vgOptions, lib *buffers.Library) string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	b1 := func(v byte) { buf[0] = v; h.Write(buf[:1]) }
	bol := func(v bool) {
		if v {
			b1(1)
		} else {
			b1(0)
		}
	}
	str := func(s string) { u64(uint64(len(s))); io.WriteString(h, s) }

	str("buffopt.subtreememo.v1")
	bol(o.noise)
	if o.noise {
		f64(o.params.CouplingRatio)
		f64(o.params.Slope)
	}
	bol(o.countIndexed)
	u64(uint64(int64(o.maxBuffers)))
	bol(o.safePruning)
	u64(uint64(len(o.widths)))
	for _, w := range o.widths {
		f64(w)
	}
	f64(o.fringe)
	bol(o.fastMergeOK())
	u64(uint64(len(lib.Buffers)))
	for _, b := range lib.Buffers {
		str(b.Name)
		f64(b.Cin)
		f64(b.R)
		f64(b.T)
		f64(b.NoiseMargin)
		bol(b.Inverting)
		u64(uint64(int64(b.Weight)))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// store memoizes node v's finished candidate list: a private plain copy
// (never arena-backed — the arena zeroes returned backing) plus the
// subtree's current preorder ids. Called from computeNode after the list
// is final (pruned and wire-charged), so serial, parallel, and subset
// walks all store through the same line.
func (m *memoRun) store(t *rctree.Tree, v rctree.NodeID, list []vgCand) {
	m.resolved.Add(1)
	m.table.Put(m.key(v), &subtreeMemo{
		ids:   t.Subtree(v),
		cands: append([]vgCand(nil), list...),
	})
}

// load returns an arena-backed copy of node v's memoized list, if the
// table holds a current entry. When the tree was renumbered since the
// entry was stored (prune compaction), the stored solution DAG is
// relocated through the positional old→new id map — hash equality
// guarantees the two preorders align node for node — and the relocated
// entry replaces the stale one.
func (m *memoRun) load(t *rctree.Tree, v rctree.NodeID, ar *candArena) ([]vgCand, bool) {
	key := m.key(v)
	e, ok := m.table.Get(key)
	if !ok {
		return nil, false
	}
	ids := t.Subtree(v)
	if !equalIDs(e.ids, ids) {
		e = remapMemo(e, ids)
		m.table.Put(key, e)
	}
	m.reused.Add(1)
	return append(ar.get(len(e.cands)), e.cands...), true
}

func equalIDs(a, b []rctree.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// remapMemo rebuilds an entry under a new node numbering. solLinks are
// immutable, so relocation builds fresh links, memoized per old link to
// preserve the DAG's sharing (and its size).
func remapMemo(e *subtreeMemo, ids []rctree.NodeID) *subtreeMemo {
	idMap := make(map[rctree.NodeID]rctree.NodeID, len(e.ids))
	for i, old := range e.ids {
		idMap[old] = ids[i]
	}
	seen := make(map[*solLink]*solLink)
	cands := make([]vgCand, len(e.cands))
	for i, c := range e.cands {
		c.sol = remapSol(c.sol, idMap, seen)
		cands[i] = c
	}
	return &subtreeMemo{ids: ids, cands: cands}
}

func remapSol(l *solLink, idMap map[rctree.NodeID]rctree.NodeID, seen map[*solLink]*solLink) *solLink {
	if l == nil {
		return nil
	}
	if r, ok := seen[l]; ok {
		return r
	}
	nl := *l
	if nn, ok := idMap[l.node]; ok {
		nl.node = nn
	}
	nl.prev[0] = remapSol(l.prev[0], idMap, seen)
	nl.prev[1] = remapSol(l.prev[1], idMap, seen)
	seen[l] = &nl
	return &nl
}

// memoGate is the top-down phase of a memoized run: starting at the root,
// load every subtree whose entry is current (its nodes are skipped
// entirely) and descend into the rest. It returns the compute set in
// postorder — children before parents, ready for the serial loop or the
// parallel climb. The set is ancestor-closed (a computed node's parent
// also missed, or the gate would not have descended), which is exactly
// the invariant the parallel scheduler's last-child-finisher climb needs.
func memoGate(t *rctree.Tree, opts vgOptions, lists [][]vgCand) ([]rctree.NodeID, error) {
	m := opts.memo
	var order []rctree.NodeID
	type frame struct {
		id      rctree.NodeID
		next    int
		checked bool
	}
	stack := []frame{{id: t.Root()}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if !f.checked {
			f.checked = true
			if err := opts.budget.Check(); err != nil {
				return order, err
			}
			m.lookups.Add(1)
			if list, ok := m.load(t, f.id, opts.arena); ok {
				lists[f.id] = list
				stack = stack[:len(stack)-1]
				continue
			}
		}
		ch := t.Node(f.id).Children
		if f.next < len(ch) {
			f.next++
			stack = append(stack, frame{id: ch[f.next-1]})
			continue
		}
		order = append(order, f.id)
		stack = stack[:len(stack)-1]
	}
	return order, nil
}
