package core

import (
	"math"
	"math/rand"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
	"buffopt/internal/testutil"
)

// weightedLib pairs a strong, expensive buffer with a weak, cheap one.
func weightedLib() *buffers.Library {
	return &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "BIG", Cin: 0.15, R: 0.5, T: 0.2, NoiseMargin: 5, Weight: 3},
		{Name: "SMALL", Cin: 0.05, R: 1.2, T: 0.4, NoiseMargin: 5, Weight: 1},
	}}
}

func TestBufferCostDefaultsToOne(t *testing.T) {
	if (buffers.Buffer{}).Cost() != 1 {
		t.Errorf("zero weight should cost 1")
	}
	if (buffers.Buffer{Weight: 4}).Cost() != 4 {
		t.Errorf("explicit weight ignored")
	}
	if (buffers.Buffer{Weight: -2}).Cost() != 1 {
		t.Errorf("negative weight should cost 1")
	}
}

// TestMinWeightMatchesExhaustive certifies the weighted Problem 3 against
// a brute-force oracle on random small instances: BuffOptMinBuffers must
// achieve the minimum total weight over all noise-clean, timing-clean
// assignments.
func TestMinWeightMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	lib := weightedLib()
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	checked := 0
	for trial := 0; trial < 120; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 3, MaxSinks: 3, MarginLo: 3, MarginHi: 7,
			RATLo: 50, RATHi: 100, WireScale: 1.5, BufferSites: true,
		})
		if _, err := segment.ByCount(tr, 2); err != nil {
			t.Fatal(err)
		}
		if len(feasibleNodes(tr)) > 7 {
			continue
		}

		// Oracle: minimum total weight over all clean assignments that
		// also meet timing.
		bestWeight := math.MaxInt
		err := enumerate(tr, lib, nil, func(assign map[rctree.NodeID]buffers.Buffer) {
			w := 0
			for _, b := range assign {
				w += b.Cost()
			}
			if w >= bestWeight {
				return
			}
			if !noise.Analyze(tr, assign, p).Clean() {
				return
			}
			if elmore.Analyze(tr, assign).WorstSlack < 0 {
				return
			}
			bestWeight = w
		})
		if err != nil {
			t.Fatal(err)
		}

		res, rerr := BuffOptMinBuffers(tr, lib, p, Options{SafePruning: true})
		if bestWeight == math.MaxInt {
			continue // nothing feasible; BuffOptMinBuffers falls back to max slack
		}
		if rerr != nil {
			t.Fatalf("trial %d: oracle found weight %d but BuffOpt failed: %v", trial, bestWeight, rerr)
		}
		if res.Slack < 0 {
			continue // tool fell back to max-slack; oracle says feasible — covered below
		}
		if res.Cost > bestWeight {
			t.Fatalf("trial %d: BuffOpt weight %d, optimum %d", trial, res.Cost, bestWeight)
		}
		checked++
	}
	if checked < 25 {
		t.Fatalf("only %d trials checked", checked)
	}
}

// TestWeightsSteerSelection: when one cheap buffer fixes the net, the
// expensive strong buffer is not used, even though it would give better
// slack; with equal weights the strong buffer wins again.
func TestWeightsSteerSelection(t *testing.T) {
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	build := func() *rctree.Tree {
		tr := rctree.New("w", 1.2, 0)
		if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 4, C: 4, Length: 4}, "s", 0.1, 100, 5); err != nil {
			t.Fatal(err)
		}
		if _, err := segment.ByCount(tr, 4); err != nil {
			t.Fatal(err)
		}
		return tr
	}

	weighted := weightedLib()
	res, err := BuffOptMinBuffers(build(), weighted, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.Buffers {
		if b.Name == "BIG" && res.Cost >= 3 {
			// Using BIG is only acceptable if no all-SMALL solution of
			// lower weight exists; verify it does.
			small := &buffers.Library{Buffers: []buffers.Buffer{weighted.Buffers[1]}}
			if alt, err := BuffOptMinBuffers(build(), small, p, Options{}); err == nil &&
				alt.Slack >= 0 && alt.Cost < res.Cost {
				t.Errorf("picked BIG (weight %d) though SMALL-only costs %d", res.Cost, alt.Cost)
			}
		}
	}

	// Equal weights: the optimizer is free to pick the best-slack mix.
	equal := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "BIG", Cin: 0.15, R: 0.5, T: 0.2, NoiseMargin: 5},
		{Name: "SMALL", Cin: 0.05, R: 1.2, T: 0.4, NoiseMargin: 5},
	}}
	eq, err := BuffOptMinBuffers(build(), equal, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if eq.Cost != eq.NumBuffers() {
		t.Errorf("unit weights: cost %d != count %d", eq.Cost, eq.NumBuffers())
	}
}
