package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"buffopt/internal/guard"
	"buffopt/internal/obs"
	"buffopt/internal/segment"
)

// withFreshRegistry swaps in an empty obs registry for the duration of one
// test so counter assertions see only the work the test itself did.
func withFreshRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	old := obs.Default()
	r := obs.NewRegistry()
	obs.SetDefault(r)
	t.Cleanup(func() { obs.SetDefault(old) })
	return r
}

// TestTierJSONRoundTrip checks String(), MarshalJSON, and UnmarshalJSON
// agree for every named tier, so logs, snapshots, and JSON reports share
// one vocabulary.
func TestTierJSONRoundTrip(t *testing.T) {
	for tier := TierExact; tier <= TierUnbuffered; tier++ {
		data, err := json.Marshal(tier)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", tier, err)
		}
		if want := `"` + tier.String() + `"`; string(data) != want {
			t.Errorf("Marshal(%v) = %s, want %s", tier, data, want)
		}
		var back Tier
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("Unmarshal(%s): %v", data, err)
		}
		if back != tier {
			t.Errorf("round trip: %v -> %s -> %v", tier, data, back)
		}
		parsed, err := ParseTier(tier.String())
		if err != nil || parsed != tier {
			t.Errorf("ParseTier(%q) = %v, %v", tier.String(), parsed, err)
		}
	}
	if _, err := ParseTier("warp-speed"); err == nil {
		t.Error("ParseTier accepted an unknown name")
	}
	var tier Tier
	if err := json.Unmarshal([]byte(`42`), &tier); err == nil {
		t.Error("UnmarshalJSON accepted a non-string")
	}
	if err := json.Unmarshal([]byte(`"warp-speed"`), &tier); err == nil {
		t.Error("UnmarshalJSON accepted an unknown name")
	}
}

// TestGuardSentinelsThroughWrappedChains is the errors.Is table test:
// every guard sentinel must stay classifiable after being wrapped by
// obs.SpanHandle.Fail and again by TierError — the two wrappers every
// solver failure passes through on its way to a caller.
func TestGuardSentinelsThroughWrappedChains(t *testing.T) {
	withFreshRegistry(t)
	sentinels := []struct {
		name string
		err  error
	}{
		{"canceled", guard.ErrCanceled},
		{"budget", guard.ErrBudgetExceeded},
		{"invalid", guard.ErrInvalidInput},
		{"infeasible", guard.ErrInfeasible},
	}
	for _, s := range sentinels {
		t.Run(s.name, func(t *testing.T) {
			// A realistic chain: the solver wraps the sentinel with context,
			// the span wraps that with its name, TierError wraps the lot.
			_, sp := obs.Span(context.Background(), "test.chain")
			if sp == nil {
				t.Fatal("Span returned a nil handle with a live registry")
			}
			chained := sp.Fail(fmt.Errorf("solver detail: %w", s.err))
			te := &TierError{Tier: TierExact, Err: chained}
			if !errors.Is(te, s.err) {
				t.Errorf("errors.Is lost %v through Span+TierError: %v", s.err, te)
			}
			if got := guard.Class(te); got != s.name {
				t.Errorf("guard.Class = %q, want %q", got, s.name)
			}
		})
	}
	// A panic survives the same chain and still classifies as one.
	pErr := guard.Safe("test", func() error { panic("boom") })
	_, sp := obs.Span(context.Background(), "test.panic")
	te := &TierError{Tier: TierGreedy, Err: sp.Fail(pErr)}
	if guard.Class(te) != "panic" {
		t.Errorf("panic class lost through chain: %v", te)
	}
	// A nil span handle (telemetry disabled) must pass errors through
	// unchanged rather than wrapping or swallowing them.
	var nilSp *obs.SpanHandle
	if err := nilSp.Fail(guard.ErrBudgetExceeded); !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Errorf("nil handle altered the error: %v", err)
	}
}

// TestSolveEmitsTierSpans forces a degradation (2-candidate cap) and
// asserts the per-tier spans and degradation-cause counters land in the
// registry: one span per attempted tier, a budget-classed degrade count,
// and the answering tier's counter.
func TestSolveEmitsTierSpans(t *testing.T) {
	r := withFreshRegistry(t)

	tr := buildNoisyY(t)
	if _, err := segment.ByCount(tr, 40); err != nil {
		t.Fatal(err)
	}
	b := guard.New(context.Background())
	b.MaxCandidates = 2
	res, err := Solve(context.Background(), tr, lib2(), unitParams, Options{Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("expected degradation under a 2-candidate cap, got tier %v", res.Tier)
	}

	snap := r.Snapshot()
	// Every attempted tier left a span: the failed ones plus the answerer.
	attempted := make([]string, 0, len(res.TierErrors)+1)
	for _, te := range res.TierErrors {
		attempted = append(attempted, te.Tier.String())
	}
	attempted = append(attempted, res.Tier.String())
	for _, name := range attempted {
		key := "solve.tier." + name
		if snap.Counters[key+".count"] == 0 {
			t.Errorf("no span count for attempted tier %s: %v", name, snap.Counters)
		}
		if _, ok := snap.Histograms["span."+key]; !ok {
			t.Errorf("no span histogram for attempted tier %s", name)
		}
	}
	// The failures were budget trips, counted under the guard taxonomy.
	if snap.Counters["solve.degrade.budget"] == 0 {
		t.Errorf("no budget-classed degradation recorded: %v", snap.Counters)
	}
	if snap.Counters["solve.degraded"] == 0 {
		t.Error("solve.degraded not incremented")
	}
	if snap.Counters["solve.answered."+res.Tier.String()] != 1 {
		t.Errorf("answering tier %v not counted once: %v", res.Tier, snap.Counters)
	}
	// The enclosing solve span closed too.
	if snap.Counters["solve.count"] != 1 {
		t.Errorf("solve span count = %d, want 1", snap.Counters["solve.count"])
	}
	// TierErrors carry elapsed time and budget usage (satellite: enriched
	// tier errors).
	for _, te := range res.TierErrors {
		if te.Elapsed <= 0 {
			t.Errorf("tier %v: no elapsed time recorded", te.Tier)
		}
		if te.Usage == (guard.Usage{}) {
			t.Errorf("tier %v: no budget usage recorded", te.Tier)
		}
	}
}
