package core

import (
	"fmt"
	"math"
	"sort"

	"buffopt/internal/buffers"
	"buffopt/internal/guard"
	"buffopt/internal/noise"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
)

// vgStats accumulates one runVG invocation's telemetry locally — plain
// int64 fields bumped inside the hot loops — and flushes to the obs
// registry once at the end, so instrumentation costs the DP a handful of
// atomic adds per run rather than per candidate. The Shi/Li O(bn²)
// candidate-growth claim (PAPERS.md) is checked against exactly these
// numbers: generated vs. pruned is the prune ratio, highwater is the
// per-node list-length bound.
type vgStats struct {
	generated int64 // candidates created (sinks, merges, buffer insertions, width variants)
	pruned    int64 // candidates discarded by dominance pruning
	merged    int64 // candidates emitted by branch merges
	nodes     int64 // tree nodes visited
	highwater int64 // longest candidate list observed at any node
}

func (s *vgStats) list(n int) {
	if int64(n) > s.highwater {
		s.highwater = int64(n)
	}
}

func (s *vgStats) flush() {
	obs.Add("vg.candidates.generated", s.generated)
	obs.Add("vg.candidates.pruned", s.pruned)
	obs.Add("vg.candidates.merged", s.merged)
	obs.Add("vg.nodes.visited", s.nodes)
	obs.SetMax("vg.list.highwater", s.highwater)
}

// vgCand is an Algorithm 3 candidate: the five-tuple (C, q, I, NS, M) of
// Section IV-A, plus the buffer count for the Lillis extension and the
// inversion parity for libraries containing inverters.
type vgCand struct {
	load float64 // C: downstream capacitance seen at the node
	q    float64 // slack at the node
	down float64 // I: downstream coupling current
	ns   float64 // NS: noise slack
	nbuf int     // buffers used in the subtree solution
	cost int     // Problem 3 weight of those buffers (Lillis power function)
	pol  uint8   // parity of inverting stages to every sink (0 = in phase)
	sol  *solLink
}

// solLink is one decision in a persistent solution list shared between
// candidates: either a buffer assignment at a node, or (isWidth) a width
// multiplier chosen for the node's parent wire.
type solLink struct {
	node    rctree.NodeID
	buf     buffers.Buffer
	width   float64
	isWidth bool
	prev    [2]*solLink
}

// collectSol flattens a solution DAG into a buffer assignment and a wire
// width map.
func collectSol(s *solLink) (map[rctree.NodeID]buffers.Buffer, map[rctree.NodeID]float64) {
	assign := make(map[rctree.NodeID]buffers.Buffer)
	widths := make(map[rctree.NodeID]float64)
	seen := map[*solLink]bool{}
	stack := []*solLink{s}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if l == nil || seen[l] {
			continue
		}
		seen[l] = true
		if l.isWidth {
			widths[l.node] = l.width
		} else {
			assign[l.node] = l.buf
		}
		stack = append(stack, l.prev[0], l.prev[1])
	}
	return assign, widths
}

// vgOptions configures one run of the dynamic program.
type vgOptions struct {
	noise        bool         // enforce noise constraints (BuffOpt) or not (DelayOpt)
	params       noise.Params // estimation-mode noise parameters
	countIndexed bool         // keep per-buffer-count lists (Lillis [18])
	maxBuffers   int          // with countIndexed: drop candidates above this count (0 = unlimited)
	safePruning  bool         // include (I, NS) in the dominance test
	// widths are the wire width multipliers available per wire (Lillis
	// [18] simultaneous wire sizing); nil or empty means {1}.
	widths []float64
	// fringe is the fraction of a minimum-width wire's capacitance that
	// does not scale with width (fringe + sidewall); the rest is area
	// capacitance multiplied by the width. Zero means 0.5.
	fringe float64
	// budget bounds the run; nil means unlimited. Checked at every node
	// of the bottom-up walk and inside the merge and prune loops.
	budget *guard.Budget
	// stats, when non-nil, accumulates candidate counts for the run.
	// runVG installs its own; the field exists so the helpers below see it
	// without signature churn.
	stats *vgStats
}

// wireVariant returns the electrical parameters of a wire at width wd.
func (o vgOptions) wireVariant(w rctree.Wire, wd float64) (r, c float64) {
	if wd == 1 {
		return w.R, w.C
	}
	fr := o.fringe
	if fr == 0 {
		fr = 0.5
	}
	return w.R / wd, w.C * (fr + (1-fr)*wd)
}

// runVG executes the bottom-up dynamic program of Figs. 10–11 and returns
// the root candidates after the driver's delay and noise have been applied
// and infeasible candidates (noise violations when opts.noise is set, or
// inverted polarity) have been discarded. The result is pruned and sorted
// by ascending buffer count.
func runVG(t *rctree.Tree, lib *buffers.Library, opts vgOptions) ([]vgCand, error) {
	if err := t.Validate(); err != nil {
		return nil, invalid(err)
	}
	if !t.IsBinary() {
		return nil, invalid(fmt.Errorf("core: the dynamic program requires a binary tree; call Binarize first"))
	}
	if err := lib.Validate(); err != nil {
		return nil, invalid(err)
	}
	if opts.noise {
		if err := opts.params.Validate(); err != nil {
			return nil, err
		}
	}
	for i, w := range opts.widths {
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return nil, invalid(fmt.Errorf("core: wire width %d = %g must be positive and finite", i, w))
		}
	}
	if math.IsNaN(opts.fringe) || opts.fringe < 0 || opts.fringe > 1 {
		return nil, invalid(fmt.Errorf("core: sizing fringe fraction %g must lie in [0, 1]", opts.fringe))
	}
	if err := opts.budget.CheckTreeNodes(t.Len()); err != nil {
		return nil, err
	}

	var st vgStats
	opts.stats = &st
	defer st.flush()
	defer obs.Timer("vg.run")()

	lists := make([][]vgCand, t.Len())
	for _, v := range t.Postorder() {
		st.nodes++
		// The budget gate for the whole dynamic program: one context
		// check per node, plus candidate-count checks below wherever a
		// list can grow.
		if err := opts.budget.Check(); err != nil {
			return nil, err
		}
		node := t.Node(v)
		var list []vgCand
		var err error
		switch {
		case node.Kind == rctree.Sink:
			st.generated++
			list = []vgCand{{
				load: node.Cap,
				q:    node.RAT,
				down: 0,
				ns:   node.NoiseMargin,
				pol:  0,
			}}
		case len(node.Children) == 1:
			list = append([]vgCand(nil), lists[node.Children[0]]...)
		case len(node.Children) == 2:
			list, err = mergeVG(lists[node.Children[0]], lists[node.Children[1]], opts)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("core: internal node %d has no children", v)
		}

		// Step 5: consider inserting each buffer type at v.
		if node.BufferOK && v != t.Root() {
			list = append(list, insertBuffers(v, list, lib, opts)...)
		}

		list, err = pruneVG(list, opts)
		if err != nil {
			return nil, err
		}
		if err := opts.budget.CheckCandidates(len(list)); err != nil {
			return nil, err
		}

		// Step 6: charge the parent wire, once per available width. The
		// coupling current I_w is a sidewall quantity and does not change
		// with width; the resistance drops and the ground capacitance
		// grows, which is why widening is itself a noise fix.
		if v != t.Root() {
			w := node.Wire
			iw := opts.params.WireCurrent(w)
			widths := opts.widths
			if len(widths) == 0 {
				widths = oneWidth
			}
			sized := make([]vgCand, 0, len(list)*len(widths))
			for _, c := range list {
				for _, wd := range widths {
					r, cw := opts.wireVariant(w, wd)
					nc := c
					nc.q -= r * (cw/2 + c.load)
					nc.load += cw
					nc.ns -= r * (c.down + iw/2)
					nc.down += iw
					if wd != 1 {
						nc.sol = &solLink{node: v, width: wd, isWidth: true, prev: [2]*solLink{c.sol, nil}}
					}
					sized = append(sized, nc)
				}
			}
			st.generated += int64(len(sized) - len(list))
			list = sized
			if len(widths) > 1 {
				list, err = pruneVG(list, opts)
				if err != nil {
					return nil, err
				}
			}
			if err := opts.budget.CheckCandidates(len(list)); err != nil {
				return nil, err
			}
		}
		st.list(len(list))
		lists[v] = list
	}

	// Add the driver (Steps 2–3 of Fig. 10) and filter.
	var out []vgCand
	for _, c := range lists[t.Root()] {
		if c.pol != 0 {
			continue // inverted signal at the sinks
		}
		if opts.noise && t.DriverResistance*c.down > c.ns {
			continue // eq. 11 violated at the source gate
		}
		c.q -= t.DriverDelay + t.DriverResistance*c.load
		out = append(out, c)
	}
	out, err := pruneVG(out, opts)
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].cost != out[j].cost {
			return out[i].cost < out[j].cost
		}
		return out[i].q > out[j].q
	})
	return out, nil
}

// oneWidth is the default (no sizing) width set.
var oneWidth = []float64{1}

// insertBuffers generates buffered candidates at node v: for each buffer
// type (and, in count-indexed mode, each resulting buffer count and each
// parity) the candidate producing the largest post-buffer slack, subject
// to the noise constraint R_b·I(v) ≤ NS(v) when noise is enforced — the
// boldface modification of Fig. 11, Step 5.
func insertBuffers(v rctree.NodeID, list []vgCand, lib *buffers.Library, opts vgOptions) []vgCand {
	type key struct {
		buf  int
		pol  uint8
		cost int
	}
	best := map[key]vgCand{}
	for bi, b := range lib.Buffers {
		for _, c := range list {
			if opts.noise && b.R*c.down > c.ns {
				continue // inserting here would violate downstream noise
			}
			if opts.countIndexed && opts.maxBuffers > 0 && c.cost+b.Cost() > opts.maxBuffers {
				continue
			}
			q := c.q - b.Delay(c.load)
			k := key{buf: bi, pol: c.pol}
			if b.Inverting {
				k.pol ^= 1
			}
			if opts.countIndexed {
				k.cost = c.cost + b.Cost()
			}
			cur, ok := best[k]
			if !ok || q > cur.q {
				best[k] = vgCand{
					load: b.Cin,
					q:    q,
					down: 0,
					ns:   b.NoiseMargin,
					nbuf: c.nbuf + 1,
					cost: c.cost + b.Cost(),
					pol:  k.pol,
					sol:  &solLink{node: v, buf: b, prev: [2]*solLink{c.sol, nil}},
				}
			}
		}
	}
	out := make([]vgCand, 0, len(best))
	for _, c := range best {
		out = append(out, c)
	}
	if opts.stats != nil {
		opts.stats.generated += int64(len(out))
	}
	// Deterministic order (map iteration is randomized).
	sort.Slice(out, func(i, j int) bool {
		if out[i].cost != out[j].cost {
			return out[i].cost < out[j].cost
		}
		if out[i].load != out[j].load {
			return out[i].load < out[j].load
		}
		return out[i].q > out[j].q
	})
	return out
}

// mergeVG combines the candidate lists of two sibling branches: loads and
// currents add, slacks take the minimum (Steps 3–4 of Fig. 11). Only
// parity-compatible pairs merge. The pruned per-branch frontiers are small,
// so the full cross product is used; pruning immediately follows in the
// caller. The cross product is where multi-buffer candidate growth
// compounds, so the budget is consulted as the output grows.
func mergeVG(left, right []vgCand, opts vgOptions) ([]vgCand, error) {
	out := make([]vgCand, 0, len(left)+len(right))
	tick := 0
	for _, a := range left {
		for _, b := range right {
			// Budget gate at stride boundaries: candidate cap and context
			// together, so the common case costs two integer ops.
			if tick++; tick >= 4096 {
				tick = 0
				if err := opts.budget.CheckCandidates(len(out)); err != nil {
					return nil, err
				}
			}
			if a.pol != b.pol {
				continue
			}
			if opts.countIndexed && opts.maxBuffers > 0 && a.cost+b.cost > opts.maxBuffers {
				continue
			}
			var sol *solLink
			switch {
			case a.sol == nil:
				sol = b.sol
			case b.sol == nil:
				sol = a.sol
			default:
				// Junction link: reuse a's head with both prevs via a
				// synthetic link carrying a's head assignment would double
				// count; instead create a link that repeats a's head
				// assignment — maps deduplicate identical (node, buf)
				// pairs, so repeating is safe and keeps links binary.
				sol = &solLink{
					node: a.sol.node, buf: a.sol.buf,
					width: a.sol.width, isWidth: a.sol.isWidth,
					prev: [2]*solLink{a.sol, b.sol},
				}
			}
			out = append(out, vgCand{
				load: a.load + b.load,
				q:    math.Min(a.q, b.q),
				down: a.down + b.down,
				ns:   math.Min(a.ns, b.ns),
				nbuf: a.nbuf + b.nbuf,
				cost: a.cost + b.cost,
				pol:  a.pol,
				sol:  sol,
			})
		}
	}
	if err := opts.budget.CheckCandidates(len(out)); err != nil {
		return nil, err
	}
	if opts.stats != nil {
		opts.stats.merged += int64(len(out))
		opts.stats.generated += int64(len(out))
	}
	return out, nil
}

// pruneVG removes inferior candidates (Step 7 of Fig. 11): within each
// (parity[, buffer count]) group, candidate α1 is inferior to α2 iff
// C1 ≥ C2 and q1 ≤ q2 — the paper's rule — and additionally, in safe
// pruning mode, I1 ≥ I2 and NS1 ≤ NS2, which restores exactness for
// multi-buffer libraries at the cost of longer lists (see the discussion
// in Section IV-C). Safe pruning is quadratic in the group size, so the
// dominance scan honors the budget's context.
func pruneVG(list []vgCand, opts vgOptions) ([]vgCand, error) {
	if len(list) <= 1 {
		return list, nil
	}
	type group struct {
		pol  uint8
		cost int
	}
	byGroup := map[group][]vgCand{}
	for _, c := range list {
		g := group{pol: c.pol}
		if opts.countIndexed {
			g.cost = c.cost
		}
		byGroup[g] = append(byGroup[g], c)
	}
	groups := make([]group, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].cost != groups[j].cost {
			return groups[i].cost < groups[j].cost
		}
		return groups[i].pol < groups[j].pol
	})

	var out []vgCand
	pacer := opts.budget.Pacer(1024)
	for _, g := range groups {
		cands := byGroup[g]
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].load != cands[j].load {
				return cands[i].load < cands[j].load
			}
			return cands[i].q > cands[j].q
		})
		if !opts.safePruning {
			bestQ := math.Inf(-1)
			for _, c := range cands {
				if c.q > bestQ {
					out = append(out, c)
					bestQ = c.q
				}
			}
			continue
		}
		var kept []vgCand
		for _, c := range cands {
			if err := pacer.Tick(); err != nil {
				return nil, err
			}
			dominated := false
			for _, k := range kept {
				if k.load <= c.load && k.q >= c.q && k.down <= c.down && k.ns >= c.ns {
					dominated = true
					break
				}
			}
			if !dominated {
				kept = append(kept, c)
			}
		}
		out = append(out, kept...)
	}
	if opts.stats != nil {
		opts.stats.pruned += int64(len(list) - len(out))
	}
	return out, nil
}
