package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"buffopt/internal/buffers"
	"buffopt/internal/guard"
	"buffopt/internal/noise"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
)

// vgStats accumulates one runVG invocation's telemetry locally — plain
// int64 fields bumped inside the hot loops — and flushes to the obs
// registry once at the end, so instrumentation costs the DP a handful of
// atomic adds per run rather than per candidate. The Shi/Li O(bn²)
// candidate-growth claim (PAPERS.md) is checked against exactly these
// numbers: generated vs. pruned is the prune ratio, highwater is the
// per-node list-length bound. In parallel runs each worker owns a private
// vgStats, absorbed into the run's at the end, so the published totals are
// schedule-independent.
type vgStats struct {
	generated int64 // candidates created (sinks, merges, buffer insertions, width variants)
	pruned    int64 // candidates discarded by dominance pruning
	merged    int64 // candidates emitted by branch merges
	nodes     int64 // tree nodes visited
	highwater int64 // longest candidate list observed at any node
}

func (s *vgStats) list(n int) {
	if int64(n) > s.highwater {
		s.highwater = int64(n)
	}
}

// absorb folds a worker's private stats into the run total.
func (s *vgStats) absorb(o *vgStats) {
	s.generated += o.generated
	s.pruned += o.pruned
	s.merged += o.merged
	s.nodes += o.nodes
	if o.highwater > s.highwater {
		s.highwater = o.highwater
	}
}

func (s *vgStats) flush() {
	obs.Add("vg.candidates.generated", s.generated)
	obs.Add("vg.candidates.pruned", s.pruned)
	obs.Add("vg.candidates.merged", s.merged)
	obs.Add("vg.nodes.visited", s.nodes)
	obs.SetMax("vg.list.highwater", s.highwater)
}

// vgCand is an Algorithm 3 candidate: the five-tuple (C, q, I, NS, M) of
// Section IV-A, plus the buffer count for the Lillis extension and the
// inversion parity for libraries containing inverters.
type vgCand struct {
	load float64 // C: downstream capacitance seen at the node
	q    float64 // slack at the node
	down float64 // I: downstream coupling current
	ns   float64 // NS: noise slack
	nbuf int     // buffers used in the subtree solution
	cost int     // Problem 3 weight of those buffers (Lillis power function)
	pol  uint8   // parity of inverting stages to every sink (0 = in phase)
	sol  *solLink
}

// solLink is one decision in a persistent solution list shared between
// candidates: either a buffer assignment at a node, or (isWidth) a width
// multiplier chosen for the node's parent wire.
type solLink struct {
	node    rctree.NodeID
	buf     buffers.Buffer
	width   float64
	isWidth bool
	prev    [2]*solLink
}

// collectSol flattens a solution DAG into a buffer assignment and a wire
// width map.
func collectSol(s *solLink) (map[rctree.NodeID]buffers.Buffer, map[rctree.NodeID]float64) {
	assign := make(map[rctree.NodeID]buffers.Buffer)
	widths := make(map[rctree.NodeID]float64)
	seen := map[*solLink]bool{}
	stack := []*solLink{s}
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if l == nil || seen[l] {
			continue
		}
		seen[l] = true
		if l.isWidth {
			widths[l.node] = l.width
		} else {
			assign[l.node] = l.buf
		}
		stack = append(stack, l.prev[0], l.prev[1])
	}
	return assign, widths
}

// vgOptions configures one run of the dynamic program.
type vgOptions struct {
	noise        bool         // enforce noise constraints (BuffOpt) or not (DelayOpt)
	params       noise.Params // estimation-mode noise parameters
	countIndexed bool         // keep per-buffer-count lists (Lillis [18])
	maxBuffers   int          // with countIndexed: drop candidates above this count (0 = unlimited)
	safePruning  bool         // include (I, NS) in the dominance test
	// widths are the wire width multipliers available per wire (Lillis
	// [18] simultaneous wire sizing); nil or empty means {1}.
	widths []float64
	// fringe is the fraction of a minimum-width wire's capacitance that
	// does not scale with width (fringe + sidewall); the rest is area
	// capacitance multiplied by the width. Zero means 0.5.
	fringe float64
	// budget bounds the run; nil means unlimited. Checked at every node
	// of the bottom-up walk and inside the merge and prune loops.
	budget *guard.Budget
	// workers bounds the goroutines the bottom-up walk may use:
	// 0 = automatic (GOMAXPROCS, with a tree-size floor), 1 = serial,
	// N > 1 = exactly N, parallel even on small trees (the differential
	// suite forces the parallel path this way).
	workers int
	// stats, when non-nil, accumulates candidate counts for the run.
	// runVG installs its own (per worker in parallel runs); the field
	// exists so the helpers below see it without signature churn.
	stats *vgStats
	// arena recycles candidate-list backing arrays for the run; installed
	// by runVG alongside stats.
	arena *candArena
	// engine selects the candidate-list organization; runVG resolves the
	// public name ("auto" included) to EngineVG or EngineLiShi before the
	// walk starts, so computeNode only ever sees the two concrete names.
	engine string
	// memo, when non-nil, turns the run into a memoized (ECO) re-solve:
	// the top-down gate (memoGate) loads finished candidate lists for
	// every subtree whose entry is current, and only the remaining
	// compute set runs the DP — with every computed list stored back.
	// Results are bit-identical to a memo-free run; the delta
	// differential suite is the gate.
	memo *memoRun
}

// fastMergeOK reports whether computeNode may use the Li–Shi sorted
// frontier merge at a branch node. The Li–Shi argument is about the
// 2-D (C, q) dominance of the delay DP: with noise constraints the
// node's buffer-insertion step must see merge candidates the 2-D
// frontier discards (a dominated candidate can be the only
// noise-feasible driver for some buffer type), and with safe pruning the
// frontier itself is 4-D — in both configurations the fast merge would
// change results, so those runs use the classic cross product node by
// node and stay bit-identical that way.
func (o vgOptions) fastMergeOK() bool {
	return o.engine == EngineLiShi && !o.noise && !o.safePruning
}

// minParallelNodes gates automatic parallelism: below this tree size the
// per-node scheduling overhead outweighs the DP work, so workers == 0
// stays serial. An explicit workers > 1 bypasses the gate.
const minParallelNodes = 128

// maxVGWorkers caps an explicit worker request; beyond the hardware's
// parallelism extra goroutines only add scheduling churn.
const maxVGWorkers = 64

// workerCount resolves the effective parallelism for a tree of n nodes.
func (o vgOptions) workerCount(n int) int {
	w := o.workers
	switch {
	case w < 0 || w == 1:
		return 1
	case w == 0:
		if n < minParallelNodes {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > maxVGWorkers {
		w = maxVGWorkers
	}
	if w > n {
		w = n
	}
	return w
}

// wireVariant returns the electrical parameters of a wire at width wd.
func (o vgOptions) wireVariant(w rctree.Wire, wd float64) (r, c float64) {
	if wd == 1 {
		return w.R, w.C
	}
	fr := o.fringe
	if fr == 0 {
		fr = 0.5
	}
	return w.R / wd, w.C * (fr + (1-fr)*wd)
}

// runVG executes the bottom-up dynamic program of Figs. 10–11 and returns
// the root candidates after the driver's delay and noise have been applied
// and infeasible candidates (noise violations when opts.noise is set, or
// inverted polarity) have been discarded. The result is pruned and sorted
// by ascending buffer count.
//
// The walk runs serially or on a bounded worker pool (opts.workers; see
// runVGParallel) — the two paths execute the identical per-node
// computation (computeNode) on the identical inputs, so their outputs are
// bit-identical; the differential suite in differential_test.go enforces
// exactly that.
func runVG(t *rctree.Tree, lib *buffers.Library, opts vgOptions) ([]vgCand, error) {
	if err := t.Validate(); err != nil {
		return nil, invalid(err)
	}
	if !t.IsBinary() {
		return nil, invalid(fmt.Errorf("core: the dynamic program requires a binary tree; call Binarize first"))
	}
	if err := lib.Validate(); err != nil {
		return nil, invalid(err)
	}
	if opts.noise {
		if err := opts.params.Validate(); err != nil {
			return nil, err
		}
	}
	for i, w := range opts.widths {
		if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
			return nil, invalid(fmt.Errorf("core: wire width %d = %g must be positive and finite", i, w))
		}
	}
	if math.IsNaN(opts.fringe) || opts.fringe < 0 || opts.fringe > 1 {
		return nil, invalid(fmt.Errorf("core: sizing fringe fraction %g must lie in [0, 1]", opts.fringe))
	}
	if err := opts.budget.CheckTreeNodes(t.Len()); err != nil {
		return nil, err
	}

	opts.engine = resolveEngine(opts, lib)
	obs.Inc("vg.run.engine." + opts.engine)

	var st vgStats
	opts.stats = &st
	defer st.flush()
	// The DP span hangs off the budget's context, which carries the
	// request's trace (server → tier → here), so per-net DP time is
	// visible inside cross-process traces.
	_, vgSpan := obs.Span(opts.budget.Context(), "vg.run")
	vgSpan.SetAttr("engine", opts.engine)
	defer vgSpan.End()

	ar := &candArena{}
	opts.arena = ar
	defer ar.flush()

	lists := make([][]vgCand, t.Len())
	var err error
	// A memoized run gates first: hit subtrees load their finished lists
	// and only the remaining compute set (in postorder, ancestor-closed)
	// runs the DP below.
	order := t.Postorder()
	if opts.memo != nil {
		opts.memo.suffix = memoKeySuffix(opts, lib)
		order, err = memoGate(t, opts, lists)
	}
	if err == nil {
		if workers := opts.workerCount(len(order)); workers > 1 {
			obs.Inc("vg.run.parallel")
			obs.SetMax("vg.parallel.workers", int64(workers))
			vgSpan.SetAttr("dp", "parallel")
			err = runVGParallel(t, lib, opts, lists, workers, order)
		} else {
			obs.Inc("vg.run.serial")
			vgSpan.SetAttr("dp", "serial")
			err = runVGSerial(t, lib, opts, lists, order)
		}
	}
	if opts.memo != nil {
		opts.memo.flush(vgSpan)
	}
	if err != nil {
		releaseLists(ar, lists)
		return nil, err
	}

	// Add the driver (Steps 2–3 of Fig. 10) and filter. The survivors are
	// copied into a plain slice — never pool-backed — because they escape
	// to the caller.
	var out []vgCand
	for _, c := range lists[t.Root()] {
		if c.pol != 0 {
			continue // inverted signal at the sinks
		}
		if opts.noise && t.DriverResistance*c.down > c.ns {
			continue // eq. 11 violated at the source gate
		}
		c.q -= t.DriverDelay + t.DriverResistance*c.load
		out = append(out, c)
	}
	ar.put(lists[t.Root()])
	lists[t.Root()] = nil
	out, err = pruneVG(out, opts)
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].cost != out[j].cost {
			return out[i].cost < out[j].cost
		}
		return out[i].q > out[j].q
	})
	return out, nil
}

// runVGSerial is the single-goroutine bottom-up walk over order — the
// full postorder for a from-scratch run, or a memoized run's compute set
// (children always before parents either way).
func runVGSerial(t *rctree.Tree, lib *buffers.Library, opts vgOptions, lists [][]vgCand, order []rctree.NodeID) error {
	for _, v := range order {
		if err := computeNode(t, lib, opts, v, lists); err != nil {
			return err
		}
	}
	return nil
}

// releaseLists returns every still-owned candidate list to the arena (the
// error path: a failed run leaves finished subtrees behind).
func releaseLists(ar *candArena, lists [][]vgCand) {
	for i, l := range lists {
		if l != nil {
			ar.put(l)
			lists[i] = nil
		}
	}
}

// computeNode performs the dynamic program's work for one tree node:
// build the node's candidate list from its children's finished lists
// (Steps 1–5 of Fig. 11), prune, and charge the parent wire. It is the
// single code path shared by the serial walk and the parallel scheduler —
// the computation depends only on the children's lists, never on
// evaluation order, which is what makes parallel results bit-identical to
// serial ones.
//
// List ownership: the node consumes (and releases to the arena) its
// children's lists and owns its own list until its parent consumes it; on
// error, every list the node still owns has been released.
func computeNode(t *rctree.Tree, lib *buffers.Library, opts vgOptions, v rctree.NodeID, lists [][]vgCand) error {
	st := opts.stats
	ar := opts.arena
	st.nodes++
	// The budget gate for the whole dynamic program: one context check
	// per node, plus candidate-count checks below wherever a list can
	// grow.
	if err := opts.budget.Check(); err != nil {
		return err
	}
	node := t.Node(v)
	var list []vgCand
	switch {
	case node.Kind == rctree.Sink:
		st.generated++
		list = append(ar.get(1), vgCand{
			load: node.Cap,
			q:    node.RAT,
			down: 0,
			ns:   node.NoiseMargin,
			pol:  0,
		})
	case len(node.Children) == 1:
		// Adopt the child's list wholesale: it is dead once the parent
		// runs, so the chain node extends it in place (no copy).
		c := node.Children[0]
		list, lists[c] = lists[c], nil
	case len(node.Children) == 2:
		l, r := node.Children[0], node.Children[1]
		var merged []vgCand
		var err error
		if opts.fastMergeOK() {
			merged, err = lishiMerge(lists[l], lists[r], opts)
		} else {
			merged, err = mergeVG(lists[l], lists[r], opts)
		}
		ar.put(lists[l])
		ar.put(lists[r])
		lists[l], lists[r] = nil, nil
		if err != nil {
			ar.put(merged)
			return err
		}
		list = merged
	default:
		return fmt.Errorf("core: internal node %d has no children", v)
	}

	// Step 5: consider inserting each buffer type at v.
	if node.BufferOK && v != t.Root() {
		list = insertBuffers(v, list, lib, opts)
	}

	list, err := pruneVG(list, opts)
	if err != nil {
		ar.put(list)
		return err
	}
	if err := opts.budget.CheckCandidates(len(list)); err != nil {
		ar.put(list)
		return err
	}

	// Step 6: charge the parent wire, once per available width. The
	// coupling current I_w is a sidewall quantity and does not change
	// with width; the resistance drops and the ground capacitance
	// grows, which is why widening is itself a noise fix.
	if v != t.Root() {
		w := node.Wire
		iw := opts.params.WireCurrent(w)
		widths := opts.widths
		if len(widths) == 0 {
			widths = oneWidth
		}
		if len(widths) == 1 && widths[0] == 1 {
			// The common no-sizing case charges the wire in place: same
			// arithmetic, in the same order, as the sized loop below with
			// wd == 1 — just without a second list.
			for i := range list {
				c := &list[i]
				c.q -= w.R * (w.C/2 + c.load)
				c.load += w.C
				c.ns -= w.R * (c.down + iw/2)
				c.down += iw
			}
		} else {
			sized := ar.get(len(list) * len(widths))
			for _, c := range list {
				for _, wd := range widths {
					r, cw := opts.wireVariant(w, wd)
					nc := c
					nc.q -= r * (cw/2 + c.load)
					nc.load += cw
					nc.ns -= r * (c.down + iw/2)
					nc.down += iw
					if wd != 1 {
						nc.sol = &solLink{node: v, width: wd, isWidth: true, prev: [2]*solLink{c.sol, nil}}
					}
					sized = append(sized, nc)
				}
			}
			st.generated += int64(len(sized) - len(list))
			ar.put(list)
			list = sized
			list, err = pruneVG(list, opts)
			if err != nil {
				ar.put(list)
				return err
			}
		}
		if err := opts.budget.CheckCandidates(len(list)); err != nil {
			ar.put(list)
			return err
		}
	}
	st.list(len(list))
	if opts.memo != nil {
		opts.memo.store(t, v, list)
	}
	lists[v] = list
	return nil
}

// oneWidth is the default (no sizing) width set.
var oneWidth = []float64{1}

// insertBuffers appends buffered candidates at node v to list: for each
// buffer type (and, in count-indexed mode, each resulting buffer count and
// each parity) the candidate producing the largest post-buffer slack,
// subject to the noise constraint R_b·I(v) ≤ NS(v) when noise is enforced
// — the boldface modification of Fig. 11, Step 5. The appended candidates
// are emitted in a deterministic total order — (cost, load, q, buffer
// index, parity) — never map order, so repeated runs and parallel
// schedules see byte-identical lists.
func insertBuffers(v rctree.NodeID, list []vgCand, lib *buffers.Library, opts vgOptions) []vgCand {
	type key struct {
		buf  int
		pol  uint8
		cost int
	}
	best := map[key]vgCand{}
	for bi, b := range lib.Buffers {
		for _, c := range list {
			if opts.noise && b.R*c.down > c.ns {
				continue // inserting here would violate downstream noise
			}
			if opts.countIndexed && opts.maxBuffers > 0 && c.cost+b.Cost() > opts.maxBuffers {
				continue
			}
			q := c.q - b.Delay(c.load)
			k := key{buf: bi, pol: c.pol}
			if b.Inverting {
				k.pol ^= 1
			}
			if opts.countIndexed {
				k.cost = c.cost + b.Cost()
			}
			// Acceptance is value-canonical: on an exact slack tie the
			// cheaper (then smaller) solution wins, never the one that
			// happened to be scanned first. The classic and Li–Shi merges
			// emit candidates in different orders, so a first-wins rule
			// would make the selected cost/nbuf depend on the engine.
			cur, ok := best[k]
			better := !ok || q > cur.q
			if !better && q == cur.q {
				nc := c.cost + b.Cost()
				better = nc < cur.cost || (nc == cur.cost && c.nbuf+1 < cur.nbuf)
			}
			if better {
				best[k] = vgCand{
					load: b.Cin,
					q:    q,
					down: 0,
					ns:   b.NoiseMargin,
					nbuf: c.nbuf + 1,
					cost: c.cost + b.Cost(),
					pol:  k.pol,
					sol:  &solLink{node: v, buf: b, prev: [2]*solLink{c.sol, nil}},
				}
			}
		}
	}
	if len(best) == 0 {
		return list
	}
	keys := make([]key, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := best[keys[i]], best[keys[j]]
		if a.cost != b.cost {
			return a.cost < b.cost
		}
		if a.load != b.load {
			return a.load < b.load
		}
		if a.q != b.q {
			return a.q > b.q
		}
		if keys[i].buf != keys[j].buf {
			return keys[i].buf < keys[j].buf
		}
		return keys[i].pol < keys[j].pol
	})
	for _, k := range keys {
		list = append(list, best[k])
	}
	if opts.stats != nil {
		opts.stats.generated += int64(len(best))
	}
	return list
}

// mergeVG combines the candidate lists of two sibling branches: loads and
// currents add, slacks take the minimum (Steps 3–4 of Fig. 11). Only
// parity-compatible pairs merge. The pruned per-branch frontiers are small,
// so the full cross product is used; pruning immediately follows in the
// caller. The cross product is where multi-buffer candidate growth
// compounds, so the budget is consulted as the output grows. The output
// list comes from the arena; on error the caller releases it.
func mergeVG(left, right []vgCand, opts vgOptions) ([]vgCand, error) {
	out := opts.arena.get(len(left) + len(right))
	tick := 0
	for _, a := range left {
		for _, b := range right {
			// Budget gate at stride boundaries: candidate cap and context
			// together, so the common case costs two integer ops.
			if tick++; tick >= 4096 {
				tick = 0
				if err := opts.budget.CheckCandidates(len(out)); err != nil {
					return out, err
				}
			}
			if a.pol != b.pol {
				continue
			}
			if opts.countIndexed && opts.maxBuffers > 0 && a.cost+b.cost > opts.maxBuffers {
				continue
			}
			out = append(out, mergedCand(a, b))
		}
	}
	if err := opts.budget.CheckCandidates(len(out)); err != nil {
		return out, err
	}
	if opts.stats != nil {
		opts.stats.merged += int64(len(out))
		opts.stats.generated += int64(len(out))
	}
	return out, nil
}

// mergedCand combines one candidate from each sibling branch — a from
// the left child, b from the right: loads and currents add, slacks take
// the minimum (Steps 3–4 of Fig. 11). The single shared construction for
// every merge implementation (classic cross product and the Li–Shi
// frontier walk), so engines cannot drift in arithmetic or in solution
// linking.
func mergedCand(a, b vgCand) vgCand {
	var sol *solLink
	switch {
	case a.sol == nil:
		sol = b.sol
	case b.sol == nil:
		sol = a.sol
	default:
		// Junction link: reuse a's head with both prevs via a
		// synthetic link carrying a's head assignment would double
		// count; instead create a link that repeats a's head
		// assignment — maps deduplicate identical (node, buf)
		// pairs, so repeating is safe and keeps links binary.
		sol = &solLink{
			node: a.sol.node, buf: a.sol.buf,
			width: a.sol.width, isWidth: a.sol.isWidth,
			prev: [2]*solLink{a.sol, b.sol},
		}
	}
	return vgCand{
		load: a.load + b.load,
		q:    math.Min(a.q, b.q),
		down: a.down + b.down,
		ns:   math.Min(a.ns, b.ns),
		nbuf: a.nbuf + b.nbuf,
		cost: a.cost + b.cost,
		pol:  a.pol,
		sol:  sol,
	}
}

// pruneVG removes inferior candidates (Step 7 of Fig. 11): within each
// (parity[, buffer count]) group, candidate α1 is inferior to α2 iff
// C1 ≥ C2 and q1 ≤ q2 — the paper's rule — and additionally, in safe
// pruning mode, I1 ≥ I2 and NS1 ≤ NS2, which restores exactness for
// multi-buffer libraries at the cost of longer lists (see the discussion
// in Section IV-C). Safe pruning is quadratic in the group size, so the
// dominance scan honors the budget's context.
//
// The scan works entirely in place: one deterministic total-order sort
// groups the list — (buffer count,) parity, load ascending, slack
// descending, then the remaining fields as tiebreakers — and survivors are
// compacted into the front of the same backing array. No maps, no
// per-group slices, no allocation; the returned slice aliases the input.
func pruneVG(list []vgCand, opts vgOptions) ([]vgCand, error) {
	if len(list) <= 1 {
		return list, nil
	}
	sort.Slice(list, func(i, j int) bool {
		a, b := &list[i], &list[j]
		if opts.countIndexed && a.cost != b.cost {
			return a.cost < b.cost
		}
		if a.pol != b.pol {
			return a.pol < b.pol
		}
		if a.load != b.load {
			return a.load < b.load
		}
		if a.q != b.q {
			return a.q > b.q
		}
		// Total-order tiebreakers: dominance-relevant fields first, so
		// equal (load, q) candidates survive in a deterministic order.
		if a.down != b.down {
			return a.down < b.down
		}
		if a.ns != b.ns {
			return a.ns > b.ns
		}
		if a.cost != b.cost {
			return a.cost < b.cost
		}
		return a.nbuf < b.nbuf
	})

	sameGroup := func(a, b *vgCand) bool {
		if a.pol != b.pol {
			return false
		}
		return !opts.countIndexed || a.cost == b.cost
	}

	origLen := len(list)
	out := list[:0]
	pacer := opts.budget.Pacer(1024)
	for i := 0; i < len(list); {
		j := i + 1
		for j < len(list) && sameGroup(&list[i], &list[j]) {
			j++
		}
		groupStart := len(out)
		if !opts.safePruning {
			bestQ := math.Inf(-1)
			for k := i; k < j; k++ {
				if c := list[k]; c.q > bestQ {
					out = append(out, c)
					bestQ = c.q
				}
			}
		} else {
			for k := i; k < j; k++ {
				if err := pacer.Tick(); err != nil {
					return list[:origLen], err
				}
				c := list[k]
				dominated := false
				for gi := groupStart; gi < len(out); gi++ {
					g := &out[gi]
					if g.load <= c.load && g.q >= c.q && g.down <= c.down && g.ns >= c.ns {
						dominated = true
						break
					}
				}
				if !dominated {
					out = append(out, c)
				}
			}
		}
		i = j
	}
	if opts.stats != nil {
		opts.stats.pruned += int64(origLen - len(out))
	}
	return out, nil
}
