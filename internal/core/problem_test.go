package core

import (
	"context"
	"errors"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/guard"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
)

// TestOptimizeMatchesLegacyEntryPoints is the api_redesign equivalence
// gate: for every legacy entry point, calling Optimize with the
// corresponding Problem produces bit-identical results (slack bits, cost,
// placements, widths) across the differential corpus. The wrappers
// delegate to Optimize, so this pins the objective/bound dispatch — a
// wrong branch in Optimize cannot hide behind "both sides changed".
func TestOptimizeMatchesLegacyEntryPoints(t *testing.T) {
	n := 16
	if testing.Short() {
		n = 8
	}
	nets, lib, p := diffCorpus(t, n)
	k := 8

	cases := []struct {
		name    string
		problem func(tr *rctree.Tree) Problem
		opts    Options
		legacy  func(tr *rctree.Tree, opts Options) (*Result, error)
	}{
		{
			name: "BuffOpt",
			problem: func(tr *rctree.Tree) Problem {
				return Problem{Tree: tr, Library: lib, Params: p, Objective: MaxSlackNoise}
			},
			legacy: func(tr *rctree.Tree, opts Options) (*Result, error) {
				return BuffOpt(tr, lib, p, opts)
			},
		},
		{
			name: "BuffOptK",
			problem: func(tr *rctree.Tree) Problem {
				return Problem{Tree: tr, Library: lib, Params: p, Objective: MaxSlackNoise, MaxBuffers: &k}
			},
			legacy: func(tr *rctree.Tree, opts Options) (*Result, error) {
				return BuffOptK(tr, lib, p, k, opts)
			},
		},
		{
			name: "DelayOpt",
			problem: func(tr *rctree.Tree) Problem {
				return Problem{Tree: tr, Library: lib, Objective: MaxSlack}
			},
			legacy: func(tr *rctree.Tree, opts Options) (*Result, error) {
				return DelayOpt(tr, lib, opts)
			},
		},
		{
			name: "DelayOptK",
			problem: func(tr *rctree.Tree) Problem {
				return Problem{Tree: tr, Library: lib, Objective: MaxSlack, MaxBuffers: &k}
			},
			legacy: func(tr *rctree.Tree, opts Options) (*Result, error) {
				return DelayOptK(tr, lib, k, opts)
			},
		},
		{
			name: "BuffOptMinBuffers",
			problem: func(tr *rctree.Tree) Problem {
				return Problem{Tree: tr, Library: lib, Params: p, Objective: MinBuffersNoise}
			},
			legacy: func(tr *rctree.Tree, opts Options) (*Result, error) {
				return BuffOptMinBuffers(tr, lib, p, opts)
			},
		},
		{
			name: "BuffOpt/safe-pruning",
			problem: func(tr *rctree.Tree) Problem {
				return Problem{Tree: tr, Library: lib, Params: p, Objective: MaxSlackNoise}
			},
			opts: Options{SafePruning: true},
			legacy: func(tr *rctree.Tree, opts Options) (*Result, error) {
				return BuffOpt(tr, lib, p, opts)
			},
		},
		{
			name: "BuffOpt/sizing",
			problem: func(tr *rctree.Tree) Problem {
				return Problem{Tree: tr, Library: lib, Params: p, Objective: MaxSlackNoise}
			},
			opts: Options{Sizing: &Sizing{Widths: []float64{1, 2, 4}}},
			legacy: func(tr *rctree.Tree, opts Options) (*Result, error) {
				return BuffOpt(tr, lib, p, opts)
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			profNets := nets
			if tc.opts.Sizing != nil && len(profNets) > 6 {
				profNets = profNets[:6]
			}
			for i, tr := range profNets {
				want, wantErr := tc.legacy(tr, tc.opts)
				got, gotErr := Optimize(context.Background(), tc.problem(tr), tc.opts)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("net %d: legacy err %v, Optimize err %v", i, wantErr, gotErr)
				}
				if wantErr != nil {
					continue
				}
				wb, gb := resultJSON(t, want), resultJSON(t, got)
				if string(wb) != string(gb) {
					t.Fatalf("net %d: results differ:\nlegacy   %s\noptimize %s", i, wb, gb)
				}
			}
		})
	}
}

// TestEntryPointValidationTaxonomy pins the satellite fix: every
// entry-point validation failure wraps guard.ErrInvalidInput, so the
// server maps it to 400, not 500.
func TestEntryPointValidationTaxonomy(t *testing.T) {
	tr, lib, p := noisySegmentedY(t, 2), lib3(), noise.Params{CouplingRatio: 0.7, Slope: 7.2e9}
	bad := -1
	cases := []struct {
		name string
		call func() error
	}{
		{"DelayOptK negative k", func() error { _, err := DelayOptK(tr, lib, -1, Options{}); return err }},
		{"BuffOptK negative k", func() error { _, err := BuffOptK(tr, lib, p, -1, Options{}); return err }},
		{"Optimize negative bound", func() error {
			_, err := Optimize(context.Background(), Problem{Tree: tr, Library: lib, Objective: MaxSlack, MaxBuffers: &bad}, Options{})
			return err
		}},
		{"nil tree", func() error {
			_, err := Optimize(context.Background(), Problem{Library: lib, Objective: MaxSlack}, Options{})
			return err
		}},
		{"nil library", func() error {
			_, err := Optimize(context.Background(), Problem{Tree: tr, Objective: MaxSlack}, Options{})
			return err
		}},
		{"empty library", func() error {
			_, err := Optimize(context.Background(), Problem{Tree: tr, Library: &buffers.Library{}, Objective: MaxSlack}, Options{})
			return err
		}},
		{"unknown objective", func() error {
			_, err := Optimize(context.Background(), Problem{Tree: tr, Library: lib, Objective: Objective(99)}, Options{})
			return err
		}},
		{"MinBuffersNoise with bound", func() error {
			k := 4
			_, err := Optimize(context.Background(), Problem{Tree: tr, Library: lib, Params: p, Objective: MinBuffersNoise, MaxBuffers: &k}, Options{})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, guard.ErrInvalidInput) {
				t.Fatalf("error %v is not guard.ErrInvalidInput; the server would answer 500, not 400", err)
			}
		})
	}
}

// TestOptimizeHonorsContext: a canceled ctx reaches the inner loops even
// with no caller-provided budget.
func TestOptimizeHonorsContext(t *testing.T) {
	tr, lib := noisySegmentedY(t, 2), lib3()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Optimize(ctx, Problem{Tree: tr, Library: lib, Objective: MaxSlack}, Options{})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("Optimize under canceled ctx: %v, want guard.ErrCanceled", err)
	}
}

// ParseObjective round-trips every named objective and rejects junk with
// the invalid-input class.
func TestObjectiveParseRoundTrip(t *testing.T) {
	for o := MaxSlack; o <= MinBuffersNoise; o++ {
		got, err := ParseObjective(o.String())
		if err != nil || got != o {
			t.Errorf("ParseObjective(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := ParseObjective("bogus"); !errors.Is(err, guard.ErrInvalidInput) {
		t.Errorf("ParseObjective junk error = %v", err)
	}
}

// hashProblem is the stability suite's base problem builder: a small
// two-sink net with explicit aggressors on one wire, so every hashed
// field is exercised.
func hashTree(driverR, driverT float64, mutate func(*rctree.Tree)) *rctree.Tree {
	tr := rctree.New("base", driverR, driverT)
	v1, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 1, C: 2, Length: 3}, true)
	tr.AddSink(v1, rctree.Wire{R: 4, C: 5, Length: 6, Aggressors: []rctree.Coupling{{Ratio: 0.5, Slope: 7e9}}},
		"s1", 0.1, 1.0, 0.8)
	tr.AddSink(v1, rctree.Wire{R: 7, C: 8, Length: 9}, "s2", 0.2, 2.0, 0.9)
	if mutate != nil {
		mutate(tr)
	}
	return tr
}

func hashProblem(tr *rctree.Tree) Problem {
	return Problem{
		Tree:      tr,
		Library:   lib3(),
		Params:    noise.Params{CouplingRatio: 0.7, Slope: 7.2e9},
		Objective: MinBuffersNoise,
	}
}

func TestCanonicalHashStability(t *testing.T) {
	base := hashProblem(hashTree(10, 0.5, nil)).CanonicalHash()

	t.Run("deterministic", func(t *testing.T) {
		if got := hashProblem(hashTree(10, 0.5, nil)).CanonicalHash(); got != base {
			t.Error("same problem hashed differently across calls")
		}
	})

	t.Run("names and coordinates excluded", func(t *testing.T) {
		tr := rctree.New("RENAMED", 10, 0.5)
		v1, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 1, C: 2, Length: 3}, true)
		tr.Node(v1).X, tr.Node(v1).Y = 42, 43
		tr.AddSink(v1, rctree.Wire{R: 4, C: 5, Length: 6, Aggressors: []rctree.Coupling{{Ratio: 0.5, Slope: 7e9}}},
			"other1", 0.1, 1.0, 0.8)
		tr.AddSink(v1, rctree.Wire{R: 7, C: 8, Length: 9}, "other2", 0.2, 2.0, 0.9)
		if got := hashProblem(tr).CanonicalHash(); got != base {
			t.Error("renamed/replaced labels changed the hash; labels must be excluded")
		}
	})

	t.Run("node numbering excluded", func(t *testing.T) {
		// Same topology and per-parent child order, different global
		// creation order (hence different node IDs): build both sinks'
		// parent chains interleaved. Here: two internals under the root,
		// each with one sink, created a-then-b versus sinks b-then-a.
		build := func(order []int) *rctree.Tree {
			tr := rctree.New("n", 10, 0.5)
			a, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 1, C: 1, Length: 1}, true)
			b, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 2, C: 2, Length: 2}, true)
			parents := []rctree.NodeID{a, b}
			wires := []rctree.Wire{{R: 3, C: 3, Length: 3}, {R: 4, C: 4, Length: 4}}
			for _, i := range order {
				tr.AddSink(parents[i], wires[i], "s", 0.1, 1, 0.8)
			}
			return tr
		}
		h1 := hashProblem(build([]int{0, 1})).CanonicalHash()
		h2 := hashProblem(build([]int{1, 0})).CanonicalHash()
		if h1 != h2 {
			t.Error("node renumbering changed the hash; IDs must be excluded")
		}
	})

	t.Run("sibling order included", func(t *testing.T) {
		// Swapping the order of children under one parent changes the
		// branch-merge order, which can steer tie-breaking: distinct key.
		tr := rctree.New("base", 10, 0.5)
		v1, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 1, C: 2, Length: 3}, true)
		tr.AddSink(v1, rctree.Wire{R: 7, C: 8, Length: 9}, "s2", 0.2, 2.0, 0.9)
		tr.AddSink(v1, rctree.Wire{R: 4, C: 5, Length: 6, Aggressors: []rctree.Coupling{{Ratio: 0.5, Slope: 7e9}}},
			"s1", 0.1, 1.0, 0.8)
		if got := hashProblem(tr).CanonicalHash(); got == base {
			t.Error("sibling swap kept the hash; merge order is output-affecting")
		}
	})

	t.Run("parasitic perturbations included", func(t *testing.T) {
		perturb := map[string]func(*rctree.Tree){
			"wire R":       func(tr *rctree.Tree) { tr.Node(1).Wire.R += 1e-12 },
			"wire C":       func(tr *rctree.Tree) { tr.Node(1).Wire.C += 1e-12 },
			"wire length":  func(tr *rctree.Tree) { tr.Node(1).Wire.Length += 1e-12 },
			"sink cap":     func(tr *rctree.Tree) { tr.Node(2).Cap += 1e-12 },
			"sink RAT":     func(tr *rctree.Tree) { tr.Node(2).RAT += 1e-12 },
			"noise margin": func(tr *rctree.Tree) { tr.Node(2).NoiseMargin += 1e-12 },
			"buffer site":  func(tr *rctree.Tree) { tr.Node(1).BufferOK = false },
			"aggr ratio":   func(tr *rctree.Tree) { tr.Node(2).Wire.Aggressors[0].Ratio += 1e-12 },
			"aggr slope":   func(tr *rctree.Tree) { tr.Node(2).Wire.Aggressors[0].Slope += 1 },
			"aggr nil vs empty": func(tr *rctree.Tree) {
				tr.Node(3).Wire.Aggressors = []rctree.Coupling{}
			},
		}
		for name, f := range perturb {
			if got := hashProblem(hashTree(10, 0.5, f)).CanonicalHash(); got == base {
				t.Errorf("%s perturbation kept the hash", name)
			}
		}
		if got := hashProblem(hashTree(11, 0.5, nil)).CanonicalHash(); got == base {
			t.Error("driver resistance perturbation kept the hash")
		}
		if got := hashProblem(hashTree(10, 0.6, nil)).CanonicalHash(); got == base {
			t.Error("driver delay perturbation kept the hash")
		}
	})

	t.Run("library included", func(t *testing.T) {
		p := hashProblem(hashTree(10, 0.5, nil))
		libs := map[string]func(*buffers.Library){
			"Cin":    func(l *buffers.Library) { l.Buffers[0].Cin += 1e-12 },
			"R":      func(l *buffers.Library) { l.Buffers[0].R += 1e-12 },
			"T":      func(l *buffers.Library) { l.Buffers[0].T += 1e-12 },
			"margin": func(l *buffers.Library) { l.Buffers[0].NoiseMargin += 1e-12 },
			"name":   func(l *buffers.Library) { l.Buffers[0].Name += "x" },
			"weight": func(l *buffers.Library) { l.Buffers[0].Weight = 7 },
			"drop":   func(l *buffers.Library) { l.Buffers = l.Buffers[:len(l.Buffers)-1] },
		}
		for name, f := range libs {
			l := &buffers.Library{Buffers: append([]buffers.Buffer(nil), lib3().Buffers...)}
			f(l)
			p.Library = l
			if got := p.CanonicalHash(); got == base {
				t.Errorf("library %s perturbation kept the hash", name)
			}
		}
	})

	t.Run("objective and bound included", func(t *testing.T) {
		p := hashProblem(hashTree(10, 0.5, nil))
		p.Objective = MaxSlackNoise
		h1 := p.CanonicalHash()
		if h1 == base {
			t.Error("objective change kept the hash")
		}
		k := 8
		p.MaxBuffers = &k
		h2 := p.CanonicalHash()
		if h2 == h1 {
			t.Error("adding a count bound kept the hash")
		}
		k2 := 9
		p.MaxBuffers = &k2
		if p.CanonicalHash() == h2 {
			t.Error("changing the count bound kept the hash")
		}
	})

	t.Run("params ignored iff noise-free", func(t *testing.T) {
		p := hashProblem(hashTree(10, 0.5, nil))
		p.Objective = MaxSlack
		h1 := p.CanonicalHash()
		p.Params.CouplingRatio = 0.2
		if p.CanonicalHash() != h1 {
			t.Error("MaxSlack hash depends on noise params it never reads")
		}
		p.Objective = MinBuffersNoise
		h2 := p.CanonicalHash()
		p.Params.Slope = 1e9
		if p.CanonicalHash() == h2 {
			t.Error("noise-objective hash ignored a params change")
		}
	})
}
