package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"buffopt/internal/buffers"
	"buffopt/internal/faultinject"
	"buffopt/internal/guard"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

// injectorFor builds a rate-1 injector for a single fault, so the test's
// one request is guaranteed to draw it.
func injectorFor(t *testing.T, f faultinject.Fault, delay time.Duration) *faultinject.Injector {
	t.Helper()
	inj, err := faultinject.New(faultinject.Config{
		Seed:      1,
		Rates:     map[faultinject.Fault]float64{f: 1},
		SlowDelay: delay,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func faultTree(t *testing.T) *rctree.Tree {
	t.Helper()
	tr := buildNoisyY(t)
	if _, err := segment.ByCount(tr, 40); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestSolveAbsorbsSpuriousCancel: an injected mid-flight cancellation
// fails exactly one tier with ErrCanceled while the real context stays
// live, and the ladder answers from the next tier instead of aborting.
func TestSolveAbsorbsSpuriousCancel(t *testing.T) {
	inj := injectorFor(t, faultinject.FaultCancel, 0)
	ctx := faultinject.WithPlan(context.Background(), inj.Assign())

	res, err := Solve(ctx, faultTree(t), lib2(), unitParams, Options{})
	if err != nil {
		t.Fatalf("Solve aborted on an injected cancel: %v", err)
	}
	// Later tiers may hit their own (tighter) caps; the injected cancel
	// must be the first rung's failure.
	if !res.Degraded || len(res.TierErrors) == 0 {
		t.Fatalf("Degraded = %v, TierErrors = %v, want a degradation step", res.Degraded, res.TierErrors)
	}
	te := res.TierErrors[0]
	if te.Tier != TierExact || !errors.Is(te, guard.ErrCanceled) || !errors.Is(te, faultinject.ErrInjected) {
		t.Fatalf("TierErrors[0] = %v, want exact tier failing with injected ErrCanceled", te)
	}
	if got := inj.Consumed(faultinject.FaultCancel); got != 1 {
		t.Fatalf("consumed = %d, want exactly 1", got)
	}
}

// TestSolveCatchesMalformedResult: an injected result corruption (NaN
// slack, the undetected-malformed-candidate scenario) is caught by the
// post-condition gate, classified "internal", and degraded past.
func TestSolveCatchesMalformedResult(t *testing.T) {
	inj := injectorFor(t, faultinject.FaultMalformed, 0)
	ctx := faultinject.WithPlan(context.Background(), inj.Assign())

	res, err := Solve(ctx, faultTree(t), lib2(), unitParams, Options{})
	if err != nil {
		t.Fatalf("Solve aborted on an injected corruption: %v", err)
	}
	if !res.Degraded || len(res.TierErrors) == 0 {
		t.Fatalf("Degraded = %v, TierErrors = %v, want a degradation step", res.Degraded, res.TierErrors)
	}
	te := res.TierErrors[0]
	if te.Tier != TierExact || !errors.Is(te, guard.ErrInternal) {
		t.Fatalf("TierErrors[0] = %v, want exact tier failing with ErrInternal", te)
	}
	if guard.Class(te.Err) != "internal" {
		t.Fatalf("class = %q, want internal", guard.Class(te.Err))
	}
	// The answer that did come back is clean.
	if math.IsNaN(res.Slack) || math.IsInf(res.Slack, 0) {
		t.Fatalf("degraded answer still poisoned: slack %g", res.Slack)
	}
}

// TestSolveSlowFaultRespectsDeadline: an injected slow solve burns its
// delay when there is time, and yields to the deadline when there is not.
func TestSolveSlowFaultRespectsDeadline(t *testing.T) {
	// No deadline: the delay is simply taken.
	inj := injectorFor(t, faultinject.FaultSlow, 30*time.Millisecond)
	ctx := faultinject.WithPlan(context.Background(), inj.Assign())
	start := time.Now()
	res, err := Solve(ctx, faultTree(t), lib2(), unitParams, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("slow fault not injected: solve took %v", elapsed)
	}
	if res.Degraded {
		t.Fatalf("slow fault alone should not degrade, got tier %v", res.Tier)
	}

	// Tight deadline: the sleep yields at the deadline and the ladder
	// still answers (unbuffered analysis at worst).
	inj = injectorFor(t, faultinject.FaultSlow, 10*time.Second)
	dctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	dctx = faultinject.WithPlan(dctx, inj.Assign())
	start = time.Now()
	res, err = Solve(dctx, faultTree(t), lib2(), unitParams, Options{})
	if err != nil {
		t.Fatalf("Solve under deadline returned nothing: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("slow fault ignored the deadline: %v", elapsed)
	}
	if res.Result == nil || res.Tree == nil {
		t.Fatal("no usable result after deadline-bounded slow solve")
	}
}

func TestValidateResult(t *testing.T) {
	good := &Result{
		Solution: &Solution{Tree: rctree.New("t", 1, 0), Buffers: map[rctree.NodeID]buffers.Buffer{}},
		Slack:    1,
	}
	if err := validateResult(good); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
	cases := []*Result{
		nil,
		{},
		{Solution: &Solution{}},
		{Solution: good.Solution, Slack: math.NaN()},
		{Solution: good.Solution, Slack: math.Inf(1)},
		{Solution: good.Solution, Cost: -1},
	}
	for i, r := range cases {
		if err := validateResult(r); !errors.Is(err, guard.ErrInternal) {
			t.Errorf("case %d: validateResult = %v, want ErrInternal", i, err)
		}
	}
}
