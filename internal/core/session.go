package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"buffopt/internal/cache"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
	"sync"
)

// Session is one incremental-optimization conversation: a Problem whose
// tree evolves through edit streams, plus the subtree memo table that
// makes each re-solve O(depth) instead of O(n). Create with NewSession,
// re-solve with Delta. All methods are safe for concurrent use; edits to
// one session serialize.
//
// The session owns a private clone of the problem tree — callers can
// never reach in and desynchronize the incremental subtree hashes from
// the topology. The objective, library, and noise parameters are pinned
// at creation; the per-call Options (engine, workers, budget, safe
// pruning, sizing) may vary freely between Delta calls, because they are
// part of the memo key where they matter.
type Session struct {
	mu     sync.Mutex
	p      Problem
	memo   *memoTable
	hashes []rctree.SubtreeHash
	stats  SessionStats
}

// SessionConfig bounds one session's memo table.
type SessionConfig struct {
	// MemoEntries caps resident subtree entries; 0 means unlimited.
	MemoEntries int
	// MemoBytes caps the memo's resident bytes; 0 means unlimited. An
	// evicted subtree is simply recomputed on its next use — eviction
	// affects speed, never results.
	MemoBytes int64
	// Namespace prefixes the memo's obs counters ("<ns>.cache.*");
	// empty means "eco".
	Namespace string
}

// SessionStats is a session's cumulative ledger. Lookups == Reused +
// Resolved holds after every successful Delta (a failed run may leave
// gated lookups without a matching store).
type SessionStats struct {
	Deltas   int64 // successful Delta calls
	Edits    int64 // edits applied (failed edit batches apply nothing)
	Lookups  int64 // subtree memo consultations
	Reused   int64 // subtrees answered from the memo
	Resolved int64 // subtrees computed and stored
}

// NewSession pins a Problem and builds its memo state. The tree must be
// valid and binary (Delta re-solves keep it that way; grafts that would
// break binariness are rejected). Validation failures wrap
// guard.ErrInvalidInput.
func NewSession(p Problem, cfg SessionConfig) (*Session, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := p.Tree.Validate(); err != nil {
		return nil, invalid(err)
	}
	if !p.Tree.IsBinary() {
		return nil, invalid(errors.New("core: session tree must be binary; call Binarize first"))
	}
	ns := cfg.Namespace
	if ns == "" {
		ns = "eco"
	}
	p.Tree = p.Tree.Clone()
	return &Session{
		p: p,
		memo: cache.New(cache.Config[*subtreeMemo]{
			MaxEntries: cfg.MemoEntries,
			MaxBytes:   cfg.MemoBytes,
			Size:       subtreeMemoSize,
			// No Clone: entries are immutable by construction (stored
			// copies are private, loads copy into the run's arena), so
			// sharing the stored value is safe and allocation-free.
			Namespace: ns,
		}),
		hashes: p.Tree.SubtreeHashes(),
	}, nil
}

// Tree returns a private clone of the session's current tree (after all
// applied edits) — the from-scratch reference the differential suite
// solves for comparison.
func (s *Session) Tree() *rctree.Tree {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.p.Tree.Clone()
}

// Problem returns the session's current problem with a private tree
// clone.
func (s *Session) Problem() Problem {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.p
	p.Tree = p.Tree.Clone()
	return p
}

// Stats returns the session's cumulative ledger.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// MemoStats exposes the memo table's cache books (hits, evictions,
// resident bytes) for accounting and tests.
func (s *Session) MemoStats() cache.Stats { return s.memo.Stats() }

// MemoBytes returns the memo's resident byte total — what a server
// charges against a per-session byte budget.
func (s *Session) MemoBytes() int64 { return s.memo.Bytes() }

// Purge drops every memo entry (counted as evictions, so the cache books
// stay exact) and returns how many were dropped. The session remains
// usable; the next Delta recomputes from scratch.
func (s *Session) Purge() int { return s.memo.Purge() }

// EditOp enumerates the session edit operations.
type EditOp uint8

const (
	// EditSetCap sets a sink's input capacitance to Value (F).
	EditSetCap EditOp = iota
	// EditSetRAT sets a sink's required arrival time to Value (s).
	EditSetRAT
	// EditSetWire replaces a non-root node's parent wire with Wire
	// (resize, re-route, or aggressor change).
	EditSetWire
	// EditGraft attaches a copy of the tree Sub below Node through Wire;
	// Sub's source becomes an internal buffer site. Rejected when Node
	// already has two children (the DP needs binary trees).
	EditGraft
	// EditPrune removes the subtree rooted at Node and renumbers the
	// survivors; memoized results relocate automatically.
	EditPrune
)

func (op EditOp) String() string {
	switch op {
	case EditSetCap:
		return "set-cap"
	case EditSetRAT:
		return "set-rat"
	case EditSetWire:
		return "set-wire"
	case EditGraft:
		return "graft"
	case EditPrune:
		return "prune"
	}
	return fmt.Sprintf("edit(%d)", uint8(op))
}

// ParseEditOp is the inverse of EditOp.String. Errors wrap
// guard.ErrInvalidInput.
func ParseEditOp(s string) (EditOp, error) {
	for op := EditSetCap; op <= EditPrune; op++ {
		if op.String() == s {
			return op, nil
		}
	}
	return 0, invalid(fmt.Errorf("core: unknown edit op %q", s))
}

// Edit is one step of an edit stream. Node addresses the session's
// current tree (IDs as renumbered by any earlier prunes in the stream).
type Edit struct {
	Op    EditOp
	Node  rctree.NodeID
	Value float64      // EditSetCap, EditSetRAT
	Wire  rctree.Wire  // EditSetWire, EditGraft
	Sub   *rctree.Tree // EditGraft; never retained (deep-copied in)
}

// applyEdit mutates t in place and returns the incrementally refreshed
// hash slice. Errors wrap guard.ErrInvalidInput; the caller discards the
// tree on error, so partial mutation is harmless.
func applyEdit(t *rctree.Tree, h []rctree.SubtreeHash, e Edit) ([]rctree.SubtreeHash, error) {
	valid := e.Node >= 0 && int(e.Node) < t.Len()
	switch e.Op {
	case EditSetCap, EditSetRAT:
		if !valid || t.Node(e.Node).Kind != rctree.Sink {
			return h, invalid(fmt.Errorf("core: %s target %d is not a sink", e.Op, e.Node))
		}
		if math.IsNaN(e.Value) || math.IsInf(e.Value, 0) || (e.Op == EditSetCap && e.Value < 0) {
			return h, invalid(fmt.Errorf("core: %s value %g invalid", e.Op, e.Value))
		}
		if e.Op == EditSetCap {
			t.Node(e.Node).Cap = e.Value
		} else {
			t.Node(e.Node).RAT = e.Value
		}
		return t.RehashPath(h, e.Node), nil
	case EditSetWire:
		if !valid || e.Node == t.Root() {
			return h, invalid(fmt.Errorf("core: set-wire target %d has no parent wire", e.Node))
		}
		w := e.Wire
		if w.R < 0 || w.C < 0 || w.Length < 0 ||
			math.IsNaN(w.R+w.C+w.Length) || math.IsInf(w.R+w.C+w.Length, 0) {
			return h, invalid(fmt.Errorf("core: set-wire parameters %+v invalid", w))
		}
		t.Node(e.Node).Wire = w
		return t.RehashPath(h, e.Node), nil
	case EditGraft:
		if !valid {
			return h, invalid(fmt.Errorf("core: graft parent %d does not exist", e.Node))
		}
		if len(t.Node(e.Node).Children) >= 2 {
			return h, invalid(fmt.Errorf("core: graft below %d would break the binary form", e.Node))
		}
		if e.Sub == nil {
			return h, invalid(errors.New("core: graft without a subtree"))
		}
		if err := e.Sub.Validate(); err != nil {
			return h, invalid(fmt.Errorf("core: graft subtree: %w", err))
		}
		if !e.Sub.IsBinary() {
			return h, invalid(errors.New("core: graft subtree must be binary"))
		}
		g, err := t.Graft(e.Node, e.Sub, e.Wire)
		if err != nil {
			return h, invalid(err)
		}
		return t.RehashSubtree(h, g), nil
	case EditPrune:
		if !valid {
			return h, invalid(fmt.Errorf("core: prune target %d does not exist", e.Node))
		}
		parent := t.Node(e.Node).Parent
		remap, err := t.Prune(e.Node)
		if err != nil {
			return h, invalid(err)
		}
		// Permute the surviving hashes through the renumbering, then
		// refresh the detachment point's path (its child count changed).
		nh := make([]rctree.SubtreeHash, t.Len())
		for old, nv := range remap {
			if nv != rctree.None {
				nh[nv] = h[old]
			}
		}
		return t.RehashPath(nh, remap[parent]), nil
	}
	return h, invalid(fmt.Errorf("core: unknown edit op %d", e.Op))
}

// DeltaResult is a Delta's answer plus its reuse ledger.
type DeltaResult struct {
	*Result
	// Reused counts subtree candidate lists served from the session
	// memo; Resolved counts lists computed (and stored) this call.
	// Reused + Resolved == Lookups, exactly.
	Reused   int64
	Resolved int64
	Lookups  int64
}

// Delta applies an edit stream to the session and re-solves, reusing
// every memoized subtree the edits did not touch — O(depth) subtree
// merges for a leaf edit instead of the full O(n) walk. The result is
// bit-identical to Optimize on the session's post-edit problem (the
// delta differential suite is the gate). Edits apply atomically: if any
// edit is invalid, the session is unchanged and the error wraps
// guard.ErrInvalidInput. A solve failure (budget, cancellation) keeps
// the applied edits — the session stays consistent and a later Delta
// with an empty edit list retries the solve.
//
// opts follows Optimize's contract; Options.Cache is ignored (the
// session's memo is the cache here).
func Delta(ctx context.Context, s *Session, edits []Edit, opts Options) (*DeltaResult, error) {
	if s == nil {
		return nil, invalid(errors.New("core: Delta on a nil session"))
	}
	engine, err := ParseEngine(opts.Engine)
	if err != nil {
		return nil, err
	}
	opts.Engine = engine
	if err := opts.Sizing.Validate(); err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	if len(edits) > 0 {
		// Copy-on-edit keeps the batch atomic: all edits land or none do.
		t := s.p.Tree.Clone()
		h := append([]rctree.SubtreeHash(nil), s.hashes...)
		for i, e := range edits {
			if h, err = applyEdit(t, h, e); err != nil {
				return nil, fmt.Errorf("core: delta edit %d (%s at node %d): %w", i, e.Op, e.Node, err)
			}
		}
		if err := t.Validate(); err != nil {
			return nil, invalid(fmt.Errorf("core: edit stream left an invalid tree: %w", err))
		}
		s.p.Tree, s.hashes = t, h
		s.stats.Edits += int64(len(edits))
	}

	run := &memoRun{table: s.memo, hashes: s.hashes}
	opts.memo = run
	opts.Budget = budgetFor(ctx, opts.Budget)
	_, sp := obs.Span(ctx, "delta")
	sp.SetAttr("objective", s.p.Objective.String())
	sp.SetAttr("engine", engine)
	defer sp.End()

	p := s.p
	var res *Result
	switch p.Objective {
	case MaxSlack:
		if p.MaxBuffers != nil {
			res, err = delayOptK(p.Tree, p.Library, *p.MaxBuffers, opts)
		} else {
			res, err = delayOpt(p.Tree, p.Library, opts)
		}
	case MaxSlackNoise:
		if p.MaxBuffers != nil {
			res, err = buffOptK(p.Tree, p.Library, p.Params, *p.MaxBuffers, opts)
		} else {
			res, err = buffOpt(p.Tree, p.Library, p.Params, opts)
		}
	default: // MinBuffersNoise; NewSession validated the objective
		res, err = buffOptMinBuffers(p.Tree, p.Library, p.Params, opts)
	}
	if err != nil {
		return nil, err
	}
	lk, ru, rs := run.counts()
	s.stats.Deltas++
	s.stats.Lookups += lk
	s.stats.Reused += ru
	s.stats.Resolved += rs
	return &DeltaResult{Result: res, Reused: ru, Resolved: rs, Lookups: lk}, nil
}
