package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"

	"buffopt/internal/buffers"
	"buffopt/internal/guard"
	"buffopt/internal/noise"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
)

// Objective selects what Optimize maximizes or minimizes. The three
// objectives correspond to the paper's problem statements: Problem 1/2
// (slack, without and with noise constraints) and Problem 3 (buffer
// weight subject to noise and timing).
type Objective uint8

const (
	// MaxSlack maximizes the slack at the source with no noise
	// constraints — Van Ginneken's algorithm with the Lillis extensions,
	// the Section V "DelayOpt" baseline. An optional Problem.MaxBuffers
	// bound turns it into DelayOpt(k).
	MaxSlack Objective = iota
	// MaxSlackNoise maximizes slack subject to every noise constraint
	// (Problem 2, Algorithm 3). An optional Problem.MaxBuffers bound
	// restricts the search to solutions with at most k buffers.
	MaxSlackNoise
	// MinBuffersNoise inserts the minimum total buffer weight such that
	// both the noise constraints and timing (slack ≥ 0) hold, maximizing
	// slack as a secondary objective (Problem 3, the Section V "BuffOpt"
	// tool). Problem.MaxBuffers must be nil: the buffer count is the
	// objective, not a constraint.
	MinBuffersNoise
)

func (o Objective) String() string {
	switch o {
	case MaxSlack:
		return "max-slack"
	case MaxSlackNoise:
		return "max-slack-noise"
	case MinBuffersNoise:
		return "min-buffers-noise"
	}
	return fmt.Sprintf("objective(%d)", uint8(o))
}

// ParseObjective is the inverse of Objective.String. Errors wrap
// guard.ErrInvalidInput.
func ParseObjective(s string) (Objective, error) {
	for o := MaxSlack; o <= MinBuffersNoise; o++ {
		if o.String() == s {
			return o, nil
		}
	}
	return 0, fmt.Errorf("core: unknown objective %q: %w", s, guard.ErrInvalidInput)
}

// Problem is one complete optimization request: everything that
// determines the answer, and nothing that doesn't. It subsumes the five
// historical entry points (BuffOpt, BuffOptK, DelayOpt, DelayOptK,
// BuffOptMinBuffers), which are now thin wrappers over Optimize, and its
// CanonicalHash is the content-addressed cache key.
type Problem struct {
	// Tree is the routing tree to buffer. Optimize never modifies it.
	Tree *rctree.Tree
	// Library is the available buffer repertoire.
	Library *buffers.Library
	// Params are the noise-model parameters (λ, μ). Ignored — including
	// by CanonicalHash — when Objective is MaxSlack.
	Params noise.Params
	// Objective selects the problem statement.
	Objective Objective
	// MaxBuffers, when non-nil, bounds the total buffer weight (the count
	// for unit-weight libraries). Valid for MaxSlack and MaxSlackNoise;
	// must be nil for MinBuffersNoise.
	MaxBuffers *int
}

// Validate checks the request's structure. All errors wrap
// guard.ErrInvalidInput, so servers map them to 400, not 500. Electrical
// validation (tree parasitics, noise params) stays at the Solve/netfmt
// boundary; here only the shape of the request is checked, preserving the
// historical entry points' behavior exactly.
func (p Problem) Validate() error {
	if p.Tree == nil {
		return fmt.Errorf("core: Problem.Tree is nil: %w", guard.ErrInvalidInput)
	}
	if p.Library == nil {
		return fmt.Errorf("core: Problem.Library is nil: %w", guard.ErrInvalidInput)
	}
	if err := p.Library.Validate(); err != nil {
		return invalid(err)
	}
	if p.Objective > MinBuffersNoise {
		return fmt.Errorf("core: unknown objective %d: %w", p.Objective, guard.ErrInvalidInput)
	}
	if p.MaxBuffers != nil {
		if *p.MaxBuffers < 0 {
			return fmt.Errorf("core: negative buffer bound %d: %w", *p.MaxBuffers, guard.ErrInvalidInput)
		}
		if p.Objective == MinBuffersNoise {
			return fmt.Errorf("core: %s takes no buffer bound (the count is the objective): %w",
				p.Objective, guard.ErrInvalidInput)
		}
	}
	return nil
}

// Optimize solves one Problem. It is the single front door the historical
// entry points now share: the objective plus the optional count bound
// select the engine configuration, and the result is bit-identical to the
// corresponding legacy call.
//
// ctx carries cancellation. When opts.Budget is nil (or bound to a
// different context), a budget wired to ctx is installed so cancellation
// reaches the inner loops; when opts.Budget already carries ctx — as in
// every legacy wrapper call — it is used as-is, preserving the caller's
// usage high-water marks.
//
// Validation failures wrap guard.ErrInvalidInput. For graceful
// degradation under deadline pressure, use Solve, which runs the
// MinBuffersNoise objective down a ladder of weaker engines; Optimize
// runs exactly one engine and returns its error.
func Optimize(ctx context.Context, p Problem, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	engine, err := ParseEngine(opts.Engine)
	if err != nil {
		return nil, err
	}
	opts.Engine = engine
	// The budget is reconciled against the caller's original ctx (not the
	// span's child context) so legacy wrappers keep their exact Budget
	// object and its usage marks; the trace still reaches the inner loops
	// because the budget's context carries the caller's span chain.
	opts.Budget = budgetFor(ctx, opts.Budget)
	_, sp := obs.Span(ctx, "optimize")
	sp.SetAttr("objective", p.Objective.String())
	sp.SetAttr("engine", engine)
	defer sp.End()
	switch p.Objective {
	case MaxSlack:
		if p.MaxBuffers != nil {
			return delayOptK(p.Tree, p.Library, *p.MaxBuffers, opts)
		}
		return delayOpt(p.Tree, p.Library, opts)
	case MaxSlackNoise:
		if p.MaxBuffers != nil {
			return buffOptK(p.Tree, p.Library, p.Params, *p.MaxBuffers, opts)
		}
		return buffOpt(p.Tree, p.Library, p.Params, opts)
	default: // MinBuffersNoise; Validate rejected everything else
		return buffOptMinBuffers(p.Tree, p.Library, p.Params, opts)
	}
}

// budgetFor reconciles the caller's context with the caller's budget.
// When the budget already carries ctx — including the nil-budget,
// background-context pairing every legacy wrapper produces — it is
// returned unchanged, so legacy call paths keep their exact Budget
// object (and its usage marks). Otherwise a fresh budget bound to ctx is
// built, copying the resource caps.
func budgetFor(ctx context.Context, b *guard.Budget) *guard.Budget {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx == b.Context() {
		return b
	}
	nb := guard.New(ctx)
	if b != nil {
		nb.MaxCandidates = b.MaxCandidates
		nb.MaxTreeNodes = b.MaxTreeNodes
		nb.MaxSimSteps = b.MaxSimSteps
	}
	return nb
}

// hashVersion prefixes every canonical hash; bump it whenever the
// serialization below changes, so stale cache entries from an older
// binary can never alias a new request.
const hashVersion = "buffopt.problem.v1"

// CanonicalHash returns the content-addressed identity of the request as
// a hex SHA-256: two Problems hash equal iff the solver computes the same
// answer for both, byte for byte.
//
// Included: the driver model; a preorder walk of the tree covering each
// node's kind, buffer feasibility, wire parasitics (R, C, length, and the
// explicit aggressor list — nil and empty are distinct, because nil
// selects the estimation mode), and sink properties (cap, RAT, noise
// margin); the buffer library in order, every electrical field plus name
// and weight; the noise parameters (skipped for MaxSlack, which never
// reads them); the objective; and the count bound.
//
// Excluded, deliberately: node names, IDs, and X/Y coordinates (reports
// only — two nets differing only in labels are the same problem);
// Options.Workers and all deadlines (results are bit-identical across
// them); and Options' output-affecting knobs, which the cache layers on
// top (see SolveCacheKey). Sibling order is preserved, not sorted: the
// branch-merge order can steer tie-breaking among equal-slack candidates,
// so reordered children are a different problem even though renumbered
// nodes are not.
func (p Problem) CanonicalHash() string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	b1 := func(v byte) { buf[0] = v; h.Write(buf[:1]) }
	bol := func(v bool) {
		if v {
			b1(1)
		} else {
			b1(0)
		}
	}
	str := func(s string) { u64(uint64(len(s))); io.WriteString(h, s) }

	str(hashVersion)
	if p.Tree == nil {
		b1(0xff)
	} else {
		b1(1)
		f64(p.Tree.DriverResistance)
		f64(p.Tree.DriverDelay)
		stack := []rctree.NodeID{p.Tree.Root()}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n := p.Tree.Node(id)
			b1(byte(n.Kind))
			bol(n.BufferOK)
			f64(n.Wire.R)
			f64(n.Wire.C)
			f64(n.Wire.Length)
			bol(n.Wire.Aggressors != nil)
			u64(uint64(len(n.Wire.Aggressors)))
			for _, a := range n.Wire.Aggressors {
				f64(a.Ratio)
				f64(a.Slope)
			}
			f64(n.Cap)
			f64(n.RAT)
			f64(n.NoiseMargin)
			u64(uint64(len(n.Children)))
			for i := len(n.Children) - 1; i >= 0; i-- {
				stack = append(stack, n.Children[i])
			}
		}
	}
	if p.Library == nil {
		b1(0xff)
	} else {
		b1(1)
		u64(uint64(len(p.Library.Buffers)))
		for _, bb := range p.Library.Buffers {
			str(bb.Name)
			f64(bb.Cin)
			f64(bb.R)
			f64(bb.T)
			f64(bb.NoiseMargin)
			bol(bb.Inverting)
			u64(uint64(int64(bb.Weight)))
		}
	}
	b1(byte(p.Objective))
	if p.Objective != MaxSlack {
		f64(p.Params.CouplingRatio)
		f64(p.Params.Slope)
	}
	if p.MaxBuffers == nil {
		b1(0)
	} else {
		b1(1)
		u64(uint64(int64(*p.MaxBuffers)))
	}
	return hex.EncodeToString(h.Sum(nil))
}
