// Package core implements the paper's contribution: the three buffer
// insertion algorithms for noise and delay optimization.
//
//   - Algorithm 1 (Algorithm1): optimal linear-time noise avoidance for
//     single-sink trees, driven by the Theorem 1 closed form.
//   - Algorithm 2 (Algorithm2): optimal quadratic-time noise avoidance for
//     multi-sink trees via bottom-up candidate propagation.
//   - Algorithm 3 (BuffOpt): Van Ginneken's slack-optimal dynamic program
//     extended with noise constraints, plus the Lillis buffer-count
//     extension used to solve Problem 3 (fewest buffers meeting both noise
//     and timing), and the DelayOpt baseline of Section V.
//
// All algorithms consume an rctree.Tree, a buffers.Library, and
// noise.Params, and produce a Solution: a (possibly augmented) copy of the
// tree plus a node → buffer assignment that the elmore and noise analyzers
// accept directly.
//
// The preferred entry points are Optimize (one objective, one call),
// Solve (the degradation ladder), and NewSession/Delta (incremental
// re-solves over an edit stream, reusing untouched subtrees). The named
// wrappers BuffOpt, BuffOptK, BuffOptMinBuffers, DelayOpt, and DelayOptK
// are deprecated aliases for Optimize with the corresponding Objective;
// they remain for source compatibility and their equivalence is pinned
// by tests.
package core

import (
	"fmt"
	"math"
)

// placementBackoff shrinks Theorem 1 maximal placements by a relative
// epsilon so that the exact noise analyzers, which re-derive the bound in a
// different summation order, never see a 1-ulp overshoot of the margin.
const placementBackoff = 1 - 1e-10

// MaxSafeLength solves Theorem 1: the maximum length l of a uniform wire,
// driven by a buffer with output resistance rb, such that no noise
// violation results. The wire has resistance r per unit length and injects
// coupling current i per unit length; the subtree hanging below the wire's
// far end contributes downstream current down and offers noise slack ns.
//
// The noise seen at the far end is
//
//	rb·(down + i·l) + r·l·(down + i·l/2)
//
// (driver term, eq. 9, plus the wire's π-model term, eq. 8). Requiring it
// to stay within ns gives the quadratic of eq. (15),
//
//	(r·i/2)·l² + (rb·i + r·down)·l + (rb·down − ns) ≤ 0,
//
// whose positive root is eq. (13)/(16). The constraint rb·down ≤ ns is
// required for any l ≥ 0 to exist; if it fails, a buffer should already
// have been inserted below (the "too late" condition of Section III-A) and
// MaxSafeLength returns an error.
//
// Degenerate cases: with i = 0 and down = 0 (or r = 0 and rb·... within
// slack) the wire can be arbitrarily long and the result is +Inf.
func MaxSafeLength(rb, r, i, down, ns float64) (float64, error) {
	if rb < 0 || r < 0 || i < 0 || down < 0 {
		return 0, fmt.Errorf("core: negative parameter in MaxSafeLength(rb=%g, r=%g, i=%g, down=%g, ns=%g)", rb, r, i, down, ns)
	}
	c0 := rb*down - ns
	if c0 > 0 {
		return 0, fmt.Errorf("core: too late to insert a buffer: rb·down = %g exceeds noise slack %g: %w",
			rb*down, ns, ErrNoiseUnfixable)
	}
	a := r * i / 2
	b := rb*i + r*down
	if a == 0 {
		if b == 0 {
			return math.Inf(1), nil // no length-dependent noise at all
		}
		return -c0 / b, nil
	}
	// Positive root of a·l² + b·l + c0 = 0 with a > 0, c0 ≤ 0.
	return (-b + math.Sqrt(b*b-4*a*c0)) / (2 * a), nil
}

// WireTopNoise returns the Devgan noise bound seen at the far end of a
// lumped wire (rw, iw) driven by a buffer of resistance rb placed at the
// wire's near (upstream) end, with downstream current down below the far
// end:
//
//	rb·(down + iw) + rw·(down + iw/2).
//
// Algorithms 1 and 2 compare this against the far end's noise slack to
// decide whether a buffer is needed on the wire at all (Step 3 of
// Algorithm 1).
func WireTopNoise(rb, rw, iw, down float64) float64 {
	return rb*(down+iw) + rw*(down+iw/2)
}

// RequiredSeparation solves eq. (17): the minimum center-to-center spacing
// d between a victim wire and a single aggressor such that the wire causes
// no noise violation, under the geometric coupling model λ(d) = beta/d.
//
// The wire has length l, resistance r and capacitance c per unit length,
// is driven by a gate with resistance rb, sees downstream current down and
// noise slack ns at its far end, and the aggressor switches with slope mu.
// An error is returned when even zero coupling violates the slack (the
// non-coupling noise rb·down + r·l·down already exceeds ns).
func RequiredSeparation(rb, r, c, mu, beta, down, ns, l float64) (float64, error) {
	if l < 0 || beta < 0 || mu < 0 || c < 0 {
		return 0, fmt.Errorf("core: negative parameter in RequiredSeparation")
	}
	budget := ns - rb*down - r*down*l
	if budget <= 0 {
		return 0, fmt.Errorf("core: no separation can fix the wire: non-coupling noise %g exceeds slack %g: %w",
			rb*down+r*down*l, ns, ErrNoiseUnfixable)
	}
	num := mu * beta * c * l * (r*l/2 + rb)
	if num == 0 {
		return 0, nil // no coupling at any distance
	}
	return num / budget, nil
}
