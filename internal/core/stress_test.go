package core

import (
	"context"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"buffopt/internal/obs"
	"buffopt/internal/testutil"
)

// TestConcurrentSolveSharedState hammers Solve from many goroutines that
// share one buffer library and one obs registry (the service workload:
// nets differ, configuration does not), and checks the bookkeeping adds
// up: every attempt lands in the "solve.count" span counter and every
// success in exactly one "solve.answered.<tier>" counter. Run under
// -race (scripts/check.sh does), this is also the data-race gate for the
// core/guard/obs stack.
func TestConcurrentSolveSharedState(t *testing.T) {
	old := obs.Default()
	obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(old)

	lib := lib2() // shared, read-only across workers
	const workers = 8
	perWorker := 4
	if testing.Short() {
		perWorker = 2
	}

	var ok, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				tr := testutil.RandomTree(rng, testutil.TreeOptions{
					MaxInternal: 8,
					MaxSinks:    6,
					BufferSites: true,
				})
				res, err := Solve(context.Background(), tr, lib, unitParams, Options{})
				if err != nil {
					// Some random nets are legitimately noise-unfixable;
					// what matters here is that failures are classified,
					// not silent.
					failed.Add(1)
					continue
				}
				if res.Result == nil || res.Tree == nil {
					t.Error("success with no solution")
				}
				ok.Add(1)
			}
		}(int64(w + 1))
	}
	wg.Wait()

	total := int64(workers * perWorker)
	if ok.Load()+failed.Load() != total {
		t.Fatalf("accounting hole: %d ok + %d failed != %d attempts", ok.Load(), failed.Load(), total)
	}
	snap := obs.Default().Snapshot()
	if got := snap.Counters["solve.count"]; got != total {
		t.Fatalf("solve.count = %d, want %d", got, total)
	}
	var answered int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "solve.answered.") {
			answered += v
		}
	}
	if answered != ok.Load() {
		t.Fatalf("sum(solve.answered.*) = %d, want %d successes", answered, ok.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no solve succeeded; the workload is degenerate")
	}
}

// TestConcurrentParallelSolves is the race gate on the parallel DP: many
// goroutines run worker-pool solves simultaneously (pool goroutines of
// different runs interleave in the shared sync.Pool arena), and the run
// must leave nothing behind — every pooled list returned, every worker
// goroutine gone.
func TestConcurrentParallelSolves(t *testing.T) {
	old := obs.Default()
	obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(old)

	lib := lib2()
	baseline := runtime.NumGoroutine()
	const clients = 6
	perClient := 4
	if testing.Short() {
		perClient = 2
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perClient; i++ {
				tr := testutil.RandomTree(rng, testutil.TreeOptions{
					MaxInternal: 10,
					MaxSinks:    8,
					BufferSites: true,
				})
				// Workers forced past 1 so the pool path runs even on the
				// small trees (and on single-CPU hosts, where auto mode
				// would stay serial). Noise-unfixable nets may fail; what
				// the gate cares about is the cleanup below.
				res, err := Solve(context.Background(), tr, lib, unitParams, Options{Workers: 4})
				if err == nil && (res.Result == nil || res.Tree == nil) {
					t.Error("success with no solution")
				}
			}
		}(int64(c + 100))
	}
	wg.Wait()

	// Zero pool leaks: across every run, serial or parallel, each list
	// taken from the arena came back exactly once.
	snap := obs.Default().Snapshot()
	taken, returned := snap.Counters["vg.pool.taken"], snap.Counters["vg.pool.returned"]
	if taken == 0 {
		t.Fatal("vg.pool.taken = 0; the arena went unexercised")
	}
	if taken != returned {
		t.Fatalf("pool leak: taken %d != returned %d", taken, returned)
	}
	if snap.Counters["vg.run.parallel"] == 0 {
		t.Fatal("no run took the parallel path; the gate tested nothing")
	}

	// The worker pools drained: goroutines return to baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d vs baseline %d after parallel solves", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
