package core

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"buffopt/internal/obs"
	"buffopt/internal/testutil"
)

// TestConcurrentSolveSharedState hammers Solve from many goroutines that
// share one buffer library and one obs registry (the service workload:
// nets differ, configuration does not), and checks the bookkeeping adds
// up: every attempt lands in the "solve.count" span counter and every
// success in exactly one "solve.answered.<tier>" counter. Run under
// -race (scripts/check.sh does), this is also the data-race gate for the
// core/guard/obs stack.
func TestConcurrentSolveSharedState(t *testing.T) {
	old := obs.Default()
	obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(old)

	lib := lib2() // shared, read-only across workers
	const workers = 8
	perWorker := 4
	if testing.Short() {
		perWorker = 2
	}

	var ok, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				tr := testutil.RandomTree(rng, testutil.TreeOptions{
					MaxInternal: 8,
					MaxSinks:    6,
					BufferSites: true,
				})
				res, err := Solve(context.Background(), tr, lib, unitParams, Options{})
				if err != nil {
					// Some random nets are legitimately noise-unfixable;
					// what matters here is that failures are classified,
					// not silent.
					failed.Add(1)
					continue
				}
				if res.Result == nil || res.Tree == nil {
					t.Error("success with no solution")
				}
				ok.Add(1)
			}
		}(int64(w + 1))
	}
	wg.Wait()

	total := int64(workers * perWorker)
	if ok.Load()+failed.Load() != total {
		t.Fatalf("accounting hole: %d ok + %d failed != %d attempts", ok.Load(), failed.Load(), total)
	}
	snap := obs.Default().Snapshot()
	if got := snap.Counters["solve.count"]; got != total {
		t.Fatalf("solve.count = %d, want %d", got, total)
	}
	var answered int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "solve.answered.") {
			answered += v
		}
	}
	if answered != ok.Load() {
		t.Fatalf("sum(solve.answered.*) = %d, want %d successes", answered, ok.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no solve succeeded; the workload is degenerate")
	}
}
