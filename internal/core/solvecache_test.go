package core

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"buffopt/internal/guard"
	"buffopt/internal/obs"
)

// TestSolveCacheByteIdentity is the tentpole's determinism gate: over the
// differential corpus, Solve with a cache produces byte-identical results
// to Solve without one — on the miss that fills the entry and again on
// the hit that reads it back — and the hit is flagged Cached with the
// same tier metadata.
func TestSolveCacheByteIdentity(t *testing.T) {
	n := diffCorpusSize
	if testing.Short() {
		n = 20
	}
	nets, lib, p := diffCorpus(t, n)
	c := NewSolveCache(0, 0, "test")

	for i, tr := range nets {
		plain, err := Solve(context.Background(), tr, lib, p, Options{})
		if err != nil {
			t.Fatalf("net %d uncached: %v", i, err)
		}
		miss, err := Solve(context.Background(), tr, lib, p, Options{Cache: c})
		if err != nil {
			t.Fatalf("net %d cache miss: %v", i, err)
		}
		hit, err := Solve(context.Background(), tr, lib, p, Options{Cache: c})
		if err != nil {
			t.Fatalf("net %d cache hit: %v", i, err)
		}
		pb, mb, hb := resultJSON(t, plain.Result), resultJSON(t, miss.Result), resultJSON(t, hit.Result)
		if string(pb) != string(mb) || string(mb) != string(hb) {
			t.Fatalf("net %d: cache-on vs cache-off results differ:\nplain %s\nmiss  %s\nhit   %s", i, pb, mb, hb)
		}
		if miss.Cached {
			t.Fatalf("net %d: first cached solve claims Cached", i)
		}
		if !hit.Cached {
			t.Fatalf("net %d: repeat solve did not hit the cache", i)
		}
		if hit.Tier != miss.Tier || hit.Degraded != miss.Degraded {
			t.Fatalf("net %d: tier metadata drifted on hit: %v/%v vs %v/%v",
				i, hit.Tier, hit.Degraded, miss.Tier, miss.Degraded)
		}
	}
	s := c.Stats()
	if s.Lookups != int64(2*len(nets)) || s.Hits != int64(len(nets)) || s.Misses != int64(len(nets)) {
		t.Errorf("stats %+v; want %d lookups, %d hits, %d misses", s, 2*len(nets), len(nets), len(nets))
	}
	if s.Hits+s.Misses != s.Lookups {
		t.Errorf("hits %d + misses %d != lookups %d", s.Hits, s.Misses, s.Lookups)
	}
}

// TestSolveCacheHitIsolation: mutating a hit's solution must not corrupt
// the cached entry — each read is a deep copy.
func TestSolveCacheHitIsolation(t *testing.T) {
	nets, lib, p := diffCorpus(t, 1)
	c := NewSolveCache(0, 0, "test")
	first, err := Solve(context.Background(), nets[0], lib, p, Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	want := string(resultJSON(t, first.Result))

	hit1, err := Solve(context.Background(), nets[0], lib, p, Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	// Vandalize everything reachable from the hit.
	hit1.Slack = -12345
	for id := range hit1.Buffers {
		delete(hit1.Buffers, id)
	}
	hit1.Solution.Tree.Node(hit1.Solution.Tree.Root()).Wire.R = 1e30
	hit1.Tier = TierUnbuffered

	hit2, err := Solve(context.Background(), nets[0], lib, p, Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(resultJSON(t, hit2.Result)); got != want {
		t.Fatalf("mutating one hit corrupted the cache:\nwant %s\ngot  %s", want, got)
	}
	if hit2.Tier != first.Tier {
		t.Fatalf("tier corrupted: %v vs %v", hit2.Tier, first.Tier)
	}
}

// TestSolveCacheBudgetClassKeying: a budget-starved (deterministically
// degraded) answer caches under its own key, so it never masks the exact
// answer and vice versa.
func TestSolveCacheBudgetClassKeying(t *testing.T) {
	nets, lib, p := diffCorpus(t, 1)
	tr := nets[0]
	c := NewSolveCache(0, 0, "test")

	starved := guard.New(context.Background())
	starved.MaxCandidates = 2

	degraded, err := Solve(context.Background(), tr, lib, p, Options{Cache: c, Budget: starved})
	if err != nil {
		t.Fatal(err)
	}
	if !degraded.Degraded {
		t.Fatal("MaxCandidates=2 did not degrade; the test premise is broken")
	}
	for _, te := range degraded.TierErrors {
		if guard.Class(te.Err) != "budget" {
			t.Fatalf("tier %v failed with class %q; expected deterministic budget trips only", te.Tier, guard.Class(te.Err))
		}
	}

	exact, err := Solve(context.Background(), tr, lib, p, Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Cached {
		t.Fatal("uncapped solve hit the capped entry; budget classes must key separately")
	}
	if exact.Degraded {
		t.Fatal("uncapped solve degraded unexpectedly")
	}
	if c.Len() != 2 {
		t.Fatalf("%d resident entries; capped and uncapped must each have one", c.Len())
	}

	// Each class hits its own entry and reproduces its own bytes.
	starved2 := guard.New(context.Background())
	starved2.MaxCandidates = 2
	degraded2, err := Solve(context.Background(), tr, lib, p, Options{Cache: c, Budget: starved2})
	if err != nil {
		t.Fatal(err)
	}
	if !degraded2.Cached || degraded2.Tier != degraded.Tier {
		t.Fatalf("capped repeat: cached=%v tier=%v, want hit with tier %v", degraded2.Cached, degraded2.Tier, degraded.Tier)
	}
	if string(resultJSON(t, degraded2.Result)) != string(resultJSON(t, degraded.Result)) {
		t.Fatal("capped repeat bytes differ from first capped solve")
	}
	exact2, err := Solve(context.Background(), tr, lib, p, Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if !exact2.Cached || string(resultJSON(t, exact2.Result)) != string(resultJSON(t, exact.Result)) {
		t.Fatal("uncapped repeat did not reproduce the exact entry")
	}
}

// TestSolveCacheDeadlineDegradedNotStored: a result degraded by
// wall-clock luck is served to its requester but never stored — the next
// identical request must get a fresh chance at the exact answer.
func TestSolveCacheDeadlineDegradedNotStored(t *testing.T) {
	nets, lib, p := diffCorpus(t, 1)
	c := NewSolveCache(0, 0, "test")

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := Solve(ctx, nets[0], lib, p, Options{Cache: c})
	if err != nil {
		t.Fatalf("expired-deadline solve must still answer (unbuffered tier): %v", err)
	}
	if res.Tier != TierUnbuffered {
		t.Fatalf("tier %v under expired deadline, want unbuffered", res.Tier)
	}
	if Cacheable(res) {
		t.Fatal("deadline-degraded result claims to be cacheable")
	}
	if c.Len() != 0 {
		t.Fatalf("%d entries stored from a deadline-degraded solve", c.Len())
	}

	// The next request, unhurried, gets the exact answer — not the
	// unbuffered leftovers.
	fresh, err := Solve(context.Background(), nets[0], lib, p, Options{Cache: c})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cached || fresh.Degraded {
		t.Fatalf("fresh solve after deadline miss: cached=%v degraded=%v", fresh.Cached, fresh.Degraded)
	}
}

// TestSolveCacheCoalescing: concurrent identical Solve calls run the
// ladder once; everyone gets the same bytes; the accounting proves it.
func TestSolveCacheCoalescing(t *testing.T) {
	const callers = 8
	nets, lib, p := diffCorpus(t, 1)
	c := NewSolveCache(0, 0, "test")

	// Fresh registry so solve.answered.* counts only this test's ladder runs.
	old := obs.Default()
	obs.SetDefault(obs.NewRegistry())
	t.Cleanup(func() { obs.SetDefault(old) })

	var wg sync.WaitGroup
	results := make([]*SolveResult, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Solve(context.Background(), nets[0], lib, p, Options{Cache: c})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	var ladderRuns int64
	for name, v := range obs.Default().Snapshot().Counters {
		if strings.HasPrefix(name, "solve.answered.") {
			ladderRuns += v
		}
	}
	if ladderRuns != 1 {
		t.Errorf("ladder ran %d times for %d concurrent identical requests", ladderRuns, callers)
	}
	want := string(resultJSON(t, results[0].Result))
	for i, res := range results {
		if res == nil {
			t.Fatalf("caller %d got nothing", i)
		}
		if got := string(resultJSON(t, res.Result)); got != want {
			t.Fatalf("caller %d bytes differ from leader's", i)
		}
	}
	s := c.Stats()
	if s.Lookups != callers || s.Hits+s.Misses != s.Lookups {
		t.Errorf("stats %+v", s)
	}
	// Exactly one caller ran the ladder: every other miss coalesced.
	if s.Coalesced != s.Misses-1 {
		t.Errorf("coalesced %d, misses %d: more than one ladder run slipped through", s.Coalesced, s.Misses)
	}
}

// TestSolveCacheEvictionBounds: a one-entry cache under a stream of
// distinct nets keeps the books balanced while evicting.
func TestSolveCacheEvictionBounds(t *testing.T) {
	nets, lib, p := diffCorpus(t, 4)
	c := NewSolveCache(1, 0, "test")
	for pass := 0; pass < 2; pass++ {
		for i, tr := range nets {
			if _, err := Solve(context.Background(), tr, lib, p, Options{Cache: c}); err != nil {
				t.Fatalf("pass %d net %d: %v", pass, i, err)
			}
		}
	}
	s := c.Stats()
	if s.Entries != 1 {
		t.Errorf("%d resident entries, bound is 1", s.Entries)
	}
	if s.Stored != s.Evicted+int64(s.Entries) {
		t.Errorf("stored %d != evicted %d + resident %d", s.Stored, s.Evicted, s.Entries)
	}
	if s.Hits+s.Misses != s.Lookups {
		t.Errorf("hits %d + misses %d != lookups %d", s.Hits, s.Misses, s.Lookups)
	}
	// Every solve missed: the LRU churns through 4 distinct keys with
	// capacity 1, so nothing survives to be hit.
	if s.Hits != 0 || s.Misses != int64(2*len(nets)) {
		t.Errorf("hits %d misses %d; a 1-entry cache cannot hit on a 4-net round-robin", s.Hits, s.Misses)
	}
}
