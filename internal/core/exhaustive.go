package core

import (
	"fmt"
	"math"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/guard"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
)

// The exhaustive searches below enumerate every possible buffer assignment
// on the tree's feasible nodes and evaluate each with the independent
// analyzers in packages elmore and noise. They exist as oracles for the
// test suite and the optimality ablations: the dynamic programs must match
// them on small instances. Their cost is (|B|+1)^(#feasible nodes); calls
// exceeding MaxExhaustiveAssignments are rejected.

// MaxExhaustiveAssignments bounds the search space of the exhaustive
// oracles.
const MaxExhaustiveAssignments = 4 << 20

// feasibleNodes lists the nodes where a buffer may be inserted.
func feasibleNodes(t *rctree.Tree) []rctree.NodeID {
	var out []rctree.NodeID
	for _, v := range t.Preorder() {
		n := t.Node(v)
		if n.BufferOK && n.Kind == rctree.Internal && v != t.Root() {
			out = append(out, v)
		}
	}
	return out
}

// enumerate walks every assignment of (no buffer | one of lib's buffers)
// to the feasible nodes, invoking visit with a reused map. visit must not
// retain the map. The budget's context is consulted every few hundred
// assignments, so even an in-cap search can be canceled.
func enumerate(t *rctree.Tree, lib *buffers.Library, b *guard.Budget, visit func(map[rctree.NodeID]buffers.Buffer)) error {
	sites := feasibleNodes(t)
	choices := len(lib.Buffers) + 1
	total := 1.0
	for range sites {
		total *= float64(choices)
		if total > MaxExhaustiveAssignments {
			return fmt.Errorf("core: exhaustive search over %d sites × %d choices too large: %w",
				len(sites), choices, guard.ErrBudgetExceeded)
		}
	}
	if err := b.Check(); err != nil {
		return err
	}
	assign := make(map[rctree.NodeID]buffers.Buffer, len(sites))
	pacer := b.Pacer(512)
	var stop error
	var rec func(i int)
	rec = func(i int) {
		if stop != nil {
			return
		}
		if i == len(sites) {
			if err := pacer.Tick(); err != nil {
				stop = err
				return
			}
			visit(assign)
			return
		}
		rec(i + 1) // no buffer at sites[i]
		for _, bb := range lib.Buffers {
			assign[sites[i]] = bb
			rec(i + 1)
		}
		delete(assign, sites[i])
	}
	rec(0)
	return stop
}

// ExhaustiveMinBuffersNoise returns the minimum number of buffers over all
// assignments on the tree's feasible nodes such that the tree is noise
// clean (the discrete version of Problem 1), together with one witness
// assignment. ok is false when no assignment is clean.
func ExhaustiveMinBuffersNoise(t *rctree.Tree, lib *buffers.Library, p noise.Params) (best int, witness map[rctree.NodeID]buffers.Buffer, ok bool, err error) {
	return ExhaustiveMinBuffersNoiseBudget(t, lib, p, nil)
}

// ExhaustiveMinBuffersNoiseBudget is ExhaustiveMinBuffersNoise under a
// resource budget; a nil budget imposes no limits beyond
// MaxExhaustiveAssignments.
func ExhaustiveMinBuffersNoiseBudget(t *rctree.Tree, lib *buffers.Library, p noise.Params, b *guard.Budget) (best int, witness map[rctree.NodeID]buffers.Buffer, ok bool, err error) {
	best = math.MaxInt
	err = enumerate(t, lib, b, func(assign map[rctree.NodeID]buffers.Buffer) {
		if len(assign) >= best {
			return
		}
		if noise.Analyze(t, assign, p).Clean() {
			best = len(assign)
			witness = cloneAssign(assign)
		}
	})
	if err != nil {
		return 0, nil, false, err
	}
	if best == math.MaxInt {
		return 0, nil, false, nil
	}
	return best, witness, true, nil
}

// ExhaustiveMaxSlackNoise returns the maximum worst-sink timing slack over
// all assignments that are noise clean (the discrete version of Problem
// 2), with a witness. Polarity is respected: assignments whose inversion
// parity differs across or at sinks are skipped.
func ExhaustiveMaxSlackNoise(t *rctree.Tree, lib *buffers.Library, p noise.Params, enforceNoise bool) (bestSlack float64, witness map[rctree.NodeID]buffers.Buffer, ok bool, err error) {
	return ExhaustiveMaxSlackNoiseBudget(t, lib, p, enforceNoise, nil)
}

// ExhaustiveMaxSlackNoiseBudget is ExhaustiveMaxSlackNoise under a
// resource budget; a nil budget imposes no limits beyond
// MaxExhaustiveAssignments.
func ExhaustiveMaxSlackNoiseBudget(t *rctree.Tree, lib *buffers.Library, p noise.Params, enforceNoise bool, b *guard.Budget) (bestSlack float64, witness map[rctree.NodeID]buffers.Buffer, ok bool, err error) {
	bestSlack = math.Inf(-1)
	err = enumerate(t, lib, b, func(assign map[rctree.NodeID]buffers.Buffer) {
		if !polarityOK(t, assign) {
			return
		}
		if enforceNoise && !noise.Analyze(t, assign, p).Clean() {
			return
		}
		s := elmore.Analyze(t, assign).WorstSlack
		if s > bestSlack {
			bestSlack = s
			witness = cloneAssign(assign)
			ok = true
		}
	})
	if err != nil {
		return 0, nil, false, err
	}
	return bestSlack, witness, ok, nil
}

// polarityOK reports whether every sink sees an even number of inverting
// stages from the source.
func polarityOK(t *rctree.Tree, assign map[rctree.NodeID]buffers.Buffer) bool {
	parity := make([]uint8, t.Len())
	for _, v := range t.Preorder() {
		if v != t.Root() {
			parity[v] = parity[t.Node(v).Parent]
		}
		if b, ok := assign[v]; ok && b.Inverting {
			parity[v] ^= 1
		}
		if t.Node(v).Kind == rctree.Sink && parity[v] != 0 {
			return false
		}
	}
	return true
}

func cloneAssign(a map[rctree.NodeID]buffers.Buffer) map[rctree.NodeID]buffers.Buffer {
	out := make(map[rctree.NodeID]buffers.Buffer, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}
