package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"buffopt/internal/guard"
	"buffopt/internal/rctree"
)

// The delta differential suite is the gate on the incremental (ECO)
// re-solve engine: over seeded edit streams — sink cap/RAT tweaks, wire
// resizes, subtree grafts, subtree prunes — it asserts that Delta's
// answer is bit-identical to a from-scratch Optimize on the session's
// post-edit tree, for both engines, all three objective profiles, serial
// and parallel. Memoization is allowed to change how much work a
// re-solve does, never what it answers.

// graftDonor builds a small, valid, binary two-sink subtree to graft.
func graftDonor(rng *rand.Rand) *rctree.Tree {
	sub := rctree.New("donor", 100, 10e-12)
	w := func() rctree.Wire {
		return rctree.Wire{
			R:      50 + 100*rng.Float64(),
			C:      10e-15 + 40e-15*rng.Float64(),
			Length: 0.2e-3,
		}
	}
	j, _ := sub.AddInternal(sub.Root(), w(), true)
	sub.AddSink(j, w(), "d0", 5e-15+20e-15*rng.Float64(), 400e-12, 0.5)
	sub.AddSink(j, w(), "d1", 5e-15+20e-15*rng.Float64(), 500e-12, 0.5)
	return sub
}

// randomEdit draws one valid edit against the session's current tree:
// the stream generator mirrors what an ECO flow does (pin cap changes
// after placement, RAT updates from a new timing run, wire resizes,
// cloned gadget grafts, dead-logic prunes).
func randomEdit(t *rctree.Tree, rng *rand.Rand) (Edit, bool) {
	sinks := t.Sinks()
	switch rng.Intn(5) {
	case 0:
		return Edit{Op: EditSetCap, Node: sinks[rng.Intn(len(sinks))], Value: 5e-15 + 50e-15*rng.Float64()}, true
	case 1:
		return Edit{Op: EditSetRAT, Node: sinks[rng.Intn(len(sinks))], Value: (100 + 900*rng.Float64()) * 1e-12}, true
	case 2:
		v := rctree.NodeID(1 + rng.Intn(t.Len()-1)) // any non-root node has a parent wire
		w := t.Node(v).Wire
		f := 0.5 + rng.Float64()
		w.R /= f
		w.C *= 1 + 0.3*(f-1)
		return Edit{Op: EditSetWire, Node: v, Wire: w}, true
	case 3:
		// Graft below a node with spare fan-out (≤1 child, not a sink).
		for try := 0; try < 20; try++ {
			v := rctree.NodeID(rng.Intn(t.Len()))
			n := t.Node(v)
			if n.Kind != rctree.Sink && len(n.Children) < 2 {
				return Edit{
					Op:   EditGraft,
					Node: v,
					Wire: rctree.Wire{R: 80, C: 20e-15, Length: 0.3e-3},
					Sub:  graftDonor(rng),
				}, true
			}
		}
		return Edit{}, false
	default:
		// Prune a subtree that leaves the tree valid: not the root, not a
		// parent's only child, and not the last sink.
		for try := 0; try < 20; try++ {
			v := rctree.NodeID(1 + rng.Intn(t.Len()-1))
			p := t.Node(v).Parent
			if len(t.Node(p).Children) < 2 {
				continue
			}
			doomed := len(t.Subtree(v))
			sinksLost := 0
			for _, d := range t.Subtree(v) {
				if t.Node(d).Kind == rctree.Sink {
					sinksLost++
				}
			}
			if sinksLost >= t.NumSinks() || doomed >= t.Len()-2 {
				continue
			}
			return Edit{Op: EditPrune, Node: v}, true
		}
		return Edit{}, false
	}
}

// deltaProfiles are the (objective, engine, workers) grid the streams run
// under: both engines, all three objectives, serial and parallel.
func deltaProfiles() []struct {
	name string
	obj  Objective
	opts Options
} {
	type prof = struct {
		name string
		obj  Objective
		opts Options
	}
	var out []prof
	for _, eng := range []string{EngineVG, EngineLiShi} {
		for _, workers := range []int{1, 4} {
			out = append(out,
				prof{fmt.Sprintf("max-slack/%s/w%d", eng, workers), MaxSlack, Options{Engine: eng, Workers: workers}},
				prof{fmt.Sprintf("max-slack-noise/%s/w%d", eng, workers), MaxSlackNoise, Options{Engine: eng, Workers: workers}},
				prof{fmt.Sprintf("min-buffers-noise/%s/w%d", eng, workers), MinBuffersNoise, Options{Engine: eng, Workers: workers}},
			)
		}
	}
	return out
}

// resultsEqual compares a Delta answer with a from-scratch reference bit
// for bit: slack and cost exactly, then the full placement and width
// maps.
func resultsEqual(got *Result, want *Result) error {
	if math.Float64bits(got.Slack) != math.Float64bits(want.Slack) {
		return fmt.Errorf("slack differs: %g vs %g", got.Slack, want.Slack)
	}
	if got.Cost != want.Cost {
		return fmt.Errorf("cost differs: %d vs %d", got.Cost, want.Cost)
	}
	if err := assignEqual(got.Buffers, want.Buffers); err != nil {
		return err
	}
	if len(got.Widths) != len(want.Widths) {
		return fmt.Errorf("width maps differ: %v vs %v", got.Widths, want.Widths)
	}
	for k, v := range got.Widths {
		if want.Widths[k] != v {
			return fmt.Errorf("width at node %d: %g vs %g", k, v, want.Widths[k])
		}
	}
	return nil
}

// TestDeltaDifferential is the exactness gate: seeded edit streams over
// corpus nets, every Delta answer bit-compared against Optimize on a
// clone of the session's post-edit tree.
func TestDeltaDifferential(t *testing.T) {
	t.Parallel()
	n := 8
	steps := 6
	if testing.Short() {
		n, steps = 4, 4
	}
	nets, lib, params := diffCorpus(t, n)
	for _, prof := range deltaProfiles() {
		prof := prof
		t.Run(prof.name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(41))
			for ni, net := range nets {
				p := Problem{Tree: net, Library: lib, Params: params, Objective: prof.obj}
				s, err := NewSession(p, SessionConfig{})
				if err != nil {
					t.Fatalf("net %d: NewSession: %v", ni, err)
				}
				for step := 0; step < steps; step++ {
					var edits []Edit
					for len(edits) < 1+rng.Intn(3) {
						if e, ok := randomEdit(s.Tree(), rng); ok {
							edits = append(edits, e)
							if e.Op == EditGraft || e.Op == EditPrune {
								break // topology edits renumber; re-draw against the new tree
							}
						}
					}
					got, err := Delta(context.Background(), s, edits, prof.opts)
					if err != nil {
						t.Fatalf("net %d step %d: Delta: %v", ni, step, err)
					}
					ref := p
					ref.Tree = s.Tree()
					want, err := Optimize(context.Background(), ref, prof.opts)
					if err != nil {
						t.Fatalf("net %d step %d: reference Optimize: %v", ni, step, err)
					}
					if err := resultsEqual(got.Result, want); err != nil {
						t.Fatalf("net %d step %d: delta diverged from scratch: %v", ni, step, err)
					}
					if got.Lookups != got.Reused+got.Resolved {
						t.Fatalf("net %d step %d: ledger broken: lookups %d != reused %d + resolved %d",
							ni, step, got.Lookups, got.Reused, got.Resolved)
					}
				}
				st := s.Stats()
				if st.Lookups != st.Reused+st.Resolved {
					t.Fatalf("net %d: session ledger broken: %+v", ni, st)
				}
			}
		})
	}
}

// TestDeltaReusesUntouchedSubtrees pins the point of the whole engine: a
// single-leaf edit on a deep net re-resolves only the O(depth) ancestors
// of the change, everything else comes from the memo.
func TestDeltaReusesUntouchedSubtrees(t *testing.T) {
	t.Parallel()
	nets, lib, params := diffCorpus(t, 6)
	var net *rctree.Tree
	for _, cand := range nets {
		if net == nil || cand.Len() > net.Len() {
			net = cand
		}
	}
	s, err := NewSession(Problem{Tree: net, Library: lib, Params: params, Objective: MaxSlackNoise}, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// First solve warms the memo: everything resolves, nothing reuses.
	first, err := Delta(context.Background(), s, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Reused != 0 || first.Resolved != int64(net.Len()) {
		t.Fatalf("warm-up ledger: %+v (want 0 reused, %d resolved)", first, net.Len())
	}
	// A single sink edit invalidates exactly its root path.
	sink := s.Tree().Sinks()[0]
	depth := len(s.Tree().PathToRoot(sink))
	second, err := Delta(context.Background(), s,
		[]Edit{{Op: EditSetCap, Node: sink, Value: 33e-15}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Resolved != int64(depth) {
		t.Fatalf("re-resolved %d subtrees, want exactly the %d-node root path", second.Resolved, depth)
	}
	if second.Reused == 0 || second.Reused+second.Resolved != second.Lookups {
		t.Fatalf("reuse ledger: %+v", second)
	}
	// A no-edit re-solve reuses the root outright: one lookup, one hit.
	third, err := Delta(context.Background(), s, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if third.Lookups != 1 || third.Reused != 1 || third.Resolved != 0 {
		t.Fatalf("idempotent re-solve ledger: %+v (want a single root hit)", third)
	}
}

// TestDeltaEditAtomicity pins the all-or-nothing contract: a batch with
// one invalid edit leaves the session tree, hashes, and ledger untouched.
func TestDeltaEditAtomicity(t *testing.T) {
	t.Parallel()
	nets, lib, params := diffCorpus(t, 2)
	s, err := NewSession(Problem{Tree: nets[0], Library: lib, Params: params, Objective: MaxSlack}, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Tree()
	sink := before.Sinks()[0]
	_, err = Delta(context.Background(), s, []Edit{
		{Op: EditSetCap, Node: sink, Value: 99e-15},         // valid
		{Op: EditSetCap, Node: before.Root(), Value: 1e-15}, // root is not a sink
	}, Options{})
	if !errors.Is(err, guard.ErrInvalidInput) {
		t.Fatalf("bad batch error = %v, want guard.ErrInvalidInput", err)
	}
	after := s.Tree()
	if got := after.Node(sink).Cap; got != before.Node(sink).Cap {
		t.Fatalf("failed batch leaked a partial edit: cap %g, want %g", got, before.Node(sink).Cap)
	}
	if st := s.Stats(); st.Edits != 0 || st.Deltas != 0 {
		t.Fatalf("failed batch moved the ledger: %+v", st)
	}

	// Invalid edits of every class map to invalid-input, never panic.
	for _, bad := range []Edit{
		{Op: EditSetCap, Node: -1, Value: 1e-15},
		{Op: EditSetCap, Node: sink, Value: math.NaN()},
		{Op: EditSetRAT, Node: rctree.NodeID(before.Len()), Value: 1e-12},
		{Op: EditSetWire, Node: before.Root(), Wire: rctree.Wire{R: 1, C: 1e-15}},
		{Op: EditSetWire, Node: sink, Wire: rctree.Wire{R: -1, C: 1e-15}},
		{Op: EditGraft, Node: sink, Sub: graftDonor(rand.New(rand.NewSource(1)))},
		{Op: EditGraft, Node: before.Root()}, // nil subtree
		{Op: EditPrune, Node: before.Root()},
		{Op: EditOp(99), Node: sink},
	} {
		if _, err := Delta(context.Background(), s, []Edit{bad}, Options{}); !errors.Is(err, guard.ErrInvalidInput) {
			t.Errorf("edit %+v: error = %v, want guard.ErrInvalidInput", bad, err)
		}
	}
}

// TestDeltaMemoEviction pins graceful degradation: a byte-starved memo
// evicts entries, and the next Delta recomputes them — slower, never
// wrong.
func TestDeltaMemoEviction(t *testing.T) {
	t.Parallel()
	nets, lib, params := diffCorpus(t, 2)
	p := Problem{Tree: nets[0], Library: lib, Params: params, Objective: MaxSlackNoise}
	s, err := NewSession(p, SessionConfig{MemoBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Delta(context.Background(), s, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if ev := s.MemoStats().Evicted; ev == 0 {
		t.Fatalf("4 KiB budget evicted nothing over a %d-node net", nets[0].Len())
	}
	if s.MemoBytes() > 4096 {
		t.Fatalf("resident bytes %d exceed the 4096 budget", s.MemoBytes())
	}
	got, err := Delta(context.Background(), s, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Optimize(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsEqual(got.Result, want); err != nil {
		t.Fatalf("evicted memo changed the answer: %v", err)
	}
}

// TestDeltaPurge pins Session.Purge: books stay exact and the next solve
// rebuilds the memo from scratch.
func TestDeltaPurge(t *testing.T) {
	t.Parallel()
	nets, lib, params := diffCorpus(t, 2)
	s, err := NewSession(Problem{Tree: nets[0], Library: lib, Params: params, Objective: MaxSlack}, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Delta(context.Background(), s, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if n := s.Purge(); n == 0 {
		t.Fatal("Purge dropped nothing after a full solve")
	}
	if s.MemoBytes() != 0 {
		t.Fatalf("post-purge resident bytes = %d, want 0", s.MemoBytes())
	}
	res, err := Delta(context.Background(), s, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reused != 0 || res.Resolved != int64(nets[0].Len()) {
		t.Fatalf("post-purge ledger %+v, want a full recompute", res)
	}
}

// TestNewSessionValidation pins the front-door checks.
func TestNewSessionValidation(t *testing.T) {
	t.Parallel()
	nets, lib, params := diffCorpus(t, 2)
	if _, err := NewSession(Problem{Library: lib, Params: params}, SessionConfig{}); !errors.Is(err, guard.ErrInvalidInput) {
		t.Errorf("nil tree: %v, want invalid-input", err)
	}
	if _, err := NewSession(Problem{Tree: nets[0], Params: params}, SessionConfig{}); !errors.Is(err, guard.ErrInvalidInput) {
		t.Errorf("nil library: %v, want invalid-input", err)
	}
	wide := rctree.New("wide", 100, 10e-12)
	w := rctree.Wire{R: 50, C: 20e-15, Length: 0.2e-3}
	wide.AddSink(wide.Root(), w, "a", 10e-15, 400e-12, 0.5)
	wide.AddSink(wide.Root(), w, "b", 10e-15, 400e-12, 0.5)
	wide.AddSink(wide.Root(), w, "c", 10e-15, 400e-12, 0.5)
	if _, err := NewSession(Problem{Tree: wide, Library: lib, Params: params}, SessionConfig{}); !errors.Is(err, guard.ErrInvalidInput) {
		t.Errorf("non-binary tree: %v, want invalid-input", err)
	}
	if _, err := Delta(context.Background(), nil, nil, Options{}); !errors.Is(err, guard.ErrInvalidInput) {
		t.Errorf("nil session: %v, want invalid-input", err)
	}
	s, err := NewSession(Problem{Tree: nets[0], Library: lib, Params: params}, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Delta(context.Background(), s, nil, Options{Engine: "warp"}); !errors.Is(err, guard.ErrInvalidInput) {
		t.Errorf("unknown engine: %v, want invalid-input", err)
	}
	// The session's private clone isolates it from caller mutation.
	nets[0].Node(nets[0].Sinks()[0]).Cap = 1e-3
	if got := s.Tree().Node(s.Tree().Sinks()[0]).Cap; got == 1e-3 {
		t.Error("session shares the caller's tree")
	}
}

// TestDeltaConcurrentSessions pins that one session serializes its Deltas
// (the race detector is the real judge here) while remaining correct.
func TestDeltaConcurrentEdits(t *testing.T) {
	t.Parallel()
	nets, lib, params := diffCorpus(t, 2)
	p := Problem{Tree: nets[0], Library: lib, Params: params, Objective: MaxSlack}
	s, err := NewSession(p, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	sinks := s.Tree().Sinks()
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			for i := 0; i < 5; i++ {
				e := Edit{Op: EditSetCap, Node: sinks[(g+i)%len(sinks)], Value: float64(10+g+i) * 1e-15}
				if _, err := Delta(context.Background(), s, []Edit{e}, Options{}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Whatever interleaving happened, the final state must solve exactly
	// like a fresh problem over the final tree.
	got, err := Delta(context.Background(), s, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := p
	ref.Tree = s.Tree()
	want, err := Optimize(context.Background(), ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := resultsEqual(got.Result, want); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Lookups != st.Reused+st.Resolved {
		t.Fatalf("session ledger broken after concurrent edits: %+v", st)
	}
}
