package core

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/netgen"
	"buffopt/internal/noise"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
	"buffopt/internal/testutil"
)

// The differential suite is the gate on the parallel dynamic program: for
// a seeded netgen corpus it asserts that every observable output of the
// DP — candidate lists field by field, buffer placements, wire widths,
// slack bits, candidate-count telemetry — is identical between the serial
// walk and the worker-pool walk, at several worker counts, and across
// repeated runs. Parallelism is allowed to change when nodes are
// computed, never what they compute.

// diffCorpusSize is the full corpus; short mode trims it but stays above
// the 50-topology floor the suite documents.
const diffCorpusSize = 60

// diffCorpus builds the seeded corpus: netgen nets (the Table I-shaped
// topology mix), segmented exactly as the experiments pipeline segments
// them, so the DP sees realistic candidate-site densities.
func diffCorpus(t testing.TB, n int) ([]*rctree.Tree, *buffers.Library, noise.Params) {
	t.Helper()
	suite, err := netgen.Generate(netgen.Config{Seed: 7, NumNets: n})
	if err != nil {
		t.Fatal(err)
	}
	nets := make([]*rctree.Tree, len(suite.Nets))
	for i, tr := range suite.Nets {
		seg := tr.Clone()
		if _, err := segment.ByLength(seg, 0.5e-3); err != nil {
			t.Fatal(err)
		}
		if _, err := seg.InsertBelow(seg.Root()); err != nil {
			t.Fatal(err)
		}
		nets[i] = seg
	}
	return nets, suite.Library, suite.Tech.Noise
}

// candsEqual compares two candidate lists bit for bit: every float via
// math.Float64bits (so -0 vs 0 or differing NaNs cannot hide), every
// count exactly, and the flattened solution DAGs as assignment maps.
func candsEqual(a, b []vgCand) error {
	if len(a) != len(b) {
		return fmt.Errorf("list lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if math.Float64bits(x.load) != math.Float64bits(y.load) ||
			math.Float64bits(x.q) != math.Float64bits(y.q) ||
			math.Float64bits(x.down) != math.Float64bits(y.down) ||
			math.Float64bits(x.ns) != math.Float64bits(y.ns) {
			return fmt.Errorf("candidate %d numeric fields differ: %+v vs %+v", i, x, y)
		}
		if x.nbuf != y.nbuf || x.cost != y.cost || x.pol != y.pol {
			return fmt.Errorf("candidate %d counts differ: %+v vs %+v", i, x, y)
		}
		ax, wx := collectSol(x.sol)
		ay, wy := collectSol(y.sol)
		if err := assignEqual(ax, ay); err != nil {
			return fmt.Errorf("candidate %d solutions differ: %w", i, err)
		}
		if len(wx) != len(wy) {
			return fmt.Errorf("candidate %d width maps differ: %v vs %v", i, wx, wy)
		}
		for k, v := range wx {
			if wy[k] != v {
				return fmt.Errorf("candidate %d width at node %d: %g vs %g", i, k, v, wy[k])
			}
		}
	}
	return nil
}

func assignEqual(a, b map[rctree.NodeID]buffers.Buffer) error {
	if len(a) != len(b) {
		return fmt.Errorf("assignment sizes differ: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || w.Name != v.Name {
			return fmt.Errorf("node %d: %q vs %q", k, v.Name, w.Name)
		}
	}
	return nil
}

// diffProfiles are the DP configurations the corpus is differenced under:
// the Section V tool configuration, the unconstrained baseline, safe
// pruning, and simultaneous wire sizing.
func diffProfiles(p noise.Params) []struct {
	name string
	opts vgOptions
} {
	return []struct {
		name string
		opts vgOptions
	}{
		{"buffopt-k8", vgOptions{noise: true, params: p, countIndexed: true, maxBuffers: 8}},
		{"delayopt", vgOptions{}},
		{"safe-pruning", vgOptions{noise: true, params: p, safePruning: true}},
		{"sizing", vgOptions{noise: true, params: p, widths: []float64{1, 2, 4}}},
	}
}

// TestDifferentialSerialVsParallel is the core gate: on every corpus net
// and every profile, the parallel walk's root candidate list is
// bit-identical to the serial walk's, and the candidate-count telemetry
// (generated, pruned, merged, visited, highwater) matches exactly —
// schedule-independent accounting, not just schedule-independent answers.
func TestDifferentialSerialVsParallel(t *testing.T) {
	n := diffCorpusSize
	profiles := "all"
	if testing.Short() {
		n = 50
		profiles = "first-two"
	}
	nets, lib, p := diffCorpus(t, n)

	runOnce := func(tr *rctree.Tree, opts vgOptions, workers int) ([]vgCand, obs.Snapshot) {
		t.Helper()
		old := obs.Default()
		obs.SetDefault(obs.NewRegistry())
		defer obs.SetDefault(old)
		opts.workers = workers
		cands, err := runVG(tr, lib, opts)
		if err != nil {
			t.Fatalf("runVG(workers=%d): %v", workers, err)
		}
		return cands, obs.Default().Snapshot()
	}

	statKeys := []string{
		"vg.candidates.generated", "vg.candidates.pruned",
		"vg.candidates.merged", "vg.nodes.visited",
	}
	for pi, prof := range diffProfiles(p) {
		if profiles == "first-two" && pi >= 2 {
			break
		}
		t.Run(prof.name, func(t *testing.T) {
			profNets := nets
			if prof.name == "sizing" && len(profNets) > 12 {
				// Sizing multiplies every wire charge by the width menu;
				// a dozen nets exercise the sized merge paths without
				// dominating the race-gated suite's wall clock.
				profNets = profNets[:12]
			}
			for i, tr := range profNets {
				serial, ssnap := runOnce(tr, prof.opts, 1)
				for _, workers := range []int{2, 4} {
					par, psnap := runOnce(tr, prof.opts, workers)
					if err := candsEqual(serial, par); err != nil {
						t.Fatalf("net %d (%s), workers %d: %v",
							i, tr.Node(tr.Root()).Name, workers, err)
					}
					for _, k := range statKeys {
						if ssnap.Counters[k] != psnap.Counters[k] {
							t.Errorf("net %d, workers %d: %s = %d parallel vs %d serial",
								i, workers, k, psnap.Counters[k], ssnap.Counters[k])
						}
					}
					if sg, pg := ssnap.Gauges["vg.list.highwater"], psnap.Gauges["vg.list.highwater"]; sg != pg {
						t.Errorf("net %d, workers %d: highwater %d parallel vs %d serial", i, workers, pg, sg)
					}
					// The pool must balance on every run, serial or not.
					if tk, rt := psnap.Counters["vg.pool.taken"], psnap.Counters["vg.pool.returned"]; tk != rt {
						t.Errorf("net %d, workers %d: pool taken %d != returned %d", i, workers, tk, rt)
					}
				}
			}
		})
	}
}

// TestDifferentialPublicAPI differences the public entry points — what
// the service actually serves — across worker counts: slack bits, cost,
// buffer placements, and wire widths all identical.
func TestDifferentialPublicAPI(t *testing.T) {
	n := diffCorpusSize
	if testing.Short() {
		n = 50
	}
	nets, lib, p := diffCorpus(t, n)
	workerSet := []int{1, 2, 4, runtime.GOMAXPROCS(0)}

	for i, tr := range nets {
		var base *Result
		for _, w := range workerSet {
			res, err := BuffOptMinBuffers(tr, lib, p, Options{Workers: w})
			if err != nil {
				t.Fatalf("net %d workers %d: %v", i, w, err)
			}
			if base == nil {
				base = res
				continue
			}
			if math.Float64bits(res.Slack) != math.Float64bits(base.Slack) {
				t.Fatalf("net %d workers %d: slack %x vs %x", i, w,
					math.Float64bits(res.Slack), math.Float64bits(base.Slack))
			}
			if res.Cost != base.Cost {
				t.Fatalf("net %d workers %d: cost %d vs %d", i, w, res.Cost, base.Cost)
			}
			if err := assignEqual(res.Buffers, base.Buffers); err != nil {
				t.Fatalf("net %d workers %d: %v", i, w, err)
			}
			if len(res.Widths) != len(base.Widths) {
				t.Fatalf("net %d workers %d: widths %v vs %v", i, w, res.Widths, base.Widths)
			}
		}
	}
}

// TestDeterminismRepeatedRuns locks in byte-identical JSON across repeated
// runs at every worker count: the insertion order of map-built candidate
// stages used to be randomized, so this is a regression gate on the
// deterministic emission orders in insertBuffers and pruneVG.
func TestDeterminismRepeatedRuns(t *testing.T) {
	nets, lib, p := diffCorpus(t, 50)
	if testing.Short() {
		nets = nets[:20]
	}
	for i, tr := range nets {
		var want []byte
		for rep := 0; rep < 3; rep++ {
			for _, w := range []int{1, 4} {
				res, err := BuffOptMinBuffers(tr, lib, p, Options{Workers: w})
				if err != nil {
					t.Fatalf("net %d rep %d workers %d: %v", i, rep, w, err)
				}
				got := resultJSON(t, res)
				if want == nil {
					want = got
					continue
				}
				if string(got) != string(want) {
					t.Fatalf("net %d rep %d workers %d: result JSON drifted:\n%s\nvs\n%s",
						i, rep, w, got, want)
				}
			}
		}
	}
}

// resultJSON renders a Result into a canonical byte form: slack bits,
// cost, and placements sorted by node.
func resultJSON(t *testing.T, res *Result) []byte {
	t.Helper()
	type placed struct {
		Node  int     `json:"node"`
		Buf   string  `json:"buf"`
		Width float64 `json:"width,omitempty"`
	}
	out := struct {
		SlackBits uint64   `json:"slack_bits"`
		Cost      int      `json:"cost"`
		Buffers   []placed `json:"buffers"`
		Widths    []placed `json:"widths"`
	}{SlackBits: math.Float64bits(res.Slack), Cost: res.Cost}
	for v, b := range res.Buffers {
		out.Buffers = append(out.Buffers, placed{Node: int(v), Buf: b.Name})
	}
	sort.Slice(out.Buffers, func(i, j int) bool { return out.Buffers[i].Node < out.Buffers[j].Node })
	for v, w := range res.Widths {
		out.Widths = append(out.Widths, placed{Node: int(v), Width: w})
	}
	sort.Slice(out.Widths, func(i, j int) bool { return out.Widths[i].Node < out.Widths[j].Node })
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDifferentialExhaustiveSpotCheck cross-checks the parallel DP against
// the exhaustive oracles on small random nets: optimal slack agreement
// (Theorem 5 territory) with the worker pool engaged, not just between the
// two walks.
func TestDifferentialExhaustiveSpotCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B", Cin: 0.05, R: 1, T: 0.4, NoiseMargin: 6},
	}}
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	trials := 60
	if testing.Short() {
		trials = 25
	}
	checked := 0
	for trial := 0; trial < trials; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 4, MaxSinks: 3, MarginLo: 3, MarginHi: 8, BufferSites: true,
		})
		if _, err := segment.ByCount(tr, 2); err != nil {
			t.Fatal(err)
		}
		if len(feasibleNodes(tr)) > 9 {
			continue
		}
		res, err := BuffOpt(tr, lib, p, Options{Workers: 4})
		want, _, ok, oerr := ExhaustiveMaxSlackNoise(tr, lib, p, true)
		if oerr != nil {
			t.Fatal(oerr)
		}
		if !ok {
			if err == nil {
				t.Fatalf("trial %d: parallel BuffOpt succeeded where no feasible assignment exists", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: parallel BuffOpt failed but exhaustive found slack %g: %v", trial, want, err)
		}
		if !approx(res.Slack, want) {
			t.Fatalf("trial %d: parallel BuffOpt slack %g, exhaustive %g", trial, res.Slack, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no trial reached the oracle; the generator is degenerate")
	}
}
