package core

import (
	"fmt"

	"buffopt/internal/buffers"
	"buffopt/internal/guard"
	"buffopt/internal/noise"
	"buffopt/internal/obs"
	"buffopt/internal/rctree"
)

// Algorithm1 solves Problem 1 for a single-sink tree: insert the minimum
// number of buffers such that no noise constraint is violated (Section
// III-B of the paper, proved optimal in Theorem 3, O(n) time).
//
// The tree must have exactly one sink (a source-to-sink path); internal
// nodes along the path are fine and their wires may carry explicit
// aggressor lists. The algorithm walks from the sink toward the source
// maintaining the downstream current I and noise slack NS. On each wire it
// first tests whether a buffer placed at the wire's top would be
// noise-clean (Step 3); if not, Theorem 1 gives the buffer's maximal legal
// distance up the wire, the buffer is placed there (Step 4), and the walk
// restarts above it with I = 0 and NS equal to the buffer's own noise
// margin. At the source, a buffer is inserted immediately after the driver
// if the driver's resistance alone violates the remaining slack (Step 5,
// possible only when the driver is weaker than the buffer).
//
// A library with multiple buffer types reduces to the single smallest-
// resistance buffer: by Theorem 1, smaller resistance never decreases the
// legal spacing, so the minimum-R buffer is optimal (Section III-B).
//
// The returned Solution owns a private augmented copy of t; the input tree
// is never modified.
func Algorithm1(t *rctree.Tree, lib *buffers.Library, p noise.Params) (*Solution, error) {
	return Algorithm1Budget(t, lib, p, nil)
}

// Algorithm1Budget is Algorithm1 under a resource budget: the walk checks
// the budget at every wire and every buffer placement, returning an error
// wrapping guard.ErrCanceled or guard.ErrBudgetExceeded when it trips. A
// nil budget imposes no limits.
func Algorithm1Budget(t *rctree.Tree, lib *buffers.Library, p noise.Params, b *guard.Budget) (*Solution, error) {
	if err := t.Validate(); err != nil {
		return nil, invalid(err)
	}
	if n := t.NumSinks(); n != 1 {
		return nil, invalid(fmt.Errorf("core: Algorithm1 requires a single-sink tree, got %d sinks", n))
	}
	if err := lib.Validate(); err != nil {
		return nil, invalid(err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := b.CheckTreeNodes(t.Len()); err != nil {
		return nil, err
	}
	buf, err := lib.MinResistance()
	if err != nil {
		return nil, err
	}

	// Telemetry accumulates locally and flushes once on every exit path:
	// one buffer per Theorem 1 placement, one l_max evaluation per
	// MaxSafeLength call.
	var lmaxEvals, inserted int64
	defer func() {
		obs.Add("alg1.lmax.evals", lmaxEvals)
		obs.Add("alg1.buffers.inserted", inserted)
	}()

	work := t.Clone()
	assign := make(map[rctree.NodeID]buffers.Buffer)
	sink := work.Sinks()[0]

	cur := sink
	down := 0.0                       // I(cur), eq. 7
	ns := work.Node(sink).NoiseMargin // NS(cur), eq. 12

	for cur != work.Root() {
		if err := b.Check(); err != nil {
			return nil, err
		}
		w := work.Node(cur).Wire
		iw := p.WireCurrent(w)

		if WireTopNoise(buf.R, w.R, iw, down) <= ns {
			// No buffer needed anywhere on this wire: accumulate and climb.
			ns -= w.R * (down + iw/2)
			down += iw
			cur = work.Node(cur).Parent
			continue
		}
		// A buffer is needed somewhere on this wire.
		if w.Length <= 0 {
			return nil, fmt.Errorf("core: zero-length wire above node %d violates noise and has no interior: %w",
				cur, ErrNoiseUnfixable)
		}
		r := w.R / w.Length
		iu := iw / w.Length
		lmaxEvals++
		l, err := MaxSafeLength(buf.R, r, iu, down, ns)
		if err != nil {
			return nil, err
		}
		l *= placementBackoff
		if l <= 0 && down == 0 {
			// Even a freshly buffered wire of zero length violates: the
			// buffer noise margin itself is exhausted. No placement fixes
			// this net.
			return nil, fmt.Errorf("core: buffer noise margin %g V cannot cover wire above node %d: %w",
				buf.NoiseMargin, cur, ErrNoiseUnfixable)
		}
		if l >= w.Length {
			// The top test failing implies l < Length; guard against
			// floating-point disagreement by treating it as "no buffer".
			ns -= w.R * (down + iw/2)
			down += iw
			cur = work.Node(cur).Parent
			continue
		}
		at, err := work.SplitWire(cur, l/w.Length)
		if err != nil {
			return nil, err
		}
		assign[at] = buf
		inserted++
		// Restart above the buffer: it is a restoring stage, so no current
		// propagates past it, and its own input must now be protected.
		cur = at
		down = 0
		ns = buf.NoiseMargin
	}

	// Step 5: the driver itself.
	if work.DriverResistance*down > ns {
		if buf.R*down > ns {
			return nil, fmt.Errorf("core: even a buffer at the source output violates noise: %w", ErrNoiseUnfixable)
		}
		at, err := work.InsertBelow(work.Root())
		if err != nil {
			return nil, err
		}
		assign[at] = buf
		inserted++
	}

	return &Solution{Tree: work, Buffers: assign}, nil
}
