package core

import (
	"fmt"
	"sort"

	"buffopt/internal/buffers"
	"buffopt/internal/rctree"
)

// Solution is the output of every insertion algorithm: a tree (a private
// copy of the input, possibly augmented with wire-split nodes where buffers
// were placed mid-wire) and the buffer assignment on it. Feed Tree and
// Buffers straight into elmore.Analyze and noise.Analyze.
type Solution struct {
	Tree    *rctree.Tree
	Buffers map[rctree.NodeID]buffers.Buffer
	// Widths holds the chosen wire width multiplier for each resized
	// wire, keyed by the wire's child node, when the optimizer ran with
	// Options.Sizing (Lillis-style simultaneous wire sizing). The widths
	// are already applied to Tree's wire parasitics; this map exists for
	// reporting. Nil or empty when sizing was off or chose minimum width
	// everywhere.
	Widths map[rctree.NodeID]float64
}

// NumBuffers returns the number of inserted buffers, |M| in the paper.
func (s *Solution) NumBuffers() int { return len(s.Buffers) }

// placement records one buffer to be realized on the ORIGINAL tree: the
// buffer sits on the parent wire of node child, at distance dist above the
// child end. dist == 0 places it electrically at the child end; atTop
// places it immediately below the parent (the "buffer immediately
// following a branch point" of Algorithm 2). Placements form a persistent
// DAG so dynamic-programming candidates can share history without copying.
type placement struct {
	child    rctree.NodeID
	dist     float64
	buf      buffers.Buffer
	atTop    bool
	junction bool // pure merge point carrying no buffer of its own
	prev     [2]*placement
}

// collect flattens the placement DAG into a slice. A visited set keeps
// pathological sharing safe; the walk is iterative so arbitrarily long
// single-wire chains (finely buffered lines) cannot overflow the stack.
func (p *placement) collect() []*placement {
	var out []*placement
	seen := map[*placement]bool{}
	stack := []*placement{p}
	for len(stack) > 0 {
		q := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if q == nil || seen[q] {
			continue
		}
		seen[q] = true
		if !q.junction {
			out = append(out, q)
		}
		stack = append(stack, q.prev[0], q.prev[1])
	}
	return out
}

// applyPlacements realizes a placement DAG on tree t (already a private
// clone), splitting wires as needed, and returns the assignment map.
func applyPlacements(t *rctree.Tree, last *placement) (map[rctree.NodeID]buffers.Buffer, error) {
	assign := make(map[rctree.NodeID]buffers.Buffer)
	if last == nil {
		return assign, nil
	}
	all := last.collect()

	// Group placements by the wire they live on, then realize each wire's
	// placements bottom-up by distance from the child end.
	byWire := map[rctree.NodeID][]*placement{}
	for _, p := range all {
		byWire[p.child] = append(byWire[p.child], p)
	}
	// Deterministic iteration order for reproducible node IDs.
	wires := make([]rctree.NodeID, 0, len(byWire))
	for w := range byWire {
		wires = append(wires, w)
	}
	sort.Slice(wires, func(i, j int) bool { return wires[i] < wires[j] })

	for _, child := range wires {
		ps := byWire[child]
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].atTop != ps[j].atTop {
				return !ps[i].atTop // top placements realize last
			}
			return ps[i].dist < ps[j].dist
		})
		total := t.Node(child).Wire.Length
		bottom := child // node whose parent wire is the unsplit remainder
		consumed := 0.0 // wire length already realized below `bottom`'s wire
		for _, p := range ps {
			var f float64
			switch {
			case p.atTop:
				f = 1
			case total-consumed <= 0:
				f = 1 // remainder has zero length; every point coincides
			default:
				f = (p.dist - consumed) / (total - consumed)
				if f < 0 {
					f = 0
				}
				if f > 1 {
					f = 1
				}
			}
			at, err := t.SplitWire(bottom, f)
			if err != nil {
				return nil, err
			}
			if prev, dup := assign[at]; dup {
				return nil, fmt.Errorf("core: two buffers (%s, %s) assigned to node %d", prev.Name, p.buf.Name, at)
			}
			assign[at] = p.buf
			if !p.atTop && p.dist > consumed {
				consumed = p.dist
			}
			bottom = at
		}
	}
	return assign, nil
}
