package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"buffopt/internal/guard"
)

// solvedExact returns a handful of exact results keyed the way the cache
// would key them.
func solvedExact(t *testing.T, n int) (keys []string, results []*SolveResult) {
	t.Helper()
	nets, lib, p := diffCorpus(t, n)
	for _, tr := range nets {
		res, err := Solve(context.Background(), tr, lib, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Tier != TierExact {
			t.Fatalf("corpus net did not solve exactly: tier %v", res.Tier)
		}
		prob := Problem{Tree: tr, Library: lib, Params: p, Objective: MinBuffersNoise}
		keys = append(keys, SolveCacheKey(prob, Options{}))
		results = append(results, res)
	}
	return keys, results
}

func TestSolveResultCodecRoundTrip(t *testing.T) {
	keys, results := solvedExact(t, 5)
	for i, res := range results {
		enc, err := EncodeSolveResult(keys[i], res)
		if err != nil {
			t.Fatalf("net %d: encode: %v", i, err)
		}
		got, err := DecodeSolveResult(keys[i], enc)
		if err != nil {
			t.Fatalf("net %d: decode: %v", i, err)
		}
		// Byte-identity via the same comparator the differential suite
		// uses: slack bits, cost, placements, widths.
		if want, have := resultJSON(t, res.Result), resultJSON(t, got.Result); !bytes.Equal(want, have) {
			t.Fatalf("net %d: result drifted through the codec:\nwant %s\nhave %s", i, want, have)
		}
		if got.Tier != TierExact || got.Degraded || len(got.TierErrors) != 0 || got.Cached || got.Coalesced {
			t.Fatalf("net %d: decoded metadata %+v not pristine", i, got)
		}
		if err := got.Solution.Tree.Validate(); err != nil {
			t.Fatalf("net %d: decoded tree invalid: %v", i, err)
		}
		// Deterministic encoding: the same result encodes to the same
		// bytes every time (maps are sorted).
		enc2, _ := EncodeSolveResult(keys[i], res)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("net %d: encoding is not deterministic", i)
		}
	}
}

func TestSolveResultCodecRefusesKeyMismatch(t *testing.T) {
	keys, results := solvedExact(t, 2)
	enc, err := EncodeSolveResult(keys[0], results[0])
	if err != nil {
		t.Fatal(err)
	}
	// Stored under a different slot (a stale or transplanted snapshot
	// entry): the embedded key disagrees and the decode must fail.
	if _, err := DecodeSolveResult(keys[1], enc); err == nil {
		t.Fatal("decode under a mismatched key accepted")
	}
	if _, err := DecodeSolveResult(keys[0], enc); err != nil {
		t.Fatalf("decode under the right key failed: %v", err)
	}
}

func TestSolveResultCodecRefusesDegraded(t *testing.T) {
	keys, results := solvedExact(t, 1)
	res := results[0]

	for name, mutate := range map[string]func(*SolveResult) *SolveResult{
		"nil":        func(r *SolveResult) *SolveResult { return nil },
		"no-result":  func(r *SolveResult) *SolveResult { return &SolveResult{Tier: TierExact} },
		"degraded":   func(r *SolveResult) *SolveResult { c := *r; c.Degraded = true; return &c },
		"wrong-tier": func(r *SolveResult) *SolveResult { c := *r; c.Tier = TierGreedy; return &c },
		"tier-errors": func(r *SolveResult) *SolveResult {
			c := *r
			c.TierErrors = []*TierError{{Tier: TierExact, Elapsed: time.Millisecond, Err: guard.ErrBudgetExceeded}}
			return &c
		},
	} {
		if _, err := EncodeSolveResult(keys[0], mutate(res)); !errors.Is(err, ErrNotSnapshottable) {
			t.Fatalf("%s: encode error %v, want ErrNotSnapshottable", name, err)
		}
	}
}

func TestSolveResultCodecRejectsCorruption(t *testing.T) {
	keys, results := solvedExact(t, 1)
	enc, err := EncodeSolveResult(keys[0], results[0])
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(enc); n += 3 {
		if _, err := DecodeSolveResult(keys[0], enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := DecodeSolveResult(keys[0], append(append([]byte(nil), enc...), 1)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
