package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

func TestMaxSafeLengthHandCase(t *testing.T) {
	// rb=1, r=1, i=2, down=1, ns=10 → l² + 3l − 9 = 0 → l = (−3+√45)/2.
	l, err := MaxSafeLength(1, 1, 2, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := (-3 + math.Sqrt(45)) / 2
	if !approx(l, want) {
		t.Errorf("l = %v, want %v", l, want)
	}
	// At l the noise equals the slack exactly.
	noise := 1*(1+2*l) + 1*l*(1+2*l/2)
	if !approx(noise, 10) {
		t.Errorf("noise at l_max = %v, want 10", noise)
	}
}

func TestMaxSafeLengthDegenerate(t *testing.T) {
	// Zero coupling and zero downstream current: unbounded wire.
	l, err := MaxSafeLength(1, 1, 0, 0, 5)
	if err != nil || !math.IsInf(l, 1) {
		t.Errorf("l = %v, err = %v; want +Inf", l, err)
	}
	// Zero wire resistance: linear, l = (ns − rb·down)/(rb·i).
	l, err = MaxSafeLength(2, 0, 1, 1, 10)
	if err != nil || !approx(l, (10.0-2)/2) {
		t.Errorf("l = %v, err = %v; want 4", l, err)
	}
	// Zero coupling but nonzero downstream current: l = (ns − rb·down)/(r·down).
	l, err = MaxSafeLength(1, 2, 0, 1, 5)
	if err != nil || !approx(l, (5.0-1)/2) {
		t.Errorf("l = %v, err = %v; want 2", l, err)
	}
	// Slack exactly exhausted: zero length, no error.
	l, err = MaxSafeLength(2, 1, 1, 3, 6)
	if err != nil || !approx(l, 0) {
		t.Errorf("l = %v, err = %v; want 0", l, err)
	}
}

func TestMaxSafeLengthTooLate(t *testing.T) {
	_, err := MaxSafeLength(2, 1, 1, 5, 6)
	if !errors.Is(err, ErrNoiseUnfixable) {
		t.Errorf("err = %v, want ErrNoiseUnfixable", err)
	}
	if _, err := MaxSafeLength(-1, 1, 1, 1, 1); err == nil {
		t.Errorf("negative rb accepted")
	}
}

// TestMaxSafeLengthIsMaximal property: for random parameters, the noise at
// l_max equals ns, and at 1.01·l_max it exceeds ns.
func TestMaxSafeLengthIsMaximal(t *testing.T) {
	f := func(rb, r, i, down, ns uint16) bool {
		Rb := 0.1 + float64(rb%997)/100
		ru := 0.1 + float64(r%991)/100
		iu := 0.1 + float64(i%983)/100
		I := float64(down%97) / 10
		NS := Rb*I + 0.1 + float64(ns%89)/10 // guarantee feasibility
		l, err := MaxSafeLength(Rb, ru, iu, I, NS)
		if err != nil {
			return false
		}
		noiseAt := func(x float64) float64 {
			return Rb*(I+iu*x) + ru*x*(I+iu*x/2)
		}
		if math.Abs(noiseAt(l)-NS) > 1e-6*NS {
			return false
		}
		return noiseAt(l*1.01) > NS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWireTopNoiseConsistentWithMaxSafeLength(t *testing.T) {
	// A wire exactly l_max long must pass the top test with equality.
	rb, r, i, down, ns := 1.5, 0.8, 1.2, 0.5, 7.0
	l, err := MaxSafeLength(rb, r, i, down, ns)
	if err != nil {
		t.Fatal(err)
	}
	top := WireTopNoise(rb, r*l, i*l, down)
	if !approx(top, ns) {
		t.Errorf("WireTopNoise at l_max = %v, want %v", top, ns)
	}
}

func TestRequiredSeparation(t *testing.T) {
	// μ·β·c·l·(r·l/2 + rb) / (ns − rb·down − r·down·l).
	d, err := RequiredSeparation(2, 1, 3, 4, 0.5, 0.25, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	num := 4 * 0.5 * 3 * 2 * (1.0*2/2 + 2)
	den := 10 - 2*0.25 - 1*0.25*2
	if !approx(d, num/den) {
		t.Errorf("d = %v, want %v", d, num/den)
	}
	// Budget exhausted by non-coupling noise → error.
	if _, err := RequiredSeparation(2, 1, 3, 4, 0.5, 5, 10, 2); !errors.Is(err, ErrNoiseUnfixable) {
		t.Errorf("err = %v, want ErrNoiseUnfixable", err)
	}
	// Zero coupling needs zero separation.
	d, err = RequiredSeparation(2, 1, 3, 0, 0.5, 0, 10, 2)
	if err != nil || d != 0 {
		t.Errorf("d = %v, err = %v; want 0", d, err)
	}
	if _, err := RequiredSeparation(2, 1, 3, 4, -0.5, 0, 10, 2); err == nil {
		t.Errorf("negative beta accepted")
	}
}

// TestSeparationSufficient property: a wire at the returned separation,
// with coupling ratio β/d, exactly meets the noise slack.
func TestSeparationSufficient(t *testing.T) {
	f := func(seed uint16) bool {
		rb := 1 + float64(seed%7)
		r := 0.5 + float64(seed%11)/10
		c := 1 + float64(seed%13)/10
		mu := 1 + float64(seed%5)
		beta := 0.2 + float64(seed%3)/10
		down := float64(seed % 2)
		l := 1 + float64(seed%17)/10
		ns := rb*down + r*down*l + 1 + float64(seed%19)/10
		d, err := RequiredSeparation(rb, r, c, mu, beta, down, ns, l)
		if err != nil {
			return false
		}
		lambda := beta / d
		iu := mu * lambda * c
		noise := rb*(down+iu*l) + r*l*(down+iu*l/2)
		return math.Abs(noise-ns) < 1e-6*ns
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
