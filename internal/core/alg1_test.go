package core

import (
	"errors"
	"math"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

// unitParams makes I_w numerically equal to C_w.
var unitParams = noise.Params{CouplingRatio: 1, Slope: 1}

// singleBufferLib holds one buffer with R=1, NM=5.
func singleBufferLib() *buffers.Library {
	return &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B1", Cin: 0.1, R: 1, T: 0, NoiseMargin: 5},
	}}
}

// line builds a two-pin net: a single wire of the given length with unit
// resistance and capacitance per length, sink noise margin nm, driver
// resistance rso.
func line(t *testing.T, length, nm, rso float64) *rctree.Tree {
	t.Helper()
	tr := rctree.New("line", rso, 0)
	if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: length, C: length, Length: length}, "s", 0.1, 0, nm); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAlgorithm1LongLine(t *testing.T) {
	tr := line(t, 10, 5, 1)
	sol, err := Algorithm1(tr, singleBufferLib(), unitParams)
	if err != nil {
		t.Fatal(err)
	}
	// Hand walk (see the derivation in the package tests design notes):
	// fresh-state maximal spacing solves 0.5·l² + l − 5 = 0 → l = −1+√11.
	// 10 / 2.3166 → 4 buffers, then the remaining 0.7335 reaches the
	// driver cleanly.
	if got := sol.NumBuffers(); got != 4 {
		t.Fatalf("NumBuffers = %d, want 4", got)
	}
	if err := sol.Tree.Validate(); err != nil {
		t.Fatalf("solution tree invalid: %v", err)
	}
	if r := noise.Analyze(sol.Tree, sol.Buffers, unitParams); !r.Clean() {
		t.Fatalf("solution not noise clean: %+v", r.Violations)
	}
	// Buffer spacing: each buffered segment below a buffer has length
	// −1+√11 (maximal placement).
	want := -1 + math.Sqrt(11)
	spacings := bufferedSegmentLengths(sol)
	for i, got := range spacings {
		if !approx(got, want) {
			t.Errorf("buffered segment %d has length %v, want %v", i, got, want)
		}
	}
}

// bufferedSegmentLengths returns, for each buffer, the wire length between
// the buffer and the next restoring stage (buffer or sink) below it.
func bufferedSegmentLengths(sol *Solution) []float64 {
	var out []float64
	for v := range sol.Buffers {
		l := 0.0
		cur := v
		for {
			ch := sol.Tree.Node(cur).Children
			if len(ch) != 1 {
				break
			}
			c := ch[0]
			l += sol.Tree.Node(c).Wire.Length
			if _, buffered := sol.Buffers[c]; buffered || sol.Tree.Node(c).Kind == rctree.Sink {
				break
			}
			cur = c
		}
		out = append(out, l)
	}
	return out
}

func TestAlgorithm1ShortLineNoBuffer(t *testing.T) {
	// Fresh-state safe length is −1+√11 ≈ 2.317 for NM 5; a length-1.5
	// line driven by R_so = 1 has top noise 1·1.5 + 1.5·0.75 = 2.625 ≤ 5.
	tr := line(t, 1.5, 5, 1)
	sol, err := Algorithm1(tr, singleBufferLib(), unitParams)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.NumBuffers(); got != 0 {
		t.Errorf("NumBuffers = %d, want 0", got)
	}
	if !noise.Analyze(sol.Tree, sol.Buffers, unitParams).Clean() {
		t.Errorf("unbuffered short line reported unclean")
	}
}

func TestAlgorithm1SourceBuffer(t *testing.T) {
	// The wire itself is clean under a buffer (top noise with R_b = 1:
	// 1·1.5 + 1.5·0.75 = 2.625 ≤ 5), but the weak driver (R_so = 10)
	// pushes 10·1.5 = 15 > 3.875 of remaining slack, so Step 5 must add a
	// buffer right after the source.
	tr := line(t, 1.5, 5, 10)
	sol, err := Algorithm1(tr, singleBufferLib(), unitParams)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.NumBuffers(); got != 1 {
		t.Fatalf("NumBuffers = %d, want 1", got)
	}
	if r := noise.Analyze(sol.Tree, sol.Buffers, unitParams); !r.Clean() {
		t.Fatalf("solution not clean: %+v", r.Violations)
	}
	// The buffer must sit electrically at the source: zero-length wire.
	for v := range sol.Buffers {
		if sol.Tree.Node(v).Parent != sol.Tree.Root() {
			t.Errorf("source buffer at node %d, parent %d; want child of root", v, sol.Tree.Node(v).Parent)
		}
		if l := sol.Tree.Node(v).Wire.Length; l != 0 {
			t.Errorf("source buffer wire length = %g, want 0", l)
		}
	}
}

func TestAlgorithm1MatchesExhaustiveCount(t *testing.T) {
	for _, length := range []float64{3, 5, 8, 10} {
		tr := line(t, length, 5, 1)
		sol, err := Algorithm1(tr, singleBufferLib(), unitParams)
		if err != nil {
			t.Fatalf("length %g: %v", length, err)
		}
		// Discretize finely and search exhaustively; the continuous optimum
		// can never need more buffers than the best discrete solution.
		seg := tr.Clone()
		if _, err := segment.ByCount(seg, 8); err != nil {
			t.Fatal(err)
		}
		best, _, ok, err := ExhaustiveMinBuffersNoise(seg, singleBufferLib(), unitParams)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("length %g: exhaustive found no clean assignment", length)
		}
		if sol.NumBuffers() > best {
			t.Errorf("length %g: Algorithm1 used %d buffers, discrete optimum %d", length, sol.NumBuffers(), best)
		}
		// With 8 segments per wire the discrete optimum should also not
		// beat the continuous optimum.
		if best < sol.NumBuffers() {
			t.Errorf("length %g: discrete %d beats continuous %d", length, best, sol.NumBuffers())
		}
	}
}

func TestAlgorithm1MultipleBufferTypesUsesStrongest(t *testing.T) {
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "weak", Cin: 0.1, R: 4, T: 0, NoiseMargin: 5},
		{Name: "strong", Cin: 0.3, R: 1, T: 0, NoiseMargin: 5},
		{Name: "mid", Cin: 0.2, R: 2, T: 0, NoiseMargin: 5},
	}}
	tr := line(t, 10, 5, 1)
	sol, err := Algorithm1(tr, lib, unitParams)
	if err != nil {
		t.Fatal(err)
	}
	for v, b := range sol.Buffers {
		if b.Name != "strong" {
			t.Errorf("node %d uses %q, want the minimum-resistance buffer", v, b.Name)
		}
	}
	if got := sol.NumBuffers(); got != 4 {
		t.Errorf("NumBuffers = %d, want 4 (same as single-buffer case)", got)
	}
}

func TestAlgorithm1Errors(t *testing.T) {
	// Multi-sink tree rejected.
	tr := rctree.New("y", 1, 0)
	v, _ := tr.AddInternal(tr.Root(), rctree.Wire{R: 1, C: 1, Length: 1}, true)
	_, _ = tr.AddSink(v, rctree.Wire{R: 1, C: 1, Length: 1}, "a", 0, 0, 1)
	_, _ = tr.AddSink(v, rctree.Wire{R: 1, C: 1, Length: 1}, "b", 0, 0, 1)
	if _, err := Algorithm1(tr, singleBufferLib(), unitParams); err == nil {
		t.Errorf("multi-sink tree accepted")
	}

	// Empty library rejected.
	if _, err := Algorithm1(line(t, 5, 5, 1), &buffers.Library{}, unitParams); err == nil {
		t.Errorf("empty library accepted")
	}

	// Buffer noise margin of zero cannot cover a noisy line.
	zeroNM := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "z", Cin: 0.1, R: 1, NoiseMargin: 0},
	}}
	_, err := Algorithm1(line(t, 10, 5, 1), zeroNM, unitParams)
	if !errors.Is(err, ErrNoiseUnfixable) {
		t.Errorf("err = %v, want ErrNoiseUnfixable", err)
	}

	// Invalid tree rejected.
	bad := line(t, 5, 5, 1)
	bad.Node(bad.Sinks()[0]).Cap = math.NaN()
	if _, err := Algorithm1(bad, singleBufferLib(), unitParams); err == nil {
		t.Errorf("invalid tree accepted")
	}
}

func TestAlgorithm1DoesNotMutateInput(t *testing.T) {
	tr := line(t, 10, 5, 1)
	before := tr.Len()
	if _, err := Algorithm1(tr, singleBufferLib(), unitParams); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != before {
		t.Errorf("input tree grew from %d to %d nodes", before, tr.Len())
	}
}
