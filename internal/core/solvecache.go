package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"

	"buffopt/internal/buffers"
	"buffopt/internal/cache"
	"buffopt/internal/guard"
	"buffopt/internal/rctree"
)

// SolveCache memoizes whole-net SolveResults by canonical problem hash.
// The solver is deterministic (the differential suite proves serial,
// parallel, and repeated runs bit-identical), so a hit returns exactly
// the bytes a fresh solve would have produced. Share one SolveCache
// across goroutines freely; concurrent identical requests coalesce onto
// one solve.
type SolveCache = cache.Cache[*SolveResult]

// NewSolveCache builds a cache for SolveResults bounded by entries and
// bytes (0 disables the respective bound), reporting its counters under
// "<namespace>.cache.*" in the obs registry. Values are deep-copied on
// every read, so callers may freely mutate what they get back.
func NewSolveCache(entries int, bytes int64, namespace string) *SolveCache {
	return cache.New(cache.Config[*SolveResult]{
		MaxEntries: entries,
		MaxBytes:   bytes,
		Size:       solveResultSize,
		Clone:      (*SolveResult).Clone,
		Namespace:  namespace,
	})
}

// solveResultSize approximates a result's resident footprint: the cloned
// tree dominates, then the assignment maps and tier metadata. The
// constants are deliberately generous — the byte bound is a memory
// safety valve, not an accounting ledger.
func solveResultSize(r *SolveResult) int64 {
	const (
		base      = 256 // SolveResult + Result + Solution headers
		perNode   = 200 // rctree.Node incl. children slice overhead
		perBuffer = 96  // map entry + Buffer value (incl. name header)
		perWidth  = 32  // map entry + float
		perTier   = 192 // TierError + wrapped error chain
	)
	sz := int64(base)
	if r == nil {
		return sz
	}
	if r.Result != nil && r.Solution != nil {
		if r.Tree != nil {
			sz += int64(r.Tree.Len()) * perNode
		}
		sz += int64(len(r.Buffers)) * perBuffer
		sz += int64(len(r.Widths)) * perWidth
	}
	sz += int64(len(r.TierErrors)) * perTier
	return sz
}

// Clone deep-copies the result: the solution tree, the assignment maps,
// and the tier metadata. Mutating the copy never affects the original,
// which is what makes cached results safe to hand to many callers.
func (r *SolveResult) Clone() *SolveResult {
	if r == nil {
		return nil
	}
	c := *r
	if r.Result != nil {
		c.Result = r.Result.Clone()
	}
	if r.TierErrors != nil {
		c.TierErrors = make([]*TierError, len(r.TierErrors))
		for i, te := range r.TierErrors {
			t := *te
			c.TierErrors[i] = &t
		}
	}
	return &c
}

// Clone deep-copies the result and its solution.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	c := *r
	if r.Solution != nil {
		sol := &Solution{}
		if r.Solution.Tree != nil {
			sol.Tree = r.Solution.Tree.Clone()
		}
		if r.Solution.Buffers != nil {
			sol.Buffers = make(map[rctree.NodeID]buffers.Buffer, len(r.Solution.Buffers))
			for k, v := range r.Solution.Buffers {
				sol.Buffers[k] = v
			}
		}
		if r.Solution.Widths != nil {
			sol.Widths = make(map[rctree.NodeID]float64, len(r.Solution.Widths))
			for k, v := range r.Solution.Widths {
				sol.Widths[k] = v
			}
		}
		c.Solution = sol
	}
	return &c
}

// Cacheable reports whether a SolveResult may be stored: exact results
// always (no tier errors), degraded results only when every failed tier
// failed for a deterministic reason — a resource-cap trip, class
// "budget". A wall-clock deadline ("canceled"), a panic, or an internal
// post-condition violation depends on scheduling luck, so a result shaped
// by one must never be served to a future request that might do better.
func Cacheable(r *SolveResult) bool {
	if r == nil {
		return false
	}
	for _, te := range r.TierErrors {
		if guard.Class(te.Err) != "budget" {
			return false
		}
	}
	return true
}

// SolveCacheKey is the cache key for Solve(tree, lib, params, opts): the
// problem's canonical hash extended with the Options fields that steer
// Solve's output. Resource caps are included — a budget-starved ladder
// deterministically lands on a different (degraded) answer than an
// uncapped one, so each budget class caches under its own key and a
// starved answer never masks an exact one. Deadlines and Workers are
// excluded: deadline-shaped results are refused by Cacheable, and
// results are bit-identical across worker counts.
func SolveCacheKey(tree treeHasher, opts Options) string {
	return optionsKey("solve", tree, opts, true)
}

// OptimizeCacheKey is the cache key for Optimize(ctx, p, opts). Unlike
// Solve, Optimize has no degradation ladder: resource caps can only turn
// success into an error, never change a successful answer, so they are
// excluded and all budget classes share one entry.
func OptimizeCacheKey(p Problem, opts Options) string {
	return optionsKey("optimize", p, opts, false)
}

// treeHasher lets SolveCacheKey accept a Problem (or anything exposing a
// canonical hash) without re-deriving one here.
type treeHasher interface{ CanonicalHash() string }

func optionsKey(mode string, p treeHasher, opts Options, includeCaps bool) string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	f64 := func(v float64) { u64(math.Float64bits(v)) }
	bol := func(v bool) {
		buf[0] = 0
		if v {
			buf[0] = 1
		}
		h.Write(buf[:1])
	}
	io.WriteString(h, "buffopt.options.v1/")
	io.WriteString(h, mode)
	io.WriteString(h, "/")
	io.WriteString(h, p.CanonicalHash())

	bol(opts.SafePruning)
	bol(opts.Sizing != nil)
	if opts.Sizing != nil {
		u64(uint64(len(opts.Sizing.Widths)))
		for _, w := range opts.Sizing.Widths {
			f64(w)
		}
		f64(opts.Sizing.Fringe)
	}
	bol(includeCaps)
	if includeCaps {
		var mc, mt, ms int
		if opts.Budget != nil {
			mc, mt, ms = opts.Budget.MaxCandidates, opts.Budget.MaxTreeNodes, opts.Budget.MaxSimSteps
		}
		u64(uint64(int64(mc)))
		u64(uint64(int64(mt)))
		u64(uint64(int64(ms)))
	}
	return hex.EncodeToString(h.Sum(nil))
}
