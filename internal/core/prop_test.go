package core

import (
	"errors"
	"math/rand"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
	"buffopt/internal/testutil"
)

// TestBuffOptMatchesExhaustiveRandom certifies Theorem 5 empirically: on
// random small trees with a single buffer type, BuffOpt's slack equals the
// exhaustive noise-constrained optimum, and the solution's analyzed slack
// matches the DP's own number.
func TestBuffOptMatchesExhaustiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B", Cin: 0.05, R: 1, T: 0.4, NoiseMargin: 6},
	}}
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	checked := 0
	for trial := 0; trial < 120; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 4, MaxSinks: 3, MarginLo: 3, MarginHi: 8, BufferSites: true,
		})
		if _, err := segment.ByCount(tr, 2); err != nil {
			t.Fatal(err)
		}
		if len(feasibleNodes(tr)) > 9 {
			continue // keep the oracle cheap
		}
		res, err := BuffOpt(tr, lib, p, Options{})
		want, _, ok, oerr := ExhaustiveMaxSlackNoise(tr, lib, p, true)
		if oerr != nil {
			t.Fatal(oerr)
		}
		if !ok {
			if err == nil {
				t.Fatalf("trial %d: BuffOpt succeeded where no feasible assignment exists", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: BuffOpt failed but exhaustive found slack %g", trial, want)
		}
		if !approx(res.Slack, want) {
			t.Fatalf("trial %d: BuffOpt slack %g, exhaustive %g", trial, res.Slack, want)
		}
		an := elmore.Analyze(res.Tree, res.Buffers)
		if !approx(res.Slack, an.WorstSlack) {
			t.Fatalf("trial %d: DP slack %g, analyzer %g", trial, res.Slack, an.WorstSlack)
		}
		if !noise.Analyze(res.Tree, res.Buffers, p).Clean() {
			t.Fatalf("trial %d: BuffOpt result not noise clean", trial)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d trials actually checked", checked)
	}
}

// TestDelayOptMatchesExhaustiveRandom does the same without noise, with a
// random multi-buffer library (Van Ginneken/Lillis exactness holds for
// delay-only with any library).
func TestDelayOptMatchesExhaustiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	checked := 0
	for trial := 0; trial < 120; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 4, MaxSinks: 3, BufferSites: true,
		})
		lib := testutil.RandomLibrary(rng, 5)
		if len(feasibleNodes(tr))*len(lib.Buffers) > 14 {
			continue
		}
		res, err := DelayOpt(tr, lib, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, _, ok, oerr := ExhaustiveMaxSlackNoise(tr, lib, unitParams, false)
		if oerr != nil || !ok {
			t.Fatalf("trial %d: oracle failed: %v", trial, oerr)
		}
		if !approx(res.Slack, want) {
			t.Fatalf("trial %d: DelayOpt slack %g, exhaustive %g", trial, res.Slack, want)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d trials checked", checked)
	}
}

// TestAlgorithm2NeverWorseThanDiscrete: on random trees, Algorithm 2's
// continuous-placement buffer count never exceeds the discrete exhaustive
// optimum, and its solutions are always clean and structurally valid.
func TestAlgorithm2NeverWorseThanDiscrete(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B", Cin: 0.05, R: 1, T: 0, NoiseMargin: 6},
	}}
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	checked := 0
	for trial := 0; trial < 150; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 4, MaxSinks: 3, MarginLo: 3, MarginHi: 8,
			WireScale: 2, BufferSites: true,
		})
		// Algorithm 2's merge test assumes the driver is no stronger than
		// the strongest buffer (footnote 8 of the paper); enforce it.
		if tr.DriverResistance < lib.Buffers[0].R {
			tr.DriverResistance = lib.Buffers[0].R + rng.Float64()
		}
		sol, err := Algorithm2(tr, lib, p)
		if err != nil {
			// Possible only if the instance is genuinely unfixable.
			if !errors.Is(err, ErrNoiseUnfixable) {
				t.Fatalf("trial %d: unexpected error: %v", trial, err)
			}
			continue
		}
		if err := sol.Tree.Validate(); err != nil {
			t.Fatalf("trial %d: invalid solution tree: %v", trial, err)
		}
		if !noise.Analyze(sol.Tree, sol.Buffers, p).Clean() {
			t.Fatalf("trial %d: Algorithm 2 solution not clean", trial)
		}
		seg := tr.Clone()
		if _, err := segment.ByCount(seg, 2); err != nil {
			t.Fatal(err)
		}
		if len(feasibleNodes(seg)) > 11 {
			continue
		}
		best, _, ok, oerr := ExhaustiveMinBuffersNoise(seg, lib, p)
		if oerr != nil {
			t.Fatal(oerr)
		}
		if ok && sol.NumBuffers() > best {
			t.Fatalf("trial %d: Algorithm 2 used %d buffers, discrete optimum %d", trial, sol.NumBuffers(), best)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d trials checked", checked)
	}
}

// TestDPSlackAlwaysMatchesAnalyzer is the strongest cheap consistency
// check: whatever the optimizer claims, re-deriving the slack from the
// solution with the independent Elmore analyzer must agree exactly.
func TestDPSlackAlwaysMatchesAnalyzer(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	p := noise.Params{CouplingRatio: 0.7, Slope: 2}
	for trial := 0; trial < 150; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 8, MaxSinks: 5, MarginLo: 4, MarginHi: 12, BufferSites: true,
		})
		lib := testutil.RandomLibrary(rng, 8)
		for _, run := range []func() (*Result, error){
			func() (*Result, error) { return DelayOpt(tr, lib, Options{}) },
			func() (*Result, error) { return DelayOptK(tr, lib, 2, Options{}) },
			func() (*Result, error) { return BuffOpt(tr, lib, p, Options{}) },
			func() (*Result, error) { return BuffOptMinBuffers(tr, lib, p, Options{}) },
			func() (*Result, error) { return BuffOpt(tr, lib, p, Options{SafePruning: true}) },
		} {
			res, err := run()
			if err != nil {
				if errors.Is(err, ErrNoiseUnfixable) {
					continue
				}
				t.Fatalf("trial %d: %v", trial, err)
			}
			an := elmore.Analyze(res.Tree, res.Buffers)
			if !approx(res.Slack, an.WorstSlack) {
				t.Fatalf("trial %d: DP slack %g, analyzer %g (buffers %d)",
					trial, res.Slack, an.WorstSlack, res.NumBuffers())
			}
		}
	}
}

// TestBuffOptSolutionsAlwaysClean: every noise-constrained optimizer
// output passes the independent noise analyzer, across random instances
// and both pruning modes.
func TestBuffOptSolutionsAlwaysClean(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	for trial := 0; trial < 150; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 7, MaxSinks: 4, MarginLo: 2, MarginHi: 9,
			WireScale: 1.5, BufferSites: true,
		})
		lib := testutil.RandomLibrary(rng, 2+6*rng.Float64())
		for _, safe := range []bool{false, true} {
			res, err := BuffOpt(tr, lib, p, Options{SafePruning: safe})
			if err != nil {
				continue
			}
			if r := noise.Analyze(res.Tree, res.Buffers, p); !r.Clean() {
				t.Fatalf("trial %d (safe=%v): violations %+v", trial, safe, r.Violations)
			}
		}
	}
}

// TestSafePruningNeverWorse: exact pruning can only match or beat the
// paper's pruning on slack, never lose to it.
func TestSafePruningNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	for trial := 0; trial < 100; trial++ {
		tr := testutil.RandomTree(rng, testutil.TreeOptions{
			MaxInternal: 6, MaxSinks: 4, MarginLo: 2, MarginHi: 9, BufferSites: true,
		})
		lib := testutil.RandomLibrary(rng, 5)
		paper, errPaper := BuffOpt(tr, lib, p, Options{})
		safe, errSafe := BuffOpt(tr, lib, p, Options{SafePruning: true})
		if errSafe != nil {
			if errPaper == nil {
				t.Fatalf("trial %d: safe pruning failed where paper pruning succeeded", trial)
			}
			continue
		}
		if errPaper != nil {
			continue // safe found a solution the paper's pruning lost — allowed
		}
		if paper.Slack > safe.Slack+1e-9 {
			t.Fatalf("trial %d: paper pruning slack %g beats safe %g", trial, paper.Slack, safe.Slack)
		}
	}
}

// TestAlgorithm1RandomLines: random two-pin lines across a wide parameter
// range are always fixed, clean, and with maximal first spacing.
func TestAlgorithm1RandomLines(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	p := noise.Params{CouplingRatio: 1, Slope: 1}
	for trial := 0; trial < 300; trial++ {
		length := 0.5 + 20*rng.Float64()
		nm := 1 + 6*rng.Float64()
		tr := rctree.New("line", 0.2+4*rng.Float64(), 0)
		if _, err := tr.AddSink(tr.Root(),
			rctree.Wire{R: length * (0.5 + rng.Float64()), C: length * (0.5 + rng.Float64()), Length: length},
			"s", rng.Float64(), 0, nm); err != nil {
			t.Fatal(err)
		}
		lib := &buffers.Library{Buffers: []buffers.Buffer{
			{Name: "B", Cin: 0.05, R: 0.3 + rng.Float64(), NoiseMargin: nm},
		}}
		sol, err := Algorithm1(tr, lib, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !noise.Analyze(sol.Tree, sol.Buffers, p).Clean() {
			t.Fatalf("trial %d: not clean (len %g, nm %g)", trial, length, nm)
		}
		if err := sol.Tree.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
