package core

import (
	"strconv"
	"testing"

	"buffopt/internal/buffers"
	"buffopt/internal/elmore"
	"buffopt/internal/noise"
	"buffopt/internal/rctree"
	"buffopt/internal/segment"
)

// TestAlgorithm1VeryLongLine stresses the linear-time walk: a line needing
// thousands of buffers must stay correct, clean, and evenly spaced.
func TestAlgorithm1VeryLongLine(t *testing.T) {
	length := 5000.0
	tr := rctree.New("long", 1, 0)
	if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: length, C: length, Length: length}, "s", 0.1, 0, 5); err != nil {
		t.Fatal(err)
	}
	lib := singleBufferLib()
	sol, err := Algorithm1(tr, lib, unitParams)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh-state maximal spacing is −1+√11 ≈ 2.3166; the count must be
	// close to length/spacing.
	want := int(length / 2.3166)
	if got := sol.NumBuffers(); got < want || got > want+2 {
		t.Fatalf("buffers = %d, want ≈ %d", got, want)
	}
	if err := sol.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if !noise.Analyze(sol.Tree, sol.Buffers, unitParams).Clean() {
		t.Fatal("not clean")
	}
}

// TestBuffOptManySegments stresses the DP on a deep chain: consistency
// with the analyzers must hold at scale.
func TestBuffOptManySegments(t *testing.T) {
	tr := rctree.New("deep", 1.5, 0)
	if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 30, C: 30, Length: 30}, "s", 0.1, 1e5, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := segment.ByCount(tr, 300); err != nil {
		t.Fatal(err)
	}
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B", Cin: 0.05, R: 1, T: 0.3, NoiseMargin: 5},
		{Name: "S", Cin: 0.02, R: 2, T: 0.2, NoiseMargin: 5},
	}}
	res, err := BuffOptMinBuffers(tr, lib, unitParams, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(res.Slack, elmore.Analyze(res.Tree, res.Buffers).WorstSlack) {
		t.Fatalf("DP slack %g disagrees with analyzer at scale", res.Slack)
	}
	if !noise.Analyze(res.Tree, res.Buffers, unitParams).Clean() {
		t.Fatal("not clean")
	}
	if res.NumBuffers() == 0 {
		t.Fatal("no buffers on a 30-unit noisy line")
	}
}

// BenchmarkAlgorithm1Scaling shows the linear-time walk scaling with line
// length (and therefore with the number of inserted buffers).
func BenchmarkAlgorithm1Scaling(b *testing.B) {
	lib := singleBufferLib()
	for _, length := range []float64{100, 1000, 10000} {
		tr := rctree.New("l", 1, 0)
		if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: length, C: length, Length: length}, "s", 0.1, 0, 5); err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(int(length)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Algorithm1(tr, lib, unitParams); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuffOptScaling shows the DP's growth with candidate-site count
// on a fixed-length line.
func BenchmarkBuffOptScaling(b *testing.B) {
	lib := &buffers.Library{Buffers: []buffers.Buffer{
		{Name: "B", Cin: 0.05, R: 1, T: 0.3, NoiseMargin: 5},
	}}
	for _, segs := range []int{50, 100, 200, 400} {
		tr := rctree.New("l", 1.5, 0)
		if _, err := tr.AddSink(tr.Root(), rctree.Wire{R: 30, C: 30, Length: 30}, "s", 0.1, 1e5, 5); err != nil {
			b.Fatal(err)
		}
		if _, err := segment.ByCount(tr, segs); err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(segs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuffOptMinBuffers(tr, lib, unitParams, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func sizeName(n int) string {
	if n >= 1000 && n%1000 == 0 {
		return strconv.Itoa(n/1000) + "k"
	}
	return strconv.Itoa(n)
}
