package server

import (
	"fmt"
	"net/url"
	"strings"
	"testing"
)

// TestKeyerAgreesAcrossWireShapes: the router's affinity key is the same
// function as the replicas' cache key, so the same problem posted as raw
// netfmt, as a JSON envelope, or as a batch item keys identically — that
// agreement is what turns per-replica LRUs into a fleet-wide cache.
func TestKeyerAgreesAcrossWireShapes(t *testing.T) {
	k := NewKeyer(Config{})
	raw := k.SolveKey("text/plain", url.Values{}, []byte(sampleNet))
	env := k.SolveKey("application/json", nil, []byte(fmt.Sprintf(`{"net": %q}`, sampleNet)))
	if raw == "" || raw != env {
		t.Fatalf("raw-text key %q != envelope key %q for the same net", raw, env)
	}

	items, err := k.SplitBatch([]byte(fmt.Sprintf(`{"nets": [{"net": %q}]}`, sampleNet)))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 || items[0].Key != raw {
		t.Fatalf("batch item key %q != solve key %q", items[0].Key, raw)
	}

	// A second Keyer with the same config agrees (stateless, derived
	// purely from content), and the key is stable across calls.
	if again := NewKeyer(Config{}).SolveKey("text/plain", url.Values{}, []byte(sampleNet)); again != raw {
		t.Fatalf("key not stable across Keyer instances: %q vs %q", again, raw)
	}
}

// TestKeyerSeparatesDistinctProblems: different nets and different
// solver knobs key differently — they must not share a shard's cache
// entry, so they must not be forced onto the same shard either.
func TestKeyerSeparatesDistinctProblems(t *testing.T) {
	k := NewKeyer(Config{})
	base := k.SolveKey("text/plain", url.Values{}, []byte(sampleNet))

	// A structurally different net (scaled sink cap) keys differently.
	variant := strings.Replace(sampleNet, "cap=2.5e-14", "cap=3.5e-14", 1)
	if got := k.SolveKey("text/plain", url.Values{}, []byte(variant)); got == base {
		t.Fatal("distinct nets share an affinity key")
	}

	// A different segmenting length keys differently (segmenting
	// deterministically reshapes the worked tree).
	seglen := k.SolveKey("application/json", nil, []byte(fmt.Sprintf(`{"net": %q, "seglen": 1e-3}`, sampleNet)))
	if seglen == base {
		t.Fatal("different seglen shares an affinity key")
	}

	// Query knobs that change the effective budget key differently too
	// (mirroring the replica's budget-class cache keying).
	q := url.Values{}
	q.Set("max_cands", "7")
	if got := k.SolveKey("text/plain", q, []byte(sampleNet)); got == base {
		t.Fatal("different max_cands shares an affinity key")
	}
}

// TestKeyerFallbackOnUndecodable: undecodable bodies still key
// deterministically (the replica owns the 400), and the two decode
// families cannot collide on identical bytes.
func TestKeyerFallbackOnUndecodable(t *testing.T) {
	k := NewKeyer(Config{})
	junk := []byte("this is not a net\n")
	a := k.SolveKey("text/plain", url.Values{}, junk)
	b := k.SolveKey("text/plain", url.Values{}, junk)
	if a == "" || a != b {
		t.Fatalf("undecodable body key unstable: %q vs %q", a, b)
	}
	if !strings.HasPrefix(a, "raw:") {
		t.Fatalf("undecodable body key %q does not use the raw fallback", a)
	}
	if j := k.SolveKey("application/json", nil, junk); j == a {
		t.Fatal("json and text families collide on identical undecodable bytes")
	}

	// A malformed item inside a well-formed batch still splits out with
	// a raw key — partial-failure semantics survive the router.
	items, err := k.SplitBatch([]byte(fmt.Sprintf(`{"nets": [{"net": %q}, {"bogus": 1}]}`, sampleNet)))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("split %d items, want 2", len(items))
	}
	if !strings.HasPrefix(items[1].Key, "raw:json:") {
		t.Fatalf("malformed item key %q, want raw:json: fallback", items[1].Key)
	}

	// Unsplittable top-level shapes are the router's cue to forward the
	// whole body to one replica for the authoritative rejection.
	for _, bad := range []string{`{"nets": []}`, `{"nets": "x"}`, `{"bogus": []}`, `[1,2]`, `not json`} {
		if _, err := k.SplitBatch([]byte(bad)); err == nil {
			t.Errorf("SplitBatch(%q) did not reject", bad)
		}
	}
}

// TestKeyerV1V2Equivalence: a v1 envelope and a v2 envelope saying the
// same thing produce the same affinity (and therefore cache) key — the
// options consolidation moved where knobs are written, not what they
// mean. Conversely, a knob with a different value still separates.
func TestKeyerV1V2Equivalence(t *testing.T) {
	k := NewKeyer(Config{})
	v1 := k.SolveKey("application/json", nil, []byte(fmt.Sprintf(
		`{"v": 1, "net": %q, "timeout_ms": 900, "max_cands": 64, "lambda": 0.6, "seglen": 1e-3, "problem": {"objective": "max-slack", "k": 3}}`, sampleNet)))
	v2 := k.SolveKey("application/json", nil, []byte(fmt.Sprintf(
		`{"v": 2, "net": %q, "options": {"timeout_ms": 900, "max_cands": 64, "lambda": 0.6, "seglen": 1e-3}, "problem": {"objective": "max-slack", "k": 3}}`, sampleNet)))
	if strings.HasPrefix(v1, "raw:") || strings.HasPrefix(v2, "raw:") {
		t.Fatalf("equivalence envelopes fell back to raw keys: %q %q", v1, v2)
	}
	if v1 != v2 {
		t.Fatalf("v1 key %q != v2 key %q for the same request", v1, v2)
	}

	// Same shape, different knob value: keys must separate. (seglen, not
	// lambda: noise params are excluded from non-noise objective keys
	// because they cannot change a max-slack answer.)
	other := k.SolveKey("application/json", nil, []byte(fmt.Sprintf(
		`{"v": 2, "net": %q, "options": {"timeout_ms": 900, "max_cands": 64, "lambda": 0.6, "seglen": 2e-3}, "problem": {"objective": "max-slack", "k": 3}}`, sampleNet)))
	if other == v2 {
		t.Fatal("different seglen shares an affinity key across v2 envelopes")
	}

	// The engine knob stays excluded from the key in both versions.
	vg := k.SolveKey("application/json", nil, []byte(fmt.Sprintf(
		`{"v": 2, "net": %q, "options": {"engine": "vg"}}`, sampleNet)))
	auto := k.SolveKey("application/json", nil, []byte(fmt.Sprintf(
		`{"v": 2, "net": %q, "options": {"engine": "auto"}}`, sampleNet)))
	def := k.SolveKey("application/json", nil, []byte(fmt.Sprintf(`{"v": 2, "net": %q}`, sampleNet)))
	if vg != auto || auto != def {
		t.Fatalf("engine knob leaked into the affinity key: vg %q auto %q default %q", vg, auto, def)
	}
}
