package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net/url"
)

// Keyer derives the content-addressed affinity keys the fleet router
// hashes requests by. It lives in this package — not in fleet — because
// the whole point of hash affinity is that the router's routing key and
// the replicas' cache key are the same function: when they agree, the
// per-replica LRU caches compose into a fleet-wide cache with no
// coordination (every repeat of a problem lands on the shard that
// already holds its answer). A Keyer is a Server that never serves: it
// reuses the exact decode + cacheKey path the replicas run, so the
// agreement is by construction, not by parallel reimplementation.
//
// Undecodable bodies still get a deterministic key (a content hash of
// the raw bytes), so the router can forward them to a consistent replica
// and let that replica produce the authoritative 400 — the router never
// duplicates validation policy.
type Keyer struct {
	s *Server
}

// NewKeyer builds a Keyer from the same Config the replicas run with
// (only the decode-relevant fields matter: Limits, DefaultTimeout,
// MaxTimeout, MaxCands). Differences between this config and a replica's
// only weaken affinity — requests still route deterministically.
func NewKeyer(cfg Config) *Keyer {
	return &Keyer{s: &Server{cfg: cfg.withDefaults()}}
}

// SolveKey returns the affinity key for one /solve request body, either
// an application/json envelope or raw netfmt text with query knobs —
// the same two shapes the replicas decode.
func (k *Keyer) SolveKey(contentType string, query url.Values, body []byte) string {
	req, err := k.decodeSolve(contentType, query, body)
	if err != nil {
		return rawKey(contentType, body)
	}
	return k.s.cacheKey(req)
}

// decodeSolve mirrors (*Server).decodeRequest over in-memory bytes.
func (k *Keyer) decodeSolve(contentType string, query url.Values, body []byte) (*solveRequest, error) {
	if isJSON(contentType) {
		var env Envelope
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&env); err != nil {
			return nil, err
		}
		return k.s.requestFromEnvelope(&env)
	}
	req := k.s.newSolveRequest()
	if err := applyQuery(req, query); err != nil {
		return nil, err
	}
	return k.s.finishDecode(req, bytes.NewReader(body))
}

// SplitItem is one /solve/batch item carved out for per-item routing:
// its position in the original batch, its affinity key, and its raw
// envelope bytes (forwarded verbatim inside a per-replica sub-batch).
type SplitItem struct {
	Index int
	Key   string
	Raw   json.RawMessage
}

// errUnsplittable reports a batch body the router cannot take apart.
var errUnsplittable = errors.New("server: batch body is not a splittable {\"nets\": [...]} object")

// SplitBatch parses a /solve/batch body into per-item raw envelopes and
// affinity keys. An unsplittable body (malformed JSON, unknown top-level
// fields, no nets) returns an error; the router then forwards the whole
// body to one replica chosen by its raw-content key, and that replica's
// decodeBatch produces the authoritative rejection. Items whose envelope
// fails to decode still split out — each gets a raw-content key and the
// replica it lands on reports the per-item error, preserving the batch
// endpoint's partial-failure semantics through the router.
func (k *Keyer) SplitBatch(body []byte) ([]SplitItem, error) {
	var env struct {
		Nets []json.RawMessage `json:"nets"`
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return nil, errUnsplittable
	}
	if len(env.Nets) == 0 {
		return nil, errUnsplittable
	}
	items := make([]SplitItem, len(env.Nets))
	for i, raw := range env.Nets {
		items[i] = SplitItem{Index: i, Key: k.itemKey(raw), Raw: raw}
	}
	return items, nil
}

// itemKey keys one batch item exactly as its /solve equivalent would be
// keyed, so a net posted alone and the same net posted inside a batch
// land on the same shard and share one cache entry.
func (k *Keyer) itemKey(raw json.RawMessage) string {
	var env Envelope
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return rawKey("application/json", raw)
	}
	req, err := k.s.requestFromEnvelope(&env)
	if err != nil {
		return rawKey("application/json", raw)
	}
	return k.s.cacheKey(req)
}

// rawKey is the fallback key for bodies the decode path rejects: a hash
// of the bytes themselves, prefixed with the decode family so a JSON
// body and a netfmt body with identical bytes (which replicas treat
// differently) cannot collide.
func rawKey(contentType string, body []byte) string {
	family := "text"
	if isJSON(contentType) {
		family = "json"
	}
	sum := sha256.Sum256(body)
	return "raw:" + family + ":" + hex.EncodeToString(sum[:])
}
