package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"buffopt/internal/faultinject"
	"buffopt/internal/guard"
	"buffopt/internal/obs"
)

// distinctNet derives a structurally distinct variant of sampleNet by
// perturbing one wire resistance — names are excluded from the canonical
// hash, so distinctness must come from the electricals.
func distinctNet(i int) string {
	return strings.Replace(sampleNet, "wire=240,6e-13,0.003",
		fmt.Sprintf("wire=%d,6e-13,0.003", 240+i), 1)
}

// normalize strips the per-request fields (timing, cache flags) so two
// responses can be compared for solver-output identity.
func normalize(t *testing.T, body []byte) string {
	t.Helper()
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, body)
	}
	sr.ElapsedMS = 0
	sr.Cached = false
	sr.Coalesced = false
	for i := range sr.TierErrors {
		sr.TierErrors[i].ElapsedMS = 0
	}
	b, err := json.Marshal(sr)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func solveOK(t *testing.T, ts *httptest.Server, contentType, body string) (SolveResponse, []byte) {
	t.Helper()
	resp, b := postNet(t, ts, "/solve", contentType, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, b)
	}
	var sr SolveResponse
	if err := json.Unmarshal(b, &sr); err != nil {
		t.Fatalf("bad response JSON: %v\n%s", err, b)
	}
	return sr, b
}

// TestSolveCacheHTTP: with the cache enabled, a repeated request is
// answered from the cache with byte-identical solver output, the
// response says so, and the content addressing sees through renames.
func TestSolveCacheHTTP(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 16})

	first, b1 := solveOK(t, ts, "text/plain", sampleNet)
	if first.Cached {
		t.Fatal("first request claims cached")
	}
	second, b2 := solveOK(t, ts, "text/plain", sampleNet)
	if !second.Cached {
		t.Fatal("repeat request missed the cache")
	}
	if normalize(t, b1) != normalize(t, b2) {
		t.Fatalf("cached response differs from fresh:\nfresh  %s\ncached %s", b1, b2)
	}

	// The same net posted as a JSON envelope (identical knobs) is the
	// same content: it must hit the entry the raw post filled.
	env, _ := json.Marshal(map[string]any{"net": sampleNet})
	third, b3 := solveOK(t, ts, "application/json", string(env))
	if !third.Cached {
		t.Fatal("JSON post of the same net missed the cache")
	}
	if normalize(t, b1) != normalize(t, b3) {
		t.Fatal("JSON-path cached response differs from raw-path fresh response")
	}

	// Names are metadata, not content: a renamed copy of the net shares
	// the entry, while the response still echoes the request's name.
	renamed, _ := solveOK(t, ts, "text/plain", namedNet("alias"))
	if !renamed.Cached {
		t.Fatal("renamed identical net missed the cache; names must not be part of the key")
	}
	if renamed.Net != "alias" {
		t.Fatalf("cached response echoes %q, want the request's own name", renamed.Net)
	}

	st := s.cache.Stats()
	if st.Lookups != 4 || st.Hits != 3 || st.Misses != 1 {
		t.Errorf("stats %+v; want 4 lookups, 3 hits, 1 miss", st)
	}
	snap := obs.Default().Snapshot()
	if snap.Counters["server.cache.hits"] != 3 || snap.Counters["server.cache.lookups"] != 4 {
		t.Errorf("obs cache counters off: %+v", snap.Counters)
	}
	if snap.Gauges["server.cache.entries"] != 1 {
		t.Errorf("server.cache.entries = %d, want 1", snap.Gauges["server.cache.entries"])
	}

	// /metrics exposes the same counters to operators.
	resp, body := postNet(t, ts, "/metrics", "", "")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "server.cache.hits") {
		t.Errorf("/metrics missing server.cache.* counters: %s", body)
	}
}

// TestSolveCacheKeySeparation: knobs that steer the solver's output —
// candidate caps, segmenting, the objective — key separate entries.
func TestSolveCacheKeySeparation(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 16})

	variants := []struct {
		name, path, ct, body string
	}{
		{"default", "/solve", "text/plain", sampleNet},
		{"capped", "/solve?max_cands=2", "text/plain", sampleNet},
		{"segmented", "/solve", "application/json",
			`{"net":` + mustJSON(t, sampleNet) + `,"seglen":2.5e-4}`},
		{"objective", "/solve", "application/json",
			`{"net":` + mustJSON(t, sampleNet) + `,"problem":{"objective":"max-slack"}}`},
	}
	for _, v := range variants {
		resp, b := postNet(t, ts, v.path, v.ct, v.body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, body %s", v.name, resp.StatusCode, b)
		}
		var sr SolveResponse
		json.Unmarshal(b, &sr)
		if sr.Cached || sr.Coalesced {
			t.Fatalf("%s: first request of this shape hit another shape's entry", v.name)
		}
	}
	if got := s.cache.Len(); got != len(variants) {
		t.Fatalf("%d resident entries for %d distinct request shapes", got, len(variants))
	}
	// Each shape hits its own entry on repeat.
	for _, v := range variants {
		_, b := postNet(t, ts, v.path, v.ct, v.body)
		var sr SolveResponse
		json.Unmarshal(b, &sr)
		if !sr.Cached {
			t.Fatalf("%s: repeat missed its own entry", v.name)
		}
	}
}

func mustJSON(t *testing.T, s string) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSolveCacheCoalescingHTTP: concurrent identical requests under a
// forced-slow injector share solves. The cross-layer equality — injector
// plans consumed == cache misses that actually led a fill — proves hits
// and coalesced waiters never draw a chaos plan.
func TestSolveCacheCoalescingHTTP(t *testing.T) {
	const callers = 8
	inj, err := faultinject.New(faultinject.Config{
		Seed:      1,
		Rates:     map[faultinject.Fault]float64{faultinject.FaultSlow: 1.0},
		SlowDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{CacheEntries: 16, Injector: inj})

	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		bodies [][]byte
		flags  struct{ cached, coalesced, fresh int64 }
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/solve", "text/plain", strings.NewReader(sampleNet))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, b)
				return
			}
			var sr SolveResponse
			if err := json.Unmarshal(b, &sr); err != nil {
				t.Errorf("bad body: %v", err)
				return
			}
			mu.Lock()
			bodies = append(bodies, b)
			switch {
			case sr.Cached:
				flags.cached++
			case sr.Coalesced:
				flags.coalesced++
			default:
				flags.fresh++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	want := normalize(t, bodies[0])
	for i, b := range bodies {
		if normalize(t, b) != want {
			t.Errorf("response %d differs from the others", i)
		}
	}
	st := s.cache.Stats()
	if st.Lookups != callers || st.Hits+st.Misses != st.Lookups {
		t.Errorf("stats %+v", st)
	}
	if flags.cached != st.Hits || flags.coalesced != st.Coalesced {
		t.Errorf("client flags %+v disagree with cache stats %+v", flags, st)
	}
	// Every solve that actually ran drew exactly one plan; hits and
	// coalesced waiters drew none.
	fills := st.Misses - st.Coalesced
	if got := inj.Assigned(faultinject.FaultSlow); got != fills {
		t.Errorf("injector dealt %d plans, but only %d solves ran", got, fills)
	}
	if a, c := inj.Assigned(faultinject.FaultSlow), inj.Consumed(faultinject.FaultSlow); a != c {
		t.Errorf("slow: assigned %d != consumed %d", a, c)
	}
}

// TestEnvelopeVersioning walks the version and problem-sub-object decode
// rules of the v1 envelope.
func TestEnvelopeVersioning(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	net := mustJSON(t, sampleNet)

	cases := []struct {
		name   string
		body   string
		status int
		substr string
	}{
		{"explicit v1", `{"v":1,"net":` + net + `}`, http.StatusOK, ""},
		{"v0 rejected", `{"v":0,"net":` + net + `}`, http.StatusBadRequest, "unsupported envelope version 0"},
		{"v2 accepted", `{"v":2,"net":` + net + `}`, http.StatusOK, ""},
		{"v3 rejected", `{"v":3,"net":` + net + `}`, http.StatusBadRequest, "unsupported envelope version 3"},
		{"v2 options knobs", `{"v":2,"net":` + net + `,"options":{"engine":"vg","timeout_ms":2000,"lambda":0.6}}`, http.StatusOK, ""},
		{"v2 rejects top-level knob", `{"v":2,"net":` + net + `,"timeout_ms":2000}`, http.StatusBadRequest, `moved "timeout_ms" into "options"`},
		{"v2 rejects top-level lambda", `{"v":2,"net":` + net + `,"lambda":0.6}`, http.StatusBadRequest, `moved "lambda" into "options"`},
		{"v1 rejects options knob", `{"v":1,"net":` + net + `,"options":{"timeout_ms":2000}}`, http.StatusBadRequest, "options.timeout_ms requires a v2 envelope"},
		{"implicit v1 rejects options knob", `{"net":` + net + `,"options":{"seglen":0}}`, http.StatusBadRequest, "options.seglen requires a v2 envelope"},
		{"v1 rejects session", `{"net":` + net + `,"session":{"id":"x"}}`, http.StatusBadRequest, "v2 envelope"},
		{"solve rejects session", `{"v":2,"net":` + net + `,"session":{"id":"x"}}`, http.StatusBadRequest, "/solve/delta"},
		{"solve rejects edits", `{"v":2,"net":` + net + `,"edits":[{"op":"set-cap","node":1,"value":1e-15}]}`, http.StatusBadRequest, "/solve/delta"},
		{"problem objective", `{"v":1,"net":` + net + `,"problem":{"objective":"max-slack-noise"}}`, http.StatusOK, ""},
		{"problem with k", `{"net":` + net + `,"problem":{"objective":"max-slack","k":3}}`, http.StatusOK, ""},
		{"unknown objective", `{"net":` + net + `,"problem":{"objective":"fastest"}}`, http.StatusBadRequest, "objective"},
		{"empty problem", `{"net":` + net + `,"problem":{}}`, http.StatusBadRequest, `missing "objective"`},
		{"negative k", `{"net":` + net + `,"problem":{"objective":"max-slack","k":-1}}`, http.StatusBadRequest, "negative"},
		{"k with min-buffers", `{"net":` + net + `,"problem":{"objective":"min-buffers-noise","k":2}}`, http.StatusBadRequest, "invalid with objective"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postNet(t, ts, "/solve", "application/json", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d; body %s", resp.StatusCode, tc.status, body)
			}
			if tc.status != http.StatusOK {
				var er ErrorResponse
				if err := json.Unmarshal(body, &er); err != nil {
					t.Fatalf("bad error body: %v", err)
				}
				if er.Class != "invalid" {
					t.Errorf("class = %q, want invalid", er.Class)
				}
				if !strings.Contains(er.Error, tc.substr) {
					t.Errorf("error %q does not mention %q", er.Error, tc.substr)
				}
			}
		})
	}

	// The version rejection is typed, not just worded: callers embedding
	// the server can switch on it.
	s := New(Config{})
	v := 3
	_, err := s.requestFromEnvelope(&Envelope{V: &v, Net: sampleNet})
	var uve *UnsupportedVersionError
	if !errors.As(err, &uve) || uve.Version != 3 {
		t.Errorf("err = %v, want *UnsupportedVersionError{3}", err)
	}
	if !errors.Is(err, guard.ErrInvalidInput) {
		t.Errorf("version rejection is not class invalid: %v", err)
	}
}

// TestObjectiveEnvelope: the problem sub-object routes to core.Optimize;
// the min-buffers-noise objective answers exactly what the ladder's exact
// tier answers, and max-slack objectives report exact tier directly.
func TestObjectiveEnvelope(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	net := mustJSON(t, sampleNet)

	ladder, _ := solveOK(t, ts, "text/plain", sampleNet)
	if ladder.Tier != "exact" {
		t.Fatalf("sample net did not solve exactly: tier %s", ladder.Tier)
	}
	min, _ := solveOK(t, ts, "application/json",
		`{"net":`+net+`,"problem":{"objective":"min-buffers-noise"}}`)
	if min.Tier != "exact" || min.Degraded {
		t.Fatalf("objective solve: tier %s degraded %v", min.Tier, min.Degraded)
	}
	if min.NumBuffers != ladder.NumBuffers || min.SlackPS != ladder.SlackPS {
		t.Errorf("min-buffers-noise objective (%d buffers, %.1f ps) disagrees with ladder exact tier (%d, %.1f)",
			min.NumBuffers, min.SlackPS, ladder.NumBuffers, ladder.SlackPS)
	}

	slack, _ := solveOK(t, ts, "application/json",
		`{"net":`+net+`,"problem":{"objective":"max-slack-noise"}}`)
	if slack.Tier != "exact" || slack.SlackPS < min.SlackPS {
		t.Errorf("max-slack-noise slack %.2f ps below min-buffers %.2f ps", slack.SlackPS, min.SlackPS)
	}
	bounded, _ := solveOK(t, ts, "application/json",
		`{"net":`+net+`,"problem":{"objective":"max-slack","k":2}}`)
	if bounded.NumBuffers > 2 {
		t.Errorf("k=2 bound violated: %d buffers", bounded.NumBuffers)
	}
}

// TestCacheSoakUnderChaos is the cache-enabled sibling of
// TestSoakUnderChaos: a 2-entry cache churns under a stream of distinct
// nets while the injector deals slow solves, cancels, panics, and
// corruptions. The books must balance across every layer at once:
// injector (assigned == consumed), cache (hits + misses == lookups,
// stored == evicted + resident), and telemetry (faults == fault-class
// counters, with cached/coalesced answers never double-counting).
func TestCacheSoakUnderChaos(t *testing.T) {
	clients, perClient := 12, 12
	if testing.Short() {
		clients, perClient = 6, 6
	}
	const workers, queueDepth = 4, 8
	const cacheEntries = 2
	const distinctNets = 6

	inj, err := faultinject.New(faultinject.Config{
		Seed: 43,
		Rates: map[faultinject.Fault]float64{
			faultinject.FaultSlow:      0.15,
			faultinject.FaultCancel:    0.10,
			faultinject.FaultPanic:     0.10,
			faultinject.FaultMalformed: 0.10,
		},
		SlowDelay: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{
		Workers:        workers,
		QueueDepth:     queueDepth,
		DefaultTimeout: 30 * time.Second,
		CacheEntries:   cacheEntries,
		Injector:       inj,
	})
	baseline := runtime.NumGoroutine()

	var (
		mu     sync.Mutex
		status = map[int]int{}
		total  = clients * perClient
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := distinctNet((c + i) % distinctNets)
				resp, err := http.Post(ts.URL+"/solve", "text/plain", strings.NewReader(body))
				if err != nil {
					t.Errorf("transport error (daemon died?): %v", err)
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var sr SolveResponse
					if err := json.Unmarshal(b, &sr); err != nil {
						t.Errorf("200 with undecodable body: %v", err)
					}
				case http.StatusTooManyRequests, http.StatusServiceUnavailable,
					http.StatusInternalServerError:
					// Shed or injected panic: accounted below.
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, b)
				}
				mu.Lock()
				status[resp.StatusCode]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz after soak: %v %v", hr, err)
	}
	hr.Body.Close()

	var answered int
	for _, n := range status {
		answered += n
	}
	if answered != total {
		t.Fatalf("answered %d of %d requests", answered, total)
	}

	// Injector books: every dealt plan was consumed — cached and
	// coalesced answers drew none, so nothing dangles.
	for _, f := range []faultinject.Fault{
		faultinject.FaultSlow, faultinject.FaultCancel,
		faultinject.FaultPanic, faultinject.FaultMalformed,
	} {
		if a, c := inj.Assigned(f), inj.Consumed(f); a != c {
			t.Errorf("%v: assigned %d != consumed %d", f, a, c)
		}
	}

	// Cache books.
	st := s.cache.Stats()
	t.Logf("status=%v cache=%+v", status, st)
	if st.Hits+st.Misses != st.Lookups {
		t.Errorf("hits %d + misses %d != lookups %d", st.Hits, st.Misses, st.Lookups)
	}
	if st.Stored != st.Evicted+int64(st.Entries) {
		t.Errorf("stored %d != evicted %d + resident %d", st.Stored, st.Evicted, st.Entries)
	}
	if st.Entries > cacheEntries {
		t.Errorf("%d resident entries, bound is %d", st.Entries, cacheEntries)
	}
	if st.Hits == 0 {
		t.Error("soak never hit the cache; the cache path went unexercised")
	}
	if st.Evicted == 0 {
		t.Errorf("%d distinct nets through a %d-entry cache never evicted", distinctNets, cacheEntries)
	}

	snap := obs.Default().Snapshot()
	ctr := snap.Counters
	if ctr["server.cache.hits"] != st.Hits || ctr["server.cache.lookups"] != st.Lookups ||
		ctr["server.cache.evicted"] != st.Evicted {
		t.Errorf("obs cache counters disagree with Stats(): %+v vs %+v", ctr, st)
	}

	// Telemetry books: each consumed fault surfaces in exactly one
	// (non-cached, non-coalesced) response's counters.
	if got, want := ctr["server.request.outcome.panic"], inj.Consumed(faultinject.FaultPanic); got != want {
		t.Errorf("outcome.panic = %d, injected %d panics", got, want)
	}
	if got, want := ctr["server.request.tiererr.canceled"], inj.Consumed(faultinject.FaultCancel); got != want {
		t.Errorf("tiererr.canceled = %d, injected %d cancels", got, want)
	}
	if got, want := ctr["server.request.tiererr.internal"], inj.Consumed(faultinject.FaultMalformed); got != want {
		t.Errorf("tiererr.internal = %d, injected %d corruptions", got, want)
	}

	var outcomes int64
	for name, v := range ctr {
		if strings.HasPrefix(name, "server.request.outcome.") {
			outcomes += v
		}
	}
	shed := ctr["server.shed.queue_full"] + ctr["server.shed.draining"] + ctr["server.shed.client_gone"]
	if outcomes+shed != int64(total) {
		t.Errorf("outcomes %d + shed %d != %d requests", outcomes, shed, total)
	}
	if peak := snap.Gauges["server.inflight.peak"]; peak > workers {
		t.Errorf("inflight peak %d blew past %d workers", peak, workers)
	}

	http.DefaultClient.CloseIdleConnections()
	leakDeadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+5 {
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines %d vs baseline %d after soak", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
